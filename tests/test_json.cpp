// Unit + property tests for the Sonata JSON implementation.
#include <gtest/gtest.h>

#include <string>

#include "services/sonata/json.hpp"
#include "simkit/rng.hpp"

namespace json = sym::json;

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_EQ(json::parse("42").as_int(), 42);
  EXPECT_EQ(json::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("-2.5e-2").as_number(), -0.025);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegerVsDoubleDetection) {
  EXPECT_TRUE(json::parse("7").is_int());
  EXPECT_TRUE(json::parse("7.0").is_double());
  EXPECT_TRUE(json::parse("7e0").is_double());
  // int/double numeric equality in queries
  EXPECT_TRUE(json::parse("7") == json::parse("7.0"));
}

TEST(Json, ParseNestedStructures) {
  const auto v = json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(v.is_object());
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find_path("d.e")->is_null());
}

TEST(Json, FindPathWithArrayIndices) {
  const auto v = json::parse(R"({"hits": [{"pt": 1.5}, {"pt": 2.5}]})");
  ASSERT_NE(v.find_path("hits[1].pt"), nullptr);
  EXPECT_DOUBLE_EQ(v.find_path("hits[1].pt")->as_number(), 2.5);
  EXPECT_EQ(v.find_path("hits[7].pt"), nullptr);
  EXPECT_EQ(v.find_path("nope.x"), nullptr);
}

TEST(Json, StringEscapes) {
  const auto v = json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapesUtf8) {
  EXPECT_EQ(json::parse(R"("é")").as_string(), "\xC3\xA9");      // é
  EXPECT_EQ(json::parse(R"("€")").as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, WhitespaceTolerance) {
  const auto v = json::parse(" {\n\t\"a\" :\r [ 1 , 2 ] } ");
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(json::parse("{}").as_object().empty());
  EXPECT_TRUE(json::parse("[]").as_array().empty());
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01x", "\"unterminated",
        "[1] trailing", "{\"a\" 1}", "nul", "--3", "{1: 2}",
        "\"bad\\escape\\q\""}) {
    EXPECT_THROW((void)json::parse(bad), json::ParseError) << bad;
  }
}

TEST(Json, DeepNestingGuard) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW((void)json::parse(deep), json::ParseError);
}

TEST(Json, ControlCharacterRejected) {
  std::string s = "\"a";
  s += '\x01';
  s += '"';
  EXPECT_THROW((void)json::parse(s), json::ParseError);
}

TEST(Json, DumpRoundTrip) {
  const char* docs[] = {
      "null", "true", "[1,2,3]", R"({"a":1,"b":[true,null,"x"]})",
      R"({"nested":{"deep":{"deeper":[{"k":"v"}]}}})"};
  for (const char* doc : docs) {
    const auto v = json::parse(doc);
    const auto text = json::dump(v);
    EXPECT_TRUE(json::parse(text) == v) << doc;
  }
}

TEST(Json, DumpEscapesControlCharacters) {
  json::Value v(std::string("line1\nline2\ttab\x01"));
  const auto text = json::dump(v);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\t"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_TRUE(json::parse(text) == v);
}

TEST(Json, PrettyPrintParsesBack) {
  const auto v = json::parse(R"({"a":[1,{"b":2}],"c":"d"})");
  const auto pretty = json::dump_pretty(v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(json::parse(pretty) == v);
}

// Property test: randomly generated documents survive dump->parse->dump.
namespace {

json::Value random_value(sym::sim::Rng& rng, int depth) {
  const auto pick = rng.uniform(depth > 3 ? 5 : 7);
  switch (pick) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.bernoulli(0.5));
    case 2:
      return json::Value(static_cast<std::int64_t>(rng.uniform(1 << 30)) -
                         (1 << 29));
    case 3: return json::Value(rng.uniform_real(-1e6, 1e6));
    case 4: {
      std::string s;
      const auto len = rng.uniform(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.uniform(26));
      }
      if (rng.bernoulli(0.2)) s += "\"\\\n";
      return json::Value(std::move(s));
    }
    case 5: {
      json::Array arr;
      const auto n = rng.uniform(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        arr.push_back(random_value(rng, depth + 1));
      }
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const auto n = rng.uniform(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj["k" + std::to_string(i)] = random_value(rng, depth + 1);
      }
      return json::Value(std::move(obj));
    }
  }
}

}  // namespace

class JsonRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(JsonRoundTripProperty, DumpParseStable) {
  sym::sim::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto v = random_value(rng, 0);
    const auto once = json::dump(v);
    const auto again = json::dump(json::parse(once));
    EXPECT_EQ(once, again);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
