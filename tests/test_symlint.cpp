// Golden-file tests for the symlint static analyzer (tools/symlint).
//
// Each fixture in tests/lint_fixtures/ is linted under a *virtual* path
// (rule applicability is path-scoped: D2 only under src/symbiosys/, D3
// everywhere under src/ except src/simkit/, ...) and the exact diagnostics
// — rule id and line — are asserted. The fixtures pin their expected lines
// in trailing comments; editing a fixture means updating both.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SYM_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Expected {
  std::string rule_id;
  int line;
};

/// Lint `fixture` as if it lived at `virtual_path` and compare the full
/// finding list against `expected`, in order.
void expect_findings(const std::string& fixture,
                     const std::string& virtual_path,
                     const std::vector<Expected>& expected) {
  const auto findings =
      symlint::lint_source(virtual_path, read_fixture(fixture));
  ASSERT_EQ(findings.size(), expected.size())
      << [&] {
           std::ostringstream os;
           os << "findings for " << fixture << ":\n";
           for (const auto& f : findings) os << "  " << f.format() << "\n";
           return os.str();
         }();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(symlint::rule_id(findings[i].rule), expected[i].rule_id)
        << findings[i].format();
    EXPECT_EQ(findings[i].line, expected[i].line) << findings[i].format();
    EXPECT_EQ(findings[i].file, virtual_path);
  }
}

// ---------------------------------------------------------------------------
// Rule detection
// ---------------------------------------------------------------------------

TEST(Symlint, D1NondeterminismSources) {
  expect_findings("d1_nondeterminism.cpp", "src/margolite/fixture_d1.cpp",
                  {{"D1", 19},    // std::chrono::steady_clock
                   {"D1", 23},    // ::time(nullptr)
                   {"D1", 25},    // rand()
                   {"D1", 27},    // std::getenv
                   {"D1", 30}});  // std::random_device
}

TEST(Symlint, D2UnorderedIterationInAnalysisCode) {
  expect_findings("d2_unordered_iter.cpp", "src/symbiosys/fixture_d2.cpp",
                  {{"D2", 17},    // range-for over unordered_map
                   {"D2", 26}});  // range-for over unordered_set
}

TEST(Symlint, D2DoesNotApplyOutsideSymbiosys) {
  // The same file under a non-analysis path: hash-order iteration of
  // node-local state is allowed (order never escapes into reports there).
  expect_findings("d2_unordered_iter.cpp", "src/services/fixture_d2.cpp",
                  {});
}

TEST(Symlint, D3FiberBlockingPrimitives) {
  expect_findings("d3_fiber_blocking.cpp", "src/services/fixture_d3.cpp",
                  {{"D3", 13},    // std::mutex member
                   {"D3", 18},    // std::lock_guard<std::mutex>
                   {"D3", 23},    // std::thread
                   {"D3", 28}});  // usleep()
}

TEST(Symlint, D3DoesNotApplyInsideSimkit) {
  // The engine substrate owns the real worker threads; std:: threading
  // there is the implementation of the lane pool, not a violation.
  expect_findings("d3_fiber_blocking.cpp", "src/simkit/fixture_d3.cpp", {});
}

TEST(Symlint, D4LaneInternalsOutsideEngineFiles) {
  expect_findings("d4_lane_affinity.cpp", "src/workloads/fixture_d4.cpp",
                  {{"D4", 12},    // sim::Lane* in a signature
                   {"D4", 17},    // .post_remote(...)
                   {"D4", 21}});  // .run_window(...)
}

TEST(Symlint, D4AllowedInLaneAndEngineFiles) {
  expect_findings("d4_lane_affinity.cpp", "src/simkit/lane.cpp", {});
  expect_findings("d4_lane_affinity.cpp", "src/simkit/engine.cpp", {});
  expect_findings("d4_lane_affinity.cpp", "src/simkit/window.hpp", {});
}

TEST(Symlint, CleanFileHasNoFindings) {
  // Strictest scope: all four rules apply under src/symbiosys/.
  expect_findings("clean.cpp", "src/symbiosys/fixture_clean.cpp", {});
}

TEST(Symlint, FilesOutsideSrcAreNotScanned) {
  expect_findings("d1_nondeterminism.cpp", "tests/fixture_d1.cpp", {});
  expect_findings("d1_nondeterminism.cpp", "bench/fixture_d1.cpp", {});
}

// ---------------------------------------------------------------------------
// allow() annotations
// ---------------------------------------------------------------------------

TEST(Symlint, AnnotationsSuppressAndMalformedOnesAreFindings) {
  expect_findings("annotated.cpp", "src/symbiosys/fixture_annotated.cpp",
                  {{"A0", 28},    // allow() missing reason=
                   {"D1", 29},    //   ... so the rand() below still fires
                   {"A0", 33},    // allow(no-such-rule)
                   {"D1", 34},    //   ... so the rand() below still fires
                   {"D1", 40}});  // allow() for a different rule
}

TEST(Symlint, FindingFormatIsStable) {
  const auto findings = symlint::lint_source(
      "src/margolite/fixture_d1.cpp", read_fixture("d1_nondeterminism.cpp"));
  ASSERT_FALSE(findings.empty());
  const std::string line = findings.front().format();
  EXPECT_NE(line.find("src/margolite/fixture_d1.cpp:19: [D1/nondeterminism]"),
            std::string::npos)
      << line;
}

// The repository itself must stay clean: this is the same gate the `symlint`
// ctest target enforces via the CLI, asserted here against the real tree so
// a lint regression fails in-process with the offending findings printed.
TEST(Symlint, RepositorySourceTreeIsClean) {
  // Walk the list the CLI would: every .cpp/.hpp under src/.
  std::vector<symlint::Finding> findings;
  const std::string root = std::string(SYM_SOURCE_DIR) + "/src";
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    symlint::lint_file(entry.path().string(), findings);
  }
  for (const auto& f : findings) ADD_FAILURE() << f.format();
}

}  // namespace
