// Golden-file tests for the symlint static analyzer (tools/symlint).
//
// Each fixture in tests/lint_fixtures/ is linted under a *virtual* path
// (rule applicability is path-scoped: D2 only under src/symbiosys/, D3
// everywhere under src/ except src/simkit/, ...) and the exact diagnostics
// — rule id and line — are asserted. The fixtures pin their expected lines
// in trailing comments; editing a fixture means updating both.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "emit.hpp"
#include "index.hpp"
#include "lint.hpp"
#include "rules.hpp"

namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SYM_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Expected {
  std::string rule_id;
  int line;
};

/// Lint `fixture` as if it lived at `virtual_path` and compare the full
/// finding list against `expected`, in order.
void expect_findings(const std::string& fixture,
                     const std::string& virtual_path,
                     const std::vector<Expected>& expected) {
  const auto findings =
      symlint::lint_source(virtual_path, read_fixture(fixture));
  ASSERT_EQ(findings.size(), expected.size())
      << [&] {
           std::ostringstream os;
           os << "findings for " << fixture << ":\n";
           for (const auto& f : findings) os << "  " << f.format() << "\n";
           return os.str();
         }();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(symlint::rule_id(findings[i].rule), expected[i].rule_id)
        << findings[i].format();
    EXPECT_EQ(findings[i].line, expected[i].line) << findings[i].format();
    EXPECT_EQ(findings[i].file, virtual_path);
  }
}

// ---------------------------------------------------------------------------
// Rule detection
// ---------------------------------------------------------------------------

TEST(Symlint, D1NondeterminismSources) {
  expect_findings("d1_nondeterminism.cpp", "src/margolite/fixture_d1.cpp",
                  {{"D1", 19},    // std::chrono::steady_clock
                   {"D1", 23},    // ::time(nullptr)
                   {"D1", 25},    // rand()
                   {"D1", 27},    // std::getenv
                   {"D1", 30}});  // std::random_device
}

TEST(Symlint, D2UnorderedIterationInAnalysisCode) {
  expect_findings("d2_unordered_iter.cpp", "src/symbiosys/fixture_d2.cpp",
                  {{"D2", 17},    // range-for over unordered_map
                   {"D2", 26}});  // range-for over unordered_set
}

TEST(Symlint, D2DoesNotApplyOutsideSymbiosys) {
  // The same file under a non-analysis path: hash-order iteration of
  // node-local state is allowed (order never escapes into reports there).
  expect_findings("d2_unordered_iter.cpp", "src/services/fixture_d2.cpp",
                  {});
}

TEST(Symlint, D3FiberBlockingPrimitives) {
  expect_findings("d3_fiber_blocking.cpp", "src/services/fixture_d3.cpp",
                  {{"D3", 13},    // std::mutex member
                   {"D3", 18},    // std::lock_guard<std::mutex>
                   {"D3", 23},    // std::thread
                   {"D3", 28}});  // usleep()
}

TEST(Symlint, D3DoesNotApplyInsideSimkit) {
  // The engine substrate owns the real worker threads; std:: threading
  // there is the implementation of the lane pool, not a violation.
  expect_findings("d3_fiber_blocking.cpp", "src/simkit/fixture_d3.cpp", {});
}

// The hot-path allocation face moved from per-TU D3 into the cross-TU B2
// may-allocate rule (direct face); its tests now live in the SymlintCrossTu
// suite below, against the same fixture.

TEST(Symlint, D4LaneInternalsOutsideEngineFiles) {
  expect_findings("d4_lane_affinity.cpp", "src/workloads/fixture_d4.cpp",
                  {{"D4", 12},    // sim::Lane* in a signature
                   {"D4", 17},    // .post_remote(...)
                   {"D4", 21}});  // .run_window(...)
}

TEST(Symlint, D4AllowedInLaneAndEngineFiles) {
  expect_findings("d4_lane_affinity.cpp", "src/simkit/lane.cpp", {});
  expect_findings("d4_lane_affinity.cpp", "src/simkit/engine.cpp", {});
  expect_findings("d4_lane_affinity.cpp", "src/simkit/window.hpp", {});
}

TEST(Symlint, CleanFileHasNoFindings) {
  // Strictest scope: all four rules apply under src/symbiosys/.
  expect_findings("clean.cpp", "src/symbiosys/fixture_clean.cpp", {});
}

TEST(Symlint, FilesOutsideSrcAreNotScanned) {
  expect_findings("d1_nondeterminism.cpp", "tests/fixture_d1.cpp", {});
  expect_findings("d1_nondeterminism.cpp", "bench/fixture_d1.cpp", {});
}

// ---------------------------------------------------------------------------
// allow() annotations
// ---------------------------------------------------------------------------

TEST(Symlint, AnnotationsSuppressAndMalformedOnesAreFindings) {
  expect_findings("annotated.cpp", "src/symbiosys/fixture_annotated.cpp",
                  {{"A0", 28},    // allow() missing reason=
                   {"D1", 29},    //   ... so the rand() below still fires
                   {"A0", 33},    // allow(no-such-rule)
                   {"D1", 34},    //   ... so the rand() below still fires
                   {"D1", 40}});  // allow() for a different rule
}

TEST(Symlint, FindingFormatIsStable) {
  const auto findings = symlint::lint_source(
      "src/margolite/fixture_d1.cpp", read_fixture("d1_nondeterminism.cpp"));
  ASSERT_FALSE(findings.empty());
  const std::string line = findings.front().format();
  EXPECT_NE(line.find("src/margolite/fixture_d1.cpp:19: [D1/nondeterminism]"),
            std::string::npos)
      << line;
}

// ---------------------------------------------------------------------------
// Cross-TU rules (pass 1 + 2): L1 / E1 / T1 over planted fixtures
// ---------------------------------------------------------------------------

/// Index fixtures under virtual paths and run the interprocedural rules.
std::vector<symlint::Finding> analyze_fixtures(
    const std::vector<std::pair<std::string, std::string>>& fixtures) {
  std::vector<symlint::TuIndex> tus;
  for (const auto& [name, virtual_path] : fixtures) {
    tus.push_back(symlint::build_tu_index(virtual_path, read_fixture(name)));
  }
  return symlint::analyze_project(tus);
}

TEST(SymlintCrossTu, L1ThreeMutexCycleAcrossTwoTus) {
  const auto findings =
      analyze_fixtures({{"l1_lock_cycle_a.cpp", "src/margolite/cycle_a.cpp"},
                        {"l1_lock_cycle_b.cpp", "src/margolite/cycle_b.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << [&] {
    std::ostringstream os;
    for (const auto& f : findings) os << f.format() << "\n";
    return os.str();
  }();
  const auto& f = findings.front();
  EXPECT_EQ(symlint::rule_id(f.rule), "L1");
  // The witness starts at the canonical (lexicographically smallest) mutex:
  // the g_a -> g_b acquisition in take_ab at cycle_a.cpp:11.
  EXPECT_EQ(f.file, "src/margolite/cycle_a.cpp");
  EXPECT_EQ(f.line, 11);
  EXPECT_EQ(f.key, "cycle:g_a->g_b->g_c->g_a");
  EXPECT_NE(f.message.find("g_a -> g_b at src/margolite/cycle_a.cpp:11"),
            std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("in take_ab"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("g_c -> g_a at src/margolite/cycle_b.cpp:18"),
            std::string::npos)
      << f.message;
}

TEST(SymlintCrossTu, L1CycleSuppressedByAllowAtAnAcquisitionSite) {
  // Annotate the acquisition that closes the cycle (g_a taken while g_c is
  // held, in take_ca): an allow(lock-order) covering any witness edge kills
  // the report.
  std::string half_b = read_fixture("l1_lock_cycle_b.cpp");
  const std::string anchor = "  sym::abt::LockGuard second(g_a);";
  const auto at = half_b.find(anchor);
  ASSERT_NE(at, std::string::npos);
  half_b.insert(at,
                "  // symlint: allow(lock-order) reason=ca ordering is "
                "guarded by the window barrier\n");
  std::vector<symlint::TuIndex> tus;
  tus.push_back(symlint::build_tu_index(
      "src/margolite/cycle_a.cpp", read_fixture("l1_lock_cycle_a.cpp")));
  tus.push_back(symlint::build_tu_index("src/margolite/cycle_b.cpp", half_b));
  EXPECT_TRUE(symlint::analyze_project(tus).empty());
}

TEST(SymlintCrossTu, E1EscapedThreadLocalWithWorkerPathWitness) {
  const auto findings =
      analyze_fixtures({{"e1_escape.cpp", "src/simkit/fiber.fixture.cpp"}});
  ASSERT_EQ(findings.size(), 1u);
  const auto& f = findings.front();
  EXPECT_EQ(symlint::rule_id(f.rule), "E1");
  EXPECT_EQ(f.file, "src/simkit/fiber.fixture.cpp");
  EXPECT_EQ(f.line, 9);  // the thread_local declaration
  EXPECT_EQ(f.key, "static:src/simkit/fiber.fixture.cpp:t_scratch_depth");
  EXPECT_NE(f.message.find("thread_local"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("Worker path: worker_entry"), std::string::npos)
      << f.message;
}

TEST(SymlintCrossTu, E1SuppressedByLaneBindOrAnnotation) {
  // A lane-ownership bind in a referencing function claims the state.
  const std::string bound =
      "namespace sym::sim {\n"
      "thread_local int t_depth = 0;\n"
      "void worker_entry(void* self) {\n"
      "  sym::sim::debug::bind_home_lane(self, 0);\n"
      "  t_depth += 1;\n"
      "}\n"
      "}\n";
  std::vector<symlint::TuIndex> tus;
  tus.push_back(
      symlint::build_tu_index("src/simkit/fiber.fixture.cpp", bound));
  EXPECT_TRUE(symlint::analyze_project(tus).empty());

  // An allow(shared-state-escape) on the declaration does the same.
  const std::string annotated =
      "namespace sym::sim {\n"
      "// symlint: allow(shared-state-escape) reason=worker-confined\n"
      "thread_local int t_depth = 0;\n"
      "void worker_entry() { t_depth += 1; }\n"
      "}\n";
  tus.clear();
  tus.push_back(
      symlint::build_tu_index("src/simkit/fiber.fixture.cpp", annotated));
  EXPECT_TRUE(symlint::analyze_project(tus).empty());
}

TEST(SymlintCrossTu, T1ClockTaintReachesTimestampThroughCallAndLocal) {
  const auto findings =
      analyze_fixtures({{"t1_taint.cpp", "src/margolite/fixture_t1.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << [&] {
    std::ostringstream os;
    for (const auto& f : findings) os << f.format() << "\n";
    return os.str();
  }();
  const auto& f = findings.front();
  EXPECT_EQ(symlint::rule_id(f.rule), "T1");
  EXPECT_EQ(f.file, "src/margolite/fixture_t1.cpp");
  EXPECT_EQ(f.line, 16);  // the eng.after(delay, ...) sink
  EXPECT_EQ(f.key, "taint:src/margolite/fixture_t1.cpp:schedule_with_skew:after");
  // The allow(nondeterminism) on the source suppressed D1 but not the taint;
  // the message names the origin primitive and site.
  EXPECT_NE(f.message.find("'time' at src/margolite/fixture_t1.cpp:11"),
            std::string::npos)
      << f.message;
}

TEST(SymlintCrossTu, T1SuppressedOnlyByDeterminismTaintAllowAtSink) {
  std::string fixture = read_fixture("t1_taint.cpp");
  const std::string sink = "  eng.after(delay, [] {});";
  const auto at = fixture.find(sink);
  ASSERT_NE(at, std::string::npos);
  fixture.insert(at,
                 "  // symlint: allow(determinism-taint) reason=skew is "
                 "config, frozen before the run\n");
  std::vector<symlint::TuIndex> tus;
  tus.push_back(
      symlint::build_tu_index("src/margolite/fixture_t1.cpp", fixture));
  EXPECT_TRUE(symlint::analyze_project(tus).empty());
}

// ---------------------------------------------------------------------------
// B1 / B2: hot-path may-block / may-allocate, direct and reach faces
// ---------------------------------------------------------------------------

TEST(SymlintCrossTu, B2DirectFaceFlagsRawAllocationOnHotPathFiles) {
  // The retired per-TU D3 allocation face, now the B2 direct face: raw
  // allocation inside a lane-executed hot-path file. Placement new and the
  // annotated spill site pass.
  const auto findings =
      analyze_fixtures({{"d3_hotpath_alloc.cpp", "src/simkit/lane.cpp"}});
  ASSERT_EQ(findings.size(), 3u) << [&] {
    std::ostringstream os;
    for (const auto& f : findings) os << f.format() << "\n";
    return os.str();
  }();
  const std::vector<std::pair<int, std::string>> expected = {
      {18, "alloc:src/simkit/lane.cpp:bad_new:new"},
      {22, "alloc:src/simkit/lane.cpp:bad_malloc:malloc()"},
      {26, "alloc:src/simkit/lane.cpp:bad_realloc:realloc()"},
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(symlint::rule_id(findings[i].rule), "B2");
    EXPECT_EQ(findings[i].file, "src/simkit/lane.cpp");
    EXPECT_EQ(findings[i].line, expected[i].first) << findings[i].format();
    EXPECT_EQ(findings[i].key, expected[i].second);
  }
}

TEST(SymlintCrossTu, B2DirectFaceDoesNotApplyOffTheHotPath) {
  // The same fixture under a simkit file that is off the per-event path
  // (fiber pool): allocation there is setup cost, not steady-state cost.
  EXPECT_TRUE(
      analyze_fixtures({{"d3_hotpath_alloc.cpp", "src/simkit/fiber.cpp"}})
          .empty());
}

TEST(SymlintCrossTu, B1ReachCrossesTwoHelperHopsIntoAnotherTu) {
  // Lane::pop_and_run (hot-path root) -> flush_stage_one -> flush_stage_two
  // -> usleep(): the blocking leaf is two hops deep in a different TU, and
  // the witness chain carries file:line at every hop.
  const auto findings = analyze_fixtures(
      {{"b1_reach_root.cpp", "src/simkit/lane.fixture.cpp"},
       {"b1_reach_helper.cpp", "src/margolite/flush.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << [&] {
    std::ostringstream os;
    for (const auto& f : findings) os << f.format() << "\n";
    return os.str();
  }();
  const auto& f = findings.front();
  EXPECT_EQ(symlint::rule_id(f.rule), "B1");
  EXPECT_EQ(f.file, "src/simkit/lane.fixture.cpp");
  EXPECT_EQ(f.line, 15);  // the root definition
  EXPECT_EQ(f.key, "block:src/simkit/lane.fixture.cpp:Lane::pop_and_run");
  EXPECT_NE(
      f.message.find("Lane::pop_and_run -> flush_stage_one "
                     "[src/simkit/lane.fixture.cpp:16] -> flush_stage_two "
                     "[src/margolite/flush.cpp:12]"),
      std::string::npos)
      << f.message;
  EXPECT_NE(
      f.message.find("blocking site 'usleep()' at src/margolite/flush.cpp:8"),
      std::string::npos)
      << f.message;
}

TEST(SymlintCrossTu, B1ReachSuppressedByAllowAtTheRoot) {
  // allow(may-block) on the root definition accepts the whole reachability
  // class for that root (the site annotation works the same way).
  std::string root = read_fixture("b1_reach_root.cpp");
  const std::string anchor = "void Lane::pop_and_run() {";
  const auto at = root.find(anchor);
  ASSERT_NE(at, std::string::npos);
  root.insert(at,
              "// symlint: allow(may-block) reason=drains under the window "
              "barrier\n");
  std::vector<symlint::TuIndex> tus;
  tus.push_back(
      symlint::build_tu_index("src/simkit/lane.fixture.cpp", root));
  tus.push_back(symlint::build_tu_index("src/margolite/flush.cpp",
                                        read_fixture("b1_reach_helper.cpp")));
  EXPECT_TRUE(symlint::analyze_project(tus).empty());
}

TEST(SymlintCrossTu, B2ReachFollowsAFunctionPointerStoredInASlot) {
  // The allocating callee is never called directly — only its address is
  // taken (`slot_.emplace(&make_burst)`); the fn-ref edge carries the
  // reachability and renders as "&make_burst" in the witness chain.
  const auto findings = analyze_fixtures(
      {{"b2_fnref_spill.cpp", "src/workloads/loadgen.fixture.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << [&] {
    std::ostringstream os;
    for (const auto& f : findings) os << f.format() << "\n";
    return os.str();
  }();
  const auto& f = findings.front();
  EXPECT_EQ(symlint::rule_id(f.rule), "B2");
  EXPECT_EQ(f.file, "src/workloads/loadgen.fixture.cpp");
  EXPECT_EQ(f.line, 31);  // the root definition
  EXPECT_EQ(f.key,
            "alloc:src/workloads/loadgen.fixture.cpp:LoadgenWorld::pump_tick");
  EXPECT_NE(f.message.find("LoadgenWorld::pump_tick -> &make_burst "
                           "[src/workloads/loadgen.fixture.cpp:32]"),
            std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("allocating site 'new' at "
                           "src/workloads/loadgen.fixture.cpp:15"),
            std::string::npos)
      << f.message;
}

// ---------------------------------------------------------------------------
// P1: PVAR / action-span contract against the doc catalogue
// ---------------------------------------------------------------------------

TEST(SymlintCrossTu, P1PvarContractReportsDriftInBothDirections) {
  std::vector<symlint::TuIndex> tus;
  tus.push_back(symlint::build_tu_index("src/merclite/pvar_drift.cpp",
                                        read_fixture("p1_pvar_drift.cpp")));
  // Declares one never-registered PVAR (line 7) and span (line 13), plus
  // the policy:fixture_capacity span the fixture registers dynamically
  // ("policy:" + name expanded against add_rule literals) — no drift there.
  const std::string doc =
      "# fixture doc\n"
      "\n"
      "## PVARs\n"
      "\n"
      "| name | class |\n"
      "|---|---|\n"
      "| `fixture_documented_only_pvar` | COUNTER |\n"
      "\n"
      "## Action spans\n"
      "\n"
      "| name | notes |\n"
      "|---|---|\n"
      "| `fixture_declared_only_span` | never registered |\n"
      "| `policy:fixture_capacity` | declared dynamic expansion |\n";
  const auto findings =
      symlint::check_pvar_contract(tus, doc, "docs/PVARS.md");
  ASSERT_EQ(findings.size(), 4u) << [&] {
    std::ostringstream os;
    for (const auto& f : findings) os << f.format() << "\n";
    return os.str();
  }();
  // Sorted by file then line: the two doc-side rows first.
  EXPECT_EQ(findings[0].file, "docs/PVARS.md");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_EQ(findings[0].key, "pvar:unregistered:fixture_documented_only_pvar");
  EXPECT_EQ(findings[1].file, "docs/PVARS.md");
  EXPECT_EQ(findings[1].line, 13);
  EXPECT_EQ(findings[1].key, "span:unregistered:fixture_declared_only_span");
  EXPECT_EQ(findings[2].file, "src/merclite/pvar_drift.cpp");
  EXPECT_EQ(findings[2].line, 12);
  EXPECT_EQ(findings[2].key, "pvar:undocumented:fixture_undocumented_pvar");
  EXPECT_EQ(findings[3].file, "src/merclite/pvar_drift.cpp");
  EXPECT_EQ(findings[3].line, 15);
  EXPECT_EQ(findings[3].key, "span:undocumented:fixture_undeclared_span");
  for (const auto& f : findings) {
    EXPECT_EQ(symlint::rule_id(f.rule), "P1");
    EXPECT_EQ(f.message.find("fixture_capacity"), std::string::npos)
        << "policy:<rule> expansion should have matched: " << f.message;
  }
}

// ---------------------------------------------------------------------------
// SARIF emission and the baseline
// ---------------------------------------------------------------------------

TEST(SymlintEmit, SarifIsValidJsonWithStableStructure) {
  auto findings =
      analyze_fixtures({{"l1_lock_cycle_a.cpp", "src/margolite/cycle_a.cpp"},
                        {"l1_lock_cycle_b.cpp", "src/margolite/cycle_b.cpp"},
                        {"e1_escape.cpp", "src/simkit/fiber.fixture.cpp"},
                        {"t1_taint.cpp", "src/margolite/fixture_t1.cpp"}});
  ASSERT_EQ(findings.size(), 3u);
  const std::string sarif = symlint::to_sarif(findings);

  symlint::json::Value doc;
  std::string err;
  ASSERT_TRUE(symlint::json::parse(sarif, doc, err)) << err;
  ASSERT_EQ(doc.kind, symlint::json::Value::kObject);
  ASSERT_NE(doc.find("version"), nullptr);
  EXPECT_EQ(doc.find("version")->str, "2.1.0");

  const auto* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->arr.size(), 1u);
  const auto& run = runs->arr.front();
  const auto* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->str, "symlint");
  // A0, D1-D4, L1, E1, T1, B1, B2, P1
  EXPECT_EQ(driver->find("rules")->arr.size(), 11u);

  const auto* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->arr.size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& r = results->arr[i];
    EXPECT_EQ(r.find("ruleId")->str, symlint::rule_id(findings[i].rule));
    const auto& loc = r.find("locations")->arr.front();
    const auto* phys = loc.find("physicalLocation");
    EXPECT_EQ(phys->find("artifactLocation")->find("uri")->str,
              findings[i].file);
    EXPECT_EQ(static_cast<int>(phys->find("region")->find("startLine")->number),
              findings[i].line);
    EXPECT_EQ(r.find("partialFingerprints")->find("symlintKey")->str,
              findings[i].key);
  }
}

TEST(SymlintEmit, BaselineSuppressesByKeyAndReportsStaleEntries) {
  auto findings =
      analyze_fixtures({{"e1_escape.cpp", "src/simkit/fiber.fixture.cpp"},
                        {"t1_taint.cpp", "src/margolite/fixture_t1.cpp"}});
  ASSERT_EQ(findings.size(), 2u);

  const std::string text = R"({
    "findings": [
      {"rule": "E1", "file": "src/simkit/fiber.fixture.cpp",
       "key": "static:src/simkit/fiber.fixture.cpp:t_scratch_depth",
       "reason": "fixture"},
      {"rule": "L1", "file": "src/nowhere.cpp", "key": "cycle:x->y->x",
       "reason": "stale"}
    ]
  })";
  symlint::Baseline baseline;
  std::string err;
  ASSERT_TRUE(symlint::load_baseline(text, baseline, err)) << err;

  std::vector<const symlint::BaselineEntry*> unused;
  const auto suppressed =
      symlint::apply_baseline(baseline, findings, &unused);
  EXPECT_EQ(suppressed, 1u);
  ASSERT_EQ(findings.size(), 1u);  // the T1 survives
  EXPECT_EQ(symlint::rule_id(findings.front().rule), "T1");
  ASSERT_EQ(unused.size(), 1u);  // the stale L1 entry is reported
  EXPECT_EQ(unused.front()->rule, "L1");
}

TEST(SymlintEmit, SerializeBaselineRoundTripsAndPreservesComment) {
  // --prune-baseline rewrites the file through serialize_baseline; the
  // canonical form must survive a load round-trip, comment included.
  symlint::Baseline b;
  b.comment = "triage ledger";
  symlint::BaselineEntry e;
  e.rule = "E1";
  e.file = "src/x.cpp";
  e.key = "static:src/x.cpp:g_state";
  e.reason = "fixture";
  b.entries.push_back(e);
  const std::string text = symlint::serialize_baseline(b);
  symlint::Baseline back;
  std::string err;
  ASSERT_TRUE(symlint::load_baseline(text, back, err)) << err << "\n" << text;
  EXPECT_EQ(back.comment, "triage ledger");
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_EQ(back.entries.front().rule, "E1");
  EXPECT_EQ(back.entries.front().key, "static:src/x.cpp:g_state");
  EXPECT_EQ(back.entries.front().reason, "fixture");
}

TEST(SymlintEmit, MalformedBaselineIsAnError) {
  symlint::Baseline baseline;
  std::string err;
  EXPECT_FALSE(symlint::load_baseline("{\"findings\": [{}]}", baseline, err));
  EXPECT_FALSE(symlint::load_baseline("not json", baseline, err));
  EXPECT_FALSE(symlint::load_baseline("[]", baseline, err));
}

// ---------------------------------------------------------------------------
// Incremental index cache
// ---------------------------------------------------------------------------

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

TEST(SymlintIndex, TouchingAHeaderReindexesOnlyItsDependents) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::current_path() / "symlint_cache_test";
  fs::remove_all(dir);
  fs::create_directories(dir / "tree");
  write_file(dir / "tree/a.hpp", "int shared_helper();\n");
  write_file(dir / "tree/b.cpp",
             "#include \"a.hpp\"\nint use() { return shared_helper(); }\n");
  write_file(dir / "tree/c.cpp", "int lonely() { return 3; }\n");

  symlint::IndexOptions opt;
  opt.cache_dir = (dir / "cache").string();
  opt.jobs = 2;
  opt.roots = {(dir / "tree").string()};
  const std::vector<std::string> files = {(dir / "tree/a.hpp").string(),
                                          (dir / "tree/b.cpp").string(),
                                          (dir / "tree/c.cpp").string()};

  symlint::IndexStats stats;
  (void)symlint::run_index(files, opt, &stats);
  EXPECT_EQ(stats.files, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);

  (void)symlint::run_index(files, opt, &stats);
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.reindexed, 0u);

  // Touch the header: itself and its includer re-index; c.cpp stays cached.
  write_file(dir / "tree/a.hpp", "int shared_helper();\nint another();\n");
  const auto tus = symlint::run_index(files, opt, &stats);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.reindexed, 2u);
  ASSERT_EQ(tus.size(), 3u);
  EXPECT_FALSE(tus[0].from_cache);  // a.hpp
  EXPECT_FALSE(tus[1].from_cache);  // b.cpp (transitive dependent)
  EXPECT_TRUE(tus[2].from_cache);   // c.cpp

  fs::remove_all(dir);
}

TEST(SymlintIndex, DiffModeReanalyzesOnlyChangedFilesAndDependents) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::current_path() / "symlint_diff_test";
  fs::remove_all(dir);
  fs::create_directories(dir / "tree");
  write_file(dir / "tree/a.hpp", "int shared_helper();\n");
  write_file(dir / "tree/b.cpp",
             "#include \"a.hpp\"\nint use() { return shared_helper(); }\n");
  write_file(dir / "tree/c.cpp", "int lonely() { return 3; }\n");

  symlint::IndexOptions opt;
  opt.cache_dir = (dir / "cache").string();
  opt.jobs = 2;
  opt.roots = {(dir / "tree").string()};
  const std::vector<std::string> files = {(dir / "tree/a.hpp").string(),
                                          (dir / "tree/b.cpp").string(),
                                          (dir / "tree/c.cpp").string()};

  symlint::IndexStats stats;
  (void)symlint::run_index(files, opt, &stats);  // warm the cache
  EXPECT_EQ(stats.reindexed, 3u);

  // Edit BOTH the header and the unrelated TU on disk, but declare only the
  // header changed: diff mode must re-analyze a.hpp plus its reverse
  // include-dependent b.cpp, and serve c.cpp from cache as-is — no
  // content-hash validation for files outside the analysis set.
  write_file(dir / "tree/a.hpp", "int shared_helper();\nint another();\n");
  write_file(dir / "tree/c.cpp",
             "int lonely() { return 3; }\nint extra() { return 4; }\n");
  opt.diff_mode = true;
  opt.changed = {"a.hpp"};
  const auto tus = symlint::run_index(files, opt, &stats);
  EXPECT_EQ(stats.reindexed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  ASSERT_EQ(tus.size(), 3u);
  EXPECT_FALSE(tus[0].from_cache);  // a.hpp: changed
  EXPECT_FALSE(tus[1].from_cache);  // b.cpp: reverse include-dependent
  EXPECT_TRUE(tus[2].from_cache);   // c.cpp: outside the analysis set
  // Proof the diff run never read c.cpp's new content: the served index
  // still has only the one function from before the on-disk edit.
  EXPECT_EQ(tus[2].functions.size(), 1u);

  fs::remove_all(dir);
}

TEST(SymlintIndex, WarmCacheRunIsAtLeastFiveTimesFasterThanCold) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::current_path() / "symlint_cache_bench";
  fs::remove_all(dir);
  fs::create_directories(dir / "tree");

  // Token-heavy bodies make the cold path (lex + scan + per-TU lint) pay;
  // the cached entries stay tiny, so the warm path is a cheap parse.
  std::ostringstream body;
  body << "int heavy() {\n  int a = 0;\n";
  for (int i = 0; i < 1500; ++i) body << "  a = a + " << "a * a - a;\n";
  body << "  return a;\n}\n";
  std::vector<std::string> files;
  for (int i = 0; i < 24; ++i) {
    const fs::path p = dir / "tree" / ("f" + std::to_string(i) + ".cpp");
    write_file(p, body.str());
    files.push_back(p.string());
  }

  symlint::IndexOptions opt;
  opt.cache_dir = (dir / "cache").string();
  opt.jobs = 1;  // single-threaded: measure work, not scheduling
  symlint::IndexStats stats;

  const auto t0 = std::chrono::steady_clock::now();
  (void)symlint::run_index(files, opt, &stats);
  const auto t1 = std::chrono::steady_clock::now();
  ASSERT_EQ(stats.reindexed, files.size());

  // Best of two warm runs, to shield the ratio from scheduler noise.
  auto warm = std::chrono::steady_clock::duration::max();
  for (int pass = 0; pass < 2; ++pass) {
    const auto w0 = std::chrono::steady_clock::now();
    (void)symlint::run_index(files, opt, &stats);
    const auto w1 = std::chrono::steady_clock::now();
    ASSERT_EQ(stats.cache_hits, files.size());
    warm = std::min(warm, w1 - w0);
  }
  const auto cold = t1 - t0;
  EXPECT_GE(cold.count(), 5 * warm.count())
      << "cold=" << std::chrono::duration_cast<std::chrono::microseconds>(cold)
                        .count()
      << "us warm="
      << std::chrono::duration_cast<std::chrono::microseconds>(warm).count()
      << "us";

  fs::remove_all(dir);
}

// The repository itself must stay clean: this is the same gate the `symlint`
// ctest target enforces via the CLI, asserted here against the real tree so
// a lint regression fails in-process with the offending findings printed.
TEST(Symlint, RepositorySourceTreeIsClean) {
  // Walk the list the CLI would: every .cpp/.hpp under src/.
  std::vector<symlint::Finding> findings;
  const std::string root = std::string(SYM_SOURCE_DIR) + "/src";
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    symlint::lint_file(entry.path().string(), findings);
  }
  for (const auto& f : findings) ADD_FAILURE() << f.format();
}

}  // namespace
