// Tests for the extension components: SSG group membership, REMI data
// migration and the policy-driven dynamic reconfiguration engine (the
// paper's §VII future work).
#include <gtest/gtest.h>

#include "margolite/policy.hpp"
#include "services/remi/remi.hpp"
#include "services/sdskv/sdskv.hpp"
#include "services/ssg/ssg.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/breadcrumb.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace margo = sym::margo;
namespace ssg = sym::ssg;
namespace remi = sym::remi;
namespace sdskv = sym::sdskv;
namespace prof = sym::prof;

namespace {

struct MultiWorld {
  explicit MultiWorld(std::size_t servers, std::uint64_t seed = 31)
      : eng(seed),
        cluster(eng, sim::ClusterParams{
                         .node_count =
                             static_cast<std::uint32_t>(servers + 1)}),
        fabric(cluster) {
    for (std::size_t i = 0; i < servers; ++i) {
      auto& proc = cluster.spawn_process(static_cast<sim::NodeId>(i),
                                         "server-" + std::to_string(i));
      margo::InstanceConfig mc;
      mc.server = true;
      mc.handler_es = 2;
      instances.push_back(
          std::make_unique<margo::Instance>(fabric, proc, mc));
    }
    auto& cproc = cluster.spawn_process(
        static_cast<sim::NodeId>(servers), "client");
    client = std::make_unique<margo::Instance>(fabric, cproc,
                                               margo::InstanceConfig{});
  }

  void run_client(std::function<void()> body) {
    for (auto& s : instances) s->start();
    client->start();
    client->spawn([this, body = std::move(body)] {
      body();
      client->finalize();
      for (auto& s : instances) s->finalize();
    });
    eng.run();
  }

  sim::Engine eng;
  sim::Cluster cluster;
  ofi::Fabric fabric;
  std::vector<std::unique_ptr<margo::Instance>> instances;
  std::unique_ptr<margo::Instance> client;
};

}  // namespace

// ---------------------------------------------------------------------------
// SSG
// ---------------------------------------------------------------------------

TEST(Ssg, BootstrapViewRanks) {
  MultiWorld w(3);
  std::vector<ofi::EpAddr> addrs;
  for (auto& s : w.instances) addrs.push_back(s->addr());
  std::vector<std::unique_ptr<ssg::Member>> members;
  for (auto& s : w.instances) {
    members.push_back(std::make_unique<ssg::Member>(*s, "grp", addrs));
  }
  EXPECT_EQ(members[0]->self_rank(), 0);
  EXPECT_EQ(members[2]->self_rank(), 2);
  EXPECT_EQ(members[1]->view().size(), 3u);
  EXPECT_EQ(members[1]->member(2), addrs[2]);
  EXPECT_EQ(members[0]->view().rank_of(9999), -1);
}

TEST(Ssg, ObserverFetchesView) {
  MultiWorld w(3);
  std::vector<ofi::EpAddr> addrs;
  for (auto& s : w.instances) addrs.push_back(s->addr());
  std::vector<std::unique_ptr<ssg::Member>> members;
  for (auto& s : w.instances) {
    members.push_back(std::make_unique<ssg::Member>(*s, "hepnos-grp", addrs));
  }
  ssg::Observer observer(*w.client);
  ssg::GroupView seen;
  ssg::GroupView unknown;
  w.run_client([&] {
    seen = observer.observe(addrs[1], "hepnos-grp");
    unknown = observer.observe(addrs[1], "no-such-group");
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.members, addrs);
  EXPECT_EQ(seen.name, "hepnos-grp");
  EXPECT_EQ(unknown.size(), 0u);
}

TEST(Ssg, DynamicJoinPropagatesView) {
  MultiWorld w(3);
  std::vector<ofi::EpAddr> founding{w.instances[0]->addr(),
                                    w.instances[1]->addr()};
  auto m0 = std::make_unique<ssg::Member>(*w.instances[0], "grp", founding);
  auto m1 = std::make_unique<ssg::Member>(*w.instances[1], "grp", founding);
  std::unique_ptr<ssg::Member> joiner;
  // instances[2] joins through instance 0; it must learn the full view and
  // instance 1 must be told about the new member.
  for (auto& s : w.instances) s->start();
  w.client->start();
  w.instances[2]->spawn([&] {
    joiner = ssg::Member::join(*w.instances[2], "grp",
                               w.instances[0]->addr());
    w.client->finalize();
    for (auto& s : w.instances) s->finalize();
  });
  w.eng.run();

  ASSERT_NE(joiner, nullptr);
  EXPECT_EQ(joiner->view().size(), 3u);
  EXPECT_EQ(joiner->self_rank(), 2);
  EXPECT_EQ(m0->view().size(), 3u);
  EXPECT_EQ(m1->view().size(), 3u);  // propagated update
  EXPECT_GE(m1->updates_received(), 1u);
  EXPECT_GT(m0->view().version, 1u);
}

// ---------------------------------------------------------------------------
// REMI
// ---------------------------------------------------------------------------

TEST(Remi, MigratesDatabaseBetweenProviders) {
  MultiWorld w(2);
  sdskv::Provider kv_src(*w.instances[0], 1, sdskv::ProviderConfig{.db_count = 2});
  sdskv::Provider kv_dst(*w.instances[1], 1, sdskv::ProviderConfig{.db_count = 2});
  remi::Provider remi_src(*w.instances[0], 7, kv_src, 1);
  remi::Provider remi_dst(*w.instances[1], 7, kv_dst, 1);
  remi::Client rc(*w.client);
  sdskv::Client kvc(*w.client);

  remi::MigrationResult result;
  w.run_client([&] {
    // Seed the source database via the RPC path.
    std::vector<sdskv::KeyValue> kvs;
    for (int i = 0; i < 300; ++i) {
      kvs.emplace_back("mig-" + std::to_string(i), std::string(64, 'm'));
    }
    kvc.put_packed(w.instances[0]->addr(), 1, 0, std::move(kvs));

    result = rc.migrate(w.instances[0]->addr(), 7, /*src_db=*/0,
                        w.instances[1]->addr(), 7, /*dst_db=*/1,
                        /*erase_source=*/true);

    // Data must now live on the destination, not the source.
    std::string v;
    EXPECT_EQ(kvc.get(w.instances[1]->addr(), 1, 1, "mig-42", &v),
              sdskv::Status::kOk);
    EXPECT_EQ(v.size(), 64u);
    EXPECT_EQ(kvc.get(w.instances[0]->addr(), 1, 0, "mig-42", &v),
              sdskv::Status::kNotFound);
  });

  EXPECT_EQ(result.status, remi::Status::kOk);
  EXPECT_EQ(result.items, 300u);
  EXPECT_GT(result.bytes, 300u * 64u);
  EXPECT_EQ(kv_dst.db(1).size(), 300u);
  EXPECT_EQ(kv_src.db(0).size(), 0u);
  EXPECT_EQ(remi_src.migrations_served(), 1u);
  EXPECT_EQ(remi_dst.receives_served(), 1u);
}

TEST(Remi, CopySemanticsKeepSource) {
  MultiWorld w(2);
  sdskv::Provider kv_src(*w.instances[0], 1, sdskv::ProviderConfig{});
  sdskv::Provider kv_dst(*w.instances[1], 1, sdskv::ProviderConfig{});
  remi::Provider remi_src(*w.instances[0], 7, kv_src, 1);
  remi::Provider remi_dst(*w.instances[1], 7, kv_dst, 1);
  remi::Client rc(*w.client);
  sdskv::Client kvc(*w.client);
  w.run_client([&] {
    kvc.put(w.instances[0]->addr(), 1, 0, "keep-me", "v");
    const auto result = rc.migrate(w.instances[0]->addr(), 7, 0,
                                   w.instances[1]->addr(), 7, 0,
                                   /*erase_source=*/false);
    EXPECT_EQ(result.status, remi::Status::kOk);
    EXPECT_EQ(result.items, 1u);
  });
  EXPECT_EQ(kv_src.db(0).size(), 1u);
  EXPECT_EQ(kv_dst.db(0).size(), 1u);
}

TEST(Remi, BadDatabaseReported) {
  MultiWorld w(2);
  sdskv::Provider kv_src(*w.instances[0], 1, sdskv::ProviderConfig{});
  sdskv::Provider kv_dst(*w.instances[1], 1, sdskv::ProviderConfig{});
  remi::Provider remi_src(*w.instances[0], 7, kv_src, 1);
  remi::Provider remi_dst(*w.instances[1], 7, kv_dst, 1);
  remi::Client rc(*w.client);
  remi::MigrationResult result;
  w.run_client([&] {
    result = rc.migrate(w.instances[0]->addr(), 7, /*src_db=*/5,
                        w.instances[1]->addr(), 7, 0);
  });
  EXPECT_EQ(result.status, remi::Status::kBadDb);
}

TEST(Remi, MigrationProducesDepthThreeCallpaths) {
  MultiWorld w(2);
  sdskv::Provider kv_src(*w.instances[0], 1, sdskv::ProviderConfig{});
  sdskv::Provider kv_dst(*w.instances[1], 1, sdskv::ProviderConfig{});
  remi::Provider remi_src(*w.instances[0], 7, kv_src, 1);
  remi::Provider remi_dst(*w.instances[1], 7, kv_dst, 1);
  remi::Client rc(*w.client);
  sdskv::Client kvc(*w.client);
  w.run_client([&] {
    kvc.put(w.instances[0]->addr(), 1, 0, "x", "y");
    rc.migrate(w.instances[0]->addr(), 7, 0, w.instances[1]->addr(), 7, 0);
  });
  // remi_migrate_rpc => remi_receive_rpc => sdskv_put_packed_rpc recorded
  // on the destination's own SDSKV target side.
  const auto expected = prof::extend(
      prof::extend(prof::hash16("remi_migrate_rpc"),
                   prof::hash16("remi_receive_rpc")),
      prof::hash16("sdskv_put_packed_rpc"));
  bool found = false;
  for (const auto& [key, stats] : w.instances[1]->profile().entries()) {
    if (key.breadcrumb == expected) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(prof::depth(expected), 3);
}

// ---------------------------------------------------------------------------
// Policy engine
// ---------------------------------------------------------------------------

TEST(Policy, HandlerAutoscaleAddsExecutionStreams) {
  MultiWorld w(1);
  auto& server = *w.instances[0];  // 2 handler ESs
  int slow_count = 0;
  server.register_rpc("slow_rpc", 1, [&](margo::Request& req) {
    sym::abt::compute(sim::usec(400));
    ++slow_count;
    req.respond({});
  });
  const auto rpc = w.client->register_client_rpc("slow_rpc");

  margo::PolicyEngine engine(server, sim::usec(200));
  engine.add_rule("autoscale",
                  margo::PolicyEngine::handler_autoscale(
                      /*backlog_per_es=*/2.0, /*consecutive=*/2));
  w.instances[0]->start();
  engine.start();
  w.client->start();
  w.client->spawn([&] {
    // Flood with 64 concurrent slow requests: 2 ESs cannot keep up.
    std::vector<margo::PendingOpPtr> ops;
    for (int i = 0; i < 64; ++i) {
      ops.push_back(w.client->forward_async(server.addr(), 1, rpc, {}));
    }
    for (auto& op : ops) op->wait();
    w.client->finalize();
    server.finalize();
  });
  w.eng.run();

  EXPECT_EQ(slow_count, 64);
  EXPECT_GT(server.handler_es_count(), 2u);  // the policy scaled us up
  ASSERT_FALSE(engine.actions().empty());
  EXPECT_NE(engine.actions()[0].description.find("scaling"),
            std::string::npos);
  EXPECT_GT(engine.samples_taken(), 0u);
}

TEST(Policy, AdaptiveMaxEventsRaisesThreshold) {
  // Client-side policy: shared progress ES + tiny RPCs pin the OFI reads at
  // the threshold; the rule must raise OFI_max_events.
  MultiWorld w(1);
  auto& server = *w.instances[0];
  server.register_rpc("tiny_rpc", 1,
                      [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client->register_client_rpc("tiny_rpc");

  margo::PolicyEngine engine(*w.client, sim::usec(100));
  engine.add_rule("adaptive_max_events",
                  margo::PolicyEngine::adaptive_max_events(
                      /*consecutive=*/2, /*cap=*/128));
  server.start();
  w.client->start();
  engine.start();
  w.client->spawn([&] {
    for (int round = 0; round < 60; ++round) {
      std::vector<margo::PendingOpPtr> ops;
      for (int i = 0; i < 48; ++i) {
        ops.push_back(w.client->forward_async(server.addr(), 1, rpc, {}));
      }
      for (auto& op : ops) op->wait();
    }
    w.client->finalize();
    server.finalize();
  });
  w.eng.run();

  EXPECT_GT(w.client->hg_class().config().max_events, 16u);
  ASSERT_FALSE(engine.actions().empty());
  EXPECT_NE(engine.actions()[0].description.find("OFI_max_events"),
            std::string::npos);
}

TEST(Policy, RssWatermarkFiresOncePerCrossing) {
  MultiWorld w(1);
  auto& server = *w.instances[0];
  margo::PolicyEngine engine(server, sim::usec(100));
  engine.add_rule("rss", margo::PolicyEngine::rss_watermark(16ULL << 20));
  server.start();
  engine.start();
  w.client->start();
  // Push RSS above 16 MiB shortly after start.
  w.eng.after(sim::usec(250), [&] { server.process().add_rss(32 << 20); });
  w.eng.after(sim::msec(2), [&] {
    server.finalize();
    w.client->finalize();
  });
  w.eng.run();
  ASSERT_EQ(engine.actions().size(), 1u);  // fires once, not per sample
  EXPECT_NE(engine.actions()[0].description.find("watermark"),
            std::string::npos);
}

TEST(Policy, NoFalsePositivesWhenIdle) {
  MultiWorld w(1);
  auto& server = *w.instances[0];
  margo::PolicyEngine engine(server, sim::usec(100));
  engine.add_rule("autoscale", margo::PolicyEngine::handler_autoscale());
  engine.add_rule("adaptive", margo::PolicyEngine::adaptive_max_events());
  server.start();
  engine.start();
  w.client->start();
  w.eng.after(sim::msec(2), [&] {
    server.finalize();
    w.client->finalize();
  });
  w.eng.run();
  EXPECT_TRUE(engine.actions().empty());
  EXPECT_GT(engine.samples_taken(), 10u);
}
