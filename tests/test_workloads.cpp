// Tests for the workloads layer: Table IV configurations and the HEPnOS /
// Mobject deployment harnesses (small-scale end-to-end runs).
#include <gtest/gtest.h>

#include "symbiosys/analysis.hpp"
#include "workloads/hepnos_world.hpp"
#include "workloads/mobject_world.hpp"
#include "workloads/table4.hpp"

namespace sim = sym::sim;
namespace prof = sym::prof;
using namespace sym::workloads;

// ---------------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------------

TEST(Table4, MatchesPaperRows) {
  const auto c1 = table4_c1();
  EXPECT_EQ(c1.total_clients, 32u);
  EXPECT_EQ(c1.clients_per_node, 16u);
  EXPECT_EQ(c1.total_servers, 4u);
  EXPECT_EQ(c1.servers_per_node, 2u);
  EXPECT_EQ(c1.batch_size, 1024u);
  EXPECT_EQ(c1.threads_es, 5u);
  EXPECT_EQ(c1.databases, 32u);
  EXPECT_FALSE(c1.client_progress_thread);
  EXPECT_EQ(c1.ofi_max_events, 16u);

  EXPECT_EQ(table4_c2().threads_es, 20u);
  EXPECT_EQ(table4_c3().databases, 8u);
  EXPECT_EQ(table4_c4().total_clients, 2u);
  EXPECT_EQ(table4_c4().threads_es, 16u);
  EXPECT_EQ(table4_c5().batch_size, 1u);
  EXPECT_EQ(table4_c6().ofi_max_events, 64u);
  EXPECT_TRUE(table4_c7().client_progress_thread);
  EXPECT_FALSE(table4_c6().client_progress_thread);
  EXPECT_EQ(table4_all().size(), 7u);
}

TEST(Table4, FormatListsAllConfigs) {
  const auto text = format_table4();
  for (const char* name : {"C1", "C2", "C3", "C4", "C5", "C6", "C7"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(Table4, OverheadStudyConfig) {
  const auto c = overhead_study_config();
  EXPECT_EQ(c.total_servers, 32u);
  EXPECT_EQ(c.total_clients, 224u);
  EXPECT_EQ(c.threads_es, 30u);
  EXPECT_EQ(c.batch_size, 8192u);
}

// ---------------------------------------------------------------------------
// HepnosWorld
// ---------------------------------------------------------------------------

namespace {

HepnosWorld::Params small_params(HepnosConfig cfg,
                                 std::uint32_t events = 256) {
  HepnosWorld::Params p;
  p.config = std::move(cfg);
  p.config.total_clients = 4;
  p.config.clients_per_node = 2;
  p.file_model.events_per_file = events;
  p.file_model.payload_bytes = 128;
  p.files_per_client = 1;
  return p;
}

}  // namespace

TEST(HepnosWorld, RunsToCompletionAndStoresAllEvents) {
  auto params = small_params(table4_c3());
  HepnosWorld world(params);
  EXPECT_EQ(world.server_count(), 4u);
  EXPECT_EQ(world.client_count(), 4u);
  world.run();
  EXPECT_EQ(world.events_stored(), 4u * 256u);
  EXPECT_GT(world.makespan(), 0u);
  for (const auto& s : world.loader_stats()) {
    EXPECT_EQ(s.events, 256u);
    EXPECT_GT(s.rpcs, 0u);
  }
}

TEST(HepnosWorld, RejectsUnevenDatabaseSplit) {
  auto params = small_params(table4_c3());
  params.config.databases = 7;  // not divisible by 4 servers
  EXPECT_THROW(HepnosWorld w(params), std::invalid_argument);
}

TEST(HepnosWorld, ProfilesCoverPutPacked) {
  auto params = small_params(table4_c3());
  HepnosWorld world(params);
  world.run();
  const auto summary = prof::ProfileSummary::build(world.all_profiles());
  // The paper: sdskv_put_packed is the only dominant callpath.
  ASSERT_FALSE(summary.callpaths.empty());
  EXPECT_EQ(summary.callpaths[0].name, "sdskv_put_packed_rpc");
  EXPECT_EQ(summary.callpaths[0].per_target_ns.size(), 4u);  // all servers
  EXPECT_EQ(summary.callpaths[0].per_origin_ns.size(), 4u);  // all clients
}

TEST(HepnosWorld, TracesStitchAcrossProcesses) {
  auto params = small_params(table4_c3(), 64);
  HepnosWorld world(params);
  world.run();
  const auto summary = prof::TraceSummary::build(world.all_traces());
  EXPECT_GT(summary.total_spans, 0u);
  // Every span must pair an origin (client) with a target (server).
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) {
      EXPECT_NE(sp.origin_ep, sp.target_ep);
      EXPECT_LE(sp.origin_start, sp.origin_end);
    }
  }
}

TEST(HepnosWorld, DeterministicForSameSeed) {
  auto run_once = [] {
    auto params = small_params(table4_c3(), 128);
    HepnosWorld world(params);
    world.run();
    return std::make_pair(world.makespan(),
                          world.engine().events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(HepnosWorld, SeedChangesSchedule) {
  auto run_with_seed = [](std::uint64_t seed) {
    auto params = small_params(table4_c3(), 128);
    params.seed = seed;
    HepnosWorld world(params);
    world.run();
    return world.makespan();
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(HepnosWorld, InstrumentationOffStillStoresEvents) {
  auto params = small_params(table4_c3());
  params.instr = prof::Level::kOff;
  HepnosWorld world(params);
  world.run();
  EXPECT_EQ(world.events_stored(), 4u * 256u);
  for (const auto* t : world.all_traces()) EXPECT_EQ(t->size(), 0u);
  for (const auto* p : world.all_profiles()) EXPECT_EQ(p->size(), 0u);
}

TEST(HepnosWorld, DedicatedProgressEsReducesOfiBacklog) {
  // The C5 vs C7 contrast at miniature scale.
  auto run_cfg = [](HepnosConfig cfg) {
    HepnosWorld::Params p;
    p.config = std::move(cfg);
    p.config.total_clients = 2;
    p.file_model.events_per_file = 256;
    p.file_model.payload_bytes = 128;
    HepnosWorld world(p);
    world.run();
    double max_read = 0;
    for (const auto* ts : world.client_traces()) {
      for (const auto& ev : ts->events()) {
        if (ev.kind == prof::TraceEventKind::kOriginEnd) {
          max_read = std::max(max_read,
                              static_cast<double>(ev.num_ofi_events_read));
        }
      }
    }
    return max_read;
  };
  const double c5 = run_cfg(table4_c5());
  const double c7 = run_cfg(table4_c7());
  EXPECT_GE(c5, 16.0);  // shared ES: reads hit the OFI_max_events cap
  EXPECT_LT(c7, 16.0);  // dedicated progress ES: queue stays drained
}

// ---------------------------------------------------------------------------
// MobjectWorld
// ---------------------------------------------------------------------------

TEST(MobjectWorld, IorWorkloadCompletes) {
  MobjectWorld::Params p;
  p.ior.clients = 4;
  p.ior.ops_per_client = 6;
  p.ior.object_bytes = 8 * 1024;
  MobjectWorld world(p);
  world.run();
  EXPECT_GT(world.mobject_server().write_ops(), 0u);
  EXPECT_EQ(world.mobject_server().write_ops() +
                world.mobject_server().read_ops(),
            4u * 6u);
}

TEST(MobjectWorld, DominantCallpathsDiscovered) {
  MobjectWorld::Params p;
  p.ior.clients = 4;
  p.ior.ops_per_client = 8;
  p.ior.read_fraction = 0.5;
  MobjectWorld world(p);
  world.run();
  const auto summary = prof::ProfileSummary::build(world.all_profiles());
  EXPECT_GE(summary.callpaths.size(), 5u);
  // Depth-2 paths (mobject op => sdskv/bake) must be present.
  bool found_depth2 = false;
  for (const auto& cb : summary.callpaths) {
    if (prof::depth(cb.breadcrumb) == 2) found_depth2 = true;
  }
  EXPECT_TRUE(found_depth2);
}
