// Integration tests for margolite: end-to-end RPC with the full SYMBIOSYS
// instrumentation — breadcrumbs, Table III intervals, trace events, Lamport
// clocks, instrumentation levels.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "margolite/instance.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/records.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace hg = sym::hg;
namespace margo = sym::margo;
namespace prof = sym::prof;

namespace {

struct World {
  explicit World(prof::Level level = prof::Level::kFull,
                 std::uint64_t seed = 11)
      : eng(seed),
        cluster(eng, sim::ClusterParams{.node_count = 2,
                                        .max_clock_skew = sim::usec(20)}),
        fabric(cluster),
        sproc(cluster.spawn_process(0, "server")),
        cproc(cluster.spawn_process(1, "client")),
        server(fabric, sproc,
               margo::InstanceConfig{.server = true,
                                     .handler_es = 2,
                                     .instr = level}),
        client(fabric, cproc, margo::InstanceConfig{.instr = level}) {}

  /// Run `body` as a client ULT, then shut everything down.
  void run_client(std::function<void()> body) {
    server.start();
    client.start();
    client.spawn([this, body = std::move(body)] {
      body();
      client.finalize();
      server.finalize();
    });
    eng.run();
  }

  sim::Engine eng;
  sim::Cluster cluster;
  ofi::Fabric fabric;
  sim::Process& sproc;
  sim::Process& cproc;
  margo::Instance server;
  margo::Instance client;
};

/// Sum a given interval across all entries of a side in a profile store.
double sum_interval(const prof::ProfileStore& store, prof::Side side,
                    prof::Interval iv) {
  double total = 0;
  for (const auto& [key, stats] : store.entries()) {
    if (key.side == side) total += stats.at(iv).sum_ns;
  }
  return total;
}

std::uint64_t count_interval(const prof::ProfileStore& store, prof::Side side,
                             prof::Interval iv) {
  std::uint64_t total = 0;
  for (const auto& [key, stats] : store.entries()) {
    if (key.side == side) total += stats.at(iv).count;
  }
  return total;
}

}  // namespace

TEST(Margo, EchoRoundTrip) {
  World w;
  w.server.register_rpc("echo", 1, [](margo::Request& req) {
    auto s = hg::decode<std::string>(req.body());
    req.respond_value(s + "-pong");
  });
  const auto rpc = w.client.register_client_rpc("echo");
  std::string reply;
  w.run_client([&] {
    auto resp = w.client.forward(w.server.addr(), 1, rpc,
                                 hg::encode(std::string("ping")));
    reply = hg::decode<std::string>(resp);
  });
  EXPECT_EQ(reply, "ping-pong");
  EXPECT_EQ(w.server.requests_handled(), 1u);
}

TEST(Margo, ProviderRouting) {
  World w;
  w.server.register_rpc("who", 1, [](margo::Request& req) {
    req.respond_value(std::string("provider-1"));
  });
  w.server.register_rpc("who", 2, [](margo::Request& req) {
    req.respond_value(std::string("provider-2"));
  });
  const auto rpc = w.client.register_client_rpc("who");
  std::string r1, r2;
  w.run_client([&] {
    r1 = hg::decode<std::string>(
        w.client.forward(w.server.addr(), 1, rpc, {}));
    r2 = hg::decode<std::string>(
        w.client.forward(w.server.addr(), 2, rpc, {}));
  });
  EXPECT_EQ(r1, "provider-1");
  EXPECT_EQ(r2, "provider-2");
}

TEST(Margo, OriginProfileRecorded) {
  World w;
  w.server.register_rpc("work", 1, [](margo::Request& req) {
    sym::abt::compute(sim::usec(50));
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("work");
  w.run_client([&] {
    for (int i = 0; i < 5; ++i) {
      w.client.forward(w.server.addr(), 1, rpc, {});
    }
  });
  const auto& prof_store = w.client.profile();
  EXPECT_EQ(count_interval(prof_store, prof::Side::kOrigin,
                           prof::Interval::kOriginExec),
            5u);
  const double origin_exec = sum_interval(prof_store, prof::Side::kOrigin,
                                          prof::Interval::kOriginExec);
  // 5 x (>=50us of handler work + network): comfortably above 250us total.
  EXPECT_GT(origin_exec, 250e3);
  // PVAR-derived origin intervals present at Full level.
  EXPECT_GT(sum_interval(prof_store, prof::Side::kOrigin,
                         prof::Interval::kInputSer),
            0.0);
  EXPECT_GT(sum_interval(prof_store, prof::Side::kOrigin,
                         prof::Interval::kOriginCallback),
            0.0);
}

TEST(Margo, TargetProfileIntervalsConsistent) {
  World w;
  w.server.register_rpc("work", 1, [](margo::Request& req) {
    sym::abt::compute(sim::usec(100));
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("work");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, rpc, {}); });

  const auto& store = w.server.profile();
  const double target_exec =
      sum_interval(store, prof::Side::kTarget, prof::Interval::kTargetExec);
  EXPECT_GE(target_exec, 100e3);  // at least the handler compute
  EXPECT_GE(sum_interval(store, prof::Side::kTarget,
                         prof::Interval::kHandlerWait),
            0.0);
  EXPECT_GT(sum_interval(store, prof::Side::kTarget,
                         prof::Interval::kInputDeser),
            0.0);
  EXPECT_GT(sum_interval(store, prof::Side::kTarget,
                         prof::Interval::kOutputSer),
            0.0);
  EXPECT_GT(sum_interval(store, prof::Side::kTarget,
                         prof::Interval::kTargetCallback),
            0.0);
  // Origin-side envelope must exceed the sum of the target-side pieces.
  const double origin_exec = sum_interval(
      w.client.profile(), prof::Side::kOrigin, prof::Interval::kOriginExec);
  EXPECT_GT(origin_exec, target_exec);
}

TEST(Margo, BreadcrumbDepthOneForRootCall) {
  World w;
  w.server.register_rpc("leaf_rpc", 1,
                        [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client.register_client_rpc("leaf_rpc");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, rpc, {}); });
  bool found = false;
  for (const auto& [key, stats] : w.client.profile().entries()) {
    if (key.side != prof::Side::kOrigin) continue;
    EXPECT_EQ(prof::depth(key.breadcrumb), 1);
    EXPECT_EQ(prof::leaf_of(key.breadcrumb), prof::hash16("leaf_rpc"));
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Margo, NestedCallExtendsBreadcrumb) {
  // client -> server:outer -> server:inner (self-call through the RPC stack)
  World w;
  const auto inner_id = w.server.register_rpc(
      "inner_rpc", 1, [](margo::Request& req) { req.respond({}); });
  w.server.register_rpc("outer_rpc", 1, [&](margo::Request& req) {
    auto& inst = req.instance();
    inst.forward(inst.addr(), 1, inner_id, {});
    req.respond({});
  });
  const auto outer_id = w.client.register_client_rpc("outer_rpc");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, outer_id, {}); });

  // The server profile must contain a depth-2 target entry for
  // outer_rpc => inner_rpc.
  const auto expected = prof::extend(prof::hash16("outer_rpc"),
                                     prof::hash16("inner_rpc"));
  bool found_depth2 = false;
  for (const auto& [key, stats] : w.server.profile().entries()) {
    if (key.breadcrumb == expected && key.side == prof::Side::kTarget) {
      found_depth2 = true;
    }
  }
  EXPECT_TRUE(found_depth2);
}

TEST(Margo, RequestIdSharedAcrossNestedSpans) {
  World w;
  const auto inner_id = w.server.register_rpc(
      "nid_inner", 1, [](margo::Request& req) { req.respond({}); });
  w.server.register_rpc("nid_outer", 1, [&](margo::Request& req) {
    req.instance().forward(req.instance().addr(), 1, inner_id, {});
    req.respond({});
  });
  const auto outer = w.client.register_client_rpc("nid_outer");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, outer, {}); });

  std::set<std::uint64_t> rids;
  for (const auto& ev : w.client.trace().events()) rids.insert(ev.request_id);
  for (const auto& ev : w.server.trace().events()) rids.insert(ev.request_id);
  EXPECT_EQ(rids.size(), 1u);  // one request id spans the whole chain
}

TEST(Margo, TraceEventsEmittedAtFourPoints) {
  World w;
  w.server.register_rpc("t4", 1, [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client.register_client_rpc("t4");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, rpc, {}); });
  // Client: origin start + origin end. Server: target start + target end.
  ASSERT_EQ(w.client.trace().size(), 2u);
  ASSERT_EQ(w.server.trace().size(), 2u);
  EXPECT_EQ(w.client.trace().events()[0].kind,
            prof::TraceEventKind::kOriginStart);
  EXPECT_EQ(w.client.trace().events()[1].kind,
            prof::TraceEventKind::kOriginEnd);
  EXPECT_EQ(w.server.trace().events()[0].kind,
            prof::TraceEventKind::kTargetStart);
  EXPECT_EQ(w.server.trace().events()[1].kind,
            prof::TraceEventKind::kTargetEnd);
}

TEST(Margo, LamportClocksRespectCausality) {
  World w;
  w.server.register_rpc("lam", 1, [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client.register_client_rpc("lam");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, rpc, {}); });
  const auto& ce = w.client.trace().events();
  const auto& se = w.server.trace().events();
  ASSERT_EQ(ce.size(), 2u);
  ASSERT_EQ(se.size(), 2u);
  // origin start < target start < target end < origin end in Lamport order.
  EXPECT_LT(ce[0].lamport, se[0].lamport);
  EXPECT_LT(se[0].lamport, se[1].lamport);
  EXPECT_LT(se[1].lamport, ce[1].lamport);
}

TEST(Margo, LocalTimestampsCarryNodeSkew) {
  World w;
  w.server.register_rpc("skew", 1,
                        [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client.register_client_rpc("skew");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, rpc, {}); });
  // The client is on node 1 which has nonzero skew with high probability
  // under seed 11; just check the local clock mapping is consistent.
  const auto skew = w.cluster.node(1).clock_skew_ns();
  const auto& ev = w.client.trace().events()[0];
  EXPECT_EQ(static_cast<std::int64_t>(ev.local_ts),
            static_cast<std::int64_t>(ev.local_ts));
  if (skew < 0) {
    // local clock must lag global time
    EXPECT_LT(ev.local_ts + sim::usec(100), w.eng.now());
  }
  SUCCEED();
}

TEST(Margo, InstrumentationLevelOffRecordsNothing) {
  World w(prof::Level::kOff);
  w.server.register_rpc("off", 1, [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client.register_client_rpc("off");
  std::vector<std::byte> resp;
  w.run_client([&] {
    resp = w.client.forward(w.server.addr(), 1, rpc, hg::encode(42));
  });
  EXPECT_EQ(w.client.profile().size(), 0u);
  EXPECT_EQ(w.client.trace().size(), 0u);
  EXPECT_EQ(w.server.profile().size(), 0u);
  EXPECT_EQ(w.server.trace().size(), 0u);
}

TEST(Margo, Stage1PropagatesButDoesNotMeasure) {
  World w(prof::Level::kStage1);
  std::uint64_t server_rid = 0;
  w.server.register_rpc("s1", 1, [&](margo::Request& req) {
    server_rid = req.handle()->header.request_id;
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("s1");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, rpc, {}); });
  EXPECT_NE(server_rid, 0u);            // metadata propagated
  EXPECT_EQ(w.client.profile().size(), 0u);  // but nothing measured
  EXPECT_EQ(w.client.trace().size(), 0u);
}

TEST(Margo, Stage2SkipsPvarColumns) {
  World w(prof::Level::kStage2);
  w.server.register_rpc("s2", 1, [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client.register_client_rpc("s2");
  w.run_client([&] { w.client.forward(w.server.addr(), 1, rpc, {}); });
  ASSERT_GT(w.client.profile().size(), 0u);
  // ULT-key intervals present, PVAR-derived intervals absent.
  EXPECT_GT(count_interval(w.client.profile(), prof::Side::kOrigin,
                           prof::Interval::kOriginExec),
            0u);
  EXPECT_EQ(count_interval(w.client.profile(), prof::Side::kOrigin,
                           prof::Interval::kInputSer),
            0u);
  EXPECT_EQ(count_interval(w.server.profile(), prof::Side::kTarget,
                           prof::Interval::kInputDeser),
            0u);
  EXPECT_GT(count_interval(w.server.profile(), prof::Side::kTarget,
                           prof::Interval::kTargetExec),
            0u);
}

TEST(Margo, AsyncForwardOverlaps) {
  World w;
  w.server.register_rpc("slow", 1, [](margo::Request& req) {
    sym::abt::compute(sim::usec(200));
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("slow");
  sim::TimeNs elapsed = 0;
  w.run_client([&] {
    const auto t0 = w.eng.now();
    std::vector<margo::PendingOpPtr> ops;
    for (int i = 0; i < 2; ++i) {
      ops.push_back(w.client.forward_async(w.server.addr(), 1, rpc, {}));
    }
    for (auto& op : ops) op->wait();
    elapsed = w.eng.now() - t0;
  });
  // Two 200us handler computations on 2 handler ESs overlap: total well
  // under the 400us serial time.
  EXPECT_LT(elapsed, sim::usec(380));
  EXPECT_GE(elapsed, sim::usec(200));
}

TEST(Margo, HandlerWaitGrowsWhenEsStarved) {
  // 1 handler ES, 4 concurrent slow requests: later handlers wait (t4->t5).
  World w;
  margo::InstanceConfig cfg;
  cfg.server = true;
  cfg.handler_es = 1;
  margo::Instance server1(w.fabric, w.cluster.spawn_process(0, "server1"),
                          cfg);
  server1.register_rpc("starve", 1, [](margo::Request& req) {
    sym::abt::compute(sim::usec(100));
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("starve");
  server1.start();
  w.client.start();
  w.client.spawn([&] {
    std::vector<margo::PendingOpPtr> ops;
    for (int i = 0; i < 4; ++i) {
      ops.push_back(w.client.forward_async(server1.addr(), 1, rpc, {}));
    }
    for (auto& op : ops) op->wait();
    w.client.finalize();
    server1.finalize();
    w.server.finalize();
  });
  w.server.start();
  w.eng.run();

  const double wait = sum_interval(server1.profile(), prof::Side::kTarget,
                                   prof::Interval::kHandlerWait);
  // With one ES the 2nd..4th ULT wait ~100/200/300us: > 500us cumulative.
  EXPECT_GT(wait, 500e3);
}

TEST(Margo, BulkPullMovesBytes) {
  World w;
  std::uint64_t pulled = 0;
  w.server.register_rpc("bulk", 1, [&](margo::Request& req) {
    auto r = req.reader();
    std::uint64_t size = 0;
    hg::get(r, size);
    req.bulk_pull(size);
    pulled = size;
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("bulk");
  w.run_client([&] {
    w.client.forward(w.server.addr(), 1, rpc,
                     hg::encode(std::uint64_t{1 << 20}));
  });
  EXPECT_EQ(pulled, 1u << 20);
  EXPECT_EQ(w.server.hg_class().bulk_bytes_total(), 1u << 20);
}

TEST(Margo, SysStatSamplerProducesRows) {
  World w;
  w.server.register_rpc("ss", 1, [](margo::Request& req) {
    sym::abt::compute(sim::msec(5));
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("ss");
  w.run_client([&] {
    for (int i = 0; i < 10; ++i) {
      w.client.forward(w.server.addr(), 1, rpc, {});
    }
  });
  // >= 50ms of virtual run time with a 10ms sampler period.
  EXPECT_GE(w.server.sysstats().size(), 3u);
}

TEST(Margo, DeterministicAcrossRuns) {
  auto run_once = [] {
    World w(prof::Level::kFull, 99);
    w.server.register_rpc("det", 1, [&](margo::Request& req) {
      sym::abt::compute(w.eng.rng().uniform_range(1000, 50000));
      req.respond({});
    });
    const auto rpc = w.client.register_client_rpc("det");
    sim::TimeNs end = 0;
    w.run_client([&] {
      for (int i = 0; i < 20; ++i) {
        w.client.forward(w.server.addr(), 1, rpc, {});
      }
      end = w.eng.now();
    });
    return std::make_pair(end, w.client.trace().size());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Margo, ForwardTimeoutFiresWhenServerStalls) {
  World w;
  w.server.register_rpc("stall", 1, [](margo::Request& req) {
    sym::abt::sleep_for(sim::msec(50));  // far beyond the deadline
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("stall");
  bool timed_out = false;
  sim::TimeNs waited = 0;
  w.run_client([&] {
    const auto t0 = w.eng.now();
    auto op = w.client.forward_async(w.server.addr(), 1, rpc, {}, nullptr, 0,
                                     /*timeout=*/sim::msec(1));
    op->wait();
    timed_out = op->timed_out();
    waited = w.eng.now() - t0;
  });
  EXPECT_TRUE(timed_out);
  EXPECT_GE(waited, sim::msec(1));
  EXPECT_LT(waited, sim::msec(5));  // released at the deadline, not at t=50ms
}

TEST(Margo, ForwardTimeoutNotFiredOnFastResponse) {
  World w;
  w.server.register_rpc("fast", 1, [](margo::Request& req) {
    req.respond_value(std::uint32_t{7});
  });
  const auto rpc = w.client.register_client_rpc("fast");
  bool timed_out = true;
  std::uint32_t value = 0;
  w.run_client([&] {
    auto op = w.client.forward_async(w.server.addr(), 1, rpc, {}, nullptr, 0,
                                     /*timeout=*/sim::msec(100));
    const auto& resp = op->wait();
    timed_out = op->timed_out();
    value = hg::decode<std::uint32_t>(resp);
  });
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(value, 7u);
}

TEST(Margo, LateResponseAfterTimeoutIsAbsorbed) {
  World w;
  int handled = 0;
  w.server.register_rpc("late", 1, [&](margo::Request& req) {
    sym::abt::sleep_for(sim::msec(2));
    ++handled;
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("late");
  w.run_client([&] {
    auto op = w.client.forward_async(w.server.addr(), 1, rpc, {}, nullptr, 0,
                                     /*timeout=*/sim::usec(100));
    op->wait();
    EXPECT_TRUE(op->timed_out());
    // Keep the client alive long enough for the late response to land.
    sym::abt::sleep_for(sim::msec(10));
  });
  EXPECT_EQ(handled, 1);  // the server did process the request
  // The late response reclaimed the posted handle.
  EXPECT_EQ(w.client.hg_class().num_posted_handles(), 0u);
}

TEST(Margo, TimedOutOpRecordsNoProfile) {
  World w;
  w.server.register_rpc("noresp", 1, [](margo::Request& req) {
    sym::abt::sleep_for(sim::msec(50));
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("noresp");
  w.run_client([&] {
    auto op = w.client.forward_async(w.server.addr(), 1, rpc, {}, nullptr, 0,
                                     sim::usec(200));
    op->wait();
  });
  // Origin-exec envelope must not contain a bogus entry for the timed-out
  // call (the paper's profile only covers completed requests).
  double origin = 0;
  for (const auto& [key, stats] : w.client.profile().entries()) {
    origin += stats.at(prof::Interval::kOriginExec).sum_ns;
  }
  EXPECT_EQ(origin, 0.0);
}

TEST(Margo, UnknownProviderYieldsErrorResponse) {
  World w;
  w.server.register_rpc("known", 1, [](margo::Request& req) {
    req.respond({});
  });
  const auto rpc = w.client.register_client_rpc("known");
  bool failed_wrong_provider = false;
  bool failed_good_provider = true;
  w.run_client([&] {
    auto bad = w.client.forward_async(w.server.addr(), 99, rpc, {});
    bad->wait();
    failed_wrong_provider = bad->failed();
    auto good = w.client.forward_async(w.server.addr(), 1, rpc, {});
    good->wait();
    failed_good_provider = good->failed();
  });
  EXPECT_TRUE(failed_wrong_provider);
  EXPECT_FALSE(failed_good_provider);
}

TEST(Margo, UnregisteredRpcYieldsErrorResponse) {
  World w;
  const auto rpc = w.client.register_client_rpc("nobody_serves_this");
  // The server must know the wire name to route at the hg layer at all; an
  // entirely unknown rpc_id is dropped there. Register it as client-only on
  // the server too (name known, no handler): margolite answers with error.
  w.server.register_client_rpc("nobody_serves_this");
  w.server.hg_class().register_rpc("nobody_serves_this",
                                   [&](hg::HandlePtr h) {
                                     // route into margolite's dispatch
                                     // (normally done by register_rpc)
                                     (void)h;
                                   });
  bool failed = false;
  w.run_client([&] {
    auto op = w.client.forward_async(w.server.addr(), 1, rpc, {}, nullptr, 0,
                                     sim::msec(1));
    op->wait();
    failed = op->failed() || op->timed_out();
  });
  EXPECT_TRUE(failed);
}
