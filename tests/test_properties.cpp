// Cross-stack property and fuzz tests: seeded random workloads checked
// against structural invariants rather than point values.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "argolite/runtime.hpp"
#include "argolite/sync.hpp"
#include "margolite/instance.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/analysis.hpp"
#include "workloads/hepnos_world.hpp"

namespace sim = sym::sim;
namespace abt = sym::abt;
namespace margo = sym::margo;
namespace prof = sym::prof;
namespace ofi = sym::ofi;

// ---------------------------------------------------------------------------
// Engine properties
// ---------------------------------------------------------------------------

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, TimeNeverGoesBackwardAndAllLiveEventsRun) {
  sim::Engine eng(GetParam());
  sim::Rng rng(GetParam() ^ 0xF00D);
  sim::TimeNs last = 0;
  bool monotonic = true;
  int executed = 0;
  int expected = 0;
  std::vector<sim::Engine::EventId> cancellable;

  std::function<void(int)> schedule_some = [&](int depth) {
    const int n = static_cast<int>(rng.uniform(4));
    for (int i = 0; i < n; ++i) {
      const auto delay = rng.uniform(10'000);
      const bool will_cancel = rng.bernoulli(0.2);
      auto id = eng.after(delay, [&, depth] {
        monotonic &= eng.now() >= last;
        last = eng.now();
        ++executed;
        if (depth < 4) schedule_some(depth + 1);
      });
      if (will_cancel) {
        cancellable.push_back(id);
      } else {
        ++expected;
      }
    }
  };

  for (int i = 0; i < 50; ++i) schedule_some(0);
  for (auto id : cancellable) eng.cancel(id);
  eng.run();
  EXPECT_TRUE(monotonic);
  EXPECT_GE(executed, expected);  // nested events add to the executed count
  EXPECT_EQ(eng.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(3, 17, 99, 256, 1024));

// ---------------------------------------------------------------------------
// argolite properties
// ---------------------------------------------------------------------------

class ArgoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArgoFuzz, RandomWorkloadInvariants) {
  sim::Engine eng(GetParam());
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 1});
  auto& proc = cluster.spawn_process(0, "fuzz");
  abt::Runtime rt(eng, proc);
  auto& pool = rt.create_pool("p");
  const unsigned es_count = 1 + static_cast<unsigned>(eng.rng().uniform(4));
  for (unsigned i = 0; i < es_count; ++i) rt.create_xstream({&pool});

  abt::Mutex mutex;
  sim::DurationNs total_compute = 0;
  int finished = 0;
  constexpr int kUlts = 40;

  for (int u = 0; u < kUlts; ++u) {
    rt.create_ult(pool, [&] {
      for (int step = 0; step < 6; ++step) {
        switch (eng.rng().uniform(4)) {
          case 0: {
            const auto d = eng.rng().uniform_range(100, 20'000);
            total_compute += d;
            abt::compute(d);
            break;
          }
          case 1:
            abt::yield();
            break;
          case 2:
            abt::sleep_for(eng.rng().uniform_range(100, 5'000));
            break;
          case 3: {
            abt::LockGuard g(mutex);
            const auto d = eng.rng().uniform_range(100, 2'000);
            total_compute += d;
            abt::compute(d);
            break;
          }
        }
      }
      ++finished;
    });
  }
  eng.run();

  EXPECT_EQ(finished, kUlts);
  EXPECT_EQ(rt.live_ults(), 0u);
  EXPECT_EQ(rt.total_blocked(), 0u);
  EXPECT_EQ(rt.total_runnable(), 0u);
  EXPECT_FALSE(mutex.locked());
  // Every nanosecond of compute must be accounted to the process.
  EXPECT_EQ(proc.cpu_time(), total_compute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArgoFuzz,
                         ::testing::Values(7, 21, 63, 189, 567));

// ---------------------------------------------------------------------------
// Full-stack properties over random RPC workloads
// ---------------------------------------------------------------------------

class RpcFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpcFuzz, IntervalAccountingInvariants) {
  sim::Engine eng(GetParam());
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 2});
  ofi::Fabric fabric(cluster);
  margo::Instance server(fabric, cluster.spawn_process(0, "s"),
                         margo::InstanceConfig{.server = true,
                                               .handler_es = 3});
  margo::Instance client(fabric, cluster.spawn_process(1, "c"),
                         margo::InstanceConfig{});
  server.register_rpc("fuzz_rpc", 1, [&](margo::Request& req) {
    abt::compute(eng.rng().uniform_range(500, 80'000));
    if (eng.rng().bernoulli(0.3)) {
      auto r = req.reader();
      std::uint32_t payload = 0;
      if (req.body().size() >= 4) sym::hg::get(r, payload);
      req.bulk_pull(1024 + payload % 4096);
    }
    req.respond_value(std::uint8_t{1});
  });
  const auto rpc = client.register_client_rpc("fuzz_rpc");

  server.start();
  client.start();
  client.spawn([&] {
    std::vector<margo::PendingOpPtr> ops;
    for (int i = 0; i < 50; ++i) {
      auto payload = std::make_shared<const std::vector<std::byte>>(512);
      ops.push_back(client.forward_async(
          server.addr(), 1, rpc,
          sym::hg::encode(static_cast<std::uint32_t>(i)), payload, 512));
      if (eng.rng().bernoulli(0.4)) {
        for (auto& op : ops) op->wait();
        ops.clear();
      }
    }
    for (auto& op : ops) op->wait();
    client.finalize();
    server.finalize();
  });
  eng.run();

  // Invariant set, per callpath entry:
  //  * counts match between origin and target sides,
  //  * the origin envelope exceeds every measured component,
  //  * min <= mean <= max for every interval.
  double origin_total = 0, component_total = 0;
  std::uint64_t origin_count = 0, target_count = 0;
  auto check_stats = [](const prof::IntervalStats& s) {
    if (s.count == 0) return;
    EXPECT_LE(s.min_ns, s.mean_ns());
    EXPECT_LE(s.mean_ns(), s.max_ns + 1e-9);
    EXPECT_GE(s.min_ns, 0.0);
  };
  for (const auto& [key, stats] : client.profile().entries()) {
    for (int i = 0; i < static_cast<int>(prof::Interval::kCount); ++i) {
      check_stats(stats.intervals[i]);
    }
    origin_total += stats.at(prof::Interval::kOriginExec).sum_ns;
    origin_count += stats.at(prof::Interval::kOriginExec).count;
    component_total += stats.at(prof::Interval::kInputSer).sum_ns +
                       stats.at(prof::Interval::kOriginCallback).sum_ns;
  }
  for (const auto& [key, stats] : server.profile().entries()) {
    for (int i = 0; i < static_cast<int>(prof::Interval::kCount); ++i) {
      check_stats(stats.intervals[i]);
    }
    target_count += stats.at(prof::Interval::kTargetExec).count;
    component_total += stats.at(prof::Interval::kTargetExec).sum_ns +
                       stats.at(prof::Interval::kHandlerWait).sum_ns;
  }
  EXPECT_EQ(origin_count, 50u);
  EXPECT_EQ(target_count, 50u);
  EXPECT_GT(origin_total, 0.0);
  EXPECT_GE(origin_total, component_total * 0.999);

  // Trace invariants: 4 events per request; spans stitch completely.
  EXPECT_EQ(client.trace().size() + server.trace().size(), 200u);
  const auto summary =
      prof::TraceSummary::build({&client.trace(), &server.trace()});
  EXPECT_EQ(summary.total_spans, 50u);
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) {
      EXPECT_LE(sp.origin_start, sp.target_start);
      EXPECT_LE(sp.target_start, sp.target_end);
      EXPECT_LE(sp.target_end, sp.origin_end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcFuzz, ::testing::Values(5, 55, 555, 5555));

// ---------------------------------------------------------------------------
// Determinism property at deployment scale
// ---------------------------------------------------------------------------

class WorldDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldDeterminism, IdenticalSeedsGiveIdenticalTraces) {
  auto run_once = [](std::uint64_t seed) {
    sym::workloads::HepnosWorld::Params p;
    p.config = sym::workloads::table4_c3();
    p.config.total_clients = 2;
    p.file_model.events_per_file = 128;
    p.seed = seed;
    sym::workloads::HepnosWorld world(p);
    world.run();
    // Fingerprint: fold every trace event into a hash.
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const auto* ts : world.all_traces()) {
      for (const auto& ev : ts->events()) {
        h ^= ev.request_id + ev.local_ts + ev.lamport + ev.order;
        h *= 0x100000001B3ULL;
      }
    }
    return std::make_tuple(h, world.makespan(),
                           world.engine().events_processed());
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldDeterminism,
                         ::testing::Values(42, 4242));
