// Tests for the fast-path measurement pipeline: sharded profile stores
// (consolidation equivalence), the flat-hash ProfileStore and its memo
// under rehash, chunked trace buffers (iteration order, ring eviction),
// and the CallpathKeyHash bucket distribution under power-of-two masking.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "symbiosys/analysis.hpp"
#include "symbiosys/chunked_buffer.hpp"
#include "symbiosys/records.hpp"

namespace prof = sym::prof;

namespace {

prof::CallpathKey make_key(std::uint64_t bc, prof::Side side,
                           std::uint32_t self_ep, std::uint32_t peer_ep) {
  return prof::CallpathKey{bc, side, self_ep, peer_ep};
}

}  // namespace

// ---------------------------------------------------------------------------
// Sharded vs unsharded equivalence
// ---------------------------------------------------------------------------

// Recording a stream through per-ES shards and consolidating must produce
// bit-identical statistics to recording the same stream into one store.
// Integer-valued durations keep double addition exact regardless of the
// order the shard sums are combined in.
TEST(ShardedProfileStore, ConsolidationMatchesUnshardedBitForBit) {
  constexpr std::size_t kShards = 4;
  prof::ProfileStore flat;
  prof::ShardedProfileStore sharded;

  for (std::uint32_t op = 0; op < 4096; ++op) {
    const auto key = make_key(0x1000 + op % 7, prof::Side::kTarget,
                              100, op % 13);
    const auto iv = static_cast<prof::Interval>(
        op % static_cast<std::uint32_t>(prof::Interval::kCount));
    const double ns = static_cast<double>(1 + op % 257);
    flat.record(key, iv, ns);
    sharded.shard(op % kShards).record(key, iv, ns);
  }

  prof::ProfileStore consolidated;
  sharded.consolidate_into(consolidated);
  EXPECT_TRUE(sharded.all_empty());

  ASSERT_EQ(consolidated.size(), flat.size());
  for (const auto& [key, stats] : flat.entries()) {
    const auto* other = consolidated.entries().find(key);
    ASSERT_NE(other, nullptr);
    for (int i = 0; i < static_cast<int>(prof::Interval::kCount); ++i) {
      const auto iv = static_cast<prof::Interval>(i);
      EXPECT_EQ(stats.at(iv).count, other->at(iv).count);
      EXPECT_EQ(stats.at(iv).sum_ns, other->at(iv).sum_ns);
      EXPECT_EQ(stats.at(iv).min_ns, other->at(iv).min_ns);
      EXPECT_EQ(stats.at(iv).max_ns, other->at(iv).max_ns);
    }
  }
}

// Consolidation clears the shards, so a second consolidation must not
// double-count anything.
TEST(ShardedProfileStore, RepeatedConsolidationDoesNotDoubleCount) {
  prof::ShardedProfileStore sharded;
  const auto key = make_key(0x42, prof::Side::kOrigin, 1, 2);
  sharded.shard(0).record(key, prof::Interval::kOriginExec, 5.0);
  sharded.shard(1).record(key, prof::Interval::kOriginExec, 7.0);

  prof::ProfileStore out;
  sharded.consolidate_into(out);
  sharded.consolidate_into(out);

  const auto* stats = out.entries().find(key);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->at(prof::Interval::kOriginExec).count, 2u);
  EXPECT_EQ(stats->at(prof::Interval::kOriginExec).sum_ns, 12.0);
}

// ---------------------------------------------------------------------------
// ProfileStore: flat hash + memo
// ---------------------------------------------------------------------------

// Interleave re-records of early keys with inserts of fresh keys so the
// table rehashes several times while the memo holds live pointers. Every
// count must still be exact — this guards the generation flush that keeps
// memo entries from dangling across a rehash.
TEST(ProfileStore, MemoStaysCoherentAcrossRehashes) {
  prof::ProfileStore store;
  constexpr std::uint32_t kKeys = 300;  // forces several doublings from 16
  for (std::uint32_t k = 0; k < kKeys; ++k) {
    store.record(make_key(0x9000, prof::Side::kTarget, 100, k),
                 prof::Interval::kTargetExec, 1.0);
    // Re-touch an early key right after the insert that may have rehashed.
    store.record(make_key(0x9000, prof::Side::kTarget, 100, k / 2),
                 prof::Interval::kTargetExec, 1.0);
  }
  EXPECT_EQ(store.size(), kKeys);
  std::uint64_t total = 0;
  for (const auto& [key, stats] : store.entries()) {
    total += stats.at(prof::Interval::kTargetExec).count;
  }
  EXPECT_EQ(total, 2 * kKeys);
}

TEST(ProfileStore, RecordBatchEqualsSequentialRecords) {
  const auto key = make_key(0x77, prof::Side::kOrigin, 3, 9);
  prof::ProfileStore singles, batched;
  for (int r = 0; r < 100; ++r) {
    const double ns = static_cast<double>(10 + r);
    singles.record(key, prof::Interval::kOriginExec, ns);
    singles.record(key, prof::Interval::kInputSer, ns / 2);
    singles.record(key, prof::Interval::kOriginCallback, ns / 4);
    batched.record_batch(
        key, prof::IntervalSample{prof::Interval::kOriginExec, ns},
        prof::IntervalSample{prof::Interval::kInputSer, ns / 2},
        prof::IntervalSample{prof::Interval::kOriginCallback, ns / 4});
  }
  const auto* a = singles.entries().find(key);
  const auto* b = batched.entries().find(key);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < static_cast<int>(prof::Interval::kCount); ++i) {
    const auto iv = static_cast<prof::Interval>(i);
    EXPECT_EQ(a->at(iv).count, b->at(iv).count);
    EXPECT_EQ(a->at(iv).sum_ns, b->at(iv).sum_ns);
    EXPECT_EQ(a->at(iv).min_ns, b->at(iv).min_ns);
    EXPECT_EQ(a->at(iv).max_ns, b->at(iv).max_ns);
  }
}

TEST(ProfileStore, ClearDropsMemoAndEntries) {
  prof::ProfileStore store;
  const auto key = make_key(0x5, prof::Side::kOrigin, 1, 1);
  store.record(key, prof::Interval::kOriginExec, 3.0);
  store.clear();
  EXPECT_TRUE(store.empty());
  // A record after clear must re-insert, not write through a stale memo.
  store.record(key, prof::Interval::kOriginExec, 4.0);
  const auto* stats = store.entries().find(key);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->at(prof::Interval::kOriginExec).count, 1u);
  EXPECT_EQ(stats->at(prof::Interval::kOriginExec).sum_ns, 4.0);
}

// ---------------------------------------------------------------------------
// Chunked trace buffers
// ---------------------------------------------------------------------------

// Append across several chunk boundaries; iteration and operator[] must
// walk oldest to newest with no seam at the boundaries.
TEST(ChunkedBuffer, IterationOrderStableAcrossChunks) {
  prof::TraceStore store;
  constexpr std::size_t kEvents = 2500;  // chunk capacity is 1024
  for (std::size_t i = 0; i < kEvents; ++i) {
    prof::TraceEvent ev;
    ev.request_id = i;
    store.append(ev);
  }
  ASSERT_EQ(store.size(), kEvents);
  EXPECT_GE(store.events().chunk_count(), 3u);
  std::size_t expect = 0;
  for (const auto& ev : store.events()) {
    ASSERT_EQ(ev.request_id, expect);
    ++expect;
  }
  EXPECT_EQ(expect, kEvents);
  EXPECT_EQ(store.events()[0].request_id, 0u);
  EXPECT_EQ(store.events()[kEvents - 1].request_id, kEvents - 1);
}

// Flight-recorder mode: a bounded buffer drops whole chunks from the front,
// counts them in dropped(), and keeps iterating the retained suffix in
// order. Steady state must not grow the chunk count.
TEST(ChunkedBuffer, RingModeEvictsOldestChunks) {
  prof::TraceStore store;
  store.set_ring_chunks(2);  // retain at most 2 * 1024 events
  constexpr std::size_t kEvents = 5 * 1024;
  for (std::size_t i = 0; i < kEvents; ++i) {
    prof::TraceEvent ev;
    ev.request_id = i;
    store.append(ev);
  }
  EXPECT_EQ(store.events().chunk_count(), 2u);
  EXPECT_EQ(store.dropped(), kEvents - 2 * 1024);
  EXPECT_EQ(store.size(), 2 * 1024u);
  // Oldest retained element is the first of the surviving chunks.
  std::size_t expect = kEvents - 2 * 1024;
  for (const auto& ev : store.events()) {
    ASSERT_EQ(ev.request_id, expect);
    ++expect;
  }
  EXPECT_EQ(expect, kEvents);
}

TEST(ChunkedBuffer, UnboundedWhenRingDisabled) {
  prof::ChunkedBuffer<int, 4> buf;
  for (int i = 0; i < 64; ++i) buf.push_back(i);
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.chunk_count(), 16u);
}

// Phase-structured reuse: reset_retaining_chunks() parks every chunk in a
// spare pool and an identical refill consumes the pool instead of
// allocating — the buffer-level analogue of the lane-arena steady state.
TEST(ChunkedBuffer, ResetRetainsChunksForIdenticalRefill) {
  prof::ChunkedBuffer<int, 4> buf;
  for (int i = 0; i < 64; ++i) buf.push_back(i);
  ASSERT_EQ(buf.chunk_count(), 16u);

  buf.reset_retaining_chunks();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.chunk_count(), 0u);
  EXPECT_EQ(buf.spare_chunks(), 16u);

  for (int i = 0; i < 64; ++i) buf.push_back(i * 2);
  EXPECT_EQ(buf.chunk_count(), 16u);
  EXPECT_EQ(buf.spare_chunks(), 0u) << "refill should consume the pool";
  for (int i = 0; i < 64; ++i) ASSERT_EQ(buf[static_cast<std::size_t>(i)], i * 2);

  // A refill larger than the retained capacity grows past the pool.
  buf.reset_retaining_chunks();
  for (int i = 0; i < 80; ++i) buf.push_back(i);
  EXPECT_EQ(buf.chunk_count(), 20u);
  EXPECT_EQ(buf[79], 79);

  // Full clear() releases the pool as well.
  buf.reset_retaining_chunks();
  EXPECT_GT(buf.spare_chunks(), 0u);
  buf.clear();
  EXPECT_EQ(buf.spare_chunks(), 0u);
  EXPECT_EQ(buf.chunk_count(), 0u);
}

// ---------------------------------------------------------------------------
// CallpathKeyHash distribution
// ---------------------------------------------------------------------------

// The flat table masks the hash with (power-of-two - 1), so the *low* bits
// must spread keys that differ only in adjacent endpoint ids — exactly the
// key population a provider sees (one breadcrumb, a dense client grid).
// The old hash packed endpoints into overlapping shifted bit ranges and
// clustered badly under this test.
TEST(CallpathKeyHash, AdjacentEndpointGridSpreadsUnderMasking) {
  prof::CallpathKeyHash hash;
  std::vector<prof::CallpathKey> keys;
  for (std::uint64_t bc : {0x11115AA5ULL, 0x22221234ULL}) {
    for (auto side : {prof::Side::kOrigin, prof::Side::kTarget}) {
      for (std::uint32_t self_ep = 0; self_ep < 32; ++self_ep) {
        for (std::uint32_t peer_ep = 0; peer_ep < 32; ++peer_ep) {
          keys.push_back(make_key(bc, side, self_ep, peer_ep));
        }
      }
    }
  }
  const std::size_t n = keys.size();  // 4096 keys
  const std::size_t buckets = 2 * n;  // load factor 0.5, power of two
  std::vector<std::uint32_t> load(buckets, 0);
  for (const auto& k : keys) ++load[hash(k) & (buckets - 1)];

  // Sum of C(load, 2) pairs sharing a bucket; uniform hashing expects about
  // n^2 / (2 * buckets) = n / 4. Allow 2x before calling it clustered.
  std::size_t pair_collisions = 0;
  std::uint32_t max_load = 0;
  for (const auto l : load) {
    pair_collisions += static_cast<std::size_t>(l) * (l - (l > 0 ? 1 : 0)) / 2;
    max_load = std::max(max_load, l);
  }
  EXPECT_LT(pair_collisions, n / 2) << "hash clusters under masking";
  // A uniform throw of n balls into 2n bins essentially never stacks 8.
  EXPECT_LE(max_load, 7u);
}

// ---------------------------------------------------------------------------
// D2 regression: report emission must not depend on hash layout
// ---------------------------------------------------------------------------

// The same measurement multiset ingested into two stores whose hash tables
// end up with different layouts (key first-touch order reversed). Before
// the consolidation paths switched to sorted-key emission (symlint rule D2)
// the report's callpath and per-endpoint ordering followed the unordered
// map layout; now the output must be byte-for-byte identical. Durations
// are integer-valued so double addition is exact in any order — anything
// that differs is ordering, which is exactly the regression under test.
TEST(ProfileSummaryDeterminism, ReportIsHashLayoutInvariant) {
  std::vector<prof::CallpathKey> keys;
  for (std::uint64_t bc : {0x10ABCULL, 0x25AA5ULL, 0x31234ULL, 0x4FEEDULL}) {
    for (std::uint32_t ep = 0; ep < 6; ++ep) {
      keys.push_back(make_key(bc, prof::Side::kOrigin, ep, 100 + ep));
      keys.push_back(make_key(bc, prof::Side::kTarget, 100 + ep, ep));
    }
  }

  // First touch in opposite orders: different insertion (and rehash)
  // history, hence different open-addressing layouts.
  prof::ProfileStore fwd;
  prof::ProfileStore rev;
  for (const auto& k : keys) fwd.record(k, prof::Interval::kOriginExec, 0.0);
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    rev.record(*it, prof::Interval::kOriginExec, 0.0);
  }

  // The samples proper, identical per-key order for both stores.
  double salt = 1.0;
  for (const auto& k : keys) {
    const double ns = 1000.0 + 16.0 * salt;
    salt += 1.0;
    for (prof::ProfileStore* s : {&fwd, &rev}) {
      s->record(k, prof::Interval::kOriginExec, ns);
      s->record(k, prof::Interval::kInputSer, ns / 2.0);
      s->record(k, prof::Interval::kTargetExec, ns / 4.0);
    }
  }

  const auto a = prof::ProfileSummary::build({&fwd});
  const auto b = prof::ProfileSummary::build({&rev});

  EXPECT_EQ(a.format(64), b.format(64));  // byte-for-byte
  EXPECT_EQ(a.total_ns, b.total_ns);
  ASSERT_EQ(a.callpaths.size(), b.callpaths.size());
  for (std::size_t i = 0; i < a.callpaths.size(); ++i) {
    EXPECT_EQ(a.callpaths[i].breadcrumb, b.callpaths[i].breadcrumb) << i;
    EXPECT_EQ(a.callpaths[i].per_origin_ns, b.callpaths[i].per_origin_ns)
        << i;
    EXPECT_EQ(a.callpaths[i].per_target_ns, b.callpaths[i].per_target_ns)
        << i;
  }
}
