// Tests for GekkoFS-lite: distributed metadata/data, chunked parallel I/O,
// relaxed readdir, removal sweeps.
#include <gtest/gtest.h>

#include "margolite/instance.hpp"
#include "services/gekko/gekko.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/analysis.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace margo = sym::margo;
namespace gekko = sym::gekko;

namespace {

struct GekkoWorld {
  explicit GekkoWorld(std::size_t daemon_count = 4, std::uint64_t seed = 13)
      : eng(seed),
        cluster(eng, sim::ClusterParams{
                         .node_count =
                             static_cast<std::uint32_t>(daemon_count + 1)}),
        fabric(cluster) {
    for (std::size_t i = 0; i < daemon_count; ++i) {
      auto& proc = cluster.spawn_process(static_cast<sim::NodeId>(i),
                                         "gkfs-daemon-" + std::to_string(i));
      margo::InstanceConfig mc;
      mc.server = true;
      mc.handler_es = 2;
      instances.push_back(std::make_unique<margo::Instance>(fabric, proc, mc));
      daemons.push_back(std::make_unique<gekko::Daemon>(*instances.back(), 1));
      addrs.push_back(instances.back()->addr());
    }
    auto& cproc = cluster.spawn_process(
        static_cast<sim::NodeId>(daemon_count), "gkfs-client");
    client_mid = std::make_unique<margo::Instance>(fabric, cproc,
                                                   margo::InstanceConfig{});
    client = std::make_unique<gekko::Client>(*client_mid, addrs, 1);
  }

  void run_client(std::function<void()> body) {
    for (auto& i : instances) i->start();
    client_mid->start();
    client_mid->spawn([this, body = std::move(body)] {
      body();
      client_mid->finalize();
      for (auto& i : instances) i->finalize();
    });
    eng.run();
  }

  sim::Engine eng;
  sim::Cluster cluster;
  ofi::Fabric fabric;
  std::vector<std::unique_ptr<margo::Instance>> instances;
  std::vector<std::unique_ptr<gekko::Daemon>> daemons;
  std::vector<ofi::EpAddr> addrs;
  std::unique_ptr<margo::Instance> client_mid;
  std::unique_ptr<gekko::Client> client;
};

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i) & 0xFF);
  }
  return out;
}

}  // namespace

TEST(Gekko, CreateStatRemoveLifecycle) {
  GekkoWorld w;
  w.run_client([&] {
    EXPECT_FALSE(w.client->stat("/data/a").exists);
    EXPECT_EQ(w.client->create("/data/a"), gekko::Status::kOk);
    EXPECT_EQ(w.client->create("/data/a"), gekko::Status::kExists);
    const auto st = w.client->stat("/data/a");
    EXPECT_TRUE(st.exists);
    EXPECT_EQ(st.size, 0u);
    EXPECT_EQ(w.client->remove("/data/a"), gekko::Status::kOk);
    EXPECT_FALSE(w.client->stat("/data/a").exists);
    EXPECT_EQ(w.client->remove("/data/a"), gekko::Status::kNotFound);
  });
}

TEST(Gekko, WriteReadRoundTripWithinOneChunk) {
  GekkoWorld w;
  w.run_client([&] {
    w.client->create("/f");
    const auto data = pattern_bytes(10'000, 7);
    EXPECT_EQ(w.client->write("/f", 0, data), 10'000u);
    EXPECT_EQ(w.client->stat("/f").size, 10'000u);
    const auto back = w.client->read("/f", 0, 10'000);
    EXPECT_EQ(back, data);
    // Sub-range read.
    const auto mid = w.client->read("/f", 5'000, 100);
    ASSERT_EQ(mid.size(), 100u);
    EXPECT_EQ(mid[0], data[5'000]);
  });
}

TEST(Gekko, LargeWriteSpansChunksAndDaemons) {
  GekkoWorld w;
  const std::uint64_t total = 3 * gekko::kChunkSize + 12'345;
  w.run_client([&] {
    w.client->create("/big");
    const auto data = pattern_bytes(total, 3);
    EXPECT_EQ(w.client->write("/big", 0, data), total);
    const auto back = w.client->read("/big", 0, total);
    ASSERT_EQ(back.size(), total);
    EXPECT_EQ(back, data);
    // Cross-chunk boundary read.
    const auto edge = w.client->read("/big", gekko::kChunkSize - 8, 16);
    ASSERT_EQ(edge.size(), 16u);
    EXPECT_EQ(edge[0], data[gekko::kChunkSize - 8]);
    EXPECT_EQ(edge[15], data[gekko::kChunkSize + 7]);
  });
  // Chunks must be spread over multiple daemons (hash distribution).
  std::size_t daemons_with_chunks = 0;
  std::size_t total_chunks = 0;
  for (const auto& d : w.daemons) {
    if (d->chunks_stored() > 0) ++daemons_with_chunks;
    total_chunks += d->chunks_stored();
  }
  EXPECT_EQ(total_chunks, 4u);  // ceil(total / kChunkSize)
  EXPECT_GE(daemons_with_chunks, 2u);
}

TEST(Gekko, WriteAtOffsetGrowsFile) {
  GekkoWorld w;
  w.run_client([&] {
    w.client->create("/sparse");
    w.client->write("/sparse", 0, pattern_bytes(100, 1));
    w.client->write("/sparse", gekko::kChunkSize + 50,
                    pattern_bytes(100, 2));
    EXPECT_EQ(w.client->stat("/sparse").size, gekko::kChunkSize + 150);
    // Size entry is grow-only: a smaller rewrite must not shrink it.
    w.client->write("/sparse", 0, pattern_bytes(10, 3));
    EXPECT_EQ(w.client->stat("/sparse").size, gekko::kChunkSize + 150);
  });
}

TEST(Gekko, WriteToMissingFileFails) {
  GekkoWorld w;
  w.run_client([&] {
    EXPECT_EQ(w.client->write("/nope", 0, pattern_bytes(10, 0)), 0u);
    EXPECT_TRUE(w.client->read("/nope", 0, 10).empty());
  });
}

TEST(Gekko, ReaddirMergesAcrossDaemons) {
  GekkoWorld w;
  w.run_client([&] {
    for (const char* p : {"/dir/a", "/dir/b", "/dir/c", "/other/x"}) {
      w.client->create(p);
    }
    const auto names = w.client->readdir("/dir/");
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "/dir/a");
    EXPECT_EQ(names[2], "/dir/c");
    EXPECT_EQ(w.client->readdir("/nowhere/").size(), 0u);
  });
  // Metadata entries must be distributed, not centralized.
  std::size_t holders = 0;
  for (const auto& d : w.daemons) {
    if (d->metadata_entries() > 0) ++holders;
  }
  EXPECT_GE(holders, 2u);
}

TEST(Gekko, RemoveSweepsChunksEverywhere) {
  GekkoWorld w;
  w.run_client([&] {
    w.client->create("/swept");
    w.client->write("/swept", 0, pattern_bytes(2 * gekko::kChunkSize, 9));
    w.client->remove("/swept");
  });
  for (const auto& d : w.daemons) {
    EXPECT_EQ(d->chunks_stored(), 0u);
  }
}

TEST(Gekko, ParallelChunkWritesBeatSerialTime) {
  // 4 chunks across 4 daemons: device writes overlap, so the wall time is
  // far below 4x the single-chunk time.
  GekkoWorld w;
  sim::DurationNs elapsed = 0;
  w.run_client([&] {
    w.client->create("/par");
    const auto t0 = w.eng.now();
    w.client->write("/par", 0, std::vector<std::byte>(4 * gekko::kChunkSize));
    elapsed = w.eng.now() - t0;
  });
  // Device: 512KiB at 2 B/ns = ~262us per chunk; serial would be >1ms.
  EXPECT_LT(elapsed, sim::usec(900));
}

TEST(Gekko, CallpathsVisibleToSymbiosys) {
  GekkoWorld w;
  w.run_client([&] {
    w.client->create("/traced");
    w.client->write("/traced", 0, pattern_bytes(1000, 5));
    (void)w.client->read("/traced", 0, 1000);
  });
  std::vector<const sym::prof::ProfileStore*> stores;
  for (const auto& i : w.instances) stores.push_back(&i->profile());
  stores.push_back(&w.client_mid->profile());
  const auto summary = sym::prof::ProfileSummary::build(stores);
  // The filesystem's RPC mix appears as first-class callpaths.
  EXPECT_NE(summary.find_by_leaf("gkfs_write_chunk_rpc"), nullptr);
  EXPECT_NE(summary.find_by_leaf("gkfs_stat_rpc"), nullptr);
  EXPECT_NE(summary.find_by_leaf("gkfs_read_chunk_rpc"), nullptr);
}
