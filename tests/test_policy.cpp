// Tests for the closed-loop adaptive controller: elastic handler pools
// (grow under backlog, shrink when idle), admission control with the
// kFlagBusy early-reject + retry/backoff protocol, the writable PVAR
// tuning channel, and the action spans that make every adaptation
// observable in the stitched trace.
#include <gtest/gtest.h>

#include <stdexcept>

#include "margolite/policy.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/analysis.hpp"
#include "symbiosys/breadcrumb.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace abt = sym::abt;
namespace hg = sym::hg;
namespace margo = sym::margo;
namespace prof = sym::prof;

namespace {

struct World {
  explicit World(margo::InstanceConfig server_cfg = {}, std::uint64_t seed = 7)
      : eng(seed),
        cluster(eng, sim::ClusterParams{.node_count = 2}),
        fabric(cluster) {
    server_cfg.server = true;
    auto& sproc = cluster.spawn_process(0, "server");
    server = std::make_unique<margo::Instance>(fabric, sproc, server_cfg);
    auto& cproc = cluster.spawn_process(1, "client");
    client = std::make_unique<margo::Instance>(fabric, cproc,
                                               margo::InstanceConfig{});
  }

  sim::Engine eng;
  sim::Cluster cluster;
  ofi::Fabric fabric;
  std::unique_ptr<margo::Instance> server;
  std::unique_ptr<margo::Instance> client;
};

margo::InstanceConfig server_with_es(unsigned handler_es) {
  margo::InstanceConfig cfg;
  cfg.handler_es = handler_es;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Elastic handler pool
// ---------------------------------------------------------------------------

TEST(AdaptivePool, GrowsUnderBacklog) {
  World w(server_with_es(2));
  int handled = 0;
  w.server->register_rpc("slow_rpc", 1, [&](margo::Request& req) {
    abt::compute(sim::usec(400));
    ++handled;
    req.respond({});
  });
  const auto rpc = w.client->register_client_rpc("slow_rpc");

  margo::PolicyEngine engine(*w.server, sim::usec(200));
  engine.add_rule("autoscale", margo::PolicyEngine::handler_autoscale(
                                   /*backlog_per_es=*/2.0, /*consecutive=*/2,
                                   /*max_es=*/8));
  w.server->start();
  engine.start();
  w.client->start();
  w.client->spawn([&] {
    std::vector<margo::PendingOpPtr> ops;
    for (int i = 0; i < 64; ++i) {
      ops.push_back(w.client->forward_async(w.server->addr(), 1, rpc, {}));
    }
    for (auto& op : ops) op->wait();
    w.client->finalize();
    w.server->finalize();
  });
  w.eng.run();

  EXPECT_EQ(handled, 64);
  EXPECT_GT(w.server->handler_es_count(), 2u);
  ASSERT_FALSE(engine.actions().empty());
  EXPECT_EQ(engine.actions()[0].rule, "autoscale");
  EXPECT_NE(engine.actions()[0].description.find("scaling"),
            std::string::npos);
}

TEST(AdaptivePool, ShrinksWhenIdle) {
  World w(server_with_es(4));
  margo::PolicyEngine engine(*w.server, sim::usec(100));
  engine.add_rule("downscale", margo::PolicyEngine::handler_downscale(
                                   /*consecutive=*/3, /*min_es=*/1));
  w.server->start();
  engine.start();
  w.client->start();
  w.eng.after(sim::msec(3), [&] {
    w.server->finalize();
    w.client->finalize();
  });
  w.eng.run();

  // An idle 4-ES pool parks down to the floor, one ES per firing.
  EXPECT_EQ(w.server->handler_es_count(), 1u);
  ASSERT_GE(engine.actions().size(), 3u);
  EXPECT_NE(engine.actions()[0].description.find("parking"),
            std::string::npos);
}

TEST(AdaptivePool, GrowThenShrinkIsElastic) {
  World w(server_with_es(2));
  w.server->register_rpc("slow_rpc", 1, [&](margo::Request& req) {
    abt::compute(sim::usec(400));
    req.respond({});
  });
  const auto rpc = w.client->register_client_rpc("slow_rpc");

  margo::PolicyEngine engine(*w.server, sim::usec(200));
  engine.add_rule("up", margo::PolicyEngine::handler_autoscale(2.0, 2, 8));
  engine.add_rule("down", margo::PolicyEngine::handler_downscale(4, 2));
  w.server->start();
  engine.start();
  w.client->start();
  unsigned peak_es = 0;
  w.client->spawn([&] {
    std::vector<margo::PendingOpPtr> ops;
    for (int i = 0; i < 64; ++i) {
      ops.push_back(w.client->forward_async(w.server->addr(), 1, rpc, {}));
    }
    for (auto& op : ops) op->wait();
    peak_es = w.server->handler_es_count();
    abt::sleep_for(sim::msec(6));  // idle: the pool must drain back down
    w.client->finalize();
    w.server->finalize();
  });
  w.eng.run();

  EXPECT_GT(peak_es, 2u);
  EXPECT_EQ(w.server->handler_es_count(), 2u);  // back at the floor
  bool grew = false, shrank = false;
  for (const auto& a : engine.actions()) {
    if (a.rule == "up") grew = true;
    if (a.rule == "down") shrank = true;
  }
  EXPECT_TRUE(grew);
  EXPECT_TRUE(shrank);
}

// ---------------------------------------------------------------------------
// Admission control / backpressure
// ---------------------------------------------------------------------------

TEST(Admission, RejectsBeyondWatermarkWithBusyFlag) {
  World w(server_with_es(1));
  int handled = 0;
  w.server->register_rpc("slow_rpc", 1, [&](margo::Request& req) {
    abt::compute(sim::usec(300));
    ++handled;
    req.respond({});
  });
  const auto rpc = w.client->register_client_rpc("slow_rpc");
  w.server->set_admission_limit(2);

  w.server->start();
  w.client->start();
  int busy = 0, ok = 0;
  w.client->spawn([&] {
    std::vector<margo::PendingOpPtr> ops;
    for (int i = 0; i < 32; ++i) {
      ops.push_back(w.client->forward_async(w.server->addr(), 1, rpc, {}));
    }
    for (auto& op : ops) {
      op->wait();
      (op->busy() ? busy : ok)++;
    }
    w.client->finalize();
    w.server->finalize();
  });
  w.eng.run();

  EXPECT_GT(busy, 0);                      // backpressure engaged
  EXPECT_GT(ok, 0);                        // but some work got through
  EXPECT_EQ(ok, handled);
  EXPECT_EQ(w.server->admission_rejects(), static_cast<std::uint64_t>(busy));
}

TEST(Admission, ForwardRetryBacksOffUntilAccepted) {
  World w(server_with_es(1));
  int handled = 0;
  w.server->register_rpc("slow_rpc", 1, [&](margo::Request& req) {
    abt::compute(sim::usec(200));
    ++handled;
    req.respond_value<int>(42);
  });
  const auto rpc = w.client->register_client_rpc("slow_rpc");
  w.server->set_admission_limit(2);

  w.server->start();
  w.client->start();
  int done = 0;
  unsigned max_attempts_seen = 0;
  constexpr int kClients = 16;
  for (int i = 0; i < kClients; ++i) {
    w.client->spawn([&] {
      auto r = w.client->forward_retry(w.server->addr(), 1, rpc, {},
                                       /*max_attempts=*/20,
                                       /*initial_backoff=*/sim::usec(100));
      EXPECT_FALSE(r.busy);  // every caller eventually gets through
      EXPECT_EQ(hg::decode<int>(r.response), 42);
      max_attempts_seen = std::max(max_attempts_seen, r.attempts);
      if (++done == kClients) {
        w.client->finalize();
        w.server->finalize();
      }
    });
  }
  w.eng.run();

  EXPECT_EQ(done, kClients);
  EXPECT_EQ(handled, kClients);
  EXPECT_GT(max_attempts_seen, 1u);  // someone actually had to back off
  EXPECT_GT(w.server->admission_rejects(), 0u);
}

TEST(Admission, WatermarkRuleEngagesAndLifts) {
  World w(server_with_es(1));
  w.server->register_rpc("slow_rpc", 1, [&](margo::Request& req) {
    abt::compute(sim::usec(300));
    req.respond({});
  });
  const auto rpc = w.client->register_client_rpc("slow_rpc");

  margo::PolicyEngine engine(*w.server, sim::usec(100));
  engine.add_rule("admission",
                  margo::PolicyEngine::admission_watermark(/*high=*/8,
                                                           /*low=*/1));
  w.server->start();
  engine.start();
  w.client->start();
  int done = 0;
  constexpr int kClients = 48;
  for (int i = 0; i < kClients; ++i) {
    w.client->spawn([&] {
      auto r = w.client->forward_retry(w.server->addr(), 1, rpc, {},
                                       /*max_attempts=*/30,
                                       /*initial_backoff=*/sim::usec(100));
      EXPECT_FALSE(r.busy);
      if (++done == kClients) {
        w.client->spawn([&] {
          abt::sleep_for(sim::msec(2));  // idle so the rule can disengage
          w.client->finalize();
          w.server->finalize();
        });
      }
    });
  }
  w.eng.run();

  EXPECT_EQ(done, kClients);
  EXPECT_EQ(w.server->admission_limit(), 0u);  // lifted after the drain
  bool engaged = false, lifted = false;
  for (const auto& a : engine.actions()) {
    if (a.description.find("engaging") != std::string::npos) engaged = true;
    if (a.description.find("lifting") != std::string::npos) lifted = true;
  }
  EXPECT_TRUE(engaged);
  EXPECT_TRUE(lifted);
  EXPECT_GT(w.server->admission_rejects(), 0u);
}

// ---------------------------------------------------------------------------
// Writable PVARs (the §VII tuning channel)
// ---------------------------------------------------------------------------

TEST(WritablePvar, EagerThresholdTunableThroughSession) {
  World w;
  auto session = w.client->hg_class().pvar_session_init();
  const auto pv = session.alloc("eager_buffer_size");
  ASSERT_GT(session.read(pv), 0.0);
  session.write(pv, 4096.0);
  EXPECT_EQ(session.read(pv), 4096.0);
  EXPECT_EQ(w.client->hg_class().config().eager_limit, 4096u);
}

TEST(WritablePvar, ReadOnlyPvarRejectsWrites) {
  World w;
  auto session = w.client->hg_class().pvar_session_init();
  const auto pv = session.alloc("num_rpcs_invoked");
  EXPECT_THROW(session.write(pv, 1.0), std::logic_error);
}

TEST(WritablePvar, AutotuneRuleRaisesEagerThreshold) {
  margo::InstanceConfig server_cfg;
  World w(server_cfg);
  // Tiny origin-side eager buffer: every 512 B request overflows to RDMA.
  w.client->hg_class().set_eager_limit(64);
  w.server->register_rpc("put_rpc", 1,
                         [](margo::Request& req) { req.respond({}); });
  const auto rpc = w.client->register_client_rpc("put_rpc");

  margo::PolicyEngine engine(*w.client, sim::usec(100));
  engine.add_rule("eager_autotune", margo::PolicyEngine::eager_threshold_autotune(
                                        /*overflow_frac=*/0.25, /*cap=*/4096));
  w.server->start();
  w.client->start();
  engine.start();
  w.client->spawn([&] {
    for (int round = 0; round < 30; ++round) {
      std::vector<margo::PendingOpPtr> ops;
      for (int i = 0; i < 8; ++i) {
        ops.push_back(w.client->forward_async(
            w.server->addr(), 1, rpc, std::vector<std::byte>(512)));
      }
      for (auto& op : ops) op->wait();
    }
    w.client->finalize();
    w.server->finalize();
  });
  w.eng.run();

  EXPECT_GT(w.client->hg_class().config().eager_limit, 64u);
  ASSERT_FALSE(engine.actions().empty());
  EXPECT_NE(engine.actions()[0].description.find("eager_buffer_size"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Action spans in the trace
// ---------------------------------------------------------------------------

TEST(ActionSpans, AdaptationVisibleInTraceSummary) {
  World w(server_with_es(2));
  margo::PolicyEngine engine(*w.server, sim::usec(100));
  engine.add_rule("rss", margo::PolicyEngine::rss_watermark(16ULL << 20));
  w.server->start();
  engine.start();
  w.client->start();
  w.eng.after(sim::usec(250), [&] { w.server->process().add_rss(32 << 20); });
  w.eng.after(sim::msec(2), [&] {
    w.server->finalize();
    w.client->finalize();
  });
  w.eng.run();
  ASSERT_EQ(engine.actions().size(), 1u);

  const auto summary =
      prof::TraceSummary::build({&w.server->trace(), &w.client->trace()});
  const auto bc = static_cast<prof::Breadcrumb>(prof::hash16("policy:rss"));
  const prof::Span* action_span = nullptr;
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) {
      if (sp.breadcrumb == bc) action_span = &sp;
    }
  }
  ASSERT_NE(action_span, nullptr);
  // Self-targeted: the adapting process is both origin and target, and all
  // four timestamps stitched.
  EXPECT_EQ(action_span->origin_ep, action_span->target_ep);
  EXPECT_EQ(action_span->origin_ep, w.server->addr());
  EXPECT_GT(action_span->origin_start, 0u);
  EXPECT_GE(action_span->origin_end, action_span->origin_start);

  // And it renders by name in the Gantt view (Fig. 5 equivalent).
  const auto* rt = summary.find(action_span->request_id);
  ASSERT_NE(rt, nullptr);
  EXPECT_NE(summary.format_request(*rt).find("policy:rss"),
            std::string::npos);
}
