// Tests for the blockcache tier: placement purity, fair-share scheduler
// policies, hit/miss/eviction accounting, sequential-miss readahead,
// write-back coalescing (the backend must see few large writes and
// read-your-writes must survive eviction + refetch), the size-fair
// byte-rate property across unequal tenant jobs, the PolicyEngine
// capacity actuator, and digest bit-identity at 1/2/4/8 workers with the
// cache tier in the loop.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "services/blockcache/blockcache.hpp"
#include "symbiosys/analysis.hpp"
#include "symbiosys/zipkin.hpp"
#include "workloads/cache_world.hpp"

namespace sim = sym::sim;
namespace prof = sym::prof;
namespace bc = sym::blockcache;
using sym::workloads::CachePattern;
using sym::workloads::CacheWorld;
using sym::workloads::TenantSpec;

namespace {

constexpr std::uint32_t kBs = 64 * 1024;

CacheWorld::Params base_params() {
  CacheWorld::Params p;
  p.cache_servers = 1;
  p.cache.block_bytes = kBs;
  p.cache.readahead_blocks = 1;
  p.cache.flush_period = 0;  // no periodic flusher: deterministic op counts
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Placement (pure function)
// ---------------------------------------------------------------------------

TEST(Placement, AlignedKeepsStripeRunsOnOneServer) {
  for (std::uint32_t b = 0; b < 64; ++b) {
    const auto s = bc::server_for(bc::Placement::kLocalityAligned,
                                  {7, b}, 4, 8);
    EXPECT_EQ(s, bc::server_for(bc::Placement::kLocalityAligned,
                                {7, (b / 8) * 8}, 4, 8));
    EXPECT_LT(s, 4u);
  }
  // Adjacent stripes rotate to different servers.
  EXPECT_NE(bc::server_for(bc::Placement::kLocalityAligned, {7, 0}, 4, 8),
            bc::server_for(bc::Placement::kLocalityAligned, {7, 8}, 4, 8));
}

TEST(Placement, HashScattersAdjacentBlocks) {
  std::set<std::uint32_t> servers;
  for (std::uint32_t b = 0; b < 16; ++b) {
    servers.insert(bc::server_for(bc::Placement::kHash, {7, b}, 4));
  }
  // A sequential run must not collapse onto one server under hashing.
  EXPECT_GT(servers.size(), 1u);
  // Pure function: same key, same answer.
  EXPECT_EQ(bc::server_for(bc::Placement::kHash, {7, 3}, 4),
            bc::server_for(bc::Placement::kHash, {7, 3}, 4));
}

// ---------------------------------------------------------------------------
// FairScheduler (header-only, no sim)
// ---------------------------------------------------------------------------

TEST(FairScheduler, FifoServesArrivalOrder) {
  bc::FairScheduler<int> s(bc::SchedPolicy::kFifo);
  s.enqueue(0, 1, 100, 1);
  s.enqueue(1, 1, 100, 2);
  s.enqueue(0, 1, 100, 3);
  EXPECT_EQ(s.pop_next(), 1);
  EXPECT_EQ(s.pop_next(), 2);
  EXPECT_EQ(s.pop_next(), 3);
  EXPECT_FALSE(s.pop_next().has_value());
}

TEST(FairScheduler, SizeFairServesLeastServedTenant) {
  bc::FairScheduler<int> s(bc::SchedPolicy::kSizeFair);
  // Tenant 0 floods; tenant 1 has one request. Serve 0 once, then 1 must be
  // preferred (fewer bytes served), then 0 drains.
  s.enqueue(0, 1, 100, 10);
  s.enqueue(0, 1, 100, 11);
  s.enqueue(0, 1, 100, 12);
  EXPECT_EQ(s.pop_next(), 10);
  s.enqueue(1, 1, 100, 20);
  EXPECT_EQ(s.pop_next(), 20);
  EXPECT_EQ(s.pop_next(), 11);
  EXPECT_EQ(s.bytes_served(0), 200u);
  EXPECT_EQ(s.bytes_served(1), 100u);
}

TEST(FairScheduler, JobFairWeightsByDeclaredWidth) {
  bc::FairScheduler<int> s(bc::SchedPolicy::kJobFair);
  // Tenant 0 has weight 2: after serving it twice (200 bytes, 100/weight)
  // and tenant 1 once (100 bytes, 100/weight), the normalized shares tie
  // and the older head wins.
  s.enqueue(0, 2, 100, 10);
  s.enqueue(0, 2, 100, 11);
  s.enqueue(0, 2, 100, 12);
  s.enqueue(1, 1, 100, 20);
  EXPECT_EQ(s.pop_next(), 10);   // 0: 100*1 < 1: 0*2 is false... both 0, older
  EXPECT_EQ(s.pop_next(), 20);   // 0 at 100/2, 1 at 0
  EXPECT_EQ(s.pop_next(), 11);   // 0 at 100/2 vs 1 at 100/1
  EXPECT_EQ(s.pop_next(), 12);   // 0 at 200/2 == 1 at 100/1, older head
}

TEST(FairScheduler, IdleCreditIsBoundedByWindow) {
  bc::FairScheduler<int> s(bc::SchedPolicy::kSizeFair);
  s.set_credit_window(150);
  s.enqueue(0, 1, 100, 1);
  for (int i = 0; i < 10; ++i) {
    (void)s.pop_next();
    s.enqueue(0, 1, 100, 1);
  }
  EXPECT_EQ(s.bytes_served(0), 1000u);
  // Tenant 1 arrives late: its counter is clamped to active_min - window,
  // not to zero (which would let it monopolize) and not to active_min
  // (which would erase fairness).
  s.enqueue(1, 1, 100, 2);
  EXPECT_EQ(s.bytes_served(1), 850u);
}

// ---------------------------------------------------------------------------
// Cache behavior through full deployments
// ---------------------------------------------------------------------------

TEST(Blockcache, ColdMissesThenHitsOnSecondPass) {
  auto p = base_params();
  p.cache.capacity_blocks = 32;
  p.tenants = {TenantSpec{.width = 1,
                          .blocks_per_client = 16,
                          .passes = 2,
                          .pattern = CachePattern::kSeqRead}};
  CacheWorld world(p);
  world.run();
  EXPECT_EQ(world.total_misses(), 16u);
  EXPECT_EQ(world.total_hits(), 16u);
  EXPECT_EQ(world.total_evictions(), 0u);
  EXPECT_EQ(world.cache_provider(0).occupancy_blocks(), 16u);
  EXPECT_DOUBLE_EQ(world.cache_provider(0).hit_ratio(), 0.5);
}

TEST(Blockcache, EvictionBoundsOccupancyAtCapacity) {
  for (const auto eviction : {bc::Eviction::kLru, bc::Eviction::kClock}) {
    auto p = base_params();
    p.cache.capacity_blocks = 8;
    p.cache.eviction = eviction;
    p.tenants = {TenantSpec{.width = 1,
                            .blocks_per_client = 16,
                            .passes = 1,
                            .pattern = CachePattern::kSeqRead}};
    CacheWorld world(p);
    world.run();
    EXPECT_EQ(world.total_misses(), 16u) << to_string(eviction);
    EXPECT_EQ(world.total_evictions(), 8u) << to_string(eviction);
    EXPECT_EQ(world.cache_provider(0).occupancy_blocks(), 8u)
        << to_string(eviction);
  }
}

TEST(Blockcache, SequentialMissRunsTriggerReadahead) {
  auto p = base_params();
  p.cache.capacity_blocks = 64;
  p.cache.readahead_blocks = 8;
  p.tenants = {TenantSpec{.width = 1,
                          .blocks_per_client = 17,
                          .passes = 1,
                          .pattern = CachePattern::kSeqRead}};
  CacheWorld world(p);
  world.run();
  // Block 0 misses alone; block 1 starts a sequential run and fetches 8
  // (1..8); blocks 2..8 hit; block 9 fetches 9..16; blocks 10..16 hit.
  EXPECT_EQ(world.total_backend_reads(), 3u);
  EXPECT_EQ(world.total_misses(), 3u);
  EXPECT_EQ(world.total_hits(), 14u);
}

TEST(Blockcache, WritebackCoalescesSmallWritesIntoOneBackendWrite) {
  auto p = base_params();
  p.cache.capacity_blocks = 32;
  p.cache.writeback_watermark = 64;  // only the explicit flush writes back
  p.tenants = {TenantSpec{.width = 1,
                          .blocks_per_client = 16,
                          .passes = 1,
                          .pattern = CachePattern::kSeqWrite,
                          .write_op_blocks = 1}};
  CacheWorld world(p);
  world.run();
  // 16 single-block client writes; the flush coalesces the dirty run into
  // ONE backend write of 16 blocks.
  EXPECT_EQ(world.cache_provider(0).write_ops(), 16u);
  EXPECT_EQ(world.total_writeback_ops(), 1u);
  EXPECT_EQ(world.total_writeback_bytes(), 16ull * kBs);
  EXPECT_EQ(world.cache_provider(0).dirty_blocks(), 0u);

  // The backend region holds exactly what the tenant wrote.
  const auto rid = world.cache_provider(0).backend_region(0);
  ASSERT_NE(rid, 0u);
  const auto* region = world.backend_provider().region(rid);
  ASSERT_NE(region, nullptr);
  ASSERT_EQ(region->data.size(), 16ull * kBs);
  for (const auto b : region->data) {
    ASSERT_EQ(b, std::byte{1});
  }
}

TEST(Blockcache, ReadYourWritesSurvivesEvictionAndRefetch) {
  auto p = base_params();
  p.cache.capacity_blocks = 4;  // force dirty eviction + backend refetch
  p.tenants = {TenantSpec{.width = 2,
                          .blocks_per_client = 16,
                          .passes = 2,
                          .pattern = CachePattern::kWriteThenRead,
                          .write_op_blocks = 2}};
  CacheWorld world(p);
  world.run();
  EXPECT_EQ(world.data_mismatches(), 0u);
  EXPECT_GT(world.total_evictions(), 0u);
  EXPECT_GT(world.total_backend_reads(), 0u);
}

// ---------------------------------------------------------------------------
// Fair-share property (the ThemisIO size-fair claim)
// ---------------------------------------------------------------------------

namespace {

/// Two tenant jobs with equal total demand but 4x different widths, sharing
/// one cache server. Returns the relative byte-rate gap between them.
/// The cache device is slowed so per-block service time dominates each
/// client's request round-trip: the server is then the contended resource
/// and the scheduler's policy decides the delivered rates (with a fast
/// device a single narrow client is think-time-limited and cannot consume
/// the share any policy would grant it).
double rate_gap_under(bc::SchedPolicy policy) {
  auto p = base_params();
  p.cache.capacity_blocks = 320;
  p.cache.policy = policy;
  p.cache.service_bw_bytes_per_ns = 0.25;
  p.tenants = {TenantSpec{.width = 4,
                          .blocks_per_client = 32,
                          .passes = 8,
                          .pattern = CachePattern::kSeqRead},
               TenantSpec{.width = 1,
                          .blocks_per_client = 128,
                          .passes = 8,
                          .pattern = CachePattern::kSeqRead}};
  CacheWorld world(p);
  world.run();
  const double wide = world.tenant_byte_rate(0);
  const double narrow = world.tenant_byte_rate(1);
  return (wide > narrow ? wide - narrow : narrow - wide) /
         (wide > narrow ? wide : narrow);
}

}  // namespace

TEST(Blockcache, SizeFairEqualizesByteRatesAcrossUnequalWidths) {
  const double fair_gap = rate_gap_under(bc::SchedPolicy::kSizeFair);
  EXPECT_LT(fair_gap, 0.05);  // the ISSUE's 5% property
}

TEST(Blockcache, FifoFavorsTheWideJob) {
  const double fifo_gap = rate_gap_under(bc::SchedPolicy::kFifo);
  const double fair_gap = rate_gap_under(bc::SchedPolicy::kSizeFair);
  EXPECT_GT(fifo_gap, 0.15);
  EXPECT_GT(fifo_gap, fair_gap);
}

// ---------------------------------------------------------------------------
// PolicyEngine actuator surface
// ---------------------------------------------------------------------------

TEST(Blockcache, CapacityAutoscaleGrowsAThrashingCache) {
  auto p = base_params();
  p.cache.capacity_blocks = 8;
  p.autoscale = true;
  p.tenants = {TenantSpec{.width = 1,
                          .blocks_per_client = 64,
                          .passes = 3,
                          .pattern = CachePattern::kSeqRead}};
  CacheWorld world(p);
  world.run();
  // Streaming over 64 blocks with an 8-block cache thrashes; the policy
  // rule writes the bc_capacity_blocks PVAR and the dispatcher applies it.
  EXPECT_GT(world.cache_provider(0).capacity_blocks(), 8u);
}

// ---------------------------------------------------------------------------
// Determinism: bit-identical digests for any worker count
// ---------------------------------------------------------------------------

namespace {

struct WorkloadDigest {
  std::string zipkin;
  std::string profile;
  std::uint64_t events_processed = 0;
  sim::TimeNs final_now = 0;

  bool operator==(const WorkloadDigest&) const = default;
};

WorkloadDigest run_cache_world(std::uint32_t workers) {
  auto p = base_params();
  p.cache_servers = 2;
  p.cache.capacity_blocks = 16;
  p.cache.readahead_blocks = 4;
  p.cache.policy = bc::SchedPolicy::kSizeFair;
  p.cache.flush_period = sim::msec(2);  // periodic flusher in the loop too
  p.placement = bc::Placement::kLocalityAligned;
  p.tenants = {TenantSpec{.width = 2,
                          .blocks_per_client = 12,
                          .passes = 2,
                          .pattern = CachePattern::kWriteThenRead,
                          .write_op_blocks = 2},
               TenantSpec{.width = 1,
                          .blocks_per_client = 16,
                          .passes = 1,
                          .pattern = CachePattern::kSeqRead}};
  p.exec.lane_count = 0;  // one lane per simulated node
  p.exec.worker_count = workers;
  p.exec.lookahead = sim::usec(2);
  CacheWorld world(p);
  world.run();
  EXPECT_EQ(world.data_mismatches(), 0u) << "workers=" << workers;

  WorkloadDigest d;
  d.zipkin =
      prof::to_zipkin_json(prof::TraceSummary::build(world.all_traces()));
  d.profile = prof::ProfileSummary::build(world.all_profiles()).format(10);
  d.events_processed = world.engine().events_processed();
  d.final_now = world.engine().now();
  return d;
}

}  // namespace

TEST(Blockcache, DigestBitIdenticalAtAnyWorkerCount) {
  const WorkloadDigest baseline = run_cache_world(1);
  EXPECT_GT(baseline.events_processed, 0u);
  EXPECT_FALSE(baseline.zipkin.empty());
  for (const std::uint32_t workers : {2u, 4u, 8u}) {
    const WorkloadDigest got = run_cache_world(workers);
    EXPECT_EQ(got.zipkin, baseline.zipkin) << "workers=" << workers;
    EXPECT_EQ(got.profile, baseline.profile) << "workers=" << workers;
    EXPECT_EQ(got.events_processed, baseline.events_processed)
        << "workers=" << workers;
    EXPECT_EQ(got.final_now, baseline.final_now) << "workers=" << workers;
  }
}

