// Tests for the SYMBIOSYS analysis layer: breadcrumb algebra, profile
// summary, trace stitching + clock-skew correction, Zipkin export and the
// CSV exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "symbiosys/analysis.hpp"
#include "symbiosys/breadcrumb.hpp"
#include "symbiosys/export.hpp"
#include "symbiosys/records.hpp"
#include "symbiosys/zipkin.hpp"

namespace prof = sym::prof;
namespace sim = sym::sim;

// ---------------------------------------------------------------------------
// Breadcrumbs
// ---------------------------------------------------------------------------

TEST(Breadcrumb, Hash16NeverZero) {
  // 0 is reserved for "no ancestry".
  for (const char* name : {"a", "b", "some_rpc", "x_rpc", ""}) {
    EXPECT_NE(prof::hash16(name), 0) << name;
  }
}

TEST(Breadcrumb, ExtendShiftsAndOrs) {
  const auto a = prof::hash16("outer");
  const auto b = prof::hash16("inner");
  const auto bc = prof::extend(a, b);
  EXPECT_EQ(bc, (static_cast<std::uint64_t>(a) << 16) | b);
  EXPECT_EQ(prof::leaf_of(bc), b);
  EXPECT_EQ(prof::depth(bc), 2);
}

TEST(Breadcrumb, DepthCapsAtFourLevels) {
  prof::Breadcrumb bc = 0;
  const std::uint16_t leaves[5] = {prof::hash16("a"), prof::hash16("b"),
                                   prof::hash16("c"), prof::hash16("d"),
                                   prof::hash16("e")};
  for (int i = 0; i < 4; ++i) bc = prof::extend(bc, leaves[i]);
  EXPECT_EQ(prof::depth(bc), 4);
  const auto parts = prof::components(bc);
  ASSERT_EQ(parts.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(parts[i], leaves[i]);
  // A fifth level pushes the oldest ancestor out of the 64-bit window.
  bc = prof::extend(bc, leaves[4]);
  EXPECT_EQ(prof::depth(bc), 4);
  EXPECT_EQ(prof::components(bc)[0], leaves[1]);
  EXPECT_EQ(prof::leaf_of(bc), leaves[4]);
}

TEST(Breadcrumb, NameRegistryFormatting) {
  prof::NameRegistry reg;
  reg.register_name("read_op");
  reg.register_name("list_rpc");
  const auto bc =
      prof::extend(prof::hash16("read_op"), prof::hash16("list_rpc"));
  EXPECT_EQ(reg.format(bc), "read_op => list_rpc");
  EXPECT_EQ(reg.format(0), "<root>");
  // Unknown hashes render as placeholders, not crashes.
  EXPECT_NE(reg.format(prof::hash16("unknown_rpc")).find("<0x"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// IntervalStats / ProfileStore
// ---------------------------------------------------------------------------

TEST(IntervalStats, AccumulatesMinMaxMeanSum) {
  prof::IntervalStats s;
  s.add(10);
  s.add(30);
  s.add(20);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum_ns, 60);
  EXPECT_DOUBLE_EQ(s.min_ns, 10);
  EXPECT_DOUBLE_EQ(s.max_ns, 30);
  EXPECT_DOUBLE_EQ(s.mean_ns(), 20);

  prof::IntervalStats t;
  t.add(5);
  s.merge(t);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min_ns, 5);
  prof::IntervalStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count, 4u);
}

TEST(ProfileSummary, RanksByCumulativeLatencyAndMergesEntities) {
  prof::NameRegistry::global().register_name("hot_rpc");
  prof::NameRegistry::global().register_name("cold_rpc");
  prof::ProfileStore a, b;
  const prof::Breadcrumb hot = prof::hash16("hot_rpc");
  const prof::Breadcrumb cold = prof::hash16("cold_rpc");
  // Two origin entities record the hot path; one records the cold path.
  a.record({hot, prof::Side::kOrigin, 1, 9}, prof::Interval::kOriginExec,
           500'000);
  b.record({hot, prof::Side::kOrigin, 2, 9}, prof::Interval::kOriginExec,
           400'000);
  b.record({cold, prof::Side::kOrigin, 2, 9}, prof::Interval::kOriginExec,
           100'000);
  // Target side of the hot path.
  a.record({hot, prof::Side::kTarget, 9, 1}, prof::Interval::kTargetExec,
           300'000);

  const auto summary = prof::ProfileSummary::build({&a, &b});
  ASSERT_EQ(summary.callpaths.size(), 2u);
  EXPECT_EQ(summary.callpaths[0].breadcrumb, hot);
  EXPECT_EQ(summary.callpaths[0].call_count, 2u);
  EXPECT_DOUBLE_EQ(summary.callpaths[0].cumulative_ns, 900'000);
  EXPECT_EQ(summary.callpaths[0].per_origin_ns.size(), 2u);
  EXPECT_EQ(summary.callpaths[0].per_target_ns.size(), 1u);
  EXPECT_DOUBLE_EQ(summary.total_ns, 1'000'000);

  const auto* found = summary.find_by_leaf("cold_rpc");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->breadcrumb, cold);
  EXPECT_EQ(summary.find_by_leaf("never_registered_rpc_xyz"), nullptr);

  const auto text = summary.format(5);
  EXPECT_NE(text.find("hot_rpc"), std::string::npos);
}

TEST(ProfileSummary, UnaccountedIsEnvelopeMinusComponents) {
  prof::ProfileStore a;
  const prof::Breadcrumb bc = prof::hash16("u_rpc");
  a.record({bc, prof::Side::kOrigin, 1, 2}, prof::Interval::kOriginExec,
           1000);
  a.record({bc, prof::Side::kOrigin, 1, 2}, prof::Interval::kInputSer, 100);
  a.record({bc, prof::Side::kTarget, 2, 1}, prof::Interval::kTargetExec, 600);
  const auto summary = prof::ProfileSummary::build({&a});
  ASSERT_EQ(summary.callpaths.size(), 1u);
  EXPECT_DOUBLE_EQ(summary.callpaths[0].unaccounted_ns(), 300);
}

// ---------------------------------------------------------------------------
// Trace stitching & skew correction
// ---------------------------------------------------------------------------

namespace {

/// Emit the four events of one span with the given *true* times, applying a
/// per-endpoint clock offset to what gets recorded.
void emit_span(prof::TraceStore& origin_store, prof::TraceStore& target_store,
               std::uint64_t rid, prof::Breadcrumb bc, std::uint32_t order,
               std::uint32_t origin_ep, std::uint32_t target_ep,
               sim::TimeNs t1, sim::TimeNs t5, sim::TimeNs t8,
               sim::TimeNs t14, std::int64_t origin_skew,
               std::int64_t target_skew, std::uint32_t blocked = 0) {
  auto mk = [&](prof::TraceEventKind kind, std::uint32_t ord, sim::TimeNs t,
                std::uint32_t self, std::uint32_t peer, std::int64_t skew) {
    prof::TraceEvent ev;
    ev.request_id = rid;
    ev.order = ord;
    ev.kind = kind;
    ev.breadcrumb = bc;
    ev.self_ep = self;
    ev.peer_ep = peer;
    ev.local_ts = static_cast<sim::TimeNs>(static_cast<std::int64_t>(t) +
                                           skew);
    ev.lamport = ord + 1;
    ev.blocked_ults = blocked;
    return ev;
  };
  origin_store.append(mk(prof::TraceEventKind::kOriginStart, order, t1,
                         origin_ep, target_ep, origin_skew));
  target_store.append(mk(prof::TraceEventKind::kTargetStart, order + 1, t5,
                         target_ep, origin_ep, target_skew));
  target_store.append(mk(prof::TraceEventKind::kTargetEnd, order + 2, t8,
                         target_ep, origin_ep, target_skew));
  origin_store.append(mk(prof::TraceEventKind::kOriginEnd, order + 3, t14,
                         origin_ep, target_ep, origin_skew));
}

}  // namespace

TEST(TraceSummary, StitchesFourEventsIntoOneSpan) {
  prof::TraceStore o, t;
  emit_span(o, t, 0xABC, prof::hash16("rpc"), 0, 1, 2, 1000, 2000, 3000,
            4000, 0, 0, 7);
  const auto summary = prof::TraceSummary::build({&o, &t});
  ASSERT_EQ(summary.requests.size(), 1u);
  ASSERT_EQ(summary.requests[0].spans.size(), 1u);
  const auto& sp = summary.requests[0].spans[0];
  EXPECT_EQ(sp.origin_ep, 1u);
  EXPECT_EQ(sp.target_ep, 2u);
  EXPECT_EQ(sp.origin_start, 1000u);
  EXPECT_EQ(sp.origin_end, 4000u);
  EXPECT_EQ(sp.duration(), 3000u);
  EXPECT_EQ(sp.target_blocked_ults, 7u);
  EXPECT_EQ(summary.total_events, 4u);
  EXPECT_NE(summary.find(0xABC), nullptr);
  EXPECT_EQ(summary.find(0xDEF), nullptr);
}

TEST(TraceSummary, RepeatedCallsOnSamePathStaySeparate) {
  // Two sdskv_put calls inside the same request share a breadcrumb but use
  // distinct order bases — they must become two spans.
  prof::TraceStore o, t;
  const auto bc = prof::hash16("put");
  emit_span(o, t, 1, bc, 0, 1, 2, 100, 200, 300, 400, 0, 0);
  emit_span(o, t, 1, bc, 4, 1, 2, 500, 600, 700, 800, 0, 0);
  const auto summary = prof::TraceSummary::build({&o, &t});
  ASSERT_EQ(summary.requests.size(), 1u);
  EXPECT_EQ(summary.requests[0].spans.size(), 2u);
}

TEST(TraceSummary, CorrectsClockSkew) {
  // Target clock runs 500us ahead; symmetric network delay 10us each way.
  prof::TraceStore o, t;
  const std::int64_t skew = 500'000;
  for (int i = 0; i < 8; ++i) {
    const sim::TimeNs base = 1'000'000 + 100'000 * i;
    emit_span(o, t, 100 + i, prof::hash16("rpc"), 0, 1, 2,
              base, base + 10'000, base + 50'000, base + 60'000, 0, skew);
  }
  const auto summary = prof::TraceSummary::build({&o, &t});
  // The estimated offset of ep2 relative to ep1 should be ~= skew.
  ASSERT_TRUE(summary.clock_offset_ns.count(2));
  EXPECT_NEAR(summary.clock_offset_ns.at(2), 500'000, 1'000);
  // Corrected span timestamps must be causally ordered.
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) {
      EXPECT_LE(sp.origin_start, sp.target_start);
      EXPECT_LE(sp.target_start, sp.target_end);
      EXPECT_LE(sp.target_end, sp.origin_end);
    }
  }
}

TEST(TraceSummary, FormatRendersGantt) {
  prof::NameRegistry::global().register_name("root_op");
  prof::TraceStore o, t;
  emit_span(o, t, 55, prof::hash16("root_op"), 0, 1, 2, 0, 10, 20, 30, 0, 0);
  const auto summary = prof::TraceSummary::build({&o, &t});
  const auto text = summary.format_request(summary.requests[0]);
  EXPECT_NE(text.find("root_op"), std::string::npos);
  EXPECT_NE(text.find("ep1 -> ep2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Zipkin export
// ---------------------------------------------------------------------------

TEST(Zipkin, EmitsWellFormedSpansWithParents) {
  prof::NameRegistry::global().register_name("parent_op");
  prof::NameRegistry::global().register_name("child_op");
  prof::TraceStore o, t;
  const auto parent_bc = prof::hash16("parent_op");
  const auto child_bc =
      prof::extend(parent_bc, prof::hash16("child_op"));
  emit_span(o, t, 7, parent_bc, 0, 1, 2, 0, 100, 900, 1000, 0, 0);
  emit_span(o, t, 7, child_bc, 1, 2, 3, 200, 300, 400, 500, 0, 0);
  const auto summary = prof::TraceSummary::build({&o, &t});
  const auto json = prof::to_zipkin_json(summary);

  EXPECT_NE(json.find("\"traceId\""), std::string::npos);
  EXPECT_NE(json.find("\"parentId\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"child_op\""), std::string::npos);
  EXPECT_NE(json.find("\"localEndpoint\""), std::string::npos);
  // Both spans present.
  EXPECT_NE(json.find("parent_op"), std::string::npos);
  // Root span has no parentId before its id... at least the array parses as
  // bracketed JSON.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(Zipkin, RootSpanHasNoParent) {
  prof::TraceStore o, t;
  emit_span(o, t, 8, prof::hash16("solo_op"), 0, 1, 2, 0, 10, 20, 30, 0, 0);
  const auto summary = prof::TraceSummary::build({&o, &t});
  const auto json = prof::to_zipkin_json(*summary.find(8));
  EXPECT_EQ(json.find("parentId"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSV export / import
// ---------------------------------------------------------------------------

TEST(ExportCsv, ProfileRoundTrip) {
  prof::ProfileStore store;
  const prof::CallpathKey key{prof::hash16("rt_rpc"), prof::Side::kOrigin, 3,
                              4};
  store.record(key, prof::Interval::kOriginExec, 1234.5);
  store.record(key, prof::Interval::kOriginExec, 5678.5);
  store.record(key, prof::Interval::kInputSer, 42.0);

  std::stringstream ss;
  prof::write_profile_csv(ss, store);
  const auto back = prof::read_profile_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  const auto& stats = back.entries().begin()->second;
  EXPECT_EQ(stats.at(prof::Interval::kOriginExec).count, 2u);
  EXPECT_DOUBLE_EQ(stats.at(prof::Interval::kOriginExec).sum_ns, 6913.0);
  EXPECT_DOUBLE_EQ(stats.at(prof::Interval::kOriginExec).min_ns, 1234.5);
  EXPECT_DOUBLE_EQ(stats.at(prof::Interval::kOriginExec).max_ns, 5678.5);
  EXPECT_EQ(stats.at(prof::Interval::kInputSer).count, 1u);
}

TEST(ExportCsv, TraceRoundTrip) {
  prof::TraceStore store;
  prof::TraceEvent ev;
  ev.request_id = 99;
  ev.order = 3;
  ev.kind = prof::TraceEventKind::kTargetEnd;
  ev.breadcrumb = 0xAABB;
  ev.self_ep = 5;
  ev.peer_ep = 6;
  ev.local_ts = 123456789;
  ev.lamport = 77;
  ev.blocked_ults = 4;
  ev.runnable_ults = 2;
  ev.rss_bytes = 1 << 20;
  ev.cpu_util = 0.5f;
  ev.completion_queue_size = 3;
  ev.num_ofi_events_read = 16;
  ev.num_posted_handles = 8;
  store.append(ev);

  std::stringstream ss;
  prof::write_trace_csv(ss, store);
  const auto back = prof::read_trace_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  const auto& b = back.events()[0];
  EXPECT_EQ(b.request_id, 99u);
  EXPECT_EQ(b.kind, prof::TraceEventKind::kTargetEnd);
  EXPECT_EQ(b.breadcrumb, 0xAABBu);
  EXPECT_EQ(b.local_ts, 123456789u);
  EXPECT_EQ(b.lamport, 77u);
  EXPECT_EQ(b.blocked_ults, 4u);
  EXPECT_FLOAT_EQ(b.num_ofi_events_read, 16.0f);
}

TEST(ExportCsv, SysStatsRoundTrip) {
  prof::SysStatStore store;
  prof::SysStat s;
  s.local_ts = 42;
  s.rss_bytes = 4096;
  s.cpu_util = 0.25f;
  s.blocked_ults = 7;
  s.runnable_ults = 3;
  s.completion_queue_size = 11;
  s.num_posted_handles = 13;
  store.append(s);
  std::stringstream ss;
  prof::write_sysstats_csv(ss, store);
  const auto back = prof::read_sysstats_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.samples()[0].blocked_ults, 7u);
  EXPECT_FLOAT_EQ(back.samples()[0].completion_queue_size, 11.0f);
}

TEST(SysStatsSummary, AggregatesPerProcess) {
  prof::SysStatStore a;
  for (int i = 0; i < 4; ++i) {
    prof::SysStat s;
    s.rss_bytes = (8 + i) << 20;
    s.cpu_util = 0.5f;
    s.blocked_ults = static_cast<std::uint32_t>(i);
    a.append(s);
  }
  const auto summary = prof::SysStatsSummary::build({{"proc-a", &a}});
  ASSERT_EQ(summary.per_process.size(), 1u);
  EXPECT_EQ(summary.per_process[0].samples, 4u);
  EXPECT_NEAR(summary.per_process[0].mean_rss_mb, 9.5, 0.01);
  EXPECT_DOUBLE_EQ(summary.per_process[0].max_blocked, 3);
  EXPECT_NE(summary.format().find("proc-a"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Enum naming used in reports
// ---------------------------------------------------------------------------

TEST(Records, EnumNames) {
  EXPECT_STREQ(prof::to_string(prof::Level::kOff), "Baseline");
  EXPECT_STREQ(prof::to_string(prof::Level::kFull), "Full Support");
  EXPECT_STREQ(prof::to_string(prof::Interval::kHandlerWait),
               "target_ult_handler_time");
  EXPECT_STREQ(prof::to_string(prof::TraceEventKind::kOriginStart),
               "origin_start");
}
