// Unit tests for argolite: ULT scheduling, ES occupancy, pools, sync
// primitives, ULT-local keys, and the queueing behaviour the HEPnOS
// experiments depend on.
#include <gtest/gtest.h>

#include <vector>

#include "argolite/runtime.hpp"
#include "argolite/sync.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"

namespace sim = sym::sim;
namespace abt = sym::abt;

namespace {

/// Common fixture: one engine, one node, one process, one runtime.
struct AbtFixture {
  sim::Engine eng{42};
  sim::Cluster cluster{eng, sim::ClusterParams{.node_count = 1}};
  sim::Process& proc{cluster.spawn_process(0, "test")};
  abt::Runtime rt{eng, proc};
};

}  // namespace

TEST(Argolite, UltRunsToCompletion) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  bool ran = false;
  f.rt.create_ult(pool, [&] { ran = true; });
  f.eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(f.rt.ults_created(), 1u);
  EXPECT_EQ(f.rt.ults_finished(), 1u);
  EXPECT_EQ(f.rt.live_ults(), 0u);
}

TEST(Argolite, ComputeAdvancesVirtualTime) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  sim::TimeNs end = 0;
  f.rt.create_ult(pool, [&] {
    abt::compute(sim::usec(100));
    end = f.eng.now();
  });
  f.eng.run();
  EXPECT_GE(end, sim::usec(100));
  // Dispatch overhead is small relative to the computation.
  EXPECT_LT(end, sim::usec(101));
  EXPECT_EQ(f.proc.cpu_time(), sim::usec(100));
}

TEST(Argolite, SingleEsSerializesComputingUlts) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  std::vector<sim::TimeNs> ends;
  for (int i = 0; i < 3; ++i) {
    f.rt.create_ult(pool, [&] {
      abt::compute(sim::usec(10));
      ends.push_back(f.eng.now());
    });
  }
  f.eng.run();
  ASSERT_EQ(ends.size(), 3u);
  // Each ULT must wait for the previous one's compute: ends are >= 10, 20,
  // 30 us apart.
  EXPECT_GE(ends[1], ends[0] + sim::usec(10));
  EXPECT_GE(ends[2], ends[1] + sim::usec(10));
}

TEST(Argolite, TwoEsRunUltsConcurrently) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  f.rt.create_xstream({&pool});
  std::vector<sim::TimeNs> ends;
  for (int i = 0; i < 2; ++i) {
    f.rt.create_ult(pool, [&] {
      abt::compute(sim::usec(10));
      ends.push_back(f.eng.now());
    });
  }
  f.eng.run();
  ASSERT_EQ(ends.size(), 2u);
  // Both finish at ~10us: true concurrency in virtual time.
  EXPECT_LT(ends[1], sim::usec(11));
}

TEST(Argolite, YieldInterleavesUlts) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  std::vector<int> order;
  f.rt.create_ult(pool, [&] {
    order.push_back(1);
    abt::yield();
    order.push_back(3);
  });
  f.rt.create_ult(pool, [&] { order.push_back(2); });
  f.eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Argolite, SleepForDoesNotOccupyEs) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  sim::TimeNs sleeper_end = 0, worker_end = 0;
  f.rt.create_ult(pool, [&] {
    abt::sleep_for(sim::usec(100));
    sleeper_end = f.eng.now();
  });
  f.rt.create_ult(pool, [&] {
    abt::compute(sim::usec(10));
    worker_end = f.eng.now();
  });
  f.eng.run();
  // Worker ran while the sleeper slept.
  EXPECT_LT(worker_end, sim::usec(50));
  EXPECT_GE(sleeper_end, sim::usec(100));
  // The sleeper consumed no CPU.
  EXPECT_EQ(f.proc.cpu_time(), sim::usec(10));
}

TEST(Argolite, HandlerTimeEmergesWhenEsStarved) {
  // With 1 ES and 4 compute-bound ULTs, later ULTs wait in the pool; their
  // first_run_at - created_at gap is the paper's "target ULT handler time".
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  std::vector<abt::Ult*> ults;
  for (int i = 0; i < 4; ++i) {
    auto& u = f.rt.create_ult(pool, [&] { abt::compute(sim::usec(100)); });
    ults.push_back(&u);
  }
  std::vector<sim::DurationNs> handler_times;
  // Sample the gap in a monitor ULT before destruction: easiest is to just
  // capture first_run_at via the engine after each compute slot.
  // ULTs are destroyed on finish, so record inside bodies instead.
  f.eng.run();
  // Re-run the experiment, this time recording from inside the ULTs.
  AbtFixture g;
  auto& pool2 = g.rt.create_pool("p");
  g.rt.create_xstream({&pool2});
  std::vector<sim::TimeNs> starts;
  for (int i = 0; i < 4; ++i) {
    g.rt.create_ult(pool2, [&] {
      starts.push_back(g.eng.now());
      abt::compute(sim::usec(100));
    });
  }
  g.eng.run();
  ASSERT_EQ(starts.size(), 4u);
  // ULT i starts roughly i*100us after creation (all created at t=0).
  EXPECT_LT(starts[0], sim::usec(1));
  EXPECT_GE(starts[3], sim::usec(300));
}

TEST(Argolite, UltLocalKeysIsolatedPerUlt) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  const auto key = abt::Runtime::key_create();
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    f.rt.create_ult(pool, [&, i] {
      abt::self_set(key, i * 1000);
      abt::yield();  // other ULTs run and set the same key
      seen.push_back(abt::self_get(key));
    });
  }
  f.eng.run();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1000, 2000, 3000}));
}

TEST(Argolite, UnsetKeyReadsZero) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  const auto key = abt::Runtime::key_create();
  std::uint64_t v = 99;
  f.rt.create_ult(pool, [&] { v = abt::self_get(key); });
  f.eng.run();
  EXPECT_EQ(v, 0u);
}

TEST(Argolite, MutexMutualExclusion) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  f.rt.create_xstream({&pool});
  abt::Mutex m;
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 4; ++i) {
    f.rt.create_ult(pool, [&] {
      abt::LockGuard g(m);
      ++in_critical;
      max_in_critical = std::max(max_in_critical, in_critical);
      abt::compute(sim::usec(10));
      --in_critical;
    });
  }
  f.eng.run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_GE(m.contended_acquires(), 1u);
  EXPECT_FALSE(m.locked());
}

TEST(Argolite, MutexBlockedCountVisibleInPool) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  f.rt.create_xstream({&pool});
  f.rt.create_xstream({&pool});
  abt::Mutex m;
  std::uint64_t observed_blocked = 0;
  // Holder grabs the lock and computes; two others block on it; an observer
  // samples the runtime's blocked count, as SYMBIOSYS does for Fig. 10.
  f.rt.create_ult(pool, [&] {
    abt::LockGuard g(m);
    abt::compute(sim::usec(100));
  });
  for (int i = 0; i < 2; ++i) {
    f.rt.create_ult(pool, [&] { abt::LockGuard g(m); });
  }
  f.eng.after(sim::usec(50), [&] { observed_blocked = f.rt.total_blocked(); });
  f.eng.run();
  EXPECT_EQ(observed_blocked, 2u);
  EXPECT_EQ(f.rt.total_blocked(), 0u);
}

TEST(Argolite, MutexFifoHandoff) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  abt::Mutex m;
  std::vector<int> order;
  f.rt.create_ult(pool, [&] {
    m.lock();
    abt::compute(sim::usec(10));
    m.unlock();
  });
  for (int i = 0; i < 3; ++i) {
    f.rt.create_ult(pool, [&, i] {
      m.lock();
      order.push_back(i);
      m.unlock();
    });
  }
  f.eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Argolite, TryLock) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  abt::Mutex m;
  bool first = false, second = true;
  f.rt.create_ult(pool, [&] {
    first = m.try_lock();
    second = m.try_lock();
    m.unlock();
  });
  f.eng.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(Argolite, EventualWaitBeforeSet) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  abt::Eventual ev;
  sim::TimeNs woke_at = 0;
  f.rt.create_ult(pool, [&] {
    ev.wait();
    woke_at = f.eng.now();
  });
  f.eng.after(sim::usec(500), [&] { ev.set(); });
  f.eng.run();
  EXPECT_GE(woke_at, sim::usec(500));
  EXPECT_TRUE(ev.is_set());
}

TEST(Argolite, EventualWaitAfterSetReturnsImmediately) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  abt::Eventual ev;
  ev.set();
  bool done = false;
  f.rt.create_ult(pool, [&] {
    ev.wait();
    done = true;
  });
  f.eng.run();
  EXPECT_TRUE(done);
  EXPECT_LT(f.eng.now(), sim::usec(1));
}

TEST(Argolite, EventualResetReuse) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  abt::Eventual ev;
  int wakes = 0;
  f.rt.create_ult(pool, [&] {
    ev.wait();
    ++wakes;
    ev.reset();
    ev.wait();
    ++wakes;
  });
  f.eng.after(sim::usec(10), [&] { ev.set(); });
  f.eng.after(sim::usec(20), [&] { ev.set(); });
  f.eng.run();
  EXPECT_EQ(wakes, 2);
}

TEST(Argolite, CondVarSignalWakesOne) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  abt::Mutex m;
  abt::CondVar cv;
  int woken = 0;
  for (int i = 0; i < 2; ++i) {
    f.rt.create_ult(pool, [&] {
      abt::LockGuard g(m);
      cv.wait(m);
      ++woken;
    });
  }
  f.eng.after(sim::usec(10), [&] { cv.signal(); });
  f.eng.after(sim::usec(20), [&] { cv.broadcast(); });
  f.eng.run();
  EXPECT_EQ(woken, 2);
}

TEST(Argolite, BarrierReleasesCohortTogether) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  f.rt.create_xstream({&pool});
  f.rt.create_xstream({&pool});
  abt::Barrier bar(3);
  std::vector<sim::TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    f.rt.create_ult(pool, [&, i] {
      abt::compute(sim::usec(10) * (i + 1));  // staggered arrivals
      bar.wait();
      done.push_back(f.eng.now());
    });
  }
  f.eng.run();
  ASSERT_EQ(done.size(), 3u);
  // No one finishes before the slowest arrival at ~30us.
  for (auto t : done) EXPECT_GE(t, sim::usec(30));
}

TEST(Argolite, PoolCountersConsistent) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  f.rt.create_xstream({&pool});
  for (int i = 0; i < 5; ++i) {
    f.rt.create_ult(pool, [] { abt::compute(sim::usec(1)); });
  }
  EXPECT_EQ(pool.ready_count(), 5u);
  EXPECT_EQ(pool.total_pushed(), 5u);
  f.eng.run();
  EXPECT_EQ(pool.ready_count(), 0u);
  EXPECT_EQ(pool.blocked_count(), 0u);
  EXPECT_EQ(pool.running_count(), 0u);
}

TEST(Argolite, XstreamBusyTimeAccumulates) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  auto& xs = f.rt.create_xstream({&pool});
  f.rt.create_ult(pool, [] {
    abt::compute(sim::usec(30));
    abt::compute(sim::usec(20));
  });
  f.eng.run();
  EXPECT_EQ(xs.busy_time(), sim::usec(50));
  EXPECT_EQ(xs.ults_dispatched(), 1u);
}

TEST(Argolite, DeterministicScheduleForSameSeed) {
  auto run_once = [] {
    AbtFixture f;
    auto& pool = f.rt.create_pool("p");
    f.rt.create_xstream({&pool});
    f.rt.create_xstream({&pool});
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 10; ++i) {
      f.rt.create_ult(pool, [&, i] {
        abt::compute(f.eng.rng().uniform_range(100, 5000));
        trace.push_back(static_cast<std::uint64_t>(i) * 1'000'000 +
                        f.eng.now() % 1'000'000);
      });
    }
    f.eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Argolite, ManyUltsStressAndNoLeaks) {
  AbtFixture f;
  auto& pool = f.rt.create_pool("p");
  for (int i = 0; i < 4; ++i) f.rt.create_xstream({&pool});
  int completed = 0;
  for (int i = 0; i < 500; ++i) {
    f.rt.create_ult(pool, [&] {
      abt::compute(sim::nsec(500));
      abt::yield();
      abt::compute(sim::nsec(500));
      ++completed;
    });
  }
  f.eng.run();
  EXPECT_EQ(completed, 500);
  EXPECT_EQ(f.rt.live_ults(), 0u);
}
