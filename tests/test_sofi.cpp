// Unit tests for sofi: transfer timing, NIC serialization, completion
// queues with bounded reads, RDMA, attachments and ULT-blocking waits.
#include <gtest/gtest.h>

#include "argolite/runtime.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "sofi/fabric.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace abt = sym::abt;

namespace {

struct SofiFixture {
  SofiFixture() {
    // Zero skew, round parameters for exact timing assertions.
    sim::ClusterParams p;
    p.node_count = 2;
    p.inter_node_latency = sim::usec(2);
    p.intra_node_latency = sim::nsec(300);
    p.nic_bw_bytes_per_ns = 10.0;
    p.mem_bw_bytes_per_ns = 40.0;
    p.max_clock_skew = 0;
    cluster = std::make_unique<sim::Cluster>(eng, p);
    fabric = std::make_unique<ofi::Fabric>(*cluster);
    fabric->set_per_message_overhead(sim::nsec(1000));
    a = &fabric->create_endpoint(cluster->spawn_process(0, "a"));
    b = &fabric->create_endpoint(cluster->spawn_process(1, "b"));
    same_node_as_a = &fabric->create_endpoint(cluster->spawn_process(0, "c"));
  }

  sim::Engine eng{5};
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<ofi::Fabric> fabric;
  ofi::Endpoint* a{};
  ofi::Endpoint* b{};
  ofi::Endpoint* same_node_as_a{};
};

std::vector<std::byte> bytes(std::size_t n, std::byte fill = std::byte{7}) {
  return std::vector<std::byte>(n, fill);
}

}  // namespace

TEST(Sofi, EagerSendDeliversPayload) {
  SofiFixture f;
  f.a->post_send(f.b->addr(), /*tag=*/9, bytes(100, std::byte{0x5C}),
                 /*context=*/77);
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  ASSERT_EQ(f.b->cq().read(events, 16), 1u);
  EXPECT_EQ(events[0].kind, ofi::CqKind::kRecv);
  EXPECT_EQ(events[0].tag, 9u);
  EXPECT_EQ(events[0].peer, f.a->addr());
  ASSERT_EQ(events[0].data.size(), 100u);
  EXPECT_EQ(events[0].data[50], std::byte{0x5C});
}

TEST(Sofi, SenderGetsSendCompletion) {
  SofiFixture f;
  f.a->post_send(f.b->addr(), 1, bytes(1000), 123);
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  ASSERT_EQ(f.a->cq().read(events, 16), 1u);
  EXPECT_EQ(events[0].kind, ofi::CqKind::kSendComplete);
  EXPECT_EQ(events[0].context, 123u);
  // Send completes when the last byte leaves the NIC: overhead 1us +
  // 1000B / 10B/ns = 100ns.
  EXPECT_EQ(events[0].enqueued_at, sim::nsec(1000) + sim::nsec(100));
}

TEST(Sofi, InterNodeArrivalTimeMatchesModel) {
  SofiFixture f;
  f.a->post_send(f.b->addr(), 1, bytes(10'000), 0);
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  f.b->cq().read(events, 16);
  // overhead 1us + 10000/10 = 1us transfer + 2us latency = 4us.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].enqueued_at, sim::usec(4));
}

TEST(Sofi, IntraNodeBypassesNic) {
  SofiFixture f;
  // Saturate node 0's NIC with a large inter-node transfer...
  f.a->post_send(f.b->addr(), 1, bytes(1'000'000), 0);
  // ...then send loopback traffic; it must not queue behind the NIC.
  f.a->post_send(f.same_node_as_a->addr(), 2, bytes(4'000), 0);
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  ASSERT_EQ(f.same_node_as_a->cq().read(events, 16), 1u);
  // overhead 1us + 4000/40 = 100ns mem copy + 300ns loopback latency.
  EXPECT_EQ(events[0].enqueued_at, sim::nsec(1000 + 100 + 300));
}

TEST(Sofi, NicSerializesConcurrentSends) {
  SofiFixture f;
  f.a->post_send(f.b->addr(), 1, bytes(100'000), 1);  // 10us on the NIC
  f.a->post_send(f.b->addr(), 1, bytes(100'000), 2);  // queued behind it
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  f.b->cq().read(events, 16);
  ASSERT_EQ(events.size(), 2u);
  // Second arrival at least 10us after the first (its NIC slot).
  EXPECT_GE(events[1].enqueued_at, events[0].enqueued_at + sim::usec(10));
}

TEST(Sofi, WireBytesOverrideChargesOnlyEagerPortion) {
  SofiFixture f;
  // 1 MB payload but only 4 KB charged to the wire.
  f.a->post_send(f.b->addr(), 1, bytes(1'000'000), 0, /*wire_bytes=*/4096);
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  f.b->cq().read(events, 16);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].bytes, 4096u);
  EXPECT_EQ(events[0].data.size(), 1'000'000u);  // content still complete
  // 1us overhead + 4096/10 ~= 410ns + 2us latency: well under 5us.
  EXPECT_LT(events[0].enqueued_at, sim::usec(5));
}

TEST(Sofi, RdmaCompletesOnInitiatorOnly) {
  SofiFixture f;
  f.a->post_rdma(f.b->addr(), 1 << 20, 55);
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  ASSERT_EQ(f.a->cq().read(events, 16), 1u);
  EXPECT_EQ(events[0].kind, ofi::CqKind::kRdmaComplete);
  EXPECT_EQ(events[0].context, 55u);
  EXPECT_EQ(events[0].bytes, 1u << 20);
  // Peer is not notified.
  std::vector<ofi::CqEntry> peer_events;
  EXPECT_EQ(f.b->cq().read(peer_events, 16), 0u);
  // Timing: 1us overhead + 2us there + ~105us data + 2us back.
  EXPECT_GE(events[0].enqueued_at, sim::usec(105));
  EXPECT_LT(events[0].enqueued_at, sim::usec(115));
}

TEST(Sofi, AttachmentRidesAlongUncharged) {
  SofiFixture f;
  auto blob = std::make_shared<const std::vector<int>>(1000, 42);
  f.a->post_send(f.b->addr(), 1, bytes(16), 0, 0, blob);
  f.eng.run();
  std::vector<ofi::CqEntry> events;
  f.b->cq().read(events, 16);
  ASSERT_EQ(events.size(), 1u);
  const auto* got =
      static_cast<const std::vector<int>*>(events[0].attachment.get());
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->at(500), 42);
  EXPECT_EQ(events[0].bytes, 16u);  // only the eager message was charged
}

TEST(Sofi, CqBoundedReadAndHighWatermark) {
  SofiFixture f;
  for (int i = 0; i < 10; ++i) {
    f.a->post_send(f.b->addr(), 1, bytes(8), static_cast<std::uint64_t>(i));
  }
  f.eng.run();
  EXPECT_EQ(f.b->cq().size(), 10u);
  EXPECT_EQ(f.b->cq().high_watermark(), 10u);
  std::vector<ofi::CqEntry> events;
  EXPECT_EQ(f.b->cq().read(events, 3), 3u);
  EXPECT_EQ(f.b->cq().size(), 7u);
  EXPECT_EQ(f.b->cq().read(events, 100), 7u);
  EXPECT_EQ(f.b->cq().total_pushed(), 10u);
}

TEST(Sofi, CqWaitWakesOnPush) {
  SofiFixture f;
  abt::Runtime rt(f.eng, f.cluster->process(1));
  auto& pool = rt.create_pool("p");
  rt.create_xstream({&pool});
  bool got = false;
  sim::TimeNs woke_at = 0;
  rt.create_ult(pool, [&] {
    got = f.b->cq().wait_nonempty(sim::msec(100));
    woke_at = f.eng.now();
  });
  f.eng.after(sim::usec(50), [&] {
    f.a->post_send(f.b->addr(), 1, bytes(8), 0);
  });
  f.eng.run();
  EXPECT_TRUE(got);
  // Woke at delivery time (~54us), far before the 100ms timeout.
  EXPECT_LT(woke_at, sim::usec(100));
}

TEST(Sofi, CqWaitTimesOutWhenIdle) {
  SofiFixture f;
  abt::Runtime rt(f.eng, f.cluster->process(1));
  auto& pool = rt.create_pool("p");
  rt.create_xstream({&pool});
  bool got = true;
  sim::TimeNs woke_at = 0;
  rt.create_ult(pool, [&] {
    got = f.b->cq().wait_nonempty(sim::usec(500));
    woke_at = f.eng.now();
  });
  f.eng.run();
  EXPECT_FALSE(got);
  EXPECT_GE(woke_at, sim::usec(500));
}

TEST(Sofi, EndpointStatistics) {
  SofiFixture f;
  f.a->post_send(f.b->addr(), 1, bytes(100), 0);
  f.a->post_rdma(f.b->addr(), 5000, 0);
  f.eng.run();
  EXPECT_EQ(f.a->sends_posted(), 1u);
  EXPECT_EQ(f.a->bytes_sent(), 100u);
  EXPECT_EQ(f.a->rdma_ops(), 1u);
  EXPECT_EQ(f.a->bytes_rdma(), 5000u);
  std::vector<ofi::CqEntry> events;
  f.b->cq().read(events, 16);
  EXPECT_EQ(f.b->recvs_delivered(), 1u);
}

TEST(Sofi, ManyEndpointsDenseAddressing) {
  SofiFixture f;
  const auto before = f.fabric->endpoint_count();
  auto& e1 = f.fabric->create_endpoint(f.cluster->spawn_process(0, "x"));
  auto& e2 = f.fabric->create_endpoint(f.cluster->spawn_process(1, "y"));
  EXPECT_EQ(e1.addr(), before);
  EXPECT_EQ(e2.addr(), before + 1);
  EXPECT_EQ(&f.fabric->endpoint(e1.addr()), &e1);
}
