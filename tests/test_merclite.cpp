// Unit tests for merclite: proc serialization, the PVAR interface, and the
// RPC class mechanics (eager overflow, posted handles, progress/trigger).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "merclite/core.hpp"
#include "merclite/proc.hpp"
#include "merclite/pvar.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "sofi/fabric.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace hg = sym::hg;

// ---------------------------------------------------------------------------
// proc serialization
// ---------------------------------------------------------------------------

TEST(Proc, IntegerRoundTrip) {
  hg::BufWriter w;
  hg::put(w, std::uint8_t{7});
  hg::put(w, std::uint16_t{1234});
  hg::put(w, std::uint32_t{7654321});
  hg::put(w, std::uint64_t{0xDEADBEEFCAFEF00DULL});
  hg::put(w, std::int32_t{-42});
  hg::put(w, 3.5);

  hg::BufReader r(w.buffer());
  std::uint8_t a;
  std::uint16_t b;
  std::uint32_t c;
  std::uint64_t d;
  std::int32_t e;
  double f;
  hg::get(r, a);
  hg::get(r, b);
  hg::get(r, c);
  hg::get(r, d);
  hg::get(r, e);
  hg::get(r, f);
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 1234u);
  EXPECT_EQ(c, 7654321u);
  EXPECT_EQ(d, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(e, -42);
  EXPECT_EQ(f, 3.5);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Proc, StringRoundTrip) {
  hg::BufWriter w;
  hg::put(w, std::string("hello mochi"));
  hg::put(w, std::string(""));
  hg::BufReader r(w.buffer());
  std::string a, b;
  hg::get(r, a);
  hg::get(r, b);
  EXPECT_EQ(a, "hello mochi");
  EXPECT_EQ(b, "");
}

TEST(Proc, VectorOfPairsRoundTrip) {
  std::vector<std::pair<std::string, std::string>> kvs = {
      {"key1", "value1"}, {"key2", "value2"}, {"", "v"}};
  const auto buf = hg::encode(kvs);
  const auto out =
      hg::decode<std::vector<std::pair<std::string, std::string>>>(buf);
  EXPECT_EQ(out, kvs);
}

TEST(Proc, UnderrunThrows) {
  hg::BufWriter w;
  hg::put(w, std::uint16_t{1});
  hg::BufReader r(w.buffer());
  std::uint64_t big;
  EXPECT_THROW(hg::get(r, big), std::out_of_range);
}

TEST(Proc, NestedVectors) {
  std::vector<std::vector<std::uint32_t>> vv = {{1, 2, 3}, {}, {42}};
  EXPECT_EQ(hg::decode<decltype(vv)>(hg::encode(vv)), vv);
}

TEST(Proc, WriteZerosCountsTowardSize) {
  hg::BufWriter w;
  w.write_zeros(1000);
  EXPECT_EQ(w.size(), 1000u);
}

TEST(Proc, RpcHeaderRoundTrip) {
  hg::RpcHeader h;
  h.rpc_id = 0x1122334455667788ULL;
  h.provider_id = 3;
  h.op_seq = 99;
  h.breadcrumb = 0xAAAABBBBCCCCDDDDULL;
  h.request_id = 12345;
  h.trace_order = 7;
  h.lamport = 1000;
  h.flags = hg::kFlagTracing;
  h.body_size = 4096;
  hg::BufWriter w;
  hg::put(w, h);
  EXPECT_EQ(w.size(), hg::rpc_header_wire_size());
  hg::BufReader r(w.buffer());
  hg::RpcHeader out;
  hg::get(r, out);
  EXPECT_EQ(out.rpc_id, h.rpc_id);
  EXPECT_EQ(out.breadcrumb, h.breadcrumb);
  EXPECT_EQ(out.request_id, h.request_id);
  EXPECT_EQ(out.lamport, h.lamport);
  EXPECT_EQ(out.body_size, h.body_size);
}

// ---------------------------------------------------------------------------
// Fixture for class-level tests
// ---------------------------------------------------------------------------

namespace {

struct HgFixture {
  sim::Engine eng{7};
  sim::Cluster cluster{eng,
                       sim::ClusterParams{.node_count = 2,
                                          .max_clock_skew = 0}};
  ofi::Fabric fabric{cluster};
  sim::Process& sp{cluster.spawn_process(0, "server")};
  sim::Process& cp{cluster.spawn_process(1, "client")};
  hg::Class server{fabric, sp};
  hg::Class client{fabric, cp};
};

}  // namespace

// ---------------------------------------------------------------------------
// PVAR interface
// ---------------------------------------------------------------------------

TEST(Pvar, TableTwoVariablesExported) {
  HgFixture f;
  auto s = f.server.pvar_session_init();
  EXPECT_GE(s.count(), 10);
  for (const char* name :
       {"num_posted_handles", "completion_queue_size", "num_ofi_events_read",
        "num_rpcs_invoked", "internal_rdma_transfer_time",
        "input_serialization_time", "input_deserialization_time",
        "output_serialization_time", "origin_completion_callback_time"}) {
    EXPECT_GE(f.server.pvars().find(name), 0) << name;
  }
}

TEST(Pvar, ClassAndBindMetadata) {
  HgFixture f;
  auto s = f.client.pvar_session_init();
  const int i = f.client.pvars().find("num_rpcs_invoked");
  ASSERT_GE(i, 0);
  EXPECT_EQ(s.info(i).cls, hg::PvarClass::kCounter);
  EXPECT_EQ(s.info(i).bind, hg::PvarBind::kNoObject);
  const int t = f.client.pvars().find("input_serialization_time");
  ASSERT_GE(t, 0);
  EXPECT_EQ(s.info(t).cls, hg::PvarClass::kTimer);
  EXPECT_EQ(s.info(t).bind, hg::PvarBind::kHandle);
  EXPECT_STREQ(hg::to_string(s.info(t).cls), "TIMER");
  EXPECT_STREQ(hg::to_string(s.info(t).bind), "HANDLE");
}

TEST(Pvar, SessionLifecycle) {
  HgFixture f;
  auto s = f.client.pvar_session_init();
  auto h = s.alloc("num_rpcs_invoked");
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(s.read(h), 0.0);
  EXPECT_EQ(s.allocated_handles(), 1u);
  s.finalize();
  EXPECT_FALSE(s.active());
  EXPECT_THROW((void)s.read(h), std::logic_error);
}

TEST(Pvar, UnknownNameGivesInvalidHandle) {
  HgFixture f;
  auto s = f.client.pvar_session_init();
  EXPECT_FALSE(s.alloc("no_such_pvar").valid());
}

TEST(Pvar, HandleBoundRequiresObject) {
  HgFixture f;
  auto s = f.client.pvar_session_init();
  auto h = s.alloc("input_serialization_time");
  EXPECT_THROW((void)s.read(h, nullptr), std::invalid_argument);
}

TEST(Pvar, DistinctSessionIds) {
  HgFixture f;
  auto a = f.client.pvar_session_init();
  auto b = f.client.pvar_session_init();
  EXPECT_NE(a.id(), b.id());
}

// ---------------------------------------------------------------------------
// RPC class mechanics (driven without margolite)
// ---------------------------------------------------------------------------

TEST(HgClass, RegisterGivesStableHashId) {
  HgFixture f;
  const auto id1 = f.server.register_rpc("my_rpc", [](hg::HandlePtr) {});
  const auto id2 = f.client.register_rpc("my_rpc", nullptr);
  EXPECT_EQ(id1, id2);
  ASSERT_NE(f.server.rpc_name(id1), nullptr);
  EXPECT_EQ(*f.server.rpc_name(id1), "my_rpc");
  EXPECT_EQ(f.server.rpc_name(12345), nullptr);
}

TEST(HgClass, EndToEndRequestResponse) {
  HgFixture f;
  std::string received;
  hg::HandlePtr target_handle;
  f.server.register_rpc("echo", [&](hg::HandlePtr h) {
    received = hg::decode<std::string>(h->body);
    target_handle = h;
  });
  const auto rpc = f.client.register_rpc("echo", nullptr);

  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  bool completed = false;
  std::string reply;
  f.client.forward(h, hg::encode(std::string("ping")),
                   [&](const hg::HandlePtr& done) {
                     reply = hg::decode<std::string>(done->response_body);
                     completed = true;
                   });
  EXPECT_EQ(f.client.num_posted_handles(), 1u);
  EXPECT_EQ(f.client.num_rpcs_invoked(), 1u);

  f.eng.run();  // deliver request to the server's OFI CQ
  EXPECT_EQ(f.server.progress(), 1u);
  EXPECT_EQ(received, "ping");
  ASSERT_NE(target_handle, nullptr);
  EXPECT_TRUE(target_handle->target_side());

  f.server.respond(target_handle, hg::encode(std::string("pong")),
                   nullptr);
  f.eng.run();  // deliver response
  EXPECT_GE(f.client.progress(), 1u);
  EXPECT_EQ(f.client.num_posted_handles(), 0u);
  EXPECT_FALSE(completed);  // callback waits for trigger()
  EXPECT_EQ(f.client.completion_queue_size(), 1u);
  EXPECT_EQ(f.client.trigger(), 1u);
  EXPECT_TRUE(completed);
  EXPECT_EQ(reply, "pong");
}

TEST(HgClass, InputSerializationTimerRecorded) {
  HgFixture f;
  const auto rpc = f.client.register_rpc("r", nullptr);
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h, std::vector<std::byte>(1000), nullptr);
  EXPECT_GT(h->timer(hg::kHtInputSer), 0.0);
  // cost model: base + 0.15/byte => >= 300ns and >= 150ns contribution.
  EXPECT_GE(h->timer(hg::kHtInputSer), 400.0);
}

TEST(HgClass, EagerOverflowTakesInternalRdmaPath) {
  HgFixture f;
  hg::HandlePtr arrived;
  f.server.register_rpc("big", [&](hg::HandlePtr h) { arrived = h; });
  const auto rpc = f.client.register_rpc("big", nullptr);

  const std::size_t big_size = 64 * 1024;  // above the 4 KiB eager limit
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h, std::vector<std::byte>(big_size), nullptr);
  EXPECT_EQ(f.client.eager_overflows(), 1u);

  f.eng.run();
  f.server.progress();          // receives eager part, posts internal RDMA
  EXPECT_EQ(arrived, nullptr);  // not dispatched until RDMA completes
  f.eng.run();
  f.server.progress();  // RDMA completion
  ASSERT_NE(arrived, nullptr);
  EXPECT_GT(arrived->timer(hg::kHtInternalRdma), 0.0);
  EXPECT_EQ(arrived->body.size(), big_size);
}

TEST(HgClass, SmallRequestHasNoInternalRdma) {
  HgFixture f;
  hg::HandlePtr arrived;
  f.server.register_rpc("small", [&](hg::HandlePtr h) { arrived = h; });
  const auto rpc = f.client.register_rpc("small", nullptr);
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h, std::vector<std::byte>(100), nullptr);
  f.eng.run();
  f.server.progress();
  ASSERT_NE(arrived, nullptr);
  EXPECT_EQ(arrived->timer(hg::kHtInternalRdma), 0.0);
  EXPECT_EQ(f.client.eager_overflows(), 0u);
}

TEST(HgClass, MaxEventsBoundsProgressReads) {
  HgFixture f;
  int arrivals = 0;
  f.server.register_rpc("burst", [&](hg::HandlePtr) { ++arrivals; });
  const auto rpc = f.client.register_rpc("burst", nullptr);
  for (int i = 0; i < 40; ++i) {
    auto h = f.client.create_handle(f.server.addr(), rpc, 0);
    f.client.forward(h, std::vector<std::byte>(16), nullptr);
  }
  f.eng.run();
  // Default max_events = 16: the first progress call reads exactly 16.
  EXPECT_EQ(f.server.progress(), 16u);
  EXPECT_EQ(f.server.num_ofi_events_read(), 16u);
  EXPECT_EQ(f.server.progress(), 16u);
  EXPECT_EQ(f.server.progress(), 8u);
  EXPECT_EQ(f.server.progress(), 0u);
  EXPECT_EQ(arrivals, 40);

  f.server.set_max_events(64);
  for (int i = 0; i < 40; ++i) {
    auto h = f.client.create_handle(f.server.addr(), rpc, 0);
    f.client.forward(h, std::vector<std::byte>(16), nullptr);
  }
  f.eng.run();
  EXPECT_EQ(f.server.progress(), 40u);
}

TEST(HgClass, BulkTransferCompletesViaTrigger) {
  HgFixture f;
  hg::HandlePtr arrived;
  f.server.register_rpc("bulkrpc", [&](hg::HandlePtr h) { arrived = h; });
  const auto rpc = f.client.register_rpc("bulkrpc", nullptr);
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h, std::vector<std::byte>(32), nullptr);
  f.eng.run();
  f.server.progress();
  ASSERT_NE(arrived, nullptr);

  bool done = false;
  f.server.bulk_transfer(arrived, 1 << 20, [&] { done = true; });
  f.eng.run();
  f.server.progress();
  EXPECT_FALSE(done);
  f.server.trigger();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.server.bulk_bytes_total(), 1u << 20);
}

TEST(HgClass, RespondSentCallbackFiresAfterSend) {
  HgFixture f;
  hg::HandlePtr arrived;
  f.server.register_rpc("cb", [&](hg::HandlePtr h) { arrived = h; });
  const auto rpc = f.client.register_rpc("cb", nullptr);
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h, std::vector<std::byte>(8), nullptr);
  f.eng.run();
  f.server.progress();
  ASSERT_NE(arrived, nullptr);

  bool sent = false;
  f.server.respond(arrived, std::vector<std::byte>(8),
                   [&](const hg::HandlePtr&) { sent = true; });
  f.eng.run();
  f.server.progress();
  f.server.trigger();
  EXPECT_TRUE(sent);
}

TEST(HgClass, OfiCqHighWatermarkPvar) {
  HgFixture f;
  f.server.register_rpc("hw", [](hg::HandlePtr) {});
  const auto rpc = f.client.register_rpc("hw", nullptr);
  for (int i = 0; i < 10; ++i) {
    auto h = f.client.create_handle(f.server.addr(), rpc, 0);
    f.client.forward(h, std::vector<std::byte>(16), nullptr);
  }
  f.eng.run();
  auto s = f.server.pvar_session_init();
  auto hwm = s.alloc("ofi_cq_high_watermark");
  EXPECT_GE(s.read(hwm), 10.0);
}

TEST(HgClass, CancelDropsLateResponse) {
  HgFixture f;
  hg::HandlePtr target_handle;
  f.server.register_rpc("c1", [&](hg::HandlePtr h) { target_handle = h; });
  const auto rpc = f.client.register_rpc("c1", nullptr);
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  bool completed = false;
  f.client.forward(h, std::vector<std::byte>(8),
                   [&](const hg::HandlePtr&) { completed = true; });
  EXPECT_EQ(f.client.num_posted_handles(), 1u);

  EXPECT_TRUE(f.client.cancel(h));
  EXPECT_EQ(f.client.num_posted_handles(), 0u);
  EXPECT_EQ(f.client.cancellations(), 1u);
  EXPECT_FALSE(f.client.cancel(h));  // second cancel is a no-op

  // The server still answers; the late response must be discarded.
  f.eng.run();
  f.server.progress();
  ASSERT_NE(target_handle, nullptr);
  f.server.respond(target_handle, std::vector<std::byte>(8), nullptr);
  f.eng.run();
  f.client.progress();
  f.client.trigger();
  EXPECT_FALSE(completed);
}

TEST(HgClass, BodyExactlyAtEagerLimitStaysEager) {
  HgFixture f;
  hg::HandlePtr arrived;
  f.server.register_rpc("edge", [&](hg::HandlePtr h) { arrived = h; });
  const auto rpc = f.client.register_rpc("edge", nullptr);
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h, std::vector<std::byte>(4096), nullptr);  // == limit
  EXPECT_EQ(f.client.eager_overflows(), 0u);
  f.eng.run();
  f.server.progress();
  ASSERT_NE(arrived, nullptr);
  EXPECT_EQ(arrived->body.size(), 4096u);
  EXPECT_EQ(arrived->timer(hg::kHtInternalRdma), 0.0);

  // One byte more takes the overflow path.
  auto h2 = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h2, std::vector<std::byte>(4097), nullptr);
  EXPECT_EQ(f.client.eager_overflows(), 1u);
}

TEST(HgClass, UnknownRpcIsDropped) {
  HgFixture f;
  const auto rpc = f.client.register_rpc("never_registered_on_server", nullptr);
  auto h = f.client.create_handle(f.server.addr(), rpc, 0);
  f.client.forward(h, std::vector<std::byte>(8), nullptr);
  f.eng.run();
  EXPECT_EQ(f.server.progress(), 1u);  // event read...
  EXPECT_EQ(f.server.num_rpcs_handled(), 1u);
  EXPECT_EQ(f.server.completion_queue_size(), 0u);  // ...but nothing queued
}
