// Tests for the jx9lite filter-expression language.
#include <gtest/gtest.h>

#include "services/sonata/json.hpp"
#include "services/sonata/jx9lite.hpp"

namespace json = sym::json;
namespace jx9 = sym::jx9;

namespace {

json::Value sample() {
  return json::parse(R"({
    "pt": 42.5,
    "detector": "EMCAL",
    "hits": [1, 2, 3],
    "vertex": {"x": 0.1, "z": -3.0},
    "good": true,
    "empty": ""
  })");
}

bool eval(const char* expr) {
  return jx9::Filter::compile(expr).matches(sample());
}

}  // namespace

TEST(Jx9, NumericComparisons) {
  EXPECT_TRUE(eval("$pt > 40"));
  EXPECT_TRUE(eval("$pt >= 42.5"));
  EXPECT_FALSE(eval("$pt > 42.5"));
  EXPECT_TRUE(eval("$pt < 100"));
  EXPECT_TRUE(eval("$pt <= 42.5"));
  EXPECT_TRUE(eval("$pt == 42.5"));
  EXPECT_TRUE(eval("$pt != 41"));
}

TEST(Jx9, StringComparisons) {
  EXPECT_TRUE(eval("$detector == \"EMCAL\""));
  EXPECT_FALSE(eval("$detector == \"HCAL\""));
  EXPECT_TRUE(eval("$detector != \"HCAL\""));
  EXPECT_TRUE(eval("$detector < \"FCAL\""));  // lexicographic
}

TEST(Jx9, NestedPathAccess) {
  EXPECT_TRUE(eval("$vertex.z < 0"));
  EXPECT_TRUE(eval("$vertex.x > 0 && $vertex.z < 0"));
  EXPECT_TRUE(eval("$hits[2] == 3"));
  EXPECT_FALSE(eval("$hits[0] == 3"));
}

TEST(Jx9, LogicalOperators) {
  EXPECT_TRUE(eval("$pt > 40 && $detector == \"EMCAL\""));
  EXPECT_FALSE(eval("$pt > 40 && $detector == \"HCAL\""));
  EXPECT_TRUE(eval("$pt > 100 || $detector == \"EMCAL\""));
  EXPECT_TRUE(eval("!($pt > 100)"));
  EXPECT_TRUE(eval("($pt > 40 || $pt < 0) && $good"));
}

TEST(Jx9, ExistsPredicate) {
  EXPECT_TRUE(eval("exists($vertex.z)"));
  EXPECT_FALSE(eval("exists($vertex.w)"));
  EXPECT_TRUE(eval("exists($hits[1])"));
  EXPECT_FALSE(eval("exists($hits[9])"));
  EXPECT_TRUE(eval("!exists($nope)"));
}

TEST(Jx9, Truthiness) {
  EXPECT_TRUE(eval("$good"));
  EXPECT_FALSE(eval("$empty"));
  EXPECT_TRUE(eval("$pt"));
  EXPECT_TRUE(eval("$hits"));
  EXPECT_FALSE(eval("$missing"));
}

TEST(Jx9, MissingFieldsCompareFalse) {
  EXPECT_FALSE(eval("$missing > 1"));
  EXPECT_FALSE(eval("$missing == 1"));
  EXPECT_TRUE(eval("$missing != 1"));  // one side missing => unequal
}

TEST(Jx9, LiteralOperands) {
  EXPECT_TRUE(eval("1 < 2"));
  EXPECT_TRUE(eval("\"a\" < \"b\""));
  EXPECT_TRUE(eval("true"));
  EXPECT_FALSE(eval("false"));
  EXPECT_FALSE(eval("null"));
  EXPECT_TRUE(eval("-5 < -1"));
}

TEST(Jx9, MixedTypeOrderingIsFalse) {
  EXPECT_FALSE(eval("$detector > 5"));
  EXPECT_FALSE(eval("$good < \"x\""));
}

TEST(Jx9, SyntaxErrorsThrow) {
  for (const char* bad : {"", "$", "$a >", "(", "$a == ", "exists(a)",
                          "exists($a", "$a && ", "1 <"}) {
    EXPECT_THROW((void)jx9::Filter::compile(bad), std::runtime_error) << bad;
  }
}

TEST(Jx9, SourcePreserved) {
  auto f = jx9::Filter::compile("$pt > 40");
  EXPECT_EQ(f.source(), "$pt > 40");
}

TEST(Jx9, PrecedenceAndBeforeOr) {
  // a || b && c  ==  a || (b && c)
  auto v = json::parse(R"({"a": true, "b": false, "c": false})");
  EXPECT_TRUE(jx9::Filter::compile("$a || $b && $c").matches(v));
  EXPECT_FALSE(jx9::Filter::compile("($a || $b) && $c").matches(v));
}
