// Integration tests for the services layer: SDSKV (all three backends),
// BAKE, Sonata, Mobject and HEPnOS, all running over the full
// margolite/merclite/sofi/argolite stack.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "margolite/instance.hpp"
#include "services/bake/bake.hpp"
#include "services/hepnos/hepnos.hpp"
#include "services/mobject/mobject.hpp"
#include "services/sdskv/sdskv.hpp"
#include "services/sonata/sonata.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace hg = sym::hg;
namespace margo = sym::margo;
namespace sdskv = sym::sdskv;
namespace bake = sym::bake;
namespace sonata = sym::sonata;
namespace mobject = sym::mobject;
namespace hepnos = sym::hepnos;

namespace {

struct ServiceWorld {
  explicit ServiceWorld(unsigned handler_es = 4, std::uint64_t seed = 21)
      : eng(seed),
        cluster(eng, sim::ClusterParams{.node_count = 2}),
        fabric(cluster),
        sproc(cluster.spawn_process(0, "server")),
        cproc(cluster.spawn_process(1, "client")),
        server(fabric, sproc,
               margo::InstanceConfig{.server = true,
                                     .handler_es = handler_es}),
        client(fabric, cproc, margo::InstanceConfig{}) {}

  void run_client(std::function<void()> body) {
    server.start();
    client.start();
    client.spawn([this, body = std::move(body)] {
      body();
      client.finalize();
      server.finalize();
    });
    eng.run();
  }

  sim::Engine eng;
  sim::Cluster cluster;
  ofi::Fabric fabric;
  sim::Process& sproc;
  sim::Process& cproc;
  margo::Instance server;
  margo::Instance client;
};

}  // namespace

// ---------------------------------------------------------------------------
// SDSKV backends (direct, inside a ULT)
// ---------------------------------------------------------------------------

class BackendTest
    : public ::testing::TestWithParam<sdskv::BackendType> {};

TEST_P(BackendTest, PutGetEraseListSemantics) {
  ServiceWorld w;
  auto backend = sdskv::make_backend(GetParam(), w.sproc);
  bool done = false;
  // Drive backend calls from a ULT (they charge compute / take locks).
  sym::abt::Runtime rt(w.eng, w.sproc);
  auto& pool = rt.create_pool("p");
  rt.create_xstream({&pool});
  rt.create_ult(pool, [&] {
    backend->put("b", "2");
    backend->put("a", "1");
    backend->put("c", "3");
    backend->put("a", "1bis");  // overwrite
    EXPECT_EQ(backend->size(), 3u);

    std::string v;
    EXPECT_TRUE(backend->get("a", &v));
    EXPECT_EQ(v, "1bis");
    EXPECT_FALSE(backend->get("zz", &v));

    const auto scan = backend->list_keyvals("", 10);
    ASSERT_EQ(scan.size(), 3u);
    EXPECT_EQ(scan[0].first, "a");  // sorted ascending
    EXPECT_EQ(scan[2].first, "c");

    const auto bounded = backend->list_keyvals("a", 1);
    ASSERT_EQ(bounded.size(), 1u);
    EXPECT_EQ(bounded[0].first, "b");  // strictly greater than start key

    EXPECT_TRUE(backend->erase("b"));
    EXPECT_FALSE(backend->erase("b"));
    EXPECT_EQ(backend->size(), 2u);
    done = true;
  });
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(BackendTest, PutMultiStoresAll) {
  ServiceWorld w;
  auto backend = sdskv::make_backend(GetParam(), w.sproc);
  sym::abt::Runtime rt(w.eng, w.sproc);
  auto& pool = rt.create_pool("p");
  rt.create_xstream({&pool});
  rt.create_ult(pool, [&] {
    std::vector<sdskv::KeyValue> kvs;
    for (int i = 0; i < 100; ++i) {
      kvs.emplace_back("k" + std::to_string(i), std::string(64, 'v'));
    }
    backend->put_multi(kvs);
    EXPECT_EQ(backend->size(), 100u);
    EXPECT_GT(backend->stored_bytes(), 6400u);
  });
  w.eng.run();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(sdskv::BackendType::kMap,
                                           sdskv::BackendType::kLevelDb,
                                           sdskv::BackendType::kBerkeleyDb));

TEST(SdskvBackend, MapSerializesWriters) {
  // Two writers on two ESs against one map db: never concurrent.
  ServiceWorld w;
  sdskv::MapBackend backend(w.sproc);
  sym::abt::Runtime rt(w.eng, w.sproc);
  auto& pool = rt.create_pool("p");
  rt.create_xstream({&pool});
  rt.create_xstream({&pool});
  std::uint64_t max_waiters = 0;
  for (int i = 0; i < 4; ++i) {
    rt.create_ult(pool, [&, i] {
      std::vector<sdskv::KeyValue> kvs;
      for (int k = 0; k < 50; ++k) {
        kvs.emplace_back("w" + std::to_string(i) + "-" + std::to_string(k),
                         std::string(512, 'x'));
      }
      backend.put_multi(kvs);
      max_waiters = std::max<std::uint64_t>(max_waiters,
                                            backend.lock_waiters());
    });
  }
  w.eng.run();
  EXPECT_EQ(backend.size(), 200u);
}

TEST(SdskvBackend, LevelDbFlushesOnMemtableLimit) {
  ServiceWorld w;
  sdskv::LevelDbBackend backend(w.sproc);
  sym::abt::Runtime rt(w.eng, w.sproc);
  auto& pool = rt.create_pool("p");
  rt.create_xstream({&pool});
  rt.create_ult(pool, [&] {
    const std::string big(64 * 1024, 'x');
    for (int i = 0; i < 100; ++i) {  // ~6.4 MB > 4 MB memtable limit
      backend.put("k" + std::to_string(i), big);
    }
    EXPECT_GE(backend.flush_count(), 1u);
    // Data must survive the flush.
    std::string v;
    EXPECT_TRUE(backend.get("k0", &v));
    EXPECT_EQ(backend.size(), 100u);
  });
  w.eng.run();
}

// ---------------------------------------------------------------------------
// SDSKV over RPC
// ---------------------------------------------------------------------------

TEST(Sdskv, EndToEndPutGet) {
  ServiceWorld w;
  sdskv::Provider provider(w.server, 1,
                           sdskv::ProviderConfig{.db_count = 2});
  sdskv::Client cl(w.client);
  w.run_client([&] {
    EXPECT_EQ(cl.put(w.server.addr(), 1, 0, "key", "value"),
              sdskv::Status::kOk);
    std::string v;
    EXPECT_EQ(cl.get(w.server.addr(), 1, 0, "key", &v), sdskv::Status::kOk);
    EXPECT_EQ(v, "value");
    EXPECT_EQ(cl.get(w.server.addr(), 1, 1, "key", &v),
              sdskv::Status::kNotFound);  // other db
    EXPECT_EQ(cl.get(w.server.addr(), 1, 9, "key", &v),
              sdskv::Status::kBadDb);
    std::uint64_t len = 0;
    EXPECT_EQ(cl.length(w.server.addr(), 1, 0, "key", &len),
              sdskv::Status::kOk);
    EXPECT_EQ(len, 5u);
    EXPECT_EQ(cl.erase(w.server.addr(), 1, 0, "key"), sdskv::Status::kOk);
    EXPECT_EQ(cl.get(w.server.addr(), 1, 0, "key", &v),
              sdskv::Status::kNotFound);
  });
}

TEST(Sdskv, PutPackedMovesContentViaBulk) {
  ServiceWorld w;
  sdskv::Provider provider(w.server, 1, sdskv::ProviderConfig{});
  sdskv::Client cl(w.client);
  const auto rdma_before = w.server.hg_class().endpoint().rdma_ops();
  w.run_client([&] {
    std::vector<sdskv::KeyValue> kvs;
    for (int i = 0; i < 256; ++i) {
      kvs.emplace_back("k" + std::to_string(i), std::string(512, 'p'));
    }
    EXPECT_EQ(cl.put_packed(w.server.addr(), 1, 0, std::move(kvs)),
              sdskv::Status::kOk);
    std::string v;
    EXPECT_EQ(cl.get(w.server.addr(), 1, 0, "k17", &v), sdskv::Status::kOk);
    EXPECT_EQ(v.size(), 512u);
  });
  EXPECT_EQ(provider.db(0).size(), 256u);
  // The content moved through a bulk RDMA pull by the target.
  EXPECT_GT(w.server.hg_class().endpoint().rdma_ops(), rdma_before);
  EXPECT_GT(w.server.hg_class().bulk_bytes_total(), 128u * 1024u);
}

TEST(Sdskv, ListKeyvalsOverRpc) {
  ServiceWorld w;
  sdskv::Provider provider(w.server, 1, sdskv::ProviderConfig{});
  sdskv::Client cl(w.client);
  w.run_client([&] {
    for (const char* k : {"alpha", "beta", "gamma"}) {
      cl.put(w.server.addr(), 1, 0, k, "v");
    }
    const auto scan = cl.list_keyvals(w.server.addr(), 1, 0, "alpha", 10);
    ASSERT_EQ(scan.size(), 2u);
    EXPECT_EQ(scan[0].first, "beta");
    EXPECT_EQ(scan[1].first, "gamma");
  });
}

// ---------------------------------------------------------------------------
// BAKE
// ---------------------------------------------------------------------------

TEST(Bake, CreateWritePersistRead) {
  ServiceWorld w;
  bake::Provider provider(w.server, 2);
  bake::Client cl(w.client);
  w.run_client([&] {
    const auto rid = cl.create(w.server.addr(), 2, 1024);
    EXPECT_GT(rid, 0u);
    std::vector<std::byte> blob(1024, std::byte{0xAB});
    EXPECT_EQ(cl.write(w.server.addr(), 2, rid, 0, blob), bake::Status::kOk);
    EXPECT_EQ(cl.persist(w.server.addr(), 2, rid), bake::Status::kOk);
    const auto back = cl.read(w.server.addr(), 2, rid, 0, 1024);
    ASSERT_EQ(back.size(), 1024u);
    EXPECT_EQ(back[77], std::byte{0xAB});
    EXPECT_EQ(cl.probe(w.server.addr(), 2), 1u);
    EXPECT_EQ(cl.persist(w.server.addr(), 2, 999), bake::Status::kNoRegion);
  });
  ASSERT_NE(provider.region(1), nullptr);
  EXPECT_TRUE(provider.region(1)->persisted);
  EXPECT_EQ(provider.device().bytes_written(), 1024u);
}

TEST(Bake, CreateWritePersistComposite) {
  ServiceWorld w;
  bake::Provider provider(w.server, 2);
  bake::Client cl(w.client);
  w.run_client([&] {
    std::vector<std::byte> blob(64 * 1024, std::byte{0x5A});
    const auto rid = cl.create_write_persist(w.server.addr(), 2,
                                             std::move(blob));
    const auto back = cl.read(w.server.addr(), 2, rid, 1024, 16);
    ASSERT_EQ(back.size(), 16u);
    EXPECT_EQ(back[0], std::byte{0x5A});
  });
}

TEST(Bake, DeviceSerializesConcurrentPersists) {
  ServiceWorld w;
  bake::Provider provider(w.server, 2);
  bake::Client cl(w.client);
  sim::TimeNs elapsed = 0;
  w.run_client([&] {
    const auto t0 = w.eng.now();
    std::vector<std::byte> blob(1 << 20, std::byte{1});
    // Two 1 MiB composite writes: device bandwidth 2 B/ns => >= 1 ms total.
    cl.create_write_persist(w.server.addr(), 2, blob);
    cl.create_write_persist(w.server.addr(), 2, blob);
    elapsed = w.eng.now() - t0;
  });
  EXPECT_GE(elapsed, sim::usec(900));
  EXPECT_EQ(provider.device().bytes_written(), 2u << 20);
}

// ---------------------------------------------------------------------------
// Sonata
// ---------------------------------------------------------------------------

TEST(Sonata, StoreFetchRoundTrip) {
  ServiceWorld w;
  sonata::Provider provider(w.server, 3);
  sonata::Client cl(w.client);
  w.run_client([&] {
    cl.create_collection(w.server.addr(), 3, "docs");
    std::uint64_t id = 99;
    EXPECT_EQ(cl.store(w.server.addr(), 3, "docs", R"({"a": [1,2,3]})", &id),
              sonata::Status::kOk);
    EXPECT_EQ(id, 0u);
    std::string text;
    EXPECT_EQ(cl.fetch(w.server.addr(), 3, "docs", id, &text),
              sonata::Status::kOk);
    EXPECT_TRUE(sym::json::parse(text) == sym::json::parse(R"({"a":[1,2,3]})"));
    EXPECT_EQ(cl.fetch(w.server.addr(), 3, "docs", 42, &text),
              sonata::Status::kNotFound);
    EXPECT_EQ(cl.store(w.server.addr(), 3, "nope", "{}", &id),
              sonata::Status::kNoCollection);
    EXPECT_EQ(cl.store(w.server.addr(), 3, "docs", "{broken", &id),
              sonata::Status::kBadJson);
  });
}

TEST(Sonata, StoreMultiAndFilter) {
  ServiceWorld w;
  sonata::Provider provider(w.server, 3);
  sonata::Client cl(w.client);
  w.run_client([&] {
    cl.create_collection(w.server.addr(), 3, "events");
    std::string arr = "[";
    for (int i = 0; i < 100; ++i) {
      if (i != 0) arr += ",";
      arr += R"({"pt": )" + std::to_string(i) + R"(, "det": "D)" +
             std::to_string(i % 4) + "\"}";
    }
    arr += "]";
    std::uint32_t stored = 0;
    EXPECT_EQ(cl.store_multi(w.server.addr(), 3, "events", arr, &stored),
              sonata::Status::kOk);
    EXPECT_EQ(stored, 100u);
    EXPECT_EQ(cl.size(w.server.addr(), 3, "events"), 100u);

    std::vector<std::string> matches;
    EXPECT_EQ(cl.filter(w.server.addr(), 3, "events",
                        "$pt >= 90 && $det == \"D2\"", &matches),
              sonata::Status::kOk);
    // pt in [90,99] with pt%4==2: 90, 94, 98.
    EXPECT_EQ(matches.size(), 3u);

    EXPECT_EQ(cl.filter(w.server.addr(), 3, "events", "$$bad((", &matches),
              sonata::Status::kBadFilter);
  });
}

TEST(Sonata, LargeStoreMultiTakesInternalRdmaPath) {
  ServiceWorld w;
  sonata::Provider provider(w.server, 3);
  sonata::Client cl(w.client);
  w.run_client([&] {
    cl.create_collection(w.server.addr(), 3, "big");
    std::string arr = "[";
    for (int i = 0; i < 500; ++i) {
      if (i != 0) arr += ",";
      arr += R"({"payload": ")" + std::string(100, 'x') + "\"}";
    }
    arr += "]";
    ASSERT_GT(arr.size(), 4096u);  // beyond the eager limit
    std::uint32_t stored = 0;
    cl.store_multi(w.server.addr(), 3, "big", arr, &stored);
    EXPECT_EQ(stored, 500u);
  });
  EXPECT_GE(w.client.hg_class().eager_overflows(), 1u);
}

// ---------------------------------------------------------------------------
// Mobject
// ---------------------------------------------------------------------------

TEST(Mobject, WriteThenReadObject) {
  ServiceWorld w(8);
  mobject::Server srv(w.server);
  mobject::Client cl(w.client);
  w.run_client([&] {
    std::vector<std::byte> data(4096, std::byte{0x42});
    const auto seq =
        cl.write_op(w.server.addr(), 1, "obj-1", std::move(data));
    EXPECT_GE(seq, 1u);
    const auto back = cl.read_op(w.server.addr(), 1, "obj-1");
    ASSERT_EQ(back.size(), 4096u);
    EXPECT_EQ(back[123], std::byte{0x42});
  });
  EXPECT_EQ(srv.write_ops(), 1u);
  EXPECT_EQ(srv.read_ops(), 1u);
}

TEST(Mobject, WriteOpFansOutIntoTwelveChildCalls) {
  ServiceWorld w(8);
  mobject::Server srv(w.server);
  mobject::Client cl(w.client);
  w.run_client([&] {
    cl.write_op(w.server.addr(), 1, "obj-x", std::vector<std::byte>(256));
  });
  // Count depth-2 target-side callpaths under mobject_write_op.
  const auto root = sym::prof::hash16("mobject_write_op");
  std::uint64_t child_calls = 0;
  for (const auto& [key, stats] : w.server.profile().entries()) {
    if (key.side != sym::prof::Side::kTarget) continue;
    if (sym::prof::depth(key.breadcrumb) != 2) continue;
    if (static_cast<std::uint16_t>((key.breadcrumb >> 16) & 0xFFFF) != root) {
      continue;
    }
    child_calls += stats.at(sym::prof::Interval::kTargetExec).count;
  }
  EXPECT_EQ(child_calls, 12u);  // the paper's Fig. 5 structure
}

// ---------------------------------------------------------------------------
// HEPnOS
// ---------------------------------------------------------------------------

TEST(Hepnos, EventKeyEncodesHierarchy) {
  hepnos::EventId a{.dataset = "NOvA", .run = 1, .subrun = 2, .event = 3};
  hepnos::EventId b{.dataset = "NOvA", .run = 1, .subrun = 2, .event = 4};
  EXPECT_NE(a.key(), b.key());
  EXPECT_EQ(a.key().substr(0, 4), "NOvA");
  // Keys of the same subrun sort adjacently.
  EXPECT_LT(a.key(), b.key());
}

TEST(Hepnos, StoreAndLoadEvent) {
  ServiceWorld w;
  hepnos::Server srv(w.server, hepnos::ServerConfig{.databases = 4});
  hepnos::DataStore store(w.client, {w.server.addr()}, 1, 4);
  w.run_client([&] {
    hepnos::EventId id{.dataset = "ds", .run = 7, .subrun = 0, .event = 11};
    store.store_event(id, "payload-bytes");
    std::string back;
    EXPECT_TRUE(store.load_event(id, &back));
    EXPECT_EQ(back, "payload-bytes");
    hepnos::EventId missing{.dataset = "ds", .run = 9, .subrun = 9,
                            .event = 9};
    EXPECT_FALSE(store.load_event(missing, &back));
  });
  EXPECT_EQ(srv.events_stored(), 1u);
}

TEST(Hepnos, WriteBatchGroupsByDatabase) {
  ServiceWorld w;
  hepnos::Server srv(w.server, hepnos::ServerConfig{.databases = 4});
  hepnos::DataStore store(w.client, {w.server.addr()}, 1, 4);
  const auto rpcs_before = w.client.hg_class().num_rpcs_invoked();
  w.run_client([&] {
    hepnos::DataStore::WriteBatch batch(store);
    for (std::uint64_t e = 0; e < 64; ++e) {
      batch.store(hepnos::EventId{.dataset = "ds", .run = 0, .subrun = 0,
                                  .event = e},
                  std::string(128, 'e'));
    }
    EXPECT_EQ(batch.pending(), 64u);
    batch.flush();
    EXPECT_EQ(batch.pending(), 0u);
  });
  EXPECT_EQ(srv.events_stored(), 64u);
  // At most one put_packed per database: <= 4 RPCs for 64 events.
  EXPECT_LE(w.client.hg_class().num_rpcs_invoked() - rpcs_before, 4u);
}

TEST(Hepnos, DataLoaderStoresEveryEvent) {
  ServiceWorld w;
  hepnos::Server srv(w.server, hepnos::ServerConfig{.databases = 4});
  hepnos::DataStore store(w.client, {w.server.addr()}, 1, 4);
  hepnos::DataLoaderStats stats;
  w.run_client([&] {
    hepnos::EventFileModel model;
    model.events_per_file = 200;
    model.payload_bytes = 64;
    stats = hepnos::run_data_loader(store, model, /*files=*/2,
                                    /*batch_size=*/50, "ds", 0);
  });
  EXPECT_EQ(stats.events, 400u);
  EXPECT_EQ(srv.events_stored(), 400u);
  EXPECT_GT(stats.rpcs, 0u);
  EXPECT_GT(stats.elapsed, 0u);
}

TEST(Hepnos, EventsDistributeAcrossDatabases) {
  ServiceWorld w;
  hepnos::Server srv(w.server, hepnos::ServerConfig{.databases = 8});
  hepnos::DataStore store(w.client, {w.server.addr()}, 1, 8);
  w.run_client([&] {
    hepnos::DataStore::WriteBatch batch(store);
    for (std::uint64_t e = 0; e < 512; ++e) {
      batch.store(hepnos::EventId{.dataset = "ds", .run = 0, .subrun = 0,
                                  .event = e},
                  "v");
    }
    batch.flush();
  });
  // Every database should have received a reasonable share.
  std::size_t nonempty = 0;
  for (std::uint32_t d = 0; d < 8; ++d) {
    if (srv.kv().db(d).size() > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 8u);
}
