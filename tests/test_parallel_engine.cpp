// Determinism tests for the sharded (multi-lane) engine: the safe-window
// protocol must produce bit-identical simulations for every worker count,
// both at the raw engine level and through full workloads (Mobject and
// HEPnOS) compared via their Zipkin trace export, consolidated profile and
// event counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "symbiosys/analysis.hpp"
#include "symbiosys/zipkin.hpp"
#include "workloads/hepnos_world.hpp"
#include "workloads/mobject_world.hpp"

namespace sim = sym::sim;
namespace prof = sym::prof;
using sym::workloads::HepnosWorld;
using sym::workloads::MobjectWorld;

namespace {

const std::uint32_t kWorkerCounts[] = {1, 2, 4, 8};

sim::EngineConfig sharded(std::uint32_t lanes, std::uint32_t workers) {
  sim::EngineConfig cfg;
  cfg.lane_count = lanes;
  cfg.worker_count = workers;
  cfg.lookahead = sim::usec(2);
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine-level lane semantics
// ---------------------------------------------------------------------------

TEST(ParallelEngine, SingleLaneConfigIsClassic) {
  sim::Engine eng(7, sim::EngineConfig{});
  EXPECT_FALSE(eng.parallel());
  EXPECT_EQ(eng.lane_count(), 1u);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) eng.at(5, [&order, i] { order.push_back(i); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParallelEngine, WorkerCountClampsToLaneCount) {
  sim::Engine eng(7, sharded(2, 8));
  EXPECT_EQ(eng.lane_count(), 2u);
  EXPECT_EQ(eng.worker_count(), 2u);
}

TEST(ParallelEngine, EventsRunOnTheirLaneClock) {
  sim::Engine eng(7, sharded(3, 1));
  std::vector<sim::TimeNs> seen(3, 0);
  for (std::uint32_t lane = 0; lane < 3; ++lane) {
    eng.at_on(lane, 100 * (lane + 1),
              [&eng, &seen, lane] { seen[lane] = eng.now(); });
  }
  eng.run();
  EXPECT_EQ(seen, (std::vector<sim::TimeNs>{100, 200, 300}));
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(ParallelEngine, CrossLanePostFromInsideALaneIsNotCancellable) {
  sim::Engine eng(7, sharded(2, 1));
  sim::Engine::EventId cross = 1;
  bool ran = false;
  eng.at_on(0, 10, [&] {
    cross = eng.at_on(1, 10 + eng.lookahead(), [&ran] { ran = true; });
  });
  eng.run();
  EXPECT_EQ(cross, 0u);  // mailbox route: no cancellable id
  EXPECT_TRUE(ran);
}

TEST(ParallelEngine, CancelWorksOnOwnLane) {
  sim::Engine eng(7, sharded(2, 1));
  bool ran = false;
  const auto id = eng.at_on(1, 50, [&ran] { ran = true; });
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(eng.cancel(id));
}

// Ping-pong across two lanes: per-lane execution logs must be identical for
// every worker count. Each lane only appends to its own log, so the logs
// are race-free even when lanes execute on different worker threads.
TEST(ParallelEngine, MailboxMergeIsWorkerCountInvariant) {
  auto run_with = [](std::uint32_t workers) {
    sim::Engine eng(99, sharded(2, workers));
    const auto hop = eng.lookahead();
    std::vector<std::vector<std::uint64_t>> log(2);
    // Two independent ping-pong chains plus same-window local noise.
    std::function<void(std::uint32_t, std::uint32_t, int)> bounce =
        [&](std::uint32_t lane, std::uint32_t chain, int hops) {
          log[lane].push_back((std::uint64_t{chain} << 32) |
                              static_cast<std::uint32_t>(eng.now()));
          eng.after(1, [&log, lane, &eng] {
            log[lane].push_back(0xFFFF0000ull | eng.now());
          });
          if (hops > 0) {
            eng.after_on(1 - lane, hop, [&bounce, lane, chain, hops] {
              bounce(1 - lane, chain, hops - 1);
            });
          }
        };
    eng.at_on(0, 1, [&bounce] { bounce(0, 1, 12); });
    eng.at_on(1, 1, [&bounce] { bounce(1, 2, 12); });
    eng.run();
    return std::make_pair(log, eng.events_processed());
  };

  const auto baseline = run_with(1);
  EXPECT_GT(baseline.second, 40u);
  for (const auto workers : {2u, 4u}) {
    const auto got = run_with(workers);
    EXPECT_EQ(got.first, baseline.first) << "workers=" << workers;
    EXPECT_EQ(got.second, baseline.second) << "workers=" << workers;
  }
}

TEST(ParallelEngine, LaneRngStreamsAreIndependentAndStable) {
  sim::Engine a(1234, sharded(4, 1));
  sim::Engine b(1234, sharded(4, 1));
  std::vector<std::uint64_t> da, db;
  for (std::uint32_t lane = 0; lane < 4; ++lane) {
    a.at_on(lane, 1, [&a, &da] { da.push_back(a.rng().next()); });
    b.at_on(lane, 1, [&b, &db] { db.push_back(b.rng().next()); });
  }
  a.run();
  b.run();
  EXPECT_EQ(da, db);
  // All four lane streams differ from each other.
  for (std::size_t i = 0; i < da.size(); ++i) {
    for (std::size_t j = i + 1; j < da.size(); ++j) {
      EXPECT_NE(da[i], da[j]) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Workload-level bit-identity across worker counts
// ---------------------------------------------------------------------------

namespace {

struct WorkloadDigest {
  std::string zipkin;
  std::string profile;
  std::uint64_t events_processed = 0;
  sim::TimeNs final_now = 0;

  bool operator==(const WorkloadDigest&) const = default;
};

template <typename World>
WorkloadDigest digest_of(World& world) {
  WorkloadDigest d;
  d.zipkin = prof::to_zipkin_json(prof::TraceSummary::build(world.all_traces()));
  d.profile = prof::ProfileSummary::build(world.all_profiles()).format(10);
  d.events_processed = world.engine().events_processed();
  d.final_now = world.engine().now();
  return d;
}

WorkloadDigest run_mobject(std::uint32_t workers) {
  MobjectWorld::Params p;
  p.ior.clients = 4;
  p.ior.ops_per_client = 6;
  p.ior.object_bytes = 16 * 1024;
  p.exec.lane_count = 0;  // auto: one lane per node
  p.exec.worker_count = workers;
  MobjectWorld world(p);
  world.run();
  return digest_of(world);
}

WorkloadDigest run_hepnos(std::uint32_t workers) {
  HepnosWorld::Params p;  // default config: 2 server nodes + 2 client nodes
  p.config.total_clients = 4;
  p.config.clients_per_node = 2;
  p.file_model.events_per_file = 64;
  p.file_model.payload_bytes = 128;
  p.files_per_client = 1;
  p.exec.lane_count = 0;  // auto: one lane per node
  p.exec.worker_count = workers;
  HepnosWorld world(p);
  world.run();
  return digest_of(world);
}

}  // namespace

TEST(ParallelWorkloads, MobjectBitIdenticalAcrossWorkerCounts) {
  const WorkloadDigest baseline = run_mobject(1);
  EXPECT_FALSE(baseline.zipkin.empty());
  EXPECT_GT(baseline.events_processed, 0u);
  for (const auto workers : kWorkerCounts) {
    if (workers == 1) continue;
    const WorkloadDigest got = run_mobject(workers);
    EXPECT_EQ(got.zipkin, baseline.zipkin) << "workers=" << workers;
    EXPECT_EQ(got.profile, baseline.profile) << "workers=" << workers;
    EXPECT_EQ(got.events_processed, baseline.events_processed)
        << "workers=" << workers;
    EXPECT_EQ(got.final_now, baseline.final_now) << "workers=" << workers;
  }
}

TEST(ParallelWorkloads, HepnosBitIdenticalAcrossWorkerCounts) {
  const WorkloadDigest baseline = run_hepnos(1);
  EXPECT_FALSE(baseline.zipkin.empty());
  EXPECT_GT(baseline.events_processed, 0u);
  for (const auto workers : kWorkerCounts) {
    if (workers == 1) continue;
    const WorkloadDigest got = run_hepnos(workers);
    EXPECT_EQ(got.zipkin, baseline.zipkin) << "workers=" << workers;
    EXPECT_EQ(got.profile, baseline.profile) << "workers=" << workers;
    EXPECT_EQ(got.events_processed, baseline.events_processed)
        << "workers=" << workers;
    EXPECT_EQ(got.final_now, baseline.final_now) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Window-protocol features: lookahead matrix, quiet extension, topology
// ---------------------------------------------------------------------------

namespace {

/// 16-node HEPnOS deployment (4 server nodes + 12 client nodes, one lane
/// per node) with the window-protocol knobs under test made explicit.
WorkloadDigest run_hepnos16(std::uint32_t workers, bool matrix,
                            std::uint32_t quiet_cap) {
  HepnosWorld::Params p;
  p.config.total_clients = 12;
  p.config.clients_per_node = 1;
  p.config.total_servers = 8;
  p.config.servers_per_node = 2;
  p.file_model.events_per_file = 24;
  p.file_model.payload_bytes = 96;
  p.files_per_client = 1;
  p.exec.lane_count = 0;  // auto: one lane per node
  p.exec.worker_count = workers;
  p.exec.matrix_lookahead = matrix;
  p.exec.quiet_extension_cap = quiet_cap;
  HepnosWorld world(p);
  world.run();
  return digest_of(world);
}

}  // namespace

// Every protocol configuration — matrix lookahead and quiet-window
// extension independently on/off — must stay bit-identical for any worker
// count (different configs are different experiments and may legitimately
// differ from each other; each must agree with itself).
TEST(WindowProtocol, HepnosBitIdenticalAcrossWorkersForEveryProtocolConfig) {
  struct ProtocolConfig {
    bool matrix;
    std::uint32_t cap;
  };
  const ProtocolConfig configs[] = {{true, 8}, {true, 1}, {false, 8},
                                    {false, 1}};
  for (const auto& c : configs) {
    const WorkloadDigest baseline = run_hepnos16(1, c.matrix, c.cap);
    EXPECT_FALSE(baseline.zipkin.empty());
    EXPECT_GT(baseline.events_processed, 0u);
    for (const auto workers : {2u, 4u, 8u, 16u}) {
      const WorkloadDigest got = run_hepnos16(workers, c.matrix, c.cap);
      EXPECT_EQ(got.zipkin, baseline.zipkin)
          << "workers=" << workers << " matrix=" << c.matrix
          << " cap=" << c.cap;
      EXPECT_EQ(got.profile, baseline.profile)
          << "workers=" << workers << " matrix=" << c.matrix
          << " cap=" << c.cap;
      EXPECT_EQ(got.events_processed, baseline.events_processed)
          << "workers=" << workers << " matrix=" << c.matrix
          << " cap=" << c.cap;
      EXPECT_EQ(got.final_now, baseline.final_now)
          << "workers=" << workers << " matrix=" << c.matrix
          << " cap=" << c.cap;
    }
  }
}

TEST(WindowProtocol, ClusterInstallsLinkDerivedLookaheadMatrix) {
  sim::EngineConfig cfg;
  cfg.lane_count = 0;
  sim::Engine eng(7, cfg);
  sim::ClusterParams cp;
  cp.node_count = 3;
  cp.max_clock_skew = 0;
  cp.link_overrides.push_back({1, 2, sim::usec(40)});
  sim::Cluster cluster(eng, cp);
  EXPECT_EQ(eng.lookahead(0, 1), cp.inter_node_latency);
  EXPECT_EQ(eng.lookahead(1, 2), sim::usec(40));  // override, both ways
  EXPECT_EQ(eng.lookahead(2, 1), sim::usec(40));
  // Scalar floor = off-diagonal minimum; lookahead_to from main context
  // reads lane 0's row.
  EXPECT_EQ(eng.lookahead(), cp.inter_node_latency);
  EXPECT_EQ(eng.lookahead_to(1), cp.inter_node_latency);
}

namespace {

/// Four nodes, one lane each, each running an independent local tick chain
/// (no cross-lane traffic at all), bounded at 1 ms of virtual time. The
/// simulation itself is identical whatever the topology; only the window
/// schedule may differ.
std::pair<std::uint64_t, std::uint64_t> run_local_ticks(
    std::uint32_t quiet_cap, bool slow_links) {
  sim::EngineConfig cfg;
  cfg.lane_count = 0;  // one lane per node
  cfg.worker_count = 1;
  cfg.quiet_extension_cap = quiet_cap;
  sim::Engine eng(7, cfg);
  sim::ClusterParams cp;
  cp.node_count = 4;
  cp.max_clock_skew = 0;
  if (slow_links) {
    for (sim::NodeId a = 0; a < 4; ++a) {
      for (sim::NodeId b = a + 1; b < 4; ++b) {
        cp.link_overrides.push_back({a, b, sim::usec(100)});
      }
    }
  }
  sim::Cluster cluster(eng, cp);
  std::function<void()> ticks[4];
  for (std::uint32_t lane = 0; lane < 4; ++lane) {
    ticks[lane] = [&eng, &ticks, lane] {
      eng.after(sim::usec(10), ticks[lane]);
    };
    eng.at_on(lane, 0, ticks[lane]);
  }
  eng.run_until(sim::msec(1));
  return {eng.windows_executed(), eng.events_processed()};
}

}  // namespace

// Planted slow-link topology: when every lane pair is 100 us apart instead
// of the default 2 us, the per-lane window bounds derived from the matrix
// must lengthen accordingly — far fewer windows for the same event load.
TEST(WindowProtocol, DistantLanePairsEarnWiderWindows) {
  const auto [near_windows, near_events] =
      run_local_ticks(/*quiet_cap=*/1, /*slow_links=*/false);
  const auto [far_windows, far_events] =
      run_local_ticks(/*quiet_cap=*/1, /*slow_links=*/true);
  EXPECT_EQ(near_events, far_events);  // same simulation either way
  EXPECT_GT(near_events, 300u);
  EXPECT_GE(near_windows, 5 * far_windows)
      << "near=" << near_windows << " far=" << far_windows;
}

// Quiet-window extension: with no cross-lane traffic every window is
// quiet, so the extension factor climbs to the cap and windows stretch —
// without a single causality clamp (the bet never loses here) and without
// changing the executed events.
TEST(WindowProtocol, QuietWindowExtensionStretchesIdleWindows) {
  const auto [plain_windows, plain_events] =
      run_local_ticks(/*quiet_cap=*/1, /*slow_links=*/false);
  sim::EngineConfig cfg;
  cfg.lane_count = 0;
  cfg.worker_count = 1;
  cfg.quiet_extension_cap = 8;
  sim::Engine eng(7, cfg);
  sim::ClusterParams cp;
  cp.node_count = 4;
  cp.max_clock_skew = 0;
  sim::Cluster cluster(eng, cp);
  std::function<void()> ticks[4];
  for (std::uint32_t lane = 0; lane < 4; ++lane) {
    ticks[lane] = [&eng, &ticks, lane] {
      eng.after(sim::usec(10), ticks[lane]);
    };
    eng.at_on(lane, 0, ticks[lane]);
  }
  eng.run_until(sim::msec(1));
  EXPECT_EQ(eng.events_processed(), plain_events);
  EXPECT_LT(eng.windows_executed(), plain_windows);
  EXPECT_GT(eng.quiet_extended_windows(), 0u);
  EXPECT_EQ(eng.causality_clamps(), 0u);
  EXPECT_EQ(plain_windows, [] {
    // Re-running the cap=1 config must reproduce its window count exactly:
    // the schedule depends only on simulation state.
    return run_local_ticks(1, false).first;
  }());
}

TEST(ParallelWorkloads, HepnosShardedStoresAllEvents) {
  HepnosWorld::Params p;
  p.config.total_clients = 2;
  p.file_model.events_per_file = 32;
  p.file_model.payload_bytes = 64;
  p.exec.lane_count = 0;
  p.exec.worker_count = 2;
  HepnosWorld world(p);
  EXPECT_TRUE(world.engine().parallel());
  EXPECT_EQ(world.engine().lane_count(), 4u);  // 2 server + 2 client nodes
  world.run();
  EXPECT_EQ(world.events_stored(), 2u * 32u);
  EXPECT_GT(world.makespan(), 0u);
}
