// Unit tests for simkit: engine ordering/cancellation, RNG determinism,
// fibers, cluster NIC/clock models.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "simkit/fiber.hpp"
#include "simkit/rng.hpp"

namespace sim = sym::sim;

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

TEST(Engine, StartsAtTimeZero) {
  sim::Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  sim::Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, EqualTimestampsRunFifo) {
  sim::Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.at(5, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, AfterSchedulesRelativeToNow) {
  sim::Engine eng;
  sim::TimeNs seen = 0;
  eng.at(100, [&] { eng.after(50, [&] { seen = eng.now(); }); });
  eng.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, SchedulingIntoThePastClampsToNow) {
  sim::Engine eng;
  sim::TimeNs seen = 0;
  eng.at(100, [&] { eng.at(10, [&] { seen = eng.now(); }); });
  eng.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, CancelPreventsExecution) {
  sim::Engine eng;
  bool ran = false;
  auto id = eng.at(10, [&] { ran = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(Engine, CancelAfterFireIsNoop) {
  sim::Engine eng;
  bool ran = false;
  auto id = eng.at(10, [&] { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
  // The event fired, so its slot generation moved on: the stale id fails
  // the generation check and must never corrupt the queue.
  EXPECT_FALSE(eng.cancel(id));
  eng.run();
}

TEST(Engine, RunUntilSkipsCancelledHead) {
  // Regression: run_until() used to duplicate the cancelled-entry skip of
  // pop_and_run(); a cancelled event at the head of the heap, inside the
  // deadline, must be dropped without executing and without losing the
  // events behind it.
  sim::Engine eng;
  bool cancelled_ran = false;
  bool late_ran = false;
  auto id = eng.at(10, [&] { cancelled_ran = true; });
  eng.at(50, [&] { late_ran = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run_until(30);
  EXPECT_FALSE(cancelled_ran);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(eng.pending_events(), 1u);
  eng.run();
  EXPECT_TRUE(late_ran);
}

TEST(Engine, StaleIdFailsGenerationCheckAfterSlotReuse) {
  sim::Engine eng;
  auto a = eng.at(10, [] {});
  EXPECT_TRUE(eng.cancel(a));
  // The freed slot is recycled for the next event with a fresh generation;
  // the stale id must not cancel the newcomer.
  bool b_ran = false;
  auto b = eng.at(20, [&] { b_ran = true; });
  EXPECT_FALSE(eng.cancel(a));
  eng.run();
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(eng.cancel(b));
}

TEST(Engine, ManyInterleavedCancelsKeepOrderAndCounts) {
  sim::Engine eng;
  std::vector<int> fired;
  std::vector<sim::Engine::EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(eng.at(static_cast<sim::TimeNs>(10 * (i + 1)),
                         [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 64; i += 2) EXPECT_TRUE(eng.cancel(ids[i]));
  EXPECT_EQ(eng.pending_events(), 32u);
  eng.run();
  ASSERT_EQ(fired.size(), 32u);
  for (std::size_t j = 0; j < fired.size(); ++j) {
    EXPECT_EQ(fired[j], static_cast<int>(2 * j + 1));
  }
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(Engine, StopHaltsTheLoop) {
  sim::Engine eng;
  int count = 0;
  eng.at(1, [&] { ++count; });
  eng.at(2, [&] {
    ++count;
    eng.stop();
  });
  eng.at(3, [&] { ++count; });
  eng.run();
  EXPECT_EQ(count, 2);
  eng.reset_stop();
  eng.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilRespectsDeadline) {
  sim::Engine eng;
  std::vector<sim::TimeNs> fired;
  for (sim::TimeNs t : {10u, 20u, 30u, 40u}) {
    eng.at(t, [&fired, &eng] { fired.push_back(eng.now()); });
  }
  eng.run_until(25);
  EXPECT_EQ(fired, (std::vector<sim::TimeNs>{10, 20}));
  eng.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Engine, EventsProcessedCounter) {
  sim::Engine eng;
  for (int i = 0; i < 5; ++i) eng.at(i, [] {});
  eng.run();
  EXPECT_EQ(eng.events_processed(), 5u);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  sim::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformBoundRespected) {
  sim::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
  }
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  sim::Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  sim::Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  sim::Rng r(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(40.0);
  EXPECT_NEAR(sum / kN, 40.0, 2.0);
}

TEST(Rng, Fnv1aMatchesKnownVector) {
  // FNV-1a("a") = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(sim::fnv1a64("a", 1), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(sim::fnv1a64("abc", 3), sim::fnv1a64("abd", 3));
}

// ---------------------------------------------------------------------------
// Fiber
// ---------------------------------------------------------------------------

TEST(Fiber, RunsToCompletion) {
  bool ran = false;
  sim::Fiber f([&] { ran = true; });
  EXPECT_FALSE(f.started());
  f.switch_in();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, SwitchOutSuspendsAndResumes) {
  std::vector<int> order;
  sim::Fiber f([&] {
    order.push_back(1);
    sim::Fiber::switch_out();
    order.push_back(3);
  });
  f.switch_in();
  order.push_back(2);
  EXPECT_FALSE(f.finished());
  f.switch_in();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(sim::Fiber::current(), nullptr);
  sim::Fiber* observed = nullptr;
  sim::Fiber f([&] { observed = sim::Fiber::current(); });
  f.switch_in();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(sim::Fiber::current(), nullptr);
}

TEST(Fiber, ManySequentialFibersRecycleStacks) {
  sim::StackPool::instance().drain();
  const auto before = sim::StackPool::instance().total_allocated();
  for (int i = 0; i < 100; ++i) {
    sim::Fiber f([] {});
    f.switch_in();
  }
  // All 100 fibers should have shared a single recycled stack.
  EXPECT_LE(sim::StackPool::instance().total_allocated() - before, 1u);
}

TEST(Fiber, DeepStackUsage) {
  // Exercise a few KB of genuine stack usage inside the fiber.
  int result = 0;
  sim::Fiber f([&] {
    volatile char buf[8192];
    for (int i = 0; i < 8192; ++i) buf[i] = static_cast<char>(i & 0x7F);
    int sum = 0;
    for (int i = 0; i < 8192; ++i) sum += buf[i];
    result = sum;
  });
  f.switch_in();
  EXPECT_GT(result, 0);
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

TEST(Cluster, NodeZeroHasNoSkew) {
  sim::Engine eng(1);
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 4});
  EXPECT_EQ(cluster.node(0).clock_skew_ns(), 0);
}

TEST(Cluster, SkewBoundedByParameter) {
  sim::Engine eng(2);
  sim::ClusterParams p;
  p.node_count = 16;
  p.max_clock_skew = sim::usec(50);
  sim::Cluster cluster(eng, p);
  for (sim::NodeId n = 0; n < 16; ++n) {
    EXPECT_LE(std::abs(cluster.node(n).clock_skew_ns()),
              static_cast<std::int64_t>(sim::usec(50)));
  }
}

TEST(Cluster, LocalClockAppliesSkew) {
  sim::Engine eng(3);
  sim::ClusterParams p;
  p.node_count = 8;
  sim::Cluster cluster(eng, p);
  for (sim::NodeId n = 0; n < 8; ++n) {
    const auto skew = cluster.node(n).clock_skew_ns();
    EXPECT_EQ(cluster.node(n).local_clock(sim::sec(1)),
              static_cast<sim::TimeNs>(static_cast<std::int64_t>(sim::sec(1)) +
                                       skew));
  }
}

TEST(Cluster, NicTransfersSerialize) {
  sim::Engine eng(4);
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 1});
  auto& node = cluster.node(0);
  // Two back-to-back 1000-byte transfers at 1 B/ns: second waits for first.
  const auto end1 = node.reserve_nic(0, 1000, 1.0);
  const auto end2 = node.reserve_nic(0, 1000, 1.0);
  EXPECT_EQ(end1, 1000u);
  EXPECT_EQ(end2, 2000u);
  // A transfer after the NIC went idle starts at `now`.
  const auto end3 = node.reserve_nic(5000, 500, 1.0);
  EXPECT_EQ(end3, 5500u);
  EXPECT_EQ(node.nic_bytes_total(), 2500u);
}

TEST(Cluster, LinkLatencyIntraVsInter) {
  sim::Engine eng(5);
  sim::ClusterParams p;
  p.node_count = 2;
  p.intra_node_latency = 300;
  p.inter_node_latency = sim::usec(2);
  sim::Cluster cluster(eng, p);
  EXPECT_EQ(cluster.link_latency(0, 0), 300u);
  EXPECT_EQ(cluster.link_latency(0, 1), sim::usec(2));
  EXPECT_GT(cluster.link_bandwidth(0, 0), cluster.link_bandwidth(0, 1));
}

TEST(Cluster, ProcessRssAndCpuAccounting) {
  sim::Engine eng(6);
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 1});
  auto& proc = cluster.spawn_process(0, "server");
  const auto base = proc.rss_bytes();
  proc.add_rss(4096);
  EXPECT_EQ(proc.rss_bytes(), base + 4096);
  proc.add_rss(-4096);
  EXPECT_EQ(proc.rss_bytes(), base);

  proc.checkpoint_cpu(0);
  proc.add_cpu_time(sim::usec(500));
  // 500us busy over a 1ms window on one core => 50%.
  EXPECT_NEAR(proc.cpu_utilization(0, sim::msec(1), 1), 0.5, 1e-9);
}

TEST(Cluster, DeterministicSkewForSameSeed) {
  sim::Engine e1(42), e2(42);
  sim::ClusterParams p;
  p.node_count = 8;
  sim::Cluster c1(e1, p), c2(e2, p);
  for (sim::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(c1.node(n).clock_skew_ns(), c2.node(n).clock_skew_ns());
  }
}

// ---------------------------------------------------------------------------
// SmallFn / d-ary heap / lane arena (the million-request hot path pieces)
// ---------------------------------------------------------------------------

TEST(SmallFn, InlineCaptureDoesNotSpill) {
  std::uint64_t a = 1, b = 2, c = 3;
  sim::SmallFn fn([a, b, c, out = &a] { *out = a + b + c; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.on_heap());
  fn();
  EXPECT_EQ(a, 6u);
}

TEST(SmallFn, OversizedCaptureSpillsToHeapAndStillRuns) {
  struct Fat {
    char pad[200] = {};
  };
  int hits = 0;
  // symlint: allow(fiber-blocking) reason=test exercises the counted spill path
  sim::SmallFn fn([fat = Fat{}, &hits] {
    ++hits;
    (void)fat;
  });
  EXPECT_TRUE(fn.on_heap());
  sim::SmallFn moved = std::move(fn);
  moved();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  sim::SmallFn fn([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  sim::SmallFn moved = std::move(fn);
  moved();
  EXPECT_EQ(*counter, 1);
  moved = nullptr;
  EXPECT_EQ(counter.use_count(), 1);
}

namespace {

template <unsigned Arity>
void dheap_sorts(std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint64_t> heap;
  std::vector<std::uint64_t> ref;
  const auto before = [](std::uint64_t x, std::uint64_t y) { return x < y; };
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.uniform(10000);
    sim::dheap_push<Arity>(heap, v, before);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(heap.front(), ref[i]) << "arity " << Arity << " pop " << i;
    sim::dheap_pop<Arity>(heap, before);
  }
  EXPECT_TRUE(heap.empty());
}

}  // namespace

TEST(DHeap, EveryFanoutPopsInSortedOrder) {
  dheap_sorts<2>(11);
  dheap_sorts<4>(11);
  dheap_sorts<8>(11);
}

TEST(LaneArena, FreelistRecyclesSlotsWithFreshGenerations) {
  sim::LaneArena arena;
  const std::uint32_t a = arena.acquire();
  const std::uint32_t b = arena.acquire();
  EXPECT_EQ(arena.slot_count(), 2u);
  const std::uint32_t gen_a = arena.hot(a).generation;
  arena.cb(a) = sim::SmallFn([] {});
  arena.release(a);
  EXPECT_FALSE(static_cast<bool>(arena.cb(a))) << "release must drop the cb";

  const std::uint32_t c = arena.acquire();
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena.hot(c).generation, gen_a + 1);
  EXPECT_EQ(arena.slot_count(), 2u);
  EXPECT_EQ(arena.stats.slots_recycled, 1u);
  (void)b;
}

TEST(LaneArena, ReserveMakesSteadyStateAllocationFree) {
  sim::LaneArena arena;
  arena.reserve(32);
  const std::uint64_t growths0 = arena.stats.container_growths;
  std::vector<std::uint32_t> idx;
  for (int i = 0; i < 32; ++i) idx.push_back(arena.acquire());
  for (const auto i : idx) arena.release(i);
  for (int i = 0; i < 32; ++i) arena.acquire();
  EXPECT_EQ(arena.stats.container_growths, growths0);
}

TEST(Engine, ArenaStatsAggregateAcrossLanes) {
  sim::Engine eng;
  int runs = 0;
  for (int i = 0; i < 100; ++i) {
    eng.at(static_cast<sim::TimeNs>(i), [&runs] { ++runs; });
  }
  eng.run();
  EXPECT_EQ(runs, 100);
  const sim::ArenaStats stats = eng.arena_stats();
  EXPECT_GT(eng.arena_slot_count(), 0u);
  // Inline callbacks: the event path may grow containers while warming but
  // must never spill a SmallFn.
  EXPECT_EQ(stats.fn_heap_spills, 0u);
}

TEST(Engine, ReserveEventsAvoidsContainerGrowth) {
  sim::Engine eng;
  eng.reserve_events_per_lane(256);
  int runs = 0;
  for (int i = 0; i < 200; ++i) {
    eng.at(static_cast<sim::TimeNs>(i), [&runs] { ++runs; });
  }
  eng.run();
  EXPECT_EQ(runs, 200);
  EXPECT_EQ(eng.arena_stats().container_growths, 0u);
  EXPECT_EQ(eng.arena_stats().allocations(), 0u);
}
