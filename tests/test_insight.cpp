// Tests for the insight analyzers (critical path, empirical anomaly
// detection, structural diff) and the HEPnOS hierarchical object API.
#include <gtest/gtest.h>

#include "margolite/instance.hpp"
#include "services/hepnos/hepnos.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/insight.hpp"
#include "workloads/mobject_world.hpp"

namespace sim = sym::sim;
namespace prof = sym::prof;
namespace margo = sym::margo;
namespace hepnos = sym::hepnos;
namespace ofi = sym::ofi;

// ---------------------------------------------------------------------------
// Synthetic trace builders
// ---------------------------------------------------------------------------

namespace {

prof::Span make_span(std::uint64_t rid, prof::Breadcrumb bc,
                     std::uint32_t order, sim::TimeNs start, sim::TimeNs end) {
  prof::Span sp;
  sp.request_id = rid;
  sp.breadcrumb = bc;
  sp.base_order = order;
  sp.origin_start = start;
  sp.origin_end = end;
  sp.target_start = start + 1;
  sp.target_end = end - 1;
  return sp;
}

}  // namespace

TEST(CriticalPath, DescendsIntoGatingChild) {
  prof::NameRegistry::global().register_name("root_op");
  prof::NameRegistry::global().register_name("fast_child");
  prof::NameRegistry::global().register_name("slow_child");
  const auto root_bc = prof::hash16("root_op");
  const auto fast = prof::extend(root_bc, prof::hash16("fast_child"));
  const auto slow = prof::extend(root_bc, prof::hash16("slow_child"));

  prof::RequestTrace rt;
  rt.request_id = 1;
  rt.spans.push_back(make_span(1, root_bc, 0, 0, 1000));
  rt.spans.push_back(make_span(1, fast, 4, 100, 200));
  rt.spans.push_back(make_span(1, slow, 8, 250, 900));  // gates completion

  const auto cp = prof::critical_path(rt);
  ASSERT_EQ(cp.steps.size(), 2u);
  EXPECT_EQ(cp.steps[0].breadcrumb, root_bc);
  EXPECT_EQ(cp.steps[1].breadcrumb, slow);
  EXPECT_EQ(cp.total_ns, 1000u);
  // Root self time: 1000 - (100 covered by fast + 650 by slow) = 250.
  EXPECT_EQ(cp.steps[0].self_ns, 250u);
  EXPECT_EQ(cp.steps[1].self_ns, 650u);
  ASSERT_NE(cp.dominant(), nullptr);
  EXPECT_EQ(cp.dominant()->breadcrumb, slow);
  EXPECT_NE(cp.format().find("slow_child"), std::string::npos);
}

TEST(CriticalPath, SingleSpanIsItsOwnPath) {
  prof::RequestTrace rt;
  rt.request_id = 2;
  rt.spans.push_back(make_span(2, prof::hash16("solo"), 0, 10, 110));
  const auto cp = prof::critical_path(rt);
  ASSERT_EQ(cp.steps.size(), 1u);
  EXPECT_EQ(cp.steps[0].self_ns, 100u);
}

TEST(CriticalPath, EmptyRequestSafe) {
  prof::RequestTrace rt;
  const auto cp = prof::critical_path(rt);
  EXPECT_TRUE(cp.steps.empty());
  EXPECT_EQ(cp.total_ns, 0u);
}

TEST(Anomalies, FlagsOutlierSpans) {
  prof::TraceSummary summary;
  const auto bc = prof::hash16("steady_rpc");
  // 30 requests at ~100us, one at 10ms.
  for (std::uint64_t i = 0; i < 30; ++i) {
    prof::RequestTrace rt;
    rt.request_id = i;
    rt.spans.push_back(
        make_span(i, bc, 0, 0, 100'000 + (i % 5) * 1000));
    summary.requests.push_back(std::move(rt));
  }
  prof::RequestTrace outlier;
  outlier.request_id = 999;
  outlier.spans.push_back(make_span(999, bc, 0, 0, 10'000'000));
  summary.requests.push_back(std::move(outlier));

  const auto report = prof::detect_anomalies(summary, 5.0, 8);
  ASSERT_EQ(report.per_callpath.size(), 1u);
  EXPECT_EQ(report.per_callpath[0].samples, 31u);
  EXPECT_NEAR(report.per_callpath[0].median_ns, 102'000, 2'000);
  ASSERT_EQ(report.anomalies.size(), 1u);
  EXPECT_EQ(report.anomalies[0].request_id, 999u);
  EXPECT_GT(report.anomalies[0].deviation, 5.0);
  // request ids render in hex: 999 == 0x3e7
  EXPECT_NE(report.format().find("3e7"), std::string::npos);
}

TEST(Anomalies, SkipsSmallSampleCallpaths) {
  prof::TraceSummary summary;
  for (std::uint64_t i = 0; i < 3; ++i) {  // below min_samples
    prof::RequestTrace rt;
    rt.request_id = i;
    rt.spans.push_back(make_span(i, prof::hash16("rare"), 0, 0, 100 * (i + 1)));
    summary.requests.push_back(std::move(rt));
  }
  const auto report = prof::detect_anomalies(summary, 2.0, 8);
  EXPECT_TRUE(report.per_callpath.empty());
  EXPECT_TRUE(report.anomalies.empty());
}

TEST(StructuralDiff, SeparatesMinorityStructures) {
  prof::TraceSummary summary;
  const auto root = prof::hash16("op");
  const auto child_a = prof::extend(root, prof::hash16("step_a"));
  const auto child_b = prof::extend(root, prof::hash16("step_b"));
  // 10 requests take (a, a); 2 requests take (a, b) — e.g. a retry path.
  for (std::uint64_t i = 0; i < 12; ++i) {
    prof::RequestTrace rt;
    rt.request_id = i;
    rt.spans.push_back(make_span(i, root, 0, 0, 1000));
    rt.spans.push_back(make_span(i, child_a, 4, 100, 300));
    rt.spans.push_back(
        make_span(i, i < 10 ? child_a : child_b, 8, 400, 600));
    summary.requests.push_back(std::move(rt));
  }
  const auto diff = prof::structural_diff(summary, root);
  ASSERT_EQ(diff.groups.size(), 2u);
  EXPECT_EQ(diff.groups[0].size(), 10u);
  EXPECT_EQ(diff.groups[1].size(), 2u);
  const auto minority = diff.minority_requests();
  ASSERT_EQ(minority.size(), 2u);
  EXPECT_EQ(minority[0], 10u);
  EXPECT_EQ(minority[1], 11u);
  EXPECT_NE(diff.format().find("majority"), std::string::npos);
}

TEST(StructuralDiff, RootFilterExcludesOtherOps) {
  prof::TraceSummary summary;
  prof::RequestTrace rt1;
  rt1.request_id = 1;
  rt1.spans.push_back(make_span(1, prof::hash16("op_x"), 0, 0, 100));
  summary.requests.push_back(std::move(rt1));
  prof::RequestTrace rt2;
  rt2.request_id = 2;
  rt2.spans.push_back(make_span(2, prof::hash16("op_y"), 0, 0, 100));
  summary.requests.push_back(std::move(rt2));
  const auto diff = prof::structural_diff(summary, prof::hash16("op_x"));
  ASSERT_EQ(diff.groups.size(), 1u);
  EXPECT_EQ(diff.groups[0].request_ids[0], 1u);
}

// ---------------------------------------------------------------------------
// Insight analyzers over a real stitched workload
// ---------------------------------------------------------------------------

TEST(Insight, CriticalPathOfRealMobjectWrite) {
  sym::workloads::MobjectWorld::Params p;
  p.ior.clients = 2;
  p.ior.ops_per_client = 2;
  p.ior.read_fraction = 0.0;
  sym::workloads::MobjectWorld world(p);
  world.run();
  const auto summary = prof::TraceSummary::build(world.all_traces());
  ASSERT_FALSE(summary.requests.empty());
  const auto cp = prof::critical_path(summary.requests.front());
  // Root + one gating child at least.
  EXPECT_GE(cp.steps.size(), 2u);
  EXPECT_GT(cp.total_ns, 0u);
  // Self times can never exceed the total.
  for (const auto& step : cp.steps) EXPECT_LE(step.self_ns, cp.total_ns);
}

// ---------------------------------------------------------------------------
// HEPnOS hierarchical object API
// ---------------------------------------------------------------------------

namespace {

struct HepnosApiWorld {
  HepnosApiWorld()
      : eng(77),
        cluster(eng, sim::ClusterParams{.node_count = 2}),
        fabric(cluster),
        server_mid(fabric, cluster.spawn_process(0, "srv"),
                   margo::InstanceConfig{.server = true, .handler_es = 2}),
        srv(server_mid, hepnos::ServerConfig{.databases = 4}),
        client_mid(fabric, cluster.spawn_process(1, "cli"),
                   margo::InstanceConfig{}),
        store(client_mid, {server_mid.addr()}, 1, 4) {}

  void run_client(std::function<void()> body) {
    server_mid.start();
    client_mid.start();
    client_mid.spawn([this, body = std::move(body)] {
      body();
      client_mid.finalize();
      server_mid.finalize();
    });
    eng.run();
  }

  sim::Engine eng;
  sim::Cluster cluster;
  ofi::Fabric fabric;
  margo::Instance server_mid;
  hepnos::Server srv;
  margo::Instance client_mid;
  hepnos::DataStore store;
};

}  // namespace

TEST(HepnosApi, HierarchyCreationAndProducts) {
  HepnosApiWorld w;
  w.run_client([&] {
    hepnos::DataSet ds(w.store, "NOvA");
    auto run = ds.create_run(42);
    EXPECT_TRUE(ds.has_run(42));
    EXPECT_FALSE(ds.has_run(43));

    auto subrun = run.create_subrun(3);
    auto event = subrun.create_event(1001);
    EXPECT_EQ(event.id().run, 42u);
    EXPECT_EQ(event.id().subrun, 3u);
    EXPECT_EQ(event.id().event, 1001u);

    event.store_product("hits", std::string(256, 'h'));
    event.store_product("tracks", std::string(64, 't'));

    std::string data;
    EXPECT_TRUE(event.load_product("hits", &data));
    EXPECT_EQ(data.size(), 256u);
    EXPECT_FALSE(event.load_product("nope", &data));

    const auto labels = event.product_labels();
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_EQ(labels[0], "hits");
    EXPECT_EQ(labels[1], "tracks");
  });
}

TEST(HepnosApi, ProductsDistributeAcrossDatabases) {
  HepnosApiWorld w;
  w.run_client([&] {
    hepnos::DataSet ds(w.store, "ds2");
    auto subrun = ds.create_run(1).create_subrun(1);
    for (std::uint64_t e = 0; e < 64; ++e) {
      auto event = subrun.create_event(e);
      event.store_product("blob", "x");
    }
  });
  std::size_t nonempty = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    if (w.srv.kv().db(d).size() > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 4u);  // hash distribution reaches every db
}

TEST(HepnosApi, ScanPrefixFindsHierarchyMarkers) {
  HepnosApiWorld w;
  w.run_client([&] {
    hepnos::DataSet ds(w.store, "scan-ds");
    ds.create_run(1);
    ds.create_run(2);
    ds.create_run(7);
    const auto markers = w.store.scan_prefix("scan-ds/run/");
    ASSERT_EQ(markers.size(), 3u);
    EXPECT_EQ(markers[0].first, "scan-ds/run/00000001");
    EXPECT_EQ(markers[2].first, "scan-ds/run/00000007");
  });
}
