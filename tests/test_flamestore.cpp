// Tests for FlameStore-lite: model registration, layer weights over bulk,
// checkpoint fan-out, error paths.
#include <gtest/gtest.h>

#include "margolite/instance.hpp"
#include "services/flamestore/flamestore.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace margo = sym::margo;
namespace flame = sym::flame;

namespace {

struct FlameWorld {
  FlameWorld()
      : eng(19),
        cluster(eng, sim::ClusterParams{.node_count = 2}),
        fabric(cluster),
        server(fabric, cluster.spawn_process(0, "flamestore"),
               margo::InstanceConfig{.server = true, .handler_es = 4}),
        provider(server, 1),
        client_mid(fabric, cluster.spawn_process(1, "dl-worker"),
                   margo::InstanceConfig{}),
        client(client_mid) {}

  void run_client(std::function<void()> body) {
    server.start();
    client_mid.start();
    client_mid.spawn([this, body = std::move(body)] {
      body();
      client_mid.finalize();
      server.finalize();
    });
    eng.run();
  }

  sim::Engine eng;
  sim::Cluster cluster;
  ofi::Fabric fabric;
  margo::Instance server;
  flame::Provider provider;
  margo::Instance client_mid;
  flame::Client client;
};

const char* kArch =
    R"({"layers": [{"name": "conv1", "units": 64}, {"name": "fc1", "units": 10}]})";

}  // namespace

TEST(FlameStore, RegisterAndDescribeModel) {
  FlameWorld w;
  w.run_client([&] {
    EXPECT_EQ(w.client.register_model(w.server.addr(), 1, "resnet", kArch),
              flame::Status::kOk);
    EXPECT_EQ(w.client.register_model(w.server.addr(), 1, "resnet", kArch),
              flame::Status::kExists);
    EXPECT_EQ(w.client.register_model(w.server.addr(), 1, "bad", "{oops"),
              flame::Status::kBadJson);

    flame::ModelInfo info;
    EXPECT_EQ(w.client.get_model(w.server.addr(), 1, "resnet", &info),
              flame::Status::kOk);
    EXPECT_TRUE(sym::json::parse(info.architecture_json) ==
                sym::json::parse(kArch));
    EXPECT_TRUE(info.layers.empty());
    EXPECT_EQ(w.client.get_model(w.server.addr(), 1, "nope", &info),
              flame::Status::kNoModel);
  });
  EXPECT_EQ(w.provider.model_count(), 1u);
}

TEST(FlameStore, LayerWeightsRoundTripThroughBulk) {
  FlameWorld w;
  const auto rdma_before = w.server.hg_class().endpoint().rdma_ops();
  w.run_client([&] {
    w.client.register_model(w.server.addr(), 1, "m", kArch);
    std::vector<std::byte> weights(256 * 1024, std::byte{0x77});
    EXPECT_EQ(w.client.write_layer(w.server.addr(), 1, "m", "conv1", weights),
              flame::Status::kOk);
    std::vector<std::byte> back;
    EXPECT_EQ(w.client.read_layer(w.server.addr(), 1, "m", "conv1", &back),
              flame::Status::kOk);
    ASSERT_EQ(back.size(), weights.size());
    EXPECT_EQ(back[1000], std::byte{0x77});
    EXPECT_EQ(w.client.read_layer(w.server.addr(), 1, "m", "fc9", &back),
              flame::Status::kNoLayer);
    EXPECT_EQ(
        w.client.write_layer(w.server.addr(), 1, "ghost", "l", weights),
        flame::Status::kNoModel);
  });
  EXPECT_GT(w.server.hg_class().endpoint().rdma_ops(), rdma_before);
  EXPECT_EQ(w.provider.bytes_stored(), 256u * 1024u);
  EXPECT_EQ(w.provider.device().bytes_written(), 256u * 1024u);
}

TEST(FlameStore, SaveModelCheckpointsAllLayersConcurrently) {
  FlameWorld w;
  sim::DurationNs elapsed = 0;
  w.run_client([&] {
    std::map<std::string, std::vector<std::byte>> layers;
    for (int i = 0; i < 6; ++i) {
      layers["layer-" + std::to_string(i)] =
          std::vector<std::byte>(512 * 1024);
    }
    const auto t0 = w.eng.now();
    EXPECT_EQ(w.client.save_model(w.server.addr(), 1, "ckpt", kArch, layers),
              flame::Status::kOk);
    elapsed = w.eng.now() - t0;

    flame::ModelInfo info;
    w.client.get_model(w.server.addr(), 1, "ckpt", &info);
    EXPECT_EQ(info.layers.size(), 6u);
    EXPECT_EQ(info.total_bytes, 6u * 512u * 1024u);
  });
  // 6 x 512 KiB at 2 B/ns on one device is ~1.6 ms serial floor; the
  // transfers and staging must overlap well below 6 serial round trips.
  EXPECT_LT(elapsed, sim::msec(4));
  EXPECT_EQ(w.provider.model_count(), 1u);
}

TEST(FlameStore, ListModels) {
  FlameWorld w;
  w.run_client([&] {
    w.client.register_model(w.server.addr(), 1, "a", "{}");
    w.client.register_model(w.server.addr(), 1, "b", "{}");
    const auto names = w.client.list_models(w.server.addr(), 1);
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
  });
}

TEST(FlameStore, OverwritingLayerAdjustsAccounting) {
  FlameWorld w;
  w.run_client([&] {
    w.client.register_model(w.server.addr(), 1, "m", "{}");
    w.client.write_layer(w.server.addr(), 1, "m", "l",
                         std::vector<std::byte>(1000));
    w.client.write_layer(w.server.addr(), 1, "m", "l",
                         std::vector<std::byte>(4000));
  });
  EXPECT_EQ(w.provider.bytes_stored(), 4000u);
}
