// Tests for the SYM_DEBUG_CHECKS runtime verifiers (simkit/debug_checks):
// shadow lane-ownership tracking and the rolling event-stream digest. Only
// built when the tree is configured with -DSYM_DEBUG_CHECKS=ON (see
// tests/CMakeLists.txt); runs under the `debug_checks` ctest label.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "simkit/cluster.hpp"
#include "simkit/debug_checks.hpp"
#include "simkit/engine.hpp"
#include "workloads/hepnos_world.hpp"
#include "workloads/mobject_world.hpp"

#if !SYM_DEBUG_CHECKS
#error "test_debug_checks.cpp must be compiled with SYM_DEBUG_CHECKS=1"
#endif

namespace sim = sym::sim;
namespace dbg = sym::sim::debug;
using sym::workloads::HepnosWorld;
using sym::workloads::MobjectWorld;

namespace {

const std::uint32_t kWorkerCounts[] = {1, 2, 4, 8};

/// RAII: record violations instead of aborting, restore on scope exit.
class RecordingHandler {
 public:
  RecordingHandler() {
    previous_ = dbg::set_violation_handler(
        [this](const dbg::Violation& v) { violations_.push_back(v); });
  }
  ~RecordingHandler() { dbg::set_violation_handler(std::move(previous_)); }
  RecordingHandler(const RecordingHandler&) = delete;
  RecordingHandler& operator=(const RecordingHandler&) = delete;

  [[nodiscard]] const std::vector<dbg::Violation>& violations() const {
    return violations_;
  }

 private:
  dbg::ViolationHandler previous_;
  std::vector<dbg::Violation> violations_;
};

sim::EngineConfig sharded(std::uint32_t lanes, std::uint32_t workers) {
  sim::EngineConfig cfg;
  cfg.lane_count = lanes;
  cfg.worker_count = workers;
  cfg.lookahead = sim::usec(2);
  return cfg;
}

std::uint64_t mobject_digest(std::uint32_t workers) {
  MobjectWorld::Params p;
  p.ior.clients = 4;
  p.ior.ops_per_client = 6;
  p.ior.object_bytes = 16 * 1024;
  p.exec.lane_count = 0;  // auto: one lane per node
  p.exec.worker_count = workers;
  MobjectWorld world(p);
  world.run();
  return world.engine().event_digest();
}

std::uint64_t hepnos_digest(std::uint32_t workers) {
  HepnosWorld::Params p;
  p.config.total_clients = 4;
  p.config.clients_per_node = 2;
  p.file_model.events_per_file = 64;
  p.file_model.payload_bytes = 128;
  p.files_per_client = 1;
  p.exec.lane_count = 0;  // auto: one lane per node
  p.exec.worker_count = workers;
  HepnosWorld world(p);
  world.run();
  return world.engine().event_digest();
}

}  // namespace

// ---------------------------------------------------------------------------
// Ownership registry primitives
// ---------------------------------------------------------------------------

TEST(DebugChecks, MainContextTouchesAlwaysPass) {
  RecordingHandler rec;
  int obj = 0;
  dbg::bind_home_lane(&obj, 3);
  // No ActiveLaneScope on this thread: setup/coordinator context.
  ASSERT_EQ(dbg::current_lane(), dbg::kNoLane);
  dbg::assert_home_lane(&obj, "test touch");
  dbg::unbind_home_lane(&obj);
  EXPECT_TRUE(rec.violations().empty());
}

TEST(DebugChecks, UnregisteredObjectsPassFromAnyLane) {
  RecordingHandler rec;
  int obj = 0;
  dbg::set_current_lane(5);
  dbg::assert_home_lane(&obj, "test touch");
  dbg::set_current_lane(dbg::kNoLane);
  EXPECT_TRUE(rec.violations().empty());
}

TEST(DebugChecks, ForeignLaneTouchIsReported) {
  RecordingHandler rec;
  int obj = 0;
  dbg::bind_home_lane(&obj, 2);
  const auto before = dbg::violation_count();
  dbg::set_current_lane(7);
  dbg::assert_home_lane(&obj, "planted touch");
  dbg::set_current_lane(2);
  dbg::assert_home_lane(&obj, "home touch");  // home lane: fine
  dbg::set_current_lane(dbg::kNoLane);
  dbg::unbind_home_lane(&obj);

  ASSERT_EQ(rec.violations().size(), 1u);
  const auto& v = rec.violations().front();
  EXPECT_EQ(v.object, &obj);
  EXPECT_EQ(v.what, "planted touch");
  EXPECT_EQ(v.home_lane, 2u);
  EXPECT_EQ(v.actual_lane, 7u);
  EXPECT_EQ(dbg::violation_count(), before + 1);
}

TEST(DebugChecks, UnbindClearsStaleOwnership) {
  RecordingHandler rec;
  int obj = 0;
  dbg::bind_home_lane(&obj, 1);
  dbg::unbind_home_lane(&obj);
  dbg::set_current_lane(9);
  dbg::assert_home_lane(&obj, "touch after unbind");
  dbg::set_current_lane(dbg::kNoLane);
  EXPECT_TRUE(rec.violations().empty());
}

// ---------------------------------------------------------------------------
// Engine integration: the negative test the acceptance criteria require
// ---------------------------------------------------------------------------

// A deliberately planted cross-lane touch: from inside an event running on
// lane 0, reach around the Engine::at_on mailbox and mutate lane 1's heap
// directly. The ownership verifier must report it (the sanctioned mailbox
// route is exercised right next to it and must stay silent).
TEST(DebugChecks, PlantedCrossLaneScheduleIsCaught) {
  RecordingHandler rec;
  sim::Engine eng(7, sharded(2, 1));
  bool planted_ran = false;
  eng.at_on(0, 10, [&] {
    eng.debug_lane(1).schedule(10 + eng.lookahead(),
                               [&planted_ran] { planted_ran = true; });
  });
  eng.run();

  ASSERT_FALSE(rec.violations().empty());
  const auto& v = rec.violations().front();
  EXPECT_EQ(v.what, "Lane::schedule");
  EXPECT_EQ(v.home_lane, 1u);
  EXPECT_EQ(v.actual_lane, 0u);
  EXPECT_TRUE(planted_ran);  // reported, not blocked: the handler decides
}

TEST(DebugChecks, PlantedForeignRngDrawIsCaught) {
  RecordingHandler rec;
  sim::Engine eng(7, sharded(2, 1));
  eng.at_on(0, 10, [&] { (void)eng.debug_lane(1).rng().next(); });
  eng.run();

  ASSERT_FALSE(rec.violations().empty());
  EXPECT_EQ(rec.violations().front().what, "Lane::rng");
}

TEST(DebugChecks, SanctionedMailboxRouteIsSilent) {
  RecordingHandler rec;
  sim::Engine eng(7, sharded(2, 1));
  bool ran = false;
  eng.at_on(0, 10, [&] {
    eng.at_on(1, 10 + eng.lookahead(), [&ran] { ran = true; });
  });
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(rec.violations().empty());
}

// NIC reservations route through Node objects bound to the node's lane.
TEST(DebugChecks, ForeignNicReservationIsCaught) {
  RecordingHandler rec;
  sim::Engine eng(7, sharded(2, 1));
  sim::ClusterParams params;
  params.node_count = 2;
  params.max_clock_skew = 0;
  sim::Cluster cluster(eng, params);
  // Node 1 lives on lane 1; reserve its NIC from an event on lane 0.
  eng.at_on(0, 10, [&] {
    cluster.node(1).reserve_nic(eng.now(), 4096,
                                params.nic_bw_bytes_per_ns);
  });
  eng.run();
  ASSERT_FALSE(rec.violations().empty());
  EXPECT_EQ(rec.violations().front().what, "Node::reserve_nic");
}

// ---------------------------------------------------------------------------
// Full workloads: no violations, digests invariant across worker counts
// ---------------------------------------------------------------------------

TEST(DebugChecks, MobjectDigestInvariantAcrossWorkerCounts) {
  RecordingHandler rec;
  const std::uint64_t baseline = mobject_digest(1);
  EXPECT_NE(baseline, 0u);
  for (const auto workers : kWorkerCounts) {
    if (workers == 1) continue;
    EXPECT_EQ(mobject_digest(workers), baseline) << "workers=" << workers;
  }
  for (const auto& v : rec.violations()) {
    ADD_FAILURE() << "lane-affinity violation: " << v.what
                  << " home=" << v.home_lane << " actual=" << v.actual_lane;
  }
}

TEST(DebugChecks, HepnosDigestInvariantAcrossWorkerCounts) {
  RecordingHandler rec;
  const std::uint64_t baseline = hepnos_digest(1);
  EXPECT_NE(baseline, 0u);
  for (const auto workers : kWorkerCounts) {
    if (workers == 1) continue;
    EXPECT_EQ(hepnos_digest(workers), baseline) << "workers=" << workers;
  }
  for (const auto& v : rec.violations()) {
    ADD_FAILURE() << "lane-affinity violation: " << v.what
                  << " home=" << v.home_lane << " actual=" << v.actual_lane;
  }
}

TEST(DebugChecks, DigestIsSeedAndWorkloadSensitive) {
  // Same workload, same seed: identical. Different workloads: different
  // event streams, so (with overwhelming probability) different digests.
  EXPECT_EQ(mobject_digest(2), mobject_digest(2));
  EXPECT_NE(mobject_digest(1), hepnos_digest(1));
}
