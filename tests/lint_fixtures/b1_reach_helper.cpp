// symlint fixture: B1 may-block reachability, helper TU. Analyzed under
// the virtual path "src/margolite/flush.cpp". flush_stage_one() calls
// flush_stage_two() which blocks in usleep(): the leaf is two hops below
// the lane root defined in b1_reach_root.cpp (the other TU).
// Expected witness lines are pinned by test_symlint.cpp.

void flush_stage_two() {  // line 7
  usleep(50);             // line 8: B1 blocking leaf (usleep syscall)
}

void flush_stage_one() {  // line 11
  flush_stage_two();      // line 12: second witness hop
}
