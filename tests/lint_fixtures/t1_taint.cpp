// Fixture: a wall-clock value laundered through one call level and a local
// variable into an Engine::after timestamp. The allow(nondeterminism) on
// the source silences D1 but must NOT stop taint propagation — catching
// exactly this flow is what T1 exists for.
#include "simkit/engine.hpp"

namespace sym {

long skew_sample() {
  // symlint: allow(nondeterminism) reason=fixture plants a tainted source on purpose
  return static_cast<long>(time(nullptr));
}

void schedule_with_skew(sim::Engine& eng) {
  auto delay = skew_sample();
  eng.after(delay, [] {});
}

}  // namespace sym
