// symlint fixture: annotation handling. Linted under the virtual path
// "src/symbiosys/fixture_annotated.cpp". Expected findings are pinned by
// test_symlint.cpp: properly-annotated violations are suppressed; malformed
// annotations produce A0 findings (and do not suppress).
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace fixture {

inline const char* suppressed_same_line() {
  return std::getenv("HOME");  // symlint: allow(nondeterminism) reason=test fixture exercising same-line suppression
}

// symlint: allow(fiber-blocking) reason=fixture exercising suppression from
// the comment block directly above, spanning multiple comment lines.
inline std::mutex g_suppressed_mutex;

inline double suppressed_block_above(
    const std::unordered_map<int, double>& m) {
  double total = 0.0;
  // symlint: allow(unordered-iter) reason=commutative fold, order-free
  for (const auto& kv : m) total += kv.second;
  return total;
}

inline int missing_reason() {
  // symlint: allow(nondeterminism)
  return rand();  // line 29: D1 (A0 annotation does not suppress)
}

inline int unknown_rule() {
  // symlint: allow(no-such-rule) reason=typo in the rule name
  return rand();  // line 34: D1 (A0 annotation does not suppress)
}

inline const char* wrong_rule_name() {
  // An allow() for a *different* rule must not suppress this finding.
  // symlint: allow(unordered-iter) reason=deliberately mismatched rule
  return std::getenv("PATH");  // line 40: D1
}

}  // namespace fixture
