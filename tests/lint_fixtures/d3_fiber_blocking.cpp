// symlint fixture: D3 fiber-blocking violations. Linted under the virtual
// path "src/services/fixture_d3.cpp" (service/model code executes on
// argolite ULTs; OS-level blocking would stall the whole lane worker).
// Expected (rule, line) pairs are pinned by test_symlint.cpp.
#include <mutex>
#include <thread>

#include "argolite/sync.hpp"

namespace fixture {

struct BadCache {
  std::mutex mu;  // line 13: D3
  int value = 0;
};

inline void bad_lock(BadCache& c) {
  std::lock_guard<std::mutex> lock(c.mu);  // line 18: D3
  ++c.value;
}

inline void bad_spawn_thread() {
  std::thread t([] {});  // line 23: D3
  t.join();
}

inline void bad_sleep() {
  usleep(10);  // line 28: D3
}

inline void fine_ult_sync(abt::Mutex& m) {
  // ULT-level primitives yield the fiber instead of the OS thread.
  m.lock();
  m.unlock();
}

}  // namespace fixture
