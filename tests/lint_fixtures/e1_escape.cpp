// Fixture: a mutable thread_local escaping into worker-executed code with
// no lane-ownership bind and no allow(shared-state-escape) annotation. The
// test feeds this under a virtual simkit/fiber path so its functions count
// as worker roots and the finding carries a concrete worker-path witness.
#include "simkit/fiber.hpp"

namespace sym::sim {

thread_local int t_scratch_depth = 0;

void worker_entry() {
  t_scratch_depth += 1;
}

int scratch_depth_here() {
  return t_scratch_depth;
}

}  // namespace sym::sim
