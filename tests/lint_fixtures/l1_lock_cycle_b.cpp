// Fixture: second half of the three-mutex lock-order cycle (see
// l1_lock_cycle_a.cpp). Defines g_c and closes g_b -> g_c -> g_a; the
// namespace-scope mutexes merge project-wide by name, which is exactly the
// cross-TU aliasing L1 must see through.
#include "argolite/sync.hpp"

extern sym::abt::Mutex g_a;
extern sym::abt::Mutex g_b;
sym::abt::Mutex g_c;

void take_bc() {
  sym::abt::LockGuard first(g_b);
  sym::abt::LockGuard second(g_c);
}

void take_ca() {
  sym::abt::LockGuard first(g_c);
  sym::abt::LockGuard second(g_a);
}
