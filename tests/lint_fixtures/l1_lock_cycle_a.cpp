// Fixture: first half of a three-mutex lock-order cycle spanning two TUs.
// This TU takes g_a before g_b; l1_lock_cycle_b.cpp closes the loop with
// g_b -> g_c and g_c -> g_a. Never compiled — lexed by tests/test_symlint.cpp.
#include "argolite/sync.hpp"

sym::abt::Mutex g_a;
sym::abt::Mutex g_b;

void take_ab() {
  sym::abt::LockGuard first(g_a);
  sym::abt::LockGuard second(g_b);
}
