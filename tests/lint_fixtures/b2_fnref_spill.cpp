// symlint fixture: B2 may-allocate reachability through a function
// pointer. Analyzed under the virtual path
// "src/workloads/loadgen.fixture.cpp" so LoadgenWorld::pump_tick matches
// the hot-path root table (fragment "workloads/loadgen"). The allocating
// callee is never called directly: its address is stored into a SmallFn-
// style slot (`emplace` is an opaque callee), so only the &make_burst
// fn_ref edge carries the reachability.
// Expected (rule, line) pairs are pinned by test_symlint.cpp.

struct Event {
  int payload = 0;
};

Event* make_burst() {  // line 14
  return new Event();  // line 15: B2 allocating leaf (raw new)
}

struct Slot {
  void emplace(Event* (*fn)()) { stored = fn; }
  Event* (*stored)() = nullptr;
};

class LoadgenWorld {
 public:
  void pump_tick();

 private:
  Slot slot_;
};

void LoadgenWorld::pump_tick() {  // line 31: B2 root (finding lands here)
  slot_.emplace(&make_burst);     // line 32: fn-pointer witness edge
}
