// symlint fixture: D1 nondeterminism violations. Linted by test_symlint.cpp
// under the virtual path "src/margolite/fixture_d1.cpp"; the expected
// (rule, line) pairs below are pinned by the test — keep line numbers
// stable when editing.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

struct Timings {
  // Member *named* time is fine; only calls of the libc function match.
  long cpu_time() const { return cpu_time_; }
  long cpu_time_ = 0;
};

inline long bad_wall_clock() {
  auto t = std::chrono::steady_clock::now();        // line 19: D1
  return t.time_since_epoch().count();
}

inline long bad_libc_time() { return ::time(nullptr); }  // line 23: D1

inline int bad_rand() { return rand(); }  // line 25: D1

inline const char* bad_env() { return std::getenv("SEED"); }  // line 27: D1

inline unsigned bad_random_device() {
  std::random_device rd;  // line 30: D1
  return rd();
}

inline long fine_member_calls(const Timings& t) {
  // Decoys: member access and qualified names do not match the libc call.
  return t.cpu_time();
}

}  // namespace fixture
