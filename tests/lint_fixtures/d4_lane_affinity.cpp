// symlint fixture: D4 lane-affinity violations. Linted under the virtual
// path "src/workloads/fixture_d4.cpp" (Lane internals are the engine's
// business; everything else schedules through Engine::at/at_on). Expected
// (rule, line) pairs are pinned by test_symlint.cpp.
#include <cstdint>

#include "simkit/engine.hpp"
#include "simkit/lane.hpp"

namespace fixture {

inline void bad_lane_pointer(sym::sim::Lane* lane) {  // line 12: D4
  (void)lane;
}

inline void bad_mailbox_post(sym::sim::Engine& eng) {
  eng.debug_lane(0).post_remote(1, 100, 0, [] {});  // line 17: D4
}

inline void bad_run_window(sym::sim::Engine& eng) {
  eng.debug_lane(0).run_window(1000);  // line 21: D4
}

inline void fine_engine_api(sym::sim::Engine& eng) {
  // The public Engine surface is the sanctioned way to schedule work.
  eng.at(eng.now() + 100, [] {});
  eng.at_on(eng.lane_for_node(1), eng.now() + 100, [] {});
}

}  // namespace fixture
