// symlint fixture: D2 unordered-iteration violations. Linted under the
// virtual path "src/symbiosys/fixture_d2.cpp" (the rule only applies to
// export/consolidation/analysis code under src/symbiosys/). Expected
// (rule, line) pairs are pinned by test_symlint.cpp.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

inline double bad_map_iteration(
    const std::unordered_map<std::uint64_t, double>& merged) {
  double total = 0.0;
  for (const auto& kv : merged) {  // line 17: D2
    total += kv.second;
  }
  return total;
}

inline std::size_t bad_set_iteration(
    const std::unordered_set<std::string>& names) {
  std::size_t n = 0;
  for (const auto& name : names) {  // line 26: D2
    n += name.size();
  }
  return n;
}

inline double fine_ordered_map(
    const std::map<std::uint64_t, double>& ordered) {
  double total = 0.0;
  // std::map iterates in key order: deterministic, not flagged.
  for (const auto& kv : ordered) total += kv.second;
  return total;
}

inline double fine_lookup_only(
    const std::unordered_map<std::uint64_t, double>& stats,
    std::uint64_t key) {
  // Point lookups are deterministic regardless of hash layout.
  const auto it = stats.find(key);
  return it == stats.end() ? 0.0 : it->second;
}

inline double fine_index_loop(const std::vector<double>& v) {
  double total = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) total += v[i];
  return total;
}

}  // namespace fixture
