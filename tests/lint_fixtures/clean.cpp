// symlint fixture: a clean translation unit. Linted under the virtual path
// "src/symbiosys/fixture_clean.cpp" — the strictest scope (D1, D2, D3 and
// D4 all apply) — and must produce zero findings.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "simkit/engine.hpp"
#include "simkit/rng.hpp"

namespace fixture {

// Words that *contain* rule triggers must not match: "randomized" is not
// rand(), "timeout" is not time(), "mutex_name" is not std::mutex.
inline std::uint64_t randomized_timeout_label(const std::string& mutex_name) {
  return mutex_name.size();
}

inline std::uint64_t fine_virtual_time(sym::sim::Engine& eng) {
  // Virtual time and the engine RNG are the sanctioned sources.
  return eng.now() + eng.rng().uniform(16);
}

inline std::vector<std::uint64_t> fine_sorted_emission(
    const std::unordered_map<std::uint64_t, double>& stats) {
  // Lookup-only use of the unordered map plus an ordered emission loop.
  std::vector<std::uint64_t> keys;
  keys.reserve(stats.size());
  std::map<std::uint64_t, double> ordered(stats.begin(), stats.end());
  for (const auto& kv : ordered) keys.push_back(kv.first);
  return keys;
}

// A comment mentioning std::mutex or rand() is ignored by the lexer.
inline const char* doc() { return "never calls rand() or time()"; }

}  // namespace fixture
