// symlint fixture: D3 hot-path allocation violations. Linted under the
// virtual path "src/simkit/lane.cpp" (a lane-executed hot-path file, where
// raw heap allocation defeats the arena discipline) and again under
// "src/simkit/fiber.cpp" (simkit, but not hot-path: no findings).
// Expected (rule, line) pairs are pinned by test_symlint.cpp.
#include <cstdlib>
#include <new>

namespace fixture {

struct Slot {
  int payload = 0;
};

inline Slot* bad_new() {
  return new Slot();  // line 16: D3 (raw new on the hot path)
}

inline void* bad_malloc(std::size_t n) {
  return malloc(n);  // line 20: D3 (raw malloc on the hot path)
}

inline void* bad_realloc(void* p, std::size_t n) {
  return realloc(p, n);  // line 24: D3 (raw realloc on the hot path)
}

inline Slot* fine_placement(void* storage) {
  // Placement construction into arena-owned storage IS the sanctioned
  // idiom; only allocating `new` counts.
  return ::new (storage) Slot();
}

inline Slot* fine_annotated_spill() {
  // symlint: allow(fiber-blocking) reason=fixture models the counted SmallFn spill escape hatch
  return new Slot();
}

}  // namespace fixture
