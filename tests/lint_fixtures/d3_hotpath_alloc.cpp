// symlint fixture: hot-path allocation violations, now caught by the B2
// may-allocate rule's direct face (the retired per-TU D3 allocation face
// covered the same sites). Analyzed under the virtual path
// "src/simkit/lane.cpp" (a lane-executed hot-path file, where raw heap
// allocation defeats the arena discipline) and again under
// "src/simkit/fiber.cpp" (simkit, but not a hot-path file: no findings).
// Expected (rule, line) pairs are pinned by test_symlint.cpp.
#include <cstdlib>
#include <new>

namespace fixture {

struct Slot {
  int payload = 0;
};

inline Slot* bad_new() {
  return new Slot();  // line 18: B2 (raw new on the hot path)
}

inline void* bad_malloc(std::size_t n) {
  return malloc(n);  // line 22: B2 (raw malloc on the hot path)
}

inline void* bad_realloc(void* p, std::size_t n) {
  return realloc(p, n);  // line 26: B2 (raw realloc on the hot path)
}

inline Slot* fine_placement(void* storage) {
  // Placement construction into arena-owned storage IS the sanctioned
  // idiom; only allocating `new` counts.
  return ::new (storage) Slot();
}

inline Slot* fine_annotated_spill() {
  // symlint: allow(may-allocate) reason=fixture models the counted SmallFn spill escape hatch
  return new Slot();
}

}  // namespace fixture
