// symlint fixture: B1 may-block reachability, root TU. Analyzed under the
// virtual path "src/simkit/lane.fixture.cpp" so Lane::pop_and_run matches
// the hot-path root table (path fragment "simkit/lane.") without the file
// being a hot-path TU itself (the direct face stays quiet). The blocking
// leaf sits two helper hops away in b1_reach_helper.cpp — a different TU
// — proving transitive cross-TU propagation with a full witness chain.
// Expected (rule, line) pairs are pinned by test_symlint.cpp.
void flush_stage_one();

class Lane {
 public:
  void pop_and_run();
};

void Lane::pop_and_run() {  // line 15: B1 root (reach finding lands here)
  flush_stage_one();        // line 16: first witness hop
}
