// symlint fixture: P1 pvar-contract drift. Analyzed under the virtual
// path "src/merclite/pvar_drift.cpp" (P1 only counts registrations from
// src/ TUs). Registers one PVAR and one action span that the test's
// inline doc text does NOT declare (code-side findings), and one policy
// rule whose dynamic "policy:" + name span expansion IS declared (no
// finding). The doc text additionally declares a PVAR and a span that
// this TU never registers (doc-side findings).
// Expected (rule, line) pairs are pinned by test_symlint.cpp.

void register_drift(PvarRegistry& reg, Instrumentation& mid,
                    PolicyEngine& pe, const std::string& name) {
  reg.add({"fixture_undocumented_pvar", "no doc row for this one",  // L12: P1
           PvarClass::kCounter, PvarBind::kNoObject},
          read_counter);
  mid.record_action_span("fixture_undeclared_span", 1);  // line 15: P1
  mid.record_action_span("policy:" + name, 2);  // dynamic: expands per rule
  pe.add_rule("fixture_capacity", fire_never);  // declared via policy:<rule>
}
