// Tests for the open-loop load generator (workloads/loadgen): deterministic
// arrival schedules, worker-count independence of every result the benches
// gate on, arena recycling across identical phases, and the bounded-Pareto
// sampler the mixes are built from.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "argolite/request.hpp"
#include "workloads/loadgen/loadgen.hpp"

namespace lg = sym::workloads::loadgen;
namespace sim = sym::sim;

namespace {

lg::LoadgenParams small_params(std::size_t preset, std::uint32_t nodes,
                               std::uint64_t clients, sim::DurationNs horizon,
                               std::uint32_t workers) {
  lg::LoadgenParams p;
  p.scenario = lg::presets().at(preset);
  p.node_count = nodes;
  p.client_population = clients;
  p.horizon = horizon;
  p.seed = 42;
  p.exec.lane_count = 0;  // one lane per node
  p.exec.worker_count = workers;
  return p;
}

}  // namespace

TEST(LoadgenScenarios, PresetTableIsStable) {
  const auto& presets = lg::presets();
  ASSERT_EQ(presets.size(), 3u);
  EXPECT_STREQ(presets[0].name, "dl_training_read");
  EXPECT_STREQ(presets[1].name, "checkpoint_burst");
  EXPECT_STREQ(presets[2].name, "montage_smallfiles");
  EXPECT_EQ(lg::find_preset("checkpoint_burst"), &presets[1]);
  EXPECT_EQ(lg::find_preset("no_such_mix"), nullptr);
  for (const auto& sc : presets) {
    ASSERT_FALSE(sc.ops.empty());
    ASSERT_FALSE(sc.phases.empty());
    for (const auto& ph : sc.phases) {
      EXPECT_GT(ph.duration, 0u);
      if (!ph.weight_scale.empty()) {
        EXPECT_EQ(ph.weight_scale.size(), sc.ops.size());
      }
    }
  }
}

TEST(LoadgenScenarios, BoundedParetoStaysInBoundsAndMatchesMean) {
  const lg::BoundedPareto bp{1.0, 64.0, 1.5};
  sim::Rng rng(7);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = bp.sample(rng);
    ASSERT_GE(x, bp.lo);
    ASSERT_LE(x, bp.hi);
    sum += x;
  }
  const double empirical = sum / kDraws;
  const double analytic = bp.mean();
  EXPECT_GT(analytic, bp.lo);
  EXPECT_LT(analytic, bp.hi);
  EXPECT_NEAR(empirical / analytic, 1.0, 0.05);
}

// Same seed, fresh world -> byte-identical arrival schedule. This is the
// golden-sequence guarantee the replayed mixes rely on: a scenario is a
// reproducible experiment, not a random trace.
TEST(Loadgen, GoldenArrivalSequenceForSameSeed) {
  auto params = small_params(0, 8, 500, sim::msec(2), 1);
  params.record_arrivals = true;

  lg::LoadgenWorld a(params);
  a.run();
  lg::LoadgenWorld b(params);
  b.run();

  const auto log_a = a.arrival_log();
  const auto log_b = b.arrival_log();
  ASSERT_GT(log_a.size(), 100u);
  ASSERT_EQ(log_a.size(), log_b.size());
  EXPECT_TRUE(log_a == log_b);
  EXPECT_EQ(a.arrival_checksum(), b.arrival_checksum());
  EXPECT_EQ(a.completion_checksum(), b.completion_checksum());

  // A different seed must produce a different schedule.
  params.seed = 43;
  lg::LoadgenWorld c(params);
  c.run();
  EXPECT_NE(a.arrival_checksum(), c.arrival_checksum());
}

// The full worker column {1, 2, 4, 8} over a ~100k-request mix: arrival and
// completion checksums, request counts and executed-event counts must be
// bit-identical — the conservative window protocol means worker threads can
// never change simulation results.
TEST(Loadgen, WorkerCountIndependenceOn100kRequestMix) {
  std::uint64_t generated0 = 0;
  std::uint64_t completed0 = 0;
  std::uint64_t arrival0 = 0;
  std::uint64_t completion0 = 0;
  std::uint64_t events0 = 0;
  std::uint64_t digest0 = 0;
  for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    auto params = small_params(2, 16, 7000, sim::msec(6), workers);
    lg::LoadgenWorld world(params);
    world.run();
    if (workers == 1) {
      generated0 = world.generated();
      completed0 = world.completed();
      arrival0 = world.arrival_checksum();
      completion0 = world.completion_checksum();
      events0 = world.engine().events_processed();
      digest0 = world.engine().event_digest();
      ASSERT_GE(generated0, 100000u);
      ASSERT_GT(completed0, 0u);
    } else {
      EXPECT_EQ(world.generated(), generated0) << "workers=" << workers;
      EXPECT_EQ(world.completed(), completed0) << "workers=" << workers;
      EXPECT_EQ(world.arrival_checksum(), arrival0) << "workers=" << workers;
      EXPECT_EQ(world.completion_checksum(), completion0)
          << "workers=" << workers;
      EXPECT_EQ(world.engine().events_processed(), events0)
          << "workers=" << workers;
      // 0 in release builds; the per-lane executed-event digest under
      // -DSYM_DEBUG_CHECKS=ON.
      EXPECT_EQ(world.engine().event_digest(), digest0)
          << "workers=" << workers;
    }
  }
}

// Steady state recycles: a second identical phase cycle must not create any
// new event slots or request records — everything the first cycle needed
// comes back through the freelists.
TEST(Loadgen, ArenaRecyclesAcrossIdenticalPhaseCycles) {
  // Underloaded on purpose (few clients, many servers) so queues drain and
  // records actually recycle instead of accumulating open-loop backlog.
  // The first two cycles are warmup — they discover the concurrency
  // high-water, exactly like the scale bench's warmup run — and the next
  // two statistically identical cycles must then run entirely out of the
  // freelists: zero net slot growth in either arena.
  auto params = small_params(2, 8, 24, sim::msec(12), 1);
  lg::LoadgenWorld world(params);

  sim::DurationNs cycle = 0;
  for (const auto& ph : params.scenario.phases) cycle += ph.duration;
  ASSERT_EQ(cycle, sim::msec(3));

  world.engine().run_until(2 * cycle);
  const std::uint64_t event_slots_1 = world.engine().arena_slot_count();
  const std::uint64_t request_slots_1 = world.request_slots();
  const std::uint64_t recycled_1 = world.requests_recycled();
  ASSERT_GT(world.completed(), 0u);

  // Drive two more statistically identical cycles on the same world.
  world.engine().run_until(4 * cycle);
  EXPECT_EQ(world.engine().arena_slot_count(), event_slots_1)
      << "post-warmup cycles grew the event arenas";
  EXPECT_EQ(world.request_slots(), request_slots_1)
      << "post-warmup cycles grew the request arenas";
  EXPECT_GT(world.requests_recycled(), recycled_1)
      << "post-warmup cycles did not recycle request records";
}

// Open loop means overload is visible: with servers saturated, the backlog
// (generated - completed) grows instead of throttling the arrival stream.
TEST(Loadgen, OverloadShowsAsGrowingBacklog) {
  auto params = small_params(0, 8, 4000, sim::msec(2), 1);
  lg::LoadgenWorld world(params);
  world.run();
  EXPECT_GT(world.generated(), 1000u);
  EXPECT_GT(world.in_flight(), world.completed());
  EXPECT_GT(world.peak_queued(), 0u);

  const auto totals = world.op_totals();
  ASSERT_EQ(totals.size(), params.scenario.ops.size());
  std::uint64_t requests = 0;
  for (const auto& ot : totals) requests += ot.requests;
  // Every delivered request is attributed to exactly one op class.
  EXPECT_LE(requests, world.generated());
  EXPECT_GT(requests, 0u);
  // dl_training_read is read-dominated: shard_read must dominate busy time.
  EXPECT_EQ(world.dominant_op(), 0u);
}

TEST(RequestArena, FreelistRecyclesSlotsAndBumpsGenerations) {
  sym::abt::RequestArena arena;
  const std::uint32_t a = arena.acquire();
  const std::uint32_t b = arena.acquire();
  EXPECT_EQ(arena.slot_count(), 2u);
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_NE(a, b);

  const std::uint16_t gen_a = arena.rec(a).generation;
  arena.release(a);
  EXPECT_EQ(arena.live(), 1u);
  const std::uint32_t c = arena.acquire();
  EXPECT_EQ(c, a) << "freelist should hand back the released slot";
  EXPECT_EQ(arena.rec(c).generation, gen_a + 1);
  EXPECT_EQ(arena.slot_count(), 2u) << "no new slot for a recycled acquire";
  EXPECT_EQ(arena.recycled(), 1u);

  arena.release(b);
  arena.release(c);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(RequestArena, ReserveAvoidsTableGrowth) {
  sym::abt::RequestArena arena;
  arena.reserve(64);
  std::vector<std::uint32_t> idx;
  for (int i = 0; i < 64; ++i) idx.push_back(arena.acquire());
  EXPECT_EQ(arena.growths(), 0u);
  for (const auto i : idx) arena.release(i);
  for (int i = 0; i < 64; ++i) arena.acquire();
  EXPECT_EQ(arena.growths(), 0u);
  EXPECT_EQ(arena.slot_count(), 64u);
}
