// symlint CLI. Usage:
//
//   symlint [--root DIR]... [FILE]...
//
// Lints every .cpp/.hpp under each --root (recursively) plus any explicit
// files, prints one diagnostic per line and exits non-zero if any finding
// survives the allow() annotations. Run as the `symlint` ctest target over
// src/ (see tools/symlint/CMakeLists.txt and scripts/run_lint.sh).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "symlint: --root requires a directory\n");
        return 2;
      }
      const fs::path root = argv[++i];
      std::error_code ec;
      if (!fs::is_directory(root, ec)) {
        std::fprintf(stderr, "symlint: not a directory: %s\n",
                     root.string().c_str());
        return 2;
      }
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension().string();
        if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
          files.push_back(entry.path().string());
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: symlint [--root DIR]... [FILE]...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "symlint: no inputs (try --root src)\n");
    return 2;
  }
  std::sort(files.begin(), files.end());  // deterministic report order

  std::vector<symlint::Finding> findings;
  for (const auto& f : files) symlint::lint_file(f, findings);

  for (const auto& f : findings) std::printf("%s\n", f.format().c_str());
  if (!findings.empty()) {
    std::printf("symlint: %zu finding(s) in %zu file(s) scanned\n",
                findings.size(), files.size());
    return 1;
  }
  std::printf("symlint: OK (%zu files scanned)\n", files.size());
  return 0;
}
