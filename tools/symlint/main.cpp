// symlint CLI. Usage:
//
//   symlint [--root DIR]... [--cache-dir DIR] [--baseline FILE]
//           [--sarif FILE] [--jobs N] [--no-cross] [--stats]
//           [--pvars-doc FILE] [--changed-list FILE] [--prune-baseline]
//           [FILE]...
//
// Pass 0 lints every .cpp/.hpp under each --root (recursively) plus any
// explicit files with the per-TU rules; pass 1 builds (or refreshes) the
// cross-TU index, cached incrementally under --cache-dir; pass 2 runs the
// interprocedural rules (L1 lock-order, E1 shared-state-escape, T1
// determinism-taint, B1/B2 hot-path may-block/may-allocate, and — when
// --pvars-doc names the PVAR catalogue — P1 pvar-contract). Findings print
// one per line, optionally also as SARIF 2.1.0, and are gated by the
// checked-in baseline; a baseline entry that matches nothing is itself a
// gate failure (fix the baseline, or pass --prune-baseline to rewrite it
// without the stale entries). --changed-list FILE (newline-separated paths,
// e.g. from `git diff --name-only`) switches pass 1 to diff-aware mode:
// only the changed TUs and their reverse include-dependents are
// re-analyzed, everything else is served from cache as-is. Exits 1 if any
// unbaselined finding survives the allow() annotations or the baseline is
// stale, 2 on usage errors. Run as the `symlint` ctest target over src/
// (see tools/symlint/CMakeLists.txt and scripts/run_lint.sh).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "emit.hpp"
#include "index.hpp"
#include "lint.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool read_text(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

unsigned parse_jobs(const std::string& arg) {
  unsigned v = 0;
  for (const char c : arg) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> roots;
  std::string cache_dir;
  std::string baseline_path;
  std::string sarif_path;
  std::string pvars_doc_path;
  std::string changed_list_path;
  unsigned jobs = 1;
  bool cross = true;
  bool stats_wanted = false;
  bool prune_baseline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "symlint: %s requires %s\n", arg.c_str(), what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const fs::path root = next("a directory");
      std::error_code ec;
      if (!fs::is_directory(root, ec)) {
        std::fprintf(stderr, "symlint: not a directory: %s\n",
                     root.string().c_str());
        return 2;
      }
      roots.push_back(root.string());
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension().string();
        if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
          files.push_back(entry.path().string());
        }
      }
    } else if (arg == "--cache-dir") {
      cache_dir = next("a directory");
    } else if (arg == "--baseline") {
      baseline_path = next("a file");
    } else if (arg == "--sarif") {
      sarif_path = next("a file");
    } else if (arg == "--jobs") {
      jobs = parse_jobs(next("a positive integer"));
      if (jobs == 0) {
        std::fprintf(stderr, "symlint: --jobs requires a positive integer\n");
        return 2;
      }
    } else if (arg == "--no-cross") {
      cross = false;
    } else if (arg == "--stats") {
      stats_wanted = true;
    } else if (arg == "--pvars-doc") {
      pvars_doc_path = next("a file");
    } else if (arg == "--changed-list") {
      changed_list_path = next("a file");
    } else if (arg == "--prune-baseline") {
      prune_baseline = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: symlint [--root DIR]... [--cache-dir DIR] [--baseline "
          "FILE]\n"
          "               [--sarif FILE] [--jobs N] [--no-cross] [--stats]\n"
          "               [--pvars-doc FILE] [--changed-list FILE] "
          "[--prune-baseline]\n"
          "               [FILE]...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "symlint: no inputs (try --root src)\n");
    return 2;
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  files.erase(std::unique(files.begin(), files.end()), files.end());

  symlint::IndexOptions options;
  options.cache_dir = cache_dir;
  options.jobs = jobs;
  options.roots = roots;
  if (!changed_list_path.empty()) {
    std::string text;
    if (!read_text(changed_list_path, text)) {
      std::fprintf(stderr, "symlint: cannot read changed list %s\n",
                   changed_list_path.c_str());
      return 2;
    }
    if (cache_dir.empty()) {
      std::fprintf(stderr,
                   "symlint: --changed-list needs --cache-dir (diff mode "
                   "serves unchanged files from the warm cache)\n");
      return 2;
    }
    options.diff_mode = true;
    std::istringstream lines(text);
    std::string ln;
    while (std::getline(lines, ln)) {
      while (!ln.empty() && (ln.back() == '\r' || ln.back() == ' ')) {
        ln.pop_back();
      }
      if (!ln.empty()) options.changed.push_back(ln);
    }
  }
  symlint::IndexStats stats;
  const std::vector<symlint::TuIndex> tus =
      symlint::run_index(files, options, &stats);

  std::vector<symlint::Finding> findings;
  for (const auto& tu : tus) {
    findings.insert(findings.end(), tu.tu_findings.begin(),
                    tu.tu_findings.end());
  }
  if (cross) {
    for (auto& f : symlint::analyze_project(tus)) {
      findings.push_back(std::move(f));
    }
    if (!pvars_doc_path.empty()) {
      std::string doc;
      if (!read_text(pvars_doc_path, doc)) {
        std::fprintf(stderr, "symlint: cannot read pvars doc %s\n",
                     pvars_doc_path.c_str());
        return 2;
      }
      for (auto& f :
           symlint::check_pvar_contract(tus, doc, pvars_doc_path)) {
        findings.push_back(std::move(f));
      }
    }
  }
  symlint::sort_findings(findings);

  std::size_t baselined = 0;
  symlint::Baseline baseline;
  std::vector<const symlint::BaselineEntry*> unused;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_text(baseline_path, text)) {
      std::fprintf(stderr, "symlint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::string err;
    if (!symlint::load_baseline(text, baseline, err)) {
      std::fprintf(stderr, "symlint: %s\n", err.c_str());
      return 2;
    }
    baselined = symlint::apply_baseline(baseline, findings, &unused);
  }

  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path, std::ios::binary | std::ios::trunc);
    if (!sarif) {
      std::fprintf(stderr, "symlint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    sarif << symlint::to_sarif(findings);
  }

  for (const auto& f : findings) std::printf("%s\n", f.format().c_str());
  bool stale = false;
  for (const auto* entry : unused) {
    std::printf(
        "symlint: stale baseline entry (matched nothing): rule=%s file=%s "
        "key=%s\n",
        entry->rule.c_str(), entry->file.c_str(), entry->key.c_str());
    stale = true;
  }
  if (stale && prune_baseline) {
    std::set<const symlint::BaselineEntry*> drop(unused.begin(),
                                                 unused.end());
    symlint::Baseline pruned;
    pruned.comment = baseline.comment;
    for (const auto& e : baseline.entries) {
      if (drop.count(&e) == 0) pruned.entries.push_back(e);
    }
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "symlint: cannot rewrite baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    out << symlint::serialize_baseline(pruned);
    std::printf("symlint: pruned %zu stale baseline entr%s from %s\n",
                unused.size(), unused.size() == 1 ? "y" : "ies",
                baseline_path.c_str());
    stale = false;
  }
  if (stats_wanted) {
    std::printf("symlint: index: %zu files, %zu cached, %zu reindexed\n",
                stats.files, stats.cache_hits, stats.reindexed);
  }

  if (!findings.empty() || stale) {
    std::printf("symlint: %zu finding(s) in %zu file(s) scanned",
                findings.size(), files.size());
    if (baselined != 0) std::printf(" (%zu baselined)", baselined);
    if (stale) std::printf(" (stale baseline entries fail the gate)");
    std::printf("\n");
    return 1;
  }
  std::printf("symlint: OK (%zu files scanned", files.size());
  if (baselined != 0) std::printf(", %zu baselined", baselined);
  std::printf(")\n");
  return 0;
}
