// tools/symlint/emit.hpp
//
// Output side of symlint v2: SARIF 2.1.0 emission and the checked-in
// findings baseline, plus the minimal dependency-free JSON layer both need
// (the container bakes in no JSON library, and symlint must build on a bare
// toolchain).
//
// Baseline entries identify a finding by (rule id, repo-relative file
// suffix, semantic key) — never by line number, so ordinary edits above a
// baselined site do not churn the baseline. Cross-TU findings carry semantic
// keys ("cycle:a->b->a", "static:src/x.cpp:name", "taint:..."); per-TU
// findings use their message text as the key.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace symlint::json {

/// Tiny JSON document model: enough for baseline.json and for the tests to
/// verify the SARIF output round-trips.
struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  [[nodiscard]] const Value* find(const std::string& k) const {
    const auto it = obj.find(k);
    return it == obj.end() ? nullptr : &it->second;
  }
};

/// Strict recursive-descent parse; on failure returns false and sets `err`
/// to "offset N: reason".
bool parse(std::string_view text, Value& out, std::string& err);

/// JSON string escaping for the emitters.
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace symlint::json

namespace symlint {

struct BaselineEntry {
  std::string rule;  ///< rule id ("L1")
  std::string file;  ///< repo-relative path suffix
  std::string key;   ///< semantic key, or message text for per-TU rules
  std::string reason;
};

struct Baseline {
  std::string comment;  ///< top-level "comment" field, preserved on rewrite
  std::vector<BaselineEntry> entries;
};

/// Parse tools/symlint/baseline.json text. Returns false with a message on
/// malformed input (a broken baseline must fail the gate, not pass it).
bool load_baseline(std::string_view text, Baseline& out, std::string& err);

/// Render a baseline back to its canonical on-disk JSON form (used by
/// --prune-baseline to drop stale entries in place).
[[nodiscard]] std::string serialize_baseline(const Baseline& baseline);

/// Remove baselined findings from `findings` (in place). Returns the number
/// suppressed; `unused` collects baseline entries that matched nothing (the
/// gate reports them so the baseline cannot rot).
std::size_t apply_baseline(const Baseline& baseline,
                           std::vector<Finding>& findings,
                           std::vector<const BaselineEntry*>* unused);

/// Does `finding` match `entry` under the (rule, file-suffix, key) scheme?
[[nodiscard]] bool baseline_matches(const BaselineEntry& entry,
                                    const Finding& finding);

/// Render findings as a SARIF 2.1.0 log (one run, one driver). The output
/// is deterministic: findings must already be sorted.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace symlint
