// tools/symlint/index.hpp
//
// Pass 1 of symlint v2: the persistent cross-TU index.
//
// For every translation unit the indexer extracts, with one lexical
// forward scan over the token stream:
//   - the function definitions (qualified name, line span), each with its
//     call sites, mutex acquisitions (RAII guards and manual lock()/
//     unlock()) annotated with the set of mutexes already held, references
//     to this TU's mutable statics, nondeterminism-source calls, virtual-
//     time scheduling sinks, and local taint assignments;
//   - mutable namespace-scope / function-local-static / class-static
//     variable declarations (E1 subjects);
//   - mutex object declarations (L1 nodes);
//   - the allow() annotation map and the per-TU D-rule findings (cached so
//     a warm run never re-lexes an unchanged file).
//
// The index is cached per TU under <cache-dir>/ keyed by a version-stamped
// FNV-1a hash of the file path; an entry is valid only while the file's own
// content hash AND the content hashes of its transitive project includes
// are unchanged — touching a header re-indexes exactly its dependents.
//
// Everything here is deterministic: containers iterated for output are
// ordered, and parallel indexing writes results into per-file slots so the
// merge order is the sorted file order, not thread arrival order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace symlint {

struct CallSite {
  std::string callee;  ///< unqualified callee name
  int line = 0;
  std::vector<std::string> held;  ///< mutex tokens held at the call
};

struct AcquireSite {
  std::string mutex;  ///< mutex token as written ("mu_", "g_a")
  int line = 0;
  std::vector<std::string> held;  ///< mutexes already held when acquiring
};

struct SinkCall {
  std::string name;  ///< "after", "at_on", ...
  int line = 0;
  int args = 0;  ///< argument count ("at" is a sink only with >= 2)
  std::vector<std::string> arg_idents;  ///< plain identifiers in the args
  std::vector<std::string> arg_calls;   ///< identifiers called in the args
};

struct TaintAssign {
  std::string var;
  int line = 0;
  std::vector<std::string> from_calls;  ///< callees on the right-hand side
  bool direct_source = false;  ///< rhs contains a D1 primitive directly
};

struct SourceCall {
  std::string primitive;  ///< "time", "steady_clock", ...
  int line = 0;
};

struct StaticRef {
  std::string name;
  int line = 0;  ///< first reference line within the function
};

struct FunctionInfo {
  std::string name;  ///< possibly qualified ("Backend::put")
  std::string cls;   ///< enclosing class, "" for free functions
  int line = 0;
  std::vector<CallSite> calls;
  std::vector<AcquireSite> acquires;
  std::vector<StaticRef> static_refs;
  std::vector<SourceCall> sources;
  std::vector<SinkCall> sinks;
  std::vector<TaintAssign> taints;
  /// B1 seeds: OS-blocking leaf sites in this body ("std::mutex",
  /// "usleep()"), and B2 seeds: heap-allocating leaf sites ("new",
  /// "malloc()", "std::make_unique").
  std::vector<SourceCall> blocking;
  std::vector<SourceCall> allocating;
  /// `&ident` references: deferred call edges (function pointers handed to
  /// SmallFn / callbacks). Resolved by name like ordinary calls.
  std::vector<StaticRef> fn_refs;
  bool binds_lane = false;  ///< calls bind_home_lane / assert_home_lane
};

/// P1: a name registered with a string literal in code — a PVAR
/// registration (`reg.add({"name", ...})`), an action span
/// (`record_action_span("name", ...)`), or a policy rule
/// (`add_rule("name", ...)`).
struct NameReg {
  std::string name;
  int line = 0;
  /// The literal is only a prefix completed at run time
  /// ("policy:" + rule_name); expanded against the registered rule names.
  bool dynamic = false;
};

struct MutableStatic {
  std::string name;
  int line = 0;
  bool is_thread_local = false;
  bool is_function_local = false;
  std::string type_hint;  ///< first type identifier, for the message
};

struct MutexDecl {
  std::string name;
  std::string cls;  ///< owning class for members, "" for globals
  int line = 0;
  bool is_member = false;
};

struct TuIndex {
  std::string path;  ///< as given (what findings report)
  std::string norm;  ///< normalized, '/'-separated
  std::uint64_t self_hash = 0;
  /// Transitive project includes with their content hash at index time.
  std::vector<std::pair<std::string, std::uint64_t>> deps;
  std::vector<std::string> raw_includes;  ///< unresolved #include "..." targets
  std::vector<FunctionInfo> functions;
  std::vector<MutableStatic> statics;
  std::vector<MutexDecl> mutexes;
  /// Effective allow coverage: (line, rule-name), already expanded so an
  /// annotation covers its own line plus the code line beneath it.
  std::vector<std::pair<int, std::string>> allows;
  std::vector<NameReg> pvar_regs;  ///< P1: PVAR registrations
  std::vector<NameReg> span_regs;  ///< P1: action-span names
  std::vector<NameReg> rule_regs;  ///< P1: policy-rule names (span prefixes)
  std::vector<Finding> tu_findings;  ///< cached per-TU D-rule findings
  bool from_cache = false;
};

/// Index one TU from memory (no cache, no include resolution). The
/// fixture tests feed virtual paths through this.
[[nodiscard]] TuIndex build_tu_index(std::string_view path,
                                     std::string_view content);

/// Cache round-trip (text format, version-stamped).
[[nodiscard]] std::string serialize_tu_index(const TuIndex& tu);
bool deserialize_tu_index(std::string_view data, TuIndex& out);

struct IndexOptions {
  std::string cache_dir;  ///< empty = no cache
  unsigned jobs = 1;      ///< worker threads for the index pass
  /// Roots that #include "..." paths are resolved against (in addition to
  /// the including file's own directory).
  std::vector<std::string> roots;
  /// Diff-aware mode: when true, only files in `changed` (matched by
  /// normalized-path suffix) plus their reverse transitive include
  /// dependents are (re)validated and re-indexed; every other file is
  /// loaded from cache as-is, *without* content-hash validation. Requires a
  /// warm cache — files outside the analysis set with no cache entry fall
  /// back to a full index.
  bool diff_mode = false;
  std::vector<std::string> changed;
};

struct IndexStats {
  std::size_t files = 0;
  std::size_t cache_hits = 0;
  std::size_t reindexed = 0;
};

/// Index `files` (disk paths), using and refreshing the cache. Results are
/// in sorted-path order regardless of `jobs`. Unreadable files get an A0
/// finding in their tu_findings.
[[nodiscard]] std::vector<TuIndex> run_index(std::vector<std::string> files,
                                             const IndexOptions& options,
                                             IndexStats* stats = nullptr);

}  // namespace symlint
