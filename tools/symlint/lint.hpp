// tools/symlint/lint.hpp
//
// symlint — SYMBIOSYS-specific static analysis. The project's determinism
// and fiber-safety guarantees (DESIGN.md, docs/ARCHITECTURE.md) are
// invariants of the *source*, not of any one test run — a stray wall-clock
// read or an unordered-map walk in an export path produces subtly different
// figures without failing a single assertion. symlint encodes those
// invariants as machine-checked rules over src/ and runs as a ctest gate.
//
// The analyzer has two passes (see docs/STATIC_ANALYSIS.md):
//
//   pass 0 — per-TU lexical rules, this header:
//   D1 nondeterminism   no wall-clock / libc randomness / environment reads
//                       outside simkit/time.hpp and simkit/rng.hpp
//   D2 unordered-iter   no range-for over std::unordered_{map,set} variables
//                       in analysis/export code (src/symbiosys)
//   D3 fiber-blocking   no std::mutex / std::thread / blocking syscalls in
//                       fiber-executed code — blocking goes through
//                       argolite's sync primitives (src/simkit is exempt:
//                       the engine substrate owns the real threads)
//   D4 lane-affinity    no direct access to Lane internals outside
//                       simkit/{lane,window,engine}.* — cross-lane work goes
//                       through the Engine::at_on mailbox API
//
//   pass 1+2 — cross-TU index (index.hpp) and interprocedural rules
//   (rules.hpp):
//   L1 lock-order            cycle in the project-wide mutex-acquisition
//                            graph (potential deadlock), with witness path
//   E1 shared-state-escape   mutable global/static/class-static reachable
//                            from worker-executed code without a lane bind
//   T1 determinism-taint     clock/rng-derived value flowing through calls
//                            into an event timestamp
//   B1 may-block             lane/fiber-executed root reaches an OS-blocking
//                            leaf (std::mutex, condition_variable, blocking
//                            syscall) through the call graph; the finding
//                            carries the witness chain with file:line hops
//   B2 may-allocate          same propagation for heap allocation leaves
//                            (raw new, malloc family, make_unique/shared,
//                            std::function spill) — replaces the retired
//                            per-TU D3 "alloc face" file list
//   P1 pvar-contract         PVAR registrations and action-span names in
//                            code cross-checked against docs/PVARS.md;
//                            drift in either direction is a finding
//
// Escape hatch: a finding is suppressed by an annotation on the same line
// or on the line directly above — a comment carrying the symlint marker
// followed by allow(<rule>) reason=<non-empty explanation>.
// An allow() without a reason is itself reported (rule A0).
//
// The analyzer is deliberately lexical, not AST-based: it must build
// dependency-free on a bare toolchain and run in milliseconds over the
// whole tree. The matching is conservative and the fixture suite
// (tests/lint_fixtures) pins its exact diagnostics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace symlint {

enum class Rule {
  kAnnotation,      // A0: malformed allow() annotation
  kNondeterminism,  // D1
  kUnorderedIter,   // D2
  kFiberBlocking,   // D3
  kLaneAffinity,    // D4
  kLockOrder,       // L1 (cross-TU)
  kSharedEscape,    // E1 (cross-TU)
  kTaint,           // T1 (cross-TU)
  kMayBlock,        // B1 (cross-TU)
  kMayAlloc,        // B2 (cross-TU)
  kPvarContract,    // P1 (cross-TU, registry vs docs/PVARS.md)
};

/// Short rule id ("D1") and annotation name ("nondeterminism") for a rule.
[[nodiscard]] std::string_view rule_id(Rule r) noexcept;
[[nodiscard]] std::string_view rule_name(Rule r) noexcept;

/// Inverse of rule_id(); returns false for unknown ids (cache decode).
bool rule_from_id(std::string_view id, Rule& out) noexcept;

struct Finding {
  Rule rule;
  std::string file;  ///< path as given to lint_source()
  int line = 0;      ///< 1-based
  std::string message;
  /// Stable identity for baseline matching, independent of line drift.
  /// Cross-TU rules set a semantic key ("cycle:a->b->c", "static:file:name");
  /// per-TU findings use the empty key (matched by message).
  std::string key;

  /// "file:line: [D1/nondeterminism] message" — the stable CLI format the
  /// fixture tests pin.
  [[nodiscard]] std::string format() const;
};

/// Which rule families apply to a path. Per-TU rules are path-scoped (see
/// the table in docs/STATIC_ANALYSIS.md); the cross-TU passes index every
/// scanned file. tools/symlint itself is scanned (the selfcheck gate) under
/// the determinism rules that make sense for a host-side tool: its *output*
/// must be deterministic (D1, D2), but it legitimately owns threads (no D3)
/// and has no lanes (no D4).
struct Scope {
  bool scan = false;  ///< file participates in analysis at all
  bool d1 = false;
  bool d2 = false;
  bool d3 = false;
  bool d4 = false;
  // The old per-TU D3 "alloc face" (a hard-coded hot-path file list) is
  // retired: allocation discipline is now the interprocedural B2
  // may-allocate rule over the cross-TU call graph (rules.hpp), which sees
  // a malloc hidden one helper call away in another TU.
};

[[nodiscard]] Scope classify(std::string_view path);

/// Lint one translation unit with the per-TU rules. `path` determines which
/// rules apply; `content` is the file text. The path is matched on its
/// normalized form, so callers may pass either a repo-relative path
/// ("src/simkit/lane.cpp") or an absolute one.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view content);

/// Lint a file on disk. Returns false (and appends a kAnnotation finding
/// with the error) if the file cannot be read.
bool lint_file(const std::string& path, std::vector<Finding>& out);

/// Stable ordering used everywhere findings are emitted.
void sort_findings(std::vector<Finding>& findings);

}  // namespace symlint
