// tools/symlint/lint.hpp
//
// symlint: SYMBIOSYS-specific static analysis. The project's determinism
// and fiber-safety guarantees (DESIGN.md, docs/ARCHITECTURE.md) are
// invariants of the *source*, not of any one test run — a stray wall-clock
// read or an unordered-map walk in an export path produces subtly different
// figures without failing a single assertion. symlint encodes those
// invariants as machine-checked rules over src/ and runs as a ctest gate.
//
// Rules (see docs/STATIC_ANALYSIS.md for the full rationale):
//   D1 nondeterminism   no wall-clock / libc randomness / environment reads
//                       outside simkit/time.hpp and simkit/rng.hpp
//   D2 unordered-iter   no range-for over std::unordered_{map,set} variables
//                       in analysis/export code (src/symbiosys)
//   D3 fiber-blocking   no std::mutex / std::thread / blocking syscalls in
//                       fiber-executed code — blocking goes through
//                       argolite's sync primitives (src/simkit is exempt:
//                       the engine substrate owns the real threads)
//   D4 lane-affinity    no direct access to Lane internals outside
//                       simkit/{lane,window,engine}.* — cross-lane work goes
//                       through the Engine::at_on mailbox API
//
// Escape hatch: a finding is suppressed by an annotation on the same line
// or on the line directly above:
//   // symlint: allow(<rule>) reason=<non-empty explanation>
// An allow() without a reason is itself reported (rule A0).
//
// The analyzer is deliberately a lexer + per-TU scanner, not an AST tool:
// it must build dependency-free on a bare toolchain and run in
// milliseconds over the whole tree. The matching is conservative and the
// fixture suite (tests/lint_fixtures) pins its exact diagnostics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace symlint {

enum class Rule {
  kAnnotation,      // A0: malformed allow() annotation
  kNondeterminism,  // D1
  kUnorderedIter,   // D2
  kFiberBlocking,   // D3
  kLaneAffinity,    // D4
};

/// Short rule id ("D1") and annotation name ("nondeterminism") for a rule.
[[nodiscard]] std::string_view rule_id(Rule r) noexcept;
[[nodiscard]] std::string_view rule_name(Rule r) noexcept;

struct Finding {
  Rule rule;
  std::string file;  ///< path as given to lint_source()
  int line = 0;      ///< 1-based
  std::string message;

  /// "file:line: [D1/nondeterminism] message" — the stable CLI format the
  /// fixture tests pin.
  [[nodiscard]] std::string format() const;
};

/// Lint one translation unit. `path` determines which rules apply (rules
/// are scoped by directory, see above); `content` is the file text. The
/// path is matched on its normalized form, so callers may pass either a
/// repo-relative path ("src/simkit/lane.cpp") or an absolute one.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view content);

/// Lint a file on disk. Returns false (and appends a kAnnotation finding
/// with the error) if the file cannot be read.
bool lint_file(const std::string& path, std::vector<Finding>& out);

}  // namespace symlint
