// tools/symlint/tables.hpp
//
// Shared identifier tables. The per-TU rules (lint.cpp) and the cross-TU
// indexer (index.cpp) must agree on what counts as a nondeterminism source
// or a lock-guard type, so the tables live in one place.
#pragma once

#include <set>
#include <string_view>

namespace symlint::tables {

// D1 / T1: identifiers that are nondeterministic wherever they appear.
inline const std::set<std::string_view> kD1TypeIdents = {
    "steady_clock",  "system_clock", "high_resolution_clock",
    "random_device", "mt19937",      "mt19937_64",
    "minstd_rand",   "minstd_rand0", "default_random_engine",
};
// D1 / T1: libc functions — nondeterministic when *called* (next token "(").
inline const std::set<std::string_view> kD1CallIdents = {
    "time",      "clock",        "rand",     "srand",   "rand_r",
    "drand48",   "lrand48",      "random",   "srandom", "getenv",
    "secure_getenv", "gettimeofday", "clock_gettime", "localtime",
    "gmtime",    "ctime",        "mktime",
};

// D3: std:: entities that block or spawn real OS threads.
inline const std::set<std::string_view> kD3StdIdents = {
    "mutex",          "recursive_mutex",        "timed_mutex",
    "shared_mutex",   "condition_variable",     "condition_variable_any",
    "thread",         "jthread",                "this_thread",
    "counting_semaphore", "binary_semaphore",   "latch",
    "future",         "promise",
};
// D3: blocking syscalls / libc calls.
inline const std::set<std::string_view> kD3CallIdents = {
    "sleep",      "usleep", "nanosleep", "sched_yield", "pthread_create",
    "poll",       "select", "epoll_wait", "fsync",      "fdatasync",
    "flock",
};

// B2: libc allocators — allocating when *called* as free functions.
inline const std::set<std::string_view> kAllocCallIdents = {
    "malloc", "calloc", "realloc", "aligned_alloc", "posix_memalign",
    "strdup",
};
// B2: std:: entities that heap-allocate on construction or call.
// std::function is here for its capture spill; the project's SmallFn is the
// sanctioned inline-storage replacement.
inline const std::set<std::string_view> kAllocStdIdents = {
    "make_unique", "make_shared", "function",
};

// B1/B2: the lane-executed hot-path files. Every function defined in one of
// these is presumed lane-executed, so a blocking/allocating seed inside them
// is reported directly (no call chain needed) — this subsumes the retired
// per-TU D3 "alloc face".
inline const char* const kHotPathFiles[] = {
    "simkit/lane.hpp",   "simkit/lane.cpp",    "simkit/window.hpp",
    "simkit/window.cpp", "simkit/engine.hpp",  "simkit/engine.cpp",
    "simkit/arena.hpp",  "simkit/smallfn.hpp", "simkit/dheap.hpp",
};

// B1/B2 reachability roots: the named lane-/fiber-/ULT-executed entry
// points (the dispatch loops and pumps the E1 BFS also starts from, but
// pinned to functions so the coordinator's *own* sanctioned thread plumbing
// — spawn/join in ctor/dtor — is not a root). A root matches when the TU's
// repo-relative path contains `path_frag` and the function's qualified name
// equals `fn`.
struct HotRoot {
  std::string_view path_frag;
  std::string_view fn;
};
inline const HotRoot kHotPathRoots[] = {
    {"simkit/lane.", "Lane::pop_and_run"},
    {"simkit/lane.", "Lane::run_window"},
    {"simkit/lane.", "Lane::post_remote"},
    {"simkit/lane.", "Lane::absorb_outbox_from"},
    {"simkit/lane.", "Lane::peek_next"},
    {"simkit/window.", "WindowCoordinator::worker_main"},
    {"simkit/window.", "WindowCoordinator::run_lanes_of"},
    {"simkit/window.", "WindowCoordinator::execute_window"},
    {"simkit/window.", "WindowCoordinator::merge"},
    {"simkit/engine.", "Engine::run_windows"},
    {"simkit/engine.", "Engine::run_classic"},
    {"simkit/engine.", "Engine::run_until_classic"},
    {"simkit/fiber.", "Fiber::trampoline"},
    {"simkit/fiber.", "Fiber::fast_trampoline"},
    {"simkit/fiber.", "Fiber::run_entry"},
    {"argolite/", "Xstream::try_dispatch"},
    {"argolite/", "Xstream::dispatch_one"},
    {"argolite/", "Xstream::run_ult"},
    {"workloads/loadgen", "LoadgenWorld::pump_tick"},
    {"workloads/loadgen", "LoadgenWorld::emit_arrival"},
    {"services/blockcache", "Provider::dispatch_loop"},
    {"services/blockcache", "Provider::flusher_loop"},
};

// D4: Lane types and Lane-only member functions.
inline const std::set<std::string_view> kD4TypeIdents = {"Lane",
                                                         "ActiveLaneScope",
                                                         "WindowCoordinator"};
inline const std::set<std::string_view> kD4MemberCalls = {
    "post_remote", "absorb_outbox_from", "run_window", "pop_and_run",
    "peek_next",
};

// L1: RAII guard types whose construction acquires the first argument and
// holds it to end of scope. Covers both std:: guards and abt::LockGuard.
inline const std::set<std::string_view> kGuardTypes = {
    "LockGuard", "lock_guard", "scoped_lock", "unique_lock", "shared_lock",
};

// L1 / E1: mutex-ish type name fragments. A declaration whose type mentions
// one of these registers a mutex object (L1) instead of a mutable static
// (E1) — a global mutex is synchronization, not escaping state.
inline const std::set<std::string_view> kMutexTypeIdents = {
    "Mutex", "mutex", "recursive_mutex", "timed_mutex", "shared_mutex",
};

// T1 sinks: virtual-time scheduling entry points. A tainted value flowing
// into one of these becomes an event timestamp (and thus a heap key and an
// export ordering input). "at" is only a sink with >= 2 arguments so that
// std::map::at(key) does not match.
inline const std::set<std::string_view> kSinkCalls = {
    "at", "after", "at_on", "after_on",
};

// E1: calls that bind an object (and by extension the state it guards) to a
// home lane; a referencing function that also binds is considered owned.
inline const std::set<std::string_view> kLaneBindCalls = {
    "bind_home_lane", "assert_home_lane",
};

// Cross-TU call resolution is by unqualified name, so ubiquitous std
// container/utility method names must never resolve to project functions:
// "m.size()" held under one backend's lock would otherwise alias every
// class that happens to define size() and weld their mutexes into phantom
// lock-order cycles. A project call routed through one of these names is
// invisible to L1/E1/T1 propagation — an accepted, documented trade.
inline const std::set<std::string_view> kOpaqueCallees = {
    "size",      "empty",     "clear",      "find",       "erase",
    "insert",    "count",     "at",         "begin",      "end",
    "push_back", "pop_back",  "emplace",    "emplace_back", "front",
    "back",      "reserve",   "resize",     "data",       "get",
    "reset",     "release",   "load",       "store",      "exchange",
    "c_str",     "str",       "substr",     "append",     "compare",
    "swap",      "contains",  "lower_bound", "upper_bound", "push",
    "pop",       "top",       "length",     "assign",     "fetch_add",
    "fetch_sub", "wait",      "notify_one", "notify_all", "value",
    "has_value", "insert_or_assign", "try_emplace", "first", "second",
};

// Keywords that never name a function / callee in the index.
inline const std::set<std::string_view> kNonCalleeKeywords = {
    "if",       "for",      "while",    "switch",   "catch",   "return",
    "sizeof",   "alignof",  "decltype", "new",      "delete",  "operator",
    "constexpr", "const",   "static_cast", "reinterpret_cast",
    "dynamic_cast", "const_cast", "co_return", "co_await", "co_yield",
    "throw",    "assert",   "defined",  "alignas",  "noexcept",
};

}  // namespace symlint::tables
