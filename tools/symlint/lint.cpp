#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "lexer.hpp"
#include "tables.hpp"

namespace symlint {
namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Scanner (per-TU rules)
// ---------------------------------------------------------------------------

class Scanner {
 public:
  Scanner(std::string_view path, const Lexed& lx, const Scope& scope)
      : path_(path), lx_(lx), scope_(scope) {}

  std::vector<Finding> run() {
    collect_unordered_vars();
    const auto& t = lx_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::kIdent) continue;
      if (scope_.d1) check_d1(i);
      if (scope_.d2) check_d2(i);
      if (scope_.d3) check_d3(i);
      if (scope_.d4) check_d4(i);
    }
    // Malformed annotations are findings regardless of scope.
    for (const auto& e : lx_.annotation_errors) {
      findings_.push_back(
          {Rule::kAnnotation, std::string(path_), e.line, e.message, {}});
    }
    apply_allows();
    return std::move(findings_);
  }

 private:
  const Token* prev(std::size_t i, std::size_t back = 1) const {
    return i >= back ? &lx_.tokens[i - back] : nullptr;
  }
  const Token* next(std::size_t i, std::size_t fwd = 1) const {
    return i + fwd < lx_.tokens.size() ? &lx_.tokens[i + fwd] : nullptr;
  }

  /// True when token i is a *call* of a free (or std::/global-qualified)
  /// function: followed by "(" and not a member access or a qualified name
  /// in some other namespace.
  bool is_free_call(std::size_t i) const {
    const Token* nx = next(i);
    if (nx == nullptr || nx->text != "(") return false;
    const Token* pv = prev(i);
    if (pv == nullptr) return true;
    if (pv->text == "." || pv->text == "->") return false;
    if (pv->text == "::") {
      const Token* qual = prev(i, 2);
      // "::time(" (global) and "std::time(" are the libc call; any other
      // qualifier ("Foo::time") is a different function. Keywords before
      // "::" ("return ::time(...)") are not qualifiers.
      static const std::set<std::string_view> kNonQualifiers = {
          "return", "co_return", "co_await", "co_yield", "throw",
          "else",   "do",        "case",     "default",
      };
      return qual == nullptr || qual->kind != Token::kIdent ||
             qual->text == "std" || kNonQualifiers.count(qual->text) != 0;
    }
    return true;
  }

  /// True when token i is qualified as std::<ident>.
  bool is_std_qualified(std::size_t i) const {
    const Token* pv = prev(i);
    const Token* qual = prev(i, 2);
    return pv != nullptr && pv->text == "::" && qual != nullptr &&
           qual->kind == Token::kIdent && qual->text == "std";
  }

  void add(Rule rule, int line, std::string message) {
    findings_.push_back(
        {rule, std::string(path_), line, std::move(message), {}});
  }

  // --- D1 ---
  void check_d1(std::size_t i) {
    const auto& tok = lx_.tokens[i];
    if (tables::kD1TypeIdents.count(tok.text) != 0) {
      add(Rule::kNondeterminism, tok.line,
          "nondeterministic source '" + std::string(tok.text) +
              "' (draw virtual time from simkit/time.hpp and randomness "
              "from sym::sim::Rng)");
      return;
    }
    if (tables::kD1CallIdents.count(tok.text) != 0 && is_free_call(i)) {
      add(Rule::kNondeterminism, tok.line,
          "nondeterministic call '" + std::string(tok.text) +
              "()' (draw virtual time from simkit/time.hpp and randomness "
              "from sym::sim::Rng)");
    }
  }

  // --- D2 ---
  /// Record every variable (local, member or parameter) declared with an
  /// unordered container type in this TU.
  void collect_unordered_vars() {
    if (!scope_.d2) return;
    const auto& t = lx_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::kIdent ||
          (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
        continue;
      }
      const Token* nx = next(i);
      if (nx == nullptr || nx->text != "<") continue;
      // Walk the template argument list; '<' '>' tokens are single chars.
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">") {
          if (--depth == 0) break;
        }
      }
      if (j >= t.size()) continue;
      // Skip refs/pointers/cv to reach the declared name.
      std::size_t k = j + 1;
      while (k < t.size() &&
             (t[k].text == "&" || t[k].text == "*" || t[k].text == "const")) {
        ++k;
      }
      if (k < t.size() && t[k].kind == Token::kIdent) {
        unordered_vars_.insert(std::string(t[k].text));
      }
    }
  }

  void check_d2(std::size_t i) {
    const auto& t = lx_.tokens;
    if (t[i].text != "for") return;
    const Token* nx = next(i);
    if (nx == nullptr || nx->text != "(") return;
    // Find a ':' at parenthesis depth 1 (range-for); "::" is one token and
    // never matches.
    int depth = 0;
    std::size_t j = i + 1;
    std::size_t colon = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      else if (t[j].text == ")") {
        if (--depth == 0) break;
      } else if (t[j].text == ":" && depth == 1 && colon == 0) {
        colon = j;
      } else if (t[j].text == ";" && depth == 1) {
        return;  // classic for-loop
      }
    }
    if (colon == 0 || j >= t.size()) return;
    // Base identifier of the range expression.
    for (std::size_t k = colon + 1; k < j; ++k) {
      if (t[k].kind != Token::kIdent) continue;
      if (t[k].text == "const" || t[k].text == "auto") continue;
      if (unordered_vars_.count(std::string(t[k].text)) != 0) {
        add(Rule::kUnorderedIter, t[i].line,
            "range-for over unordered container '" + std::string(t[k].text) +
                "' in analysis/export code (iterate sorted keys so emission "
                "order is deterministic by construction)");
      }
      break;  // only the base identifier decides
    }
  }

  // --- D3 ---
  void check_d3(std::size_t i) {
    const auto& tok = lx_.tokens[i];
    if (tables::kD3StdIdents.count(tok.text) != 0 && is_std_qualified(i)) {
      add(Rule::kFiberBlocking, tok.line,
          "blocking primitive 'std::" + std::string(tok.text) +
              "' in fiber-executed code (block through argolite's sync "
              "primitives in sym::abt so the ULT yields its ES)");
      return;
    }
    if (tables::kD3CallIdents.count(tok.text) != 0 && is_free_call(i)) {
      add(Rule::kFiberBlocking, tok.line,
          "blocking call '" + std::string(tok.text) +
              "()' in fiber-executed code (model delays with "
              "Engine::after and argolite's sync primitives)");
    }
  }

  // --- D4 ---
  void check_d4(std::size_t i) {
    const auto& tok = lx_.tokens[i];
    if (tables::kD4TypeIdents.count(tok.text) != 0) {
      add(Rule::kLaneAffinity, tok.line,
          "direct use of sim::" + std::string(tok.text) +
              " outside simkit/{lane,window,engine} (schedule through "
              "Engine::at_on, which routes cross-lane work via the "
              "deterministic window mailbox)");
      return;
    }
    if (tables::kD4MemberCalls.count(tok.text) != 0) {
      const Token* pv = prev(i);
      const Token* nx = next(i);
      if (pv != nullptr && (pv->text == "." || pv->text == "->") &&
          nx != nullptr && nx->text == "(") {
        add(Rule::kLaneAffinity, tok.line,
            "call to Lane-internal member '" + std::string(tok.text) +
                "()' outside simkit/{lane,window,engine} (use the "
                "Engine::at_on mailbox API)");
      }
    }
  }

  /// Drop findings covered by an allow(<rule>) on the same line or in the
  /// comment block directly above (scanning up over comment-only lines, so
  /// a multi-line annotation comment covers the code line beneath it).
  void apply_allows() {
    std::set<int> code_lines;
    for (const auto& tok : lx_.tokens) code_lines.insert(tok.line);
    auto has_allow = [&](int line, std::string_view name) {
      const auto it = lx_.allows.find(line);
      if (it == lx_.allows.end()) return false;
      for (const auto& note : it->second) {
        if (note.rule == name) return true;
      }
      return false;
    };
    auto allowed = [&](const Finding& f) {
      if (f.rule == Rule::kAnnotation) return false;
      const auto name = rule_name(f.rule);
      if (has_allow(f.line, name)) return true;
      for (int line = f.line - 1; line > 0 && code_lines.count(line) == 0;
           --line) {
        if (has_allow(line, name)) return true;
      }
      return false;
    };
    findings_.erase(
        std::remove_if(findings_.begin(), findings_.end(), allowed),
        findings_.end());
  }

  std::string_view path_;
  const Lexed& lx_;
  Scope scope_;
  std::set<std::string> unordered_vars_;
  std::vector<Finding> findings_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string_view rule_id(Rule r) noexcept {
  switch (r) {
    case Rule::kAnnotation: return "A0";
    case Rule::kNondeterminism: return "D1";
    case Rule::kUnorderedIter: return "D2";
    case Rule::kFiberBlocking: return "D3";
    case Rule::kLaneAffinity: return "D4";
    case Rule::kLockOrder: return "L1";
    case Rule::kSharedEscape: return "E1";
    case Rule::kTaint: return "T1";
    case Rule::kMayBlock: return "B1";
    case Rule::kMayAlloc: return "B2";
    case Rule::kPvarContract: return "P1";
  }
  return "??";
}

std::string_view rule_name(Rule r) noexcept {
  switch (r) {
    case Rule::kAnnotation: return "annotation";
    case Rule::kNondeterminism: return "nondeterminism";
    case Rule::kUnorderedIter: return "unordered-iter";
    case Rule::kFiberBlocking: return "fiber-blocking";
    case Rule::kLaneAffinity: return "lane-affinity";
    case Rule::kLockOrder: return "lock-order";
    case Rule::kSharedEscape: return "shared-state-escape";
    case Rule::kTaint: return "determinism-taint";
    case Rule::kMayBlock: return "may-block";
    case Rule::kMayAlloc: return "may-allocate";
    case Rule::kPvarContract: return "pvar-contract";
  }
  return "unknown";
}

bool rule_from_id(std::string_view id, Rule& out) noexcept {
  static const std::pair<std::string_view, Rule> kIds[] = {
      {"A0", Rule::kAnnotation},    {"D1", Rule::kNondeterminism},
      {"D2", Rule::kUnorderedIter}, {"D3", Rule::kFiberBlocking},
      {"D4", Rule::kLaneAffinity},  {"L1", Rule::kLockOrder},
      {"E1", Rule::kSharedEscape},  {"T1", Rule::kTaint},
      {"B1", Rule::kMayBlock},      {"B2", Rule::kMayAlloc},
      {"P1", Rule::kPvarContract},
  };
  for (const auto& [name, rule] : kIds) {
    if (name == id) {
      out = rule;
      return true;
    }
  }
  return false;
}

std::string Finding::format() const {
  std::ostringstream os;
  os << file << ':' << line << ": [" << rule_id(rule) << '/'
     << rule_name(rule) << "] " << message;
  return os.str();
}

Scope classify(std::string_view path) {
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  Scope s;

  // The analyzer's own sources: the selfcheck gate. A lint tool whose
  // report order depends on hash layout or wall time is as useless as a
  // nondeterministic simulator, so D1/D2 apply; it owns real threads for
  // the parallel index pass, so D3/D4 do not.
  if (norm.find("tools/symlint/") != std::string::npos) {
    s.scan = true;
    s.d1 = true;
    s.d2 = true;
    return s;
  }

  // Benchmarks: measurement harnesses legitimately read wall clocks (that
  // is the measurement), so D1 is off — but their *emitted tables* feed the
  // paper figures, so iteration order must still be deterministic (D2), and
  // they are indexed for the cross-TU rules like any other TU.
  if (norm.find("bench/") != std::string::npos &&
      norm.find("src/") == std::string::npos) {
    s.scan = true;
    s.d2 = true;
    return s;
  }

  const auto pos = norm.find("src/");
  if (pos == std::string::npos) return s;
  const std::string rel = norm.substr(pos);  // "src/..."
  s.scan = true;

  s.d1 = !(ends_with(rel, "simkit/time.hpp") || ends_with(rel, "simkit/rng.hpp"));
  s.d2 = rel.rfind("src/symbiosys/", 0) == 0;
  // The simkit substrate owns the real worker threads (window coordinator),
  // so std:: threading there is the implementation, not a violation.
  s.d3 = rel.rfind("src/simkit/", 0) != 0;
  static const char* kLaneFiles[] = {
      "simkit/lane.hpp",   "simkit/lane.cpp",   "simkit/window.hpp",
      "simkit/window.cpp", "simkit/engine.hpp", "simkit/engine.cpp",
  };
  s.d4 = true;
  for (const char* f : kLaneFiles) {
    if (ends_with(rel, f)) s.d4 = false;
  }
  return s;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return rule_id(a.rule) < rule_id(b.rule);
            });
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content) {
  const Scope scope = classify(path);
  if (!scope.scan) return {};
  const Lexed lx = lex(content);
  Scanner scanner(path, lx, scope);
  auto findings = scanner.run();
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return rule_id(a.rule) < rule_id(b.rule);
            });
  return findings;
}

bool lint_file(const std::string& path, std::vector<Finding>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.push_back(
        {Rule::kAnnotation, path, 0, "cannot open file for linting", {}});
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  const auto findings = lint_source(path, content);
  out.insert(out.end(), findings.begin(), findings.end());
  return true;
}

}  // namespace symlint
