#include "index.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "lexer.hpp"
#include "tables.hpp"

namespace symlint {
namespace {

namespace fs = std::filesystem;

// Bump on any change to what the indexer extracts: entries are validated by
// content hash, so a format/semantic change must invalidate old entries.
constexpr std::string_view kCacheMagic = "symlint-tui v6";

std::string normalize(std::string_view path) {
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  return norm;
}

// Declaration modifiers that may precede the type in a variable declaration.
const std::set<std::string_view> kDeclModifiers = {
    "static", "thread_local", "inline", "mutable", "volatile",
    "unsigned", "signed", "long", "short",
};

// A statement containing one of these is not a variable declaration we
// track (type definitions, aliases, immutable data, templates, ...).
const std::set<std::string_view> kDeclSkip = {
    "const",    "constexpr", "constinit", "using",    "typedef",
    "extern",   "friend",    "enum",      "class",    "struct",
    "union",    "template",  "namespace", "operator", "requires",
    "static_assert", "return", "if", "for", "while", "switch", "do",
    "case",     "default",   "goto",      "delete",   "new",
    "public",   "private",   "protected", "throw",
};

// Specifier tokens that may sit between a function's ")" and its body "{".
const std::set<std::string_view> kFnTrailing = {
    "const", "noexcept", "override", "final", "mutable", "try", "volatile",
};

// ---------------------------------------------------------------------------
// IndexScanner: one forward pass with a context stack
// ---------------------------------------------------------------------------

class IndexScanner {
 public:
  IndexScanner(const Lexed& lx, TuIndex& tu) : t_(lx.tokens), tu_(tu) {}

  void run() {
    for (i_ = 0; i_ < t_.size(); ++i_) {
      const Token& tok = t_[i_];
      if (tok.kind == Token::kPunct) {
        if (tok.text == "{") {
          open_brace();
        } else if (tok.text == "}") {
          close_brace();
        } else if (tok.text == ";") {
          analyze_statement(stmt_begin_, i_, /*brace_terminated=*/false);
          stmt_begin_ = i_ + 1;
        }
        continue;
      }
      if (in_function()) scan_body_token();
    }
    // Unbalanced braces (preprocessor-split bodies): close what is open so
    // a half-built function is still recorded.
    while (!ctx_.empty()) pop_ctx();
    finalize_refs();
  }

 private:
  struct Ctx {
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
    std::string name;
    bool reset_stmt = true;  ///< false for ctor-init-list braces
  };

  bool in_function() const { return fn_depth_ > 0; }

  const Token* at(std::size_t i) const {
    return i < t_.size() ? &t_[i] : nullptr;
  }

  std::string innermost_class() const {
    for (auto it = ctx_.rbegin(); it != ctx_.rend(); ++it) {
      if (it->kind == Ctx::kClass) return it->name;
    }
    return {};
  }

  Ctx::Kind innermost_scope_kind() const {
    if (ctx_.empty()) return Ctx::kNamespace;  // top level
    return ctx_.back().kind;
  }

  /// Scope kind that governs declaration statements: the innermost
  /// namespace/class/function, looking through plain blocks.
  Ctx::Kind decl_scope() const {
    if (in_function()) return Ctx::kFunction;
    for (auto it = ctx_.rbegin(); it != ctx_.rend(); ++it) {
      if (it->kind != Ctx::kBlock) return it->kind;
    }
    return Ctx::kNamespace;
  }

  // --- brace classification ------------------------------------------------

  void open_brace() {
    Ctx ctx = classify_brace();
    if (ctx.kind == Ctx::kFunction && !in_function()) {
      cur_ = FunctionInfo{};
      cur_.name = ctx.name;
      cur_.line = t_[i_].line;
      if (const auto pos = ctx.name.rfind("::"); pos != std::string::npos) {
        cur_.cls = ctx.name.substr(0, pos);
      } else {
        cur_.cls = innermost_class();
        if (!cur_.cls.empty()) cur_.name = cur_.cls + "::" + cur_.name;
      }
      cur_idents_.clear();
      fn_depth_ = 1;
    } else if (in_function()) {
      ++fn_depth_;
      if (ctx.kind == Ctx::kFunction) ctx.kind = Ctx::kBlock;  // lambda etc.
    }
    if (ctx.reset_stmt) {
      // A '{'-terminated statement can still declare (brace-init).
      analyze_statement(stmt_begin_, i_, /*brace_terminated=*/true);
      stmt_begin_ = i_ + 1;
    }
    ctx_.push_back(ctx);
  }

  void close_brace() {
    if (!ctx_.empty()) pop_ctx();
    stmt_begin_ = i_ + 1;
  }

  void pop_ctx() {
    const Ctx ctx = ctx_.back();
    ctx_.pop_back();
    if (in_function()) {
      --fn_depth_;
      // Guards acquired in the closed block are released.
      const auto depth = static_cast<int>(ctx_.size());
      held_.erase(std::remove_if(held_.begin(), held_.end(),
                                 [&](const Held& h) {
                                   return h.depth > depth && h.depth >= 0;
                                 }),
                  held_.end());
      if (fn_depth_ == 0) {
        held_.clear();
        tu_.functions.push_back(std::move(cur_));
        fn_ident_lines_.push_back(std::move(cur_idents_));
        cur_idents_.clear();
      }
    }
  }

  /// Decide what the '{' at i_ opens, from the statement tokens before it.
  Ctx classify_brace() {
    const std::size_t b = stmt_begin_;
    const std::size_t e = i_;
    if (b >= e) return {Ctx::kBlock, {}, true};

    bool saw_namespace = false, saw_type_kw = false, saw_eq = false;
    bool saw_operator = false;
    int paren = 0;
    for (std::size_t k = b; k < e; ++k) {
      if (t_[k].kind != Token::kIdent) {
        if (t_[k].text == "(") ++paren;
        else if (t_[k].text == ")") --paren;
        // A depth-0 assignment means "not a function definition" — but only
        // a real "=": the lexer splits "==" / "<=" / ... into single-char
        // puncts, and default arguments live at paren depth >= 1.
        if (t_[k].text == "=" && !saw_operator && paren == 0) {
          const bool prev_op =
              k > b && t_[k - 1].kind == Token::kPunct &&
              t_[k - 1].text != ")" && t_[k - 1].text != "]" &&
              t_[k - 1].text != "::";
          const bool next_eq = k + 1 < e && t_[k + 1].text == "=";
          // "typename = ..." / "class = ..." is a template default argument
          // (enable_if-style SFINAE headers), not a variable initializer.
          const bool tmpl_default =
              k > b && t_[k - 1].kind == Token::kIdent &&
              (t_[k - 1].text == "typename" || t_[k - 1].text == "class");
          if (!prev_op && !next_eq && !tmpl_default) saw_eq = true;
        }
        continue;
      }
      if (t_[k].text == "namespace") saw_namespace = true;
      if (t_[k].text == "class" || t_[k].text == "struct" ||
          t_[k].text == "union" || t_[k].text == "enum") {
        saw_type_kw = true;
      }
      if (t_[k].text == "operator") saw_operator = true;
    }
    if (saw_namespace) {
      std::string name;
      for (std::size_t k = e; k-- > b;) {
        if (t_[k].kind == Token::kIdent && t_[k].text != "namespace") {
          name = std::string(t_[k].text);
          break;
        }
      }
      return {Ctx::kNamespace, std::move(name), true};
    }
    if (saw_type_kw) {
      // Name = identifier after the last class/struct/union/enum keyword
      // (skipping "final" and base lists).
      std::string name;
      for (std::size_t k = b; k < e; ++k) {
        if (t_[k].kind == Token::kIdent &&
            (t_[k].text == "class" || t_[k].text == "struct" ||
             t_[k].text == "union" || t_[k].text == "enum")) {
          for (std::size_t m = k + 1; m < e; ++m) {
            if (t_[m].kind == Token::kIdent && t_[m].text != "final" &&
                t_[m].text != "alignas" && t_[m].text != "class") {
              name = std::string(t_[m].text);
              break;
            }
            if (t_[m].kind == Token::kPunct && t_[m].text == ":") break;
          }
        }
      }
      return {Ctx::kClass, std::move(name), true};
    }
    if (saw_eq && !saw_operator) return {Ctx::kBlock, {}, true};

    // Function definition: first depth-0 "(" preceded by a plausible name.
    int depth = 0;
    std::size_t open = 0, name_idx = 0;
    for (std::size_t k = b; k < e; ++k) {
      if (t_[k].kind != Token::kPunct) continue;
      if (t_[k].text == "(") {
        if (depth == 0 && open == 0 && k > b &&
            t_[k - 1].kind == Token::kIdent &&
            tables::kNonCalleeKeywords.count(t_[k - 1].text) == 0 &&
            tables::kGuardTypes.count(t_[k - 1].text) == 0) {
          open = k;
          name_idx = k - 1;
        }
        ++depth;
      } else if (t_[k].text == ")") {
        --depth;
      }
    }
    if (open == 0) return {Ctx::kBlock, {}, true};

    // Matching ")" of the parameter list.
    depth = 0;
    std::size_t close = 0;
    for (std::size_t k = open; k < e; ++k) {
      if (t_[k].kind != Token::kPunct) continue;
      if (t_[k].text == "(") ++depth;
      else if (t_[k].text == ")" && --depth == 0) {
        close = k;
        break;
      }
    }
    if (close == 0) return {Ctx::kBlock, {}, true};

    // Ctor-init-list brace-init ("Foo::Foo() : a_{1} {"): a depth-0 ":"
    // after the parameter list while the token before "{" is a plain
    // identifier means this "{" initializes a member, not the body. Keep
    // the statement accumulating so the real body brace still sees the
    // full header.
    bool colon_after = false;
    depth = 0;
    for (std::size_t k = close + 1; k < e; ++k) {
      if (t_[k].kind != Token::kIdent) {
        if (t_[k].text == "(") ++depth;
        else if (t_[k].text == ")") --depth;
        else if (t_[k].text == ":" && depth == 0) colon_after = true;
      }
    }
    const Token& before = t_[e - 1];
    if (colon_after && before.kind == Token::kIdent &&
        kFnTrailing.count(before.text) == 0) {
      return {Ctx::kBlock, {}, false};
    }

    // Qualified name walk-back: A::B::name (also ~name).
    std::string name(t_[name_idx].text);
    std::size_t k = name_idx;
    while (k >= 2 && t_[k - 1].kind == Token::kPunct &&
           t_[k - 1].text == "::" && t_[k - 2].kind == Token::kIdent) {
      name = std::string(t_[k - 2].text) + "::" + name;
      k -= 2;
    }
    if (k >= 1 && t_[k - 1].kind == Token::kPunct && t_[k - 1].text == "~") {
      name = "~" + name;
    }
    return {Ctx::kFunction, std::move(name), true};
  }

  // --- statements ----------------------------------------------------------

  /// Analyze the statement tokens [b, e). `brace_terminated` statements end
  /// at a "{" (brace-init declarations).
  void analyze_statement(std::size_t b, std::size_t e, bool brace_terminated) {
    // Strip leading access specifiers ("public :").
    while (b + 1 < e && t_[b].kind == Token::kIdent &&
           (t_[b].text == "public" || t_[b].text == "private" ||
            t_[b].text == "protected") &&
           t_[b + 1].text == ":") {
      b += 2;
    }
    if (b >= e) return;

    if (in_function()) {
      analyze_guard(b, e);
      if (!brace_terminated) analyze_taint_assign(b, e);
    }
    analyze_decl(b, e);
  }

  /// RAII guard acquisition: "LockGuard g(mu_)" / "std::lock_guard<...> l(m)".
  void analyze_guard(std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      if (t_[k].kind != Token::kIdent ||
          tables::kGuardTypes.count(t_[k].text) == 0) {
        continue;
      }
      // Skip template arguments, then the guard variable name, then "(".
      std::size_t m = k + 1;
      if (m < e && t_[m].text == "<") {
        int ang = 0;
        for (; m < e; ++m) {
          if (t_[m].text == "<") ++ang;
          else if (t_[m].text == ">" && --ang == 0) {
            ++m;
            break;
          }
        }
      }
      if (m < e && t_[m].kind == Token::kIdent) ++m;  // guard variable
      if (m >= e || t_[m].text != "(") continue;
      // Mutex token: last identifier of the first constructor argument.
      int depth = 0;
      std::string mutex_tok;
      for (std::size_t a = m; a < e; ++a) {
        if (t_[a].text == "(") {
          ++depth;
        } else if (t_[a].text == ")") {
          if (--depth == 0) break;
        } else if (t_[a].text == "," && depth == 1) {
          break;
        } else if (t_[a].kind == Token::kIdent) {
          mutex_tok = std::string(t_[a].text);
        }
      }
      if (mutex_tok.empty()) continue;
      record_acquire(mutex_tok, t_[k].line,
                     /*depth=*/static_cast<int>(ctx_.size()));
      return;
    }
  }

  /// "var = <rhs with calls or primitives>" — local taint propagation.
  void analyze_taint_assign(std::size_t b, std::size_t e) {
    // Find a plain "=" at paren depth 0 (not ==, <=, +=, ...).
    int depth = 0;
    std::size_t eq = 0;
    for (std::size_t k = b; k < e; ++k) {
      if (t_[k].text == "(") ++depth;
      else if (t_[k].text == ")") --depth;
      else if (t_[k].text == "=" && depth == 0) {
        const bool prev_op =
            k > b && t_[k - 1].kind == Token::kPunct &&
            t_[k - 1].text != ")" && t_[k - 1].text != "]" &&
            t_[k - 1].text != "::";
        const bool next_eq = k + 1 < e && t_[k + 1].text == "=";
        if (!prev_op && !next_eq) {
          eq = k;
          break;
        }
        if (next_eq) ++k;
      }
    }
    if (eq == 0 || eq <= b) return;
    if (t_[eq - 1].kind != Token::kIdent) return;
    TaintAssign ta;
    ta.var = std::string(t_[eq - 1].text);
    ta.line = t_[eq - 1].line;
    for (std::size_t k = eq + 1; k < e; ++k) {
      if (t_[k].kind != Token::kIdent) continue;
      const bool called = k + 1 < e && t_[k + 1].text == "(";
      if (tables::kD1TypeIdents.count(t_[k].text) != 0 ||
          (called && tables::kD1CallIdents.count(t_[k].text) != 0)) {
        ta.direct_source = true;
      } else if (called && tables::kNonCalleeKeywords.count(t_[k].text) == 0) {
        ta.from_calls.push_back(std::string(t_[k].text));
      }
    }
    if (ta.direct_source || !ta.from_calls.empty()) {
      cur_.taints.push_back(std::move(ta));
    }
  }

  /// Variable declarations: mutable statics (E1 subjects) and mutex objects
  /// (L1 nodes), scoped by the enclosing context.
  void analyze_decl(std::size_t b, std::size_t e) {
    bool has_static = false, has_tl = false, has_paren = false;
    int angle = 0;
    bool angle_bad = false;
    std::vector<std::size_t> idents;
    for (std::size_t k = b; k < e; ++k) {
      if (t_[k].kind == Token::kPunct) {
        if (t_[k].text == "(") has_paren = true;
        // Template arguments balance their angles; a comparison ("w <
        // workers_" in a mis-split for-header) does not.
        else if (t_[k].text == "<") ++angle;
        else if (t_[k].text == ">" && --angle < 0) angle_bad = true;
        continue;
      }
      if (kDeclSkip.count(t_[k].text) != 0) return;
      if (t_[k].text == "static") has_static = true;
      else if (t_[k].text == "thread_local") has_tl = true;
      else idents.push_back(k);
    }
    if (has_paren || angle != 0 || angle_bad || idents.size() < 2) return;

    const Ctx::Kind scope = decl_scope();
    if (scope == Ctx::kFunction && !has_static && !has_tl) return;
    if (scope == Ctx::kClass && !has_static && !has_tl) {
      // Instance members are per-object state, not escaping statics — but a
      // member mutex is an L1 node.
      if (!decl_mentions_mutex(idents)) return;
    }

    // Declared name: last identifier before "=" (if any), else last overall.
    std::size_t name_idx = idents.back();
    for (std::size_t k = b; k < e; ++k) {
      if (t_[k].kind == Token::kPunct && t_[k].text == "=") {
        for (auto it = idents.rbegin(); it != idents.rend(); ++it) {
          if (*it < k) {
            name_idx = *it;
            break;
          }
        }
        break;
      }
    }
    std::string name(t_[name_idx].text);
    // Type hint: last type identifier before the name.
    std::string type_hint;
    for (const auto k : idents) {
      if (k >= name_idx) break;
      if (kDeclModifiers.count(t_[k].text) == 0) {
        type_hint = std::string(t_[k].text);
      }
    }
    if (type_hint.empty()) return;  // lone identifier, not a declaration

    if (tables::kMutexTypeIdents.count(type_hint) != 0) {
      MutexDecl md;
      md.name = std::move(name);
      md.line = t_[name_idx].line;
      md.is_member = scope == Ctx::kClass;
      if (md.is_member) md.cls = innermost_class();
      tu_.mutexes.push_back(std::move(md));
      return;
    }
    if (scope == Ctx::kClass && !has_static && !has_tl) return;
    MutableStatic ms;
    ms.name = std::move(name);
    ms.line = t_[name_idx].line;
    ms.is_thread_local = has_tl;
    ms.is_function_local = scope == Ctx::kFunction;
    ms.type_hint = std::move(type_hint);
    tu_.statics.push_back(std::move(ms));
  }

  // --- function-body token scan -------------------------------------------

  void scan_body_token() {
    const Token& tok = t_[i_];
    // Every identifier is a potential static reference.
    cur_idents_.emplace(std::string(tok.text), tok.line);

    const Token* nx = at(i_ + 1);
    const bool called = nx != nullptr && nx->text == "(";

    scan_cost_seed(called);

    if (tables::kD1TypeIdents.count(tok.text) != 0) {
      cur_.sources.push_back({std::string(tok.text), tok.line});
      return;
    }
    if (!called) {
      // `&ident` (not a call): a function pointer taken — a deferred call
      // edge for B1/B2 reachability (SmallFn-stored callbacks). A preceding
      // identifier / ')' / ']' means binary bitwise-and, not address-of.
      const Token* amp = at(i_ - 1);
      if (amp != nullptr && amp->kind == Token::kPunct && amp->text == "&") {
        const Token* before = at(i_ - 2);
        const bool binary =
            before != nullptr &&
            (before->kind == Token::kIdent || before->text == ")" ||
             before->text == "]");
        if (!binary) cur_.fn_refs.push_back({std::string(tok.text), tok.line});
      }
      return;
    }

    if (tables::kD1CallIdents.count(tok.text) != 0 && free_call_at(i_)) {
      cur_.sources.push_back({std::string(tok.text), tok.line});
    }
    if (tables::kLaneBindCalls.count(tok.text) != 0) cur_.binds_lane = true;

    const Token* pv = at(i_ - 1);
    const bool member_call =
        pv != nullptr && (pv->text == "." || pv->text == "->");

    // Manual lock()/unlock() on a named mutex.
    if (member_call && (tok.text == "lock" || tok.text == "unlock") &&
        i_ >= 2 && t_[i_ - 2].kind == Token::kIdent) {
      const std::string m(t_[i_ - 2].text);
      if (tok.text == "lock") {
        record_acquire(m, tok.line, /*depth=*/-1);
      } else {
        held_.erase(std::remove_if(held_.begin(), held_.end(),
                                   [&](const Held& h) {
                                     return h.mutex == m && h.depth == -1;
                                   }),
                    held_.end());
      }
      return;
    }

    if (tables::kSinkCalls.count(tok.text) != 0) scan_sink(tok, member_call);

    if (tables::kNonCalleeKeywords.count(tok.text) == 0 &&
        tables::kGuardTypes.count(tok.text) == 0) {
      CallSite cs;
      cs.callee = std::string(tok.text);
      cs.line = tok.line;
      cs.held = held_names();
      cur_.calls.push_back(std::move(cs));
    }
  }

  /// B1/B2 seed extraction: OS-blocking / heap-allocating leaf sites.
  void scan_cost_seed(bool called) {
    const Token& tok = t_[i_];
    const Token* pv = at(i_ - 1);
    const Token* qual = at(i_ - 2);
    const bool std_qualified = pv != nullptr && pv->text == "::" &&
                               qual != nullptr &&
                               qual->kind == Token::kIdent &&
                               qual->text == "std";
    // B2: raw `new`. Placement `new (addr) T` constructs into storage
    // someone else owns — the arena idiom itself — and "#include <new>" is
    // a header name, not an expression.
    if (tok.text == "new") {
      const Token* nx = at(i_ + 1);
      if (nx != nullptr && nx->text == "(") return;
      if (pv != nullptr && pv->text == "<" && nx != nullptr &&
          nx->text == ">") {
        return;
      }
      cur_.allocating.push_back({"new", tok.line});
      return;
    }
    if (std_qualified) {
      // B1: std:: blocking entities and std:: lock guards. argolite's
      // cooperative primitives (abt::Mutex, abt::LockGuard) are not std-
      // qualified and never seed.
      if (tables::kD3StdIdents.count(tok.text) != 0 ||
          tables::kGuardTypes.count(tok.text) != 0) {
        cur_.blocking.push_back({"std::" + std::string(tok.text), tok.line});
        return;
      }
      if (tables::kAllocStdIdents.count(tok.text) != 0) {
        cur_.allocating.push_back({"std::" + std::string(tok.text), tok.line});
        return;
      }
    }
    if (!called) return;
    if (tables::kD3CallIdents.count(tok.text) != 0 && free_call_at(i_)) {
      cur_.blocking.push_back({std::string(tok.text) + "()", tok.line});
      return;
    }
    if (tables::kAllocCallIdents.count(tok.text) != 0 && free_call_at(i_)) {
      cur_.allocating.push_back({std::string(tok.text) + "()", tok.line});
    }
  }

  /// Virtual-time scheduling sink: record the argument identifiers/calls.
  void scan_sink(const Token& tok, bool member_call) {
    (void)member_call;
    SinkCall sc;
    sc.name = std::string(tok.text);
    sc.line = tok.line;
    int depth = 0;
    int commas = 0;
    bool any_tokens = false;
    for (std::size_t k = i_ + 1; k < t_.size(); ++k) {
      if (t_[k].kind == Token::kPunct) {
        if (t_[k].text == "(") ++depth;
        else if (t_[k].text == ")") {
          if (--depth == 0) break;
        } else if (t_[k].text == "," && depth == 1) {
          ++commas;
        }
        continue;
      }
      if (depth < 1) break;
      any_tokens = true;
      const bool called = k + 1 < t_.size() && t_[k + 1].text == "(";
      if (called) {
        if (tables::kNonCalleeKeywords.count(t_[k].text) == 0) {
          sc.arg_calls.push_back(std::string(t_[k].text));
        }
      } else {
        sc.arg_idents.push_back(std::string(t_[k].text));
      }
    }
    sc.args = any_tokens ? commas + 1 : 0;
    cur_.sinks.push_back(std::move(sc));
  }

  bool free_call_at(std::size_t i) const {
    const Token* pv = at(i - 1);
    if (pv == nullptr) return true;
    if (pv->text == "." || pv->text == "->") return false;
    if (pv->text == "::") {
      const Token* qual = at(i - 2);
      static const std::set<std::string_view> kNonQualifiers = {
          "return", "co_return", "co_await", "co_yield", "throw",
          "else",   "do",        "case",     "default",
      };
      return qual == nullptr || qual->kind != Token::kIdent ||
             qual->text == "std" || kNonQualifiers.count(qual->text) != 0;
    }
    return true;
  }

  // --- held-mutex bookkeeping ---------------------------------------------

  struct Held {
    std::string mutex;
    int depth;  ///< ctx depth of the owning guard; -1 for manual lock()
  };

  std::vector<std::string> held_names() const {
    std::vector<std::string> out;
    out.reserve(held_.size());
    for (const auto& h : held_) out.push_back(h.mutex);
    return out;
  }

  void record_acquire(const std::string& mutex, int line, int depth) {
    AcquireSite a;
    a.mutex = mutex;
    a.line = line;
    a.held = held_names();
    cur_.acquires.push_back(std::move(a));
    held_.push_back({mutex, depth});
  }

  bool decl_mentions_mutex(const std::vector<std::size_t>& idents) const {
    for (const auto k : idents) {
      if (tables::kMutexTypeIdents.count(t_[k].text) != 0) return true;
    }
    return false;
  }

  /// Intersect each function's identifier set with the TU's statics.
  void finalize_refs() {
    std::set<std::string> names;
    for (const auto& s : tu_.statics) names.insert(s.name);
    if (names.empty()) return;
    for (std::size_t f = 0; f < tu_.functions.size(); ++f) {
      for (const auto& [ident, line] : fn_ident_lines_[f]) {
        if (names.count(ident) != 0) {
          tu_.functions[f].static_refs.push_back({ident, line});
        }
      }
    }
  }

  const std::vector<Token>& t_;
  TuIndex& tu_;
  std::size_t i_ = 0;
  std::size_t stmt_begin_ = 0;
  std::vector<Ctx> ctx_;
  int fn_depth_ = 0;
  FunctionInfo cur_;
  std::map<std::string, int> cur_idents_;  ///< ident -> first line
  std::vector<std::map<std::string, int>> fn_ident_lines_;
  std::vector<Held> held_;
};

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\t') out += "\\t";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string unesc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      if (s[i] == 't') out += '\t';
      else if (s[i] == 'n') out += '\n';
      else out += s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    out += v[i];
  }
  return out;
}

std::vector<std::string> split_commas(std::string_view s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size() && !s.empty()) {
    auto c = s.find(',', pos);
    if (c == std::string_view::npos) c = s.size();
    if (c > pos) out.emplace_back(s.substr(pos, c - pos));
    pos = c + 1;
    if (pos > s.size()) break;
  }
  return out;
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    auto tb = line.find('\t', pos);
    if (tb == std::string_view::npos) tb = line.size();
    out.push_back(line.substr(pos, tb - pos));
    pos = tb + 1;
    if (tb == line.size()) break;
  }
  return out;
}

long to_long(std::string_view s) {
  long v = 0;
  bool neg = false;
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') {
    neg = true;
    ++i;
  }
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) break;
    v = v * 10 + (s[i] - '0');
  }
  return neg ? -v : v;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::uint64_t from_hex64(std::string_view s) {
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
  }
  return v;
}

}  // namespace

std::string serialize_tu_index(const TuIndex& tu) {
  std::ostringstream os;
  os << kCacheMagic << '\n';
  os << "P\t" << esc(tu.path) << '\t' << esc(tu.norm) << '\t'
     << hex64(tu.self_hash) << '\n';
  for (const auto& [dep, hash] : tu.deps) {
    os << "D\t" << esc(dep) << '\t' << hex64(hash) << '\n';
  }
  for (const auto& inc : tu.raw_includes) os << "I\t" << esc(inc) << '\n';
  for (const auto& [line, rule] : tu.allows) {
    os << "A\t" << line << '\t' << rule << '\n';
  }
  for (const auto& s : tu.statics) {
    os << "S\t" << esc(s.name) << '\t' << s.line << '\t'
       << (s.is_thread_local ? 1 : 0) << '\t' << (s.is_function_local ? 1 : 0)
       << '\t' << esc(s.type_hint) << '\n';
  }
  for (const auto& m : tu.mutexes) {
    os << "M\t" << esc(m.name) << '\t' << esc(m.cls) << '\t' << m.line << '\t'
       << (m.is_member ? 1 : 0) << '\n';
  }
  auto put_regs = [&](char tag, const std::vector<NameReg>& regs) {
    for (const auto& r : regs) {
      os << tag << '\t' << esc(r.name) << '\t' << r.line << '\t'
         << (r.dynamic ? 1 : 0) << '\n';
    }
  };
  put_regs('v', tu.pvar_regs);
  put_regs('x', tu.span_regs);
  put_regs('y', tu.rule_regs);
  for (const auto& fn : tu.functions) {
    os << "F\t" << esc(fn.name) << '\t' << esc(fn.cls) << '\t' << fn.line
       << '\t' << (fn.binds_lane ? 1 : 0) << '\n';
    for (const auto& c : fn.calls) {
      os << "c\t" << esc(c.callee) << '\t' << c.line << '\t' << join(c.held)
         << '\n';
    }
    for (const auto& a : fn.acquires) {
      os << "a\t" << esc(a.mutex) << '\t' << a.line << '\t' << join(a.held)
         << '\n';
    }
    for (const auto& r : fn.static_refs) {
      os << "r\t" << esc(r.name) << '\t' << r.line << '\n';
    }
    for (const auto& s : fn.sources) {
      os << "s\t" << esc(s.primitive) << '\t' << s.line << '\n';
    }
    for (const auto& s : fn.blocking) {
      os << "b\t" << esc(s.primitive) << '\t' << s.line << '\n';
    }
    for (const auto& s : fn.allocating) {
      os << "B\t" << esc(s.primitive) << '\t' << s.line << '\n';
    }
    for (const auto& r : fn.fn_refs) {
      os << "g\t" << esc(r.name) << '\t' << r.line << '\n';
    }
    for (const auto& k : fn.sinks) {
      os << "k\t" << esc(k.name) << '\t' << k.line << '\t' << k.args << '\t'
         << join(k.arg_idents) << '\t' << join(k.arg_calls) << '\n';
    }
    for (const auto& ta : fn.taints) {
      os << "t\t" << esc(ta.var) << '\t' << ta.line << '\t'
         << (ta.direct_source ? 1 : 0) << '\t' << join(ta.from_calls) << '\n';
    }
  }
  for (const auto& f : tu.tu_findings) {
    os << "f\t" << rule_id(f.rule) << '\t' << esc(f.file) << '\t' << f.line
       << '\t' << esc(f.key) << '\t' << esc(f.message) << '\n';
  }
  return os.str();
}

bool deserialize_tu_index(std::string_view data, TuIndex& out) {
  std::size_t pos = 0;
  bool first = true;
  FunctionInfo* fn = nullptr;
  while (pos < data.size()) {
    auto eol = data.find('\n', pos);
    if (eol == std::string_view::npos) eol = data.size();
    const std::string_view line = data.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (first) {
      if (line != kCacheMagic) return false;
      first = false;
      continue;
    }
    const auto f = split_tabs(line);
    if (f.empty()) continue;
    const std::string_view tag = f[0];
    if (tag == "P" && f.size() >= 4) {
      out.path = unesc(f[1]);
      out.norm = unesc(f[2]);
      out.self_hash = from_hex64(f[3]);
    } else if (tag == "D" && f.size() >= 3) {
      out.deps.emplace_back(unesc(f[1]), from_hex64(f[2]));
    } else if (tag == "I" && f.size() >= 2) {
      out.raw_includes.push_back(unesc(f[1]));
    } else if (tag == "A" && f.size() >= 3) {
      out.allows.emplace_back(static_cast<int>(to_long(f[1])),
                              std::string(f[2]));
    } else if (tag == "S" && f.size() >= 6) {
      MutableStatic s;
      s.name = unesc(f[1]);
      s.line = static_cast<int>(to_long(f[2]));
      s.is_thread_local = f[3] == "1";
      s.is_function_local = f[4] == "1";
      s.type_hint = unesc(f[5]);
      out.statics.push_back(std::move(s));
    } else if (tag == "M" && f.size() >= 5) {
      MutexDecl m;
      m.name = unesc(f[1]);
      m.cls = unesc(f[2]);
      m.line = static_cast<int>(to_long(f[3]));
      m.is_member = f[4] == "1";
      out.mutexes.push_back(std::move(m));
    } else if (tag == "F" && f.size() >= 5) {
      FunctionInfo info;
      info.name = unesc(f[1]);
      info.cls = unesc(f[2]);
      info.line = static_cast<int>(to_long(f[3]));
      info.binds_lane = f[4] == "1";
      out.functions.push_back(std::move(info));
      fn = &out.functions.back();
    } else if (tag == "c" && f.size() >= 4 && fn != nullptr) {
      fn->calls.push_back({unesc(f[1]), static_cast<int>(to_long(f[2])),
                           split_commas(f[3])});
    } else if (tag == "a" && f.size() >= 4 && fn != nullptr) {
      fn->acquires.push_back({unesc(f[1]), static_cast<int>(to_long(f[2])),
                              split_commas(f[3])});
    } else if (tag == "r" && f.size() >= 3 && fn != nullptr) {
      fn->static_refs.push_back({unesc(f[1]), static_cast<int>(to_long(f[2]))});
    } else if (tag == "s" && f.size() >= 3 && fn != nullptr) {
      fn->sources.push_back({unesc(f[1]), static_cast<int>(to_long(f[2]))});
    } else if (tag == "b" && f.size() >= 3 && fn != nullptr) {
      fn->blocking.push_back({unesc(f[1]), static_cast<int>(to_long(f[2]))});
    } else if (tag == "B" && f.size() >= 3 && fn != nullptr) {
      fn->allocating.push_back({unesc(f[1]), static_cast<int>(to_long(f[2]))});
    } else if (tag == "g" && f.size() >= 3 && fn != nullptr) {
      fn->fn_refs.push_back({unesc(f[1]), static_cast<int>(to_long(f[2]))});
    } else if ((tag == "v" || tag == "x" || tag == "y") && f.size() >= 4) {
      NameReg r;
      r.name = unesc(f[1]);
      r.line = static_cast<int>(to_long(f[2]));
      r.dynamic = f[3] == "1";
      if (tag == "v") out.pvar_regs.push_back(std::move(r));
      else if (tag == "x") out.span_regs.push_back(std::move(r));
      else out.rule_regs.push_back(std::move(r));
    } else if (tag == "k" && f.size() >= 6 && fn != nullptr) {
      SinkCall sc;
      sc.name = unesc(f[1]);
      sc.line = static_cast<int>(to_long(f[2]));
      sc.args = static_cast<int>(to_long(f[3]));
      sc.arg_idents = split_commas(f[4]);
      sc.arg_calls = split_commas(f[5]);
      fn->sinks.push_back(std::move(sc));
    } else if (tag == "t" && f.size() >= 5 && fn != nullptr) {
      TaintAssign ta;
      ta.var = unesc(f[1]);
      ta.line = static_cast<int>(to_long(f[2]));
      ta.direct_source = f[3] == "1";
      ta.from_calls = split_commas(f[4]);
      fn->taints.push_back(std::move(ta));
    } else if (tag == "f" && f.size() >= 6) {
      Finding fd;
      if (!rule_from_id(f[1], fd.rule)) return false;
      fd.file = unesc(f[2]);
      fd.line = static_cast<int>(to_long(f[3]));
      fd.key = unesc(f[4]);
      fd.message = unesc(f[5]);
      out.tu_findings.push_back(std::move(fd));
    }
  }
  return !first;
}

// ---------------------------------------------------------------------------
// build_tu_index
// ---------------------------------------------------------------------------

TuIndex build_tu_index(std::string_view path, std::string_view content) {
  TuIndex tu;
  tu.path = std::string(path);
  tu.norm = normalize(path);
  tu.self_hash = fnv1a64(content);
  tu.raw_includes = extract_includes(content);

  // P1 registrations: string-literal-bearing calls (the main lexer strips
  // strings, so this is a separate raw-text scan).
  for (const auto& sc : extract_string_calls(content)) {
    if (sc.func == "add" && sc.brace_init) {
      tu.pvar_regs.push_back({sc.literal, sc.line, sc.concat});
    } else if (sc.func == "record_action_span" && !sc.brace_init) {
      tu.span_regs.push_back({sc.literal, sc.line, sc.concat});
    } else if (sc.func == "add_rule" && !sc.brace_init) {
      tu.rule_regs.push_back({sc.literal, sc.line, sc.concat});
    }
  }

  const Lexed lx = lex(content);
  IndexScanner scanner(lx, tu);
  scanner.run();

  // Expand allow() coverage: an annotation covers its own line and the
  // first code line after it (matching the per-TU "same line or directly
  // above" semantics for findings reported at declaration/use sites).
  std::set<int> code_lines;
  for (const auto& tok : lx.tokens) code_lines.insert(tok.line);
  for (const auto& [line, notes] : lx.allows) {
    for (const auto& note : notes) {
      tu.allows.emplace_back(line, note.rule);
      auto it = code_lines.upper_bound(line);
      if (it != code_lines.end()) tu.allows.emplace_back(*it, note.rule);
    }
  }
  std::sort(tu.allows.begin(), tu.allows.end());
  tu.allows.erase(std::unique(tu.allows.begin(), tu.allows.end()),
                  tu.allows.end());

  tu.tu_findings = lint_source(path, content);
  return tu;
}

// ---------------------------------------------------------------------------
// run_index: cache + parallel driver
// ---------------------------------------------------------------------------

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

std::vector<TuIndex> run_index(std::vector<std::string> files,
                               const IndexOptions& options,
                               IndexStats* stats) {
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  const std::size_t n = files.size();

  std::vector<std::string> contents(n);
  std::vector<bool> readable(n, true);
  std::map<std::string, std::uint64_t> hash_by_norm;
  std::map<std::string, std::size_t> index_by_norm;
  std::vector<std::string> norms(n);

  for (std::size_t i = 0; i < n; ++i) {
    norms[i] = normalize(files[i]);
    readable[i] = read_file(files[i], contents[i]);
    hash_by_norm[norms[i]] = readable[i] ? fnv1a64(contents[i]) : 0;
    index_by_norm[norms[i]] = i;
  }

  // Direct include graph over the file set (resolved against the including
  // file's directory, then each root).
  auto resolve_include = [&](const std::string& from,
                             const std::string& inc) -> std::string {
    std::vector<std::string> candidates;
    const fs::path dir = fs::path(from).parent_path();
    candidates.push_back(normalize((dir / inc).lexically_normal().string()));
    for (const auto& root : options.roots) {
      candidates.push_back(
          normalize((fs::path(root) / inc).lexically_normal().string()));
    }
    for (const auto& c : candidates) {
      if (hash_by_norm.count(c) != 0) return c;
    }
    return {};
  };

  std::vector<std::vector<std::size_t>> direct_deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!readable[i]) continue;
    for (const auto& inc : extract_includes(contents[i])) {
      const std::string resolved = resolve_include(norms[i], inc);
      if (resolved.empty()) continue;
      const auto it = index_by_norm.find(resolved);
      if (it != index_by_norm.end() && it->second != i) {
        direct_deps[i].push_back(it->second);
      }
    }
  }

  // Transitive closure per file (the graphs are small; BFS each).
  auto closure_of = [&](std::size_t i) {
    std::vector<std::size_t> order;
    std::set<std::size_t> seen;
    std::vector<std::size_t> work(direct_deps[i].begin(),
                                  direct_deps[i].end());
    while (!work.empty()) {
      const std::size_t d = work.back();
      work.pop_back();
      if (!seen.insert(d).second) continue;
      order.push_back(d);
      for (const auto nd : direct_deps[d]) work.push_back(nd);
    }
    std::sort(order.begin(), order.end());
    return order;
  };

  // Diff-aware mode: the analysis set is the changed files (matched by
  // normalized-path suffix) plus every reverse transitive include dependent.
  // Files outside the set are loaded from cache *without* hash validation —
  // their content is known-unchanged relative to the diff base, so a stale
  // hash only means the base itself moved (handled by the periodic full run).
  std::set<std::size_t> analysis_set;
  if (options.diff_mode) {
    std::vector<std::vector<std::size_t>> rdeps(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto d : direct_deps[i]) rdeps[d].push_back(i);
    }
    std::vector<std::size_t> work;
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& c : options.changed) {
        const std::string cn = normalize(c);
        if (norms[i] == cn ||
            (norms[i].size() > cn.size() + 1 &&
             norms[i].compare(norms[i].size() - cn.size() - 1, cn.size() + 1,
                              "/" + cn) == 0)) {
          work.push_back(i);
          break;
        }
      }
    }
    while (!work.empty()) {
      const std::size_t d = work.back();
      work.pop_back();
      if (!analysis_set.insert(d).second) continue;
      for (const auto rd : rdeps[d]) work.push_back(rd);
    }
  }

  const bool caching = !options.cache_dir.empty();
  if (caching) {
    std::error_code ec;
    fs::create_directories(options.cache_dir, ec);
  }
  auto cache_path = [&](const std::string& norm) {
    return options.cache_dir + "/" + hex64(fnv1a64(norm)) + ".tui";
  };

  std::vector<TuIndex> out(n);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> hits{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      if (!readable[i]) {
        TuIndex tu;
        tu.path = files[i];
        tu.norm = norms[i];
        tu.tu_findings.push_back({Rule::kAnnotation, files[i], 0,
                                  "cannot open file for linting", {}});
        out[i] = std::move(tu);
        continue;
      }
      if (options.diff_mode && caching && analysis_set.count(i) == 0) {
        // Outside the diff's analysis set: blind cache load, no validation.
        std::string cached;
        TuIndex tu;
        if (read_file(cache_path(norms[i]), cached) &&
            deserialize_tu_index(cached, tu)) {
          tu.path = files[i];
          tu.norm = norms[i];
          tu.from_cache = true;
          hits.fetch_add(1);
          out[i] = std::move(tu);
          continue;
        }
        // No usable cache entry: fall through to a full (re)index.
      }
      if (caching) {
        std::string cached;
        if (read_file(cache_path(norms[i]), cached)) {
          TuIndex tu;
          if (deserialize_tu_index(cached, tu) &&
              tu.self_hash == hash_by_norm[norms[i]]) {
            bool valid = true;
            for (const auto& [dep, hash] : tu.deps) {
              const auto it = hash_by_norm.find(dep);
              if (it == hash_by_norm.end() || it->second != hash) {
                valid = false;
                break;
              }
            }
            if (valid) {
              tu.path = files[i];
              tu.norm = norms[i];
              tu.from_cache = true;
              hits.fetch_add(1);
              out[i] = std::move(tu);
              continue;
            }
          }
        }
      }
      TuIndex tu = build_tu_index(files[i], contents[i]);
      for (const auto d : closure_of(i)) {
        tu.deps.emplace_back(norms[d], hash_by_norm[norms[d]]);
      }
      if (caching) {
        std::ofstream cache(cache_path(norms[i]),
                            std::ios::binary | std::ios::trunc);
        if (cache) cache << serialize_tu_index(tu);
      }
      out[i] = std::move(tu);
    }
  };

  const unsigned jobs =
      std::max(1u, std::min(options.jobs, static_cast<unsigned>(n)));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  if (stats != nullptr) {
    stats->files = n;
    stats->cache_hits = hits.load();
    stats->reindexed = n - stats->cache_hits;
  }
  return out;
}

}  // namespace symlint
