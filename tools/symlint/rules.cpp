#include "rules.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "tables.hpp"

namespace symlint {
namespace {

/// Repo-relative tail of a normalized path ("src/...", "tools/...",
/// "tests/..."): stable across absolute/relative invocation forms.
std::string repo_rel(const std::string& norm) {
  for (const std::string_view prefix : {"src/", "tools/", "tests/"}) {
    std::size_t pos = 0;
    while ((pos = norm.find(prefix, pos)) != std::string::npos) {
      if (pos == 0 || norm[pos - 1] == '/') return norm.substr(pos);
      ++pos;
    }
  }
  return norm;
}

std::string unqualified(const std::string& name) {
  const auto pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

bool allowed(const TuIndex& tu, int line, std::string_view rule) {
  for (const auto& [l, r] : tu.allows) {
    if (l == line && r == rule) return true;
    if (l > line) break;
  }
  return false;
}

struct FnRef {
  std::size_t tu;
  std::size_t fn;
};

class Project {
 public:
  explicit Project(const std::vector<TuIndex>& tus) : tus_(tus) {
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      for (std::size_t fi = 0; fi < tus[ti].functions.size(); ++fi) {
        by_name_[unqualified(tus[ti].functions[fi].name)].push_back({ti, fi});
      }
      for (const auto& m : tus[ti].mutexes) {
        if (m.is_member) {
          member_mutexes_[m.name].insert(m.cls);
        } else {
          global_mutexes_.insert(m.name);
        }
      }
    }
  }

  const std::vector<TuIndex>& tus() const { return tus_; }

  const FunctionInfo& fn(FnRef r) const {
    return tus_[r.tu].functions[r.fn];
  }

  const std::vector<FnRef>* candidates(const std::string& callee) const {
    if (tables::kOpaqueCallees.count(callee) != 0) return nullptr;
    const auto it = by_name_.find(callee);
    return it == by_name_.end() ? nullptr : &it->second;
  }

  /// Project-wide identity of a mutex token acquired inside `owner`.
  std::string mutex_id(const std::string& token, const FunctionInfo& owner,
                       const TuIndex& tu) const {
    const auto mem = member_mutexes_.find(token);
    if (mem != member_mutexes_.end()) {
      const std::string cls = unqualified(owner.cls);
      if (!cls.empty() && mem->second.count(cls) != 0) {
        return cls + "::" + token;
      }
      if (mem->second.size() == 1 && global_mutexes_.count(token) == 0) {
        return *mem->second.begin() + "::" + token;
      }
    }
    if (global_mutexes_.count(token) != 0) return token;
    if (mem != member_mutexes_.end()) {
      return repo_rel(tu.norm) + ":" + token;
    }
    // Unknown declaration (e.g. local mutex): file-local identity.
    return repo_rel(tu.norm) + ":" + token;
  }

 private:
  const std::vector<TuIndex>& tus_;
  std::map<std::string, std::vector<FnRef>> by_name_;
  /// member mutex name -> owning classes; global mutex names merge by name.
  std::map<std::string, std::set<std::string>> member_mutexes_;
  std::set<std::string> global_mutexes_;
};

// ---------------------------------------------------------------------------
// L1: lock-order cycles
// ---------------------------------------------------------------------------

struct LockEdge {
  std::size_t tu = 0;
  std::string file;
  int line = 0;
  std::string fn;
  std::string via;  ///< "" for direct acquisition, else the callee chain note
};

class LockOrder {
 public:
  explicit LockOrder(const Project& p) : p_(p) {}

  std::vector<Finding> run() {
    build_edges();
    return report_cycles();
  }

 private:
  /// Mutex ids a function acquires transitively (memoized; cycles in the
  /// call graph are cut by the in-progress marker).
  const std::set<std::string>& trans_acq(FnRef r) {
    const auto key = std::make_pair(r.tu, r.fn);
    const auto it = trans_.find(key);
    if (it != trans_.end()) return it->second;
    auto [slot, inserted] = trans_.emplace(key, std::set<std::string>{});
    if (!in_progress_.insert(key).second) return slot->second;
    const FunctionInfo& f = p_.fn(r);
    const TuIndex& tu = p_.tus()[r.tu];
    std::set<std::string> acc;
    for (const auto& a : f.acquires) acc.insert(p_.mutex_id(a.mutex, f, tu));
    for (const auto& c : f.calls) {
      const auto* cands = p_.candidates(c.callee);
      if (cands == nullptr) continue;
      for (const auto& cand : *cands) {
        const auto& sub = trans_acq(cand);
        acc.insert(sub.begin(), sub.end());
      }
    }
    in_progress_.erase(key);
    auto& out = trans_[key];  // re-find: recursion may have rehashed
    out = std::move(acc);
    return out;
  }

  void add_edge(const std::string& from, const std::string& to,
                LockEdge edge) {
    edges_[from].emplace(to, std::move(edge));
  }

  void build_edges() {
    const auto& tus = p_.tus();
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      const TuIndex& tu = tus[ti];
      for (const auto& f : tu.functions) {
        for (const auto& a : f.acquires) {
          if (a.held.empty()) continue;
          const std::string to = p_.mutex_id(a.mutex, f, tu);
          for (const auto& h : a.held) {
            add_edge(p_.mutex_id(h, f, tu), to,
                     {ti, tu.path, a.line, f.name, ""});
          }
        }
        for (const auto& c : f.calls) {
          if (c.held.empty()) continue;
          const auto* cands = p_.candidates(c.callee);
          if (cands == nullptr) continue;
          std::set<std::string> acquired;
          for (const auto& cand : *cands) {
            const auto& sub = trans_acq(cand);
            acquired.insert(sub.begin(), sub.end());
          }
          for (const auto& h : c.held) {
            const std::string from = p_.mutex_id(h, f, tu);
            for (const auto& to : acquired) {
              if (to == from) continue;  // recursive re-entry: too noisy
              add_edge(from, to,
                       {ti, tu.path, c.line, f.name,
                        " via call to " + c.callee + "()"});
            }
          }
        }
      }
    }
  }

  std::vector<Finding> report_cycles() {
    // Nodes in deterministic order.
    std::set<std::string> nodes;
    for (const auto& [from, tos] : edges_) {
      nodes.insert(from);
      for (const auto& [to, e] : tos) nodes.insert(to);
    }

    std::vector<Finding> out;
    std::set<std::string> reported;  // canonical cycle keys already emitted
    for (const auto& start : nodes) {
      // Shortest path start -> ... -> start via BFS (self-edges included).
      std::map<std::string, std::string> parent;
      std::vector<std::string> frontier;
      const auto succ_it = edges_.find(start);
      if (succ_it == edges_.end()) continue;
      bool closed = false;
      for (const auto& [to, e] : succ_it->second) {
        if (to == start) {  // direct self-cycle
          emit_cycle({start, start}, reported, out);
          closed = true;
          break;
        }
        if (parent.emplace(to, start).second) frontier.push_back(to);
      }
      if (closed) continue;
      while (!frontier.empty() && !closed) {
        std::vector<std::string> next_frontier;
        for (const auto& node : frontier) {
          const auto it = edges_.find(node);
          if (it == edges_.end()) continue;
          for (const auto& [to, e] : it->second) {
            if (to == start) {
              std::vector<std::string> path{start};
              for (std::string cur = node; cur != start;
                   cur = parent.at(cur)) {
                path.push_back(cur);
              }
              std::reverse(path.begin() + 1, path.end());
              path.push_back(start);
              emit_cycle(path, reported, out);
              closed = true;
              break;
            }
            if (parent.emplace(to, node).second) next_frontier.push_back(to);
          }
          if (closed) break;
        }
        frontier = std::move(next_frontier);
      }
    }
    return out;
  }

  void emit_cycle(const std::vector<std::string>& path,
                  std::set<std::string>& reported, std::vector<Finding>& out) {
    // Canonicalize: rotate so the lexicographically smallest node leads.
    std::vector<std::string> ring(path.begin(), path.end() - 1);
    const auto min_it = std::min_element(ring.begin(), ring.end());
    std::rotate(ring.begin(), min_it, ring.end());
    std::string key = "cycle:";
    for (const auto& m : ring) key += m + "->";
    key += ring.front();
    if (!reported.insert(key).second) return;

    std::vector<const LockEdge*> witness;
    bool suppressed = false;
    std::ostringstream steps;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const std::string& a = ring[i];
      const std::string& b = ring[(i + 1) % ring.size()];
      const LockEdge& e = edges_.at(a).at(b);
      witness.push_back(&e);
      if (allowed(p_.tus()[e.tu], e.line, "lock-order")) suppressed = true;
      if (i != 0) steps << "; ";
      steps << a << " -> " << b << " at "
            << repo_rel(p_.tus()[e.tu].norm) << ":" << e.line << " in "
            << e.fn << e.via;
    }
    if (suppressed || witness.empty()) return;

    std::ostringstream msg;
    msg << "lock-order cycle (potential deadlock): ";
    for (const auto& m : ring) msg << m << " -> ";
    msg << ring.front() << ". Witness: " << steps.str()
        << ". Establish a global acquisition order or annotate "
           "allow(lock-order) at an acquisition site.";
    Finding f;
    f.rule = Rule::kLockOrder;
    f.file = witness.front()->file;
    f.line = witness.front()->line;
    f.message = msg.str();
    f.key = std::move(key);
    out.push_back(std::move(f));
  }

  const Project& p_;
  /// from-mutex -> (to-mutex -> first witness edge), all ordered.
  std::map<std::string, std::map<std::string, LockEdge>> edges_;
  std::map<std::pair<std::size_t, std::size_t>, std::set<std::string>> trans_;
  std::set<std::pair<std::size_t, std::size_t>> in_progress_;
};

// ---------------------------------------------------------------------------
// E1: shared-state escape
// ---------------------------------------------------------------------------

class SharedEscape {
 public:
  explicit SharedEscape(const Project& p) : p_(p) { build_reachability(); }

  std::vector<Finding> run() {
    std::vector<Finding> out;
    const auto& tus = p_.tus();
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      const TuIndex& tu = tus[ti];
      for (const auto& s : tu.statics) {
        std::vector<std::pair<FnRef, int>> refs;
        bool lane_bound = false;
        for (std::size_t fi = 0; fi < tu.functions.size(); ++fi) {
          const FunctionInfo& f = tu.functions[fi];
          for (const auto& r : f.static_refs) {
            if (r.name != s.name) continue;
            refs.push_back({{ti, fi}, r.line});
            if (f.binds_lane) lane_bound = true;
            break;
          }
        }
        if (refs.empty() || lane_bound) continue;
        if (allowed(tu, s.line, "shared-state-escape")) continue;
        out.push_back(make_finding(tu, s, refs));
      }
    }
    return out;
  }

 private:
  /// BFS from the worker-execution roots (window/lane/fiber machinery and
  /// the argolite runtime shims) over name-resolvable calls.
  void build_reachability() {
    const auto& tus = p_.tus();
    std::vector<FnRef> frontier;
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      const std::string rel = repo_rel(tus[ti].norm);
      const bool is_root_tu = rel.find("simkit/window.") != std::string::npos ||
                              rel.find("simkit/lane.") != std::string::npos ||
                              rel.find("simkit/fiber.") != std::string::npos ||
                              rel.find("argolite/") != std::string::npos;
      if (!is_root_tu) continue;
      for (std::size_t fi = 0; fi < tus[ti].functions.size(); ++fi) {
        const auto key = std::make_pair(ti, fi);
        if (chain_.emplace(key, std::vector<std::string>{
                                    tus[ti].functions[fi].name})
                .second) {
          frontier.push_back({ti, fi});
        }
      }
    }
    while (!frontier.empty()) {
      std::vector<FnRef> next_frontier;
      for (const auto& r : frontier) {
        const auto& here = chain_.at(std::make_pair(r.tu, r.fn));
        if (here.size() >= 8) continue;  // witness depth cap
        for (const auto& c : p_.fn(r).calls) {
          const auto* cands = p_.candidates(c.callee);
          if (cands == nullptr) continue;
          for (const auto& cand : *cands) {
            const auto key = std::make_pair(cand.tu, cand.fn);
            if (chain_.count(key) != 0) continue;
            std::vector<std::string> path = here;
            path.push_back(p_.fn(cand).name);
            chain_.emplace(key, std::move(path));
            next_frontier.push_back(cand);
          }
        }
      }
      frontier = std::move(next_frontier);
    }
  }

  Finding make_finding(const TuIndex& tu, const MutableStatic& s,
                       const std::vector<std::pair<FnRef, int>>& refs) {
    const std::string rel = repo_rel(tu.norm);
    std::ostringstream msg;
    msg << "mutable ";
    if (s.is_thread_local) msg << "thread_local ";
    msg << (s.is_function_local ? "function-local static" : "static") << " '"
        << s.name << "'";
    if (!s.type_hint.empty()) msg << " (" << s.type_hint << ")";
    msg << " is shared state escaping into worker-executed code: referenced"
           " by ";
    const auto& [first_ref, first_line] = refs.front();
    msg << "'" << p_.fn(first_ref).name << "' at " << rel << ":" << first_line;
    if (refs.size() > 1) msg << " (+" << refs.size() - 1 << " more)";

    const std::vector<std::string>* witness = nullptr;
    for (const auto& [r, line] : refs) {
      const auto it = chain_.find(std::make_pair(r.tu, r.fn));
      if (it != chain_.end()) {
        witness = &it->second;
        break;
      }
    }
    if (witness != nullptr) {
      msg << ". Worker path: ";
      for (std::size_t i = 0; i < witness->size(); ++i) {
        if (i != 0) msg << " -> ";
        msg << (*witness)[i];
      }
    } else {
      msg << ". No static call path from the worker roots was resolved, but"
             " fiber entry points are type-erased, so reachability is"
             " assumed conservatively";
    }
    msg << ". Bind an owner with sim::debug::bind_home_lane or annotate"
           " allow(shared-state-escape) with a reason.";

    Finding f;
    f.rule = Rule::kSharedEscape;
    f.file = tu.path;
    f.line = s.line;
    f.message = msg.str();
    f.key = "static:" + rel + ":" + s.name;
    return f;
  }

  const Project& p_;
  /// (tu, fn) -> witness chain from a worker root down to the function.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::string>>
      chain_;
};

// ---------------------------------------------------------------------------
// T1: determinism taint
// ---------------------------------------------------------------------------

struct TaintOrigin {
  std::string primitive;
  std::string site;  ///< "src/foo.cpp:42"
  std::vector<std::string> chain;  ///< fn names, caller-first
};

class Taint {
 public:
  explicit Taint(const Project& p) : p_(p) {}

  std::vector<Finding> run() {
    std::vector<Finding> out;
    const auto& tus = p_.tus();
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      const TuIndex& tu = tus[ti];
      for (std::size_t fi = 0; fi < tu.functions.size(); ++fi) {
        const FunctionInfo& f = tu.functions[fi];
        for (const auto& sink : f.sinks) {
          if (sink.name == "at" && sink.args < 2) continue;  // std::map::at
          if (allowed(tu, sink.line, "determinism-taint")) continue;
          std::optional<Finding> found = check_sink(ti, fi, sink);
          if (found.has_value()) out.push_back(std::move(*found));
        }
      }
    }
    return out;
  }

 private:
  /// A function is tainted if its body reads a D1 primitive (in a TU where
  /// D1 applies — simkit/time.hpp and rng.hpp are the sanctioned wrappers)
  /// or calls a tainted function. allow(nondeterminism) silences the D1
  /// diagnostic but does not launder the value.
  const std::optional<TaintOrigin>& tainted(FnRef r) {
    const auto key = std::make_pair(r.tu, r.fn);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    memo_.emplace(key, std::nullopt);
    if (!in_progress_.insert(key).second) return memo_.at(key);

    const TuIndex& tu = p_.tus()[r.tu];
    const FunctionInfo& f = p_.fn(r);
    std::optional<TaintOrigin> result;
    if (classify(tu.norm).d1 && !f.sources.empty()) {
      const SourceCall& src = f.sources.front();
      std::ostringstream site;
      site << repo_rel(tu.norm) << ":" << src.line;
      result = TaintOrigin{src.primitive, site.str(), {f.name}};
    } else {
      for (const auto& c : f.calls) {
        const auto* cands = p_.candidates(c.callee);
        if (cands == nullptr) continue;
        for (const auto& cand : *cands) {
          const auto& sub = tainted(cand);
          if (sub.has_value()) {
            result = *sub;
            result->chain.insert(result->chain.begin(), f.name);
            break;
          }
        }
        if (result.has_value()) break;
      }
    }
    in_progress_.erase(key);
    auto& slot = memo_.at(key);
    slot = std::move(result);
    return slot;
  }

  std::optional<Finding> check_sink(std::size_t ti, std::size_t fi,
                                    const SinkCall& sink) {
    const TuIndex& tu = p_.tus()[ti];
    const FunctionInfo& f = tu.functions[fi];

    const TaintOrigin* origin = nullptr;
    TaintOrigin local;
    std::string via;

    for (const auto& callee : sink.arg_calls) {
      const auto* cands = p_.candidates(callee);
      if (cands == nullptr) continue;
      for (const auto& cand : *cands) {
        const auto& sub = tainted(cand);
        if (sub.has_value()) {
          origin = &*sub;
          via = "the result of '" + callee + "()'";
          break;
        }
      }
      if (origin != nullptr) break;
    }
    if (origin == nullptr) {
      for (const auto& ident : sink.arg_idents) {
        for (const auto& ta : f.taints) {
          if (ta.var != ident || ta.line > sink.line) continue;
          if (ta.direct_source) {
            std::ostringstream site;
            site << repo_rel(tu.norm) << ":" << ta.line;
            local = TaintOrigin{"a clock/rng primitive", site.str(), {f.name}};
            origin = &local;
            via = "local '" + ident + "'";
            break;
          }
          for (const auto& callee : ta.from_calls) {
            const auto* cands = p_.candidates(callee);
            if (cands == nullptr) continue;
            for (const auto& cand : *cands) {
              const auto& sub = tainted(cand);
              if (sub.has_value()) {
                local = *sub;
                origin = &local;
                via = "local '" + ident + "' assigned from '" + callee +
                      "()'";
                break;
              }
            }
            if (origin != nullptr) break;
          }
          if (origin != nullptr) break;
        }
        if (origin != nullptr) break;
      }
    }
    if (origin == nullptr) return std::nullopt;

    std::ostringstream msg;
    msg << "clock/rng-derived value flows into virtual-time sink '"
        << sink.name << "' in '" << f.name << "' through " << via
        << "; taint originates from '" << origin->primitive << "' at "
        << origin->site;
    if (origin->chain.size() > 1) {
      msg << " via ";
      for (std::size_t i = 0; i < origin->chain.size(); ++i) {
        if (i != 0) msg << " -> ";
        msg << origin->chain[i];
      }
    }
    msg << ". Event timestamps must derive from sim::now()/SimRng; annotate"
           " allow(determinism-taint) only with a recorded reason.";

    Finding out;
    out.rule = Rule::kTaint;
    out.file = tu.path;
    out.line = sink.line;
    out.message = msg.str();
    out.key = "taint:" + repo_rel(tu.norm) + ":" + unqualified(f.name) + ":" +
              sink.name;
    return out;
  }

  const Project& p_;
  std::map<std::pair<std::size_t, std::size_t>, std::optional<TaintOrigin>>
      memo_;
  std::set<std::pair<std::size_t, std::size_t>> in_progress_;
};

// ---------------------------------------------------------------------------
// B1/B2: may-block / may-allocate hot-path cost
// ---------------------------------------------------------------------------

/// Two faces of one analysis over the same seed sets:
///
///   direct  Any blocking/allocating leaf site inside a hot-path *file*
///           (tables::kHotPathFiles — the per-event lane/window/engine/
///           fiber machinery) is reported at the seed line. This subsumes
///           the retired per-TU D3 allocation face and, unlike call-graph
///           reachability, also catches seeds only reachable through
///           type-erased dispatch (SmallFn::emplace's heap spill).
///
///   reach   A named hot-path *root* (tables::kHotPathRoots — lane pumps,
///           window workers, fiber trampolines, argolite dispatch, loadgen
///           pumps, blockcache service ULTs) BFS-reaches a seeded function
///           through name-resolved calls or &function references. The
///           finding carries the full witness chain with a file:line at
///           every hop plus the seed site. Seeds inside hot-path files are
///           skipped here (already direct-reported); one finding per
///           (root, attribute), shortest chain wins (BFS order).
class HotPathCost {
 public:
  explicit HotPathCost(const Project& p) : p_(p) {}

  std::vector<Finding> run() {
    std::vector<Finding> out;
    direct(out);
    reach(out);
    return out;
  }

 private:
  static bool hot_file(const std::string& rel) {
    for (const char* const entry : tables::kHotPathFiles) {
      const std::string_view sv(entry);
      if (rel.size() < sv.size()) continue;
      if (rel.compare(rel.size() - sv.size(), sv.size(), sv) != 0) continue;
      if (rel.size() == sv.size() || rel[rel.size() - sv.size() - 1] == '/') {
        return true;
      }
    }
    return false;
  }

  void direct(std::vector<Finding>& out) {
    const auto& tus = p_.tus();
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      const TuIndex& tu = tus[ti];
      const std::string rel = repo_rel(tu.norm);
      if (!hot_file(rel)) continue;
      for (const auto& f : tu.functions) {
        emit_direct(tu, rel, f, f.blocking, true, out);
        emit_direct(tu, rel, f, f.allocating, false, out);
      }
    }
  }

  void emit_direct(const TuIndex& tu, const std::string& rel,
                   const FunctionInfo& f, const std::vector<SourceCall>& seeds,
                   bool block, std::vector<Finding>& out) {
    const char* const rule_name = block ? "may-block" : "may-allocate";
    for (const auto& s : seeds) {
      if (allowed(tu, s.line, rule_name)) continue;
      std::ostringstream msg;
      if (block) {
        msg << "blocking call '" << s.primitive << "' in '" << f.name
            << "' on hot-path file " << rel << ": lane-/fiber-executed code"
            << " must not block the OS thread. Annotate allow(may-block)"
            << " with a reason if intentional.";
      } else {
        msg << "allocating call '" << s.primitive << "' in '" << f.name
            << "' on hot-path file " << rel << ": per-event work must stay"
            << " allocation-free (lane arena, preallocated rings). Annotate"
            << " allow(may-allocate) with a reason if intentional.";
      }
      Finding fd;
      fd.rule = block ? Rule::kMayBlock : Rule::kMayAlloc;
      fd.file = tu.path;
      fd.line = s.line;
      fd.message = msg.str();
      fd.key = std::string(block ? "block:" : "alloc:") + rel + ":" +
               unqualified(f.name) + ":" + s.primitive;
      out.push_back(std::move(fd));
    }
  }

  void reach(std::vector<Finding>& out) {
    const auto& tus = p_.tus();
    for (std::size_t ti = 0; ti < tus.size(); ++ti) {
      const std::string rel = repo_rel(tus[ti].norm);
      for (const auto& root : tables::kHotPathRoots) {
        if (rel.find(root.path_frag) == std::string::npos) continue;
        for (std::size_t fi = 0; fi < tus[ti].functions.size(); ++fi) {
          if (tus[ti].functions[fi].name != root.fn) continue;
          reach_from({ti, fi}, rel, out);
        }
      }
    }
  }

  struct Hop {
    FnRef fn;
    std::string chain;  ///< rendered "Root -> callee [rel:line] -> ..."
    std::size_t depth = 0;
  };

  void reach_from(FnRef root, const std::string& root_rel,
                  std::vector<Finding>& out) {
    const auto& tus = p_.tus();
    const FunctionInfo& root_fn = p_.fn(root);
    bool found_block = false;
    bool found_alloc = false;

    std::set<std::pair<std::size_t, std::size_t>> visited;
    std::vector<Hop> frontier{{root, root_fn.name, 0}};
    visited.insert({root.tu, root.fn});

    while (!frontier.empty() && !(found_block && found_alloc)) {
      std::vector<Hop> next_frontier;
      for (const auto& hop : frontier) {
        const TuIndex& tu = tus[hop.fn.tu];
        const FunctionInfo& f = p_.fn(hop.fn);
        const std::string rel = repo_rel(tu.norm);
        // Seeds inside hot-path files are reported by the direct face.
        if (!hot_file(rel)) {
          if (!found_block && !f.blocking.empty()) {
            found_block = try_emit(root, root_rel, hop, tu, rel,
                                   f.blocking.front(), true, out);
          }
          if (!found_alloc && !f.allocating.empty()) {
            found_alloc = try_emit(root, root_rel, hop, tu, rel,
                                   f.allocating.front(), false, out);
          }
          if (found_block && found_alloc) return;
        }
        if (hop.depth >= 8) continue;  // witness depth cap
        auto push = [&](const std::string& name, int line, bool is_ref) {
          const auto* cands = p_.candidates(name);
          if (cands == nullptr) return;
          for (const auto& cand : *cands) {
            if (!visited.insert({cand.tu, cand.fn}).second) continue;
            std::ostringstream step;
            step << hop.chain << " -> " << (is_ref ? "&" : "")
                 << p_.fn(cand).name << " [" << rel << ":" << line << "]";
            next_frontier.push_back({cand, step.str(), hop.depth + 1});
          }
        };
        for (const auto& c : f.calls) push(c.callee, c.line, false);
        for (const auto& r : f.fn_refs) push(r.name, r.line, true);
      }
      frontier = std::move(next_frontier);
    }
  }

  bool try_emit(FnRef root, const std::string& root_rel, const Hop& hop,
                const TuIndex& seed_tu, const std::string& seed_rel,
                const SourceCall& seed, bool block, std::vector<Finding>& out) {
    const FunctionInfo& root_fn = p_.fn(root);
    const TuIndex& root_tu = p_.tus()[root.tu];
    const char* const rule_name = block ? "may-block" : "may-allocate";
    if (allowed(root_tu, root_fn.line, rule_name)) return true;
    if (allowed(seed_tu, seed.line, rule_name)) return true;

    std::ostringstream msg;
    msg << "hot-path root '" << root_fn.name << "' (" << root_rel << ":"
        << root_fn.line << ") may " << (block ? "block" : "allocate") << ": "
        << hop.chain << "; " << (block ? "blocking" : "allocating")
        << " site '" << seed.primitive << "' at " << seed_rel << ":"
        << seed.line << ". "
        << (block ? "Hand blocking work to a coordinator thread"
                  : "Hoist the allocation out of the per-event path")
        << " or annotate allow(" << rule_name
        << ") with a reason at the root or the site.";

    Finding fd;
    fd.rule = block ? Rule::kMayBlock : Rule::kMayAlloc;
    fd.file = root_tu.path;
    fd.line = root_fn.line;
    fd.message = msg.str();
    fd.key = std::string(block ? "block:" : "alloc:") + root_rel + ":" +
             root_fn.name;
    out.push_back(std::move(fd));
    return true;
  }

  const Project& p_;
};

}  // namespace

// ---------------------------------------------------------------------------
// P1: PVAR / action-span contract
// ---------------------------------------------------------------------------

namespace {

struct DocName {
  int line = 0;
};

/// Parse docs/PVARS.md: '|'-delimited table rows, first cell only, every
/// backticked name in the cell (shared rows document two counters). Cells
/// containing '<' are pattern rows (`bc_t<k>_...`) and never match literal
/// registrations — skipped. Section routing by "## " headings: a heading
/// containing "Action span" collects into the span set, everything else
/// into the PVAR set.
void parse_pvars_doc(std::string_view doc, std::map<std::string, DocName>& pvars,
                     std::map<std::string, DocName>& spans) {
  bool in_spans = false;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= doc.size()) {
    auto eol = doc.find('\n', pos);
    if (eol == std::string_view::npos) eol = doc.size();
    const std::string_view ln = doc.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    if (ln.substr(0, 3) == "## ") {
      in_spans = ln.find("Action span") != std::string_view::npos;
      continue;
    }
    std::size_t bar = ln.find('|');
    if (bar == std::string_view::npos) continue;
    const auto close = ln.find('|', bar + 1);
    if (close == std::string_view::npos) continue;
    const std::string_view cell = ln.substr(bar + 1, close - bar - 1);
    if (cell.find('<') != std::string_view::npos) continue;  // pattern row
    auto& into = in_spans ? spans : pvars;
    std::size_t tick = 0;
    while ((tick = cell.find('`', tick)) != std::string_view::npos) {
      const auto end = cell.find('`', tick + 1);
      if (end == std::string_view::npos) break;
      const std::string name(cell.substr(tick + 1, end - tick - 1));
      if (!name.empty()) into.emplace(name, DocName{line_no});
      tick = end + 1;
    }
  }
}

struct RegSite {
  std::size_t tu = 0;
  int line = 0;
};

}  // namespace

std::vector<Finding> check_pvar_contract(const std::vector<TuIndex>& tus,
                                         std::string_view doc_text,
                                         const std::string& doc_path) {
  std::map<std::string, DocName> doc_pvars;
  std::map<std::string, DocName> doc_spans;
  parse_pvars_doc(doc_text, doc_pvars, doc_spans);

  // Code-side registrations: literal names only, src/ TUs only (tests and
  // benches register throwaway PVARs). Dynamic spans ("policy:" + name)
  // expand against the literal policy-rule names registered under src/.
  std::map<std::string, RegSite> code_pvars;
  std::map<std::string, RegSite> code_spans;
  std::vector<std::string> rule_names;
  auto in_src = [](const TuIndex& tu) {
    return tu.norm.find("src/") != std::string::npos;
  };
  for (std::size_t ti = 0; ti < tus.size(); ++ti) {
    if (!in_src(tus[ti])) continue;
    for (const auto& r : tus[ti].rule_regs) {
      if (!r.dynamic) rule_names.push_back(r.name);
    }
  }
  for (std::size_t ti = 0; ti < tus.size(); ++ti) {
    if (!in_src(tus[ti])) continue;
    for (const auto& r : tus[ti].pvar_regs) {
      if (!r.dynamic) code_pvars.emplace(r.name, RegSite{ti, r.line});
    }
    for (const auto& r : tus[ti].span_regs) {
      if (r.dynamic) {
        for (const auto& rule : rule_names) {
          code_spans.emplace(r.name + rule, RegSite{ti, r.line});
        }
      } else {
        code_spans.emplace(r.name, RegSite{ti, r.line});
      }
    }
  }

  std::vector<Finding> out;
  auto code_side = [&](const std::map<std::string, RegSite>& code,
                       const std::map<std::string, DocName>& doc,
                       const char* kind, const char* what) {
    for (const auto& [name, site] : code) {
      if (doc.count(name) != 0) continue;
      const TuIndex& tu = tus[site.tu];
      if (allowed(tu, site.line, "pvar-contract")) continue;
      Finding f;
      f.rule = Rule::kPvarContract;
      f.file = tu.path;
      f.line = site.line;
      f.message = std::string(what) + " '" + name + "' is registered at " +
                  repo_rel(tu.norm) + ":" + std::to_string(site.line) +
                  " but not documented in " + doc_path +
                  " — add a row (or annotate allow(pvar-contract) with a"
                  " reason).";
      f.key = std::string(kind) + ":undocumented:" + name;
      out.push_back(std::move(f));
    }
  };
  auto doc_side = [&](const std::map<std::string, DocName>& doc,
                      const std::map<std::string, RegSite>& code,
                      const char* kind, const char* what) {
    for (const auto& [name, dn] : doc) {
      if (code.count(name) != 0) continue;
      Finding f;
      f.rule = Rule::kPvarContract;
      f.file = doc_path;
      f.line = dn.line;
      f.message = std::string(what) + " '" + name + "' is documented in " +
                  doc_path + ":" + std::to_string(dn.line) +
                  " but never registered in src/ — stale doc row or a"
                  " registration that was removed.";
      f.key = std::string(kind) + ":unregistered:" + name;
      out.push_back(std::move(f));
    }
  };
  code_side(code_pvars, doc_pvars, "pvar", "PVAR");
  code_side(code_spans, doc_spans, "span", "action span");
  doc_side(doc_pvars, code_pvars, "pvar", "PVAR");
  doc_side(doc_spans, code_spans, "span", "action span");
  sort_findings(out);
  return out;
}

std::vector<Finding> analyze_project(const std::vector<TuIndex>& tus) {
  const Project project(tus);
  std::vector<Finding> out;
  for (auto& f : LockOrder(project).run()) out.push_back(std::move(f));
  for (auto& f : SharedEscape(project).run()) out.push_back(std::move(f));
  for (auto& f : Taint(project).run()) out.push_back(std::move(f));
  for (auto& f : HotPathCost(project).run()) out.push_back(std::move(f));
  sort_findings(out);
  // A sink can be matched through both an argument call and a local; the
  // semantic key dedupes.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.rule == b.rule && a.file == b.file &&
                                 a.line == b.line && a.key == b.key;
                        }),
            out.end());
  return out;
}

}  // namespace symlint
