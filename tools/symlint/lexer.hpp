// tools/symlint/lexer.hpp
//
// Shared lexical layer for both symlint passes. Pass 0 (per-TU scanning,
// lint.cpp) and pass 1 (cross-TU indexing, index.cpp) both consume the same
// token stream: identifiers and punctuation with comments, strings and
// numbers stripped, "::" and "->" kept as single tokens, plus the
// "allow(<rule>) reason=..." annotations parsed out of marked comments.
//
// Keeping one lexer means an annotation suppresses a finding identically
// whether the finding came from a lexical rule (D1-D4) or an
// interprocedural one (L1/E1/T1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace symlint {

struct Token {
  enum Kind { kIdent, kPunct } kind;
  std::string_view text;
  int line;
};

struct AllowNote {
  std::string rule;  ///< annotation rule name, e.g. "unordered-iter"
  bool has_reason;
};

struct AnnotationError {
  int line;
  std::string message;
};

/// Lexed view of one TU: identifier/punctuation tokens plus the allow()
/// annotations found in comments. Annotation *errors* (missing reason=,
/// unknown rule) are collected here and turned into A0 findings by the
/// scanner.
struct Lexed {
  std::vector<Token> tokens;
  std::map<int, std::vector<AllowNote>> allows;  ///< line -> notes
  std::vector<AnnotationError> annotation_errors;
};

/// Tokenize one TU. `src` must outlive the returned view (tokens are
/// string_views into it).
[[nodiscard]] Lexed lex(std::string_view src);

/// Quoted #include targets ("simkit/engine.hpp"), in file order. Angle
/// includes are system headers and never part of the project include graph.
[[nodiscard]] std::vector<std::string> extract_includes(std::string_view src);

/// A call whose first argument starts with a string literal:
/// `func("lit"...)` or aggregate-init `func({"lit"...)`. The main lexer
/// strips string literals, so the P1 pvar-contract rule uses this separate
/// comment-aware raw-text scan to see registration names.
struct StringCallSite {
  std::string func;     ///< identifier immediately before the '('
  std::string literal;  ///< the first string literal's content
  int line = 0;
  bool brace_init = false;  ///< literal was opened with "({"
  bool concat = false;      ///< literal is followed by '+' (runtime-built
                            ///< name; the literal is only a prefix)
};
[[nodiscard]] std::vector<StringCallSite> extract_string_calls(
    std::string_view src);

/// FNV-1a 64-bit content hash — the cache key for the incremental index.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The set of rule names accepted in allow(<rule>) annotations.
[[nodiscard]] bool is_known_allow_rule(std::string_view rule) noexcept;

}  // namespace symlint
