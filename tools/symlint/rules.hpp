// tools/symlint/rules.hpp
//
// Pass 2 of symlint v2: interprocedural rules over the cross-TU index.
//
//   L1 lock-order          Build the project-wide mutex-acquisition graph
//                          (edge m1 -> m2 when m2 is acquired — directly or
//                          through any resolvable call chain — while m1 is
//                          held). Any cycle is a potential deadlock; the
//                          finding carries a concrete witness path naming
//                          the acquisition sites.
//   E1 shared-state-escape Mutable globals / function-local statics /
//                          class-statics referenced from function code
//                          without a lane-ownership bind
//                          (sim::debug::bind_home_lane) or an
//                          allow(shared-state-escape) annotation. When the
//                          referencing function is reachable from the
//                          fiber-/worker-execution roots by name-resolvable
//                          calls, the witness names the path; otherwise the
//                          finding notes the conservative treatment forced
//                          by type-erased fiber dispatch.
//   T1 determinism-taint   A clock/rng-derived value (D1 primitive outside
//                          simkit/time.hpp + rng.hpp) propagating through at
//                          least one call or local assignment into a
//                          virtual-time scheduling sink (Engine::at/after/
//                          at_on/after_on). allow(nondeterminism) silences
//                          D1 at the source but does NOT stop taint
//                          propagation — that is the point of T1;
//                          allow(determinism-taint) at the sink does.
//
// Mutex identity: member mutexes are qualified by their owning class
// ("Backend::write_lock_") so same-named members of unrelated classes never
// merge; namespace-scope mutexes merge project-wide by bare name (extern
// globals must alias across TUs); unresolvable tokens fall back to a
// file-local identity.
#pragma once

#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace symlint {

/// Run L1/E1/T1 over the indexed project. `tus` must be in deterministic
/// (sorted-path) order; findings come out sorted and carry semantic keys.
[[nodiscard]] std::vector<Finding> analyze_project(
    const std::vector<TuIndex>& tus);

}  // namespace symlint
