// tools/symlint/rules.hpp
//
// Pass 2 of symlint v2: interprocedural rules over the cross-TU index.
//
//   L1 lock-order          Build the project-wide mutex-acquisition graph
//                          (edge m1 -> m2 when m2 is acquired — directly or
//                          through any resolvable call chain — while m1 is
//                          held). Any cycle is a potential deadlock; the
//                          finding carries a concrete witness path naming
//                          the acquisition sites.
//   E1 shared-state-escape Mutable globals / function-local statics /
//                          class-statics referenced from function code
//                          without a lane-ownership bind
//                          (sim::debug::bind_home_lane) or an
//                          allow(shared-state-escape) annotation. When the
//                          referencing function is reachable from the
//                          fiber-/worker-execution roots by name-resolvable
//                          calls, the witness names the path; otherwise the
//                          finding notes the conservative treatment forced
//                          by type-erased fiber dispatch.
//   T1 determinism-taint   A clock/rng-derived value (D1 primitive outside
//                          simkit/time.hpp + rng.hpp) propagating through at
//                          least one call or local assignment into a
//                          virtual-time scheduling sink (Engine::at/after/
//                          at_on/after_on). allow(nondeterminism) silences
//                          D1 at the source but does NOT stop taint
//                          propagation — that is the point of T1;
//                          allow(determinism-taint) at the sink does.
//   B1 may-block           A blocking leaf (std::mutex lock, condition
//   B2 may-allocate        variable, sleep/blocking syscall) or allocating
//                          leaf (raw new / malloc family, std::make_unique/
//                          make_shared, std::function heap spill) either
//                          sits directly in a hot-path file or is reached
//                          from a named lane-/fiber-executed root through
//                          name-resolved calls and &function references.
//                          Reach findings carry the full witness chain with
//                          file:line at every hop. Subsumes the retired
//                          per-TU D3 allocation face.
//   P1 pvar-contract       Code-registered PVAR names and action-span names
//                          (run separately, needs the doc text) must match
//                          docs/PVARS.md exactly; drift in either direction
//                          is a finding.
//
// Mutex identity: member mutexes are qualified by their owning class
// ("Backend::write_lock_") so same-named members of unrelated classes never
// merge; namespace-scope mutexes merge project-wide by bare name (extern
// globals must alias across TUs); unresolvable tokens fall back to a
// file-local identity.
#pragma once

#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace symlint {

/// Run L1/E1/T1/B1/B2 over the indexed project. `tus` must be in
/// deterministic (sorted-path) order; findings come out sorted and carry
/// semantic keys.
[[nodiscard]] std::vector<Finding> analyze_project(
    const std::vector<TuIndex>& tus);

/// P1: diff code-registered PVAR / action-span names (literal registrations
/// in src/ TUs, dynamic "prefix:" spans expanded against registered policy
/// rules) against the catalogue tables in `doc_text` (docs/PVARS.md).
/// `doc_path` is what doc-side findings report as their file.
[[nodiscard]] std::vector<Finding> check_pvar_contract(
    const std::vector<TuIndex>& tus, std::string_view doc_text,
    const std::string& doc_path);

}  // namespace symlint
