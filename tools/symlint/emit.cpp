#include "emit.hpp"

#include <cctype>
#include <sstream>

namespace symlint::json {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string& err) : s_(text), err_(err) {}

  bool parse(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing data after document");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    std::ostringstream os;
    os << "offset " << pos_ << ": " << why;
    err_ = os.str();
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = Value::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return parse_number(out);
    }
    return fail("unexpected character");
  }

  bool parse_object(Value& out) {
    out.kind = Value::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string k;
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
      if (!parse_string(k)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.obj.emplace(std::move(k), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("short \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // BMP code point -> UTF-8 (surrogate pairs unsupported; the
            // baseline and SARIF payloads are ASCII).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_bool(Value& out) {
    out.kind = Value::kBool;
    if (s_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(Value& out) {
    out.kind = Value::kNull;
    if (s_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(Value& out) {
    out.kind = Value::kNumber;
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
    if (eat('.')) {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ == start) return fail("bad number");
    // Hand-rolled to keep the tool locale-independent.
    const std::string_view text = s_.substr(start, pos_ - start);
    double value = 0.0;
    double sign = 1.0;
    std::size_t i = 0;
    if (i < text.size() && text[i] == '-') {
      sign = -1.0;
      ++i;
    }
    for (; i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i])) != 0;
         ++i) {
      value = value * 10.0 + (text[i] - '0');
    }
    if (i < text.size() && text[i] == '.') {
      ++i;
      double scale = 0.1;
      for (; i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0;
           ++i) {
        value += (text[i] - '0') * scale;
        scale *= 0.1;
      }
    }
    if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
      ++i;
      double esign = 1.0;
      if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
        if (text[i] == '-') esign = -1.0;
        ++i;
      }
      int exp = 0;
      for (; i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0;
           ++i) {
        exp = exp * 10 + (text[i] - '0');
      }
      for (int k = 0; k < exp; ++k) value *= esign > 0 ? 10.0 : 0.1;
    }
    out.number = sign * value;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string& err_;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string& err) {
  return Parser(text, err).parse(out);
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace symlint::json

namespace symlint {
namespace {

std::string get_string(const json::Value& obj, const std::string& key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->kind == json::Value::kString ? v->str
                                                         : std::string{};
}

/// Normalized repo-relative suffix used for file matching and SARIF URIs.
std::string rel_of(const std::string& file) {
  std::string norm = file;
  for (auto& c : norm) {
    if (c == '\\') c = '/';
  }
  for (const std::string_view prefix : {"src/", "tools/", "tests/"}) {
    std::size_t pos = 0;
    while ((pos = norm.find(prefix, pos)) != std::string::npos) {
      if (pos == 0 || norm[pos - 1] == '/') return norm.substr(pos);
      ++pos;
    }
  }
  return norm;
}

struct RuleMeta {
  Rule rule;
  std::string_view full_description;
};

const RuleMeta kRuleCatalog[] = {
    {Rule::kAnnotation, "Malformed symlint allow() annotation."},
    {Rule::kNondeterminism,
     "Wall-clock, libc randomness, or environment read outside the "
     "sanctioned simkit wrappers."},
    {Rule::kUnorderedIter,
     "Range-for over an unordered container in analysis/export code."},
    {Rule::kFiberBlocking,
     "OS-blocking primitive in fiber-executed code; use argolite sync."},
    {Rule::kLaneAffinity,
     "Direct Lane internal access outside the engine substrate."},
    {Rule::kLockOrder,
     "Cycle in the project-wide mutex acquisition graph (potential "
     "deadlock)."},
    {Rule::kSharedEscape,
     "Mutable global or static state escapes into worker-executed code "
     "without a lane-ownership bind."},
    {Rule::kTaint,
     "Clock/rng-derived value flows through calls into a virtual-time "
     "event timestamp."},
    {Rule::kMayBlock,
     "Lane-/fiber-executed hot-path code reaches an OS-blocking leaf "
     "(mutex lock, condition variable, sleep/blocking syscall); witness "
     "chain carries file:line at every hop."},
    {Rule::kMayAlloc,
     "Lane-/fiber-executed hot-path code reaches a heap-allocating leaf "
     "(raw new, malloc family, std::make_unique/make_shared, std::function "
     "spill); per-event work must stay allocation-free."},
    {Rule::kPvarContract,
     "Code-registered PVAR or action-span name drifted from the "
     "docs/PVARS.md catalogue (undocumented registration or stale doc "
     "row)."},
};

}  // namespace

bool load_baseline(std::string_view text, Baseline& out, std::string& err) {
  json::Value doc;
  if (!json::parse(text, doc, err)) {
    err = "baseline: " + err;
    return false;
  }
  if (doc.kind != json::Value::kObject) {
    err = "baseline: top level must be an object";
    return false;
  }
  out.comment = get_string(doc, "comment");
  const json::Value* findings = doc.find("findings");
  if (findings == nullptr || findings->kind != json::Value::kArray) {
    err = "baseline: missing \"findings\" array";
    return false;
  }
  for (const auto& e : findings->arr) {
    if (e.kind != json::Value::kObject) {
      err = "baseline: findings entries must be objects";
      return false;
    }
    BaselineEntry entry;
    entry.rule = get_string(e, "rule");
    entry.file = get_string(e, "file");
    entry.key = get_string(e, "key");
    entry.reason = get_string(e, "reason");
    if (entry.rule.empty() || entry.file.empty() || entry.key.empty()) {
      err = "baseline: entries need non-empty rule, file and key";
      return false;
    }
    out.entries.push_back(std::move(entry));
  }
  return true;
}

bool baseline_matches(const BaselineEntry& entry, const Finding& finding) {
  if (entry.rule != rule_id(finding.rule)) return false;
  const std::string rel = rel_of(finding.file);
  if (rel != entry.file) {
    // Accept an exact-suffix match so absolute invocations still hit.
    if (rel.size() <= entry.file.size() ||
        rel.compare(rel.size() - entry.file.size(), std::string::npos,
                    entry.file) != 0 ||
        rel[rel.size() - entry.file.size() - 1] != '/') {
      return false;
    }
  }
  const std::string& key =
      finding.key.empty() ? finding.message : finding.key;
  return key == entry.key;
}

std::size_t apply_baseline(const Baseline& baseline,
                           std::vector<Finding>& findings,
                           std::vector<const BaselineEntry*>* unused) {
  std::vector<bool> used(baseline.entries.size(), false);
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  std::size_t suppressed = 0;
  for (auto& f : findings) {
    bool hit = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (baseline_matches(baseline.entries[i], f)) {
        used[i] = true;
        hit = true;
        break;
      }
    }
    if (hit) {
      ++suppressed;
    } else {
      kept.push_back(std::move(f));
    }
  }
  findings = std::move(kept);
  if (unused != nullptr) {
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (!used[i]) unused->push_back(&baseline.entries[i]);
    }
  }
  return suppressed;
}

std::string serialize_baseline(const Baseline& baseline) {
  std::ostringstream os;
  os << "{\n";
  if (!baseline.comment.empty()) {
    os << "  \"comment\": \"" << json::escape(baseline.comment) << "\",\n";
  }
  os << "  \"findings\": [";
  bool first = true;
  for (const auto& e : baseline.entries) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\n"
       << "      \"rule\": \"" << json::escape(e.rule) << "\",\n"
       << "      \"file\": \"" << json::escape(e.file) << "\",\n"
       << "      \"key\": \"" << json::escape(e.key) << "\",\n"
       << "      \"reason\": \"" << json::escape(e.reason) << "\"\n"
       << "    }";
  }
  if (!first) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"symlint\",\n"
     << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
     << "          \"version\": \"3.0.0\",\n"
     << "          \"rules\": [\n";
  bool first = true;
  for (const auto& meta : kRuleCatalog) {
    if (!first) os << ",\n";
    first = false;
    os << "            {\n"
       << "              \"id\": \"" << rule_id(meta.rule) << "\",\n"
       << "              \"name\": \"" << rule_name(meta.rule) << "\",\n"
       << "              \"shortDescription\": {\"text\": \""
       << json::escape(meta.full_description) << "\"}\n"
       << "            }";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  first = true;
  for (const auto& f : findings) {
    if (!first) os << ",\n";
    first = false;
    os << "        {\n"
       << "          \"ruleId\": \"" << rule_id(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << json::escape(f.message)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": {\"uri\": \""
       << json::escape(rel_of(f.file)) << "\"},\n"
       << "                \"region\": {\"startLine\": "
       << (f.line > 0 ? f.line : 1) << "}\n"
       << "              }\n"
       << "            }\n"
       << "          ]";
    if (!f.key.empty()) {
      os << ",\n          \"partialFingerprints\": {\"symlintKey\": \""
         << json::escape(f.key) << "\"}";
    }
    os << "\n        }";
  }
  os << "\n      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace symlint
