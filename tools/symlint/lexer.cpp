#include "lexer.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace symlint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse "allow(<rule>) reason=<text>" annotations out of comments carrying
/// the marker token ("symlint" followed by a colon). Comments without the
/// marker are ignored entirely, as is namespace qualification ("symlint" and
/// two colons, which closing-namespace comments produce).
void parse_annotation(std::string_view comment, int line, Lexed& out) {
  auto marker = std::string_view::npos;
  for (auto at = comment.find("symlint:"); at != std::string_view::npos;
       at = comment.find("symlint:", at + 8)) {
    if (comment.size() > at + 8 && comment[at + 8] == ':') continue;
    marker = at;
    break;
  }
  if (marker == std::string_view::npos) return;
  std::string_view rest = comment.substr(marker + 8);

  const auto open = rest.find("allow(");
  if (open == std::string_view::npos) {
    out.annotation_errors.push_back(
        {line, "symlint: marker without allow(<rule>)"});
    return;
  }
  const auto close = rest.find(')', open);
  if (close == std::string_view::npos) {
    out.annotation_errors.push_back({line, "unterminated allow("});
    return;
  }
  std::string rule(rest.substr(open + 6, close - open - 6));

  bool has_reason = false;
  const auto reason = rest.find("reason=", close);
  if (reason != std::string_view::npos) {
    std::string_view text = rest.substr(reason + 7);
    // Reason must contain at least one non-space character.
    has_reason = std::any_of(text.begin(), text.end(), [](char c) {
      return !std::isspace(static_cast<unsigned char>(c));
    });
  }
  if (!has_reason) {
    out.annotation_errors.push_back(
        {line, "allow(" + rule + ") annotation missing reason="});
    return;
  }
  if (!is_known_allow_rule(rule)) {
    out.annotation_errors.push_back(
        {line, "allow() with unknown rule '" + rule + "'"});
    return;
  }
  out.allows[line].push_back({std::move(rule), true});
}

}  // namespace

bool is_known_allow_rule(std::string_view rule) noexcept {
  static const std::set<std::string_view> kKnownRules = {
      "nondeterminism",      "unordered-iter",  "fiber-blocking",
      "lane-affinity",       "lock-order",      "shared-state-escape",
      "determinism-taint",   "may-block",       "may-allocate",
      "pvar-contract",
  };
  return kKnownRules.count(rule) != 0;
}

Lexed lex(std::string_view src) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto advance_over = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const auto end = src.find('\n', i);
      const auto text =
          src.substr(i, end == std::string_view::npos ? n - i : end - i);
      parse_annotation(text, line, out);
      i += text.size();
      continue;
    }
    // Block comment (annotation applies to the line where it starts).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const auto end = src.find("*/", i + 2);
      const auto stop = end == std::string_view::npos ? n : end + 2;
      parse_annotation(src.substr(i, stop - i), line, out);
      advance_over(stop - i);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(src.substr(i + 2, d - i - 2)) + "\"";
      const auto end = src.find(closer, d);
      const auto stop =
          end == std::string_view::npos ? n : end + closer.size();
      advance_over(stop - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      advance_over(std::min(j + 1, n) - i);
      continue;
    }
    // Number (skip; digit separators and exponent signs included).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '\'' ||
                       src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      i = j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({Token::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; "::" and "->" matter to the rules, keep them whole.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Token::kPunct, src.substr(i, 2), line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Token::kPunct, src.substr(i, 2), line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Token::kPunct, src.substr(i, 1), line});
    ++i;
  }
  return out;
}

std::vector<StringCallSite> extract_string_calls(std::string_view src) {
  std::vector<StringCallSite> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  // Pending pattern state: ident seen, then '(' (state 1), then optionally
  // '{' (state 2). A string literal arriving in state 1/2 is a capture; any
  // other token resets.
  int state = 0;
  std::string ident;
  std::string pending_func;
  int pending_line = 0;

  auto advance_over = [&](std::size_t stop) {
    for (; i < stop && i < n; ++i) {
      if (src[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments may sit between the '(' and the literal; skip, keep state.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const auto end = src.find('\n', i);
      i = end == std::string_view::npos ? n : end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const auto end = src.find("*/", i + 2);
      advance_over(end == std::string_view::npos ? n : end + 2);
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (state == 1 || state == 2) {
        StringCallSite sc;
        sc.func = pending_func;
        sc.literal = std::string(src.substr(i + 1, j - i - 1));
        sc.line = pending_line;
        sc.brace_init = state == 2;
        // Peek past the closing quote for '+' (runtime concatenation).
        std::size_t k = j + 1;
        while (k < n && std::isspace(static_cast<unsigned char>(src[k]))) ++k;
        sc.concat = k < n && src[k] == '+';
        out.push_back(std::move(sc));
      }
      state = 0;
      ident.clear();
      advance_over(std::min(j + 1, n));
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      state = 0;
      ident.clear();
      advance_over(std::min(j + 1, n));
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      ident = std::string(src.substr(i, j - i));
      state = 0;
      i = j;
      continue;
    }
    if (c == '(') {
      if (!ident.empty()) {
        state = 1;
        pending_func = ident;
        pending_line = line;
      } else {
        state = 0;
      }
      ident.clear();
      ++i;
      continue;
    }
    if (c == '{' && state == 1) {
      state = 2;
      ++i;
      continue;
    }
    state = 0;
    ident.clear();
    ++i;
  }
  return out;
}

std::vector<std::string> extract_includes(std::string_view src) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < src.size()) {
    auto eol = src.find('\n', pos);
    if (eol == std::string_view::npos) eol = src.size();
    std::string_view ln = src.substr(pos, eol - pos);
    pos = eol + 1;
    // Match: optional ws, '#', optional ws, "include", ws, '"' path '"'.
    std::size_t k = 0;
    while (k < ln.size() && std::isspace(static_cast<unsigned char>(ln[k]))) {
      ++k;
    }
    if (k >= ln.size() || ln[k] != '#') continue;
    ++k;
    while (k < ln.size() && std::isspace(static_cast<unsigned char>(ln[k]))) {
      ++k;
    }
    if (ln.substr(k, 7) != "include") continue;
    k += 7;
    while (k < ln.size() && std::isspace(static_cast<unsigned char>(ln[k]))) {
      ++k;
    }
    if (k >= ln.size() || ln[k] != '"') continue;
    const auto close = ln.find('"', k + 1);
    if (close == std::string_view::npos) continue;
    out.emplace_back(ln.substr(k + 1, close - k - 1));
  }
  return out;
}

}  // namespace symlint
