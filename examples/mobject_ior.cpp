// mobject_ior: the paper's §V-A scenario as a runnable example.
//
// Deploys a Mobject provider node (sequencer + BAKE + SDSKV) with ior-style
// clients colocated on the same node, runs a mixed read/write object
// workload, prints the dominant-callpath profile (Fig. 6) and the stitched
// trace of one write request (Fig. 5), and writes a Zipkin JSON file you can
// load into the OpenZipkin / Jaeger UI.
//
//   $ ./mobject_ior [clients] [ops_per_client]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "symbiosys/analysis.hpp"
#include "symbiosys/zipkin.hpp"
#include "workloads/mobject_world.hpp"

namespace prof = sym::prof;
namespace sim = sym::sim;

int main(int argc, char** argv) {
  sym::workloads::MobjectWorld::Params params;
  params.ior.clients = argc > 1 ? std::atoi(argv[1]) : 10;
  params.ior.ops_per_client = argc > 2 ? std::atoi(argv[2]) : 16;
  params.ior.object_bytes = 64 * 1024;
  params.ior.read_fraction = 0.5;

  std::printf("ior + Mobject: %u clients x %u ops, %u KiB objects, "
              "colocated on one node\n\n",
              params.ior.clients, params.ior.ops_per_client,
              params.ior.object_bytes / 1024);

  sym::workloads::MobjectWorld world(params);
  world.run();

  // Fig. 6: dominant callpaths.
  const auto profile = prof::ProfileSummary::build(world.all_profiles());
  std::printf("%s\n", profile.format(5).c_str());

  // Fig. 5: per-request structure of one mobject_write_op.
  const auto traces = prof::TraceSummary::build(world.all_traces());
  const auto write_leaf = prof::hash16("mobject_write_op");
  for (const auto& rt : traces.requests) {
    if (!rt.spans.empty() &&
        prof::leaf_of(rt.spans.front().breadcrumb) == write_leaf &&
        prof::depth(rt.spans.front().breadcrumb) == 1) {
      std::printf("%s\n", traces.format_request(rt).c_str());
      std::ofstream("mobject_write_op_trace.json")
          << prof::to_zipkin_json(rt);
      std::printf("Zipkin JSON for this request: "
                  "mobject_write_op_trace.json\n");
      break;
    }
  }

  std::printf("\nvirtual run time: %.3f ms, %llu engine events\n",
              sim::to_millis(world.engine().now()),
              static_cast<unsigned long long>(
                  world.engine().events_processed()));
  return 0;
}
