// quickstart: the smallest complete SYMBIOSYS program.
//
// Builds a one-node simulated deployment with a single key-value provider
// and one client, runs a handful of instrumented RPCs, and prints the
// SYMBIOSYS profile summary — the "hello world" of the framework.
//
//   $ ./quickstart
#include <cstdio>

#include "margolite/instance.hpp"
#include "services/sdskv/sdskv.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/analysis.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace margo = sym::margo;
namespace sdskv = sym::sdskv;
namespace prof = sym::prof;

int main() {
  // 1. A simulated platform: one engine, two nodes, one fabric.
  sim::Engine engine(/*seed=*/7);
  sim::Cluster cluster(engine, sim::ClusterParams{.node_count = 2});
  ofi::Fabric fabric(cluster);

  // 2. A server process hosting an SDSKV provider (provider id 1, map
  //    backend, 4 databases) with 4 handler execution streams.
  auto& server_proc = cluster.spawn_process(0, "kv-server");
  margo::Instance server(fabric, server_proc,
                         margo::InstanceConfig{.server = true,
                                               .handler_es = 4});
  sdskv::Provider provider(server, /*provider_id=*/1,
                           sdskv::ProviderConfig{.db_count = 4});

  // 3. A client process on the other node.
  auto& client_proc = cluster.spawn_process(1, "kv-client");
  margo::Instance client(fabric, client_proc, margo::InstanceConfig{});
  sdskv::Client kv(client);

  // 4. Run a small workload from a client ULT.
  server.start();
  client.start();
  client.spawn([&] {
    for (int i = 0; i < 32; ++i) {
      kv.put(server.addr(), 1, static_cast<std::uint32_t>(i % 4),
             "key-" + std::to_string(i), std::string(256, 'v'));
    }
    std::string value;
    const auto status = kv.get(server.addr(), 1, 0, "key-0", &value);
    std::printf("get(key-0) -> %s (%zu bytes)\n",
                status == sdskv::Status::kOk ? "OK" : "miss", value.size());

    // Batched path: the content moves through the bulk (RDMA) interface.
    std::vector<sdskv::KeyValue> batch;
    for (int i = 0; i < 64; ++i) {
      batch.emplace_back("packed-" + std::to_string(i), std::string(512, 'p'));
    }
    kv.put_packed(server.addr(), 1, 2, std::move(batch));

    client.finalize();
    server.finalize();
  });
  engine.run();

  // 5. Analyze: merge both processes' callpath profiles and print the
  //    dominant callpaths with their Table III interval breakdowns.
  const auto summary =
      prof::ProfileSummary::build({&server.profile(), &client.profile()});
  std::printf("\n%s", summary.format(3).c_str());
  std::printf("virtual time elapsed: %.3f ms; events stored: %zu\n",
              sim::to_millis(engine.now()), provider.total_size());
  return 0;
}
