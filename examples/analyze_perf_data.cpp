// analyze_perf_data: the standalone analysis tool — the C++ counterpart of
// the paper's postprocessing scripts. Given a directory of per-process
// measurement CSVs (profile_*.csv, trace_*.csv, sysstats_*.csv, as written
// by prof::write_*_csv_file), it runs all three summaries and optionally
// exports every stitched request as Zipkin JSON.
//
//   $ ./analyze_perf_data <data-dir> [--zipkin out.json] [--top N]
//
// With no arguments it generates a demonstration corpus first (a small
// HEPnOS run), so it is runnable out of the box.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "symbiosys/analysis.hpp"
#include "symbiosys/export.hpp"
#include "symbiosys/insight.hpp"
#include "symbiosys/zipkin.hpp"
#include "workloads/hepnos_world.hpp"

namespace prof = sym::prof;
namespace fs = std::filesystem;

namespace {

fs::path generate_demo_corpus() {
  const auto dir = fs::temp_directory_path() / "symbiosys_demo_corpus";
  fs::create_directories(dir);
  std::printf("no data directory given: generating a demo corpus in %s\n\n",
              dir.string().c_str());
  sym::workloads::HepnosWorld::Params params;
  params.config = sym::workloads::table4_c3();
  params.config.total_clients = 4;
  params.config.clients_per_node = 2;
  params.file_model.events_per_file = 512;
  sym::workloads::HepnosWorld world(params);
  world.run();
  std::size_t i = 0;
  for (const auto* p : world.all_profiles()) {
    prof::write_profile_csv_file(
        (dir / ("profile_" + std::to_string(i) + ".csv")).string(), *p);
    ++i;
  }
  i = 0;
  for (const auto* t : world.all_traces()) {
    prof::write_trace_csv_file(
        (dir / ("trace_" + std::to_string(i) + ".csv")).string(), *t);
    ++i;
  }
  i = 0;
  for (const auto& [name, s] : world.all_sysstats()) {
    prof::write_sysstats_csv_file(
        (dir / ("sysstats_" + std::to_string(i) + ".csv")).string(), *s);
    ++i;
  }
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path dir;
  std::string zipkin_out;
  std::size_t top_n = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--zipkin") == 0 && i + 1 < argc) {
      zipkin_out = argv[++i];
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      dir = argv[i];
    }
  }
  if (dir.empty()) dir = generate_demo_corpus();
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "error: %s is not a directory\n",
                 dir.string().c_str());
    return 1;
  }

  // Ingest everything in the directory by filename convention.
  std::vector<prof::ProfileStore> profiles;
  std::vector<prof::TraceStore> traces;
  std::vector<std::pair<std::string, prof::SysStatStore>> sysstats;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());  // deterministic ingest order
  for (const auto& path : paths) {
    const auto name = path.filename().string();
    if (name.rfind("profile_", 0) == 0) {
      profiles.push_back(prof::read_profile_csv_file(path.string()));
    } else if (name.rfind("trace_", 0) == 0) {
      traces.push_back(prof::read_trace_csv_file(path.string()));
    } else if (name.rfind("sysstats_", 0) == 0) {
      sysstats.emplace_back(name, prof::read_sysstats_csv_file(path.string()));
    }
  }
  std::printf("ingested %zu profiles, %zu traces, %zu sysstat files from "
              "%s\n\n",
              profiles.size(), traces.size(), sysstats.size(),
              dir.string().c_str());

  // Profile summary.
  std::vector<const prof::ProfileStore*> pptr;
  for (const auto& p : profiles) pptr.push_back(&p);
  const auto psum = prof::ProfileSummary::build(pptr);
  std::printf("%s\n", psum.format(top_n).c_str());

  // Trace summary.
  std::vector<const prof::TraceStore*> tptr;
  for (const auto& t : traces) tptr.push_back(&t);
  const auto tsum = prof::TraceSummary::build(tptr);
  std::printf("trace summary: %zu events -> %zu spans in %zu requests; "
              "clock offsets recovered for %zu endpoints\n",
              tsum.total_events, tsum.total_spans, tsum.requests.size(),
              tsum.clock_offset_ns.size());
  if (!tsum.requests.empty()) {
    std::printf("\nfirst stitched request:\n%s\n",
                tsum.format_request(tsum.requests.front()).c_str());
  }

  // Insight passes: critical path of the slowest request, empirical
  // anomalies, structural diff.
  if (!tsum.requests.empty()) {
    const prof::RequestTrace* slowest = &tsum.requests.front();
    for (const auto& rt : tsum.requests) {
      if (!rt.spans.empty() && !slowest->spans.empty() &&
          rt.spans.front().duration() >
              slowest->spans.front().duration()) {
        slowest = &rt;
      }
    }
    std::printf("%s\n", prof::critical_path(*slowest).format().c_str());
  }
  const auto anomalies = prof::detect_anomalies(tsum);
  std::printf("%s\n", anomalies.format(5).c_str());
  const auto diff = prof::structural_diff(tsum);
  std::printf("%s\n", diff.format().c_str());

  // System statistics summary.
  std::vector<std::pair<std::string, const prof::SysStatStore*>> sptr;
  for (const auto& [name, store] : sysstats) sptr.emplace_back(name, &store);
  const auto ssum = prof::SysStatsSummary::build(sptr);
  std::printf("%s", ssum.format().c_str());

  if (!zipkin_out.empty()) {
    std::ofstream(zipkin_out) << prof::to_zipkin_json(tsum);
    std::printf("\nwrote Zipkin JSON for all %zu requests to %s\n",
                tsum.requests.size(), zipkin_out.c_str());
  }
  return 0;
}
