// gekko_fs: a GekkoFS-lite session — the "scalable POSIX-like filesystem
// with relaxed semantics" the paper lists among Mochi-enabled services —
// profiled end-to-end by SYMBIOSYS.
//
//   $ ./gekko_fs [daemons] [files]
#include <cstdio>
#include <cstdlib>

#include "margolite/instance.hpp"
#include "services/gekko/gekko.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/analysis.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace margo = sym::margo;
namespace gekko = sym::gekko;
namespace prof = sym::prof;

int main(int argc, char** argv) {
  const std::size_t daemon_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const int files = argc > 2 ? std::atoi(argv[2]) : 6;

  sim::Engine eng(23);
  sim::Cluster cluster(
      eng, sim::ClusterParams{
               .node_count = static_cast<std::uint32_t>(daemon_count + 1)});
  ofi::Fabric fabric(cluster);

  std::vector<std::unique_ptr<margo::Instance>> daemons_mid;
  std::vector<std::unique_ptr<gekko::Daemon>> daemons;
  std::vector<ofi::EpAddr> addrs;
  for (std::size_t i = 0; i < daemon_count; ++i) {
    auto& proc = cluster.spawn_process(static_cast<sim::NodeId>(i),
                                       "gkfs-daemon-" + std::to_string(i));
    daemons_mid.push_back(std::make_unique<margo::Instance>(
        fabric, proc,
        margo::InstanceConfig{.server = true, .handler_es = 2}));
    daemons.push_back(std::make_unique<gekko::Daemon>(*daemons_mid.back(), 1));
    addrs.push_back(daemons_mid.back()->addr());
  }
  auto& cproc = cluster.spawn_process(
      static_cast<sim::NodeId>(daemon_count), "gkfs-client");
  margo::Instance client_mid(fabric, cproc, margo::InstanceConfig{});
  gekko::Client fs(client_mid, addrs, 1);

  for (auto& d : daemons_mid) d->start();
  client_mid.start();
  client_mid.spawn([&] {
    // Write a directory of files (each 1.5 chunks so writes fan out),
    // read one back, list the directory.
    for (int f = 0; f < files; ++f) {
      const std::string path = "/exp/output-" + std::to_string(f) + ".dat";
      fs.create(path);
      fs.write(path, 0,
               std::vector<std::byte>(gekko::kChunkSize * 3 / 2,
                                      std::byte{static_cast<unsigned char>(f)}));
    }
    const auto st = fs.stat("/exp/output-0.dat");
    const auto back = fs.read("/exp/output-0.dat", 0, 4096);
    std::printf("output-0.dat: size=%llu, first page read back %zu bytes\n",
                static_cast<unsigned long long>(st.size), back.size());
    const auto names = fs.readdir("/exp/");
    std::printf("readdir(/exp/): %zu entries\n", names.size());
    for (const auto& n : names) std::printf("  %s\n", n.c_str());

    client_mid.finalize();
    for (auto& d : daemons_mid) d->finalize();
  });
  eng.run();

  std::printf("\nchunk distribution:");
  for (std::size_t i = 0; i < daemons.size(); ++i) {
    std::printf(" d%zu=%zu", i, daemons[i]->chunks_stored());
  }
  std::printf("\n\n");

  std::vector<const prof::ProfileStore*> stores{&client_mid.profile()};
  for (const auto& d : daemons_mid) stores.push_back(&d->profile());
  const auto summary = prof::ProfileSummary::build(stores);
  std::printf("%s", summary.format(4).c_str());
  std::printf("virtual time: %.3f ms\n", sim::to_millis(eng.now()));
  return 0;
}
