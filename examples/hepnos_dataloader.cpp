// hepnos_dataloader: the paper's §V-C scenario as a runnable example.
//
// Deploys a HEPnOS service under a Table IV configuration (default C3),
// runs the data-loader step on every client, and walks through the
// SYMBIOSYS diagnosis workflow: dominant callpaths, per-interval breakdown,
// blocked-ULT sampling, unaccounted time, and the system-statistics summary.
//
//   $ ./hepnos_dataloader [c1|c2|c3|c4|c5|c6|c7] [events_per_client]
#include <cstdio>
#include <cstring>
#include <string>

#include "symbiosys/analysis.hpp"
#include "workloads/hepnos_world.hpp"
#include "workloads/table4.hpp"

namespace prof = sym::prof;
namespace sim = sym::sim;
using namespace sym::workloads;

namespace {

HepnosConfig pick_config(const char* name) {
  for (auto& cfg : table4_all()) {
    if (name != nullptr &&
        (cfg.name == name ||
         (std::strlen(name) == 2 && cfg.name[1] == std::toupper(name[1]) &&
          std::toupper(name[0]) == 'C' && cfg.name[1] == name[1]))) {
      return cfg;
    }
  }
  return table4_c3();
}

}  // namespace

int main(int argc, char** argv) {
  HepnosConfig cfg =
      argc > 1 ? pick_config(argv[1]) : table4_c3();
  const std::uint32_t events =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1024;

  std::printf("%s\n", format_table4().c_str());
  std::printf("running configuration %s with %u events per client\n\n",
              cfg.name.c_str(), events);

  HepnosWorld::Params params;
  params.config = cfg;
  params.file_model.events_per_file = events;
  params.file_model.payload_bytes = 512;
  HepnosWorld world(params);
  world.run();

  std::printf("data-loader makespan: %.3f ms; %llu events stored across %zu "
              "providers\n\n",
              sim::to_millis(world.makespan()),
              static_cast<unsigned long long>(world.events_stored()),
              world.server_count());

  // 1. Dominant callpaths (the paper: sdskv_put_packed, at any scale).
  const auto profile = prof::ProfileSummary::build(world.all_profiles());
  std::printf("%s\n", profile.format(3).c_str());

  // 2. Resource saturation: blocked-ULT statistics at request start.
  std::uint64_t blocked_sum = 0, blocked_n = 0, blocked_max = 0;
  for (const auto* ts : world.server_traces()) {
    for (const auto& ev : ts->events()) {
      if (ev.kind != prof::TraceEventKind::kTargetStart) continue;
      blocked_sum += ev.blocked_ults;
      blocked_max = std::max<std::uint64_t>(blocked_max, ev.blocked_ults);
      ++blocked_n;
    }
  }
  std::printf("blocked ULTs at request start: mean %.1f, max %llu over %llu "
              "samples\n",
              blocked_n ? static_cast<double>(blocked_sum) / blocked_n : 0.0,
              static_cast<unsigned long long>(blocked_max),
              static_cast<unsigned long long>(blocked_n));

  // 3. Unaccounted time (progress starvation indicator).
  if (const auto* cb = profile.find_by_leaf("sdskv_put_packed_rpc")) {
    std::printf("unaccounted origin time: %.3f ms of %.3f ms (%.1f%%)\n",
                cb->unaccounted_ns() / 1e6, cb->cumulative_ns / 1e6,
                100.0 * cb->unaccounted_ns() / cb->cumulative_ns);
  }

  // 4. System statistics.
  const auto sys = prof::SysStatsSummary::build(world.all_sysstats());
  std::printf("\n%s", sys.format().c_str());
  return 0;
}
