// sonata_queries: remote JSON document storage with in-place queries.
//
// Stores a collection of particle-physics-flavoured JSON documents in a
// Sonata provider and runs jx9lite filter queries *server-side* — the
// capability Sonata exists for (§V-B). Also demonstrates the eager-buffer
// overflow path: the batched store ships the whole JSON array as RPC
// metadata, which triggers Mercury's internal RDMA for the excess.
//
//   $ ./sonata_queries
#include <cstdio>
#include <string>

#include "margolite/instance.hpp"
#include "services/sonata/json.hpp"
#include "services/sonata/sonata.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/analysis.hpp"

namespace sim = sym::sim;
namespace ofi = sym::ofi;
namespace margo = sym::margo;
namespace sonata = sym::sonata;
namespace json = sym::json;
namespace prof = sym::prof;

int main() {
  sim::Engine engine(11);
  sim::Cluster cluster(engine, sim::ClusterParams{.node_count = 2});
  ofi::Fabric fabric(cluster);

  auto& sproc = cluster.spawn_process(0, "sonata-server");
  margo::Instance server(fabric, sproc,
                         margo::InstanceConfig{.server = true,
                                               .handler_es = 2});
  sonata::Provider provider(server, 1);

  auto& cproc = cluster.spawn_process(1, "sonata-client");
  margo::Instance client(fabric, cproc, margo::InstanceConfig{});
  sonata::Client db(client);

  server.start();
  client.start();
  client.spawn([&] {
    db.create_collection(server.addr(), 1, "collisions");

    // Batched store: 2,000 events in one JSON array (overflows the eager
    // buffer -> internal RDMA, visible in the PVARs).
    std::string arr = "[";
    for (int i = 0; i < 2000; ++i) {
      if (i != 0) arr += ",";
      arr += R"({"evt": )" + std::to_string(i) + R"(, "pt": )" +
             std::to_string(5.0 + (i % 97)) + R"(, "detector": ")" +
             (i % 3 == 0 ? "EMCAL" : "HCAL") + R"(", "vertex": {"z": )" +
             std::to_string(-5.0 + 0.01 * i) + "}}";
    }
    arr += "]";
    std::uint32_t stored = 0;
    db.store_multi(server.addr(), 1, "collisions", arr, &stored);
    std::printf("stored %u documents (%zu bytes of RPC metadata, eager "
                "overflows: %llu)\n\n",
                stored, arr.size(),
                static_cast<unsigned long long>(
                    client.hg_class().eager_overflows()));

    // In-place queries, evaluated on the server.
    const char* queries[] = {
        "$pt > 95 && $detector == \"EMCAL\"",
        "$vertex.z > 14.9",
        "exists($vertex.z) && !($detector == \"HCAL\")",
    };
    for (const char* q : queries) {
      std::vector<std::string> matches;
      db.filter(server.addr(), 1, "collisions", q, &matches);
      std::printf("query %-45s -> %4zu matches\n", q, matches.size());
      if (!matches.empty()) {
        std::printf("      first: %s\n", matches.front().c_str());
      }
    }

    client.finalize();
    server.finalize();
  });
  engine.run();

  const auto summary =
      prof::ProfileSummary::build({&server.profile(), &client.profile()});
  std::printf("\n%s", summary.format(3).c_str());
  return 0;
}
