// cache_fairness_study: placement A/B and multi-tenant fairness study of
// the blockcache tier (src/services/blockcache), the bbThemis/ThemisIO
// scenario pair the cache exists to reproduce.
//
// Scenario 1 "seq-readers" — placement A/B. Streaming readers run against
// hash vs. locality-aligned placement. Aligned placement keeps stripe-long
// runs of consecutive blocks on one server, so the server's sequential-miss
// readahead batches whole runs into single large backend reads (bbThemis's
// OST-alignment effect); hash placement scatters adjacent blocks and every
// miss pays its own backend round trip. Acceptance: aligned issues at most
// half the backend reads and finishes strictly earlier.
//
// Scenario 2 "two-tenant-contention" — fairness A/B/C. A wide job (4
// clients) and a narrow job (1 client) stream through one cache server
// whose device bandwidth is throttled so the server is the contended
// resource. Under FIFO the wide job captures a queue-proportional share and
// the delivered byte-rates gap apart; size-fair equalizes byte-rates
// regardless of width; job-fair grants width-weighted shares. Acceptance:
// the size-fair rate gap is smaller than the FIFO gap.
//
// Every cell is run at several worker counts and the full measurement
// digest (zipkin trace export + dominant-callpath table + events_processed
// + final virtual time) must be bit-identical — the study doubles as a
// determinism check over the cache tier; any divergence fails the bench.
//
// Results land in BENCH_cache.json (override with --out PATH). --smoke
// shrinks volumes and the worker sweep for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "symbiosys/zipkin.hpp"
#include "workloads/cache_world.hpp"

using namespace bench;

namespace {

namespace bc = sym::blockcache;
using sym::workloads::CachePattern;
using sym::workloads::CacheWorld;
using sym::workloads::TenantSpec;

struct Digest {
  std::string zipkin;
  std::string profile;
  std::uint64_t events_processed = 0;
  sim::TimeNs final_now = 0;

  bool operator==(const Digest&) const = default;
};

struct Cell {
  std::string scenario;
  std::string placement;
  std::string policy;
  std::uint32_t workers_checked = 0;
  bool deterministic = true;
  double virtual_ms = 0;
  double wall_ms = 0;
  std::uint64_t backend_reads = 0;
  std::uint64_t backend_read_bytes = 0;
  double hit_ratio = 0;
  std::uint64_t writeback_ops = 0;
  std::uint64_t evictions = 0;
  std::uint64_t events_processed = 0;
  // Fairness cells: delivered byte-rate per tenant and the relative gap.
  double rate_wide = 0;
  double rate_narrow = 0;
  double rate_gap = 0;
  std::string dominant_callpath;
};

/// Scenario 1: streaming readers, 4 cache servers, stripe-long readahead.
CacheWorld::Params seq_reader_params(bc::Placement placement, bool smoke) {
  CacheWorld::Params p;
  p.cache_servers = 4;
  p.placement = placement;
  p.stripe_blocks = 16;
  p.cache.readahead_blocks = 16;
  p.cache.policy = bc::SchedPolicy::kSizeFair;
  p.cache.flush_period = 0;  // read-only scenario: no flusher
  TenantSpec t;
  t.width = 2;
  t.blocks_per_client = smoke ? 32 : 64;
  t.passes = 2;
  t.pattern = CachePattern::kSeqRead;
  p.tenants = {t, t};
  p.exec.lane_count = 0;  // one lane per node
  p.exec.lookahead = sim::usec(2);
  return p;
}

/// Scenario 2: wide vs. narrow tenant contending for one throttled server.
CacheWorld::Params contention_params(bc::SchedPolicy policy, bool smoke) {
  CacheWorld::Params p;
  p.cache_servers = 1;
  p.cache.policy = policy;
  p.cache.capacity_blocks = 320;  // both working sets stay resident
  // Throttle the cache device so per-block service (~262 us) dominates the
  // client RPC round trip and the dispatcher's policy decides the rates.
  p.cache.service_bw_bytes_per_ns = 0.25;
  TenantSpec wide;  // 4 client processes
  wide.width = 4;
  wide.blocks_per_client = smoke ? 16 : 32;
  wide.passes = smoke ? 4 : 8;
  wide.pattern = CachePattern::kSeqRead;
  TenantSpec narrow = wide;  // same total blocks through 1 client
  narrow.width = 1;
  narrow.blocks_per_client = 4 * wide.blocks_per_client;
  p.tenants = {wide, narrow};
  p.exec.lane_count = 0;
  p.exec.lookahead = sim::usec(2);
  return p;
}

/// Run one configuration once and fill the cell + digest from it.
Digest run_once(const CacheWorld::Params& params, std::uint32_t workers,
                Cell* cell) {
  CacheWorld::Params p = params;
  p.exec.worker_count = workers;
  CacheWorld world(p);
  const auto t0 = std::chrono::steady_clock::now();
  world.run();
  const auto t1 = std::chrono::steady_clock::now();

  Digest d;
  d.zipkin = prof::to_zipkin_json(prof::TraceSummary::build(world.all_traces()));
  const auto summary = prof::ProfileSummary::build(world.all_profiles());
  d.profile = summary.format(10);
  d.events_processed = world.engine().events_processed();
  d.final_now = world.engine().now();

  if (cell != nullptr) {
    cell->virtual_ms = sim::to_millis(world.makespan());
    cell->wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    cell->backend_reads = world.total_backend_reads();
    cell->backend_read_bytes = world.total_backend_read_bytes();
    const auto total = world.total_hits() + world.total_misses();
    cell->hit_ratio =
        total == 0 ? 0.0
                   : static_cast<double>(world.total_hits()) /
                         static_cast<double>(total);
    cell->writeback_ops = world.total_writeback_ops();
    cell->evictions = world.total_evictions();
    cell->events_processed = d.events_processed;
    cell->rate_wide = world.tenant_byte_rate(0);
    cell->rate_narrow = world.tenant_byte_rate(1);
    const double hi = std::max(cell->rate_wide, cell->rate_narrow);
    const double lo = std::min(cell->rate_wide, cell->rate_narrow);
    cell->rate_gap = hi > 0 ? (hi - lo) / hi : 0.0;
    if (!summary.callpaths.empty()) {
      cell->dominant_callpath = summary.callpaths.front().name;
    }
    std::printf("-- dominant callpaths [%s / %s / %s] --\n%s\n",
                cell->scenario.c_str(), cell->placement.c_str(),
                cell->policy.c_str(), d.profile.c_str());
  }
  return d;
}

/// Run a cell at every worker count, asserting digest bit-identity.
Cell run_cell(std::string scenario, const CacheWorld::Params& params,
              const std::vector<std::uint32_t>& workers) {
  Cell c;
  c.scenario = std::move(scenario);
  c.placement = bc::to_string(params.placement);
  c.policy = bc::to_string(params.cache.policy);
  const Digest baseline = run_once(params, workers.front(), &c);
  c.workers_checked = static_cast<std::uint32_t>(workers.size());
  for (std::size_t i = 1; i < workers.size(); ++i) {
    const Digest got = run_once(params, workers[i], nullptr);
    if (!(got == baseline)) {
      c.deterministic = false;
      std::printf("!! digest mismatch at workers=%u (%s/%s/%s)\n",
                  workers[i], c.scenario.c_str(), c.placement.c_str(),
                  c.policy.c_str());
    }
  }
  std::printf("cell %-22s placement %-7s policy %-9s  virtual %9.3f ms  "
              "backend reads %5llu  hit %.3f  gap %.3f  digests[x%u] %s\n\n",
              c.scenario.c_str(), c.placement.c_str(), c.policy.c_str(),
              c.virtual_ms,
              static_cast<unsigned long long>(c.backend_reads), c.hit_ratio,
              c.rate_gap, c.workers_checked,
              c.deterministic ? "PASS" : "FAIL");
  return c;
}

void write_json(const std::string& path, bool smoke,
                const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"cache_fairness_study\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"scenario\": \"%s\", \"placement\": \"%s\", "
        "\"policy\": \"%s\", \"workers_checked\": %u, "
        "\"deterministic\": %s, \"virtual_ms\": %.6f, \"wall_ms\": %.3f, "
        "\"backend_reads\": %llu, \"backend_read_bytes\": %llu, "
        "\"hit_ratio\": %.4f, \"writeback_ops\": %llu, \"evictions\": %llu, "
        "\"events_processed\": %llu, \"rate_wide_bps\": %.0f, "
        "\"rate_narrow_bps\": %.0f, \"rate_gap\": %.4f, "
        "\"dominant_callpath\": \"%s\"}%s\n",
        c.scenario.c_str(), c.placement.c_str(), c.policy.c_str(),
        c.workers_checked, c.deterministic ? "true" : "false", c.virtual_ms,
        c.wall_ms, static_cast<unsigned long long>(c.backend_reads),
        static_cast<unsigned long long>(c.backend_read_bytes), c.hit_ratio,
        static_cast<unsigned long long>(c.writeback_ops),
        static_cast<unsigned long long>(c.evictions),
        static_cast<unsigned long long>(c.events_processed), c.rate_wide,
        c.rate_narrow, c.rate_gap, c.dominant_callpath.c_str(),
        i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_cache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  print_header("Blockcache placement & fair-share scheduling study",
               "bbThemis OST-alignment / ThemisIO fair-share scenarios");

  const std::vector<std::uint32_t> workers =
      smoke ? std::vector<std::uint32_t>{1, 2}
            : std::vector<std::uint32_t>{1, 2, 4};

  std::vector<Cell> cells;
  // Scenario 1: placement A/B under streaming readers.
  const Cell hash = run_cell(
      "seq-readers", seq_reader_params(bc::Placement::kHash, smoke), workers);
  const Cell aligned = run_cell(
      "seq-readers", seq_reader_params(bc::Placement::kLocalityAligned, smoke),
      workers);
  cells.push_back(hash);
  cells.push_back(aligned);

  // Scenario 2: fairness policies under two-tenant contention.
  Cell fifo, size_fair;
  for (const auto policy : {bc::SchedPolicy::kFifo, bc::SchedPolicy::kSizeFair,
                            bc::SchedPolicy::kJobFair}) {
    Cell c = run_cell("two-tenant-contention",
                      contention_params(policy, smoke), workers);
    if (policy == bc::SchedPolicy::kFifo) fifo = c;
    if (policy == bc::SchedPolicy::kSizeFair) size_fair = c;
    cells.push_back(std::move(c));
  }

  write_json(out_path, smoke, cells);
  std::printf("wrote %s\n\n", out_path.c_str());

  bool ok = true;
  for (const auto& c : cells) {
    if (!c.deterministic) ok = false;
  }
  std::printf("determinism: digests identical across worker counts at every "
              "cell: %s\n", ok ? "PASS" : "FAIL");

  const double read_ratio =
      aligned.backend_reads > 0
          ? static_cast<double>(hash.backend_reads) /
                static_cast<double>(aligned.backend_reads)
          : 0.0;
  const bool placement_ok = read_ratio >= 2.0 &&
                            aligned.virtual_ms < hash.virtual_ms;
  std::printf("acceptance: aligned placement batches backend reads "
              "(%llu -> %llu, x%.1f fewer) and finishes earlier "
              "(%.3f ms vs %.3f ms): %s\n",
              static_cast<unsigned long long>(hash.backend_reads),
              static_cast<unsigned long long>(aligned.backend_reads),
              read_ratio, aligned.virtual_ms, hash.virtual_ms,
              placement_ok ? "PASS" : "FAIL");
  if (!placement_ok) ok = false;

  const bool fairness_ok = size_fair.rate_gap < fifo.rate_gap;
  std::printf("acceptance: size-fair narrows the tenant byte-rate gap vs "
              "FIFO (%.3f -> %.3f): %s\n",
              fifo.rate_gap, size_fair.rate_gap,
              fairness_ok ? "PASS" : "FAIL");
  if (!fairness_ok) ok = false;

  return ok ? 0 : 1;
}
