// fig7_sonata_breakdown: reproduces Fig. 7 — mapping Sonata's cumulative
// target-side RPC execution time to individual steps (§V-B).
//
// Setup per the paper: one origin and one target entity on separate compute
// nodes; the benchmark repeatedly invokes sonata_store_multi_json to store a
// fixed-length JSON record array (50,000 entries) in batches of 5,000.
//
// Paper's findings:
//   * the JSON document travels as RPC metadata, so large batches overflow
//     Mercury's eager buffer and take the internal-RDMA path (t3->t4);
//   * the internal RDMA transfer time is relatively low, while input
//     deserialization accounts for ~27% of overall target execution time.
#include <string>

#include "bench/common.hpp"
#include "services/sonata/json.hpp"
#include "services/sonata/sonata.hpp"
#include "sofi/fabric.hpp"

using namespace bench;
namespace sonata = sym::sonata;
namespace json = sym::json;
namespace margo = sym::margo;
namespace ofi = sym::ofi;

namespace {

/// Build one batch of JSON records as a serialized array (the RPC metadata).
std::string make_batch_json(std::uint32_t base, std::uint32_t count) {
  json::Array arr;
  arr.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    json::Object rec;
    rec["id"] = json::Value(static_cast<std::int64_t>(base + i));
    rec["pt"] = json::Value(12.5 + 0.001 * i);
    rec["detector"] = json::Value(std::string("EMCAL"));
    json::Object vertex;
    vertex["x"] = json::Value(0.1 * i);
    vertex["y"] = json::Value(-0.2 * i);
    vertex["z"] = json::Value(3.14);
    rec["vertex"] = json::Value(std::move(vertex));
    arr.push_back(json::Value(std::move(rec)));
  }
  return json::dump(json::Value(std::move(arr)));
}

}  // namespace

int main() {
  print_header(
      "Sonata: breakdown of cumulative target RPC execution time for "
      "sonata_store_multi_json (50,000 records, batch 5,000)",
      "Fig. 7; paper: internal RDMA low; input deserialization ~27% of "
      "target execution");

  sim::Engine eng(42);
  sim::ClusterParams cp;
  cp.node_count = 2;
  sim::Cluster cluster(eng, cp);
  ofi::Fabric fabric(cluster);

  auto& sproc = cluster.spawn_process(0, "sonata-provider");
  margo::InstanceConfig sc;
  sc.server = true;
  sc.handler_es = 4;
  margo::Instance server(fabric, sproc, sc);
  sonata::Provider provider(server, 1);

  auto& cproc = cluster.spawn_process(1, "sonata-client");
  margo::Instance client(fabric, cproc, margo::InstanceConfig{});
  sonata::Client sclient(client);

  constexpr std::uint32_t kTotalRecords = 50'000;
  constexpr std::uint32_t kBatch = 5'000;

  server.start();
  client.start();
  client.spawn([&] {
    sclient.create_collection(server.addr(), 1, "events");
    for (std::uint32_t base = 0; base < kTotalRecords; base += kBatch) {
      std::uint32_t stored = 0;
      const auto status = sclient.store_multi(
          server.addr(), 1, "events", make_batch_json(base, kBatch), &stored);
      if (status != sonata::Status::kOk || stored != kBatch) {
        std::printf("ERROR: store_multi failed (status=%d stored=%u)\n",
                    static_cast<int>(status), stored);
      }
    }
    client.finalize();
    server.finalize();
  });
  eng.run();

  std::printf("stored %llu documents; eager overflows on the origin: %llu "
              "(every batch takes the internal-RDMA path)\n\n",
              static_cast<unsigned long long>(
                  provider.db().size("events")),
              static_cast<unsigned long long>(
                  client.hg_class().eager_overflows()));

  // Target-side breakdown for the store_multi callpath.
  const auto leaf = prof::hash16("sonata_store_multi_json");
  const std::vector<const prof::ProfileStore*> stores{&server.profile()};
  const double handler =
      sum_target_interval(stores, prof::Interval::kHandlerWait, leaf);
  const double rdma =
      sum_target_interval(stores, prof::Interval::kInternalRdma, leaf);
  const double deser =
      sum_target_interval(stores, prof::Interval::kInputDeser, leaf);
  const double exec =
      sum_target_interval(stores, prof::Interval::kTargetExec, leaf);
  const double outser =
      sum_target_interval(stores, prof::Interval::kOutputSer, leaf);
  const double cb =
      sum_target_interval(stores, prof::Interval::kTargetCallback, leaf);
  // Table III: input deserialization (t6->t7) is contained in the target
  // ULT execution interval (t5->t8); report it as its own slice.
  const double total = handler + rdma + exec + outser + cb;
  const double exec_excl = exec - deser;

  auto row = [&](const char* name, double v) {
    std::printf("  %-38s %10.3f ms  (%5.1f%%)\n", name, v / 1e6,
                100.0 * v / total);
  };
  std::printf("cumulative target execution time: %.3f ms\n", total / 1e6);
  row("target_ult_handler_time", handler);
  row("target_internal_rdma_transfer_time", rdma);
  row("input_deserialization_time", deser);
  row("handler execution (exclusive of deser)", exec_excl);
  row("output_serialization_time", outser);
  row("target_completion_callback_time", cb);
  std::printf("\npaper: input deserialization ~27%% of overall target "
              "execution; internal RDMA relatively low\n");
  return 0;
}
