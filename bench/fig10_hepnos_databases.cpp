// fig10_hepnos_databases: reproduces Fig. 10 — sampling blocked ULTs from
// Argobots for sdskv_put_packed under C2 (32 databases) vs C3 (8 databases),
// plus the C2 vs C3 RPC performance comparison (§V-C3).
//
// Paper's findings:
//   * The map backend cannot insert in parallel; 32 databases generate a
//     flood of small RPCs whose handler ULTs pile up blocked (vertical-line
//     patterns of requests that arrive together but finish in succession).
//   * C3 (8 databases) reduces the serialization severity and improves RPC
//     performance by 28.5%.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"

using namespace bench;

namespace {

struct Result {
  double total_ns = 0;       // cumulative origin execution (end-to-end)
  double mean_blocked = 0;   // mean blocked-ULT count sampled at t5
  std::uint32_t max_blocked = 0;
  std::uint64_t rpcs = 0;
  std::vector<std::pair<sim::TimeNs, std::uint32_t>> series;  // per target
};

Result run_config(const sym::workloads::HepnosConfig& cfg) {
  auto params = hepnos_params(cfg, /*events_per_client=*/2048);
  sym::workloads::HepnosWorld world(params);
  world.run();

  Result r;
  const auto leaf = prof::hash16("sdskv_put_packed_rpc");
  for (const auto* store : world.all_profiles()) {
    for (const auto& [key, stats] : store->entries()) {
      if (key.side != prof::Side::kOrigin) continue;
      if (prof::leaf_of(key.breadcrumb) != leaf) continue;
      r.total_ns += stats.at(prof::Interval::kOriginExec).sum_ns;
      r.rpcs += stats.at(prof::Interval::kOriginExec).count;
    }
  }
  // Blocked-ULT samples from the target-start trace events (the paper
  // samples Argobots when the request begins execution on the target).
  std::uint64_t sum = 0, n = 0;
  for (const auto* ts : world.server_traces()) {
    for (const auto& ev : ts->events()) {
      if (ev.kind != prof::TraceEventKind::kTargetStart) continue;
      sum += ev.blocked_ults;
      ++n;
      r.max_blocked = std::max(r.max_blocked, ev.blocked_ults);
      r.series.emplace_back(ev.local_ts, ev.blocked_ults);
    }
  }
  if (n > 0) r.mean_blocked = static_cast<double>(sum) / n;
  std::sort(r.series.begin(), r.series.end());
  return r;
}

void print_series(const char* name, const Result& r) {
  std::printf("\n%s blocked-ULT samples (time_ms blocked), every %zu-th of "
              "%zu samples:\n",
              name, std::max<std::size_t>(1, r.series.size() / 24),
              r.series.size());
  const std::size_t step = std::max<std::size_t>(1, r.series.size() / 24);
  for (std::size_t i = 0; i < r.series.size(); i += step) {
    std::printf("  %8.3f  %u\n", sim::to_millis(r.series[i].first),
                r.series[i].second);
  }
}

}  // namespace

int main() {
  print_header(
      "HEPnOS: blocked ULTs sampled from argolite at request start, C2 (32 "
      "databases) vs C3 (8 databases)",
      "Fig. 10 + §V-C3; paper: C3 improves RPC performance by 28.5% and "
      "reduces serialization severity");

  const Result c2 = run_config(sym::workloads::table4_c2());
  const Result c3 = run_config(sym::workloads::table4_c3());

  std::printf("C2: rpcs=%llu  cumulative origin exec=%10.3f ms  blocked "
              "mean=%6.1f max=%u\n",
              static_cast<unsigned long long>(c2.rpcs), c2.total_ns / 1e6,
              c2.mean_blocked, c2.max_blocked);
  std::printf("C3: rpcs=%llu  cumulative origin exec=%10.3f ms  blocked "
              "mean=%6.1f max=%u\n",
              static_cast<unsigned long long>(c3.rpcs), c3.total_ns / 1e6,
              c3.mean_blocked, c3.max_blocked);

  std::printf("\nC3 vs C2: RPC performance improves by %.1f%% (paper: "
              "28.5%%); RPC count drops %.1fx\n",
              100.0 * (c2.total_ns - c3.total_ns) / c2.total_ns,
              static_cast<double>(c2.rpcs) / static_cast<double>(c3.rpcs));
  std::printf("blocked-ULT severity: mean %.1f -> %.1f, max %u -> %u\n",
              c2.mean_blocked, c3.mean_blocked, c2.max_blocked,
              c3.max_blocked);

  print_series("C2", c2);
  print_series("C3", c3);

  // Full series as CSV for plotting (see bench/plots/plot_figures.gp).
  for (const auto* r : {&c2, &c3}) {
    const char* path = r == &c2 ? "fig10_c2_blocked.csv" : "fig10_c3_blocked.csv";
    std::ofstream os(path);
    os << "time_ms,blocked_ults\n";
    for (const auto& [t, blocked] : r->series) {
      os << sim::to_millis(t) << ',' << blocked << '\n';
    }
    std::printf("series written to %s\n", path);
  }
  return 0;
}
