// ablation_adaptive: closed-loop adaptive runtime control on the Fig. 9/10
// HEPnOS ingestion experiment. Reruns the starved C1 configuration (5 ESs,
// saturated handler pool) across a load sweep, with the full adaptive
// controller either off (static C1, the paper's measured pathology) or on
// (handler autoscale + elastic downscale + admission watermark on every
// server, adaptive OFI_max_events + eager-threshold autotune on every
// client).
//
// The paper's Fig. 10 attributes C1's inflated latency to t4->t5 queueing:
// requests wait in the handler pool behind blocked ULTs. The controller
// must detect that backlog through the PVAR interface and drive it down;
// the headline metric is therefore the mean t4->t5 handler-wait interval.
// Every action the controller takes is also recorded as a "policy:*"
// action span, so the adaptation is visible in the very traces used to
// diagnose the problem — the count of those spans is reported per run.
#include <map>

#include "bench/common.hpp"
#include "margolite/policy.hpp"
#include "symbiosys/breadcrumb.hpp"
#include "workloads/hepnos_world.hpp"

using namespace bench;
namespace margo = sym::margo;

namespace {

struct Outcome {
  sim::DurationNs makespan = 0;
  double mean_handler_wait_ns = 0;  ///< mean t4->t5 over all requests
  std::uint64_t handler_wait_count = 0;
  std::size_t action_spans = 0;     ///< "policy:*" spans in the stitched trace
  std::size_t actions = 0;
  unsigned final_es = 0;
  std::uint64_t admission_rejects = 0;
};

/// Mean of the target-side t4->t5 (handler wait) interval over every
/// callpath and entity in the run.
void mean_handler_wait(const std::vector<const prof::ProfileStore*>& stores,
                       Outcome& out) {
  double sum = 0;
  std::uint64_t count = 0;
  for (const auto* store : stores) {
    for (const auto& [key, stats] : store->entries()) {
      if (key.side != prof::Side::kTarget) continue;
      const auto& iv = stats.at(prof::Interval::kHandlerWait);
      sum += iv.sum_ns;
      count += iv.count;
    }
  }
  out.mean_handler_wait_ns = count == 0 ? 0 : sum / static_cast<double>(count);
  out.handler_wait_count = count;
}

/// Count spans whose breadcrumb leaf resolves to a "policy:*" action name.
std::size_t count_action_spans(const prof::TraceSummary& summary) {
  std::size_t n = 0;
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) {
      const auto leaf = prof::leaf_of(sp.breadcrumb);
      if (prof::NameRegistry::global().lookup(leaf).rfind("policy:", 0) == 0)
        ++n;
    }
  }
  return n;
}

Outcome run(std::uint32_t events_per_client, bool adaptive) {
  auto params = hepnos_params(sym::workloads::table4_c1(), events_per_client);
  sym::workloads::HepnosWorld world(params);

  std::vector<std::unique_ptr<margo::PolicyEngine>> engines;
  if (adaptive) {
    for (std::size_t s = 0; s < world.server_count(); ++s) {
      auto e = std::make_unique<margo::PolicyEngine>(
          world.server_instance(s), sim::usec(200));
      e->add_rule("autoscale", margo::PolicyEngine::handler_autoscale(
                                   /*backlog_per_es=*/3.0,
                                   /*consecutive=*/2, /*max_es=*/24));
      e->add_rule("downscale", margo::PolicyEngine::handler_downscale(
                                   /*consecutive=*/10, /*min_es=*/4));
      e->add_rule("admission", margo::PolicyEngine::admission_watermark(
                                   /*high=*/96, /*low=*/8));
      engines.push_back(std::move(e));
    }
    for (std::size_t c = 0; c < world.client_count(); ++c) {
      auto e = std::make_unique<margo::PolicyEngine>(
          world.client_instance(c), sim::usec(200));
      e->add_rule("adaptive_max_events",
                  margo::PolicyEngine::adaptive_max_events(
                      /*consecutive=*/2, /*cap=*/128));
      e->add_rule("eager_autotune",
                  margo::PolicyEngine::eager_threshold_autotune(
                      /*overflow_frac=*/0.5, /*cap=*/1 << 16));
      engines.push_back(std::move(e));
    }
    // Instances start inside world.run(); arm the controllers via a t=0
    // event so their monitor ULTs spawn right after.
    world.engine().at(0, [&engines] {
      for (auto& e : engines) e->start();
    });
  }
  world.run();

  Outcome out;
  out.makespan = world.makespan();
  mean_handler_wait(world.all_profiles(), out);
  out.action_spans = count_action_spans(
      prof::TraceSummary::build(world.all_traces()));
  for (auto& e : engines) out.actions += e->actions().size();
  out.final_es = world.server_instance(0).handler_es_count();
  for (std::size_t s = 0; s < world.server_count(); ++s)
    out.admission_rejects += world.server_instance(s).admission_rejects();
  return out;
}

}  // namespace

int main() {
  print_header(
      "Closed-loop adaptive control on the starved C1 configuration",
      "the Fig. 9/10 t4->t5 queueing pathology, controller on vs off");

  std::printf("%-8s %-10s %12s %16s %10s %8s %8s %8s\n", "events", "mode",
              "makespan_ms", "mean_t4_t5_us", "requests", "spans", "actions",
              "final_es");
  for (const std::uint32_t events : {1024u, 2048u, 4096u}) {
    const auto off = run(events, false);
    const auto on = run(events, true);
    std::printf("%-8u %-10s %12.3f %16.3f %10llu %8zu %8zu %8u\n", events,
                "static", sim::to_millis(off.makespan),
                off.mean_handler_wait_ns / 1e3,
                static_cast<unsigned long long>(off.handler_wait_count),
                off.action_spans, off.actions, off.final_es);
    std::printf("%-8u %-10s %12.3f %16.3f %10llu %8zu %8zu %8u\n", events,
                "adaptive", sim::to_millis(on.makespan),
                on.mean_handler_wait_ns / 1e3,
                static_cast<unsigned long long>(on.handler_wait_count),
                on.action_spans, on.actions, on.final_es);
    const double dt =
        100.0 * (off.mean_handler_wait_ns - on.mean_handler_wait_ns) /
        (off.mean_handler_wait_ns > 0 ? off.mean_handler_wait_ns : 1.0);
    std::printf("         -> t4->t5 queueing delay reduced %.1f%%; "
                "%zu adaptation actions visible as trace spans"
                " (%llu admission early-rejects)\n",
                dt, on.action_spans,
                static_cast<unsigned long long>(on.admission_rejects));
  }
  return 0;
}
