// overhead_study: the §VI-B staged overhead study on the Mobject write
// workload, plus a host-side hot-path benchmark of the profile store.
//
// Part 1 — staged overheads. The ior+Mobject write workload runs at each of
// the four measurement stages (§VI-B):
//   OFF      instrumentation and measurement disabled
//   STAGE1   metadata (breadcrumb / trace id) propagation only
//   STAGE2   callpath profiling, tracing, system sampling; no PVARs
//   FULL     everything, PVARs integrated on the fly
// For each stage we report the virtual-time makespan (what the simulated
// instrumentation costs do to the workload) and the host wall-clock (what
// the measurement pipeline itself costs the simulator process). The paper's
// acceptance bar is FULL <= 1.5x OFF.
//
// Part 2 — profile-store hot path. ProfileStore::record is on the critical
// path of every instrumented RPC. This compares the open-addressing
// FlatHashMap + last-key-memo store, driven through the batched record
// calls the runtime now makes, against the previous std::unordered_map
// implementation (reproduced below verbatim) driven record by record as
// the pre-PR call sites did, on a deployment-shaped record stream: per op,
// ten intervals across one origin-side and one target-side callpath key.
//
// Results are emitted to BENCH_overhead.json (override with --out PATH).
// --smoke shrinks every iteration count for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "workloads/mobject_world.hpp"

using namespace bench;

namespace {

// ---------------------------------------------------------------------------
// Part 1: staged Mobject write workload
// ---------------------------------------------------------------------------

struct StageResult {
  prof::Level level{};
  double virtual_ms = 0;   ///< mean simulated makespan
  double wall_ms = 0;      ///< mean host wall-clock of world.run()
  double slowdown = 0;     ///< virtual_ms / OFF virtual_ms
  std::size_t trace_events = 0;
  std::size_t profile_entries = 0;
};

StageResult run_stage(prof::Level level, bool smoke) {
  sym::workloads::MobjectWorld::Params p;
  p.ior.clients = smoke ? 4 : 16;
  p.ior.ops_per_client = smoke ? 4 : 64;
  p.ior.object_bytes = 64 * 1024;
  p.ior.read_fraction = 0.0;  // pure write workload (§V-A write path)
  p.instr = level;

  const int repeats = smoke ? 1 : 3;
  StageResult res;
  res.level = level;
  for (int r = 0; r < repeats; ++r) {
    p.seed = 42 + 1000ULL * static_cast<std::uint64_t>(r);
    sym::workloads::MobjectWorld world(p);
    const auto t0 = std::chrono::steady_clock::now();
    world.run();
    const auto t1 = std::chrono::steady_clock::now();
    res.virtual_ms += sim::to_millis(world.makespan());
    res.wall_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0) {
      for (const auto* t : world.all_traces()) res.trace_events += t->size();
      for (const auto* s : world.all_profiles()) {
        res.profile_entries += s->size();
      }
    }
  }
  res.virtual_ms /= repeats;
  res.wall_ms /= repeats;
  return res;
}

// ---------------------------------------------------------------------------
// Part 2: profile-store record hot path
// ---------------------------------------------------------------------------

/// The pre-flat-hash ProfileStore — hash function and map reproduced
/// verbatim from the former implementation, so the comparison is against
/// the real predecessor rather than a strawman.
struct LegacyCallpathKeyHash {
  std::size_t operator()(const prof::CallpathKey& k) const noexcept {
    std::uint64_t h = k.breadcrumb * 0x9E3779B97F4A7C15ULL;
    h ^= (static_cast<std::uint64_t>(k.self_ep) << 33) ^
         (static_cast<std::uint64_t>(k.peer_ep) << 1) ^
         static_cast<std::uint64_t>(k.side);
    h *= 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

class LegacyProfileStore {
 public:
  void record(const prof::CallpathKey& key, prof::Interval iv, double ns) {
    data_[key].at(iv).add(ns);
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] double checksum() const noexcept {
    double c = 0;
    // symlint: allow(unordered-iter) reason=anti-DCE checksum only; the
    // value never reaches exported output
    for (const auto& [k, s] : data_) {
      c += s.at(prof::Interval::kOriginExec).sum_ns +
           s.at(prof::Interval::kTargetExec).sum_ns;
    }
    return c;
  }

 private:
  std::unordered_map<prof::CallpathKey, prof::CallpathStats,
                     LegacyCallpathKeyHash>
      data_;
};

/// A record stream shaped like the simulated deployment executes it on the
/// host: one provider, kClients client instances each with their own store
/// (stores are per-instance exactly as in margolite), interleaving op by op
/// as the fiber scheduler runs them. Per op, at Full instrumentation, the
/// origin completion records four intervals on the client's callpath key,
/// the target completion records five on the provider's, and the response
/// on_sent callback records one more — ten records per op.
///
/// The new store is driven through the batched calls the runtime makes
/// (record_batch); the legacy store is driven record by record, which is
/// what the pre-PR call sites did (there was no cheaper way to drive it —
/// every record paid the full hash + find).
constexpr std::size_t kClients = 16;
constexpr std::size_t kRecordsPerOp = 10;

struct StreamKeys {
  std::vector<prof::CallpathKey> origin, target;
};

StreamKeys make_stream_keys() {
  StreamKeys keys;
  const auto bc = prof::extend(0x1111, 0x55AA);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    keys.origin.push_back({bc, prof::Side::kOrigin, c, 100});
    keys.target.push_back({bc, prof::Side::kTarget, 100, c});
  }
  return keys;
}

double time_legacy_stream(std::vector<LegacyProfileStore>& client_stores,
                          LegacyProfileStore& server_store,
                          std::size_t requests) {
  const StreamKeys keys = make_stream_keys();
  std::size_t c = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    const double ns = static_cast<double>(1 + (r & 0xFF));
    const auto& ok = keys.origin[c];
    client_stores[c].record(ok, prof::Interval::kOriginExec, ns);
    client_stores[c].record(ok, prof::Interval::kInputSer, ns);
    client_stores[c].record(ok, prof::Interval::kOriginCallback, ns);
    client_stores[c].record(ok, prof::Interval::kOutputDeser, ns);
    const auto& tk = keys.target[c];
    server_store.record(tk, prof::Interval::kHandlerWait, ns);
    server_store.record(tk, prof::Interval::kTargetExec, ns);
    server_store.record(tk, prof::Interval::kInputDeser, ns);
    server_store.record(tk, prof::Interval::kOutputSer, ns);
    server_store.record(tk, prof::Interval::kInternalRdma, ns);
    server_store.record(tk, prof::Interval::kTargetCallback, ns);
    if (++c == kClients) c = 0;
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

double time_flat_stream(std::vector<prof::ProfileStore>& client_stores,
                        prof::ProfileStore& server_store,
                        std::size_t requests) {
  using S = prof::IntervalSample;
  const StreamKeys keys = make_stream_keys();
  std::size_t c = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    const double ns = static_cast<double>(1 + (r & 0xFF));
    client_stores[c].record_batch(
        keys.origin[c], S{prof::Interval::kOriginExec, ns},
        S{prof::Interval::kInputSer, ns},
        S{prof::Interval::kOriginCallback, ns},
        S{prof::Interval::kOutputDeser, ns});
    server_store.record_batch(
        keys.target[c], S{prof::Interval::kHandlerWait, ns},
        S{prof::Interval::kTargetExec, ns},
        S{prof::Interval::kInputDeser, ns},
        S{prof::Interval::kOutputSer, ns},
        S{prof::Interval::kInternalRdma, ns});
    // The response on_sent callback fires later; it is a single record.
    server_store.record(keys.target[c], prof::Interval::kTargetCallback, ns);
    if (++c == kClients) c = 0;
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

struct HotPathResult {
  std::size_t records = 0;
  double legacy_ns_per_record = 0;
  double flat_ns_per_record = 0;
  double speedup = 0;
};

double flat_checksum(const prof::ProfileStore& s) {
  double c = 0;
  for (const auto& [k, st] : s.entries()) {
    c += st.at(prof::Interval::kOriginExec).sum_ns +
         st.at(prof::Interval::kTargetExec).sum_ns;
  }
  return c;
}

HotPathResult run_hot_path(bool smoke) {
  const std::size_t requests = smoke ? 20'000 : 2'000'000;
  const std::size_t records = requests * kRecordsPerOp;

  HotPathResult res;
  res.records = records;
  // Warm-up + best-of-N to shave scheduler noise off both sides equally.
  const int rounds = smoke ? 2 : 5;
  double legacy_best = 1e300, flat_best = 1e300;
  double check_legacy = 0, check_flat = 0;
  for (int i = 0; i < rounds; ++i) {
    std::vector<LegacyProfileStore> clients(kClients);
    LegacyProfileStore server;
    const double t = time_legacy_stream(clients, server, requests);
    if (t < legacy_best) legacy_best = t;
    check_legacy = server.checksum();
    for (const auto& s : clients) check_legacy += s.checksum();
  }
  for (int i = 0; i < rounds; ++i) {
    std::vector<prof::ProfileStore> clients(kClients);
    prof::ProfileStore server;
    const double t = time_flat_stream(clients, server, requests);
    if (t < flat_best) flat_best = t;
    check_flat = flat_checksum(server);
    for (const auto& s : clients) check_flat += flat_checksum(s);
  }
  if (check_legacy != check_flat) {
    std::fprintf(stderr,
                 "FATAL: store checksums diverge (legacy %.1f vs flat %.1f)\n",
                 check_legacy, check_flat);
    std::exit(1);
  }
  res.legacy_ns_per_record = legacy_best / static_cast<double>(records);
  res.flat_ns_per_record = flat_best / static_cast<double>(records);
  res.speedup = res.legacy_ns_per_record / res.flat_ns_per_record;
  return res;
}

// ---------------------------------------------------------------------------

void write_json(const std::string& path, bool smoke,
                const std::vector<StageResult>& stages,
                const HotPathResult& hot) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"overhead_study\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"stages\": [\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"level\": \"%s\", \"virtual_ms\": %.6f, "
                  "\"wall_ms\": %.3f, \"slowdown_vs_off\": %.4f, "
                  "\"trace_events\": %zu, \"profile_entries\": %zu}%s\n",
                  prof::to_string(s.level), s.virtual_ms, s.wall_ms,
                  s.slowdown, s.trace_events, s.profile_entries,
                  i + 1 < stages.size() ? "," : "");
    out << buf;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"record_hot_path\": {\"records\": %zu, "
                "\"legacy_ns_per_record\": %.2f, \"flat_ns_per_record\": "
                "%.2f, \"speedup\": %.2f}\n}\n",
                hot.records, hot.legacy_ns_per_record, hot.flat_ns_per_record,
                hot.speedup);
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  print_header(
      "Mobject writes: measurement overhead per stage + record hot path",
      "§VI-B staged overhead study");

  const prof::Level levels[] = {prof::Level::kOff, prof::Level::kStage1,
                                prof::Level::kStage2, prof::Level::kFull};
  std::vector<StageResult> stages;
  double off_virtual = 0;
  for (const auto level : levels) {
    StageResult r = run_stage(level, smoke);
    if (level == prof::Level::kOff) off_virtual = r.virtual_ms;
    r.slowdown = off_virtual > 0 ? r.virtual_ms / off_virtual : 0;
    std::printf("%-8s virtual %9.3f ms (x%.3f vs OFF)  wall %8.2f ms  "
                "trace events %6zu  profile entries %4zu\n",
                prof::to_string(level), r.virtual_ms, r.slowdown, r.wall_ms,
                r.trace_events, r.profile_entries);
    stages.push_back(r);
  }

  const HotPathResult hot = run_hot_path(smoke);
  std::printf("\nProfileStore::record hot path (%zu records, %zu client "
              "stores + 1 server store):\n"
              "  legacy unordered_map  %7.2f ns/record\n"
              "  flat hash + memo      %7.2f ns/record   speedup x%.2f\n",
              hot.records, kClients, hot.legacy_ns_per_record,
              hot.flat_ns_per_record, hot.speedup);

  write_json(out_path, smoke, stages, hot);
  std::printf("\nwrote %s\n", out_path.c_str());

  const bool ok = stages.back().slowdown <= 1.5;
  std::printf("acceptance: FULL slowdown %.3f <= 1.5x OFF: %s\n",
              stages.back().slowdown, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
