// ablation_sweeps: parameter sweeps over the design choices DESIGN.md calls
// out, complementing the paper's point configurations:
//
//   1. eager-buffer threshold sweep (Sonata store_multi): where does the
//      internal-RDMA overflow path start to pay off?
//   2. SDSKV backend comparison under the HEPnOS write workload
//      (map vs leveldb-sim vs bdb-sim, paper §V-C backend choices).
//   3. data-loader pipeline depth sweep for the batch-1 pathology (C5).
#include <string>

#include "bench/common.hpp"
#include "margolite/instance.hpp"
#include "services/sonata/sonata.hpp"
#include "workloads/hepnos_world.hpp"

using namespace bench;
namespace margo = sym::margo;
namespace sonata = sym::sonata;
namespace ofi = sym::ofi;

namespace {

// --- 1. eager threshold sweep ----------------------------------------------

sim::DurationNs run_sonata_with_eager_limit(std::size_t eager_limit) {
  sim::Engine eng(42);
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 2});
  ofi::Fabric fabric(cluster);
  auto& sproc = cluster.spawn_process(0, "server");
  margo::InstanceConfig sc;
  sc.server = true;
  sc.handler_es = 2;
  sc.hg.eager_limit = eager_limit;
  margo::Instance server(fabric, sproc, sc);
  sonata::Provider provider(server, 1);
  auto& cproc = cluster.spawn_process(1, "client");
  margo::InstanceConfig cc;
  cc.hg.eager_limit = eager_limit;
  margo::Instance client(fabric, cproc, cc);
  sonata::Client db(client);

  sim::DurationNs elapsed = 0;
  server.start();
  client.start();
  client.spawn([&] {
    db.create_collection(server.addr(), 1, "c");
    std::string arr = "[";
    for (int i = 0; i < 400; ++i) {
      if (i != 0) arr += ",";
      arr += R"({"k": )" + std::to_string(i) + R"(, "pad": ")" +
             std::string(60, 'x') + "\"}";
    }
    arr += "]";
    const auto t0 = eng.now();
    for (int batch = 0; batch < 10; ++batch) {
      db.store_multi(server.addr(), 1, "c", arr, nullptr);
    }
    elapsed = eng.now() - t0;
    client.finalize();
    server.finalize();
  });
  eng.run();
  return elapsed;
}

// --- 2. backend comparison ---------------------------------------------------

sim::DurationNs run_hepnos_backend(sym::sdskv::BackendType backend) {
  auto params = hepnos_params(sym::workloads::table4_c3(), 1024);
  params.backend = backend;
  sym::workloads::HepnosWorld world(params);
  world.run();
  return world.makespan();
}

// --- 3. pipeline depth sweep --------------------------------------------------

sim::DurationNs run_pipeline_depth(std::uint32_t depth) {
  auto cfg = sym::workloads::table4_c5();
  cfg.pipeline_ops = depth;
  auto params = hepnos_params(cfg, 1024);
  sym::workloads::HepnosWorld world(params);
  world.run();
  return world.makespan();
}

}  // namespace

int main() {
  print_header("Ablation sweeps over design parameters",
               "DESIGN.md design-choice ablations (not a paper figure)");

  std::printf("--- eager-buffer threshold (Sonata store_multi, ~28 KB "
              "batches) ---\n");
  for (const std::size_t limit : {1024u, 4096u, 16384u, 65536u, 262144u}) {
    const auto t = run_sonata_with_eager_limit(limit);
    std::printf("  eager_limit %7zu B: %9.3f ms %s\n", limit,
                sim::to_millis(t),
                limit >= 262144 ? "(fully eager: no internal RDMA)" : "");
  }

  std::printf("\n--- SDSKV backend under the HEPnOS write workload (C3) "
              "---\n");
  const struct {
    sym::sdskv::BackendType type;
    const char* name;
  } backends[] = {
      {sym::sdskv::BackendType::kMap, "map"},
      {sym::sdskv::BackendType::kLevelDb, "leveldb-sim"},
      {sym::sdskv::BackendType::kBerkeleyDb, "bdb-sim"},
  };
  for (const auto& b : backends) {
    std::printf("  %-12s makespan %9.3f ms\n", b.name,
                sim::to_millis(run_hepnos_backend(b.type)));
  }

  std::printf("\n--- data-loader pipeline depth (batch 1, C5 pathology) "
              "---\n");
  for (const std::uint32_t depth : {1u, 4u, 16u, 64u, 256u}) {
    std::printf("  pipeline %3u ops: makespan %9.3f ms\n", depth,
                sim::to_millis(run_pipeline_depth(depth)));
  }
  return 0;
}
