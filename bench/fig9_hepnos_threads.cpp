// fig9_hepnos_threads: reproduces Fig. 9 — cumulative target RPC execution
// time for sdskv_put_packed under configuration C1 (5 execution streams) vs
// C2 (20 execution streams).
//
// Paper's findings:
//   * C1 starves handler ULTs: the target ULT handler time (t4->t5)
//     accounts for 26.6% of the total RPC execution time.
//   * C2 adds 15 ESs: overall cumulative RPC execution time improves by
//     53.3%, handler time share drops to ~14%.
#include "bench/common.hpp"

using namespace bench;

namespace {

struct Result {
  double total_ns = 0;
  double handler_ns = 0;
  double exec_ns = 0;
  double other_ns = 0;
  sim::DurationNs makespan = 0;
};

Result run_config(const sym::workloads::HepnosConfig& cfg) {
  auto params = hepnos_params(cfg, /*events_per_client=*/2048);
  sym::workloads::HepnosWorld world(params);
  world.run();

  const auto leaf = prof::hash16("sdskv_put_packed_rpc");
  const auto stores = world.all_profiles();
  Result r;
  r.handler_ns =
      sum_target_interval(stores, prof::Interval::kHandlerWait, leaf);
  r.exec_ns = sum_target_interval(stores, prof::Interval::kTargetExec, leaf);
  r.other_ns =
      sum_target_interval(stores, prof::Interval::kInputDeser, leaf) +
      sum_target_interval(stores, prof::Interval::kOutputSer, leaf) +
      sum_target_interval(stores, prof::Interval::kTargetCallback, leaf) +
      sum_target_interval(stores, prof::Interval::kInternalRdma, leaf);
  r.total_ns = r.handler_ns + r.exec_ns + r.other_ns;
  r.makespan = world.makespan();
  return r;
}

void print_result(const char* name, const Result& r) {
  std::printf("%s: cumulative target RPC time = %10.3f ms  (makespan %.3f ms)\n",
              name, r.total_ns / 1e6, sim::to_millis(r.makespan));
  std::printf("    target_ult_handler_time   %10.3f ms  (%5.1f%%)\n",
              r.handler_ns / 1e6, 100.0 * r.handler_ns / r.total_ns);
  std::printf("    target_ult_execution_time %10.3f ms  (%5.1f%%)\n",
              r.exec_ns / 1e6, 100.0 * r.exec_ns / r.total_ns);
  std::printf("    other measured intervals  %10.3f ms  (%5.1f%%)\n",
              r.other_ns / 1e6, 100.0 * r.other_ns / r.total_ns);
}

}  // namespace

int main() {
  print_header(
      "HEPnOS: cumulative target RPC execution time for sdskv_put_packed, "
      "C1 (5 ESs) vs C2 (20 ESs)",
      "Fig. 9; paper: handler time 26.6% -> 14%, total improves 53.3%");

  const Result c1 = run_config(sym::workloads::table4_c1());
  const Result c2 = run_config(sym::workloads::table4_c2());

  print_result("C1", c1);
  print_result("C2", c2);

  const double total_improvement = 100.0 * (c1.total_ns - c2.total_ns) /
                                   c1.total_ns;
  std::printf("\nC2 vs C1: cumulative target RPC time improves by %.1f%% "
              "(paper: 53.3%%)\n",
              total_improvement);
  std::printf("handler-time share: C1 %.1f%% (paper 26.6%%) -> C2 %.1f%% "
              "(paper ~14%%)\n",
              100.0 * c1.handler_ns / c1.total_ns,
              100.0 * c2.handler_ns / c2.total_ns);
  return 0;
}
