// scale_study: the million-request open-loop scale sweep.
//
// Drives the loadgen worlds (workloads/loadgen) through a ladder of
// (nodes, client population) cells up to >= 1,000,000 concurrent in-flight
// requests on >= 128 simulated nodes, plus one mix cell per replayed
// application preset (docs/SCENARIOS.md). For every cell it records:
//
//   * in_flight / peak_queued — open-loop pressure at the horizon,
//   * events/sec host throughput (wall clock, reported but never gated),
//   * allocations-per-event from the engine's arena counters — a pure
//     simulation-state metric (vector growths + SmallFn heap spills per
//     executed event), identical for every worker count,
//   * steady-state allocations: the same counter restricted to the second
//     half of the horizon. Each cell first runs a warmup world to learn the
//     arena high-water marks, then pre-sizes the measured worlds with them;
//     after the midpoint every slot, heap entry, outbox and request record
//     recycles, so the acceptance gate is steady_allocations == 0 (the
//     million-request hot path does no malloc/free after warmup),
//   * peak_rss_bytes (getrusage ru_maxrss) — process-wide high-water, so
//     cells are swept smallest-to-largest to keep the column meaningful,
//   * arrival/completion checksums, gated bit-identical across the
//     1/2/4/8-worker column (the release-build determinism witness).
//
// The mix cells also print the per-scenario dominant-callpath table: per-op
// requests, bytes, busy/queue time and the busy-time share that makes one
// op class the scenario's dominant callpath.
//
// Results land in BENCH_scale.json (override with --out PATH). --smoke
// shrinks the ladder for CI but keeps every gate armed.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "workloads/loadgen/loadgen.hpp"

using namespace bench;
namespace lg = sym::workloads::loadgen;

namespace {

std::uint64_t peak_rss_bytes() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
}

struct Cell {
  const char* scenario = "";
  std::uint32_t nodes = 0;
  std::uint32_t lanes = 0;
  std::uint32_t workers = 0;
  std::uint64_t clients = 0;
  double horizon_ms = 0;
  double wall_ms = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t peak_queued = 0;
  std::uint64_t request_slots = 0;
  std::uint64_t allocs = 0;         ///< whole-run arena allocations
  std::uint64_t steady_allocs = 0;  ///< second-half arena allocations
  std::uint64_t steady_events = 0;  ///< second-half executed events
  double alloc_per_event = 0;
  std::uint64_t request_growths = 0;  ///< request-arena vector reallocations
  std::uint64_t arrival_ck = 0;
  std::uint64_t completion_ck = 0;
  std::uint64_t clamps = 0;
  std::uint64_t rss_peak = 0;
};

struct CellSpec {
  const lg::Scenario* scenario;
  std::uint32_t nodes;
  std::uint64_t clients;
  sim::DurationNs horizon;
};

sim::DurationNs cycle_of(const lg::Scenario& sc) {
  sim::DurationNs total = 0;
  for (const auto& ph : sc.phases) total += ph.duration;
  return total;
}

/// Capacity plan learned from a warmup run: the measured worlds pre-size
/// every container to its observed high-water mark (with headroom), so the
/// steady-state allocation gate can demand exactly zero.
struct ReservePlan {
  std::vector<std::uint32_t> events_by_lane;
  std::vector<std::uint32_t> outbox_matrix;
  std::uint32_t requests_per_server = 0;
};

lg::LoadgenParams make_params(const CellSpec& spec, std::uint32_t workers,
                              const ReservePlan& plan) {
  lg::LoadgenParams p;
  p.scenario = *spec.scenario;
  p.node_count = spec.nodes;
  p.client_population = spec.clients;
  p.horizon = spec.horizon;
  p.reserve_events_by_lane = plan.events_by_lane;
  p.reserve_outbox_matrix = plan.outbox_matrix;
  p.reserve_requests_per_server = plan.requests_per_server;
  p.seed = 42;
  p.exec.lane_count = 0;  // one lane per node
  p.exec.worker_count = workers;
  return p;
}

/// Run one measured cell. The horizon is split at its midpoint so the
/// second-half allocation delta isolates steady state from warmup.
Cell run_cell(const CellSpec& spec, std::uint32_t workers,
              const ReservePlan& plan) {
  lg::LoadgenWorld world(make_params(spec, workers, plan));
  Cell c;
  c.scenario = spec.scenario->name;
  c.nodes = spec.nodes;
  c.lanes = world.engine().lane_count();
  c.workers = workers;
  c.clients = spec.clients;
  c.horizon_ms = sim::to_millis(spec.horizon);

  const auto t0 = std::chrono::steady_clock::now();
  world.engine().run_until(spec.horizon / 2);
  const auto mid_stats = world.engine().arena_stats();
  const std::uint64_t mid_events = world.engine().events_processed();
  world.engine().run_until(spec.horizon);
  const auto t1 = std::chrono::steady_clock::now();
  const auto end_stats = world.engine().arena_stats();

  c.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  c.events = world.engine().events_processed();
  c.events_per_sec = c.wall_ms > 0 ? c.events / (c.wall_ms / 1e3) : 0;
  c.generated = world.generated();
  c.completed = world.completed();
  c.in_flight = world.in_flight();
  c.peak_queued = world.peak_queued();
  c.request_slots = world.request_slots();
  c.allocs = end_stats.allocations();
  c.steady_allocs = end_stats.allocations() - mid_stats.allocations();
  c.steady_events = c.events - mid_events;
  c.alloc_per_event = c.events > 0 ? static_cast<double>(c.allocs) / c.events : 0;
  c.arrival_ck = world.arrival_checksum();
  c.completion_ck = world.completion_checksum();
  c.clamps = world.engine().causality_clamps();
  c.rss_peak = peak_rss_bytes();
  c.request_growths = world.request_growths();
  return c;
}

/// Warmup pass: learn the per-lane slot, per-pair outbox and per-server
/// request high-water marks so the measured worlds can pre-size every
/// container.
ReservePlan warmup_reserves(const CellSpec& spec) {
  lg::LoadgenWorld warm(make_params(spec, 1, ReservePlan{}));
  warm.engine().run_until(spec.horizon);
  ReservePlan plan;
  const std::uint32_t lanes = warm.engine().lane_count();
  plan.events_by_lane.resize(lanes);
  for (std::uint32_t l = 0; l < lanes; ++l) {
    plan.events_by_lane[l] = static_cast<std::uint32_t>(
        warm.engine().arena_slot_count(l) * 2 + 64);
  }
  plan.outbox_matrix = warm.engine().outbox_highwater();
  for (auto& hw : plan.outbox_matrix) {
    if (hw != 0) hw = hw * 2 + 16;
  }
  plan.requests_per_server = static_cast<std::uint32_t>(
      warm.request_slots() / warm.server_count() * 2 + 256);
  return plan;
}

void print_cell(const Cell& c) {
  std::printf(
      "%-18s nodes %3u workers %u  gen %8llu  done %7llu  inflight %8llu  "
      "wall %8.1f ms  %9.0f ev/s  alloc/ev %.5f  steady %llu  rss %5.0f MiB\n",
      c.scenario, c.nodes, c.workers,
      static_cast<unsigned long long>(c.generated),
      static_cast<unsigned long long>(c.completed),
      static_cast<unsigned long long>(c.in_flight), c.wall_ms,
      c.events_per_sec, c.alloc_per_event,
      static_cast<unsigned long long>(c.steady_allocs),
      static_cast<double>(c.rss_peak) / (1024.0 * 1024.0));
}

struct MixReport {
  const char* scenario = "";
  const char* summary = "";
  std::vector<lg::OpTotals> ops;
  std::vector<const char*> op_names;
  std::vector<const char*> op_services;
  std::uint32_t dominant = 0;
};

void print_mix(const MixReport& m) {
  std::uint64_t busy_total = 0;
  for (const auto& ot : m.ops) busy_total += ot.busy_ns;
  std::printf("\n%s — dominant callpaths (%s)\n", m.scenario, m.summary);
  std::printf("  %-14s %-10s %9s %9s %11s %10s %10s %6s\n", "op", "service",
              "requests", "done", "bytes", "busy ms", "queue ms", "share");
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    const auto& ot = m.ops[i];
    const double share =
        busy_total > 0 ? 100.0 * ot.busy_ns / busy_total : 0.0;
    std::printf("  %-14s %-10s %9llu %9llu %11llu %10.2f %10.2f %5.1f%%%s\n",
                m.op_names[i], m.op_services[i],
                static_cast<unsigned long long>(ot.requests),
                static_cast<unsigned long long>(ot.completed),
                static_cast<unsigned long long>(ot.bytes),
                ot.busy_ns / 1e6, ot.queue_ns / 1e6, share,
                i == m.dominant ? "  <- dominant" : "");
  }
}

void write_json(const std::string& path, bool smoke, unsigned host_cpus,
                const std::vector<Cell>& cells,
                const std::vector<MixReport>& mixes, bool det_pass,
                bool steady_pass, std::uint64_t peak_inflight,
                std::uint32_t peak_nodes) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"scale_study\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"host_cpus\": " << host_cpus << ",\n"
      << "  \"heap_fanout\": " << SYM_HEAP_FANOUT << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"scenario\": \"%s\", \"nodes\": %u, \"lanes\": %u, "
        "\"workers\": %u, \"clients\": %llu, \"horizon_ms\": %.3f, "
        "\"wall_ms\": %.3f, \"events\": %llu, \"events_per_sec\": %.0f, "
        "\"generated\": %llu, \"completed\": %llu, \"in_flight\": %llu, "
        "\"peak_queued\": %llu, \"request_slots\": %llu, "
        "\"allocations\": %llu, \"alloc_per_event\": %.6f, "
        "\"steady_allocations\": %llu, \"steady_events\": %llu, "
        "\"request_growths\": %llu, "
        "\"arrival_checksum\": %llu, \"completion_checksum\": %llu, "
        "\"causality_clamps\": %llu, \"peak_rss_bytes\": %llu}%s\n",
        c.scenario, c.nodes, c.lanes, c.workers,
        static_cast<unsigned long long>(c.clients), c.horizon_ms, c.wall_ms,
        static_cast<unsigned long long>(c.events), c.events_per_sec,
        static_cast<unsigned long long>(c.generated),
        static_cast<unsigned long long>(c.completed),
        static_cast<unsigned long long>(c.in_flight),
        static_cast<unsigned long long>(c.peak_queued),
        static_cast<unsigned long long>(c.request_slots),
        static_cast<unsigned long long>(c.allocs), c.alloc_per_event,
        static_cast<unsigned long long>(c.steady_allocs),
        static_cast<unsigned long long>(c.steady_events),
        static_cast<unsigned long long>(c.request_growths),
        static_cast<unsigned long long>(c.arrival_ck),
        static_cast<unsigned long long>(c.completion_ck),
        static_cast<unsigned long long>(c.clamps),
        static_cast<unsigned long long>(c.rss_peak),
        i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"mixes\": [\n";
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const auto& m = mixes[i];
    out << "    {\"scenario\": \"" << m.scenario << "\", \"dominant_op\": \""
        << m.op_names[m.dominant] << "\", \"ops\": [\n";
    for (std::size_t j = 0; j < m.ops.size(); ++j) {
      const auto& ot = m.ops[j];
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          "      {\"op\": \"%s\", \"service\": \"%s\", \"requests\": %llu, "
          "\"completed\": %llu, \"bytes\": %llu, \"busy_ms\": %.3f, "
          "\"queue_ms\": %.3f}%s\n",
          m.op_names[j], m.op_services[j],
          static_cast<unsigned long long>(ot.requests),
          static_cast<unsigned long long>(ot.completed),
          static_cast<unsigned long long>(ot.bytes), ot.busy_ns / 1e6,
          ot.queue_ns / 1e6, j + 1 < m.ops.size() ? "," : "");
      out << buf;
    }
    out << "    ]}" << (i + 1 < mixes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"gates\": {\"determinism\": \""
      << (det_pass ? "PASS" : "FAIL") << "\", \"steady_zero_alloc\": \""
      << (steady_pass ? "PASS" : "FAIL") << "\", \"peak_in_flight\": "
      << peak_inflight << ", \"peak_nodes\": " << peak_nodes << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  print_header("Open-loop scale study: nodes x in-flight ladder + app mixes",
               "SYMBIOSYS scale methodology; see EXPERIMENTS.md");

  const unsigned host_cpus = std::thread::hardware_concurrency();
  const auto& presets = lg::presets();
  const lg::Scenario& dl = presets[0];

  // Ladder: grow nodes and population together; the last rung is the
  // million-request gate cell. Horizons span two full phase cycles so the
  // two halves of the steady-state split see the same mix.
  std::vector<CellSpec> ladder;
  if (smoke) {
    ladder.push_back(CellSpec{&dl, 16, 5'000, 2 * cycle_of(dl)});
  } else {
    ladder.push_back(CellSpec{&dl, 16, 10'000, 2 * cycle_of(dl)});
    ladder.push_back(CellSpec{&dl, 64, 50'000, 2 * cycle_of(dl)});
    ladder.push_back(CellSpec{&dl, 128, 150'000, 2 * cycle_of(dl)});
  }
  const std::vector<std::uint32_t> worker_scales =
      smoke ? std::vector<std::uint32_t>{1, 2}
            : std::vector<std::uint32_t>{1, 2, 4, 8};

  std::printf("host cpus: %u  heap fanout: %u\n\n", host_cpus,
              static_cast<unsigned>(SYM_HEAP_FANOUT));

  std::vector<Cell> cells;
  bool det_pass = true;
  bool steady_pass = true;
  std::uint64_t peak_inflight = 0;
  std::uint32_t peak_nodes = 0;
  for (const auto& spec : ladder) {
    const ReservePlan plan = warmup_reserves(spec);

    std::uint64_t ck_1w[2] = {0, 0};
    std::uint64_t events_1w = 0;
    for (const auto workers : worker_scales) {
      Cell c = run_cell(spec, workers, plan);
      if (workers == 1) {
        ck_1w[0] = c.arrival_ck;
        ck_1w[1] = c.completion_ck;
        events_1w = c.events;
      } else if (c.arrival_ck != ck_1w[0] || c.completion_ck != ck_1w[1] ||
                 c.events != events_1w) {
        det_pass = false;
      }
      if (c.steady_allocs != 0) steady_pass = false;
      if (c.in_flight > peak_inflight) {
        peak_inflight = c.in_flight;
        peak_nodes = c.nodes;
      }
      print_cell(c);
      cells.push_back(c);
    }
    std::printf("\n");
  }

  // One mix cell per replayed application preset: the dominant-callpath
  // tables. Worker pair {1, max} re-checks checksum identity per preset.
  std::vector<MixReport> mixes;
  const std::uint32_t mix_nodes = smoke ? 8 : 64;
  const std::uint64_t mix_clients = smoke ? 2'000 : 20'000;
  for (const auto& sc : presets) {
    const CellSpec spec{&sc, mix_nodes, mix_clients,
                        (smoke ? 1 : 2) * cycle_of(sc)};
    const ReservePlan plan = warmup_reserves(spec);
    Cell base = run_cell(spec, 1, plan);
    print_cell(base);
    cells.push_back(base);
    if (!smoke) {
      Cell par = run_cell(spec, worker_scales.back(), plan);
      if (par.arrival_ck != base.arrival_ck ||
          par.completion_ck != base.completion_ck ||
          par.events != base.events) {
        det_pass = false;
      }
      if (par.steady_allocs != 0) steady_pass = false;
      print_cell(par);
      cells.push_back(par);
    }

    lg::LoadgenWorld world(make_params(spec, 1, plan));
    world.run();
    MixReport m;
    m.scenario = sc.name;
    m.summary = sc.summary;
    m.ops = world.op_totals();
    m.dominant = world.dominant_op();
    for (const auto& op : sc.ops) {
      m.op_names.push_back(op.name);
      m.op_services.push_back(lg::service_name(op.service));
    }
    print_mix(m);
    mixes.push_back(m);
    std::printf("\n");
  }

  write_json(out_path, smoke, host_cpus, cells, mixes, det_pass, steady_pass,
             peak_inflight, peak_nodes);
  std::printf("wrote %s\n", out_path.c_str());

  bool ok = true;
  std::printf("determinism: arrival/completion checksums and event counts "
              "identical across worker column: %s\n",
              det_pass ? "PASS" : "FAIL");
  if (!det_pass) ok = false;
  std::printf("steady-state zero allocation: second-half arena allocations "
              "== 0 in every reserved cell: %s\n",
              steady_pass ? "PASS" : "FAIL");
  if (!steady_pass) ok = false;
  if (!smoke) {
    const bool scale_ok = peak_inflight >= 1'000'000 && peak_nodes >= 128;
    std::printf("acceptance: %llu concurrent in-flight requests on %u nodes "
                "(>= 1,000,000 on >= 128): %s\n",
                static_cast<unsigned long long>(peak_inflight), peak_nodes,
                scale_ok ? "PASS" : "FAIL");
    if (!scale_ok) ok = false;
  } else {
    const bool open_loop_ok = peak_inflight > 0;
    std::printf("acceptance: open-loop backlog observed (in-flight %llu > 0): "
                "%s\n",
                static_cast<unsigned long long>(peak_inflight),
                open_loop_ok ? "PASS" : "FAIL");
    if (!open_loop_ok) ok = false;
  }
  return ok ? 0 : 1;
}
