// ablation_policy_engine: demonstrates the paper's §VII future work —
// policy-driven dynamic reconfiguration — by re-running two of the paper's
// pathological configurations *with the policy engine enabled* and showing
// that the rules converge toward the manually remediated configurations:
//
//   C1 (5 ESs, starved handler pool)  + handler_autoscale  ~> C2-like
//   C5 (batch 1, backed-up OFI queue) + adaptive_max_events ~> C6-like
#include "bench/common.hpp"
#include "margolite/policy.hpp"
#include "workloads/hepnos_world.hpp"

using namespace bench;
namespace margo = sym::margo;

namespace {

struct Outcome {
  sim::DurationNs makespan = 0;
  std::vector<margo::PolicyAction> actions;
  unsigned final_es = 0;
  std::size_t final_max_events = 0;
};

/// C1-like starvation with the autoscale policy on every server.
Outcome run_autoscale(bool with_policy) {
  auto params = hepnos_params(sym::workloads::table4_c1(), 2048);
  sym::workloads::HepnosWorld world(params);
  std::vector<std::unique_ptr<margo::PolicyEngine>> engines;
  if (with_policy) {
    for (std::size_t s = 0; s < world.server_count(); ++s) {
      auto e = std::make_unique<margo::PolicyEngine>(
          world.server_instance(s), sim::usec(200));
      e->add_rule("autoscale", margo::PolicyEngine::handler_autoscale(
                                   /*backlog_per_es=*/3.0,
                                   /*consecutive=*/2, /*max_es=*/24));
      engines.push_back(std::move(e));
    }
    // Instances are started inside world.run(); arm the policy engines via
    // a t=0 engine event so their monitor ULTs spawn right after.
    world.engine().at(0, [&engines] {
      for (auto& e : engines) e->start();
    });
  }
  world.run();

  Outcome out;
  out.makespan = world.makespan();
  for (auto& e : engines) {
    for (const auto& a : e->actions()) out.actions.push_back(a);
  }
  out.final_es = world.server_instance(0).handler_es_count();
  return out;
}

/// C5-like OFI backlog with the adaptive max_events policy on each client.
Outcome run_adaptive(bool with_policy) {
  auto params = hepnos_params(sym::workloads::table4_c5(), 2048);
  sym::workloads::HepnosWorld world(params);
  std::vector<std::unique_ptr<margo::PolicyEngine>> engines;
  if (with_policy) {
    for (std::size_t c = 0; c < world.client_count(); ++c) {
      auto e = std::make_unique<margo::PolicyEngine>(
          world.client_instance(c), sim::usec(200));
      e->add_rule("adaptive_max_events",
                  margo::PolicyEngine::adaptive_max_events(
                      /*consecutive=*/2, /*cap=*/128));
      engines.push_back(std::move(e));
    }
    world.engine().at(0, [&engines] {
      for (auto& e : engines) e->start();
    });
  }
  world.run();

  Outcome out;
  out.makespan = world.makespan();
  for (auto& e : engines) {
    for (const auto& a : e->actions()) out.actions.push_back(a);
  }
  out.final_max_events =
      world.client_instance(0).hg_class().config().max_events;
  return out;
}

}  // namespace

int main() {
  print_header(
      "Policy-driven dynamic reconfiguration (paper future work, §VII)",
      "automates the manual C1->C2 and C5->C6 remediations of §V-C");

  std::printf("--- handler_autoscale on C1 (5 ESs) ---\n");
  const auto base1 = run_autoscale(false);
  const auto pol1 = run_autoscale(true);
  std::printf("without policy: makespan %8.3f ms (5 ESs throughout)\n",
              sim::to_millis(base1.makespan));
  std::printf("with policy:    makespan %8.3f ms, final ES count %u, "
              "%zu actions\n",
              sim::to_millis(pol1.makespan), pol1.final_es,
              pol1.actions.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, pol1.actions.size());
       ++i) {
    std::printf("    [%7.3f ms] %s\n", sim::to_millis(pol1.actions[i].at),
                pol1.actions[i].description.c_str());
  }
  std::printf("improvement: %.1f%%\n\n",
              100.0 *
                  (static_cast<double>(base1.makespan) -
                   static_cast<double>(pol1.makespan)) /
                  static_cast<double>(base1.makespan));

  std::printf("--- adaptive_max_events on C5 (batch 1) ---\n");
  const auto base2 = run_adaptive(false);
  const auto pol2 = run_adaptive(true);
  std::printf("without policy: makespan %8.3f ms (OFI_max_events 16)\n",
              sim::to_millis(base2.makespan));
  std::printf("with policy:    makespan %8.3f ms, final OFI_max_events %zu, "
              "%zu actions\n",
              sim::to_millis(pol2.makespan), pol2.final_max_events,
              pol2.actions.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, pol2.actions.size());
       ++i) {
    std::printf("    [%7.3f ms] %s\n", sim::to_millis(pol2.actions[i].at),
                pol2.actions[i].description.c_str());
  }
  return 0;
}
