// fig5_mobject_trace: reproduces Fig. 5 — the distributed trace of a single
// mobject_write_op request, stitched across processes and exported as
// OpenZipkin-compatible JSON (§V-A3).
//
// Paper's finding: one mobject_write_op fans out into 12 discrete SDSKV and
// BAKE microservice calls, whose internal structure is opaque without the
// trace.
#include <fstream>

#include "bench/common.hpp"
#include "symbiosys/zipkin.hpp"
#include "workloads/mobject_world.hpp"

using namespace bench;

int main() {
  print_header(
      "ior + Mobject: trace of a single mobject_write_op request "
      "(Gantt + Zipkin JSON)",
      "Fig. 5; paper: 12 discrete SDSKV/BAKE child calls per write_op");

  sym::workloads::MobjectWorld::Params p;
  p.ior.clients = 2;
  p.ior.ops_per_client = 3;
  p.ior.read_fraction = 0.0;  // writes only: we trace a write_op
  sym::workloads::MobjectWorld world(p);
  world.run();

  const auto summary = prof::TraceSummary::build(world.all_traces());
  std::printf("stitched %zu spans across %zu requests from %zu raw events\n\n",
              summary.total_spans, summary.requests.size(),
              summary.total_events);

  // Find a request whose root is mobject_write_op and count its children.
  const auto write_leaf = prof::hash16("mobject_write_op");
  const prof::RequestTrace* chosen = nullptr;
  for (const auto& rt : summary.requests) {
    if (rt.spans.empty()) continue;
    if (prof::leaf_of(rt.spans.front().breadcrumb) == write_leaf &&
        prof::depth(rt.spans.front().breadcrumb) == 1) {
      chosen = &rt;
      break;
    }
  }
  if (chosen == nullptr) {
    std::printf("ERROR: no mobject_write_op request found in the trace\n");
    return 1;
  }

  std::size_t child_calls = 0;
  for (const auto& sp : chosen->spans) {
    if (prof::depth(sp.breadcrumb) == 2) ++child_calls;
  }
  std::printf("%s\n", summary.format_request(*chosen).c_str());
  std::printf("discrete downstream microservice calls: %zu (paper: 12)\n\n",
              child_calls);

  const std::string json = prof::to_zipkin_json(*chosen);
  const char* out_path = "fig5_mobject_write_op_trace.json";
  std::ofstream(out_path) << json;
  std::printf("OpenZipkin-compatible JSON written to %s (%zu bytes)\n",
              out_path, json.size());
  return 0;
}
