// fig11_hepnos_unaccounted: reproduces Fig. 11 — the unaccounted component
// of cumulative RPC execution time under C4..C7 (§V-C4).
//
// Paper's findings:
//   * batch size 1024 (C4) is roughly 475x more performant than batch 1 (C5)
//   * with batch 1, RPC API + RPC library instrumentation cannot account for
//     a large share of origin execution time (progress-loop starvation)
//   * C6 (OFI_max_events 16 -> 64) improves RPC performance by over 40% and
//     reduces unaccounted time by 47%
//   * C7 (dedicated client progress ES) improves a further 75% and cuts the
//     remaining unaccounted time by 90%
#include "bench/common.hpp"

using namespace bench;

namespace {

struct Result {
  double origin_exec_ns = 0;
  double measured_ns = 0;
  double unaccounted_ns = 0;
  std::uint64_t events = 0;
  std::uint64_t rpcs = 0;
  sim::DurationNs makespan = 0;

  [[nodiscard]] double per_event_us() const {
    return events == 0 ? 0 : sim::to_micros(makespan) /
                                 static_cast<double>(events);
  }
};

Result run_config(const sym::workloads::HepnosConfig& cfg,
                  std::uint32_t events_per_client) {
  auto params = hepnos_params(cfg, events_per_client);
  sym::workloads::HepnosWorld world(params);
  world.run();

  Result r;
  const auto summary = prof::ProfileSummary::build(world.all_profiles());
  const auto* cb = summary.find_by_leaf("sdskv_put_packed_rpc");
  if (cb != nullptr) {
    r.origin_exec_ns = cb->cumulative_ns;
    r.unaccounted_ns = cb->unaccounted_ns();
    r.measured_ns = r.origin_exec_ns - r.unaccounted_ns;
  }
  for (const auto& s : world.loader_stats()) {
    r.events += s.events;
    r.rpcs += s.rpcs;
  }
  r.makespan = world.makespan();
  return r;
}

void print_result(const char* name, const Result& r) {
  std::printf("%s: origin exec %12.3f ms | measured %12.3f ms | unaccounted "
              "%12.3f ms (%5.1f%%) | makespan %9.3f ms | %.2f us/event\n",
              name, r.origin_exec_ns / 1e6, r.measured_ns / 1e6,
              r.unaccounted_ns / 1e6,
              r.origin_exec_ns > 0
                  ? 100.0 * r.unaccounted_ns / r.origin_exec_ns
                  : 0.0,
              sim::to_millis(r.makespan), r.per_event_us());
}

}  // namespace

int main() {
  print_header(
      "HEPnOS: unaccounted component of RPC execution time, C4..C7",
      "Fig. 11; paper: C4 ~475x C5; C6 +40% perf / -47% unaccounted; C7 "
      "+75% perf / -90% unaccounted");

  // Batch 1 issues one RPC per event; keep the volume bench-scale.
  const std::uint32_t events = 2048;
  const Result c4 = run_config(sym::workloads::table4_c4(), events);
  const Result c5 = run_config(sym::workloads::table4_c5(), events);
  const Result c6 = run_config(sym::workloads::table4_c6(), events);
  const Result c7 = run_config(sym::workloads::table4_c7(), events);

  print_result("C4", c4);
  print_result("C5", c5);
  print_result("C6", c6);
  print_result("C7", c7);

  std::printf("\nbatch 1024 vs batch 1: C4 is %.0fx more performant per "
              "event (paper: ~475x)\n",
              c5.per_event_us() / c4.per_event_us());
  std::printf("C6 vs C5: RPC performance %+.1f%% (paper: >+40%%), "
              "unaccounted %+.1f%% (paper: -47%%)\n",
              100.0 * (c5.per_event_us() - c6.per_event_us()) /
                  c5.per_event_us(),
              100.0 * (c6.unaccounted_ns - c5.unaccounted_ns) /
                  c5.unaccounted_ns);
  std::printf("C7 vs C6: RPC performance %+.1f%% (paper: +75%%), "
              "unaccounted %+.1f%% (paper: -90%%)\n",
              100.0 * (c6.per_event_us() - c7.per_event_us()) /
                  c6.per_event_us(),
              100.0 * (c7.unaccounted_ns - c6.unaccounted_ns) /
                  c6.unaccounted_ns);
  return 0;
}
