// tablev_analysis_times: reproduces Table V — wall-clock time taken by the
// SYMBIOSYS analysis passes on large-scale performance data (§VI-B).
//
// Paper: Profile Summary 35.1 s, Trace Summary 481.1 s, System Statistics
// Summary 73.4 s. The absolute numbers depend on the data volume and host;
// the *shape* to reproduce is trace >> system > profile, because the trace
// pass ingests and stitches every per-request event while the other passes
// reduce pre-aggregated rows.
//
// Unlike every other bench, this one measures REAL wall-clock time of the
// analysis code over exported CSV data, exactly like the paper's
// postprocessing scripts.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench/common.hpp"
#include "symbiosys/export.hpp"

using namespace bench;

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  print_header(
      "SYMBIOSYS analysis wall-clock times over exported performance data",
      "Table V; paper: profile 35.1 s, trace 481.1 s, system 73.4 s "
      "(shape: trace >> system > profile)");

  // Generate a large measurement corpus: the overhead-study topology.
  auto cfg = sym::workloads::overhead_study_config();
  cfg.total_clients = 56;
  cfg.total_servers = 8;
  cfg.databases = 8 * 16;
  cfg.batch_size = 256;  // smaller batches -> more RPCs -> more samples
  auto params = hepnos_params(cfg, /*events_per_client=*/2048);
  params.file_model.read_latency = sim::msec(1);
  sym::workloads::HepnosWorld world(params);
  world.run();

  // Export per-process CSVs (the consolidation step).
  const auto dir =
      std::filesystem::temp_directory_path() / "symbiosys_tablev";
  std::filesystem::create_directories(dir);
  std::size_t files = 0, trace_rows = 0;
  {
    std::size_t idx = 0;
    for (const auto* p : world.all_profiles()) {
      prof::write_profile_csv_file(
          (dir / ("profile_" + std::to_string(idx++) + ".csv")).string(), *p);
      ++files;
    }
    idx = 0;
    for (const auto* t : world.all_traces()) {
      trace_rows += t->size();
      prof::write_trace_csv_file(
          (dir / ("trace_" + std::to_string(idx++) + ".csv")).string(), *t);
      ++files;
    }
    idx = 0;
    for (const auto& [name, s] : world.all_sysstats()) {
      prof::write_sysstats_csv_file(
          (dir / ("sysstats_" + std::to_string(idx++) + ".csv")).string(),
          *s);
      ++files;
    }
  }
  std::printf("corpus: %zu files, %zu trace events, %zu processes\n\n", files,
              trace_rows, world.server_count() + world.client_count());

  // --- Profile Summary ---
  auto t0 = std::chrono::steady_clock::now();
  std::vector<prof::ProfileStore> profiles;
  for (std::size_t i = 0;
       i < world.server_count() + world.client_count(); ++i) {
    profiles.push_back(prof::read_profile_csv_file(
        (dir / ("profile_" + std::to_string(i) + ".csv")).string()));
  }
  std::vector<const prof::ProfileStore*> pptr;
  for (const auto& p : profiles) pptr.push_back(&p);
  const auto psum = prof::ProfileSummary::build(pptr);
  const double profile_s = seconds_since(t0);

  // --- Trace Summary (ingest + stitch + skew-correct every request) ---
  t0 = std::chrono::steady_clock::now();
  std::vector<prof::TraceStore> traces;
  for (std::size_t i = 0;
       i < world.server_count() + world.client_count(); ++i) {
    traces.push_back(prof::read_trace_csv_file(
        (dir / ("trace_" + std::to_string(i) + ".csv")).string()));
  }
  std::vector<const prof::TraceStore*> tptr;
  for (const auto& t : traces) tptr.push_back(&t);
  const auto tsum = prof::TraceSummary::build(tptr);
  const double trace_s = seconds_since(t0);

  // --- System Statistics Summary ---
  t0 = std::chrono::steady_clock::now();
  std::vector<prof::SysStatStore> stats;
  const auto names = world.all_sysstats();
  for (std::size_t i = 0; i < names.size(); ++i) {
    stats.push_back(prof::read_sysstats_csv_file(
        (dir / ("sysstats_" + std::to_string(i) + ".csv")).string()));
  }
  std::vector<std::pair<std::string, const prof::SysStatStore*>> sptr;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    sptr.emplace_back(names[i].first, &stats[i]);
  }
  const auto ssum = prof::SysStatsSummary::build(sptr);
  const double system_s = seconds_since(t0);

  std::printf("Profile Summary (s)   Trace Summary (s)   System Statistics "
              "Summary (s)\n");
  std::printf("%16.3f   %17.3f   %28.3f\n", profile_s, trace_s, system_s);
  std::printf("\n(paper: 35.1 / 481.1 / 73.4 on 1M samples; ratios trace/"
              "profile = %.1fx here vs 13.7x in the paper)\n",
              trace_s / profile_s);
  std::printf("analysis sanity: %zu callpaths, %zu stitched spans, %zu "
              "process summaries\n",
              psum.callpaths.size(), tsum.total_spans,
              ssum.per_process.size());

  std::filesystem::remove_all(dir);
  return 0;
}
