// fig12_hepnos_ofi_events: reproduces Fig. 12 — sampling the
// num_ofi_events_read Mercury PVAR on the data-loader clients for C4..C7.
//
// Paper's findings:
//   * C4 (batch 1024): the OFI_max_events threshold (16) is never breached;
//     the OFI completion queue is emptied at regular intervals.
//   * C5 (batch 1): reads consistently hit the threshold of 16 — the
//     completion queue is backed up.
//   * C6 (threshold 64): reads exceed 16 but the queue still backs up some.
//   * C7 (dedicated progress ES): the event queue is no longer backed up.
#include <algorithm>
#include <fstream>

#include "bench/common.hpp"

using namespace bench;

namespace {

struct Result {
  std::vector<float> samples;  // num_ofi_events_read at each origin_end
  std::size_t at_threshold = 0;
  float max_read = 0;
  double mean_read = 0;
};

Result run_config(const sym::workloads::HepnosConfig& cfg,
                  std::uint32_t events_per_client) {
  auto params = hepnos_params(cfg, events_per_client);
  sym::workloads::HepnosWorld world(params);
  world.run();

  Result r;
  double sum = 0;
  for (const auto* ts : world.client_traces()) {
    for (const auto& ev : ts->events()) {
      if (ev.kind != prof::TraceEventKind::kOriginEnd) continue;
      r.samples.push_back(ev.num_ofi_events_read);
      sum += ev.num_ofi_events_read;
      r.max_read = std::max(r.max_read, ev.num_ofi_events_read);
      if (ev.num_ofi_events_read >= static_cast<float>(cfg.ofi_max_events)) {
        ++r.at_threshold;
      }
    }
  }
  if (!r.samples.empty()) r.mean_read = sum / r.samples.size();
  return r;
}

void print_result(const char* name, const Result& r, std::uint32_t limit) {
  std::printf("%s (OFI_max_events=%2u): samples=%zu  mean=%5.2f  max=%3.0f  "
              "at-threshold=%5.1f%%\n",
              name, limit, r.samples.size(), r.mean_read,
              static_cast<double>(r.max_read),
              r.samples.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(r.at_threshold) /
                        static_cast<double>(r.samples.size()));
  // Compact histogram of the sampled PVAR.
  std::size_t buckets[5] = {0, 0, 0, 0, 0};  // 0-1, 2-4, 5-15, 16-63, >=64
  for (const float v : r.samples) {
    if (v < 2) ++buckets[0];
    else if (v < 5) ++buckets[1];
    else if (v < 16) ++buckets[2];
    else if (v < 64) ++buckets[3];
    else ++buckets[4];
  }
  std::printf("     reads: [0-1]=%zu  [2-4]=%zu  [5-15]=%zu  [16-63]=%zu  "
              "[>=64]=%zu\n",
              buckets[0], buckets[1], buckets[2], buckets[3], buckets[4]);
}

}  // namespace

int main() {
  print_header(
      "HEPnOS: num_ofi_events_read PVAR sampled at origin completion, C4..C7",
      "Fig. 12; paper: C4 never breaches 16; C5 pegged at 16; C6 reads >16; "
      "C7 queue no longer backed up");

  const std::uint32_t events = 2048;
  const auto c4 = run_config(sym::workloads::table4_c4(), events);
  const auto c5 = run_config(sym::workloads::table4_c5(), events);
  const auto c6 = run_config(sym::workloads::table4_c6(), events);
  const auto c7 = run_config(sym::workloads::table4_c7(), events);

  print_result("C4", c4, 16);
  print_result("C5", c5, 16);
  print_result("C6", c6, 64);
  print_result("C7", c7, 64);

  // Sample series as CSV for plotting (see bench/plots/plot_figures.gp).
  const std::pair<const char*, const Result*> outs[] = {
      {"fig12_c4_ofi_reads.csv", &c4},
      {"fig12_c5_ofi_reads.csv", &c5},
      {"fig12_c6_ofi_reads.csv", &c6},
      {"fig12_c7_ofi_reads.csv", &c7},
  };
  for (const auto& [path, r] : outs) {
    std::ofstream os(path);
    os << "sample,num_ofi_events_read\n";
    for (std::size_t i = 0; i < r->samples.size(); ++i) {
      os << i << ',' << r->samples[i] << '\n';
    }
    std::printf("series written to %s\n", path);
  }
  return 0;
}
