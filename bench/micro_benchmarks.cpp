// micro_benchmarks: google-benchmark measurements of the infrastructure
// primitives underlying the simulator and the SYMBIOSYS instrumentation.
// These quantify the *host-side* cost of the building blocks (fiber
// switches, event dispatch, breadcrumb hashing, PVAR sampling, proc
// serialization, JSON parsing, jx9 filters) and serve as ablation data for
// the design choices called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "merclite/core.hpp"
#include "merclite/proc.hpp"
#include "services/sonata/json.hpp"
#include "services/sonata/jx9lite.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "simkit/fiber.hpp"
#include "simkit/rng.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/analysis.hpp"
#include "symbiosys/breadcrumb.hpp"
#include "symbiosys/records.hpp"
#include "symbiosys/zipkin.hpp"

namespace sim = sym::sim;
namespace hg = sym::hg;
namespace prof = sym::prof;
namespace ofi = sym::ofi;

// ---------------------------------------------------------------------------
// simkit primitives
// ---------------------------------------------------------------------------

static void BM_EngineScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.at(static_cast<sim::TimeNs>(i), [] {});
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleAndRun);

static void BM_FiberSwitchPair(benchmark::State& state) {
  sim::Fiber fiber([] {
    while (true) sim::Fiber::switch_out();
  });
  for (auto _ : state) {
    fiber.switch_in();  // in + out = one round trip
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitchPair);

// d-ary heap fanout ablation backing the SYM_HEAP_FANOUT default (see
// simkit/dheap.hpp): push/pop a fixed pseudo-random schedule through each
// arity side by side. The workload mirrors the Lane event heap — a mixed
// stream where every pop is chased by a push, keeping the heap near its
// steady-state size rather than draining it.
template <unsigned Arity>
static void BM_HeapFanout(benchmark::State& state) {
  const auto keep = static_cast<std::size_t>(state.range(0));
  const auto before = [](std::uint64_t a, std::uint64_t b) { return a < b; };
  sim::Rng seed_rng(11);
  std::vector<std::uint64_t> draws(keep * 4);
  for (auto& d : draws) d = seed_rng.next();
  std::vector<std::uint64_t> heap;
  heap.reserve(keep + 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    heap.clear();
    std::size_t i = 0;
    for (; i < keep; ++i) sim::dheap_push<Arity>(heap, draws[i], before);
    for (; i < draws.size(); ++i) {
      sink ^= sim::dheap_pop<Arity>(heap, before);
      sim::dheap_push<Arity>(heap, draws[i], before);
    }
    while (!heap.empty()) sink ^= sim::dheap_pop<Arity>(heap, before);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(draws.size()));
}
BENCHMARK(BM_HeapFanout<2>)->Arg(256)->Arg(4096);
BENCHMARK(BM_HeapFanout<4>)->Arg(256)->Arg(4096);
BENCHMARK(BM_HeapFanout<8>)->Arg(256)->Arg(4096);

static void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(7);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= rng.next();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngNext);

// Windowed execution with a ring of cross-lane posts: every lane keeps one
// chain hopping to its neighbor, so each window has exactly `lanes` live
// (dst, src) mailbox pairs out of lanes^2 possible. Items processed counts
// the pairs the sparse merge actually visited — the dense sweep this
// replaced would have visited lanes^2 per window regardless.
static void BM_WindowMerge(benchmark::State& state) {
  const auto lanes = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t pairs = 0;
  std::uint64_t windows = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.lane_count = lanes;
    cfg.worker_count = 1;
    cfg.lookahead = sim::usec(2);
    sim::Engine eng(7, cfg);
    struct Chain {
      sim::Engine* eng;
      std::uint32_t lanes;
      void hop(std::uint32_t lane, int remaining) {
        if (remaining == 0) return;
        const std::uint32_t next = (lane + 1) % lanes;
        eng->after_on(next, eng->lookahead_to(next),
                      [this, next, remaining] { hop(next, remaining - 1); });
      }
    };
    Chain chain{&eng, lanes};
    for (std::uint32_t l = 0; l < lanes; ++l) {
      eng.at_on(l, 1, [&chain, l] { chain.hop(l, 32); });
    }
    eng.run();
    pairs += eng.merge_pairs_visited();
    windows += eng.windows_executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
  state.counters["pairs_per_window"] =
      windows == 0 ? 0.0
                   : static_cast<double>(pairs) / static_cast<double>(windows);
}
BENCHMARK(BM_WindowMerge)->Arg(8)->Arg(64);

// One-time cost of deriving the per-lane-pair lookahead matrix from link
// topology at Cluster construction: the O(nodes^2) latency scan plus the
// O(lanes^3) Floyd-Warshall closure and round-trip fold.
static void BM_LookaheadMatrix(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  sim::ClusterParams cp;
  cp.node_count = nodes;
  cp.max_clock_skew = 0;
  // Plant a sparse set of slow links so the override index and the
  // shortest-path relaxation both do real work.
  for (sim::NodeId a = 0; a < nodes; a += 4) {
    for (sim::NodeId b = a + 1; b < nodes; b += 4) {
      cp.link_overrides.push_back({a, b, sim::usec(100)});
    }
  }
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.lane_count = 0;  // one lane per node
    sim::Engine eng(7, cfg);
    sim::Cluster cluster(eng, cp);
    benchmark::DoNotOptimize(eng.lookahead(0, nodes - 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nodes) * nodes);
}
BENCHMARK(BM_LookaheadMatrix)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// SYMBIOSYS instrumentation primitives
// ---------------------------------------------------------------------------

static void BM_BreadcrumbHashAndExtend(benchmark::State& state) {
  prof::Breadcrumb bc = 0;
  for (auto _ : state) {
    bc = prof::extend(bc, prof::hash16("sdskv_put_packed_rpc"));
    benchmark::DoNotOptimize(bc);
  }
}
BENCHMARK(BM_BreadcrumbHashAndExtend);

static void BM_ProfileStoreRecordSameKey(benchmark::State& state) {
  // The memo fast path: a handler recording intervals back to back on one
  // callpath key (the dominant pattern on the measurement hot path).
  prof::ProfileStore store;
  const prof::CallpathKey key{prof::extend(0x1111, 0x55AA),
                              prof::Side::kTarget, 100, 3};
  double ns = 1;
  for (auto _ : state) {
    store.record(key, prof::Interval::kTargetExec, ns);
    ns += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileStoreRecordSameKey);

static void BM_ProfileStoreRecordWorkingSet(benchmark::State& state) {
  // Cycling over a working set of callpath keys: every record misses the
  // memo and exercises the open-addressing probe.
  prof::ProfileStore store;
  std::vector<prof::CallpathKey> keys;
  for (std::uint32_t c = 0; c < 64; ++c) {
    keys.push_back({prof::extend(0x1111, 0x55AA), prof::Side::kOrigin, c, 100});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    store.record(keys[i % keys.size()], prof::Interval::kOriginExec, 5.0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileStoreRecordWorkingSet);

static void BM_TraceStoreAppend(benchmark::State& state) {
  // Chunked-arena append: constant-time, never a full-buffer reallocation.
  prof::TraceStore store;
  prof::TraceEvent ev;
  ev.request_id = 7;
  ev.breadcrumb = 0x1234;
  for (auto _ : state) {
    ev.local_ts += 10;
    store.append(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceStoreAppend);

static void BM_PvarSessionRead(benchmark::State& state) {
  sim::Engine eng;
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 1});
  ofi::Fabric fabric{cluster};
  auto& proc = cluster.spawn_process(0, "bench");
  hg::Class cls(fabric, proc);
  auto session = cls.pvar_session_init();
  const auto h = session.alloc("completion_queue_size");
  double sink = 0;
  for (auto _ : state) {
    sink += session.read(h);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_PvarSessionRead);

static void BM_ZipkinExport(benchmark::State& state) {
  // Incremental export path: parent links come precomputed from
  // TraceSummary::build and the output string is reserved once, so the
  // per-span work is one snprintf + one append — no heap churn.
  prof::NameRegistry::global().register_name("bench_rpc");
  const auto bc = prof::hash16("bench_rpc");
  prof::TraceStore store;
  const auto n_spans = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n_spans; ++i) {
    const auto span = prof::make_action_span(
        /*request_id=*/i + 1, bc, /*self_ep=*/3, /*start_ts=*/1000 * (i + 1),
        /*end_ts=*/1000 * (i + 1) + 500, /*lamport_base=*/4 * i);
    for (const auto& ev : span) store.append(ev);
  }
  const auto summary = prof::TraceSummary::build({&store});
  for (auto _ : state) {
    auto json = prof::to_zipkin_json(summary);
    // If the up-front reserve had under-estimated, the append loop would
    // have reallocated; output fitting inside the reserve proves it didn't.
    if (json.size() > 8 + summary.total_spans * 512) {
      state.SkipWithError("zipkin export outgrew its reserve (heap churn)");
      break;
    }
    benchmark::DoNotOptimize(json);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(summary.total_spans));
}
BENCHMARK(BM_ZipkinExport)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// Wire serialization
// ---------------------------------------------------------------------------

static void BM_ProcEncodeKvBatch(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 64; ++i) {
    kvs.emplace_back("key-" + std::to_string(i), std::string(512, 'v'));
  }
  for (auto _ : state) {
    auto buf = hg::encode(kvs);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          520);
}
BENCHMARK(BM_ProcEncodeKvBatch);

static void BM_ProcDecodeKvBatch(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 64; ++i) {
    kvs.emplace_back("key-" + std::to_string(i), std::string(512, 'v'));
  }
  const auto buf = hg::encode(kvs);
  for (auto _ : state) {
    auto out = hg::decode<decltype(kvs)>(buf);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ProcDecodeKvBatch);

static void BM_RpcHeaderRoundTrip(benchmark::State& state) {
  hg::RpcHeader h;
  h.rpc_id = 0x1234;
  h.breadcrumb = 0xAABBCCDD;
  for (auto _ : state) {
    hg::BufWriter w;
    hg::put(w, h);
    hg::BufReader r(w.buffer());
    hg::RpcHeader out;
    hg::get(r, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RpcHeaderRoundTrip);

// Full eager-path request/response round trip driven without margolite,
// measuring the host-side ns/send of the RPC layer. Arg(0) disables the
// wire-buffer pool (every send and receive allocates fresh payload
// storage); Arg(1) runs with the default pool, where receive-side buffers
// are recycled into subsequent sends. The before/after pair quantifies the
// allocation churn removed from the eager path; simulated timing is
// identical in both arms.
static void BM_MercliteEagerSend(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  sim::Engine eng;
  sim::Cluster cluster(eng, sim::ClusterParams{.node_count = 1});
  ofi::Fabric fabric{cluster};
  auto& cproc = cluster.spawn_process(0, "bench-origin");
  auto& sproc = cluster.spawn_process(0, "bench-target");
  hg::ClassConfig cc;
  cc.buffer_pool_limit = pooled ? 64 : 0;
  hg::Class client(fabric, cproc, cc);
  hg::Class server(fabric, sproc, cc);
  server.register_rpc("bench_echo", [&server](hg::HandlePtr h) {
    server.respond(h, std::vector<std::byte>(256), nullptr);
  });
  const auto rpc = client.register_rpc("bench_echo", nullptr);
  const std::vector<std::byte> payload(1024);
  std::uint64_t completed = 0;
  for (auto _ : state) {
    auto h = client.create_handle(server.addr(), rpc, 0);
    client.forward(h, payload,
                   [&completed](const hg::HandlePtr&) { ++completed; });
    eng.run();          // deliver the request
    server.progress();  // arrival callback -> respond()
    eng.run();          // deliver the response
    client.progress();
    client.trigger();
  }
  if (completed != static_cast<std::uint64_t>(state.iterations())) {
    state.SkipWithError("rpc round trips did not complete");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pool_hits"] = static_cast<double>(
      client.buffer_pool_hits() + server.buffer_pool_hits());
}
BENCHMARK(BM_MercliteEagerSend)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Sonata JSON / jx9lite
// ---------------------------------------------------------------------------

namespace {

std::string make_record_array(int n) {
  std::string arr = "[";
  for (int i = 0; i < n; ++i) {
    if (i != 0) arr += ",";
    arr += R"({"id": )" + std::to_string(i) +
           R"(, "pt": 12.5, "detector": "EMCAL", "vertex": {"z": 3.14}})";
  }
  arr += "]";
  return arr;
}

}  // namespace

static void BM_JsonParseRecordArray(benchmark::State& state) {
  const auto text = make_record_array(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto v = sym::json::parse(text);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseRecordArray)->Arg(10)->Arg(100)->Arg(1000);

static void BM_JsonDump(benchmark::State& state) {
  const auto v = sym::json::parse(make_record_array(100));
  for (auto _ : state) {
    auto text = sym::json::dump(v);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_JsonDump);

static void BM_Jx9FilterEval(benchmark::State& state) {
  const auto filter = sym::jx9::Filter::compile(
      "$pt > 10 && $detector == \"EMCAL\" && exists($vertex.z)");
  const auto rec = sym::json::parse(
      R"({"pt": 12.5, "detector": "EMCAL", "vertex": {"z": 3.14}})");
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.matches(rec);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Jx9FilterEval);

BENCHMARK_MAIN();
