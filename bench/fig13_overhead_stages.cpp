// fig13_overhead_stages: reproduces Fig. 13 — measurement overheads of the
// SYMBIOSYS stages on the large-scale HEPnOS data-loader (§VI).
//
// Paper setup: 32 providers over 16 nodes, 224 data-loader clients over 112
// nodes, 30 ESs, 16 databases per provider, batch 8192. Stages:
//   Baseline     instrumentation and measurement disabled
//   Stage 1      metadata (callpath + trace id) propagation only
//   Stage 2      callpath profiling, tracing, system sampling; no PVARs
//   Full Support everything, PVARs integrated on the fly
//
// Paper's finding: even with ~1M trace samples, overheads are minimal and
// indistinguishable from run-to-run variation.
//
// We keep the paper's topology but scale the per-client event volume so the
// bench completes in seconds (the stage *ratios* are what matters).
#include "bench/common.hpp"

using namespace bench;

namespace {

double run_stage(prof::Level level, std::uint64_t seed,
                 std::size_t* trace_samples) {
  auto cfg = sym::workloads::overhead_study_config();
  // Scale: 224 clients is heavy for one host process; keep the paper's
  // client:server ratio (7:1) at 56 clients / 8 servers.
  cfg.total_clients = 56;
  cfg.total_servers = 8;
  cfg.databases = 8 * 16;
  cfg.batch_size = 8192;  // the paper's batch size

  auto params = hepnos_params(cfg, /*events_per_client=*/2048, seed);
  params.instr = level;
  sym::workloads::HepnosWorld world(params);
  world.run();
  if (trace_samples != nullptr) {
    *trace_samples = 0;
    for (const auto* t : world.all_traces()) *trace_samples += t->size();
  }
  return sim::to_millis(world.makespan());
}

}  // namespace

int main() {
  print_header(
      "HEPnOS: data-loader execution time under the four measurement stages",
      "Fig. 13; paper: overheads minimal, within run-to-run variation");

  constexpr int kRepeats = 3;  // the paper averages 5 runs
  const prof::Level stages[] = {prof::Level::kOff, prof::Level::kStage1,
                                prof::Level::kStage2, prof::Level::kFull};
  double baseline_mean = 0;
  for (const auto level : stages) {
    double sum = 0, min = 1e300, max = 0;
    std::size_t samples = 0;
    for (int r = 0; r < kRepeats; ++r) {
      const double t = run_stage(level, 42 + 1000ULL * r, &samples);
      sum += t;
      if (t < min) min = t;
      if (t > max) max = t;
    }
    const double mean = sum / kRepeats;
    if (level == prof::Level::kOff) baseline_mean = mean;
    std::printf("%-13s mean %8.3f ms  [min %8.3f, max %8.3f]  overhead "
                "%+5.2f%%  trace samples %zu\n",
                prof::to_string(level), mean, min, max,
                100.0 * (mean - baseline_mean) / baseline_mean, samples);
  }
  std::printf("\n(run-to-run spread across seeds provides the variation band "
              "the paper compares against)\n");
  return 0;
}
