# gnuplot script rendering the paper's scatter figures from the CSV series
# the benches emit in the working directory:
#   ./build/bench/fig10_hepnos_databases     (fig10_c{2,3}_blocked.csv)
#   ./build/bench/fig12_hepnos_ofi_events    (fig12_c{4,5,6,7}_ofi_reads.csv)
#   gnuplot bench/plots/plot_figures.gp      -> fig10.png, fig12.png
set datafile separator ','
set terminal pngcairo size 1100,420

set output 'fig10.png'
set multiplot layout 1,2 title 'Fig. 10: blocked ULTs sampled at request start'
set xlabel 'time (ms)'; set ylabel 'blocked ULTs'
set title 'C2 (32 databases)'
plot 'fig10_c2_blocked.csv' skip 1 using 1:2 with points pt 7 ps 0.4 notitle
set title 'C3 (8 databases)'
plot 'fig10_c3_blocked.csv' skip 1 using 1:2 with points pt 7 ps 0.4 notitle
unset multiplot

set output 'fig12.png'
set multiplot layout 2,2 title 'Fig. 12: num_ofi_events_read PVAR samples'
set xlabel 'sample'; set ylabel 'events read'
set title 'C4 (batch 1024, max 16)'
plot 'fig12_c4_ofi_reads.csv' skip 1 using 1:2 with points pt 7 ps 0.3 notitle, 16 with lines dt 2 notitle
set title 'C5 (batch 1, max 16)'
plot 'fig12_c5_ofi_reads.csv' skip 1 using 1:2 with points pt 7 ps 0.3 notitle, 16 with lines dt 2 notitle
set title 'C6 (batch 1, max 64)'
plot 'fig12_c6_ofi_reads.csv' skip 1 using 1:2 with points pt 7 ps 0.3 notitle, 64 with lines dt 2 notitle
set title 'C7 (dedicated progress ES)'
plot 'fig12_c7_ofi_reads.csv' skip 1 using 1:2 with points pt 7 ps 0.3 notitle
unset multiplot
