// scaling_study: weak-scaling sweep of the sharded (multi-lane) engine.
//
// The HEPnOS data-loader workload is grown with the cluster (per-node work
// held constant: one process per node, a fixed event volume per client)
// while the engine runs with one lane per node and an increasing worker
// pool. For every (nodes, workers) cell we record the simulated makespan,
// the host wall-clock of world.run() and the event throughput; the speedup
// column is wall(workers=1) / wall(workers=N) at the same node count.
//
// The safe-window protocol guarantees bit-identical simulations for every
// worker count, so the sweep doubles as a large-scale determinism check:
// events_processed must match across the worker column or the bench fails.
//
// Interpreting the speedup honestly requires the host CPU count, which is
// recorded as `host_cpus` in the JSON: workers beyond the physical cores
// time-slice a single core and cannot beat workers=1 (they only pay the
// window-barrier overhead). The parallel-efficiency acceptance target
// (>= 2.5x at 4 workers, >= 64 nodes) is therefore evaluated only when
// host_cpus >= 4 and reported as SKIPPED otherwise — see EXPERIMENTS.md.
//
// Results land in BENCH_scaling.json (override with --out PATH). --smoke
// shrinks node counts and event volumes for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "workloads/hepnos_world.hpp"

using namespace bench;

namespace {

struct Cell {
  std::uint32_t nodes = 0;
  std::uint32_t lanes = 0;
  std::uint32_t workers = 0;
  double virtual_ms = 0;  ///< simulated data-loader makespan
  double wall_ms = 0;     ///< host wall-clock of world.run()
  std::uint64_t events_processed = 0;
  std::uint64_t events_stored = 0;
  double speedup_vs_1w = 0;
};

/// Weak-scaling deployment: one process per node, a quarter of the nodes
/// serve, the rest run data-loader clients.
sym::workloads::HepnosWorld::Params scaled_params(std::uint32_t nodes,
                                                  std::uint32_t workers,
                                                  bool smoke) {
  const std::uint32_t servers = nodes / 4;
  sym::workloads::HepnosWorld::Params p;
  p.config.name = "weak-scaling";
  p.config.total_servers = servers;
  p.config.servers_per_node = 1;
  p.config.total_clients = nodes - servers;
  p.config.clients_per_node = 1;
  p.config.databases = 2 * servers;
  p.config.threads_es = 4;
  p.config.batch_size = 512;
  p.file_model.events_per_file = smoke ? 16 : 96;
  p.file_model.payload_bytes = 256;
  p.files_per_client = 1;
  p.seed = 42;
  p.exec.lane_count = 0;  // one lane per node
  p.exec.worker_count = workers;
  return p;
}

Cell run_cell(std::uint32_t nodes, std::uint32_t workers, bool smoke) {
  Cell c;
  c.nodes = nodes;
  c.workers = workers;
  sym::workloads::HepnosWorld world(scaled_params(nodes, workers, smoke));
  c.lanes = world.engine().lane_count();
  const auto t0 = std::chrono::steady_clock::now();
  world.run();
  const auto t1 = std::chrono::steady_clock::now();
  c.virtual_ms = sim::to_millis(world.makespan());
  c.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  c.events_processed = world.engine().events_processed();
  c.events_stored = world.events_stored();
  return c;
}

void write_json(const std::string& path, bool smoke, unsigned host_cpus,
                const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"scaling_study\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"host_cpus\": " << host_cpus << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"nodes\": %u, \"lanes\": %u, \"workers\": %u, "
        "\"virtual_ms\": %.6f, \"wall_ms\": %.3f, \"events_processed\": "
        "%llu, \"events_stored\": %llu, \"speedup_vs_1w\": %.3f}%s\n",
        c.nodes, c.lanes, c.workers, c.virtual_ms, c.wall_ms,
        static_cast<unsigned long long>(c.events_processed),
        static_cast<unsigned long long>(c.events_stored),
        c.speedup_vs_1w, i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  print_header("HEPnOS weak scaling: lanes x workers sweep",
               "sharded-engine scaling study");

  const unsigned host_cpus = std::thread::hardware_concurrency();
  const std::vector<std::uint32_t> node_scales =
      smoke ? std::vector<std::uint32_t>{8, 16}
            : std::vector<std::uint32_t>{16, 64};
  const std::uint32_t worker_scales[] = {1, 2, 4, 8};

  std::printf("host cpus: %u%s\n\n", host_cpus,
              host_cpus < 4 ? "  (speedup columns are time-sliced; see "
                              "EXPERIMENTS.md)"
                            : "");

  std::vector<Cell> cells;
  bool deterministic = true;
  double speedup_4w_large = 0;
  for (const auto nodes : node_scales) {
    double wall_1w = 0;
    std::uint64_t events_1w = 0;
    for (const auto workers : worker_scales) {
      Cell c = run_cell(nodes, workers, smoke);
      if (workers == 1) {
        wall_1w = c.wall_ms;
        events_1w = c.events_processed;
      }
      c.speedup_vs_1w = c.wall_ms > 0 ? wall_1w / c.wall_ms : 0;
      if (c.events_processed != events_1w) deterministic = false;
      if (workers == 4 && nodes >= 64) speedup_4w_large = c.speedup_vs_1w;
      std::printf("nodes %3u  lanes %3u  workers %u  virtual %9.3f ms  "
                  "wall %8.2f ms  events %9llu  speedup x%.2f\n",
                  c.nodes, c.lanes, c.workers, c.virtual_ms, c.wall_ms,
                  static_cast<unsigned long long>(c.events_processed),
                  c.speedup_vs_1w);
      cells.push_back(c);
    }
  }

  write_json(out_path, smoke, host_cpus, cells);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!deterministic) {
    std::printf("acceptance: FAIL — events_processed diverged across "
                "worker counts (determinism violation)\n");
    return 1;
  }
  std::printf("determinism: events_processed identical across all worker "
              "counts: PASS\n");
  if (host_cpus >= 4 && !smoke) {
    const bool ok = speedup_4w_large >= 2.5;
    std::printf("acceptance: speedup at 4 workers / >=64 nodes: x%.2f "
                ">= 2.5: %s\n",
                speedup_4w_large, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  std::printf("acceptance: parallel-efficiency target SKIPPED (%s)\n",
              smoke ? "smoke run" : "host has fewer than 4 cpus");
  return 0;
}
