// scaling_study: weak-scaling sweep of the sharded (multi-lane) engine.
//
// The HEPnOS data-loader workload is grown with the cluster (per-node work
// held constant: one process per node, a fixed event volume per client)
// while the engine runs with one lane per node and an increasing worker
// pool. For every (nodes, workers) cell we record the simulated makespan,
// the host wall-clock of world.run(), the event throughput and the
// window-protocol counters (windows executed, mailbox pairs merged, quiet
// extensions, causality clamps); the speedup column is
// wall(workers=1) / wall(workers=N) at the same node count.
//
// Each node scale also runs a *legacy* reference cell (workers=1,
// matrix_lookahead=false, quiet_extension_cap=1): the global-lookahead
// lockstep protocol with its dense lanes^2 merge sweep, i.e. the engine as
// it was before the lookahead matrix landed. The ablation section reports
//   window_ratio = legacy windows / matrix windows
//   pair_ratio   = legacy windows * lanes * (lanes-1) / matrix merge pairs
// (the dense sweep visited every (dst, src) pair every window; the sparse
// sweep visits only pairs that actually received a post).
//
// The safe-window protocol guarantees bit-identical simulations for every
// worker count, so the sweep doubles as a large-scale determinism check:
// events_processed (and, under -DSYM_DEBUG_CHECKS=ON, the per-lane event
// digest) must match across the worker column or the bench fails. The
// sparse merge must also never visit more pairs than the lanes registered
// dirty — both gates run in smoke mode, so CI catches a regression.
//
// Interpreting the speedup honestly requires the host CPU count, which is
// recorded as `host_cpus` in the JSON: workers beyond the physical cores
// time-slice a single core and cannot beat workers=1 (they only pay the
// window-barrier overhead). The parallel-efficiency acceptance target
// (>= 2.5x at 4 workers, >= 64 nodes) is therefore evaluated only when
// host_cpus >= 4 and reported as SKIPPED otherwise — see EXPERIMENTS.md.
// The window/pair-ratio acceptance (>= 5x fewer windows, >= 10x fewer
// merged pairs at 64 nodes) is host-independent and always evaluated in
// full mode.
//
// Results land in BENCH_scaling.json (override with --out PATH). --smoke
// shrinks node counts and event volumes for CI.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "workloads/hepnos_world.hpp"

using namespace bench;

namespace {

struct Cell {
  std::uint32_t nodes = 0;
  std::uint32_t lanes = 0;
  std::uint32_t workers = 0;
  bool legacy = false;    ///< global-lookahead lockstep reference protocol
  double virtual_ms = 0;  ///< simulated data-loader makespan
  double wall_ms = 0;     ///< host wall-clock of world.run()
  std::uint64_t events_processed = 0;
  std::uint64_t events_stored = 0;
  std::uint64_t windows = 0;
  std::uint64_t merge_pairs = 0;   ///< (dst, src) pairs the merge absorbed
  std::uint64_t dirty_pairs = 0;   ///< pairs registered by first posts
  std::uint64_t quiet_windows = 0; ///< windows stretched by quiet extension
  std::uint64_t clamps = 0;        ///< events clamped by a lost extension bet
  std::uint64_t digest = 0;        ///< event digest (0 unless SYM_DEBUG_CHECKS)
  std::uint64_t allocations = 0;   ///< arena growths + SmallFn heap spills
  double alloc_per_event = 0;      ///< allocations / events_processed
  std::uint64_t peak_rss = 0;      ///< ru_maxrss after the cell (monotonic)
  double speedup_vs_1w = 0;
};

struct Ablation {
  std::uint32_t nodes = 0;
  std::uint32_t lanes = 0;
  std::uint64_t legacy_windows = 0;
  std::uint64_t legacy_dense_pairs = 0;  ///< windows * lanes * (lanes-1)
  std::uint64_t matrix_windows = 0;
  std::uint64_t matrix_merge_pairs = 0;
  double window_ratio = 0;
  double pair_ratio = 0;
};

/// Weak-scaling deployment: one process per node, a quarter of the nodes
/// serve, the rest run data-loader clients.
sym::workloads::HepnosWorld::Params scaled_params(std::uint32_t nodes,
                                                  std::uint32_t workers,
                                                  bool smoke, bool legacy) {
  const std::uint32_t servers = nodes / 4;
  sym::workloads::HepnosWorld::Params p;
  p.config.name = "weak-scaling";
  p.config.total_servers = servers;
  p.config.servers_per_node = 1;
  p.config.total_clients = nodes - servers;
  p.config.clients_per_node = 1;
  p.config.databases = 2 * servers;
  p.config.threads_es = 4;
  p.config.batch_size = 512;
  p.file_model.events_per_file = smoke ? 16 : 96;
  p.file_model.payload_bytes = 256;
  p.files_per_client = 1;
  p.seed = 42;
  p.exec.lane_count = 0;  // one lane per node
  p.exec.worker_count = workers;
  // Deeper speculation than the engine default: the study measures how far
  // adaptive extension can push window count down. Fidelity cost is tracked
  // in the causality_clamps column and in virtual_ms vs the legacy cell.
  p.exec.quiet_extension_cap = 16;
  if (legacy) {
    // The pre-matrix protocol: uniform lockstep windows of one global
    // lookahead, no quiet extension. (The merge is still sparse — the
    // dense-equivalent pair count is reconstructed arithmetically.)
    p.exec.matrix_lookahead = false;
    p.exec.quiet_extension_cap = 1;
  }
  return p;
}

Cell run_cell(std::uint32_t nodes, std::uint32_t workers, bool smoke,
              bool legacy) {
  Cell c;
  c.nodes = nodes;
  c.workers = workers;
  c.legacy = legacy;
  sym::workloads::HepnosWorld world(
      scaled_params(nodes, workers, smoke, legacy));
  c.lanes = world.engine().lane_count();
  const auto t0 = std::chrono::steady_clock::now();
  world.run();
  const auto t1 = std::chrono::steady_clock::now();
  c.virtual_ms = sim::to_millis(world.makespan());
  c.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  c.events_processed = world.engine().events_processed();
  c.events_stored = world.events_stored();
  c.windows = world.engine().windows_executed();
  c.merge_pairs = world.engine().merge_pairs_visited();
  c.dirty_pairs = world.engine().dirty_pairs_posted();
  c.quiet_windows = world.engine().quiet_extended_windows();
  c.clamps = world.engine().causality_clamps();
  c.digest = world.engine().event_digest();
  c.allocations = world.engine().arena_stats().allocations();
  c.alloc_per_event =
      c.events_processed > 0
          ? static_cast<double>(c.allocations) / c.events_processed
          : 0;
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  c.peak_rss = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  return c;
}

void print_cell(const Cell& c) {
  std::printf("nodes %3u  lanes %3u  workers %u%s  virtual %9.3f ms  "
              "wall %8.2f ms  events %9llu  windows %7llu  pairs %8llu  "
              "speedup x%.2f\n",
              c.nodes, c.lanes, c.workers, c.legacy ? " (legacy)" : "        ",
              c.virtual_ms, c.wall_ms,
              static_cast<unsigned long long>(c.events_processed),
              static_cast<unsigned long long>(c.windows),
              static_cast<unsigned long long>(c.merge_pairs), c.speedup_vs_1w);
}

void write_json(const std::string& path, bool smoke, unsigned host_cpus,
                const std::vector<Cell>& cells,
                const std::vector<Ablation>& ablation) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"scaling_study\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"host_cpus\": " << host_cpus << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"nodes\": %u, \"lanes\": %u, \"workers\": %u, "
        "\"protocol\": \"%s\", \"virtual_ms\": %.6f, \"wall_ms\": %.3f, "
        "\"events_processed\": %llu, \"events_stored\": %llu, "
        "\"windows\": %llu, \"merge_pairs\": %llu, \"dirty_pairs\": %llu, "
        "\"quiet_windows\": %llu, \"causality_clamps\": %llu, "
        "\"allocations\": %llu, \"alloc_per_event\": %.6f, "
        "\"peak_rss_bytes\": %llu, "
        "\"speedup_vs_1w\": %.3f}%s\n",
        c.nodes, c.lanes, c.workers, c.legacy ? "legacy" : "matrix",
        c.virtual_ms, c.wall_ms,
        static_cast<unsigned long long>(c.events_processed),
        static_cast<unsigned long long>(c.events_stored),
        static_cast<unsigned long long>(c.windows),
        static_cast<unsigned long long>(c.merge_pairs),
        static_cast<unsigned long long>(c.dirty_pairs),
        static_cast<unsigned long long>(c.quiet_windows),
        static_cast<unsigned long long>(c.clamps),
        static_cast<unsigned long long>(c.allocations), c.alloc_per_event,
        static_cast<unsigned long long>(c.peak_rss), c.speedup_vs_1w,
        i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"ablation\": [\n";
  for (std::size_t i = 0; i < ablation.size(); ++i) {
    const auto& a = ablation[i];
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"nodes\": %u, \"lanes\": %u, \"legacy_windows\": %llu, "
        "\"legacy_dense_pairs\": %llu, \"matrix_windows\": %llu, "
        "\"matrix_merge_pairs\": %llu, \"window_ratio\": %.2f, "
        "\"pair_ratio\": %.2f}%s\n",
        a.nodes, a.lanes, static_cast<unsigned long long>(a.legacy_windows),
        static_cast<unsigned long long>(a.legacy_dense_pairs),
        static_cast<unsigned long long>(a.matrix_windows),
        static_cast<unsigned long long>(a.matrix_merge_pairs), a.window_ratio,
        a.pair_ratio, i + 1 < ablation.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  print_header("HEPnOS weak scaling: lanes x workers sweep",
               "sharded-engine scaling study");

  const unsigned host_cpus = std::thread::hardware_concurrency();
  const std::vector<std::uint32_t> node_scales =
      smoke ? std::vector<std::uint32_t>{8, 16}
            : std::vector<std::uint32_t>{16, 64};
  const std::uint32_t worker_scales[] = {1, 2, 4, 8};

  std::printf("host cpus: %u%s\n\n", host_cpus,
              host_cpus < 4 ? "  (speedup columns are time-sliced; see "
                              "EXPERIMENTS.md)"
                            : "");

  std::vector<Cell> cells;
  std::vector<Ablation> ablations;
  bool deterministic = true;
  bool merge_sparse = true;
  double speedup_4w_large = 0;
  double window_ratio_large = 0;
  double pair_ratio_large = 0;
  for (const auto nodes : node_scales) {
    // Legacy (pre-matrix) reference: global lookahead, lockstep windows.
    Cell legacy = run_cell(nodes, 1, smoke, /*legacy=*/true);
    print_cell(legacy);
    if (legacy.merge_pairs > legacy.dirty_pairs) merge_sparse = false;
    cells.push_back(legacy);

    Ablation ab;
    ab.nodes = nodes;
    ab.lanes = legacy.lanes;
    ab.legacy_windows = legacy.windows;
    ab.legacy_dense_pairs = legacy.windows *
                            static_cast<std::uint64_t>(legacy.lanes) *
                            (legacy.lanes - 1);

    double wall_1w = 0;
    std::uint64_t events_1w = 0;
    std::uint64_t digest_1w = 0;
    for (const auto workers : worker_scales) {
      Cell c = run_cell(nodes, workers, smoke, /*legacy=*/false);
      if (workers == 1) {
        wall_1w = c.wall_ms;
        events_1w = c.events_processed;
        digest_1w = c.digest;
        ab.matrix_windows = c.windows;
        ab.matrix_merge_pairs = c.merge_pairs;
      }
      c.speedup_vs_1w = c.wall_ms > 0 ? wall_1w / c.wall_ms : 0;
      if (c.events_processed != events_1w || c.digest != digest_1w) {
        deterministic = false;
      }
      if (c.merge_pairs > c.dirty_pairs) merge_sparse = false;
      if (workers == 4 && nodes >= 64) speedup_4w_large = c.speedup_vs_1w;
      print_cell(c);
      cells.push_back(c);
    }

    ab.window_ratio =
        ab.matrix_windows > 0
            ? static_cast<double>(ab.legacy_windows) /
                  static_cast<double>(ab.matrix_windows)
            : 0;
    ab.pair_ratio =
        ab.matrix_merge_pairs > 0
            ? static_cast<double>(ab.legacy_dense_pairs) /
                  static_cast<double>(ab.matrix_merge_pairs)
            : 0;
    std::printf("  ablation @ %u nodes: windows %llu -> %llu (x%.1f), "
                "merge pairs %llu -> %llu (x%.1f)\n",
                nodes, static_cast<unsigned long long>(ab.legacy_windows),
                static_cast<unsigned long long>(ab.matrix_windows),
                ab.window_ratio,
                static_cast<unsigned long long>(ab.legacy_dense_pairs),
                static_cast<unsigned long long>(ab.matrix_merge_pairs),
                ab.pair_ratio);
    if (nodes >= 64) {
      window_ratio_large = ab.window_ratio;
      pair_ratio_large = ab.pair_ratio;
    }
    ablations.push_back(ab);
  }

  write_json(out_path, smoke, host_cpus, cells, ablations);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!deterministic) {
    std::printf("acceptance: FAIL — events_processed or event digest "
                "diverged across worker counts (determinism violation)\n");
    return 1;
  }
  std::printf("determinism: events_processed and digest identical across "
              "all worker counts: PASS\n");
  if (!merge_sparse) {
    std::printf("acceptance: FAIL — merge sweep visited more pairs than "
                "the lanes registered dirty (dense-sweep regression)\n");
    return 1;
  }
  std::printf("sparse merge: pairs visited <= pairs registered dirty in "
              "every cell: PASS\n");
  if (!smoke) {
    const bool win_ok = window_ratio_large >= 5.0;
    const bool pair_ok = pair_ratio_large >= 10.0;
    std::printf("acceptance: window ratio at >=64 nodes: x%.1f >= 5: %s\n",
                window_ratio_large, win_ok ? "PASS" : "FAIL");
    std::printf("acceptance: merge-pair ratio at >=64 nodes: x%.1f >= 10: "
                "%s\n",
                pair_ratio_large, pair_ok ? "PASS" : "FAIL");
    if (!win_ok || !pair_ok) return 1;
  }
  if (host_cpus >= 4 && !smoke) {
    const bool ok = speedup_4w_large >= 2.5;
    std::printf("acceptance: speedup at 4 workers / >=64 nodes: x%.2f "
                ">= 2.5: %s\n",
                speedup_4w_large, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  std::printf("acceptance: parallel-efficiency target SKIPPED (%s)\n",
              smoke ? "smoke run" : "host has fewer than 4 cpus");
  return 0;
}
