// bench/common.hpp
//
// Shared helpers for the experiment benches. Each bench regenerates one
// table or figure from the paper's evaluation; the Table IV configurations
// are used verbatim (clients, servers, ESs, databases, batch sizes), with
// the per-client event volume scaled so a bench completes in seconds on a
// laptop-class host.
#pragma once

#include <cstdio>
#include <string>

#include "symbiosys/analysis.hpp"
#include "symbiosys/records.hpp"
#include "workloads/hepnos_world.hpp"
#include "workloads/table4.hpp"

namespace bench {

namespace sim = sym::sim;
namespace prof = sym::prof;

/// Build HepnosWorld params for a Table IV config with a bench-scale event
/// volume (events per client = events_per_file * files).
inline sym::workloads::HepnosWorld::Params hepnos_params(
    sym::workloads::HepnosConfig cfg, std::uint32_t events_per_client = 2048,
    std::uint64_t seed = 42) {
  sym::workloads::HepnosWorld::Params p;
  p.config = std::move(cfg);
  p.file_model.events_per_file = events_per_client;
  p.file_model.payload_bytes = 512;
  p.files_per_client = 1;
  p.seed = seed;
  return p;
}

/// Sum one interval over all target-side entries whose leaf matches an RPC.
inline double sum_target_interval(
    const std::vector<const prof::ProfileStore*>& stores, prof::Interval iv,
    std::uint16_t leaf) {
  double total = 0;
  for (const auto* store : stores) {
    for (const auto& [key, stats] : store->entries()) {
      if (key.side != prof::Side::kTarget) continue;
      if (prof::leaf_of(key.breadcrumb) != leaf) continue;
      total += stats.at(iv).sum_ns;
    }
  }
  return total;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace bench
