// fig6_mobject_callpaths: reproduces Fig. 6 — identifying the dominant
// callpaths of the ior+Mobject workload (§V-A2).
//
// Setup per the paper: a single Mobject service provider node and 10 ior
// clients colocated on the same physical node, reading and writing objects.
//
// Paper's findings:
//   * mobject_read_op is the most expensive Mobject API operation overall;
//   * mobject_read_op => sdskv_list_keyvals_rpc is its dominant component;
//   * the per-step breakdown (input serialization, internal RDMA, target
//     handler time) is negligible next to target execution for this setup.
#include "bench/common.hpp"
#include "workloads/mobject_world.hpp"

using namespace bench;

int main() {
  print_header(
      "ior + Mobject: top-5 dominant callpaths by cumulative end-to-end "
      "request latency",
      "Fig. 6; paper: mobject_read_op dominant; read_op => "
      "sdskv_list_keyvals_rpc its largest component");

  sym::workloads::MobjectWorld::Params p;
  p.ior.clients = 10;
  p.ior.ops_per_client = 24;
  p.ior.object_bytes = 64 * 1024;
  p.ior.read_fraction = 0.5;
  sym::workloads::MobjectWorld world(p);
  world.run();

  const auto summary = prof::ProfileSummary::build(world.all_profiles());
  std::printf("%s\n", summary.format(5).c_str());

  // Cross-checks against the paper's observations.
  const auto* read_op = summary.find_by_leaf("mobject_read_op");
  const auto* write_op = summary.find_by_leaf("mobject_write_op");
  const auto* read_list = [&]() -> const prof::CallpathBreakdown* {
    const auto want = prof::extend(prof::hash16("mobject_read_op"),
                                   prof::hash16("sdskv_list_keyvals_rpc"));
    for (const auto& cb : summary.callpaths) {
      if (cb.breadcrumb == want) return &cb;
    }
    return nullptr;
  }();

  if (read_op != nullptr && write_op != nullptr) {
    std::printf("mobject_read_op cumulative:  %10.3f ms\n",
                read_op->cumulative_ns / 1e6);
    std::printf("mobject_write_op cumulative: %10.3f ms\n",
                write_op->cumulative_ns / 1e6);
  }
  if (read_op != nullptr && read_list != nullptr) {
    std::printf("read_op => sdskv_list_keyvals_rpc accounts for %.1f%% of "
                "mobject_read_op\n",
                100.0 * read_list->cumulative_ns / read_op->cumulative_ns);
  }
  return 0;
}
