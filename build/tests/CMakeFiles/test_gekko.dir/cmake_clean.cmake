file(REMOVE_RECURSE
  "CMakeFiles/test_gekko.dir/test_gekko.cpp.o"
  "CMakeFiles/test_gekko.dir/test_gekko.cpp.o.d"
  "test_gekko"
  "test_gekko.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gekko.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
