# Empty dependencies file for test_gekko.
# This may be replaced when dependencies are built.
