file(REMOVE_RECURSE
  "CMakeFiles/test_argolite.dir/test_argolite.cpp.o"
  "CMakeFiles/test_argolite.dir/test_argolite.cpp.o.d"
  "test_argolite"
  "test_argolite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_argolite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
