# Empty dependencies file for test_argolite.
# This may be replaced when dependencies are built.
