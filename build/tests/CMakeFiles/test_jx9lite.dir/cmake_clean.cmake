file(REMOVE_RECURSE
  "CMakeFiles/test_jx9lite.dir/test_jx9lite.cpp.o"
  "CMakeFiles/test_jx9lite.dir/test_jx9lite.cpp.o.d"
  "test_jx9lite"
  "test_jx9lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jx9lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
