# Empty compiler generated dependencies file for test_jx9lite.
# This may be replaced when dependencies are built.
