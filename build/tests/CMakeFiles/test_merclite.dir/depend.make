# Empty dependencies file for test_merclite.
# This may be replaced when dependencies are built.
