file(REMOVE_RECURSE
  "CMakeFiles/test_merclite.dir/test_merclite.cpp.o"
  "CMakeFiles/test_merclite.dir/test_merclite.cpp.o.d"
  "test_merclite"
  "test_merclite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merclite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
