file(REMOVE_RECURSE
  "CMakeFiles/test_margolite.dir/test_margolite.cpp.o"
  "CMakeFiles/test_margolite.dir/test_margolite.cpp.o.d"
  "test_margolite"
  "test_margolite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_margolite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
