# Empty compiler generated dependencies file for test_margolite.
# This may be replaced when dependencies are built.
