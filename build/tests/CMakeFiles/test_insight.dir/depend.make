# Empty dependencies file for test_insight.
# This may be replaced when dependencies are built.
