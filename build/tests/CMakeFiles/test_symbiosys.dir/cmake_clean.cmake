file(REMOVE_RECURSE
  "CMakeFiles/test_symbiosys.dir/test_symbiosys.cpp.o"
  "CMakeFiles/test_symbiosys.dir/test_symbiosys.cpp.o.d"
  "test_symbiosys"
  "test_symbiosys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbiosys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
