# Empty compiler generated dependencies file for test_symbiosys.
# This may be replaced when dependencies are built.
