file(REMOVE_RECURSE
  "CMakeFiles/test_simkit.dir/test_simkit.cpp.o"
  "CMakeFiles/test_simkit.dir/test_simkit.cpp.o.d"
  "test_simkit"
  "test_simkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
