# Empty dependencies file for test_simkit.
# This may be replaced when dependencies are built.
