# Empty compiler generated dependencies file for test_flamestore.
# This may be replaced when dependencies are built.
