file(REMOVE_RECURSE
  "CMakeFiles/test_flamestore.dir/test_flamestore.cpp.o"
  "CMakeFiles/test_flamestore.dir/test_flamestore.cpp.o.d"
  "test_flamestore"
  "test_flamestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flamestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
