# Empty compiler generated dependencies file for test_sofi.
# This may be replaced when dependencies are built.
