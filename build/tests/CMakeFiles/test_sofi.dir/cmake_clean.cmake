file(REMOVE_RECURSE
  "CMakeFiles/test_sofi.dir/test_sofi.cpp.o"
  "CMakeFiles/test_sofi.dir/test_sofi.cpp.o.d"
  "test_sofi"
  "test_sofi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sofi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
