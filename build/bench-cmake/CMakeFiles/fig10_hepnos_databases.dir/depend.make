# Empty dependencies file for fig10_hepnos_databases.
# This may be replaced when dependencies are built.
