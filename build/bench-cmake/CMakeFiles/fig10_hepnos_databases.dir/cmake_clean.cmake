file(REMOVE_RECURSE
  "../bench/fig10_hepnos_databases"
  "../bench/fig10_hepnos_databases.pdb"
  "CMakeFiles/fig10_hepnos_databases.dir/fig10_hepnos_databases.cpp.o"
  "CMakeFiles/fig10_hepnos_databases.dir/fig10_hepnos_databases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hepnos_databases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
