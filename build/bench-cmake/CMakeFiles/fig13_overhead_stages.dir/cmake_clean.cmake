file(REMOVE_RECURSE
  "../bench/fig13_overhead_stages"
  "../bench/fig13_overhead_stages.pdb"
  "CMakeFiles/fig13_overhead_stages.dir/fig13_overhead_stages.cpp.o"
  "CMakeFiles/fig13_overhead_stages.dir/fig13_overhead_stages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overhead_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
