# Empty compiler generated dependencies file for fig13_overhead_stages.
# This may be replaced when dependencies are built.
