file(REMOVE_RECURSE
  "../bench/fig9_hepnos_threads"
  "../bench/fig9_hepnos_threads.pdb"
  "CMakeFiles/fig9_hepnos_threads.dir/fig9_hepnos_threads.cpp.o"
  "CMakeFiles/fig9_hepnos_threads.dir/fig9_hepnos_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hepnos_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
