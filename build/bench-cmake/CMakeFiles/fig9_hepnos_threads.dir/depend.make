# Empty dependencies file for fig9_hepnos_threads.
# This may be replaced when dependencies are built.
