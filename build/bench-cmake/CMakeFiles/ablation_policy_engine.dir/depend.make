# Empty dependencies file for ablation_policy_engine.
# This may be replaced when dependencies are built.
