file(REMOVE_RECURSE
  "../bench/ablation_policy_engine"
  "../bench/ablation_policy_engine.pdb"
  "CMakeFiles/ablation_policy_engine.dir/ablation_policy_engine.cpp.o"
  "CMakeFiles/ablation_policy_engine.dir/ablation_policy_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
