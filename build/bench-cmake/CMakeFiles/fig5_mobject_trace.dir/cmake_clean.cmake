file(REMOVE_RECURSE
  "../bench/fig5_mobject_trace"
  "../bench/fig5_mobject_trace.pdb"
  "CMakeFiles/fig5_mobject_trace.dir/fig5_mobject_trace.cpp.o"
  "CMakeFiles/fig5_mobject_trace.dir/fig5_mobject_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mobject_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
