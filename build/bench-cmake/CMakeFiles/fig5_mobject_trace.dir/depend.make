# Empty dependencies file for fig5_mobject_trace.
# This may be replaced when dependencies are built.
