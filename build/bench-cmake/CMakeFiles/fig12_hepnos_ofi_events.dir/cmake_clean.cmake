file(REMOVE_RECURSE
  "../bench/fig12_hepnos_ofi_events"
  "../bench/fig12_hepnos_ofi_events.pdb"
  "CMakeFiles/fig12_hepnos_ofi_events.dir/fig12_hepnos_ofi_events.cpp.o"
  "CMakeFiles/fig12_hepnos_ofi_events.dir/fig12_hepnos_ofi_events.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hepnos_ofi_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
