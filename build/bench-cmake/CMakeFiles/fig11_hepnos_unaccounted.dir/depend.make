# Empty dependencies file for fig11_hepnos_unaccounted.
# This may be replaced when dependencies are built.
