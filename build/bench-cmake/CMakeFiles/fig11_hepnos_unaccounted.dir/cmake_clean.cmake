file(REMOVE_RECURSE
  "../bench/fig11_hepnos_unaccounted"
  "../bench/fig11_hepnos_unaccounted.pdb"
  "CMakeFiles/fig11_hepnos_unaccounted.dir/fig11_hepnos_unaccounted.cpp.o"
  "CMakeFiles/fig11_hepnos_unaccounted.dir/fig11_hepnos_unaccounted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hepnos_unaccounted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
