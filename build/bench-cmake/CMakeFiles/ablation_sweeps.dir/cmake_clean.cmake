file(REMOVE_RECURSE
  "../bench/ablation_sweeps"
  "../bench/ablation_sweeps.pdb"
  "CMakeFiles/ablation_sweeps.dir/ablation_sweeps.cpp.o"
  "CMakeFiles/ablation_sweeps.dir/ablation_sweeps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
