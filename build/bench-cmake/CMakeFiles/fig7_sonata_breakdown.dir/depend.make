# Empty dependencies file for fig7_sonata_breakdown.
# This may be replaced when dependencies are built.
