file(REMOVE_RECURSE
  "../bench/fig6_mobject_callpaths"
  "../bench/fig6_mobject_callpaths.pdb"
  "CMakeFiles/fig6_mobject_callpaths.dir/fig6_mobject_callpaths.cpp.o"
  "CMakeFiles/fig6_mobject_callpaths.dir/fig6_mobject_callpaths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mobject_callpaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
