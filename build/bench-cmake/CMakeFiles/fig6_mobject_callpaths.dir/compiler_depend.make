# Empty compiler generated dependencies file for fig6_mobject_callpaths.
# This may be replaced when dependencies are built.
