# Empty compiler generated dependencies file for tablev_analysis_times.
# This may be replaced when dependencies are built.
