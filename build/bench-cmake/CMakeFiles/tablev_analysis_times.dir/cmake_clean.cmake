file(REMOVE_RECURSE
  "../bench/tablev_analysis_times"
  "../bench/tablev_analysis_times.pdb"
  "CMakeFiles/tablev_analysis_times.dir/tablev_analysis_times.cpp.o"
  "CMakeFiles/tablev_analysis_times.dir/tablev_analysis_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tablev_analysis_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
