file(REMOVE_RECURSE
  "CMakeFiles/merclite.dir/core.cpp.o"
  "CMakeFiles/merclite.dir/core.cpp.o.d"
  "CMakeFiles/merclite.dir/pvar.cpp.o"
  "CMakeFiles/merclite.dir/pvar.cpp.o.d"
  "libmerclite.a"
  "libmerclite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merclite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
