# Empty dependencies file for merclite.
# This may be replaced when dependencies are built.
