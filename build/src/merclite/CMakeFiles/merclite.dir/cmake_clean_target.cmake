file(REMOVE_RECURSE
  "libmerclite.a"
)
