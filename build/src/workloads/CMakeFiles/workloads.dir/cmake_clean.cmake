file(REMOVE_RECURSE
  "CMakeFiles/workloads.dir/hepnos_world.cpp.o"
  "CMakeFiles/workloads.dir/hepnos_world.cpp.o.d"
  "CMakeFiles/workloads.dir/mobject_world.cpp.o"
  "CMakeFiles/workloads.dir/mobject_world.cpp.o.d"
  "CMakeFiles/workloads.dir/table4.cpp.o"
  "CMakeFiles/workloads.dir/table4.cpp.o.d"
  "libworkloads.a"
  "libworkloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
