# Empty compiler generated dependencies file for sofi.
# This may be replaced when dependencies are built.
