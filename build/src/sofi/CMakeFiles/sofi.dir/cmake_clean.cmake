file(REMOVE_RECURSE
  "CMakeFiles/sofi.dir/fabric.cpp.o"
  "CMakeFiles/sofi.dir/fabric.cpp.o.d"
  "libsofi.a"
  "libsofi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sofi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
