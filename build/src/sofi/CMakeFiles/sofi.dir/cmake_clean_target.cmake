file(REMOVE_RECURSE
  "libsofi.a"
)
