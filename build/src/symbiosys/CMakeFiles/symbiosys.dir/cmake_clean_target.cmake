file(REMOVE_RECURSE
  "libsymbiosys.a"
)
