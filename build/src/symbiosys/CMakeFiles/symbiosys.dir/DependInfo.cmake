
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbiosys/analysis.cpp" "src/symbiosys/CMakeFiles/symbiosys.dir/analysis.cpp.o" "gcc" "src/symbiosys/CMakeFiles/symbiosys.dir/analysis.cpp.o.d"
  "/root/repo/src/symbiosys/export.cpp" "src/symbiosys/CMakeFiles/symbiosys.dir/export.cpp.o" "gcc" "src/symbiosys/CMakeFiles/symbiosys.dir/export.cpp.o.d"
  "/root/repo/src/symbiosys/insight.cpp" "src/symbiosys/CMakeFiles/symbiosys.dir/insight.cpp.o" "gcc" "src/symbiosys/CMakeFiles/symbiosys.dir/insight.cpp.o.d"
  "/root/repo/src/symbiosys/records.cpp" "src/symbiosys/CMakeFiles/symbiosys.dir/records.cpp.o" "gcc" "src/symbiosys/CMakeFiles/symbiosys.dir/records.cpp.o.d"
  "/root/repo/src/symbiosys/zipkin.cpp" "src/symbiosys/CMakeFiles/symbiosys.dir/zipkin.cpp.o" "gcc" "src/symbiosys/CMakeFiles/symbiosys.dir/zipkin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
