# Empty dependencies file for symbiosys.
# This may be replaced when dependencies are built.
