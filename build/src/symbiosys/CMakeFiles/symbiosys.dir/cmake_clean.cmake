file(REMOVE_RECURSE
  "CMakeFiles/symbiosys.dir/analysis.cpp.o"
  "CMakeFiles/symbiosys.dir/analysis.cpp.o.d"
  "CMakeFiles/symbiosys.dir/export.cpp.o"
  "CMakeFiles/symbiosys.dir/export.cpp.o.d"
  "CMakeFiles/symbiosys.dir/insight.cpp.o"
  "CMakeFiles/symbiosys.dir/insight.cpp.o.d"
  "CMakeFiles/symbiosys.dir/records.cpp.o"
  "CMakeFiles/symbiosys.dir/records.cpp.o.d"
  "CMakeFiles/symbiosys.dir/zipkin.cpp.o"
  "CMakeFiles/symbiosys.dir/zipkin.cpp.o.d"
  "libsymbiosys.a"
  "libsymbiosys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
