file(REMOVE_RECURSE
  "libargolite.a"
)
