# Empty compiler generated dependencies file for argolite.
# This may be replaced when dependencies are built.
