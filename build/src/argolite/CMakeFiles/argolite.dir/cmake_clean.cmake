file(REMOVE_RECURSE
  "CMakeFiles/argolite.dir/runtime.cpp.o"
  "CMakeFiles/argolite.dir/runtime.cpp.o.d"
  "CMakeFiles/argolite.dir/sync.cpp.o"
  "CMakeFiles/argolite.dir/sync.cpp.o.d"
  "CMakeFiles/argolite.dir/xstream.cpp.o"
  "CMakeFiles/argolite.dir/xstream.cpp.o.d"
  "libargolite.a"
  "libargolite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argolite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
