# Empty compiler generated dependencies file for services.
# This may be replaced when dependencies are built.
