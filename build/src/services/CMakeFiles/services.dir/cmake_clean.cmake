file(REMOVE_RECURSE
  "CMakeFiles/services.dir/bake/bake.cpp.o"
  "CMakeFiles/services.dir/bake/bake.cpp.o.d"
  "CMakeFiles/services.dir/flamestore/flamestore.cpp.o"
  "CMakeFiles/services.dir/flamestore/flamestore.cpp.o.d"
  "CMakeFiles/services.dir/gekko/gekko.cpp.o"
  "CMakeFiles/services.dir/gekko/gekko.cpp.o.d"
  "CMakeFiles/services.dir/hepnos/hepnos.cpp.o"
  "CMakeFiles/services.dir/hepnos/hepnos.cpp.o.d"
  "CMakeFiles/services.dir/mobject/mobject.cpp.o"
  "CMakeFiles/services.dir/mobject/mobject.cpp.o.d"
  "CMakeFiles/services.dir/remi/remi.cpp.o"
  "CMakeFiles/services.dir/remi/remi.cpp.o.d"
  "CMakeFiles/services.dir/sdskv/backend.cpp.o"
  "CMakeFiles/services.dir/sdskv/backend.cpp.o.d"
  "CMakeFiles/services.dir/sdskv/sdskv.cpp.o"
  "CMakeFiles/services.dir/sdskv/sdskv.cpp.o.d"
  "CMakeFiles/services.dir/sonata/json.cpp.o"
  "CMakeFiles/services.dir/sonata/json.cpp.o.d"
  "CMakeFiles/services.dir/sonata/jx9lite.cpp.o"
  "CMakeFiles/services.dir/sonata/jx9lite.cpp.o.d"
  "CMakeFiles/services.dir/sonata/sonata.cpp.o"
  "CMakeFiles/services.dir/sonata/sonata.cpp.o.d"
  "CMakeFiles/services.dir/ssg/ssg.cpp.o"
  "CMakeFiles/services.dir/ssg/ssg.cpp.o.d"
  "libservices.a"
  "libservices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
