file(REMOVE_RECURSE
  "libservices.a"
)
