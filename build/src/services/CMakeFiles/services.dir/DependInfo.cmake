
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/bake/bake.cpp" "src/services/CMakeFiles/services.dir/bake/bake.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/bake/bake.cpp.o.d"
  "/root/repo/src/services/flamestore/flamestore.cpp" "src/services/CMakeFiles/services.dir/flamestore/flamestore.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/flamestore/flamestore.cpp.o.d"
  "/root/repo/src/services/gekko/gekko.cpp" "src/services/CMakeFiles/services.dir/gekko/gekko.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/gekko/gekko.cpp.o.d"
  "/root/repo/src/services/hepnos/hepnos.cpp" "src/services/CMakeFiles/services.dir/hepnos/hepnos.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/hepnos/hepnos.cpp.o.d"
  "/root/repo/src/services/mobject/mobject.cpp" "src/services/CMakeFiles/services.dir/mobject/mobject.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/mobject/mobject.cpp.o.d"
  "/root/repo/src/services/remi/remi.cpp" "src/services/CMakeFiles/services.dir/remi/remi.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/remi/remi.cpp.o.d"
  "/root/repo/src/services/sdskv/backend.cpp" "src/services/CMakeFiles/services.dir/sdskv/backend.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/sdskv/backend.cpp.o.d"
  "/root/repo/src/services/sdskv/sdskv.cpp" "src/services/CMakeFiles/services.dir/sdskv/sdskv.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/sdskv/sdskv.cpp.o.d"
  "/root/repo/src/services/sonata/json.cpp" "src/services/CMakeFiles/services.dir/sonata/json.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/sonata/json.cpp.o.d"
  "/root/repo/src/services/sonata/jx9lite.cpp" "src/services/CMakeFiles/services.dir/sonata/jx9lite.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/sonata/jx9lite.cpp.o.d"
  "/root/repo/src/services/sonata/sonata.cpp" "src/services/CMakeFiles/services.dir/sonata/sonata.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/sonata/sonata.cpp.o.d"
  "/root/repo/src/services/ssg/ssg.cpp" "src/services/CMakeFiles/services.dir/ssg/ssg.cpp.o" "gcc" "src/services/CMakeFiles/services.dir/ssg/ssg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/margolite/CMakeFiles/margolite.dir/DependInfo.cmake"
  "/root/repo/build/src/merclite/CMakeFiles/merclite.dir/DependInfo.cmake"
  "/root/repo/build/src/sofi/CMakeFiles/sofi.dir/DependInfo.cmake"
  "/root/repo/build/src/argolite/CMakeFiles/argolite.dir/DependInfo.cmake"
  "/root/repo/build/src/symbiosys/CMakeFiles/symbiosys.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
