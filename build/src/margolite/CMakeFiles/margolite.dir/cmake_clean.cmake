file(REMOVE_RECURSE
  "CMakeFiles/margolite.dir/instance.cpp.o"
  "CMakeFiles/margolite.dir/instance.cpp.o.d"
  "CMakeFiles/margolite.dir/policy.cpp.o"
  "CMakeFiles/margolite.dir/policy.cpp.o.d"
  "libmargolite.a"
  "libmargolite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/margolite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
