# Empty dependencies file for margolite.
# This may be replaced when dependencies are built.
