file(REMOVE_RECURSE
  "libmargolite.a"
)
