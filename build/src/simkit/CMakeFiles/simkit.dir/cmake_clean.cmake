file(REMOVE_RECURSE
  "CMakeFiles/simkit.dir/cluster.cpp.o"
  "CMakeFiles/simkit.dir/cluster.cpp.o.d"
  "CMakeFiles/simkit.dir/engine.cpp.o"
  "CMakeFiles/simkit.dir/engine.cpp.o.d"
  "CMakeFiles/simkit.dir/fiber.cpp.o"
  "CMakeFiles/simkit.dir/fiber.cpp.o.d"
  "libsimkit.a"
  "libsimkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
