file(REMOVE_RECURSE
  "CMakeFiles/analyze_perf_data.dir/analyze_perf_data.cpp.o"
  "CMakeFiles/analyze_perf_data.dir/analyze_perf_data.cpp.o.d"
  "analyze_perf_data"
  "analyze_perf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_perf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
