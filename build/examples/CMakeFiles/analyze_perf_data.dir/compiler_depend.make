# Empty compiler generated dependencies file for analyze_perf_data.
# This may be replaced when dependencies are built.
