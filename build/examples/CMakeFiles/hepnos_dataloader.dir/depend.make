# Empty dependencies file for hepnos_dataloader.
# This may be replaced when dependencies are built.
