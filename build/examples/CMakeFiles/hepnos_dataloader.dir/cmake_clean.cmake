file(REMOVE_RECURSE
  "CMakeFiles/hepnos_dataloader.dir/hepnos_dataloader.cpp.o"
  "CMakeFiles/hepnos_dataloader.dir/hepnos_dataloader.cpp.o.d"
  "hepnos_dataloader"
  "hepnos_dataloader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_dataloader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
