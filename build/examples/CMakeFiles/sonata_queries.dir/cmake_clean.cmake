file(REMOVE_RECURSE
  "CMakeFiles/sonata_queries.dir/sonata_queries.cpp.o"
  "CMakeFiles/sonata_queries.dir/sonata_queries.cpp.o.d"
  "sonata_queries"
  "sonata_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
