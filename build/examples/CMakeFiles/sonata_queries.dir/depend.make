# Empty dependencies file for sonata_queries.
# This may be replaced when dependencies are built.
