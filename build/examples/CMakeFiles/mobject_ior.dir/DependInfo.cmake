
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mobject_ior.cpp" "examples/CMakeFiles/mobject_ior.dir/mobject_ior.cpp.o" "gcc" "examples/CMakeFiles/mobject_ior.dir/mobject_ior.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/services.dir/DependInfo.cmake"
  "/root/repo/build/src/symbiosys/CMakeFiles/symbiosys.dir/DependInfo.cmake"
  "/root/repo/build/src/margolite/CMakeFiles/margolite.dir/DependInfo.cmake"
  "/root/repo/build/src/merclite/CMakeFiles/merclite.dir/DependInfo.cmake"
  "/root/repo/build/src/sofi/CMakeFiles/sofi.dir/DependInfo.cmake"
  "/root/repo/build/src/argolite/CMakeFiles/argolite.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
