file(REMOVE_RECURSE
  "CMakeFiles/mobject_ior.dir/mobject_ior.cpp.o"
  "CMakeFiles/mobject_ior.dir/mobject_ior.cpp.o.d"
  "mobject_ior"
  "mobject_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobject_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
