# Empty dependencies file for mobject_ior.
# This may be replaced when dependencies are built.
