# Empty compiler generated dependencies file for gekko_fs.
# This may be replaced when dependencies are built.
