file(REMOVE_RECURSE
  "CMakeFiles/gekko_fs.dir/gekko_fs.cpp.o"
  "CMakeFiles/gekko_fs.dir/gekko_fs.cpp.o.d"
  "gekko_fs"
  "gekko_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gekko_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
