#!/usr/bin/env sh
# Lint driver: the in-tree symlint analyzer plus (when installed) clang-tidy
# with the checked-in .clang-tidy config, warnings-as-errors over the
# determinism-critical libraries (src/symbiosys, src/simkit).
#
# Usage:
#   scripts/run_lint.sh [build-dir]               # full lint (default: build)
#   scripts/run_lint.sh --sarif <out.sarif> [build-dir]
#       Same full lint, but symlint additionally writes a SARIF 2.1.0 report
#       to <out.sarif> (for code-scanning upload / editor ingestion). The
#       report contains post-baseline findings only.
#   scripts/run_lint.sh --diff <git-ref> [build-dir]
#       Diff-aware symlint: only the TUs changed relative to <git-ref> (per
#       `git diff --name-only`) plus their reverse include-dependents are
#       re-analyzed; everything else is served from the incremental cache.
#       Exits 77 (ctest SKIP) when the repo is not a git checkout. Run as
#       the symlint_diff_smoke ctest target.
#   scripts/run_lint.sh --tidy-smoke <build-dir>  # clang-tidy over two
#       representative TUs only; exits 77 (ctest SKIP) when clang-tidy or
#       compile_commands.json is unavailable. Run as the clang_tidy_smoke
#       ctest target — clang-tidy is optional tooling, never a dependency.
#
# symlint needs no compile database: it is lexical and self-contained. The
# clang-tidy half needs CMAKE_EXPORT_COMPILE_COMMANDS=ON (the top-level
# CMakeLists.txt sets it).

set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

mode=full
sarif_out=""
diff_ref=""
if [ "${1:-}" = "--tidy-smoke" ]; then
  mode=smoke
  shift
elif [ "${1:-}" = "--sarif" ]; then
  sarif_out=${2:?"run_lint: --sarif needs an output path"}
  shift 2
elif [ "${1:-}" = "--diff" ]; then
  mode=diff
  diff_ref=${2:?"run_lint: --diff needs a git ref"}
  shift 2
fi
build=${1:-$root/build}

# Representative TUs for the smoke run: the analysis/export path (D2's
# home turf) and the sharded engine core.
smoke_tus="$root/src/symbiosys/analysis.cpp $root/src/simkit/engine.cpp"

run_tidy() {
  scope=$1
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_lint: clang-tidy not installed, skipping tidy pass"
    return 77
  fi
  if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_lint: $build/compile_commands.json missing (configure first)"
    return 77
  fi
  if [ "$scope" = smoke ]; then
    files=$smoke_tus
  else
    files=$(find "$root/src/symbiosys" "$root/src/simkit" \
                 -name '*.cpp' | sort)
  fi
  # .clang-tidy at the repo root supplies the check list; promote every
  # diagnostic to an error so the run is a gate, not a suggestion box.
  clang-tidy -p "$build" --quiet --warnings-as-errors='*' $files
}

if [ "$mode" = smoke ]; then
  run_tidy smoke
  rc=$?
  if [ "$rc" -eq 77 ]; then exit 77; fi
  if [ "$rc" -ne 0 ]; then
    echo "run_lint: clang-tidy smoke FAILED"
    exit 1
  fi
  echo "run_lint: clang-tidy smoke OK"
  exit 0
fi

# --- full mode: symlint first, then the optional tidy pass ----------------
symlint_bin=$build/tools/symlint/symlint
if [ ! -x "$symlint_bin" ]; then
  # Not built yet (or a differently-laid-out build dir): search for it.
  symlint_bin=$(find "$build" -name symlint -type f -perm -u+x 2>/dev/null \
                | head -n1)
fi
if [ -z "${symlint_bin:-}" ] || [ ! -x "$symlint_bin" ]; then
  echo "run_lint: symlint binary not found under $build — build it first:"
  echo "  cmake -B build -S . && cmake --build build --target symlint"
  exit 2
fi

if [ "$mode" = diff ]; then
  # Diff-aware mode: changed TUs + reverse include-dependents only. A
  # separate cache dir keeps this run from racing the full gate's cache
  # when ctest schedules both in parallel; a cold cache just means the
  # first diff run pays full price.
  if ! command -v git >/dev/null 2>&1; then
    echo "run_lint: git not installed, skipping diff lint"
    exit 77
  fi
  if ! git -C "$root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    echo "run_lint: $root is not a git checkout, skipping diff lint"
    exit 77
  fi
  changed=$(mktemp "${TMPDIR:-/tmp}/symlint-changed.XXXXXX") || exit 2
  if ! git -C "$root" diff --name-only "$diff_ref" -- >"$changed" 2>/dev/null
  then
    rm -f "$changed"
    echo "run_lint: git diff $diff_ref failed, skipping diff lint"
    exit 77
  fi
  "$symlint_bin" --root "$root/src" \
      --cache-dir "$build/symlint-cache-diff" \
      --baseline "$root/tools/symlint/baseline.json" \
      --pvars-doc "$root/docs/PVARS.md" \
      --changed-list "$changed" \
      ${sarif_out:+--sarif "$sarif_out"} \
      --stats
  rc=$?
  rm -f "$changed"
  if [ "$rc" -ne 0 ]; then
    echo "run_lint: diff lint FAILED"
    exit 1
  fi
  echo "run_lint: diff lint OK"
  exit 0
fi

# Mirror the `symlint` ctest gate: cross-TU passes over src/, incremental
# index cache in the build tree, findings filtered through the checked-in
# baseline. --sarif additionally emits the machine-readable report.
fail=0
"$symlint_bin" --root "$root/src" \
    --cache-dir "$build/symlint-cache" \
    --baseline "$root/tools/symlint/baseline.json" \
    --pvars-doc "$root/docs/PVARS.md" \
    ${sarif_out:+--sarif "$sarif_out"} \
  || fail=1

run_tidy full
rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 77 ]; then
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "run_lint: FAILED"
  exit 1
fi
echo "run_lint: OK"
exit 0
