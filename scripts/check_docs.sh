#!/usr/bin/env sh
# Documentation consistency check, run as a CTest test (see
# tests/CMakeLists.txt). Fails if:
#   1. any markdown file contains a relative link to a file that does not
#      exist, or
#   2. a bench target registered in bench/CMakeLists.txt is missing from
#      EXPERIMENTS.md, or
#   3. a test target registered in tests/CMakeLists.txt is mentioned in no
#      markdown doc at all.
#
# Usage: scripts/check_docs.sh [repo-root]   (defaults to the script's parent)

set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

fail=0

# --- 1. relative markdown links ------------------------------------------
# Extract ](target) occurrences from every tracked .md file; skip absolute
# URLs, mailto and pure in-page anchors; resolve the rest against the
# linking file's directory and require the target to exist.
for md in $(find . -name '*.md' -not -path './build/*' -not -path './.git/*'); do
  dir=$(dirname "$md")
  # One link target per line; tolerate multiple links per line.
  for target in $(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//'); do
    case $target in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}                # strip in-page anchor
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done
done

# --- 2. bench targets must appear in EXPERIMENTS.md ----------------------
for b in $(sed -n 's/^sym_add_bench(\([a-z0-9_]*\) .*/\1/p' bench/CMakeLists.txt); do
  if ! grep -q "$b" EXPERIMENTS.md; then
    echo "MISSING FROM EXPERIMENTS.md: bench target $b"
    fail=1
  fi
done

# --- 3. test targets must be mentioned somewhere in the docs -------------
docs="README.md EXPERIMENTS.md DESIGN.md ROADMAP.md docs/ARCHITECTURE.md docs/PVARS.md docs/STATIC_ANALYSIS.md"
for t in $(sed -n 's/^sym_add_test(\([a-z0-9_]*\) .*/\1/p' tests/CMakeLists.txt); do
  if ! grep -q "$t" $docs 2>/dev/null; then
    echo "UNDOCUMENTED TEST TARGET: $t (mention it in one of: $docs)"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"
exit 0
