#!/usr/bin/env sh
# Documentation consistency check, run as a CTest test (see
# tests/CMakeLists.txt). Fails if:
#   1. any markdown file contains a relative link to a file that does not
#      exist, or an intra-docs anchor (in-page or cross-file #section) that
#      matches no heading in the target file, or
#   2. a bench target registered in bench/CMakeLists.txt is missing from
#      EXPERIMENTS.md, or
#   3. a test target registered in tests/CMakeLists.txt is mentioned in no
#      markdown doc at all, or
#   4. a doc references a ctest-style test name (test_*) that no CMakeLists
#      registers, or
#   5. a required doc file is missing.
#
# Usage: scripts/check_docs.sh [repo-root]   (defaults to the script's parent)

set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

fail=0

# GitHub-style anchor of every heading in $1: lowercase, punctuation other
# than [a-z0-9 _-] stripped, spaces to hyphens.
heading_anchors() {
  sed -n 's/^#\{1,6\} \{1,\}//p' "$1" \
    | tr 'A-Z' 'a-z' \
    | sed 's/[^a-z0-9 _-]//g; s/ /-/g'
}

# --- 1. relative markdown links and intra-docs anchors -------------------
# Extract ](target) occurrences from every tracked .md file; skip absolute
# URLs and mailto; resolve relative paths against the linking file's
# directory and require the target to exist; when the link carries a
# #fragment into a markdown file, require a matching heading there.
for md in $(find . -name '*.md' -not -path './build/*' -not -path './.git/*'); do
  dir=$(dirname "$md")
  # One link target per line; tolerate multiple links per line.
  for target in $(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//'); do
    case $target in
      http://*|https://*|mailto:*) continue ;;
    esac
    path=${target%%#*}                # file part ("" = in-page link)
    anchor=""
    case $target in
      *\#*) anchor=${target#*#} ;;
    esac
    if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
      continue
    fi
    if [ -n "$anchor" ]; then
      anchored_file="$md"
      [ -n "$path" ] && anchored_file="$dir/$path"
      case $anchored_file in
        *.md)
          if ! heading_anchors "$anchored_file" | grep -qx "$anchor"; then
            echo "DANGLING ANCHOR: $md -> $target (no such heading)"
            fail=1
          fi ;;
      esac
    fi
  done
done

# --- 2. bench targets must appear in EXPERIMENTS.md ----------------------
for b in $(sed -n 's/^sym_add_bench(\([a-z0-9_]*\) .*/\1/p' bench/CMakeLists.txt); do
  if ! grep -q "$b" EXPERIMENTS.md; then
    echo "MISSING FROM EXPERIMENTS.md: bench target $b"
    fail=1
  fi
done

# --- 3. test targets must be mentioned somewhere in the docs -------------
docs="README.md EXPERIMENTS.md DESIGN.md ROADMAP.md docs/ARCHITECTURE.md docs/PVARS.md docs/SERVICES.md docs/STATIC_ANALYSIS.md docs/SCENARIOS.md"
for t in $(sed -n 's/^sym_add_test(\([a-z0-9_]*\) .*/\1/p' tests/CMakeLists.txt); do
  if ! grep -q "$t" $docs 2>/dev/null; then
    echo "UNDOCUMENTED TEST TARGET: $t (mention it in one of: $docs)"
    fail=1
  fi
done

# --- 4. docs may only reference ctest names that exist -------------------
# Every test_* token in the docs must be a registered test target (either a
# sym_add_test binary or an explicit add_test NAME, e.g. the sanitizer
# re-runs). Catches docs that survived a test rename.
known_tests=$({
  sed -n 's/^ *sym_add_test(\([a-z0-9_]*\) .*/\1/p' tests/CMakeLists.txt
  sed -n 's/.*add_test(NAME \([a-z0-9_]*\).*/\1/p' \
      tests/CMakeLists.txt bench/CMakeLists.txt
} | sort -u)
for name in $(grep -ho 'test_[a-z0-9_]*' $docs 2>/dev/null | sort -u); do
  if ! printf '%s\n' "$known_tests" | grep -qx "$name"; then
    echo "NONEXISTENT TEST REFERENCED: $name (not registered in any CMakeLists)"
    fail=1
  fi
done

# --- 5. required docs must exist ------------------------------------------
for req in $docs; do
  if [ ! -f "$req" ]; then
    echo "MISSING REQUIRED DOC: $req"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"
exit 0
