#!/usr/bin/env sh
# Build (if needed) and run the benchmark suite, collecting machine-readable
# results as BENCH_*.json in the output directory.
#
# Usage: scripts/run_bench.sh [build-dir] [out-dir]
#   build-dir  CMake build tree (default: build)
#   out-dir    where BENCH_*.json land (default: <build-dir>/bench-results)
#
# Set SYM_BENCH_SMOKE=1 for the fast CI variant (same flags the bench_smoke
# ctest label uses). Set SYM_BENCH_COMMIT_ROOT=1 to also refresh the
# committed trajectory files at the repo root (BENCH_overhead.json,
# BENCH_scaling.json, BENCH_cache.json, BENCH_scale.json) — full mode
# only, so a smoke run can never clobber real numbers.

set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$root/build"}
out=${2:-"$build/bench-results"}

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake -S "$root" -B "$build"
fi
cmake --build "$build" -j"$(nproc 2>/dev/null || echo 2)"

mkdir -p "$out"

smoke_flag=""
if [ "${SYM_BENCH_SMOKE:-0}" = "1" ]; then
  smoke_flag="--smoke"
fi

echo "== overhead_study =="
# Exits non-zero if the FULL stage exceeds the 1.5x acceptance bound.
"$build/bench/overhead_study" $smoke_flag --out "$out/BENCH_overhead.json"

echo "== scaling_study =="
# Weak-scaling sweep of the sharded engine (lanes x workers). Fails on a
# determinism violation; the parallel-efficiency target is evaluated only
# when the host has >= 4 cpus (recorded as host_cpus in the JSON).
"$build/bench/scaling_study" $smoke_flag --out "$out/BENCH_scaling.json"

echo "== cache_fairness_study =="
# Blockcache placement A/B and fair-share policy study. Fails when a cell's
# digests diverge across worker counts, when aligned placement stops
# beating hash, or when size-fair stops narrowing the FIFO rate gap.
"$build/bench/cache_fairness_study" $smoke_flag --out "$out/BENCH_cache.json"

echo "== scale_study =="
# Million-request scale study over the replayed application mixes. Fails
# when checksums/event counts diverge across worker counts, when any
# reserved cell allocates in its second half (steady-state zero-allocation
# gate), or when the full-mode ladder misses 1M concurrent in-flight.
"$build/bench/scale_study" $smoke_flag --out "$out/BENCH_scale.json"

echo "== micro_benchmarks =="
"$build/bench/micro_benchmarks" \
  --benchmark_out="$out/BENCH_micro.json" \
  --benchmark_out_format=json \
  ${smoke_flag:+--benchmark_min_time=0.01}

if [ "${SYM_BENCH_COMMIT_ROOT:-0}" = "1" ]; then
  if [ -n "$smoke_flag" ]; then
    echo "run_bench: refusing to refresh root BENCH files from a smoke run"
    exit 1
  fi
  cp "$out/BENCH_overhead.json" "$root/BENCH_overhead.json"
  cp "$out/BENCH_scaling.json" "$root/BENCH_scaling.json"
  cp "$out/BENCH_cache.json" "$root/BENCH_cache.json"
  cp "$out/BENCH_scale.json" "$root/BENCH_scale.json"
  echo "refreshed committed trajectory files: $root/BENCH_overhead.json," \
       "$root/BENCH_scaling.json, $root/BENCH_cache.json," \
       "$root/BENCH_scale.json"
fi

echo
echo "results in $out:"
ls -l "$out"/BENCH_*.json
