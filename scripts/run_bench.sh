#!/usr/bin/env sh
# Build (if needed) and run the benchmark suite, collecting machine-readable
# results as BENCH_*.json in the output directory.
#
# Usage: scripts/run_bench.sh [build-dir] [out-dir]
#   build-dir  CMake build tree (default: build)
#   out-dir    where BENCH_*.json land (default: <build-dir>/bench-results)
#
# Set SYM_BENCH_SMOKE=1 for the fast CI variant (same flags the bench_smoke
# ctest label uses).

set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$root/build"}
out=${2:-"$build/bench-results"}

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake -S "$root" -B "$build"
fi
cmake --build "$build" -j"$(nproc 2>/dev/null || echo 2)"

mkdir -p "$out"

smoke_flag=""
if [ "${SYM_BENCH_SMOKE:-0}" = "1" ]; then
  smoke_flag="--smoke"
fi

echo "== overhead_study =="
# Exits non-zero if the FULL stage exceeds the 1.5x acceptance bound.
"$build/bench/overhead_study" $smoke_flag --out "$out/BENCH_overhead.json"

echo "== scaling_study =="
# Weak-scaling sweep of the sharded engine (lanes x workers). Fails on a
# determinism violation; the parallel-efficiency target is evaluated only
# when the host has >= 4 cpus (recorded as host_cpus in the JSON).
"$build/bench/scaling_study" $smoke_flag --out "$out/BENCH_scaling.json"

echo "== micro_benchmarks =="
"$build/bench/micro_benchmarks" \
  --benchmark_out="$out/BENCH_micro.json" \
  --benchmark_out_format=json \
  ${smoke_flag:+--benchmark_min_time=0.01}

echo
echo "results in $out:"
ls -l "$out"/BENCH_*.json
