// margolite/instance.hpp
//
// margolite: the Margo-model layer that unifies the RPC library (merclite)
// with the tasking runtime (argolite) and hosts the SYMBIOSYS measurement
// system (§IV of the paper):
//
//  * one provider-aware RPC dispatch layer (providers are instantiations of
//    a microservice API, addressed by provider id within a process),
//  * a progress ULT driving merclite progress()/trigger() — on a dedicated
//    ES on servers, and either shared with the application ES or dedicated
//    on clients (configuration C7),
//  * breadcrumb callpath propagation through ULT-local keys,
//  * the t1..t14 instrumentation points of Fig. 2 / Table III,
//  * distributed trace event generation with Lamport clocks and sampled
//    PVAR / tasking / OS metrics,
//  * a periodic system-statistics sampler.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "argolite/runtime.hpp"
#include "argolite/sync.hpp"
#include "merclite/core.hpp"
#include "simkit/cluster.hpp"
#include "sofi/fabric.hpp"
#include "symbiosys/breadcrumb.hpp"
#include "symbiosys/records.hpp"

namespace sym::margo {

struct InstanceConfig {
  /// Server instances get a dedicated progress ES plus `handler_es` ESs for
  /// request-handling ULTs. Client instances get one application ES.
  bool server = false;
  /// Table IV "Threads (ESs)": handler execution streams on a server.
  unsigned handler_es = 4;
  /// Table IV "Client Progress Thread?": give the client's progress ULT its
  /// own ES instead of competing with application ULTs (configuration C7).
  bool dedicated_progress_es = false;
  /// RPC library configuration (eager limit, OFI_max_events, cost model).
  hg::ClassConfig hg{};
  /// SYMBIOSYS instrumentation level (overhead-study stages).
  prof::Level instr = prof::Level::kFull;
  /// Progress-loop idle wait.
  sim::DurationNs progress_timeout = sim::usec(100);
  /// Period of the system-statistics sampler (0 disables it).
  sim::DurationNs sysstat_period = sim::msec(10);
  /// Bounded-memory flight-recorder mode: cap the trace buffer at this many
  /// 1024-event chunks, evicting the oldest events (0 = unbounded).
  std::size_t trace_ring_chunks = 0;
  /// Same bound for the system-statistics buffer, in 512-sample chunks.
  std::size_t sysstat_ring_chunks = 0;
};

class Instance;

/// An in-flight RPC issued with Instance::forward_async().
class PendingOp {
 public:
  /// Block the calling ULT until the response is available, record the
  /// origin-side measurements, charge output deserialization, and return
  /// the response body.
  const std::vector<std::byte>& wait();

  /// wait(), then transparently re-issue the RPC after an exponentially
  /// growing backoff while the target keeps early-rejecting it with
  /// kFlagBusy (admission control). Adopts the final attempt's response:
  /// afterwards busy() reports whether the last attempt was still
  /// rejected. Each retry is a fresh forward, so retries show up as
  /// additional origin spans in the trace.
  const std::vector<std::byte>& wait_retry(
      unsigned max_attempts = 8,
      sim::DurationNs initial_backoff = sim::usec(50));

  /// Forwards issued by the last wait_retry() (1 = accepted first time).
  [[nodiscard]] unsigned attempts() const noexcept { return attempts_; }

  [[nodiscard]] bool completed() const noexcept { return done_.is_set(); }
  /// True when the operation's deadline expired before the response.
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

  /// True when the target early-rejected the request under admission
  /// control (backpressure). The caller should back off and retry —
  /// Instance::forward_retry implements that loop.
  [[nodiscard]] bool busy() const noexcept {
    return (handle_->header.flags & hg::kFlagBusy) != 0;
  }

  /// True when the target reported a library-level error (e.g. no provider
  /// registered the RPC) — HG_NO_MATCH semantics.
  [[nodiscard]] bool failed() const noexcept {
    return (handle_->header.flags & hg::kFlagError) != 0;
  }
  [[nodiscard]] const hg::HandlePtr& handle() const noexcept {
    return handle_;
  }

 private:
  friend class Instance;
  Instance* inst_ = nullptr;
  hg::HandlePtr handle_;
  abt::Eventual done_;
  sim::TimeNs t1 = 0;
  sim::TimeNs t14 = 0;
  prof::Breadcrumb bc = 0;
  std::uint64_t request_id = 0;
  std::uint32_t base_order = 0;
  unsigned attempts_ = 1;
  bool recorded_ = false;
  bool timed_out_ = false;
  sim::Engine::EventId deadline_event_ = 0;
};

using PendingOpPtr = std::shared_ptr<PendingOp>;

/// The target-side view of one RPC, passed to registered handlers. Handlers
/// run in their own ULT in the handler pool.
class Request {
 public:
  Request(Instance& inst, hg::HandlePtr h) : inst_(inst), h_(std::move(h)) {}

  [[nodiscard]] const std::vector<std::byte>& body() const noexcept {
    return h_->body;
  }
  [[nodiscard]] hg::BufReader reader() const {
    return hg::BufReader(h_->body);
  }
  [[nodiscard]] const hg::HandlePtr& handle() const noexcept { return h_; }
  [[nodiscard]] Instance& instance() noexcept { return inst_; }
  [[nodiscard]] ofi::EpAddr origin_addr() const noexcept {
    return h_->peer_addr();
  }

  /// Send the response (t8/t9/t10); at most once per request.
  void respond(std::vector<std::byte> output);

  /// Encode-and-respond convenience.
  template <typename T>
  void respond_value(const T& value) {
    respond(hg::encode(value));
  }

  /// Pull `bytes` of bulk data from the origin; blocks the handler ULT
  /// until the transfer completes (BAKE writes, sdskv_put_packed payloads).
  void bulk_pull(std::uint64_t bytes);

  [[nodiscard]] bool responded() const noexcept { return responded_; }
  [[nodiscard]] sim::TimeNs t8() const noexcept { return t8_; }

 private:
  friend class Instance;
  Instance& inst_;
  hg::HandlePtr h_;
  sim::TimeNs t5_ = 0;
  sim::TimeNs t8_ = 0;
  bool responded_ = false;
};

/// Handler signature for provider RPCs.
using Handler = std::function<void(Request&)>;

class Instance {
 public:
  Instance(ofi::Fabric& fabric, sim::Process& process, InstanceConfig config);
  ~Instance();
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  /// Spawn the progress ULT (and the system sampler). Call once, before
  /// engine.run().
  void start();

  /// Request shutdown of the progress loop. Idempotent; safe from events or
  /// ULTs. The loop exits within one progress timeout.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalize_requested_; }

  // --- registration ---------------------------------------------------------

  /// Register a provider RPC handler (server side).
  hg::RpcId register_rpc(const std::string& name, std::uint16_t provider_id,
                         Handler handler);

  /// Register an RPC name on a client (needed for breadcrumb hashing).
  hg::RpcId register_client_rpc(const std::string& name);

  // --- RPC invocation (must run inside a ULT) -------------------------------

  /// `timeout` > 0 arms a deadline: if no response arrived in time the
  /// operation completes with PendingOp::timed_out() set (margo_forward_
  /// timed semantics). A late response is absorbed silently.
  PendingOpPtr forward_async(ofi::EpAddr dest, std::uint16_t provider_id,
                             hg::RpcId rpc, std::vector<std::byte> input,
                             std::shared_ptr<const void> attachment = nullptr,
                             std::uint64_t attachment_bytes = 0,
                             sim::DurationNs timeout = 0);

  /// Synchronous forward: forward_async() + wait(). Busy early-rejects are
  /// retried via forward_retry() with the default backoff schedule, so
  /// callers transparently cooperate with target-side admission control.
  std::vector<std::byte> forward(ofi::EpAddr dest, std::uint16_t provider_id,
                                 hg::RpcId rpc, std::vector<std::byte> input);

  /// Outcome of a forward_retry() loop.
  struct RetryResult {
    std::vector<std::byte> response;  ///< valid when !busy
    unsigned attempts = 0;            ///< total forwards issued
    bool busy = false;  ///< still rejected after max_attempts
  };

  /// Synchronous forward with the admission-control retry/backoff protocol:
  /// a kFlagBusy early-reject is retried after an exponentially growing
  /// backoff (initial_backoff, doubling per attempt), up to max_attempts.
  RetryResult forward_retry(ofi::EpAddr dest, std::uint16_t provider_id,
                            hg::RpcId rpc, std::vector<std::byte> input,
                            unsigned max_attempts = 8,
                            sim::DurationNs initial_backoff = sim::usec(50));

  /// Spawn an application ULT on the main (client) pool.
  void spawn(std::function<void()> fn);

  // --- accessors -------------------------------------------------------------

  [[nodiscard]] ofi::EpAddr addr() const noexcept { return hg_->addr(); }
  [[nodiscard]] hg::Class& hg_class() noexcept { return *hg_; }
  [[nodiscard]] abt::Runtime& runtime() noexcept { return *runtime_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return fabric_.engine(); }
  [[nodiscard]] sim::Process& process() noexcept { return process_; }
  [[nodiscard]] const InstanceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] prof::Level level() const noexcept { return cfg_.instr; }

  /// The consolidated per-process callpath profile. Recording goes to
  /// per-execution-stream shards (handler ULTs on different ESs never
  /// contend); this accessor merges any shard contents into the
  /// consolidated store first, so readers always see the full profile.
  [[nodiscard]] prof::ProfileStore& profile() {
    if (!profile_shards_.all_empty()) {
      profile_shards_.consolidate_into(profile_);
    }
    return profile_;
  }
  [[nodiscard]] prof::TraceStore& trace() noexcept { return trace_; }
  [[nodiscard]] prof::SysStatStore& sysstats() noexcept { return sysstats_; }

  [[nodiscard]] abt::Pool& main_pool() noexcept { return *main_pool_; }
  [[nodiscard]] abt::Pool& handler_pool() noexcept { return *handler_pool_; }
  /// Pool that hosts the progress ULT (and monitoring ULTs): dedicated on
  /// servers, shared with the application pool on plain clients.
  [[nodiscard]] abt::Pool& progress_pool() noexcept { return *progress_pool_; }

  /// Lamport clock, bumped on every instrumented event (§IV-A2).
  std::uint64_t bump_lamport() noexcept { return ++lamport_; }
  void lamport_receive(std::uint64_t remote) noexcept {
    lamport_ = (remote > lamport_ ? remote : lamport_) + 1;
  }
  [[nodiscard]] std::uint64_t lamport() const noexcept { return lamport_; }

  /// Node-local wall clock (global virtual time + this node's skew).
  [[nodiscard]] sim::TimeNs local_clock() const noexcept {
    return node_.local_clock(fabric_.engine().now());
  }

  /// Number of requests fully handled by this instance (diagnostics).
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return requests_handled_;
  }

  /// Dynamically add one execution stream to the handler pool (the
  /// controller's scale-up action). A previously parked ES is re-enabled
  /// before a new one is created. Returns the new active handler ES count.
  unsigned add_handler_xstream();

  /// Park one handler execution stream (the controller's scale-down
  /// action). The ES finishes its current ULT, then stops pulling work; at
  /// least one handler ES always stays active. Returns the new active
  /// handler ES count.
  unsigned remove_handler_xstream();

  [[nodiscard]] unsigned handler_es_count() const noexcept {
    return handler_es_count_;
  }
  [[nodiscard]] unsigned total_es_count() const noexcept { return total_es_; }

  // --- admission control (backpressure) --------------------------------------

  /// Bound the handler pool's ready queue: requests arriving while the
  /// backlog is >= `limit` are early-rejected with kFlagBusy instead of
  /// spawning a handler ULT (0 disables). The controller's
  /// admission_watermark rule toggles this around its high/low watermarks.
  void set_admission_limit(std::size_t limit) noexcept;
  [[nodiscard]] std::size_t admission_limit() const noexcept {
    return admission_limit_;
  }
  /// Requests early-rejected under admission control so far.
  [[nodiscard]] std::uint64_t admission_rejects() const noexcept {
    return admission_rejects_;
  }

  /// Record one adaptation action as a self-contained SYMBIOSYS span (see
  /// prof::make_action_span): `action_name` must be NameRegistry-registered
  /// by the caller or via this call; `started` is the detection timestamp.
  /// No-op below Stage 2 (tracing disabled).
  void record_action_span(const std::string& action_name, sim::TimeNs started);

  // Virtual-time cost of instrumentation actions; used by the overhead
  // study (Fig. 13) and charged only at the corresponding levels.
  static constexpr sim::DurationNs kMetadataCost = sim::nsec(20);
  static constexpr sim::DurationNs kTraceEventCost = sim::nsec(50);
  static constexpr sim::DurationNs kProfileRecordCost = sim::nsec(30);
  static constexpr sim::DurationNs kPvarSampleCost = sim::nsec(10);

 private:
  friend class PendingOp;
  friend class Request;

  void progress_loop();
  void sampler_loop();
  void on_request_arrival(hg::HandlePtr h);
  void run_handler(hg::HandlePtr h, const Handler& handler, sim::TimeNs t4);
  void complete_op(PendingOp& op);

  /// Hot-path profile recording: write into the shard of the execution
  /// stream this ULT runs on, so concurrent handler ULTs touch disjoint
  /// stores. Event-context callers (no ES) fall back to shard 0.
  void record_profile(const prof::CallpathKey& key, prof::Interval iv,
                      double ns) {
    const abt::Xstream* xs = abt::Xstream::current();
    profile_shards_.shard(xs != nullptr ? xs->rank() : 0).record(key, iv, ns);
  }
  /// Batched variant: one shard/key resolution for a completion callback
  /// that records several intervals on the same callpath back to back.
  template <typename... Samples>
  void record_profile_batch(const prof::CallpathKey& key,
                            Samples... samples) {
    const abt::Xstream* xs = abt::Xstream::current();
    profile_shards_.shard(xs != nullptr ? xs->rank() : 0)
        .record_batch(key, samples...);
  }
  void emit_trace(prof::TraceEventKind kind, std::uint64_t request_id,
                  std::uint32_t order, prof::Breadcrumb bc, ofi::EpAddr peer);
  void charge(sim::DurationNs d);
  std::uint64_t make_request_id() noexcept;

  // ULT-local key ids shared by all instances.
  static abt::KeyId key_breadcrumb();
  static abt::KeyId key_request_id();
  static abt::KeyId key_order();

  ofi::Fabric& fabric_;
  sim::Process& process_;
  sim::Node& node_;
  InstanceConfig cfg_;
  std::unique_ptr<abt::Runtime> runtime_;
  std::unique_ptr<hg::Class> hg_;

  abt::Pool* main_pool_ = nullptr;      // client app ULTs (+ progress if shared)
  abt::Pool* handler_pool_ = nullptr;   // server handler ULTs
  abt::Pool* progress_pool_ = nullptr;  // progress ULT's pool

  std::unordered_map<hg::RpcId,
                     std::unordered_map<std::uint16_t, Handler>>
      handlers_;
  std::unordered_map<hg::RpcId, std::uint16_t> rpc_hash16_;

  hg::PvarSession pvar_session_;
  hg::PvarHandle pv_cq_size_{};
  hg::PvarHandle pv_ofi_read_{};
  hg::PvarHandle pv_posted_{};
  hg::PvarHandle pv_input_ser_{};
  hg::PvarHandle pv_input_deser_{};
  hg::PvarHandle pv_output_ser_{};
  hg::PvarHandle pv_internal_rdma_{};
  hg::PvarHandle pv_origin_cb_{};
  hg::PvarHandle pv_output_deser_{};

  prof::ShardedProfileStore profile_shards_;  ///< hot-path recording
  prof::ProfileStore profile_;                ///< consolidated view
  prof::TraceStore trace_;
  prof::SysStatStore sysstats_;

  std::vector<abt::Xstream*> handler_xs_;  // created handler ESs (may be parked)

  std::uint64_t lamport_ = 0;
  std::uint64_t req_counter_ = 0;
  std::uint64_t requests_handled_ = 0;
  std::size_t admission_limit_ = 0;
  std::uint64_t admission_rejects_ = 0;
  bool started_ = false;
  bool finalize_requested_ = false;
  sim::TimeNs last_cpu_checkpoint_ = 0;
  unsigned total_es_ = 1;
  unsigned handler_es_count_ = 0;
};

}  // namespace sym::margo
