#include "margolite/policy.hpp"

#include <memory>

namespace sym::margo {

void PolicyEngine::start() {
  if (started_) return;
  started_ = true;
  // Monitor from the progress pool so sampling continues while the
  // handler pool is saturated (the very condition the rules detect).
  mid_.runtime().create_ult(mid_.progress_pool(), [this] { monitor_loop(); });
}

PolicySample PolicyEngine::take_sample() {
  // Sample through the PVAR tool interface exactly as an external tool
  // would (session init -> handle alloc -> read).
  auto session = mid_.hg_class().pvar_session_init();
  const auto pv_read = session.alloc("num_ofi_events_read");
  const auto pv_cq = session.alloc("completion_queue_size");
  const auto pv_posted = session.alloc("num_posted_handles");

  PolicySample s;
  s.now = mid_.engine().now();
  s.num_ofi_events_read = session.read(pv_read);
  s.completion_queue_size = session.read(pv_cq);
  s.num_posted_handles = session.read(pv_posted);
  s.ofi_max_events = mid_.hg_class().config().max_events;
  s.blocked_ults = mid_.runtime().total_blocked();
  s.runnable_ults = mid_.runtime().total_runnable();
  s.rss_bytes = mid_.process().rss_bytes();
  s.handler_es_count = mid_.handler_es_count();
  return s;
}

void PolicyEngine::monitor_loop() {
  while (!stopped_ && !mid_.finalized()) {
    abt::sleep_for(period_);
    if (stopped_ || mid_.finalized()) break;
    const PolicySample sample = take_sample();
    ++samples_;
    for (auto& [name, rule] : rules_) {
      if (auto fired = rule(mid_, sample)) {
        actions_.push_back(PolicyAction{
            sample.now, name + ": " + *fired});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Built-in rules
// ---------------------------------------------------------------------------

PolicyRule PolicyEngine::adaptive_max_events(unsigned consecutive,
                                             std::size_t cap) {
  auto streak = std::make_shared<unsigned>(0);
  return [streak, consecutive, cap](
             Instance& mid,
             const PolicySample& s) -> std::optional<std::string> {
    const bool pinned =
        s.ofi_max_events > 0 &&
        s.num_ofi_events_read >= static_cast<double>(s.ofi_max_events);
    if (!pinned) {
      *streak = 0;
      return std::nullopt;
    }
    if (++*streak < consecutive) return std::nullopt;
    *streak = 0;
    if (s.ofi_max_events >= cap) return std::nullopt;
    const std::size_t next = std::min(cap, s.ofi_max_events * 2);
    mid.hg_class().set_max_events(next);
    return "OFI completion queue backed up (reads pinned at " +
           std::to_string(s.ofi_max_events) + "); raising OFI_max_events to " +
           std::to_string(next);
  };
}

PolicyRule PolicyEngine::handler_autoscale(double backlog_per_es,
                                           unsigned consecutive,
                                           unsigned max_es) {
  auto streak = std::make_shared<unsigned>(0);
  return [streak, backlog_per_es, consecutive, max_es](
             Instance& mid,
             const PolicySample& s) -> std::optional<std::string> {
    const double per_es =
        s.handler_es_count == 0
            ? 0.0
            : static_cast<double>(s.runnable_ults) / s.handler_es_count;
    if (per_es < backlog_per_es) {
      *streak = 0;
      return std::nullopt;
    }
    if (++*streak < consecutive) return std::nullopt;
    *streak = 0;
    if (s.handler_es_count >= max_es) return std::nullopt;
    const unsigned now_count = mid.add_handler_xstream();
    return "handler pool starved (" + std::to_string(s.runnable_ults) +
           " runnable ULTs on " + std::to_string(s.handler_es_count) +
           " ESs); scaling to " + std::to_string(now_count) + " ESs";
  };
}

PolicyRule PolicyEngine::rss_watermark(std::uint64_t limit_bytes) {
  auto above = std::make_shared<bool>(false);
  return [above, limit_bytes](
             Instance&, const PolicySample& s) -> std::optional<std::string> {
    const bool now_above = s.rss_bytes > limit_bytes;
    if (now_above && !*above) {
      *above = true;
      return "process RSS " + std::to_string(s.rss_bytes >> 20) +
             " MiB crossed the " + std::to_string(limit_bytes >> 20) +
             " MiB watermark";
    }
    if (!now_above) *above = false;
    return std::nullopt;
  };
}

}  // namespace sym::margo
