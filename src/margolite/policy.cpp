#include "margolite/policy.hpp"

#include <algorithm>
#include <memory>

namespace sym::margo {

void PolicyEngine::start() {
  if (started_) return;
  started_ = true;
  // Monitor from the progress pool so sampling continues while the
  // handler pool is saturated (the very condition the rules detect).
  mid_.runtime().create_ult(mid_.progress_pool(), [this] { monitor_loop(); });
}

PolicySample PolicyEngine::take_sample() {
  // Sample through the PVAR tool interface exactly as an external tool
  // would (session init -> handle alloc -> read).
  auto session = mid_.hg_class().pvar_session_init();
  const auto pv_read = session.alloc("num_ofi_events_read");
  const auto pv_cq = session.alloc("completion_queue_size");
  const auto pv_posted = session.alloc("num_posted_handles");
  const auto pv_eager = session.alloc("eager_buffer_size");
  const auto pv_overflow = session.alloc("eager_overflow_count");
  const auto pv_invoked = session.alloc("num_rpcs_invoked");
  const auto pv_handled = session.alloc("num_rpcs_handled");

  PolicySample s;
  s.now = mid_.engine().now();
  s.num_ofi_events_read = session.read(pv_read);
  s.completion_queue_size = session.read(pv_cq);
  s.num_posted_handles = session.read(pv_posted);
  s.eager_limit = session.read(pv_eager);
  s.eager_overflows = session.read(pv_overflow);
  s.rpcs_invoked = session.read(pv_invoked);
  s.rpcs_handled = session.read(pv_handled);
  s.ofi_max_events = mid_.hg_class().config().max_events;
  s.blocked_ults = mid_.runtime().total_blocked();
  s.runnable_ults = mid_.runtime().total_runnable();
  s.handler_ready = mid_.handler_pool().ready_count();
  s.handler_running = mid_.handler_pool().running_count();
  s.rss_bytes = mid_.process().rss_bytes();
  s.handler_es_count = mid_.handler_es_count();
  s.admission_limit = mid_.admission_limit();
  s.admission_rejects = mid_.admission_rejects();
  return s;
}

void PolicyEngine::monitor_loop() {
  while (!stopped_ && !mid_.finalized()) {
    abt::sleep_for(period_);
    if (stopped_ || mid_.finalized()) break;
    const PolicySample sample = take_sample();
    ++samples_;
    for (auto& [name, rule] : rules_) {
      if (auto fired = rule(mid_, sample)) {
        actions_.push_back(PolicyAction{sample.now, name, *fired});
        // Make the adaptation itself observable: one action span per
        // applied action, stitched into the trace like any RPC span.
        mid_.record_action_span("policy:" + name, sample.now);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Built-in rules
// ---------------------------------------------------------------------------

PolicyRule PolicyEngine::adaptive_max_events(unsigned consecutive,
                                             std::size_t cap) {
  auto streak = std::make_shared<unsigned>(0);
  return [streak, consecutive, cap](
             Instance& mid,
             const PolicySample& s) -> std::optional<std::string> {
    const bool pinned =
        s.ofi_max_events > 0 &&
        s.num_ofi_events_read >= static_cast<double>(s.ofi_max_events);
    if (!pinned) {
      *streak = 0;
      return std::nullopt;
    }
    if (++*streak < consecutive) return std::nullopt;
    *streak = 0;
    if (s.ofi_max_events >= cap) return std::nullopt;
    const std::size_t next = std::min(cap, s.ofi_max_events * 2);
    mid.hg_class().set_max_events(next);
    return "OFI completion queue backed up (reads pinned at " +
           std::to_string(s.ofi_max_events) + "); raising OFI_max_events to " +
           std::to_string(next);
  };
}

PolicyRule PolicyEngine::handler_autoscale(double backlog_per_es,
                                           unsigned consecutive,
                                           unsigned max_es) {
  auto streak = std::make_shared<unsigned>(0);
  return [streak, backlog_per_es, consecutive, max_es](
             Instance& mid,
             const PolicySample& s) -> std::optional<std::string> {
    const double per_es =
        s.handler_es_count == 0
            ? 0.0
            : static_cast<double>(s.runnable_ults) / s.handler_es_count;
    if (per_es < backlog_per_es) {
      *streak = 0;
      return std::nullopt;
    }
    if (++*streak < consecutive) return std::nullopt;
    *streak = 0;
    if (s.handler_es_count >= max_es) return std::nullopt;
    const unsigned now_count = mid.add_handler_xstream();
    return "handler pool starved (" + std::to_string(s.runnable_ults) +
           " runnable ULTs on " + std::to_string(s.handler_es_count) +
           " ESs); scaling to " + std::to_string(now_count) + " ESs";
  };
}

PolicyRule PolicyEngine::handler_downscale(unsigned consecutive,
                                           unsigned min_es) {
  auto streak = std::make_shared<unsigned>(0);
  return [streak, consecutive, min_es](
             Instance& mid,
             const PolicySample& s) -> std::optional<std::string> {
    // Idle: nothing queued and at least one ES with no ULT on it.
    const bool idle = s.handler_ready == 0 &&
                      s.handler_running < s.handler_es_count;
    if (!idle || s.handler_es_count <= min_es) {
      *streak = 0;
      return std::nullopt;
    }
    if (++*streak < consecutive) return std::nullopt;
    *streak = 0;
    const unsigned now_count = mid.remove_handler_xstream();
    return "handler pool idle (" + std::to_string(s.handler_running) +
           " running on " + std::to_string(s.handler_es_count) +
           " ESs); parking one, down to " + std::to_string(now_count) + " ESs";
  };
}

PolicyRule PolicyEngine::eager_threshold_autotune(double overflow_frac,
                                                  std::size_t cap) {
  struct State {
    double last_overflows = 0;
    double last_invoked = 0;
  };
  auto st = std::make_shared<State>();
  return [st, overflow_frac, cap](
             Instance& mid,
             const PolicySample& s) -> std::optional<std::string> {
    const double d_over = s.eager_overflows - st->last_overflows;
    const double d_invoked = s.rpcs_invoked - st->last_invoked;
    st->last_overflows = s.eager_overflows;
    st->last_invoked = s.rpcs_invoked;
    if (d_invoked <= 0 || d_over / d_invoked <= overflow_frac)
      return std::nullopt;
    const auto cur = static_cast<std::size_t>(s.eager_limit);
    if (cur >= cap) return std::nullopt;
    const std::size_t next = std::min(cap, std::max<std::size_t>(1, cur) * 2);
    // Retune through the writable PVAR — the same control channel an
    // external tool would use — rather than poking the config directly.
    auto session = mid.hg_class().pvar_session_init();
    const auto pv = session.alloc("eager_buffer_size");
    session.write(pv, static_cast<double>(next));
    return std::to_string(static_cast<std::uint64_t>(d_over)) + "/" +
           std::to_string(static_cast<std::uint64_t>(d_invoked)) +
           " RPCs overflowed the eager buffer; raising eager_buffer_size " +
           std::to_string(cur) + " -> " + std::to_string(next);
  };
}

PolicyRule PolicyEngine::admission_watermark(std::size_t high,
                                             std::size_t low) {
  auto engaged = std::make_shared<bool>(false);
  return [engaged, high, low](
             Instance& mid,
             const PolicySample& s) -> std::optional<std::string> {
    if (!*engaged && s.handler_ready >= high) {
      *engaged = true;
      mid.set_admission_limit(high);
      return "handler backlog " + std::to_string(s.handler_ready) +
             " crossed high watermark " + std::to_string(high) +
             "; engaging admission control (bound=" + std::to_string(high) +
             ")";
    }
    if (*engaged && s.handler_ready <= low) {
      *engaged = false;
      mid.set_admission_limit(0);
      return "handler backlog " + std::to_string(s.handler_ready) +
             " drained below low watermark " + std::to_string(low) +
             "; lifting admission control after " +
             std::to_string(s.admission_rejects) + " early-rejects";
    }
    return std::nullopt;
  };
}

PolicyRule PolicyEngine::rss_watermark(std::uint64_t limit_bytes) {
  auto above = std::make_shared<bool>(false);
  return [above, limit_bytes](
             Instance&, const PolicySample& s) -> std::optional<std::string> {
    const bool now_above = s.rss_bytes > limit_bytes;
    if (now_above && !*above) {
      *above = true;
      return "process RSS " + std::to_string(s.rss_bytes >> 20) +
             " MiB crossed the " + std::to_string(limit_bytes >> 20) +
             " MiB watermark";
    }
    if (!now_above) *above = false;
    return std::nullopt;
  };
}

}  // namespace sym::margo
