#include "margolite/instance.hpp"

#include <cassert>
#include <utility>

namespace sym::margo {

// ---------------------------------------------------------------------------
// ULT-local keys
// ---------------------------------------------------------------------------

abt::KeyId Instance::key_breadcrumb() {
  static const abt::KeyId k = abt::Runtime::key_create();
  return k;
}
abt::KeyId Instance::key_request_id() {
  static const abt::KeyId k = abt::Runtime::key_create();
  return k;
}
abt::KeyId Instance::key_order() {
  static const abt::KeyId k = abt::Runtime::key_create();
  return k;
}

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

Instance::Instance(ofi::Fabric& fabric, sim::Process& process,
                   InstanceConfig config)
    : fabric_(fabric),
      process_(process),
      node_(fabric.cluster().node(process.node())),
      cfg_(config),
      runtime_(std::make_unique<abt::Runtime>(fabric.engine(), process)),
      hg_(std::make_unique<hg::Class>(fabric, process, config.hg)),
      pvar_session_(hg_->pvar_session_init()) {
  // Pool / ES layout. Servers always dedicate a progress ES (the paper's
  // "main service provider execution stream"); clients share by default.
  if (cfg_.server) {
    progress_pool_ = &runtime_->create_pool("progress");
    handler_pool_ = &runtime_->create_pool("handlers");
    main_pool_ = handler_pool_;
    runtime_->create_xstream({progress_pool_});
    for (unsigned i = 0; i < cfg_.handler_es; ++i) {
      handler_xs_.push_back(&runtime_->create_xstream({handler_pool_}));
    }
    total_es_ = 1 + cfg_.handler_es;
    handler_es_count_ = cfg_.handler_es;
  } else {
    main_pool_ = &runtime_->create_pool("main");
    handler_pool_ = main_pool_;
    if (cfg_.dedicated_progress_es) {
      progress_pool_ = &runtime_->create_pool("progress");
      runtime_->create_xstream({progress_pool_});
      runtime_->create_xstream({main_pool_});
      total_es_ = 2;
    } else {
      progress_pool_ = main_pool_;
      runtime_->create_xstream({main_pool_});
      total_es_ = 1;
    }
  }

  // Margo initializes its PVAR session with Mercury inside its init routine
  // and allocates all the handles it will sample (paper §IV-C, Fig. 3).
  pv_cq_size_ = pvar_session_.alloc("completion_queue_size");
  pv_ofi_read_ = pvar_session_.alloc("num_ofi_events_read");
  pv_posted_ = pvar_session_.alloc("num_posted_handles");
  pv_input_ser_ = pvar_session_.alloc("input_serialization_time");
  pv_input_deser_ = pvar_session_.alloc("input_deserialization_time");
  pv_output_ser_ = pvar_session_.alloc("output_serialization_time");
  pv_internal_rdma_ = pvar_session_.alloc("internal_rdma_transfer_time");
  pv_origin_cb_ = pvar_session_.alloc("origin_completion_callback_time");
  pv_output_deser_ = pvar_session_.alloc("output_deserialization_time");

  // Bounded-memory flight-recorder mode, when configured.
  trace_.set_ring_chunks(cfg_.trace_ring_chunks);
  sysstats_.set_ring_chunks(cfg_.sysstat_ring_chunks);
}

Instance::~Instance() = default;

void Instance::start() {
  assert(!started_);
  started_ = true;
  process_.checkpoint_cpu(engine().now());
  runtime_->create_ult(*progress_pool_, [this] { progress_loop(); });
  if (cfg_.instr >= prof::Level::kStage2 && cfg_.sysstat_period > 0) {
    runtime_->create_ult(*progress_pool_, [this] { sampler_loop(); });
  }
}

void Instance::finalize() { finalize_requested_ = true; }

unsigned Instance::add_handler_xstream() {
  // Prefer unparking an ES over creating one: scale-down followed by
  // scale-up must not grow the ES population without bound.
  for (abt::Xstream* xs : handler_xs_) {
    if (!xs->enabled()) {
      xs->set_enabled(true);
      ++total_es_;
      return ++handler_es_count_;
    }
  }
  handler_xs_.push_back(&runtime_->create_xstream({handler_pool_}));
  ++total_es_;
  return ++handler_es_count_;
}

unsigned Instance::remove_handler_xstream() {
  if (handler_es_count_ <= 1) return handler_es_count_;
  // Park the highest-ranked still-enabled handler ES.
  for (auto it = handler_xs_.rbegin(); it != handler_xs_.rend(); ++it) {
    if ((*it)->enabled()) {
      (*it)->set_enabled(false);
      --total_es_;
      return --handler_es_count_;
    }
  }
  return handler_es_count_;
}

void Instance::set_admission_limit(std::size_t limit) noexcept {
  admission_limit_ = limit;
  if (handler_pool_ != nullptr) handler_pool_->set_capacity(limit);
}

void Instance::record_action_span(const std::string& action_name,
                                  sim::TimeNs started) {
  if (cfg_.instr < prof::Level::kStage2) return;
  prof::NameRegistry::global().register_name(action_name);
  const prof::Breadcrumb bc = prof::hash16(action_name);
  const auto events = prof::make_action_span(
      make_request_id(), bc, addr(), node_.local_clock(started), local_clock(),
      lamport_);
  lamport_ += 4;  // the four events bumped the clock
  for (const auto& ev : events) trace_.append(ev);
  charge(4 * kTraceEventCost);
}

void Instance::charge(sim::DurationNs d) {
  if (abt::self() != nullptr) abt::compute(d);
}

std::uint64_t Instance::make_request_id() noexcept {
  return (static_cast<std::uint64_t>(addr()) << 40) | ++req_counter_;
}

// ---------------------------------------------------------------------------
// Progress and sampling loops
// ---------------------------------------------------------------------------

void Instance::progress_loop() {
  while (!finalize_requested_) {
    const std::size_t n = hg_->progress();
    hg_->trigger();
    if (finalize_requested_) break;
    if (n == 0 && !hg_->has_pending_work()) {
      hg_->wait_for_events(cfg_.progress_timeout);
    } else {
      // Cooperative share of the ES with application / handler ULTs: this
      // is precisely the contention studied in HEPnOS C5 -> C7.
      abt::yield();
    }
  }
}

void Instance::sampler_loop() {
  while (!finalize_requested_) {
    abt::sleep_for(cfg_.sysstat_period);
    if (finalize_requested_) break;
    prof::SysStat s;
    s.local_ts = local_clock();
    s.rss_bytes = process_.rss_bytes();
    s.cpu_util = static_cast<float>(process_.cpu_utilization(
        last_cpu_checkpoint_, engine().now(), total_es_));
    s.blocked_ults = static_cast<std::uint32_t>(runtime_->total_blocked());
    s.runnable_ults = static_cast<std::uint32_t>(runtime_->total_runnable());
    if (cfg_.instr == prof::Level::kFull) {
      s.completion_queue_size =
          static_cast<float>(pvar_session_.read(pv_cq_size_));
      s.num_posted_handles =
          static_cast<float>(pvar_session_.read(pv_posted_));
      charge(2 * kPvarSampleCost);
    }
    last_cpu_checkpoint_ = engine().now();
    process_.checkpoint_cpu(last_cpu_checkpoint_);
    sysstats_.append(s);
  }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

hg::RpcId Instance::register_rpc(const std::string& name,
                                 std::uint16_t provider_id, Handler handler) {
  const hg::RpcId id = register_client_rpc(name);
  auto& by_provider = handlers_[id];
  const bool first_provider = by_provider.empty();
  by_provider[provider_id] = std::move(handler);
  if (first_provider) {
    hg_->register_rpc(name, [this](hg::HandlePtr h) {
      on_request_arrival(std::move(h));
    });
  }
  return id;
}

hg::RpcId Instance::register_client_rpc(const std::string& name) {
  const hg::RpcId id = hg_->register_rpc(name, nullptr);
  rpc_hash16_[id] = prof::hash16(name);
  prof::NameRegistry::global().register_name(name);
  return id;
}

// ---------------------------------------------------------------------------
// Trace emission
// ---------------------------------------------------------------------------

void Instance::emit_trace(prof::TraceEventKind kind, std::uint64_t request_id,
                          std::uint32_t order, prof::Breadcrumb bc,
                          ofi::EpAddr peer) {
  if (cfg_.instr < prof::Level::kStage2) return;
  prof::TraceEvent ev;
  ev.request_id = request_id;
  ev.order = order;
  ev.kind = kind;
  ev.breadcrumb = bc;
  ev.self_ep = addr();
  ev.peer_ep = peer;
  ev.local_ts = local_clock();
  ev.lamport = bump_lamport();
  ev.blocked_ults = static_cast<std::uint32_t>(runtime_->total_blocked());
  ev.runnable_ults = static_cast<std::uint32_t>(runtime_->total_runnable());
  ev.rss_bytes = process_.rss_bytes();
  ev.cpu_util = static_cast<float>(process_.cpu_utilization(
      last_cpu_checkpoint_, engine().now(), total_es_));
  sim::DurationNs cost = kTraceEventCost;
  if (cfg_.instr == prof::Level::kFull) {
    ev.completion_queue_size =
        static_cast<float>(pvar_session_.read(pv_cq_size_));
    ev.num_ofi_events_read =
        static_cast<float>(pvar_session_.read(pv_ofi_read_));
    ev.num_posted_handles =
        static_cast<float>(pvar_session_.read(pv_posted_));
    cost += 3 * kPvarSampleCost;
  }
  charge(cost);
  trace_.append(ev);
}

// ---------------------------------------------------------------------------
// Origin path
// ---------------------------------------------------------------------------

PendingOpPtr Instance::forward_async(ofi::EpAddr dest,
                                     std::uint16_t provider_id, hg::RpcId rpc,
                                     std::vector<std::byte> input,
                                     std::shared_ptr<const void> attachment,
                                     std::uint64_t attachment_bytes,
                                     sim::DurationNs timeout) {
  assert(abt::self() != nullptr && "forward_async() outside ULT context");
  auto op = std::make_shared<PendingOp>();
  op->inst_ = this;
  op->t1 = engine().now();  // t1

  auto h = hg_->create_handle(dest, rpc, provider_id);
  h->attachment = std::move(attachment);
  h->attachment_bytes = attachment_bytes;

  if (cfg_.instr >= prof::Level::kStage1) {
    // Breadcrumb: extend this ULT's ancestry with the downstream call name
    // (16-bit left shift + OR, §IV-A1).
    auto hash_it = rpc_hash16_.find(rpc);
    const std::uint16_t leaf =
        hash_it != rpc_hash16_.end() ? hash_it->second : std::uint16_t{1};
    const prof::Breadcrumb parent = abt::self_get(key_breadcrumb());
    op->bc = prof::extend(parent, leaf);

    // Request id: reuse the propagated one if this call is a side effect of
    // servicing a request; mint a fresh one at the client edge.
    std::uint64_t rid = abt::self_get(key_request_id());
    if (rid == 0) rid = make_request_id();
    op->request_id = rid;
    op->base_order = static_cast<std::uint32_t>(abt::self_get(key_order()));
    // Reserve order slots for this call's four events so sibling calls from
    // the same ULT do not collide.
    abt::self_set(key_order(), op->base_order + 4);

    h->header.breadcrumb = op->bc;
    h->header.request_id = rid;
    h->header.trace_order = op->base_order + 1;
    h->header.flags |= hg::kFlagTracing;
    charge(kMetadataCost);
  }
  h->header.lamport = bump_lamport();

  emit_trace(prof::TraceEventKind::kOriginStart, op->request_id,
             op->base_order, op->bc, dest);

  if (timeout > 0) {
    op->deadline_event_ = engine().after(timeout, [op] {
      if (op->done_.is_set()) return;
      op->timed_out_ = true;
      op->t14 = op->inst_->engine().now();
      // Unpost the handle so a late response is discarded inside merclite
      // and the posted-handles PVAR does not linger (HG_Cancel).
      op->inst_->hg_class().cancel(op->handle_);
      op->done_.set();
    });
  }

  hg_->forward(h, std::move(input), [this, op](const hg::HandlePtr& done) {
    // Trigger context (progress ULT), t14. A response landing after the
    // deadline fired is absorbed: the waiter has already been released.
    if (op->done_.is_set()) return;
    if (op->deadline_event_ != 0) engine().cancel(op->deadline_event_);
    op->t14 = engine().now();
    lamport_receive(done->header.lamport);
    op->done_.set();
  });
  op->handle_ = std::move(h);
  return op;
}

void Instance::complete_op(PendingOp& op) {
  if (op.recorded_) return;
  op.recorded_ = true;
  const hg::HandlePtr& h = op.handle_;
  if (op.timed_out_) return;  // no response: nothing to decode or record

  // Decode cost for the response output (content decoding is the caller's).
  hg_->charge_output_deserialize(h);

  if (cfg_.instr < prof::Level::kStage2) return;

  emit_trace(prof::TraceEventKind::kOriginEnd, op.request_id,
             op.base_order + 3, op.bc, h->peer_addr());

  prof::CallpathKey key{op.bc, prof::Side::kOrigin, addr(), h->peer_addr()};
  sim::DurationNs cost = kProfileRecordCost;
  if (cfg_.instr == prof::Level::kFull) {
    // Origin-side HANDLE-bound PVARs, sampled at t14 (Table III) and
    // recorded in one batch with the execution envelope.
    record_profile_batch(
        key,
        prof::IntervalSample{prof::Interval::kOriginExec,
                             static_cast<double>(op.t14 - op.t1)},
        prof::IntervalSample{prof::Interval::kInputSer,
                             pvar_session_.read(pv_input_ser_, h.get())},
        prof::IntervalSample{prof::Interval::kOriginCallback,
                             pvar_session_.read(pv_origin_cb_, h.get())},
        prof::IntervalSample{prof::Interval::kOutputDeser,
                             pvar_session_.read(pv_output_deser_, h.get())});
    cost += 3 * kPvarSampleCost;
  } else {
    record_profile(key, prof::Interval::kOriginExec,
                   static_cast<double>(op.t14 - op.t1));
  }
  charge(cost);
}

const std::vector<std::byte>& PendingOp::wait() {
  done_.wait();
  inst_->complete_op(*this);
  return handle_->response_body;
}

const std::vector<std::byte>& PendingOp::wait_retry(
    unsigned max_attempts, sim::DurationNs initial_backoff) {
  wait();
  attempts_ = 1;
  sim::DurationNs backoff = initial_backoff;
  while (busy() && !timed_out_ && attempts_ < max_attempts) {
    abt::sleep_for(backoff);
    backoff *= 2;
    ++attempts_;
    // The origin handle still holds the request input and attachment, so
    // the op can be re-issued verbatim; adopt the retry's handle so the
    // caller sees the final attempt's response and flags.
    auto retry = inst_->forward_async(
        handle_->peer_addr(), handle_->header.provider_id,
        handle_->header.rpc_id, handle_->body, handle_->attachment,
        handle_->attachment_bytes);
    retry->wait();
    handle_ = retry->handle_;
  }
  return handle_->response_body;
}

std::vector<std::byte> Instance::forward(ofi::EpAddr dest,
                                         std::uint16_t provider_id,
                                         hg::RpcId rpc,
                                         std::vector<std::byte> input) {
  // Cooperates with target-side admission control: a kFlagBusy
  // early-reject is retried with exponential backoff before giving up, so
  // every service client participates in the backpressure protocol without
  // changes.
  return forward_retry(dest, provider_id, rpc, std::move(input)).response;
}

Instance::RetryResult Instance::forward_retry(ofi::EpAddr dest,
                                              std::uint16_t provider_id,
                                              hg::RpcId rpc,
                                              std::vector<std::byte> input,
                                              unsigned max_attempts,
                                              sim::DurationNs initial_backoff) {
  RetryResult result;
  auto op = forward_async(dest, provider_id, rpc, std::move(input));
  result.response = op->wait_retry(max_attempts, initial_backoff);
  result.attempts = op->attempts();
  result.busy = op->busy();
  return result;
}

void Instance::spawn(std::function<void()> fn) {
  runtime_->create_ult(*main_pool_, std::move(fn));
}

// ---------------------------------------------------------------------------
// Target path
// ---------------------------------------------------------------------------

void Instance::on_request_arrival(hg::HandlePtr h) {
  // Progress-ULT context; this is t4 — a fresh ULT is spawned for the
  // request and queued in the handler pool.
  if (admission_limit_ > 0 && handler_pool_->at_capacity()) {
    // Backpressure: the handler backlog is over the watermark. Early-reject
    // so the origin backs off instead of deepening the t4->t5 queue.
    ++admission_rejects_;
    h->header.flags |= hg::kFlagBusy;
    hg_->respond(h, {}, nullptr);
    return;
  }
  auto hit = handlers_.find(h->header.rpc_id);
  auto pit = hit != handlers_.end() ? hit->second.find(h->header.provider_id)
                                    : decltype(hit->second.end()){};
  if (hit == handlers_.end() || pit == hit->second.end()) {
    // No matching handler/provider: answer with a library-level error so
    // the origin does not hang (HG_NO_MATCH semantics).
    h->header.flags |= hg::kFlagError;
    hg_->respond(h, {}, nullptr);
    return;
  }
  const Handler& handler = pit->second;

  lamport_receive(h->header.lamport);
  const sim::TimeNs t4 = engine().now();
  runtime_->create_ult(*handler_pool_,
                       [this, h = std::move(h), &handler, t4]() mutable {
                         run_handler(std::move(h), handler, t4);
                       });
}

void Instance::run_handler(hg::HandlePtr h, const Handler& handler,
                           sim::TimeNs t4) {
  const sim::TimeNs t5 = engine().now();
  ++requests_handled_;

  if (cfg_.instr >= prof::Level::kStage1) {
    // Install the propagated callpath ancestry and request metadata in
    // ULT-local keys so downstream calls extend the correct chain.
    abt::self_set(key_breadcrumb(), h->header.breadcrumb);
    abt::self_set(key_request_id(), h->header.request_id);
    abt::self_set(key_order(), h->header.trace_order + 1);
  }

  emit_trace(prof::TraceEventKind::kTargetStart, h->header.request_id,
             h->header.trace_order, h->header.breadcrumb, h->peer_addr());

  // t6 -> t7: input deserialization (content decode is the handler's).
  hg_->charge_input_deserialize(h);

  Request req(*this, h);
  req.t5_ = t5;
  handler(req);
  if (!req.responded_) req.respond({});
  const sim::TimeNs t8 = req.t8_;

  emit_trace(prof::TraceEventKind::kTargetEnd, h->header.request_id,
             h->header.trace_order + 1, h->header.breadcrumb, h->peer_addr());

  if (cfg_.instr >= prof::Level::kStage2) {
    prof::CallpathKey key{h->header.breadcrumb, prof::Side::kTarget, addr(),
                          h->peer_addr()};
    sim::DurationNs cost = kProfileRecordCost;
    if (cfg_.instr == prof::Level::kFull) {
      // Target-side HANDLE-bound PVARs (Table III), batched with the
      // handler-wait and execution envelopes.
      record_profile_batch(
          key,
          prof::IntervalSample{prof::Interval::kHandlerWait,
                               static_cast<double>(t5 - t4)},
          prof::IntervalSample{prof::Interval::kTargetExec,
                               static_cast<double>(t8 - t5)},
          prof::IntervalSample{prof::Interval::kInputDeser,
                               pvar_session_.read(pv_input_deser_, h.get())},
          prof::IntervalSample{prof::Interval::kOutputSer,
                               pvar_session_.read(pv_output_ser_, h.get())},
          prof::IntervalSample{
              prof::Interval::kInternalRdma,
              pvar_session_.read(pv_internal_rdma_, h.get())});
      cost += 3 * kPvarSampleCost;
    } else {
      record_profile_batch(
          key,
          prof::IntervalSample{prof::Interval::kHandlerWait,
                               static_cast<double>(t5 - t4)},
          prof::IntervalSample{prof::Interval::kTargetExec,
                               static_cast<double>(t8 - t5)});
    }
    charge(cost);
  }
}

void Request::respond(std::vector<std::byte> output) {
  assert(!responded_ && "double respond()");
  responded_ = true;
  t8_ = inst_.engine().now();  // t8

  h_->header.lamport = inst_.bump_lamport();

  Instance* inst = &inst_;
  const prof::CallpathKey key{h_->header.breadcrumb, prof::Side::kTarget,
                              inst_.addr(), h_->peer_addr()};
  const sim::TimeNs t8 = t8_;
  hg::SentCallback on_sent;
  if (inst_.level() >= prof::Level::kStage2) {
    on_sent = [inst, key, t8](const hg::HandlePtr&) {
      // t13: the response left the node; record t8 -> t13.
      inst->record_profile(key, prof::Interval::kTargetCallback,
                           static_cast<double>(inst->engine().now() - t8));
    };
  }
  inst_.hg_class().respond(h_, std::move(output), std::move(on_sent));
}

void Request::bulk_pull(std::uint64_t bytes) {
  abt::Eventual done;
  inst_.hg_class().bulk_transfer(h_, bytes, [&done] { done.set(); });
  done.wait();
}

}  // namespace sym::margo
