// margolite/policy.hpp
//
// Policy-driven dynamic reconfiguration — the paper's stated future work
// (§VII): "the creation of policy-driven mechanisms whereby rules governing
// response to poor performance behavior can be formulated and applied based
// on performance monitoring".
//
// A PolicyEngine runs as a periodic controller ULT on a margolite instance,
// closing the loop from measurement to control. Each period it samples the
// instance through the *same PVAR tool interface an external tool would
// use* plus the argolite introspection counters, and evaluates the
// registered rules. A rule inspects the sampled state and may apply a
// remediation and return an action description; every applied action is
// additionally recorded as a SYMBIOSYS action span in the instance's trace
// (prof::make_action_span), so adaptation itself is observable in the
// stitched traces, the Zipkin export and the insight reports.
//
// Built-in rules automate the remediations the paper's case studies applied
// by hand, plus the backpressure loop the ROADMAP's production goal needs:
//
//  * adaptive_max_events    — detects a backed-up OFI completion queue (the
//    num_ofi_events_read PVAR pinned at OFI_max_events, Fig. 12) and raises
//    the threshold, automating the C5 -> C6 fix;
//  * handler_autoscale      — detects handler-pool starvation (sustained
//    ready-ULT backlog) and adds/unparks execution streams (C1 -> C2);
//  * handler_downscale      — the inverse: parks idle handler ESs so a
//    burst-grown pool shrinks back when traffic drains;
//  * eager_threshold_autotune — detects a high eager-overflow rate and
//    raises the eager-vs-RDMA threshold through the *writable*
//    `eager_buffer_size` PVAR (the §VII control channel);
//  * admission_watermark    — toggles admission control (bounded handler
//    queue + kFlagBusy early-reject) around high/low backlog watermarks;
//  * rss_watermark          — reports when process memory crosses a limit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "margolite/instance.hpp"

namespace sym::margo {

/// Snapshot handed to rules each monitoring period. RPC-library fields are
/// read through a PVAR session; tasking fields come from argolite
/// introspection; OS fields from the simulated process.
struct PolicySample {
  sim::TimeNs now = 0;                 ///< global virtual time of the sample
  double num_ofi_events_read = 0;      ///< PVAR (LEVEL)
  double completion_queue_size = 0;    ///< PVAR (STATE)
  double num_posted_handles = 0;       ///< PVAR (LEVEL)
  double eager_limit = 0;              ///< PVAR (SIZE, writable)
  double eager_overflows = 0;          ///< PVAR (COUNTER)
  double rpcs_invoked = 0;             ///< PVAR (COUNTER), origin side
  double rpcs_handled = 0;             ///< PVAR (COUNTER), target side
  std::size_t ofi_max_events = 0;      ///< hg::ClassConfig threshold
  std::uint64_t blocked_ults = 0;      ///< argolite, all pools
  std::uint64_t runnable_ults = 0;     ///< argolite, all pools
  std::size_t handler_ready = 0;       ///< handler pool ready-queue depth
  std::uint64_t handler_running = 0;   ///< handler pool ULTs on an ES
  std::uint64_t rss_bytes = 0;         ///< OS view
  unsigned handler_es_count = 0;       ///< active handler ESs
  std::size_t admission_limit = 0;     ///< current backpressure bound (0=off)
  std::uint64_t admission_rejects = 0; ///< early-rejects so far
};

/// A rule: inspect the sample (and the instance, for remediation) and
/// return an action description when it fired.
using PolicyRule =
    std::function<std::optional<std::string>(Instance&, const PolicySample&)>;

/// Record of one applied action.
struct PolicyAction {
  sim::TimeNs at = 0;        ///< sample time that triggered the action
  std::string rule;          ///< registered rule name
  std::string description;   ///< what was done, human-readable
};

/// The periodic controller: samples, evaluates rules, applies remediations,
/// and records every action both in actions() and as a trace action span
/// named "policy:<rule>".
class PolicyEngine {
 public:
  explicit PolicyEngine(Instance& mid, sim::DurationNs period = sim::usec(500))
      : mid_(mid), period_(period) {}
  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  /// Register a rule under `name`; evaluated in registration order every
  /// period. The name becomes the action-span suffix ("policy:<name>").
  void add_rule(std::string name, PolicyRule rule) {
    rules_.push_back({std::move(name), std::move(rule)});
  }

  /// Spawn the controller ULT. The engine stops when the instance
  /// finalizes or stop() is called.
  void start();
  void stop() noexcept { stopped_ = true; }

  /// All actions applied so far, in order.
  [[nodiscard]] const std::vector<PolicyAction>& actions() const noexcept {
    return actions_;
  }
  /// Number of monitoring periods completed.
  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return samples_;
  }

  // --- built-in rules --------------------------------------------------------

  /// Fire when num_ofi_events_read has been pinned at OFI_max_events for
  /// `consecutive` samples; double the threshold up to `cap`.
  static PolicyRule adaptive_max_events(unsigned consecutive = 3,
                                        std::size_t cap = 256);

  /// Fire when the handler pool's runnable backlog exceeds
  /// `backlog_per_es` ULTs per ES for `consecutive` samples; add one ES up
  /// to `max_es`.
  static PolicyRule handler_autoscale(double backlog_per_es = 4.0,
                                      unsigned consecutive = 3,
                                      unsigned max_es = 64);

  /// Fire when the handler pool has an empty ready queue *and* idle ESs
  /// (running < active ESs) for `consecutive` samples; park one ES down to
  /// `min_es`. Pairs with handler_autoscale to make pools elastic in both
  /// directions.
  static PolicyRule handler_downscale(unsigned consecutive = 8,
                                      unsigned min_es = 1);

  /// Fire when more than `overflow_frac` of the RPCs invoked since the last
  /// sample overflowed the eager buffer; double the eager-vs-RDMA threshold
  /// up to `cap` bytes by *writing the `eager_buffer_size` PVAR* through a
  /// tool session.
  static PolicyRule eager_threshold_autotune(double overflow_frac = 0.5,
                                             std::size_t cap = 1 << 16);

  /// Backpressure: when the handler ready backlog crosses `high`, bound the
  /// handler queue at `high` (arrivals beyond it are early-rejected with
  /// kFlagBusy and retried by the origin); when it drains to `low`, lift
  /// the bound again.
  static PolicyRule admission_watermark(std::size_t high = 64,
                                        std::size_t low = 8);

  /// Fire (once per crossing) when RSS exceeds `limit_bytes`.
  static PolicyRule rss_watermark(std::uint64_t limit_bytes);

 private:
  struct NamedRule {
    std::string name;
    PolicyRule rule;
  };

  void monitor_loop();
  [[nodiscard]] PolicySample take_sample();

  Instance& mid_;
  sim::DurationNs period_;
  std::vector<NamedRule> rules_;
  std::vector<PolicyAction> actions_;
  std::uint64_t samples_ = 0;
  bool stopped_ = false;
  bool started_ = false;
};

}  // namespace sym::margo
