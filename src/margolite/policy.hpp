// margolite/policy.hpp
//
// Policy-driven dynamic reconfiguration — the paper's stated future work
// (§VII): "the creation of policy-driven mechanisms whereby rules governing
// response to poor performance behavior can be formulated and applied based
// on performance monitoring".
//
// A PolicyEngine runs as a monitoring ULT on a margolite instance. Each
// period it samples the instance through the *same PVAR tool interface an
// external tool would use* plus the argolite introspection counters, and
// evaluates the registered rules. A rule inspects the sampled state and may
// return an action description; built-in rules implement the remediations
// the paper's case studies applied by hand:
//
//  * adaptive_max_events  — detects a backed-up OFI completion queue (the
//    num_ofi_events_read PVAR pinned at OFI_max_events, Fig. 12) and raises
//    the threshold, automating the C5 -> C6 fix;
//  * handler_autoscale    — detects handler-pool starvation (sustained
//    ready-ULT backlog) and adds execution streams, automating C1 -> C2;
//  * rss_watermark        — reports when process memory crosses a limit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "margolite/instance.hpp"

namespace sym::margo {

/// Snapshot handed to rules each monitoring period.
struct PolicySample {
  sim::TimeNs now = 0;
  double num_ofi_events_read = 0;
  double completion_queue_size = 0;
  double num_posted_handles = 0;
  std::size_t ofi_max_events = 0;
  std::uint64_t blocked_ults = 0;
  std::uint64_t runnable_ults = 0;
  std::uint64_t rss_bytes = 0;
  unsigned handler_es_count = 0;
};

/// A rule: inspect the sample (and the instance, for remediation) and
/// return an action description when it fired.
using PolicyRule =
    std::function<std::optional<std::string>(Instance&, const PolicySample&)>;

/// Record of one applied action.
struct PolicyAction {
  sim::TimeNs at = 0;
  std::string description;
};

class PolicyEngine {
 public:
  PolicyEngine(Instance& mid, sim::DurationNs period = sim::usec(500))
      : mid_(mid), period_(period) {}
  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  void add_rule(std::string name, PolicyRule rule) {
    rules_.push_back({std::move(name), std::move(rule)});
  }

  /// Spawn the monitoring ULT. The engine stops when the instance
  /// finalizes or stop() is called.
  void start();
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] const std::vector<PolicyAction>& actions() const noexcept {
    return actions_;
  }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return samples_;
  }

  // --- built-in rules --------------------------------------------------------

  /// Fire when num_ofi_events_read has been pinned at OFI_max_events for
  /// `consecutive` samples; double the threshold up to `cap`.
  static PolicyRule adaptive_max_events(unsigned consecutive = 3,
                                        std::size_t cap = 256);

  /// Fire when the handler pool's runnable backlog exceeds
  /// `backlog_per_es` ULTs per ES for `consecutive` samples; add one ES up
  /// to `max_es`.
  static PolicyRule handler_autoscale(double backlog_per_es = 4.0,
                                      unsigned consecutive = 3,
                                      unsigned max_es = 64);

  /// Fire (once per crossing) when RSS exceeds `limit_bytes`.
  static PolicyRule rss_watermark(std::uint64_t limit_bytes);

 private:
  struct NamedRule {
    std::string name;
    PolicyRule rule;
  };

  void monitor_loop();
  [[nodiscard]] PolicySample take_sample();

  Instance& mid_;
  sim::DurationNs period_;
  std::vector<NamedRule> rules_;
  std::vector<PolicyAction> actions_;
  std::uint64_t samples_ = 0;
  bool stopped_ = false;
  bool started_ = false;
};

}  // namespace sym::margo
