#include "services/sdskv/sdskv.hpp"

#include "argolite/runtime.hpp"

namespace sym::sdskv {
namespace {

constexpr const char* kPutRpc = "sdskv_put_rpc";
constexpr const char* kGetRpc = "sdskv_get_rpc";
constexpr const char* kPutPackedRpc = "sdskv_put_packed_rpc";
constexpr const char* kListKeyvalsRpc = "sdskv_list_keyvals_rpc";
constexpr const char* kLengthRpc = "sdskv_length_rpc";
constexpr const char* kEraseRpc = "sdskv_erase_rpc";

}  // namespace

std::uint64_t payload_bytes(const std::vector<KeyValue>& kvs) {
  std::uint64_t n = 0;
  for (const auto& [k, v] : kvs) n += k.size() + v.size() + 8;
  return n;
}

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

Provider::Provider(margo::Instance& mid, std::uint16_t provider_id,
                   ProviderConfig config)
    : mid_(mid), provider_id_(provider_id) {
  dbs_.reserve(config.db_count);
  for (std::uint32_t i = 0; i < config.db_count; ++i) {
    dbs_.push_back(make_backend(config.backend, mid.process()));
  }
  mid_.register_rpc(kPutRpc, provider_id_,
                    [this](margo::Request& r) { handle_put(r); });
  mid_.register_rpc(kGetRpc, provider_id_,
                    [this](margo::Request& r) { handle_get(r); });
  mid_.register_rpc(kPutPackedRpc, provider_id_,
                    [this](margo::Request& r) { handle_put_packed(r); });
  mid_.register_rpc(kListKeyvalsRpc, provider_id_,
                    [this](margo::Request& r) { handle_list_keyvals(r); });
  mid_.register_rpc(kLengthRpc, provider_id_,
                    [this](margo::Request& r) { handle_length(r); });
  mid_.register_rpc(kEraseRpc, provider_id_,
                    [this](margo::Request& r) { handle_erase(r); });
}

std::size_t Provider::total_size() const noexcept {
  std::size_t n = 0;
  for (const auto& db : dbs_) n += db->size();
  return n;
}

void Provider::handle_put(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t db_id = 0;
  std::string key, value;
  hg::get(r, db_id);
  hg::get(r, key);
  hg::get(r, value);
  Backend* db = db_or_null(db_id);
  if (db == nullptr) {
    req.respond_value(static_cast<std::uint8_t>(Status::kBadDb));
    return;
  }
  db->put(key, value);
  req.respond_value(static_cast<std::uint8_t>(Status::kOk));
}

void Provider::handle_get(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t db_id = 0;
  std::string key;
  hg::get(r, db_id);
  hg::get(r, key);
  hg::BufWriter w;
  Backend* db = db_or_null(db_id);
  if (db == nullptr) {
    hg::put(w, static_cast<std::uint8_t>(Status::kBadDb));
    hg::put(w, std::string());
    req.respond(w.take());
    return;
  }
  std::string value;
  const bool found = db->get(key, &value);
  hg::put(w, static_cast<std::uint8_t>(found ? Status::kOk
                                             : Status::kNotFound));
  hg::put(w, value);
  req.respond(w.take());
}

void Provider::handle_put_packed(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t db_id = 0;
  std::uint32_t count = 0;
  std::uint64_t bytes = 0;
  hg::get(r, db_id);
  hg::get(r, count);
  hg::get(r, bytes);
  Backend* db = db_or_null(db_id);
  if (db == nullptr) {
    req.respond_value(static_cast<std::uint8_t>(Status::kBadDb));
    return;
  }
  // Pull the key-value content from the origin through the bulk interface
  // (the paper: "this RPC call typically results in the target issuing a
  // bulk data transfer to pull in the key-value content").
  req.bulk_pull(bytes);
  // Decode the packed buffer into pairs. This is parallel CPU work in the
  // handler ULT — only the map insertion itself serializes on the
  // database's writer lock.
  constexpr double kPackedDecodeNsPerByte = 2.0;
  abt::compute(sim::nsec(600) +
               static_cast<sim::DurationNs>(static_cast<double>(bytes) *
                                            kPackedDecodeNsPerByte));
  const auto* kvs = req.handle()->attached<std::vector<KeyValue>>();
  if (kvs != nullptr) db->put_multi(*kvs);
  req.respond_value(static_cast<std::uint8_t>(Status::kOk));
}

void Provider::handle_list_keyvals(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t db_id = 0;
  std::string start_key;
  std::uint32_t max = 0;
  hg::get(r, db_id);
  hg::get(r, start_key);
  hg::get(r, max);
  Backend* db = db_or_null(db_id);
  std::vector<KeyValue> out;
  if (db != nullptr) out = db->list_keyvals(start_key, max);
  req.respond_value(out);
}

void Provider::handle_length(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t db_id = 0;
  std::string key;
  hg::get(r, db_id);
  hg::get(r, key);
  hg::BufWriter w;
  Backend* db = db_or_null(db_id);
  std::string value;
  if (db != nullptr && db->get(key, &value)) {
    hg::put(w, static_cast<std::uint8_t>(Status::kOk));
    hg::put(w, static_cast<std::uint64_t>(value.size()));
  } else {
    hg::put(w, static_cast<std::uint8_t>(db == nullptr ? Status::kBadDb
                                                       : Status::kNotFound));
    hg::put(w, std::uint64_t{0});
  }
  req.respond(w.take());
}

void Provider::handle_erase(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t db_id = 0;
  std::string key;
  hg::get(r, db_id);
  hg::get(r, key);
  Backend* db = db_or_null(db_id);
  if (db == nullptr) {
    req.respond_value(static_cast<std::uint8_t>(Status::kBadDb));
    return;
  }
  req.respond_value(static_cast<std::uint8_t>(
      db->erase(key) ? Status::kOk : Status::kNotFound));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid)
    : mid_(mid),
      put_id_(mid.register_client_rpc(kPutRpc)),
      get_id_(mid.register_client_rpc(kGetRpc)),
      put_packed_id_(mid.register_client_rpc(kPutPackedRpc)),
      list_id_(mid.register_client_rpc(kListKeyvalsRpc)),
      length_id_(mid.register_client_rpc(kLengthRpc)),
      erase_id_(mid.register_client_rpc(kEraseRpc)) {}

Status Client::put(ofi::EpAddr target, std::uint16_t provider,
                   std::uint32_t db, const std::string& key,
                   const std::string& value) {
  hg::BufWriter w;
  hg::put(w, db);
  hg::put(w, key);
  hg::put(w, value);
  const auto resp = mid_.forward(target, provider, put_id_, w.take());
  return static_cast<Status>(hg::decode<std::uint8_t>(resp));
}

Status Client::get(ofi::EpAddr target, std::uint16_t provider,
                   std::uint32_t db, const std::string& key,
                   std::string* value) {
  hg::BufWriter w;
  hg::put(w, db);
  hg::put(w, key);
  const auto resp = mid_.forward(target, provider, get_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::string v;
  hg::get(r, status);
  hg::get(r, v);
  if (value != nullptr) *value = std::move(v);
  return static_cast<Status>(status);
}

margo::PendingOpPtr Client::iput_packed(ofi::EpAddr target,
                                        std::uint16_t provider,
                                        std::uint32_t db,
                                        std::vector<KeyValue> kvs) {
  const auto bytes = payload_bytes(kvs);
  auto shared = std::make_shared<const std::vector<KeyValue>>(std::move(kvs));
  hg::BufWriter w;
  hg::put(w, db);
  hg::put(w, static_cast<std::uint32_t>(shared->size()));
  hg::put(w, bytes);
  return mid_.forward_async(target, provider, put_packed_id_, w.take(),
                            shared, bytes);
}

Status Client::finish_put_packed(const margo::PendingOpPtr& op) {
  // Busy early-rejects (admission control) are retried with backoff; the
  // request input and bulk attachment stay on the handle, so the op can be
  // re-forwarded as-is.
  const auto& resp = op->wait_retry();
  if (op->busy()) return Status::kBusy;
  return static_cast<Status>(hg::decode<std::uint8_t>(resp));
}

Status Client::put_packed(ofi::EpAddr target, std::uint16_t provider,
                          std::uint32_t db, std::vector<KeyValue> kvs) {
  return finish_put_packed(iput_packed(target, provider, db, std::move(kvs)));
}

std::vector<KeyValue> Client::list_keyvals(ofi::EpAddr target,
                                           std::uint16_t provider,
                                           std::uint32_t db,
                                           const std::string& start_key,
                                           std::uint32_t max) {
  hg::BufWriter w;
  hg::put(w, db);
  hg::put(w, start_key);
  hg::put(w, max);
  const auto resp = mid_.forward(target, provider, list_id_, w.take());
  return hg::decode<std::vector<KeyValue>>(resp);
}

Status Client::length(ofi::EpAddr target, std::uint16_t provider,
                      std::uint32_t db, const std::string& key,
                      std::uint64_t* len) {
  hg::BufWriter w;
  hg::put(w, db);
  hg::put(w, key);
  const auto resp = mid_.forward(target, provider, length_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::uint64_t n = 0;
  hg::get(r, status);
  hg::get(r, n);
  if (len != nullptr) *len = n;
  return static_cast<Status>(status);
}

Status Client::erase(ofi::EpAddr target, std::uint16_t provider,
                     std::uint32_t db, const std::string& key) {
  hg::BufWriter w;
  hg::put(w, db);
  hg::put(w, key);
  const auto resp = mid_.forward(target, provider, erase_id_, w.take());
  return static_cast<Status>(hg::decode<std::uint8_t>(resp));
}

}  // namespace sym::sdskv
