#include "services/sdskv/backend.hpp"

#include <cmath>

#include "argolite/runtime.hpp"

namespace sym::sdskv {
namespace {

// Cost model (virtual CPU time). Values are representative of in-memory
// KV engines on a KNL-class core.
constexpr sim::DurationNs kMapPutBase = sim::nsec(150);
constexpr double kMapPutPerByte = 0.05;
constexpr sim::DurationNs kMapGetBase = sim::nsec(1200);
constexpr sim::DurationNs kListBase = sim::nsec(2500);
constexpr sim::DurationNs kListPerItem = sim::nsec(2000);
constexpr sim::DurationNs kWalAppendBase = sim::nsec(700);
constexpr double kWalPerByte = 0.2;
constexpr sim::DurationNs kMemtableInsert = sim::nsec(900);
constexpr sim::DurationNs kFlushCost = sim::usec(400);
constexpr sim::DurationNs kBtreeBase = sim::nsec(1500);
constexpr double kBtreePerByte = 0.4;
constexpr sim::DurationNs kPageSplitCost = sim::usec(25);
constexpr std::uint64_t kSplitEvery = 128;

std::vector<KeyValue> scan(const std::map<std::string, std::string>& m,
                           const std::string& start_key, std::size_t max) {
  std::vector<KeyValue> out;
  for (auto it = m.upper_bound(start_key); it != m.end() && out.size() < max;
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

}  // namespace

const char* to_string(BackendType t) noexcept {
  switch (t) {
    case BackendType::kMap: return "map";
    case BackendType::kLevelDb: return "leveldb";
    case BackendType::kBerkeleyDb: return "berkeleydb";
  }
  return "?";
}

void Backend::put_multi(const std::vector<KeyValue>& kvs) {
  for (const auto& [k, v] : kvs) put(k, v);
}

// ---------------------------------------------------------------------------
// MapBackend
// ---------------------------------------------------------------------------

void MapBackend::put_locked(const std::string& key, const std::string& value) {
  const auto bytes = key.size() + value.size();
  abt::compute(kMapPutBase + static_cast<sim::DurationNs>(
                                 std::llround(bytes * kMapPutPerByte)));
  auto [it, inserted] = map_.insert_or_assign(key, value);
  (void)it;
  if (inserted) account(static_cast<std::int64_t>(bytes));
}

void MapBackend::put(const std::string& key, const std::string& value) {
  abt::LockGuard g(write_lock_);
  put_locked(key, value);
}

void MapBackend::put_multi(const std::vector<KeyValue>& kvs) {
  // The whole batch inserts under one lock acquisition — batching pays off,
  // but concurrent batches to the same database fully serialize.
  abt::LockGuard g(write_lock_);
  for (const auto& [k, v] : kvs) put_locked(k, v);
}

bool MapBackend::get(const std::string& key, std::string* value) {
  abt::compute(kMapGetBase);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  if (value != nullptr) *value = it->second;
  return true;
}

std::vector<KeyValue> MapBackend::list_keyvals(const std::string& start_key,
                                               std::size_t max) {
  auto out = scan(map_, start_key, max);
  abt::compute(kListBase + kListPerItem * out.size());
  return out;
}

bool MapBackend::erase(const std::string& key) {
  abt::LockGuard g(write_lock_);
  abt::compute(kMapGetBase);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  account(-static_cast<std::int64_t>(it->first.size() + it->second.size()));
  map_.erase(it);
  return true;
}

// ---------------------------------------------------------------------------
// LevelDbBackend
// ---------------------------------------------------------------------------

void LevelDbBackend::put(const std::string& key, const std::string& value) {
  const auto bytes = key.size() + value.size();
  {
    // Short WAL critical section.
    abt::LockGuard g(wal_lock_);
    abt::compute(kWalAppendBase + static_cast<sim::DurationNs>(
                                      std::llround(bytes * kWalPerByte)));
  }
  abt::compute(kMemtableInsert);
  auto [it, inserted] = memtable_.insert_or_assign(key, value);
  (void)it;
  if (inserted) account(static_cast<std::int64_t>(bytes));
  memtable_bytes_ += bytes;
  if (memtable_bytes_ >= kMemtableLimit) {
    // Flush stall: the writer that filled the memtable pays for the flush.
    abt::LockGuard g(wal_lock_);
    abt::compute(kFlushCost);
    for (auto& [k, v] : memtable_) levels_.insert_or_assign(k, std::move(v));
    memtable_.clear();
    memtable_bytes_ = 0;
    ++flushes_;
  }
}

bool LevelDbBackend::get(const std::string& key, std::string* value) {
  abt::compute(kMapGetBase + kMapGetBase / 2);  // memtable + level probe
  if (auto it = memtable_.find(key); it != memtable_.end()) {
    if (value != nullptr) *value = it->second;
    return true;
  }
  if (auto it = levels_.find(key); it != levels_.end()) {
    if (value != nullptr) *value = it->second;
    return true;
  }
  return false;
}

std::vector<KeyValue> LevelDbBackend::list_keyvals(
    const std::string& start_key, std::size_t max) {
  // Merge-scan of memtable and levels.
  std::map<std::string, std::string> merged = levels_;
  for (const auto& [k, v] : memtable_) merged.insert_or_assign(k, v);
  auto out = scan(merged, start_key, max);
  abt::compute(2 * kListBase + kListPerItem * out.size());
  return out;
}

bool LevelDbBackend::erase(const std::string& key) {
  abt::LockGuard g(wal_lock_);
  abt::compute(kWalAppendBase);
  bool existed = false;
  if (auto it = memtable_.find(key); it != memtable_.end()) {
    account(-static_cast<std::int64_t>(it->first.size() + it->second.size()));
    memtable_.erase(it);
    existed = true;
  }
  if (auto it = levels_.find(key); it != levels_.end()) {
    if (!existed) {
      account(
          -static_cast<std::int64_t>(it->first.size() + it->second.size()));
    }
    levels_.erase(it);
    existed = true;
  }
  return existed;
}

std::size_t LevelDbBackend::size() const noexcept {
  std::size_t n = levels_.size();
  for (const auto& [k, v] : memtable_) {
    if (levels_.count(k) == 0) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// BerkeleyDbBackend
// ---------------------------------------------------------------------------

void BerkeleyDbBackend::put(const std::string& key, const std::string& value) {
  abt::LockGuard g(lock_);
  const auto bytes = key.size() + value.size();
  const double logn =
      tree_.empty() ? 1.0 : std::log2(static_cast<double>(tree_.size()) + 2);
  abt::compute(kBtreeBase +
               static_cast<sim::DurationNs>(std::llround(
                   bytes * kBtreePerByte + 120.0 * logn)));
  if (++inserts_since_split_ >= kSplitEvery) {
    inserts_since_split_ = 0;
    abt::compute(kPageSplitCost);
  }
  auto [it, inserted] = tree_.insert_or_assign(key, value);
  (void)it;
  if (inserted) account(static_cast<std::int64_t>(bytes));
}

bool BerkeleyDbBackend::get(const std::string& key, std::string* value) {
  abt::compute(kBtreeBase);
  auto it = tree_.find(key);
  if (it == tree_.end()) return false;
  if (value != nullptr) *value = it->second;
  return true;
}

std::vector<KeyValue> BerkeleyDbBackend::list_keyvals(
    const std::string& start_key, std::size_t max) {
  auto out = scan(tree_, start_key, max);
  abt::compute(kListBase + kListPerItem * out.size());
  return out;
}

bool BerkeleyDbBackend::erase(const std::string& key) {
  abt::LockGuard g(lock_);
  abt::compute(kBtreeBase);
  auto it = tree_.find(key);
  if (it == tree_.end()) return false;
  account(-static_cast<std::int64_t>(it->first.size() + it->second.size()));
  tree_.erase(it);
  return true;
}

// ---------------------------------------------------------------------------

std::unique_ptr<Backend> make_backend(BackendType type,
                                      sim::Process& process) {
  switch (type) {
    case BackendType::kMap: return std::make_unique<MapBackend>(process);
    case BackendType::kLevelDb:
      return std::make_unique<LevelDbBackend>(process);
    case BackendType::kBerkeleyDb:
      return std::make_unique<BerkeleyDbBackend>(process);
  }
  return nullptr;
}

}  // namespace sym::sdskv
