// services/sdskv/backend.hpp
//
// SDSKV storage backends. The paper's HEPnOS study uses the *map* backend,
// whose defining property is that it is "not capable of parallel
// insertions": writes serialize on a per-database lock, which is the root
// cause of the Fig. 10 write-serialization pattern. The leveldb-sim and
// bdb-sim backends model LevelDB (LSM: cheap WAL append + memtable, with
// periodic flush stalls) and BerkeleyDB (BTree with page-split overheads),
// matching the three backends SDSKV supports.
//
// All backend calls must run in ULT context: they charge CPU via
// abt::compute and block on abt::Mutex, so contention becomes visible to
// SYMBIOSYS through the blocked-ULT counters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "argolite/sync.hpp"
#include "simkit/cluster.hpp"
#include "simkit/time.hpp"

namespace sym::sdskv {

enum class BackendType : std::uint8_t { kMap, kLevelDb, kBerkeleyDb };

[[nodiscard]] const char* to_string(BackendType t) noexcept;

using KeyValue = std::pair<std::string, std::string>;

class Backend {
 public:
  explicit Backend(sim::Process& process) : process_(process) {}
  virtual ~Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  [[nodiscard]] virtual BackendType type() const noexcept = 0;

  /// Insert or overwrite one pair.
  virtual void put(const std::string& key, const std::string& value) = 0;

  /// Insert a batch (put_packed). Default: sequential puts; backends may
  /// amortize locking.
  virtual void put_multi(const std::vector<KeyValue>& kvs);

  /// Lookup. Returns false if absent.
  virtual bool get(const std::string& key, std::string* value) = 0;

  /// Range scan: up to `max` pairs with key > `start_key`, ascending.
  virtual std::vector<KeyValue> list_keyvals(const std::string& start_key,
                                             std::size_t max) = 0;

  /// Remove a key; returns true if it existed.
  virtual bool erase(const std::string& key) = 0;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  [[nodiscard]] std::uint64_t stored_bytes() const noexcept {
    return stored_bytes_;
  }

  /// Writers currently blocked on this backend's lock (contention metric).
  [[nodiscard]] virtual std::size_t lock_waiters() const noexcept = 0;

 protected:
  void account(std::int64_t delta) {
    stored_bytes_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(stored_bytes_) + delta);
    process_.add_rss(delta);
  }

  sim::Process& process_;
  std::uint64_t stored_bytes_ = 0;
};

/// In-memory std::map with a single writer lock per database.
class MapBackend final : public Backend {
 public:
  explicit MapBackend(sim::Process& process) : Backend(process) {}

  [[nodiscard]] BackendType type() const noexcept override {
    return BackendType::kMap;
  }
  void put(const std::string& key, const std::string& value) override;
  void put_multi(const std::vector<KeyValue>& kvs) override;
  bool get(const std::string& key, std::string* value) override;
  std::vector<KeyValue> list_keyvals(const std::string& start_key,
                                     std::size_t max) override;
  bool erase(const std::string& key) override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return map_.size();
  }
  [[nodiscard]] std::size_t lock_waiters() const noexcept override {
    return write_lock_.waiters();
  }

 private:
  void put_locked(const std::string& key, const std::string& value);

  std::map<std::string, std::string> map_;
  abt::Mutex write_lock_;  ///< map backend: no parallel insertions
};

/// LSM-tree model: WAL append under a short lock, lock-free memtable
/// insert, periodic flush that stalls the inserting writer.
class LevelDbBackend final : public Backend {
 public:
  explicit LevelDbBackend(sim::Process& process) : Backend(process) {}

  [[nodiscard]] BackendType type() const noexcept override {
    return BackendType::kLevelDb;
  }
  void put(const std::string& key, const std::string& value) override;
  bool get(const std::string& key, std::string* value) override;
  std::vector<KeyValue> list_keyvals(const std::string& start_key,
                                     std::size_t max) override;
  bool erase(const std::string& key) override;
  [[nodiscard]] std::size_t size() const noexcept override;
  [[nodiscard]] std::size_t lock_waiters() const noexcept override {
    return wal_lock_.waiters();
  }

  [[nodiscard]] std::uint64_t flush_count() const noexcept {
    return flushes_;
  }

 private:
  static constexpr std::uint64_t kMemtableLimit = 4ULL << 20;

  std::map<std::string, std::string> memtable_;
  std::map<std::string, std::string> levels_;
  std::uint64_t memtable_bytes_ = 0;
  std::uint64_t flushes_ = 0;
  abt::Mutex wal_lock_;
};

/// BTree model: per-operation lock, logarithmic cost, periodic page splits.
class BerkeleyDbBackend final : public Backend {
 public:
  explicit BerkeleyDbBackend(sim::Process& process) : Backend(process) {}

  [[nodiscard]] BackendType type() const noexcept override {
    return BackendType::kBerkeleyDb;
  }
  void put(const std::string& key, const std::string& value) override;
  bool get(const std::string& key, std::string* value) override;
  std::vector<KeyValue> list_keyvals(const std::string& start_key,
                                     std::size_t max) override;
  bool erase(const std::string& key) override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return tree_.size();
  }
  [[nodiscard]] std::size_t lock_waiters() const noexcept override {
    return lock_.waiters();
  }

 private:
  std::map<std::string, std::string> tree_;
  abt::Mutex lock_;
  std::uint64_t inserts_since_split_ = 0;
};

[[nodiscard]] std::unique_ptr<Backend> make_backend(BackendType type,
                                                    sim::Process& process);

}  // namespace sym::sdskv
