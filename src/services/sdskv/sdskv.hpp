// services/sdskv/sdskv.hpp
//
// SDSKV: the Mochi microservice enabling RPC-based access to key-value
// backends. A provider hosts one or more databases (Table IV's "Databases"
// column); clients address (provider, database) pairs.
//
// RPCs:
//   sdskv_put_rpc           single pair, eager payload
//   sdskv_get_rpc           lookup
//   sdskv_put_packed_rpc    key-value list; content moves via the bulk
//                           interface (target-issued RDMA pull), as used by
//                           the HEPnOS data-loader
//   sdskv_list_keyvals_rpc  range scan (Mobject's dominant dependency)
//   sdskv_length_rpc        value length probe
//   sdskv_erase_rpc         delete
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "margolite/instance.hpp"
#include "services/sdskv/backend.hpp"

namespace sym::sdskv {

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kBadDb = 2,
  /// Still early-rejected by target-side admission control after the
  /// retry/backoff schedule was exhausted.
  kBusy = 3,
};

struct ProviderConfig {
  BackendType backend = BackendType::kMap;
  std::uint32_t db_count = 1;
};

/// Server-side SDSKV provider: registers handlers on a margolite instance.
class Provider {
 public:
  Provider(margo::Instance& mid, std::uint16_t provider_id,
           ProviderConfig config);
  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  [[nodiscard]] std::uint16_t provider_id() const noexcept {
    return provider_id_;
  }
  [[nodiscard]] std::uint32_t db_count() const noexcept {
    return static_cast<std::uint32_t>(dbs_.size());
  }
  [[nodiscard]] Backend& db(std::uint32_t id) { return *dbs_.at(id); }

  /// Total pairs stored across all databases.
  [[nodiscard]] std::size_t total_size() const noexcept;

 private:
  void handle_put(margo::Request& req);
  void handle_get(margo::Request& req);
  void handle_put_packed(margo::Request& req);
  void handle_list_keyvals(margo::Request& req);
  void handle_length(margo::Request& req);
  void handle_erase(margo::Request& req);
  [[nodiscard]] Backend* db_or_null(std::uint32_t id) {
    return id < dbs_.size() ? dbs_[id].get() : nullptr;
  }

  margo::Instance& mid_;
  std::uint16_t provider_id_;
  std::vector<std::unique_ptr<Backend>> dbs_;
};

/// Client-side SDSKV API.
class Client {
 public:
  explicit Client(margo::Instance& mid);

  Status put(ofi::EpAddr target, std::uint16_t provider, std::uint32_t db,
             const std::string& key, const std::string& value);
  Status get(ofi::EpAddr target, std::uint16_t provider, std::uint32_t db,
             const std::string& key, std::string* value);

  /// Batched put: the pair list content is exposed as a registered-memory
  /// attachment and pulled by the target through the bulk interface.
  Status put_packed(ofi::EpAddr target, std::uint16_t provider,
                    std::uint32_t db, std::vector<KeyValue> kvs);

  /// Asynchronous put_packed; complete with finish_put_packed(op).
  margo::PendingOpPtr iput_packed(ofi::EpAddr target, std::uint16_t provider,
                                  std::uint32_t db, std::vector<KeyValue> kvs);
  static Status finish_put_packed(const margo::PendingOpPtr& op);

  std::vector<KeyValue> list_keyvals(ofi::EpAddr target,
                                     std::uint16_t provider, std::uint32_t db,
                                     const std::string& start_key,
                                     std::uint32_t max);
  Status length(ofi::EpAddr target, std::uint16_t provider, std::uint32_t db,
                const std::string& key, std::uint64_t* len);
  Status erase(ofi::EpAddr target, std::uint16_t provider, std::uint32_t db,
               const std::string& key);

  [[nodiscard]] margo::Instance& instance() noexcept { return mid_; }

 private:
  margo::Instance& mid_;
  hg::RpcId put_id_, get_id_, put_packed_id_, list_id_, length_id_, erase_id_;
};

/// Byte volume of a kv list (used for bulk sizing on both sides).
[[nodiscard]] std::uint64_t payload_bytes(const std::vector<KeyValue>& kvs);

}  // namespace sym::sdskv
