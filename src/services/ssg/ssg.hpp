// services/ssg/ssg.hpp
//
// SSG (Scalable Service Groups): the Mochi core component for group
// membership (paper §III-B lists it among Mochi's core components). A
// group maps dense ranks to endpoint addresses; servers bootstrap a group
// from a known member list, and clients *observe* a group through any
// member to discover the full view — the pattern HEPnOS clients use to find
// their providers.
//
// RPCs: ssg_get_view_rpc (observe), ssg_join_rpc (dynamic join, view
// version bump + propagation to existing members).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "margolite/instance.hpp"

namespace sym::ssg {

/// An immutable snapshot of a group's membership.
struct GroupView {
  std::string name;
  std::uint64_t version = 0;
  std::vector<ofi::EpAddr> members;  ///< rank -> endpoint address

  [[nodiscard]] std::size_t size() const noexcept { return members.size(); }
  [[nodiscard]] int rank_of(ofi::EpAddr addr) const noexcept;
};

void put(hg::BufWriter& w, const GroupView& v);
void get(hg::BufReader& r, GroupView& v);

/// A member's handle on a group: holds the live view and serves membership
/// RPCs for it. Create one per participating margolite instance.
class Member {
 public:
  /// Bootstrap: every founding member constructs with the same name and
  /// initial member list (which must contain its own address).
  Member(margo::Instance& mid, std::string name,
         std::vector<ofi::EpAddr> initial_members);

  [[nodiscard]] const GroupView& view() const noexcept { return view_; }
  [[nodiscard]] int self_rank() const noexcept {
    return view_.rank_of(mid_.addr());
  }
  [[nodiscard]] ofi::EpAddr member(std::size_t rank) const {
    return view_.members.at(rank);
  }

  /// Dynamically join an existing group through `bootstrap`: fetches the
  /// view, appends self, and propagates the new view to every prior member.
  /// Must run in ULT context.
  static std::unique_ptr<Member> join(margo::Instance& mid, std::string name,
                                      ofi::EpAddr bootstrap);

  /// Number of view updates this member has accepted (diagnostics).
  [[nodiscard]] std::uint64_t updates_received() const noexcept {
    return updates_;
  }

 private:
  Member(margo::Instance& mid, GroupView view);
  void register_rpcs();
  void handle_get_view(margo::Request& req);
  void handle_join(margo::Request& req);
  void handle_update_view(margo::Request& req);

  margo::Instance& mid_;
  GroupView view_;
  std::uint64_t updates_ = 0;
  hg::RpcId get_view_id_ = 0;
  hg::RpcId join_id_ = 0;
  hg::RpcId update_view_id_ = 0;
};

/// Client-side observer: fetch a group's view without being a member.
class Observer {
 public:
  explicit Observer(margo::Instance& mid);

  /// Fetch the current view from any member. Must run in ULT context.
  [[nodiscard]] GroupView observe(ofi::EpAddr member,
                                  const std::string& name);

 private:
  margo::Instance& mid_;
  hg::RpcId get_view_id_;
};

}  // namespace sym::ssg
