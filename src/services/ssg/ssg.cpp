#include "services/ssg/ssg.hpp"

namespace sym::ssg {
namespace {

constexpr const char* kGetViewRpc = "ssg_get_view_rpc";
constexpr const char* kJoinRpc = "ssg_join_rpc";
constexpr const char* kUpdateViewRpc = "ssg_update_view_rpc";

// SSG RPCs are served by a reserved provider id so they never collide with
// application providers.
constexpr std::uint16_t kSsgProviderId = 0xFFF0;

}  // namespace

int GroupView::rank_of(ofi::EpAddr addr) const noexcept {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == addr) return static_cast<int>(i);
  }
  return -1;
}

void put(hg::BufWriter& w, const GroupView& v) {
  hg::put(w, v.name);
  hg::put(w, v.version);
  hg::put(w, v.members);
}

void get(hg::BufReader& r, GroupView& v) {
  hg::get(r, v.name);
  hg::get(r, v.version);
  hg::get(r, v.members);
}

// ---------------------------------------------------------------------------
// Member
// ---------------------------------------------------------------------------

Member::Member(margo::Instance& mid, std::string name,
               std::vector<ofi::EpAddr> initial_members)
    : mid_(mid) {
  view_.name = std::move(name);
  view_.version = 1;
  view_.members = std::move(initial_members);
  register_rpcs();
}

Member::Member(margo::Instance& mid, GroupView view)
    : mid_(mid), view_(std::move(view)) {
  register_rpcs();
}

void Member::register_rpcs() {
  get_view_id_ = mid_.register_rpc(
      kGetViewRpc, kSsgProviderId,
      [this](margo::Request& r) { handle_get_view(r); });
  join_id_ = mid_.register_rpc(kJoinRpc, kSsgProviderId,
                               [this](margo::Request& r) { handle_join(r); });
  update_view_id_ =
      mid_.register_rpc(kUpdateViewRpc, kSsgProviderId,
                        [this](margo::Request& r) { handle_update_view(r); });
}

void Member::handle_get_view(margo::Request& req) {
  auto r = req.reader();
  std::string name;
  hg::get(r, name);
  hg::BufWriter w;
  hg::put(w, name == view_.name);
  put(w, view_);
  req.respond(w.take());
}

void Member::handle_join(margo::Request& req) {
  auto r = req.reader();
  std::string name;
  ofi::EpAddr joiner = ofi::kInvalidAddr;
  hg::get(r, name);
  hg::get(r, joiner);

  if (name == view_.name && view_.rank_of(joiner) < 0) {
    view_.members.push_back(joiner);
    ++view_.version;
    ++updates_;
    // Propagate to every other existing member.
    hg::BufWriter upd;
    put(upd, view_);
    const auto payload = upd.take();
    for (const auto m : view_.members) {
      if (m == mid_.addr() || m == joiner) continue;
      mid_.forward(m, kSsgProviderId, update_view_id_, payload);
    }
  }
  hg::BufWriter w;
  put(w, view_);
  req.respond(w.take());
}

void Member::handle_update_view(margo::Request& req) {
  auto r = req.reader();
  GroupView incoming;
  get(r, incoming);
  if (incoming.name == view_.name && incoming.version > view_.version) {
    view_ = std::move(incoming);
    ++updates_;
  }
  req.respond({});
}

std::unique_ptr<Member> Member::join(margo::Instance& mid, std::string name,
                                     ofi::EpAddr bootstrap) {
  const auto join_id = mid.register_client_rpc(kJoinRpc);
  hg::BufWriter w;
  hg::put(w, name);
  hg::put(w, mid.addr());
  const auto resp = mid.forward(bootstrap, kSsgProviderId, join_id, w.take());
  hg::BufReader r(resp);
  GroupView view;
  get(r, view);
  return std::unique_ptr<Member>(new Member(mid, std::move(view)));
}

// ---------------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------------

Observer::Observer(margo::Instance& mid)
    : mid_(mid), get_view_id_(mid.register_client_rpc(kGetViewRpc)) {}

GroupView Observer::observe(ofi::EpAddr member, const std::string& name) {
  const auto resp =
      mid_.forward(member, kSsgProviderId, get_view_id_, hg::encode(name));
  hg::BufReader r(resp);
  bool known = false;
  hg::get(r, known);
  GroupView view;
  get(r, view);
  if (!known) view.members.clear();
  return view;
}

}  // namespace sym::ssg
