#include "services/remi/remi.hpp"

namespace sym::remi {
namespace {

constexpr const char* kMigrateRpc = "remi_migrate_rpc";
constexpr const char* kReceiveRpc = "remi_receive_rpc";

}  // namespace

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

Provider::Provider(margo::Instance& mid, std::uint16_t provider_id,
                   sdskv::Provider& local_kv,
                   std::uint16_t local_kv_provider_id)
    : mid_(mid),
      provider_id_(provider_id),
      local_kv_(local_kv),
      local_kv_provider_id_(local_kv_provider_id),
      kv_client_(std::make_unique<sdskv::Client>(mid)) {
  mid_.register_rpc(kMigrateRpc, provider_id_,
                    [this](margo::Request& r) { handle_migrate(r); });
  receive_id_ =
      mid_.register_rpc(kReceiveRpc, provider_id_,
                        [this](margo::Request& r) { handle_receive(r); });
}

void Provider::handle_migrate(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t src_db = 0, dst_db = 0;
  ofi::EpAddr destination = ofi::kInvalidAddr;
  std::uint16_t destination_provider = 0;
  bool erase_source = false;
  hg::get(r, src_db);
  hg::get(r, destination);
  hg::get(r, destination_provider);
  hg::get(r, dst_db);
  hg::get(r, erase_source);
  ++migrations_;

  hg::BufWriter out;
  if (src_db >= local_kv_.db_count()) {
    hg::put(out, static_cast<std::uint8_t>(Status::kBadDb));
    hg::put(out, std::uint32_t{0});
    hg::put(out, std::uint64_t{0});
    req.respond(out.take());
    return;
  }

  // Read the whole source database (chunked scans through the backend).
  auto& db = local_kv_.db(src_db);
  std::vector<sdskv::KeyValue> all;
  std::string cursor;
  while (true) {
    auto chunk = db.list_keyvals(cursor, 256);
    if (chunk.empty()) break;
    cursor = chunk.back().first;
    for (auto& kv : chunk) all.push_back(std::move(kv));
  }
  const std::uint64_t bytes = sdskv::payload_bytes(all);
  const auto items = static_cast<std::uint32_t>(all.size());

  // Ship the fileset to the destination REMI provider: small metadata RPC,
  // content exposed for the destination's bulk pull.
  auto shared =
      std::make_shared<const std::vector<sdskv::KeyValue>>(std::move(all));
  hg::BufWriter w;
  hg::put(w, dst_db);
  hg::put(w, items);
  hg::put(w, bytes);
  auto op = mid_.forward_async(destination, destination_provider, receive_id_,
                               w.take(), shared, bytes);
  const auto resp = op->wait();
  const auto status = static_cast<Status>(hg::decode<std::uint8_t>(resp));

  if (status == Status::kOk && erase_source) {
    for (const auto& [k, v] : *shared) db.erase(k);
  }

  hg::put(out, static_cast<std::uint8_t>(status));
  hg::put(out, items);
  hg::put(out, bytes);
  req.respond(out.take());
}

void Provider::handle_receive(margo::Request& req) {
  auto r = req.reader();
  std::uint32_t dst_db = 0, items = 0;
  std::uint64_t bytes = 0;
  hg::get(r, dst_db);
  hg::get(r, items);
  hg::get(r, bytes);
  ++receives_;

  if (dst_db >= local_kv_.db_count()) {
    req.respond_value(static_cast<std::uint8_t>(Status::kBadDb));
    return;
  }

  // Pull the fileset content through the bulk interface...
  req.bulk_pull(bytes);
  const auto* kvs =
      req.handle()->attached<std::vector<sdskv::KeyValue>>();
  if (kvs == nullptr) {
    req.respond_value(static_cast<std::uint8_t>(Status::kTransferFailed));
    return;
  }
  // ...and load it into the local SDSKV database through the RPC stack
  // (self-addressed put_packed), extending the distributed callpath to
  // depth 3 for the end client.
  const auto status = kv_client_->put_packed(mid_.addr(),
                                             local_kv_provider_id_, dst_db,
                                             *kvs);
  req.respond_value(static_cast<std::uint8_t>(
      status == sdskv::Status::kOk ? Status::kOk : Status::kTransferFailed));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid)
    : mid_(mid), migrate_id_(mid.register_client_rpc(kMigrateRpc)) {
  mid.register_client_rpc(kReceiveRpc);
}

MigrationResult Client::migrate(ofi::EpAddr source,
                                std::uint16_t source_provider,
                                std::uint32_t src_db, ofi::EpAddr destination,
                                std::uint16_t destination_provider,
                                std::uint32_t dst_db, bool erase_source) {
  hg::BufWriter w;
  hg::put(w, src_db);
  hg::put(w, destination);
  hg::put(w, destination_provider);
  hg::put(w, dst_db);
  hg::put(w, erase_source);
  const auto resp = mid_.forward(source, source_provider, migrate_id_,
                                 w.take());
  hg::BufReader r(resp);
  MigrationResult result;
  std::uint8_t status = 0;
  hg::get(r, status);
  hg::get(r, result.items);
  hg::get(r, result.bytes);
  result.status = static_cast<Status>(status);
  return result;
}

}  // namespace sym::remi
