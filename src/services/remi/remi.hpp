// services/remi/remi.hpp
//
// REMI: the Mochi microservice "to enable the shifting of data between
// microservice instances" (paper §III-A). A REMI provider attaches next to
// an SDSKV provider on the same process; migrating a database moves its
// key-value content from a source process to a destination process:
//
//   client --remi_migrate_rpc--> source REMI
//     source reads the local database and
//     --remi_receive_rpc--> destination REMI (content via bulk)
//       destination loads the pairs into its local SDSKV database
//         via sdskv_put_packed_rpc to itself
//
// which produces depth-3 distributed callpaths
// (remi_migrate_rpc => remi_receive_rpc => sdskv_put_packed_rpc) — a good
// exercise of the breadcrumb encoding's multi-level capability.
#pragma once

#include <cstdint>
#include <memory>

#include "margolite/instance.hpp"
#include "services/sdskv/sdskv.hpp"

namespace sym::remi {

enum class Status : std::uint8_t {
  kOk = 0,
  kBadDb = 1,
  kTransferFailed = 2,
};

struct MigrationResult {
  Status status = Status::kOk;
  std::uint32_t items = 0;
  std::uint64_t bytes = 0;
};

/// REMI provider colocated with an SDSKV provider on one margolite
/// instance; serves both the source (migrate) and destination (receive)
/// roles.
class Provider {
 public:
  Provider(margo::Instance& mid, std::uint16_t provider_id,
           sdskv::Provider& local_kv, std::uint16_t local_kv_provider_id);
  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  [[nodiscard]] std::uint16_t provider_id() const noexcept {
    return provider_id_;
  }
  [[nodiscard]] std::uint64_t migrations_served() const noexcept {
    return migrations_;
  }
  [[nodiscard]] std::uint64_t receives_served() const noexcept {
    return receives_;
  }

 private:
  void handle_migrate(margo::Request& req);
  void handle_receive(margo::Request& req);

  margo::Instance& mid_;
  std::uint16_t provider_id_;
  sdskv::Provider& local_kv_;
  std::uint16_t local_kv_provider_id_;
  std::unique_ptr<sdskv::Client> kv_client_;
  hg::RpcId receive_id_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t receives_ = 0;
};

/// Client-side API: ask a source REMI provider to migrate one of its
/// databases to a destination REMI provider.
class Client {
 public:
  explicit Client(margo::Instance& mid);

  /// Migrate database `src_db` of the SDSKV provider next to `source` into
  /// database `dst_db` of the SDSKV provider next to `destination`.
  /// `erase_source` removes the migrated pairs from the source afterwards
  /// (move semantics vs copy semantics).
  MigrationResult migrate(ofi::EpAddr source, std::uint16_t source_provider,
                          std::uint32_t src_db, ofi::EpAddr destination,
                          std::uint16_t destination_provider,
                          std::uint32_t dst_db, bool erase_source = true);

 private:
  margo::Instance& mid_;
  hg::RpcId migrate_id_;
};

}  // namespace sym::remi
