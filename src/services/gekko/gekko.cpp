#include "services/gekko/gekko.hpp"

#include <algorithm>
#include <cstring>

#include "argolite/runtime.hpp"
#include "simkit/rng.hpp"

namespace sym::gekko {
namespace {

constexpr const char* kCreateRpc = "gkfs_create_rpc";
constexpr const char* kStatRpc = "gkfs_stat_rpc";
constexpr const char* kWriteChunkRpc = "gkfs_write_chunk_rpc";
constexpr const char* kReadChunkRpc = "gkfs_read_chunk_rpc";
constexpr const char* kUpdateSizeRpc = "gkfs_update_size_rpc";
constexpr const char* kRemoveRpc = "gkfs_remove_rpc";
constexpr const char* kReaddirRpc = "gkfs_readdir_rpc";

// Metadata operation CPU cost.
constexpr sim::DurationNs kMetaOpCost = sim::nsec(900);
// Chunk staging copy cost (ns/byte) before the device write.
constexpr double kStageNsPerByte = 0.05;

std::uint64_t path_hash(const std::string& path) {
  return sim::fnv1a64(path.data(), path.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

Daemon::Daemon(margo::Instance& mid, std::uint16_t provider_id)
    : mid_(mid), provider_id_(provider_id), device_(mid.engine()) {
  mid_.register_rpc(kCreateRpc, provider_id_,
                    [this](margo::Request& r) { handle_create(r); });
  mid_.register_rpc(kStatRpc, provider_id_,
                    [this](margo::Request& r) { handle_stat(r); });
  mid_.register_rpc(kWriteChunkRpc, provider_id_,
                    [this](margo::Request& r) { handle_write_chunk(r); });
  mid_.register_rpc(kReadChunkRpc, provider_id_,
                    [this](margo::Request& r) { handle_read_chunk(r); });
  mid_.register_rpc(kUpdateSizeRpc, provider_id_,
                    [this](margo::Request& r) { handle_update_size(r); });
  mid_.register_rpc(kRemoveRpc, provider_id_,
                    [this](margo::Request& r) { handle_remove(r); });
  mid_.register_rpc(kReaddirRpc, provider_id_,
                    [this](margo::Request& r) { handle_readdir(r); });
}

void Daemon::handle_create(margo::Request& req) {
  auto r = req.reader();
  std::string path;
  hg::get(r, path);
  abt::compute(kMetaOpCost);
  const bool inserted = metadata_.emplace(path, 0).second;
  if (inserted) mid_.process().add_rss(static_cast<std::int64_t>(path.size()));
  req.respond_value(
      static_cast<std::uint8_t>(inserted ? Status::kOk : Status::kExists));
}

void Daemon::handle_stat(margo::Request& req) {
  auto r = req.reader();
  std::string path;
  hg::get(r, path);
  abt::compute(kMetaOpCost);
  hg::BufWriter w;
  auto it = metadata_.find(path);
  hg::put(w, it != metadata_.end());
  hg::put(w, it != metadata_.end() ? it->second : std::uint64_t{0});
  req.respond(w.take());
}

void Daemon::handle_write_chunk(margo::Request& req) {
  auto r = req.reader();
  std::string path;
  std::uint64_t chunk = 0, offset_in_chunk = 0, bytes = 0;
  hg::get(r, path);
  hg::get(r, chunk);
  hg::get(r, offset_in_chunk);
  hg::get(r, bytes);

  // Pull the chunk payload from the client, stage it, persist it.
  req.bulk_pull(bytes);
  abt::compute(static_cast<sim::DurationNs>(
      static_cast<double>(bytes) * kStageNsPerByte));
  auto& store = chunks_[{path, chunk}];
  if (store.size() < offset_in_chunk + bytes) {
    mid_.process().add_rss(static_cast<std::int64_t>(
        offset_in_chunk + bytes - store.size()));
    store.resize(offset_in_chunk + bytes);
  }
  const auto* payload = req.handle()->attached<std::vector<std::byte>>();
  if (payload != nullptr && !payload->empty()) {
    std::memcpy(store.data() + offset_in_chunk, payload->data(),
                std::min<std::size_t>(payload->size(), bytes));
  }
  device_.write(bytes);
  req.respond_value(bytes);
}

void Daemon::handle_read_chunk(margo::Request& req) {
  auto r = req.reader();
  std::string path;
  std::uint64_t chunk = 0, offset_in_chunk = 0, len = 0;
  hg::get(r, path);
  hg::get(r, chunk);
  hg::get(r, offset_in_chunk);
  hg::get(r, len);
  hg::BufWriter w;
  auto it = chunks_.find({path, chunk});
  if (it == chunks_.end() || offset_in_chunk >= it->second.size()) {
    hg::put(w, std::uint32_t{0});
    req.respond(w.take());
    return;
  }
  const auto n = std::min<std::uint64_t>(len,
                                         it->second.size() - offset_in_chunk);
  hg::put(w, static_cast<std::uint32_t>(n));
  w.write_raw(it->second.data() + offset_in_chunk, n);
  req.respond(w.take());
}

void Daemon::handle_update_size(margo::Request& req) {
  auto r = req.reader();
  std::string path;
  std::uint64_t size = 0;
  hg::get(r, path);
  hg::get(r, size);
  abt::compute(kMetaOpCost);
  auto it = metadata_.find(path);
  if (it == metadata_.end()) {
    req.respond_value(static_cast<std::uint8_t>(Status::kNotFound));
    return;
  }
  it->second = std::max(it->second, size);  // grow-only size merge
  req.respond_value(static_cast<std::uint8_t>(Status::kOk));
}

void Daemon::handle_remove(margo::Request& req) {
  auto r = req.reader();
  std::string path;
  hg::get(r, path);
  abt::compute(kMetaOpCost);
  const bool existed = metadata_.erase(path) > 0;
  // Drop any chunks of this path that live here.
  for (auto it = chunks_.lower_bound({path, 0});
       it != chunks_.end() && it->first.first == path;) {
    mid_.process().add_rss(-static_cast<std::int64_t>(it->second.size()));
    it = chunks_.erase(it);
  }
  req.respond_value(
      static_cast<std::uint8_t>(existed ? Status::kOk : Status::kNotFound));
}

void Daemon::handle_readdir(margo::Request& req) {
  auto r = req.reader();
  std::string prefix;
  hg::get(r, prefix);
  std::vector<std::string> names;
  for (auto it = metadata_.lower_bound(prefix);
       it != metadata_.end() && it->first.rfind(prefix, 0) == 0; ++it) {
    names.push_back(it->first);
  }
  abt::compute(kMetaOpCost + sim::nsec(150) * names.size());
  req.respond_value(names);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid, std::vector<ofi::EpAddr> daemons,
               std::uint16_t provider_id)
    : mid_(mid),
      daemons_(std::move(daemons)),
      provider_id_(provider_id),
      create_id_(mid.register_client_rpc(kCreateRpc)),
      stat_id_(mid.register_client_rpc(kStatRpc)),
      write_id_(mid.register_client_rpc(kWriteChunkRpc)),
      read_id_(mid.register_client_rpc(kReadChunkRpc)),
      size_id_(mid.register_client_rpc(kUpdateSizeRpc)),
      remove_id_(mid.register_client_rpc(kRemoveRpc)),
      readdir_id_(mid.register_client_rpc(kReaddirRpc)) {}

ofi::EpAddr Client::meta_daemon(const std::string& path) const {
  return daemons_[path_hash(path) % daemons_.size()];
}

ofi::EpAddr Client::chunk_daemon(const std::string& path,
                                 std::uint64_t chunk) const {
  return daemons_[(path_hash(path) ^ (chunk * 0x9E3779B97F4A7C15ULL)) %
                  daemons_.size()];
}

Status Client::create(const std::string& path) {
  return static_cast<Status>(hg::decode<std::uint8_t>(mid_.forward(
      meta_daemon(path), provider_id_, create_id_, hg::encode(path))));
}

FileStatus Client::stat(const std::string& path) {
  const auto resp = mid_.forward(meta_daemon(path), provider_id_, stat_id_,
                                 hg::encode(path));
  hg::BufReader r(resp);
  FileStatus st;
  hg::get(r, st.exists);
  hg::get(r, st.size);
  return st;
}

std::uint64_t Client::write(const std::string& path, std::uint64_t offset,
                            std::vector<std::byte> data) {
  if (!stat(path).exists || data.empty()) return 0;
  const std::uint64_t total = data.size();
  auto shared =
      std::make_shared<const std::vector<std::byte>>(std::move(data));

  // Fan out one RPC per touched chunk, all concurrent.
  std::vector<margo::PendingOpPtr> ops;
  std::uint64_t pos = 0;
  while (pos < total) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk = abs / kChunkSize;
    const std::uint64_t in_chunk = abs % kChunkSize;
    const std::uint64_t n = std::min(kChunkSize - in_chunk, total - pos);
    // The attachment carries the slice's content for the daemon to copy.
    auto slice = std::make_shared<const std::vector<std::byte>>(
        shared->begin() + static_cast<std::ptrdiff_t>(pos),
        shared->begin() + static_cast<std::ptrdiff_t>(pos + n));
    hg::BufWriter w;
    hg::put(w, path);
    hg::put(w, chunk);
    hg::put(w, in_chunk);
    hg::put(w, n);
    ops.push_back(mid_.forward_async(chunk_daemon(path, chunk), provider_id_,
                                     write_id_, w.take(), slice, n));
    pos += n;
  }
  std::uint64_t written = 0;
  for (auto& op : ops) {
    written += hg::decode<std::uint64_t>(op->wait());
  }
  // Grow the size entry on the metadata holder.
  hg::BufWriter w;
  hg::put(w, path);
  hg::put(w, offset + total);
  mid_.forward(meta_daemon(path), provider_id_, size_id_, w.take());
  return written;
}

std::vector<std::byte> Client::read(const std::string& path,
                                    std::uint64_t offset, std::uint64_t len) {
  std::vector<std::byte> out;
  const auto st = stat(path);
  if (!st.exists || offset >= st.size) return out;
  len = std::min(len, st.size - offset);
  out.resize(len);

  struct Piece {
    margo::PendingOpPtr op;
    std::uint64_t out_pos;
  };
  std::vector<Piece> pieces;
  std::uint64_t pos = 0;
  while (pos < len) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk = abs / kChunkSize;
    const std::uint64_t in_chunk = abs % kChunkSize;
    const std::uint64_t n = std::min(kChunkSize - in_chunk, len - pos);
    hg::BufWriter w;
    hg::put(w, path);
    hg::put(w, chunk);
    hg::put(w, in_chunk);
    hg::put(w, n);
    pieces.push_back({mid_.forward_async(chunk_daemon(path, chunk),
                                         provider_id_, read_id_, w.take()),
                      pos});
    pos += n;
  }
  for (auto& piece : pieces) {
    const auto& resp = piece.op->wait();
    hg::BufReader r(resp);
    std::uint32_t n = 0;
    hg::get(r, n);
    if (n > 0) r.read_raw(out.data() + piece.out_pos, n);
  }
  return out;
}

Status Client::remove(const std::string& path) {
  // Relaxed removal: drop the metadata entry, then sweep every daemon for
  // chunks (data and metadata may live on different daemons).
  const auto status = static_cast<Status>(hg::decode<std::uint8_t>(
      mid_.forward(meta_daemon(path), provider_id_, remove_id_,
                   hg::encode(path))));
  for (const auto d : daemons_) {
    if (d == meta_daemon(path)) continue;
    mid_.forward(d, provider_id_, remove_id_, hg::encode(path));
  }
  return status;
}

std::vector<std::string> Client::readdir(const std::string& dir_prefix) {
  std::vector<margo::PendingOpPtr> ops;
  ops.reserve(daemons_.size());
  for (const auto d : daemons_) {
    ops.push_back(mid_.forward_async(d, provider_id_, readdir_id_,
                                     hg::encode(dir_prefix)));
  }
  std::vector<std::string> names;
  for (auto& op : ops) {
    auto part = hg::decode<std::vector<std::string>>(op->wait());
    names.insert(names.end(), part.begin(), part.end());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sym::gekko
