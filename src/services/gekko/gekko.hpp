// services/gekko/gekko.hpp
//
// GekkoFS-lite: "a scalable POSIX-like filesystem with relaxed semantics"
// (paper §I) — one of the data services enabled by the Mochi ecosystem that
// the performance framework is expected to support. This implementation
// keeps GekkoFS's defining design points:
//
//  * fully decentralized: no dedicated metadata server — metadata entries
//    are hash-distributed across all daemons by path, file data is chunked
//    and each chunk hash-distributed by (path, chunk index);
//  * relaxed semantics: no atomic rename, no directory entries proper —
//    readdir is a prefix scan over every daemon's metadata store;
//  * chunked parallel I/O: a client write fans out one RPC per touched
//    chunk, issued concurrently.
//
// RPCs: gkfs_create_rpc, gkfs_stat_rpc, gkfs_write_chunk_rpc (bulk),
//       gkfs_read_chunk_rpc, gkfs_update_size_rpc, gkfs_remove_rpc,
//       gkfs_readdir_rpc.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "margolite/instance.hpp"
#include "services/bake/bake.hpp"  // StorageDevice

namespace sym::gekko {

/// Chunk size: GekkoFS's default data distribution granularity.
inline constexpr std::uint64_t kChunkSize = 512 * 1024;

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kExists = 2,
};

struct FileStatus {
  bool exists = false;
  std::uint64_t size = 0;
};

/// One GekkoFS daemon: holds the metadata entries and data chunks that hash
/// to it, persisting chunk writes on a local device model.
class Daemon {
 public:
  Daemon(margo::Instance& mid, std::uint16_t provider_id);
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] std::size_t metadata_entries() const noexcept {
    return metadata_.size();
  }
  [[nodiscard]] std::size_t chunks_stored() const noexcept {
    return chunks_.size();
  }
  [[nodiscard]] bake::StorageDevice& device() noexcept { return device_; }

 private:
  void handle_create(margo::Request& req);
  void handle_stat(margo::Request& req);
  void handle_write_chunk(margo::Request& req);
  void handle_read_chunk(margo::Request& req);
  void handle_update_size(margo::Request& req);
  void handle_remove(margo::Request& req);
  void handle_readdir(margo::Request& req);

  margo::Instance& mid_;
  std::uint16_t provider_id_;
  bake::StorageDevice device_;
  std::map<std::string, std::uint64_t> metadata_;  // path -> size
  std::map<std::pair<std::string, std::uint64_t>, std::vector<std::byte>>
      chunks_;
};

/// Client-side file API over a set of daemons.
class Client {
 public:
  Client(margo::Instance& mid, std::vector<ofi::EpAddr> daemons,
         std::uint16_t provider_id);

  /// Create an (empty) file; kExists if already present.
  Status create(const std::string& path);

  [[nodiscard]] FileStatus stat(const std::string& path);

  /// Write `data` at `offset`: fans out one bulk RPC per touched chunk, all
  /// concurrent, then updates the size entry if the file grew. Returns
  /// bytes written (0 if the file does not exist).
  std::uint64_t write(const std::string& path, std::uint64_t offset,
                      std::vector<std::byte> data);

  /// Read up to `len` bytes at `offset` (parallel chunk reads).
  std::vector<std::byte> read(const std::string& path, std::uint64_t offset,
                              std::uint64_t len);

  Status remove(const std::string& path);

  /// Relaxed readdir: names with prefix `dir_prefix`, merged from every
  /// daemon, sorted.
  std::vector<std::string> readdir(const std::string& dir_prefix);

  [[nodiscard]] std::size_t daemon_count() const noexcept {
    return daemons_.size();
  }

 private:
  [[nodiscard]] ofi::EpAddr meta_daemon(const std::string& path) const;
  [[nodiscard]] ofi::EpAddr chunk_daemon(const std::string& path,
                                         std::uint64_t chunk) const;

  margo::Instance& mid_;
  std::vector<ofi::EpAddr> daemons_;
  std::uint16_t provider_id_;
  hg::RpcId create_id_, stat_id_, write_id_, read_id_, size_id_, remove_id_,
      readdir_id_;
};

}  // namespace sym::gekko
