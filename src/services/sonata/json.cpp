#include "services/sonata/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sym::json {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const Value* Value::find_path(const std::string& path) const {
  const Value* cur = this;
  std::size_t i = 0;
  while (i < path.size() && cur != nullptr) {
    if (path[i] == '[') {
      const std::size_t close = path.find(']', i);
      if (close == std::string::npos) return nullptr;
      const long idx = std::strtol(path.c_str() + i + 1, nullptr, 10);
      if (!cur->is_array() || idx < 0 ||
          static_cast<std::size_t>(idx) >= cur->as_array().size()) {
        return nullptr;
      }
      cur = &cur->as_array()[static_cast<std::size_t>(idx)];
      i = close + 1;
      if (i < path.size() && path[i] == '.') ++i;
    } else {
      std::size_t end = i;
      while (end < path.size() && path[end] != '.' && path[end] != '[') ++end;
      cur = cur->find(path.substr(i, end - i));
      i = end;
      if (i < path.size() && path[i] == '.') ++i;
    }
  }
  return cur;
}

bool Value::operator==(const Value& o) const {
  if (is_number() && o.is_number()) {
    // 1 == 1.0 for query friendliness.
    return as_number() == o.as_number();
  }
  return v_ == o.v_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const char* what) const {
    throw ParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= s_.size()) throw ParseError("unexpected end", pos_);
    return s_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail("unexpected character");
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected member name");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(obj));
  }

  Value parse_array(int depth) {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > s_.size()) fail("bad \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit");
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs folded to U+FFFD).
    std::string out;
    if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid inside exponents; strtod validates.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      fail("bad number");
    }
    const std::string token = s_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value(static_cast<std::int64_t>(v));
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return Value(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_impl(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  std::visit(
      [&](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::nullptr_t>) {
          out += "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          out += x ? "true" : "false";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          out += std::to_string(x);
        } else if constexpr (std::is_same_v<T, double>) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.17g", x);
          out += buf;
        } else if constexpr (std::is_same_v<T, std::string>) {
          dump_string(out, x);
        } else if constexpr (std::is_same_v<T, Array>) {
          out += '[';
          bool first = true;
          for (const auto& e : x) {
            if (!first) out += ',';
            first = false;
            newline(depth + 1);
            dump_impl(out, e, indent, depth + 1);
          }
          if (!x.empty()) newline(depth);
          out += ']';
        } else if constexpr (std::is_same_v<T, Object>) {
          out += '{';
          bool first = true;
          for (const auto& [k, e] : x) {
            if (!first) out += ',';
            first = false;
            newline(depth + 1);
            dump_string(out, k);
            out += pretty ? ": " : ":";
            dump_impl(out, e, indent, depth + 1);
          }
          if (!x.empty()) newline(depth);
          out += '}';
        }
      },
      v.storage());
}

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string dump(const Value& v) {
  std::string out;
  dump_impl(out, v, -1, 0);
  return out;
}

std::string dump_pretty(const Value& v) {
  std::string out;
  dump_impl(out, v, 2, 0);
  return out;
}

}  // namespace sym::json
