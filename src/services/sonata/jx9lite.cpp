#include "services/sonata/jx9lite.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <variant>

namespace sym::jx9 {

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

namespace {

enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

struct Operand {
  bool is_path = false;
  std::string path;     // when is_path
  json::Value literal;  // otherwise

  [[nodiscard]] const json::Value* resolve(const json::Value& rec) const {
    return is_path ? rec.find_path(path) : &literal;
  }
};

bool compare(const json::Value* a, const json::Value* b, Op op) {
  if (a == nullptr || b == nullptr) {
    // Missing fields compare unequal to everything (and not-unequal fails
    // too, except !=, which is true when exactly one side is missing).
    if (op == Op::kNe) return (a == nullptr) != (b == nullptr);
    return false;
  }
  switch (op) {
    case Op::kEq: return *a == *b;
    case Op::kNe: return !(*a == *b);
    default: break;
  }
  // Ordering: numbers by value, strings lexicographically.
  if (a->is_number() && b->is_number()) {
    const double x = a->as_number();
    const double y = b->as_number();
    switch (op) {
      case Op::kLt: return x < y;
      case Op::kLe: return x <= y;
      case Op::kGt: return x > y;
      case Op::kGe: return x >= y;
      default: return false;
    }
  }
  if (a->is_string() && b->is_string()) {
    const int c = a->as_string().compare(b->as_string());
    switch (op) {
      case Op::kLt: return c < 0;
      case Op::kLe: return c <= 0;
      case Op::kGt: return c > 0;
      case Op::kGe: return c >= 0;
      default: return false;
    }
  }
  return false;
}

bool truthy(const json::Value* v) {
  if (v == nullptr || v->is_null()) return false;
  if (v->is_bool()) return v->as_bool();
  if (v->is_number()) return v->as_number() != 0;
  if (v->is_string()) return !v->as_string().empty();
  if (v->is_array()) return !v->as_array().empty();
  return !v->as_object().empty();
}

}  // namespace

class ExprImpl {
 public:
  enum class Kind { kAnd, kOr, kNot, kExists, kCompare, kTruthy };

  Kind kind{};
  std::unique_ptr<ExprImpl> lhs, rhs;  // kAnd/kOr; kNot uses lhs
  Operand a, b;                        // kCompare / kTruthy(a) / kExists(a)
  Op op{};

  [[nodiscard]] bool eval(const json::Value& rec) const {
    switch (kind) {
      case Kind::kAnd: return lhs->eval(rec) && rhs->eval(rec);
      case Kind::kOr: return lhs->eval(rec) || rhs->eval(rec);
      case Kind::kNot: return !lhs->eval(rec);
      case Kind::kExists: return rec.find_path(a.path) != nullptr;
      case Kind::kCompare: return compare(a.resolve(rec), b.resolve(rec), op);
      case Kind::kTruthy: return truthy(a.resolve(rec));
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class FilterParser {
 public:
  explicit FilterParser(const std::string& src) : s_(src) {}

  std::unique_ptr<ExprImpl> parse() {
    auto e = parse_or();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return e;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("jx9lite: ") + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(const char* token) {
    skip_ws();
    std::size_t n = 0;
    while (token[n] != '\0') ++n;
    if (s_.compare(pos_, n, token) != 0) return false;
    pos_ += n;
    return true;
  }

  std::unique_ptr<ExprImpl> parse_or() {
    auto lhs = parse_and();
    while (consume("||")) {
      auto node = std::make_unique<ExprImpl>();
      node->kind = ExprImpl::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = parse_and();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<ExprImpl> parse_and() {
    auto lhs = parse_unary();
    while (consume("&&")) {
      auto node = std::make_unique<ExprImpl>();
      node->kind = ExprImpl::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = parse_unary();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<ExprImpl> parse_unary() {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '!' &&
        (pos_ + 1 >= s_.size() || s_[pos_ + 1] != '=')) {
      ++pos_;
      auto node = std::make_unique<ExprImpl>();
      node->kind = ExprImpl::Kind::kNot;
      node->lhs = parse_unary();
      return node;
    }
    return parse_primary();
  }

  std::unique_ptr<ExprImpl> parse_primary() {
    skip_ws();
    if (consume("(")) {
      auto e = parse_or();
      if (!consume(")")) fail("expected ')'");
      return e;
    }
    if (consume("exists")) {
      if (!consume("(")) fail("expected '(' after exists");
      auto node = std::make_unique<ExprImpl>();
      node->kind = ExprImpl::Kind::kExists;
      node->a = parse_path_operand();
      if (!consume(")")) fail("expected ')'");
      return node;
    }
    // comparison or truthiness
    Operand a = parse_operand();
    skip_ws();
    Op op{};
    bool has_op = true;
    if (consume("==")) op = Op::kEq;
    else if (consume("!=")) op = Op::kNe;
    else if (consume("<=")) op = Op::kLe;
    else if (consume(">=")) op = Op::kGe;
    else if (consume("<")) op = Op::kLt;
    else if (consume(">")) op = Op::kGt;
    else has_op = false;

    auto node = std::make_unique<ExprImpl>();
    if (has_op) {
      node->kind = ExprImpl::Kind::kCompare;
      node->a = std::move(a);
      node->op = op;
      node->b = parse_operand();
    } else {
      node->kind = ExprImpl::Kind::kTruthy;
      node->a = std::move(a);
    }
    return node;
  }

  Operand parse_path_operand() {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '$') fail("expected path ($...)");
    return parse_operand();
  }

  Operand parse_operand() {
    skip_ws();
    if (pos_ >= s_.size()) fail("expected operand");
    Operand out;
    const char c = s_[pos_];
    if (c == '$') {
      ++pos_;
      out.is_path = true;
      const std::size_t start = pos_;
      while (pos_ < s_.size()) {
        const char pc = s_[pos_];
        if (std::isalnum(static_cast<unsigned char>(pc)) != 0 || pc == '_' ||
            pc == '.' || pc == '[' || pc == ']') {
          ++pos_;
        } else {
          break;
        }
      }
      out.path = s_.substr(start, pos_ - start);
      if (out.path.empty()) fail("empty path");
      return out;
    }
    if (c == '"') {
      ++pos_;
      std::string lit;
      while (pos_ < s_.size() && s_[pos_] != '"') {
        if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
        lit += s_[pos_++];
      }
      if (pos_ >= s_.size()) fail("unterminated string literal");
      ++pos_;
      out.literal = json::Value(std::move(lit));
      return out;
    }
    if (consume("true")) {
      out.literal = json::Value(true);
      return out;
    }
    if (consume("false")) {
      out.literal = json::Value(false);
      return out;
    }
    if (consume("null")) {
      out.literal = json::Value(nullptr);
      return out;
    }
    // number
    const std::size_t start = pos_;
    if (s_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size()) {
      const char nc = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(nc)) != 0) ++pos_;
      else if (nc == '.' || nc == 'e' || nc == 'E') {
        is_double = true;
        ++pos_;
      } else if ((nc == '+' || nc == '-') && is_double) {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected operand");
    const std::string token = s_.substr(start, pos_ - start);
    if (is_double) {
      out.literal = json::Value(std::strtod(token.c_str(), nullptr));
    } else {
      out.literal = json::Value(
          static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    }
    return out;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

Filter::Filter(std::string source, std::unique_ptr<ExprImpl> root)
    : source_(std::move(source)), root_(std::move(root)) {}

Filter::Filter(Filter&&) noexcept = default;
Filter& Filter::operator=(Filter&&) noexcept = default;
Filter::~Filter() = default;

Filter Filter::compile(const std::string& source) {
  return Filter(source, FilterParser(source).parse());
}

bool Filter::matches(const json::Value& record) const {
  return root_->eval(record);
}

}  // namespace sym::jx9
