// services/sonata/jx9lite.hpp
//
// A small filter-expression language standing in for UnQLite's Jx9 scripts:
// Sonata's defining capability is running queries *in place* on stored JSON
// documents. Expressions are compiled once and evaluated per record.
//
// Grammar:
//   expr    := or
//   or      := and ( '||' and )*
//   and     := unary ( '&&' unary )*
//   unary   := '!' unary | primary
//   primary := '(' expr ')' | 'exists' '(' path ')' | cmp
//   cmp     := operand ( '==' | '!=' | '<' | '<=' | '>' | '>=' ) operand
//            | operand                      (truthiness)
//   operand := path | number | string | 'true' | 'false' | 'null'
//   path    := '$' ident ( '.' ident | '[' int ']' )*
//
// Example: "$pt > 40.0 && $detector == \"EMCAL\" && exists($vertex.z)"
#pragma once

#include <memory>
#include <string>

#include "services/sonata/json.hpp"

namespace sym::jx9 {

class ExprImpl;

/// A compiled filter expression.
class Filter {
 public:
  /// Compile `source`; throws std::runtime_error on syntax errors.
  static Filter compile(const std::string& source);

  Filter(Filter&&) noexcept;
  Filter& operator=(Filter&&) noexcept;
  ~Filter();

  /// Evaluate against one JSON record.
  [[nodiscard]] bool matches(const json::Value& record) const;

  [[nodiscard]] const std::string& source() const noexcept { return source_; }

 private:
  explicit Filter(std::string source, std::unique_ptr<ExprImpl> root);
  std::string source_;
  std::unique_ptr<ExprImpl> root_;
};

}  // namespace sym::jx9
