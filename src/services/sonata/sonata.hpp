// services/sonata/sonata.hpp
//
// Sonata: the Mochi microservice for remotely storing and querying JSON
// documents, backed by an UnQLite-model embedded database (single-writer,
// in-place Jx9-style queries). Unlike BAKE (blobs via bulk RDMA) and SDSKV
// (small pairs), Sonata ships whole JSON documents as *RPC metadata* — so
// large store_multi batches overflow Mercury's eager buffer and take the
// internal-RDMA path, which is exactly the behaviour dissected in the
// paper's Fig. 7 case study.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "argolite/sync.hpp"
#include "margolite/instance.hpp"
#include "services/sonata/json.hpp"
#include "services/sonata/jx9lite.hpp"

namespace sym::sonata {

enum class Status : std::uint8_t {
  kOk = 0,
  kNoCollection = 1,
  kBadJson = 2,
  kBadFilter = 3,
  kNotFound = 4,
};

/// UnQLite-model document store: named collections of JSON records with a
/// database-wide single-writer lock.
class UnqliteSim {
 public:
  explicit UnqliteSim(sim::Process& process) : process_(process) {}

  bool create_collection(const std::string& name);
  [[nodiscard]] bool has_collection(const std::string& name) const {
    return collections_.count(name) != 0;
  }

  /// Store a parsed record; returns its id. Charges insert cost; callers
  /// hold no lock (the store takes the writer lock internally).
  std::uint64_t store(const std::string& collection, json::Value record);

  [[nodiscard]] const json::Value* fetch(const std::string& collection,
                                         std::uint64_t id) const;
  [[nodiscard]] std::size_t size(const std::string& collection) const;

  /// Run a compiled filter over a collection (charges per-record eval cost).
  std::vector<const json::Value*> filter(const std::string& collection,
                                         const jx9::Filter& f);

  [[nodiscard]] std::size_t write_lock_waiters() const noexcept {
    return write_lock_.waiters();
  }

 private:
  sim::Process& process_;
  std::map<std::string, std::vector<json::Value>> collections_;
  abt::Mutex write_lock_;
};

class Provider {
 public:
  Provider(margo::Instance& mid, std::uint16_t provider_id);
  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  [[nodiscard]] UnqliteSim& db() noexcept { return db_; }
  [[nodiscard]] std::uint16_t provider_id() const noexcept {
    return provider_id_;
  }

 private:
  void handle_create_collection(margo::Request& req);
  void handle_store(margo::Request& req);
  void handle_store_multi(margo::Request& req);
  void handle_fetch(margo::Request& req);
  void handle_filter(margo::Request& req);
  void handle_size(margo::Request& req);

  margo::Instance& mid_;
  std::uint16_t provider_id_;
  UnqliteSim db_;
};

class Client {
 public:
  explicit Client(margo::Instance& mid);

  Status create_collection(ofi::EpAddr target, std::uint16_t provider,
                           const std::string& name);

  /// Store one document (JSON text travels as RPC metadata).
  Status store(ofi::EpAddr target, std::uint16_t provider,
               const std::string& collection, const std::string& json_text,
               std::uint64_t* id = nullptr);

  /// Store a batch of documents encoded as one JSON array. This is the
  /// `sonata_store_multi_json` call of the Fig. 7 benchmark.
  Status store_multi(ofi::EpAddr target, std::uint16_t provider,
                     const std::string& collection,
                     const std::string& json_array_text,
                     std::uint32_t* stored = nullptr);

  Status fetch(ofi::EpAddr target, std::uint16_t provider,
               const std::string& collection, std::uint64_t id,
               std::string* json_text);

  /// Execute a jx9lite filter server-side; returns matching documents.
  Status filter(ofi::EpAddr target, std::uint16_t provider,
                const std::string& collection, const std::string& filter_src,
                std::vector<std::string>* matches);

  std::uint64_t size(ofi::EpAddr target, std::uint16_t provider,
                     const std::string& collection);

 private:
  margo::Instance& mid_;
  hg::RpcId create_id_, store_id_, store_multi_id_, fetch_id_, filter_id_,
      size_id_;
};

}  // namespace sym::sonata
