#include "services/sonata/sonata.hpp"

#include <cmath>

#include "argolite/runtime.hpp"

namespace sym::sonata {
namespace {

constexpr const char* kCreateRpc = "sonata_create_collection_rpc";
constexpr const char* kStoreRpc = "sonata_store_rpc";
constexpr const char* kStoreMultiRpc = "sonata_store_multi_json";
constexpr const char* kFetchRpc = "sonata_fetch_rpc";
constexpr const char* kFilterRpc = "sonata_exec_filter_rpc";
constexpr const char* kSizeRpc = "sonata_size_rpc";

// Cost model for the UnQLite-sim engine.
constexpr sim::DurationNs kInsertBase = sim::nsec(400);
constexpr double kInsertPerByte = 1.2;     // encode + page write, ns/byte
constexpr double kJsonParsePerByte = 1.0;  // jx9 VM decode, ns/byte
constexpr sim::DurationNs kFilterPerRecord = sim::nsec(600);

/// Approximate in-memory footprint of a parsed record.
std::size_t record_bytes(const json::Value& v) {
  return json::dump(v).size();
}

}  // namespace

// ---------------------------------------------------------------------------
// UnqliteSim
// ---------------------------------------------------------------------------

bool UnqliteSim::create_collection(const std::string& name) {
  abt::LockGuard g(write_lock_);
  return collections_.emplace(name, std::vector<json::Value>{}).second;
}

std::uint64_t UnqliteSim::store(const std::string& collection,
                                json::Value record) {
  abt::LockGuard g(write_lock_);  // UnQLite: one writer at a time
  auto it = collections_.find(collection);
  if (it == collections_.end()) return ~0ULL;
  const auto bytes = record_bytes(record);
  abt::compute(kInsertBase + static_cast<sim::DurationNs>(
                                 std::llround(bytes * kInsertPerByte)));
  process_.add_rss(static_cast<std::int64_t>(bytes));
  it->second.push_back(std::move(record));
  return it->second.size() - 1;
}

const json::Value* UnqliteSim::fetch(const std::string& collection,
                                     std::uint64_t id) const {
  auto it = collections_.find(collection);
  if (it == collections_.end() || id >= it->second.size()) return nullptr;
  return &it->second[id];
}

std::size_t UnqliteSim::size(const std::string& collection) const {
  auto it = collections_.find(collection);
  return it == collections_.end() ? 0 : it->second.size();
}

std::vector<const json::Value*> UnqliteSim::filter(
    const std::string& collection, const jx9::Filter& f) {
  std::vector<const json::Value*> out;
  auto it = collections_.find(collection);
  if (it == collections_.end()) return out;
  abt::compute(kFilterPerRecord * it->second.size());
  for (const auto& rec : it->second) {
    if (f.matches(rec)) out.push_back(&rec);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

Provider::Provider(margo::Instance& mid, std::uint16_t provider_id)
    : mid_(mid), provider_id_(provider_id), db_(mid.process()) {
  mid_.register_rpc(kCreateRpc, provider_id_,
                    [this](margo::Request& r) { handle_create_collection(r); });
  mid_.register_rpc(kStoreRpc, provider_id_,
                    [this](margo::Request& r) { handle_store(r); });
  mid_.register_rpc(kStoreMultiRpc, provider_id_,
                    [this](margo::Request& r) { handle_store_multi(r); });
  mid_.register_rpc(kFetchRpc, provider_id_,
                    [this](margo::Request& r) { handle_fetch(r); });
  mid_.register_rpc(kFilterRpc, provider_id_,
                    [this](margo::Request& r) { handle_filter(r); });
  mid_.register_rpc(kSizeRpc, provider_id_,
                    [this](margo::Request& r) { handle_size(r); });
}

void Provider::handle_create_collection(margo::Request& req) {
  auto r = req.reader();
  std::string name;
  hg::get(r, name);
  db_.create_collection(name);
  req.respond_value(static_cast<std::uint8_t>(Status::kOk));
}

void Provider::handle_store(margo::Request& req) {
  auto r = req.reader();
  std::string collection, text;
  hg::get(r, collection);
  hg::get(r, text);
  hg::BufWriter w;
  if (!db_.has_collection(collection)) {
    hg::put(w, static_cast<std::uint8_t>(Status::kNoCollection));
    hg::put(w, std::uint64_t{0});
    req.respond(w.take());
    return;
  }
  abt::compute(static_cast<sim::DurationNs>(
      std::llround(text.size() * kJsonParsePerByte)));
  try {
    auto record = json::parse(text);
    const auto id = db_.store(collection, std::move(record));
    hg::put(w, static_cast<std::uint8_t>(Status::kOk));
    hg::put(w, id);
  } catch (const json::ParseError&) {
    hg::put(w, static_cast<std::uint8_t>(Status::kBadJson));
    hg::put(w, std::uint64_t{0});
  }
  req.respond(w.take());
}

void Provider::handle_store_multi(margo::Request& req) {
  auto r = req.reader();
  std::string collection, text;
  hg::get(r, collection);
  hg::get(r, text);
  hg::BufWriter w;
  if (!db_.has_collection(collection)) {
    hg::put(w, static_cast<std::uint8_t>(Status::kNoCollection));
    hg::put(w, std::uint32_t{0});
    req.respond(w.take());
    return;
  }
  // Jx9-VM style decode of the record array (real parse + modeled cost).
  abt::compute(static_cast<sim::DurationNs>(
      std::llround(text.size() * kJsonParsePerByte)));
  try {
    auto arr = json::parse(text);
    if (!arr.is_array()) throw json::ParseError("expected array", 0);
    std::uint32_t stored = 0;
    for (auto& rec : arr.as_array()) {
      db_.store(collection, rec);
      ++stored;
    }
    hg::put(w, static_cast<std::uint8_t>(Status::kOk));
    hg::put(w, stored);
  } catch (const json::ParseError&) {
    hg::put(w, static_cast<std::uint8_t>(Status::kBadJson));
    hg::put(w, std::uint32_t{0});
  }
  req.respond(w.take());
}

void Provider::handle_fetch(margo::Request& req) {
  auto r = req.reader();
  std::string collection;
  std::uint64_t id = 0;
  hg::get(r, collection);
  hg::get(r, id);
  hg::BufWriter w;
  const json::Value* rec = db_.fetch(collection, id);
  if (rec == nullptr) {
    hg::put(w, static_cast<std::uint8_t>(Status::kNotFound));
    hg::put(w, std::string());
  } else {
    hg::put(w, static_cast<std::uint8_t>(Status::kOk));
    hg::put(w, json::dump(*rec));
  }
  req.respond(w.take());
}

void Provider::handle_filter(margo::Request& req) {
  auto r = req.reader();
  std::string collection, source;
  hg::get(r, collection);
  hg::get(r, source);
  hg::BufWriter w;
  try {
    const auto f = jx9::Filter::compile(source);
    const auto matches = db_.filter(collection, f);
    hg::put(w, static_cast<std::uint8_t>(Status::kOk));
    std::vector<std::string> texts;
    texts.reserve(matches.size());
    for (const auto* m : matches) texts.push_back(json::dump(*m));
    hg::put(w, texts);
  } catch (const std::runtime_error&) {
    hg::put(w, static_cast<std::uint8_t>(Status::kBadFilter));
    hg::put(w, std::vector<std::string>{});
  }
  req.respond(w.take());
}

void Provider::handle_size(margo::Request& req) {
  auto r = req.reader();
  std::string collection;
  hg::get(r, collection);
  req.respond_value(static_cast<std::uint64_t>(db_.size(collection)));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid)
    : mid_(mid),
      create_id_(mid.register_client_rpc(kCreateRpc)),
      store_id_(mid.register_client_rpc(kStoreRpc)),
      store_multi_id_(mid.register_client_rpc(kStoreMultiRpc)),
      fetch_id_(mid.register_client_rpc(kFetchRpc)),
      filter_id_(mid.register_client_rpc(kFilterRpc)),
      size_id_(mid.register_client_rpc(kSizeRpc)) {}

Status Client::create_collection(ofi::EpAddr target, std::uint16_t provider,
                                 const std::string& name) {
  return static_cast<Status>(hg::decode<std::uint8_t>(
      mid_.forward(target, provider, create_id_, hg::encode(name))));
}

Status Client::store(ofi::EpAddr target, std::uint16_t provider,
                     const std::string& collection,
                     const std::string& json_text, std::uint64_t* id) {
  hg::BufWriter w;
  hg::put(w, collection);
  hg::put(w, json_text);
  const auto resp = mid_.forward(target, provider, store_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::uint64_t out_id = 0;
  hg::get(r, status);
  hg::get(r, out_id);
  if (id != nullptr) *id = out_id;
  return static_cast<Status>(status);
}

Status Client::store_multi(ofi::EpAddr target, std::uint16_t provider,
                           const std::string& collection,
                           const std::string& json_array_text,
                           std::uint32_t* stored) {
  hg::BufWriter w;
  hg::put(w, collection);
  hg::put(w, json_array_text);
  const auto resp = mid_.forward(target, provider, store_multi_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::uint32_t n = 0;
  hg::get(r, status);
  hg::get(r, n);
  if (stored != nullptr) *stored = n;
  return static_cast<Status>(status);
}

Status Client::fetch(ofi::EpAddr target, std::uint16_t provider,
                     const std::string& collection, std::uint64_t id,
                     std::string* json_text) {
  hg::BufWriter w;
  hg::put(w, collection);
  hg::put(w, id);
  const auto resp = mid_.forward(target, provider, fetch_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::string text;
  hg::get(r, status);
  hg::get(r, text);
  if (json_text != nullptr) *json_text = std::move(text);
  return static_cast<Status>(status);
}

Status Client::filter(ofi::EpAddr target, std::uint16_t provider,
                      const std::string& collection,
                      const std::string& filter_src,
                      std::vector<std::string>* matches) {
  hg::BufWriter w;
  hg::put(w, collection);
  hg::put(w, filter_src);
  const auto resp = mid_.forward(target, provider, filter_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::vector<std::string> out;
  hg::get(r, status);
  hg::get(r, out);
  if (matches != nullptr) *matches = std::move(out);
  return static_cast<Status>(status);
}

std::uint64_t Client::size(ofi::EpAddr target, std::uint16_t provider,
                           const std::string& collection) {
  return hg::decode<std::uint64_t>(
      mid_.forward(target, provider, size_id_, hg::encode(collection)));
}

}  // namespace sym::sonata
