// services/sonata/json.hpp
//
// A self-contained JSON implementation for the Sonata document store
// (value model, recursive-descent parser, writer). Sonata stores JSON
// records as RPC metadata, so parse/serialize work here is genuine target
// CPU work in the Fig. 7 experiment.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace sym::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps member order deterministic for stable serialization.
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Storage = std::variant<std::nullptr_t, bool, std::int64_t, double,
                               std::string, Array, Object>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : v_(i) {}
  Value(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_double() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_double();
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_number() const {
    return is_int() ? static_cast<double>(std::get<std::int64_t>(v_))
                    : std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(v_);
  }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  /// Object member access; returns nullptr if absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Path access "a.b.c" with array indices "a[3].b".
  [[nodiscard]] const Value* find_path(const std::string& path) const;

  bool operator==(const Value& o) const;

  [[nodiscard]] const Storage& storage() const noexcept { return v_; }

 private:
  Storage v_;
};

/// Thrown on malformed input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse a complete JSON document. Throws ParseError.
[[nodiscard]] Value parse(const std::string& text);

/// Compact serialization.
[[nodiscard]] std::string dump(const Value& v);

/// Pretty serialization with 2-space indents.
[[nodiscard]] std::string dump_pretty(const Value& v);

}  // namespace sym::json
