#include "services/blockcache/blockcache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>

#include "argolite/runtime.hpp"

namespace sym::blockcache {
namespace {

constexpr const char* kReadRpc = "bc_read_rpc";
constexpr const char* kWriteRpc = "bc_write_rpc";
constexpr const char* kFlushRpc = "bc_flush_rpc";

// Staging-copy CPU cost when moving bytes between a request and a cached
// block (same constant family as BAKE's region staging copy).
constexpr double kCopyNsPerByte = 0.05;

}  // namespace

// ---------------------------------------------------------------------------
// Provider: construction and registration
// ---------------------------------------------------------------------------

Provider::Provider(margo::Instance& mid, std::uint16_t provider_id,
                   ProviderConfig config)
    : mid_(mid),
      provider_id_(provider_id),
      cfg_(config),
      backend_(mid),
      sched_(config.policy) {
  if (cfg_.readahead_blocks == 0) cfg_.readahead_blocks = 1;
  if (cfg_.capacity_blocks == 0) cfg_.capacity_blocks = 1;
  mid_.register_rpc(kReadRpc, provider_id_,
                    [this](margo::Request& r) { handle_read(r); });
  mid_.register_rpc(kWriteRpc, provider_id_,
                    [this](margo::Request& r) { handle_write(r); });
  mid_.register_rpc(kFlushRpc, provider_id_,
                    [this](margo::Request& r) { handle_flush(r); });
  register_pvars();
}

void Provider::start() {
  if (started_) return;
  started_ = true;
  // The dispatcher runs in the handler pool: it competes for handler ESs
  // exactly like the request ULTs whose work it serializes, so dispatcher
  // CPU shows up in the same pool accounting.
  mid_.runtime().create_ult(mid_.handler_pool(), [this] { dispatch_loop(); });
  if (cfg_.flush_period > 0) {
    mid_.runtime().create_ult(mid_.handler_pool(), [this] { flusher_loop(); });
  }
}

void Provider::register_pvars() {
  auto& reg = mid_.hg_class().pvars();
  using hg::PvarBind;
  using hg::PvarClass;

  reg.add({"bc_hits", "blockcache read hits", PvarClass::kCounter,
           PvarBind::kNoObject, false},
          [this](const hg::Handle*) { return static_cast<double>(hits_); });
  reg.add({"bc_misses", "blockcache read misses", PvarClass::kCounter,
           PvarBind::kNoObject, false},
          [this](const hg::Handle*) { return static_cast<double>(misses_); });
  reg.add({"bc_hit_ratio", "blockcache hit ratio over all reads",
           PvarClass::kLevel, PvarBind::kNoObject, false},
          [this](const hg::Handle*) { return hit_ratio(); });
  reg.add({"bc_occupancy_blocks", "cached blocks currently resident",
           PvarClass::kLevel, PvarBind::kNoObject, false},
          [this](const hg::Handle*) {
            return static_cast<double>(blocks_.size());
          });
  reg.add({"bc_dirty_blocks", "resident blocks with unflushed writes",
           PvarClass::kLevel, PvarBind::kNoObject, false},
          [this](const hg::Handle*) { return static_cast<double>(dirty_); });
  reg.add({"bc_evictions", "blocks evicted to make room", PvarClass::kCounter,
           PvarBind::kNoObject, false},
          [this](const hg::Handle*) {
            return static_cast<double>(evictions_);
          });
  reg.add({"bc_backend_reads", "backend fetch RPCs issued",
           PvarClass::kCounter, PvarBind::kNoObject, false},
          [this](const hg::Handle*) {
            return static_cast<double>(backend_reads_);
          });
  reg.add({"bc_writeback_ops", "coalesced backend write RPCs issued",
           PvarClass::kCounter, PvarBind::kNoObject, false},
          [this](const hg::Handle*) {
            return static_cast<double>(writeback_ops_);
          });
  reg.add({"bc_writeback_bytes", "bytes written back to the backend",
           PvarClass::kCounter, PvarBind::kNoObject, false},
          [this](const hg::Handle*) {
            return static_cast<double>(writeback_bytes_);
          });
  reg.add({"bc_queue_depth", "requests queued in the fair-share scheduler",
           PvarClass::kLevel, PvarBind::kNoObject, false},
          [this](const hg::Handle*) {
            return static_cast<double>(sched_.depth());
          });

  // Writable actuator knobs — the PolicyEngine's second actuator surface.
  reg.add({"bc_capacity_blocks", "cache capacity in blocks (writable)",
           PvarClass::kSize, PvarBind::kNoObject, true},
          [this](const hg::Handle*) {
            return static_cast<double>(cfg_.capacity_blocks);
          },
          [this](double v) {
            if (v >= 1) pending_capacity_ = static_cast<std::uint32_t>(v);
          });
  reg.add({"bc_tenant_quota_blocks",
           "per-tenant resident-block quota, 0 = unlimited (writable)",
           PvarClass::kSize, PvarBind::kNoObject, true},
          [this](const hg::Handle*) {
            return static_cast<double>(tenant_quota_blocks_);
          },
          [this](double v) {
            if (v >= 0) pending_quota_ = static_cast<std::uint32_t>(v);
          });

  // Per-tenant queue depth and service share, one PVAR slot per tenant id
  // below max_tenants (ids beyond the slots are scheduled normally, they
  // just are not individually observable).
  for (std::uint32_t k = 0; k < cfg_.max_tenants; ++k) {
    const std::string t = "bc_t" + std::to_string(k);
    reg.add({t + "_queue_depth", "queued requests of tenant " +
             std::to_string(k), PvarClass::kLevel, PvarBind::kNoObject, false},
            [this, k](const hg::Handle*) {
              return static_cast<double>(sched_.depth_of(k));
            });
    reg.add({t + "_service_share", "fraction of served bytes to tenant " +
             std::to_string(k), PvarClass::kLevel, PvarBind::kNoObject, false},
            [this, k](const hg::Handle*) { return sched_.service_share(k); });
  }
}

// ---------------------------------------------------------------------------
// Handlers: parse, enqueue, wait, respond
// ---------------------------------------------------------------------------

void Provider::handle_read(margo::Request& req) {
  auto r = req.reader();
  QueuedOp op;
  op.kind = OpKind::kRead;
  std::uint32_t width = 0;
  hg::get(r, op.tenant);
  hg::get(r, width);
  hg::get(r, op.object);
  hg::get(r, op.block);
  sched_.enqueue(op.tenant, width, cfg_.block_bytes, &op);
  op.done.wait();
  hg::BufWriter w;
  hg::put(w, static_cast<std::uint8_t>(op.status));
  hg::put(w, static_cast<std::uint32_t>(op.out.size()));
  w.write_raw(op.out.data(), op.out.size());
  req.respond(w.take());
}

void Provider::handle_write(margo::Request& req) {
  auto r = req.reader();
  QueuedOp op;
  op.kind = OpKind::kWrite;
  std::uint32_t width = 0;
  hg::get(r, op.tenant);
  hg::get(r, width);
  hg::get(r, op.object);
  hg::get(r, op.offset);
  hg::get(r, op.bytes);
  // Pull the payload from the origin before queueing: the transfer belongs
  // to the RPC, the queueing delay to the scheduler.
  req.bulk_pull(op.bytes);
  op.payload = req.handle()->attached<std::vector<std::byte>>();
  sched_.enqueue(op.tenant, width, op.bytes, &op);
  op.done.wait();
  req.respond_value(static_cast<std::uint8_t>(op.status));
}

void Provider::handle_flush(margo::Request& req) {
  auto r = req.reader();
  QueuedOp op;
  op.kind = OpKind::kFlush;
  std::uint32_t width = 0;
  hg::get(r, op.tenant);
  hg::get(r, width);
  sched_.enqueue(op.tenant, width, 0, &op);
  op.done.wait();
  req.respond_value(static_cast<std::uint8_t>(op.status));
}

// ---------------------------------------------------------------------------
// Dispatcher: the fair-share arbitration point
// ---------------------------------------------------------------------------

void Provider::dispatch_loop() {
  for (;;) {
    apply_pending_controls();
    if (auto next = sched_.pop_next()) {
      service(**next);
      continue;
    }
    if (mid_.finalized()) break;
    abt::sleep_for(cfg_.dispatch_poll);
  }
}

void Provider::flusher_loop() {
  // The flusher never touches blocks_ itself: a write-back sweep blocks on
  // backend RPCs, and running it concurrently with the dispatcher would
  // put two ULTs inside the cache structures. Stage a request instead.
  while (!mid_.finalized()) {
    abt::sleep_for(cfg_.flush_period);
    if (mid_.finalized()) break;
    if (dirty_ > 0) flush_due_ = true;
  }
}

void Provider::service(QueuedOp& op) {
  // Service cost: fixed per-request CPU plus the byte transfer through the
  // cache device. The single dispatcher serializes this, so the server is
  // a contended resource and queueing shows up in the t5..t8 spans of the
  // waiting handler ULTs.
  abt::compute(cfg_.service_op_cost);
  const std::uint64_t move_bytes =
      op.kind == OpKind::kRead ? cfg_.block_bytes : op.bytes;
  if (move_bytes > 0 && cfg_.service_bw_bytes_per_ns > 0) {
    abt::sleep_for(static_cast<sim::DurationNs>(
        std::llround(static_cast<double>(move_bytes) /
                     cfg_.service_bw_bytes_per_ns)));
  }
  switch (op.kind) {
    case OpKind::kRead: service_read(op); break;
    case OpKind::kWrite: service_write(op); break;
    case OpKind::kFlush: writeback_all(); break;
  }
  op.done.set();
}

void Provider::service_read(QueuedOp& op) {
  ++read_ops_;
  const BlockKey key{op.object, op.block};
  auto it = blocks_.find(key);
  if (it == blocks_.end()) {
    ++misses_;
    fetch_fill(key, readahead_for(key), op.tenant);
    it = blocks_.find(key);
    if (it == blocks_.end()) {
      // The readahead fill evicted the target itself (capacity smaller
      // than the fetch run): re-fetch just the one block.
      fetch_fill(key, 1, op.tenant);
      it = blocks_.find(key);
    }
  } else {
    ++hits_;
  }
  Block& b = it->second;
  touch(key, b);
  b.owner = op.tenant;
  abt::compute(static_cast<sim::DurationNs>(
      std::llround(static_cast<double>(cfg_.block_bytes) * kCopyNsPerByte)));
  op.out = b.data;
  op.status = Status::kOk;
}

void Provider::service_write(QueuedOp& op) {
  ++write_ops_;
  if (op.bytes == 0) {
    op.status = Status::kBadRequest;
    return;
  }
  const std::uint32_t bs = cfg_.block_bytes;
  std::uint64_t remaining = op.bytes;
  std::uint64_t src = 0;  // offset into the payload
  std::uint64_t pos = op.offset;
  while (remaining > 0) {
    const BlockKey key{op.object, static_cast<std::uint32_t>(pos / bs)};
    const std::uint32_t lo = static_cast<std::uint32_t>(pos % bs);
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(bs - lo, remaining));
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      if (lo != 0 || n != bs) {
        // Partial-block write to an absent block: read-modify-write.
        fetch_fill(key, 1, op.tenant);
        it = blocks_.find(key);
      }
      if (it == blocks_.end()) {
        insert_block(key, op.tenant);
        it = blocks_.find(key);
      }
    }
    Block& b = it->second;
    const bool was_dirty = b.dirty();
    if (op.payload != nullptr && src < op.payload->size()) {
      const std::size_t avail =
          std::min<std::size_t>(n, op.payload->size() - src);
      std::memcpy(b.data.data() + lo, op.payload->data() + src, avail);
    }
    abt::compute(static_cast<sim::DurationNs>(
        std::llround(static_cast<double>(n) * kCopyNsPerByte)));
    b.dirty_lo = was_dirty ? std::min(b.dirty_lo, lo) : lo;
    b.dirty_hi = was_dirty ? std::max(b.dirty_hi, lo + n) : lo + n;
    if (!was_dirty) ++dirty_;
    b.owner = op.tenant;
    touch(key, b);
    pos += n;
    src += n;
    remaining -= n;
  }
  op.status = Status::kOk;
  if (cfg_.writeback_watermark > 0 && dirty_ >= cfg_.writeback_watermark) {
    writeback_all();
  }
}

void Provider::apply_pending_controls() {
  if (flush_due_) {
    flush_due_ = false;
    if (dirty_ > 0) writeback_all();
  }
  if (pending_capacity_ != 0) {
    cfg_.capacity_blocks = pending_capacity_;
    pending_capacity_ = 0;
    while (blocks_.size() > cfg_.capacity_blocks) evict_one(0);
  }
  if (pending_quota_ != ~0u) {
    tenant_quota_blocks_ = pending_quota_;
    pending_quota_ = ~0u;
  }
}

// ---------------------------------------------------------------------------
// Backend fetch path (miss handling + readahead)
// ---------------------------------------------------------------------------

std::uint32_t Provider::readahead_for(const BlockKey& key) const {
  if (cfg_.readahead_blocks <= 1) return 1;
  const auto it = streams_.find(key.object);
  if (it == streams_.end()) return 1;
  const auto& expected = it->second;
  if (std::find(expected.begin(), expected.end(), key.block) ==
      expected.end()) {
    return 1;
  }
  // Sequential miss run detected: batch the fetch. Clamp to capacity so a
  // tiny cache cannot evict its own readahead wholesale.
  return std::min(cfg_.readahead_blocks, cfg_.capacity_blocks);
}

void Provider::fetch_fill(const BlockKey& key, std::uint32_t count,
                          std::uint32_t tenant) {
  const sim::TimeNs fetch_start = mid_.engine().now();
  const std::uint64_t rid = region_of(key.object);
  const std::uint64_t bs = cfg_.block_bytes;
  const std::uint64_t len = static_cast<std::uint64_t>(count) * bs;
  const auto data = backend_.read(cfg_.backend, cfg_.backend_provider, rid,
                                  key.block * bs, len);
  ++backend_reads_;
  backend_read_bytes_ += len;
  mid_.record_action_span("bc_fetch", fetch_start);

  const sim::TimeNs fill_start = mid_.engine().now();
  for (std::uint32_t i = 0; i < count; ++i) {
    const BlockKey k{key.object, key.block + i};
    if (blocks_.find(k) != blocks_.end()) continue;  // never clobber dirty data
    Block& b = insert_block(k, tenant);
    const std::uint64_t off = static_cast<std::uint64_t>(i) * bs;
    if (off < data.size()) {
      const std::size_t n = std::min<std::size_t>(bs, data.size() - off);
      std::memcpy(b.data.data(), data.data() + off, n);
    }
  }
  // Advance (or open) the sequential stream this fetch belongs to; oldest
  // streams age out so the detector stays bounded per object.
  auto& expected = streams_[key.object];
  const auto matched =
      std::find(expected.begin(), expected.end(), key.block);
  if (matched != expected.end()) expected.erase(matched);
  expected.push_back(key.block + count);
  while (expected.size() > kMaxStreamsPerObject) expected.pop_front();
  mid_.record_action_span("bc_fill", fill_start);
}

std::uint64_t Provider::region_of(std::uint64_t object) {
  const auto it = regions_.find(object);
  if (it != regions_.end()) return it->second;
  const std::uint64_t rid =
      backend_.create(cfg_.backend, cfg_.backend_provider, 0);
  regions_.emplace(object, rid);
  return rid;
}

// ---------------------------------------------------------------------------
// Residency: insertion, LRU/clock touch, eviction
// ---------------------------------------------------------------------------

Provider::Block& Provider::insert_block(const BlockKey& key,
                                        std::uint32_t tenant) {
  while (blocks_.size() >= cfg_.capacity_blocks) evict_one(tenant);
  Block b;
  b.data.assign(cfg_.block_bytes, std::byte{0});
  b.owner = tenant;
  auto [it, inserted] = blocks_.emplace(key, std::move(b));
  lru_.push_back(key);
  it->second.lru_pos = std::prev(lru_.end());
  if (cfg_.eviction == Eviction::kClock) clock_ring_.push_back(key);
  mid_.process().add_rss(cfg_.block_bytes);
  return it->second;
}

void Provider::touch(const BlockKey& key, Block& b) {
  if (cfg_.eviction == Eviction::kLru) {
    lru_.splice(lru_.end(), lru_, b.lru_pos);
    b.lru_pos = std::prev(lru_.end());
  } else {
    b.referenced = true;
  }
  (void)key;
}

std::size_t Provider::tenant_occupancy(std::uint32_t tenant) const {
  std::size_t n = 0;
  for (const auto& [key, b] : blocks_) {
    if (b.owner == tenant) ++n;
  }
  return n;
}

void Provider::evict_one(std::uint32_t incoming_tenant) {
  const sim::TimeNs started = mid_.engine().now();
  // Cache partitioning: a tenant over its quota evicts its own coldest
  // block first, so one tenant's working set cannot evict everyone else's.
  if (tenant_quota_blocks_ > 0 &&
      tenant_occupancy(incoming_tenant) >= tenant_quota_blocks_) {
    for (const auto& key : lru_) {
      const auto it = blocks_.find(key);
      if (it != blocks_.end() && it->second.owner == incoming_tenant) {
        evict_key(key);
        mid_.record_action_span("bc_evict", started);
        return;
      }
    }
  }
  if (cfg_.eviction == Eviction::kLru) {
    evict_key(lru_.front());
  } else {
    // Clock / second chance over the ring; stale entries (evicted via the
    // quota path above) are skipped lazily.
    while (!clock_ring_.empty()) {
      const BlockKey key = clock_ring_.front();
      clock_ring_.pop_front();
      const auto it = blocks_.find(key);
      if (it == blocks_.end()) continue;
      if (it->second.referenced) {
        it->second.referenced = false;
        clock_ring_.push_back(key);
        continue;
      }
      evict_key(key);
      break;
    }
  }
  mid_.record_action_span("bc_evict", started);
}

void Provider::evict_key(const BlockKey& key) {
  const auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  if (it->second.dirty()) writeback_run(key, 1);
  lru_.erase(it->second.lru_pos);
  blocks_.erase(it);
  mid_.process().add_rss(-static_cast<std::int64_t>(cfg_.block_bytes));
  ++evictions_;
}

// ---------------------------------------------------------------------------
// Write-back: coalesce adjacent dirty blocks into large backend writes
// ---------------------------------------------------------------------------

void Provider::writeback_all() {
  // blocks_ is ordered by (object, block), so one ordered sweep finds every
  // maximal run of consecutive dirty blocks per object.
  std::vector<std::pair<BlockKey, std::uint32_t>> runs;
  bool in_run = false;
  BlockKey run_start{};
  std::uint32_t run_len = 0;
  BlockKey prev{};
  for (const auto& [key, b] : blocks_) {
    const bool extends = in_run && key.object == prev.object &&
                         key.block == prev.block + 1 && b.dirty();
    if (extends) {
      ++run_len;
    } else {
      if (in_run) runs.emplace_back(run_start, run_len);
      in_run = b.dirty();
      run_start = key;
      run_len = 1;
    }
    prev = key;
  }
  if (in_run) runs.emplace_back(run_start, run_len);
  for (const auto& [start, len] : runs) writeback_run(start, len);
}

void Provider::writeback_run(const BlockKey& first, std::uint32_t count) {
  const sim::TimeNs started = mid_.engine().now();
  const std::uint64_t bs = cfg_.block_bytes;
  std::vector<std::byte> payload;
  payload.reserve(static_cast<std::size_t>(count) * bs);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto it = blocks_.find(BlockKey{first.object, first.block + i});
    Block& b = it->second;
    payload.insert(payload.end(), b.data.begin(), b.data.end());
    if (b.dirty()) --dirty_;
    b.dirty_lo = 0;
    b.dirty_hi = 0;
  }
  const std::uint64_t rid = region_of(first.object);
  backend_.write(cfg_.backend, cfg_.backend_provider, rid, first.block * bs,
                 std::move(payload));
  ++writeback_ops_;
  writeback_bytes_ += static_cast<std::uint64_t>(count) * bs;
  mid_.record_action_span("bc_writeback", started);
}

// ---------------------------------------------------------------------------
// PolicyEngine actuator rule
// ---------------------------------------------------------------------------

margo::PolicyRule Provider::capacity_autoscale(double min_hit_ratio,
                                               std::uint32_t step_blocks,
                                               std::uint32_t cap_blocks) {
  auto last_evictions = std::make_shared<double>(0.0);
  return [=](margo::Instance& inst,
             const margo::PolicySample&) -> std::optional<std::string> {
    auto session = inst.hg_class().pvar_session_init();
    const auto pv_ratio = session.alloc("bc_hit_ratio");
    const auto pv_evict = session.alloc("bc_evictions");
    const auto pv_cap = session.alloc("bc_capacity_blocks");
    if (!pv_ratio.valid() || !pv_evict.valid() || !pv_cap.valid()) {
      return std::nullopt;  // no blockcache provider on this instance
    }
    const double ratio = session.read(pv_ratio);
    const double evictions = session.read(pv_evict);
    const double cap = session.read(pv_cap);
    const bool thrashing =
        ratio < min_hit_ratio && evictions > *last_evictions;
    *last_evictions = evictions;
    if (!thrashing || cap >= cap_blocks) return std::nullopt;
    const double grown =
        std::min<double>(cap_blocks, cap + static_cast<double>(step_blocks));
    session.write(pv_cap, grown);
    return "bc_capacity_blocks " + std::to_string(static_cast<long>(cap)) +
           " -> " + std::to_string(static_cast<long>(grown)) +
           " (hit ratio " + std::to_string(ratio) + ")";
  };
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid, View view, std::uint32_t tenant,
               std::uint32_t job_width)
    : mid_(mid),
      view_(std::move(view)),
      tenant_(tenant),
      width_(job_width == 0 ? 1 : job_width),
      read_id_(mid.register_client_rpc(kReadRpc)),
      write_id_(mid.register_client_rpc(kWriteRpc)),
      flush_id_(mid.register_client_rpc(kFlushRpc)) {}

std::vector<std::byte> Client::read(std::uint64_t object,
                                    std::uint32_t block) {
  const BlockKey key{object, block};
  hg::BufWriter w;
  hg::put(w, tenant_);
  hg::put(w, width_);
  hg::put(w, object);
  hg::put(w, block);
  const auto resp =
      mid_.forward(view_.server_of(key), view_.provider, read_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::uint32_t n = 0;
  hg::get(r, status);
  hg::get(r, n);
  std::vector<std::byte> out(n);
  if (n > 0) r.read_raw(out.data(), n);
  return out;
}

Status Client::write(std::uint64_t object, std::uint64_t offset,
                     const std::vector<std::byte>& data) {
  // Split the extent on block boundaries, then group consecutive blocks
  // owned by the same server into one RPC each (a whole locality stripe
  // travels as a single request).
  const std::uint64_t bs = view_.block_bytes;
  Status result = Status::kOk;
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t start = offset + pos;
    const BlockKey key{object, static_cast<std::uint32_t>(start / bs)};
    const ofi::EpAddr server = view_.server_of(key);
    // Extend the segment while subsequent blocks land on the same server.
    std::uint64_t seg_end = std::min<std::uint64_t>(
        data.size(), pos + (bs - start % bs));
    while (seg_end < data.size()) {
      const BlockKey next{object,
                          static_cast<std::uint32_t>((offset + seg_end) / bs)};
      if (view_.server_of(next) != server) break;
      seg_end = std::min<std::uint64_t>(data.size(), seg_end + bs);
    }
    const std::uint64_t seg_bytes = seg_end - pos;
    auto shared = std::make_shared<const std::vector<std::byte>>(
        data.begin() + static_cast<std::ptrdiff_t>(pos),
        data.begin() + static_cast<std::ptrdiff_t>(seg_end));
    hg::BufWriter w;
    hg::put(w, tenant_);
    hg::put(w, width_);
    hg::put(w, object);
    hg::put(w, start);
    hg::put(w, seg_bytes);
    auto op = mid_.forward_async(server, view_.provider, write_id_, w.take(),
                                 shared, seg_bytes);
    const auto st = static_cast<Status>(hg::decode<std::uint8_t>(op->wait()));
    if (st != Status::kOk) result = st;
    pos = seg_end;
  }
  return result;
}

Status Client::flush_all() {
  Status result = Status::kOk;
  hg::BufWriter w;
  hg::put(w, tenant_);
  hg::put(w, width_);
  const auto body = w.take();
  for (const auto server : view_.servers) {
    const auto st = static_cast<Status>(hg::decode<std::uint8_t>(
        mid_.forward(server, view_.provider, flush_id_, body)));
    if (st != Status::kOk) result = st;
  }
  return result;
}

}  // namespace sym::blockcache
