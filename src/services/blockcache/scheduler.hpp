// services/blockcache/scheduler.hpp
//
// ThemisIO-style fair-share request scheduling for the blockcache tier.
// Each cache server funnels every tenant request through one FairScheduler;
// a single dispatcher ULT pops the next request according to the active
// policy, so the scheduler IS the arbitration point where competing tenant
// jobs contend for the server's service capacity:
//
//  * kFifo      — no fairness: strict arrival order. A wide job (many
//    client processes) keeps proportionally more requests queued and
//    captures a proportional share of the server.
//  * kSizeFair  — equalize *delivered bytes* across tenant jobs regardless
//    of how many client processes each job runs: always serve the queued
//    tenant with the fewest bytes served so far. Two tenants of very
//    different widths converge to equal byte-rates while both are active
//    (the property test in tests/test_blockcache.cpp pins this within 5%).
//  * kJobFair   — width-weighted shares: serve the queued tenant with the
//    smallest bytes_served/weight, where the weight is the job's declared
//    width (client count). A job twice as wide earns twice the byte-rate.
//
// Late-arrival credit is bounded: a tenant whose queue was empty re-enters
// with its served-bytes counter raised to at least (active minimum -
// credit_window), so idling banks at most one window of bandwidth ("fair
// from now on", as ThemisIO's sliding window does). The window matters: a
// synchronous client is briefly absent from the queue between requests
// (response in flight), and clamping that natural gap to the exact active
// minimum would erase its deficit and degenerate size-fair into FIFO.
//
// The scheduler is plain lane-owned state: it is only ever touched from the
// owning server's handler and dispatcher ULTs, never across lanes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>

namespace sym::blockcache {

enum class SchedPolicy : std::uint8_t {
  kFifo = 0,
  kSizeFair = 1,
  kJobFair = 2,
};

[[nodiscard]] constexpr const char* to_string(SchedPolicy p) noexcept {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kSizeFair: return "size-fair";
    case SchedPolicy::kJobFair: return "job-fair";
  }
  return "?";
}

/// Per-tenant fair queueing over an opaque request payload T.
template <typename T>
class FairScheduler {
 public:
  explicit FairScheduler(SchedPolicy policy = SchedPolicy::kFifo)
      : policy_(policy) {}

  void set_policy(SchedPolicy p) noexcept { policy_ = p; }
  [[nodiscard]] SchedPolicy policy() const noexcept { return policy_; }

  /// Bound on the deficit an idle tenant may bank (bytes); see file header.
  void set_credit_window(std::uint64_t bytes) noexcept {
    credit_window_ = bytes;
  }
  [[nodiscard]] std::uint64_t credit_window() const noexcept {
    return credit_window_;
  }

  /// Queue one request. `cost_bytes` is the request's service demand, the
  /// unit the fairness policies account in; `weight` is the tenant job's
  /// width (only meaningful under kJobFair, latest value wins).
  void enqueue(std::uint32_t tenant, std::uint32_t weight,
               std::uint64_t cost_bytes, T item) {
    Tenant& t = tenants_[tenant];
    t.weight = weight == 0 ? 1 : weight;
    if (t.queue.empty()) {
      // Re-activation: forfeit credit banked beyond one window while idle.
      const std::uint64_t active_min = min_active_bytes();
      const std::uint64_t floor =
          active_min > credit_window_ ? active_min - credit_window_ : 0;
      if (t.bytes_served < floor) t.bytes_served = floor;
    }
    t.queue.push_back(Entry{next_seq_++, cost_bytes, std::move(item)});
    ++depth_;
  }

  /// Pop the next request per the active policy; nullopt when idle. The
  /// popped request's cost is charged to its tenant's served-bytes counter.
  std::optional<T> pop_next() {
    if (depth_ == 0) return std::nullopt;
    auto pick = tenants_.end();
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
      if (it->second.queue.empty()) continue;
      if (pick == tenants_.end() || prefer(it, pick)) pick = it;
    }
    Tenant& t = pick->second;
    Entry e = std::move(t.queue.front());
    t.queue.pop_front();
    --depth_;
    t.bytes_served += e.cost_bytes;
    total_served_ += e.cost_bytes;
    return std::move(e.item);
  }

  [[nodiscard]] bool empty() const noexcept { return depth_ == 0; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  [[nodiscard]] std::size_t depth_of(std::uint32_t tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.queue.size();
  }
  [[nodiscard]] std::uint64_t bytes_served(std::uint32_t tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.bytes_served;
  }
  /// Fraction of all served bytes that went to `tenant` (0 when nothing
  /// has been served yet) — the per-tenant service-share PVAR.
  [[nodiscard]] double service_share(std::uint32_t tenant) const {
    if (total_served_ == 0) return 0.0;
    return static_cast<double>(bytes_served(tenant)) /
           static_cast<double>(total_served_);
  }
  [[nodiscard]] std::uint64_t total_served() const noexcept {
    return total_served_;
  }
  /// Tenants ever seen (active or drained).
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenants_.size();
  }

 private:
  struct Entry {
    std::uint64_t seq = 0;
    std::uint64_t cost_bytes = 0;
    T item;
  };
  struct Tenant {
    std::deque<Entry> queue;
    std::uint32_t weight = 1;
    std::uint64_t bytes_served = 0;
  };
  using Iter = typename std::map<std::uint32_t, Tenant>::iterator;

  /// Strict-weak preference of candidate `a` over incumbent `b` under the
  /// active policy. Ties break on the older head-of-queue request, so the
  /// choice is deterministic and starvation-free.
  [[nodiscard]] bool prefer(Iter a, Iter b) const {
    const Tenant& ta = a->second;
    const Tenant& tb = b->second;
    switch (policy_) {
      case SchedPolicy::kFifo:
        return ta.queue.front().seq < tb.queue.front().seq;
      case SchedPolicy::kSizeFair:
        if (ta.bytes_served != tb.bytes_served) {
          return ta.bytes_served < tb.bytes_served;
        }
        break;
      case SchedPolicy::kJobFair: {
        // Compare bytes/weight without FP: a.bytes*b.w vs b.bytes*a.w.
        const auto va = ta.bytes_served * tb.weight;
        const auto vb = tb.bytes_served * ta.weight;
        if (va != vb) return va < vb;
        break;
      }
    }
    return ta.queue.front().seq < tb.queue.front().seq;
  }

  [[nodiscard]] std::uint64_t min_active_bytes() const {
    std::uint64_t m = 0;
    bool any = false;
    for (const auto& [id, t] : tenants_) {
      if (t.queue.empty()) continue;
      if (!any || t.bytes_served < m) m = t.bytes_served;
      any = true;
    }
    return any ? m : total_served_ == 0 ? 0 : min_all_bytes();
  }
  [[nodiscard]] std::uint64_t min_all_bytes() const {
    std::uint64_t m = ~0ULL;
    for (const auto& [id, t] : tenants_) {
      if (t.bytes_served < m) m = t.bytes_served;
    }
    return m == ~0ULL ? 0 : m;
  }

  SchedPolicy policy_;
  std::uint64_t credit_window_ = 1 << 20;
  std::map<std::uint32_t, Tenant> tenants_;
  std::uint64_t next_seq_ = 0;
  std::size_t depth_ = 0;
  std::uint64_t total_served_ = 0;
};

}  // namespace sym::blockcache
