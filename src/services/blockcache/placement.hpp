// services/blockcache/placement.hpp
//
// Block-to-cache-server placement for the blockcache tier. An object is
// split into fixed-size blocks; the placement function decides which cache
// server owns each block. Two strategies mirror the bbThemis/LustreBulk
// observation that placement-aware (OST-aligned) access is dramatically
// faster than naive striping:
//
//  * kHash            — classic hash striping: consecutive blocks of one
//    object scatter round-robin-with-mixing across all servers. Every
//    server sees a strided subsequence of a sequential scan, so no server
//    ever observes two adjacent blocks back to back and backend readahead
//    never engages.
//  * kLocalityAligned — stripe-aligned placement: runs of `stripe_blocks`
//    consecutive blocks map to the same server before rotating to the
//    next. A sequential reader presents each server with long adjacent
//    runs, the server's sequential-miss detector batches them into one
//    large backend read, and per-request fixed costs amortize away (the
//    ~8x OST-alignment effect, reproduced as the hash-vs-aligned A/B in
//    bench/cache_fairness_study).
//
// The placement function is pure and shared verbatim by clients (to route
// requests) and by the deployment harness (to predict ownership), so there
// is no directory service to keep consistent.
#pragma once

#include <cstdint>

namespace sym::blockcache {

enum class Placement : std::uint8_t {
  kHash = 0,
  kLocalityAligned = 1,
};

[[nodiscard]] constexpr const char* to_string(Placement p) noexcept {
  return p == Placement::kHash ? "hash" : "aligned";
}

/// Identity of one fixed-size block: (object, block index within object).
struct BlockKey {
  std::uint64_t object = 0;
  std::uint32_t block = 0;

  [[nodiscard]] friend constexpr bool operator<(const BlockKey& a,
                                                const BlockKey& b) noexcept {
    return a.object != b.object ? a.object < b.object : a.block < b.block;
  }
  [[nodiscard]] friend constexpr bool operator==(const BlockKey& a,
                                                 const BlockKey& b) noexcept {
    return a.object == b.object && a.block == b.block;
  }
};

/// Deterministic 64-bit mix (splitmix64 finalizer); good avalanche so hash
/// placement spreads adjacent blocks over all servers.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Width of one locality stripe: how many consecutive blocks map to the
/// same server under kLocalityAligned before rotating.
inline constexpr std::uint32_t kDefaultStripeBlocks = 8;

/// Which cache server (index in [0, server_count)) owns `key`.
[[nodiscard]] constexpr std::uint32_t server_for(
    Placement placement, const BlockKey& key, std::uint32_t server_count,
    std::uint32_t stripe_blocks = kDefaultStripeBlocks) noexcept {
  if (server_count <= 1) return 0;
  if (placement == Placement::kHash) {
    return static_cast<std::uint32_t>(
        mix64(key.object * 0x100000001b3ULL + key.block) % server_count);
  }
  // Aligned: stripe runs of `stripe_blocks`, with the object id rotating
  // the starting server so different objects load different servers.
  const std::uint64_t stripe = key.block / stripe_blocks;
  return static_cast<std::uint32_t>((key.object + stripe) % server_count);
}

}  // namespace sym::blockcache
