// services/blockcache/blockcache.hpp
//
// The blockcache tier: a composable distributed block-cache / burst-buffer
// service that sits in front of BAKE (and therefore in front of anything
// BAKE-backed, e.g. Mobject object data). Modeled on bbThemis's block-based
// distributed page cache and ThemisIO's fair-share burst-buffer scheduling:
//
//  * objects are split into fixed-size blocks; a pure placement function
//    (placement.hpp) maps each block to one per-node cache server, so
//    clients route requests without a directory service;
//  * each cache server holds a bounded set of blocks with LRU or clock
//    eviction, fetches missing blocks from the BAKE backend (batching
//    sequential miss runs into one large backend read — the readahead that
//    makes locality-aligned placement ~order-of-magnitude faster than hash
//    placement for streaming readers), and write-back-buffers dirty blocks,
//    coalescing runs of adjacent small writes into single large backend
//    writes;
//  * every request passes through a ThemisIO-style fair-share scheduler
//    (scheduler.hpp): a single dispatcher ULT arbitrates competing tenant
//    jobs under FIFO, size-fair or job-fair policy.
//
// Determinism: all cache-server state (block map, LRU/clock structures,
// scheduler queues, counters) is owned by the server instance's lane and is
// only touched from that instance's handler/dispatcher/flusher ULTs.
// Control-plane writes arriving through the writable PVARs are staged into
// pending fields and applied by the dispatcher at its next iteration, so
// even the PolicyEngine actuator path mutates cache state from exactly one
// ULT. Measurement: the RPCs carry the usual t1..t14 spans; block fetch /
// fill / evict / writeback emit self-contained action spans; the PVAR
// registry gains bc_* rows (docs/PVARS.md) including two writable actuator
// knobs (bc_capacity_blocks, bc_tenant_quota_blocks) that give the
// PolicyEngine its second actuator surface.
//
// RPCs: bc_read_rpc, bc_write_rpc, bc_flush_rpc.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "margolite/instance.hpp"
#include "margolite/policy.hpp"
#include "services/bake/bake.hpp"
#include "services/blockcache/placement.hpp"
#include "services/blockcache/scheduler.hpp"

namespace sym::blockcache {

enum class Status : std::uint8_t { kOk = 0, kBadRequest = 1 };

enum class Eviction : std::uint8_t { kLru = 0, kClock = 1 };

[[nodiscard]] constexpr const char* to_string(Eviction e) noexcept {
  return e == Eviction::kLru ? "lru" : "clock";
}

struct ProviderConfig {
  /// Block geometry and cache capacity (in blocks).
  std::uint32_t block_bytes = 64 * 1024;
  std::uint32_t capacity_blocks = 256;
  Eviction eviction = Eviction::kLru;
  SchedPolicy policy = SchedPolicy::kFifo;

  /// BAKE backend this cache tier fronts.
  ofi::EpAddr backend = ofi::kInvalidAddr;
  std::uint16_t backend_provider = 1;

  /// Max blocks fetched in one backend read when misses arrive for
  /// consecutive blocks of one object (1 disables readahead batching).
  std::uint32_t readahead_blocks = 8;

  /// Write-back: flush when this many blocks are dirty, and at least every
  /// flush_period regardless (0 disables the periodic flusher).
  std::uint32_t writeback_watermark = 64;
  sim::DurationNs flush_period = sim::msec(2);

  /// Service cost model: per-request CPU plus byte transfer through the
  /// cache device. The single dispatcher serializes service, making the
  /// server a contended resource the fairness policies arbitrate.
  sim::DurationNs service_op_cost = sim::usec(2);
  double service_bw_bytes_per_ns = 2.0;
  /// Dispatcher idle poll (bounds dispatcher wake-up latency).
  sim::DurationNs dispatch_poll = sim::usec(20);

  /// Number of per-tenant PVAR slots (bc_t<k>_queue_depth /
  /// bc_t<k>_service_share are registered for k < max_tenants).
  std::uint32_t max_tenants = 8;
};

/// One per-node cache server: provider + dispatcher + periodic flusher.
class Provider {
 public:
  Provider(margo::Instance& mid, std::uint16_t provider_id,
           ProviderConfig config);
  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  /// Spawn the dispatcher and flusher ULTs. Call once, after
  /// Instance::start(); both loops exit when the instance finalizes.
  void start();

  [[nodiscard]] std::uint16_t provider_id() const noexcept {
    return provider_id_;
  }
  [[nodiscard]] const ProviderConfig& config() const noexcept { return cfg_; }

  // --- cache introspection (tests, benches) ---------------------------------

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::size_t occupancy_blocks() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t dirty_blocks() const noexcept { return dirty_; }
  [[nodiscard]] std::uint32_t capacity_blocks() const noexcept {
    return cfg_.capacity_blocks;
  }
  [[nodiscard]] std::uint64_t backend_reads() const noexcept {
    return backend_reads_;
  }
  [[nodiscard]] std::uint64_t backend_read_bytes() const noexcept {
    return backend_read_bytes_;
  }
  [[nodiscard]] std::uint64_t writeback_ops() const noexcept {
    return writeback_ops_;
  }
  [[nodiscard]] std::uint64_t writeback_bytes() const noexcept {
    return writeback_bytes_;
  }
  [[nodiscard]] std::uint64_t write_ops() const noexcept { return write_ops_; }
  [[nodiscard]] std::uint64_t read_ops() const noexcept { return read_ops_; }
  [[nodiscard]] double hit_ratio() const noexcept {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) /
                                  static_cast<double>(total);
  }
  /// Bytes served to `tenant` by the fair-share scheduler so far.
  [[nodiscard]] std::uint64_t tenant_bytes_served(std::uint32_t tenant) const {
    return sched_.bytes_served(tenant);
  }
  [[nodiscard]] double tenant_service_share(std::uint32_t tenant) const {
    return sched_.service_share(tenant);
  }
  /// BAKE region id holding `object`'s flushed blocks (0 = none yet).
  [[nodiscard]] std::uint64_t backend_region(std::uint64_t object) const {
    const auto it = regions_.find(object);
    return it == regions_.end() ? 0 : it->second;
  }

  // --- PolicyEngine actuator surface ----------------------------------------

  /// Built-in policy rule: grow the cache when it thrashes. Fires when the
  /// hit ratio sits below `min_hit_ratio` while evictions advanced since
  /// the previous sample; writes the writable `bc_capacity_blocks` PVAR to
  /// grow the cache by `step_blocks`, up to `cap_blocks`. Register on the
  /// cache server's own PolicyEngine.
  static margo::PolicyRule capacity_autoscale(double min_hit_ratio = 0.5,
                                              std::uint32_t step_blocks = 64,
                                              std::uint32_t cap_blocks = 4096);

 private:
  struct Block {
    std::vector<std::byte> data;
    std::uint32_t dirty_lo = 0;  ///< dirty byte range [lo, hi)
    std::uint32_t dirty_hi = 0;
    std::uint32_t owner = 0;     ///< tenant that last touched the block
    bool referenced = false;     ///< clock ref bit
    std::list<BlockKey>::iterator lru_pos;
    [[nodiscard]] bool dirty() const noexcept { return dirty_hi > dirty_lo; }
  };

  enum class OpKind : std::uint8_t { kRead, kWrite, kFlush };

  /// One queued request, alive on its handler ULT's stack while the
  /// dispatcher services it.
  struct QueuedOp {
    OpKind kind{};
    std::uint32_t tenant = 0;
    std::uint64_t object = 0;
    std::uint32_t block = 0;           ///< read
    std::uint64_t offset = 0;          ///< write
    std::uint64_t bytes = 0;           ///< write payload size
    const std::vector<std::byte>* payload = nullptr;  ///< write content
    std::vector<std::byte> out;        ///< read result
    Status status = Status::kOk;
    abt::Eventual done;
  };

  void handle_read(margo::Request& req);
  void handle_write(margo::Request& req);
  void handle_flush(margo::Request& req);

  void dispatch_loop();
  void flusher_loop();
  void service(QueuedOp& op);
  void service_read(QueuedOp& op);
  void service_write(QueuedOp& op);

  /// Apply control-plane writes staged by the writable PVARs.
  void apply_pending_controls();

  /// Fetch `count` blocks starting at `key` from the backend in one read,
  /// fill the absent ones into the cache (clean). Records bc_fetch/bc_fill
  /// action spans and the backend counters.
  void fetch_fill(const BlockKey& key, std::uint32_t count,
                  std::uint32_t tenant);
  /// Sequential-run readahead size for a miss at `key`.
  [[nodiscard]] std::uint32_t readahead_for(const BlockKey& key) const;

  /// Insert an absent block (evicting if at capacity); returns it zeroed.
  Block& insert_block(const BlockKey& key, std::uint32_t tenant);
  void touch(const BlockKey& key, Block& b);
  void evict_one(std::uint32_t incoming_tenant);
  void evict_key(const BlockKey& key);
  [[nodiscard]] std::size_t tenant_occupancy(std::uint32_t tenant) const;

  /// Write back all dirty blocks, coalescing runs of adjacent dirty blocks
  /// of one object into single backend writes. `max_runs` = 0 means all.
  void writeback_all();
  /// Write back one contiguous dirty run starting at `first` (inclusive)
  /// spanning `count` blocks.
  void writeback_run(const BlockKey& first, std::uint32_t count);

  [[nodiscard]] std::uint64_t region_of(std::uint64_t object);

  void register_pvars();

  margo::Instance& mid_;
  std::uint16_t provider_id_;
  ProviderConfig cfg_;
  bake::Client backend_;

  FairScheduler<QueuedOp*> sched_;
  std::map<BlockKey, Block> blocks_;
  std::list<BlockKey> lru_;            ///< front = coldest
  std::deque<BlockKey> clock_ring_;    ///< second-chance ring
  std::map<std::uint64_t, std::uint64_t> regions_;  ///< object -> bake rid
  /// Per-object sequential-stream detector: the block each recently seen
  /// miss stream expects next. One server may field several interleaved
  /// sequential streams against the same object (one per tenant client
  /// reading its own range), so a single last-fetched mark would ping-pong
  /// between them and never detect a run; readahead engages whenever a miss
  /// lands on any tracked stream's expected-next block.
  std::map<std::uint64_t, std::deque<std::uint32_t>> streams_;
  static constexpr std::size_t kMaxStreamsPerObject = 8;

  std::size_t dirty_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t backend_reads_ = 0;
  std::uint64_t backend_read_bytes_ = 0;
  std::uint64_t writeback_ops_ = 0;
  std::uint64_t writeback_bytes_ = 0;
  std::uint64_t read_ops_ = 0;
  std::uint64_t write_ops_ = 0;

  /// Per-tenant block quota (0 = unlimited); staged by the writable PVAR.
  std::uint32_t tenant_quota_blocks_ = 0;
  std::uint32_t pending_capacity_ = 0;   ///< 0 = no pending change
  std::uint32_t pending_quota_ = ~0u;    ///< ~0u = no pending change
  /// Set by the periodic flusher ULT, consumed by the dispatcher: only the
  /// dispatcher ULT ever walks or mutates blocks_ (lane-ownership within
  /// the instance), so the flusher stages a request instead of sweeping.
  bool flush_due_ = false;
  bool started_ = false;
};

/// Client-side view of a deployed blockcache tier: the ordered cache-server
/// endpoints plus the placement strategy, shared by every client.
struct View {
  std::vector<ofi::EpAddr> servers;
  std::uint16_t provider = 1;
  Placement placement = Placement::kHash;
  std::uint32_t stripe_blocks = kDefaultStripeBlocks;
  std::uint32_t block_bytes = 64 * 1024;

  [[nodiscard]] ofi::EpAddr server_of(const BlockKey& key) const {
    return servers[server_for(placement, key,
                              static_cast<std::uint32_t>(servers.size()),
                              stripe_blocks)];
  }
};

/// Client API: reads one block at a time, writes arbitrary byte extents
/// (split across the owning servers block by block). Each client belongs to
/// one tenant job of a declared width (the job-fair weight).
class Client {
 public:
  Client(margo::Instance& mid, View view, std::uint32_t tenant,
         std::uint32_t job_width = 1);

  /// Read one whole block of `object` through its owning cache server.
  std::vector<std::byte> read(std::uint64_t object, std::uint32_t block);

  /// Write `data` at `offset` within `object`; the extent is split on
  /// block boundaries and routed to each owning server.
  Status write(std::uint64_t object, std::uint64_t offset,
               const std::vector<std::byte>& data);

  /// Flush every cache server's dirty blocks to the backend.
  Status flush_all();

  [[nodiscard]] std::uint32_t tenant() const noexcept { return tenant_; }
  [[nodiscard]] const View& view() const noexcept { return view_; }

 private:
  margo::Instance& mid_;
  View view_;
  std::uint32_t tenant_;
  std::uint32_t width_;
  hg::RpcId read_id_, write_id_, flush_id_;
};

}  // namespace sym::blockcache
