#include "services/mobject/mobject.hpp"

#include <cstdio>
#include <cstdlib>

namespace sym::mobject {
namespace {

constexpr const char* kWriteOpRpc = "mobject_write_op";
constexpr const char* kReadOpRpc = "mobject_read_op";

std::string oid_key(const std::string& name) { return "oid/" + name; }
std::string seq_key(const std::string& name) { return "seq/" + name; }
std::string extent_key(const std::string& name, std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%016llx",
                static_cast<unsigned long long>(seq));
  return "extent/" + name + buf;
}
std::string omap_key(const std::string& name, std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%016llx",
                static_cast<unsigned long long>(seq));
  return "omap/" + name + buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(margo::Instance& mid, ServerConfig config)
    : mid_(mid), cfg_(config) {
  meta_ = std::make_unique<sdskv::Provider>(
      mid_, cfg_.sdskv_provider,
      sdskv::ProviderConfig{.backend = cfg_.meta_backend, .db_count = 1});
  data_ = std::make_unique<bake::Provider>(mid_, cfg_.bake_provider);
  kv_ = std::make_unique<sdskv::Client>(mid_);
  blob_ = std::make_unique<bake::Client>(mid_);

  mid_.register_rpc(kWriteOpRpc, cfg_.mobject_provider,
                    [this](margo::Request& r) { handle_write_op(r); });
  mid_.register_rpc(kReadOpRpc, cfg_.mobject_provider,
                    [this](margo::Request& r) { handle_read_op(r); });
}

void Server::handle_write_op(margo::Request& req) {
  // Decode: object name + payload size; the payload itself is attached
  // (bulk) and pulled by BAKE below.
  auto r = req.reader();
  std::string name;
  std::uint64_t bytes = 0;
  hg::get(r, name);
  hg::get(r, bytes);
  ++writes_;

  const auto self = mid_.addr();
  const auto kvp = cfg_.sdskv_provider;
  const auto bkp = cfg_.bake_provider;

  // The sequencer translates the RADOS op into 12 discrete downstream
  // microservice calls (3 gets, 3 BAKE ops, 4 puts, 2 scans), control
  // returning to the Mobject provider after each.
  std::string oid;
  kv_->get(self, kvp, 0, oid_key(name), &oid);                      // 1 get
  if (oid.empty()) {
    oid = name;
    kv_->put(self, kvp, 0, oid_key(name), oid);                     // 2 put
  } else {
    kv_->put(self, kvp, 0, oid_key(name), oid);                     // 2 put
  }
  std::string seq_text;
  kv_->get(self, kvp, 0, seq_key(name), &seq_text);                 // 3 get
  const std::uint64_t seq = ++seq_;
  kv_->put(self, kvp, 0, seq_key(name), std::to_string(seq));       // 4 put

  // Object data path through BAKE: create, write (bulk pull of the client
  // payload relayed via our attachment), persist.
  const std::uint64_t rid = blob_->create(self, bkp, bytes);        // 5 bake
  {
    // Relay the attached payload to BAKE. We hand BAKE a copy of the
    // attachment content (sizes drive the timing; content rides along).
    const auto* payload = req.handle()->attached<std::vector<std::byte>>();
    std::vector<std::byte> data =
        payload != nullptr ? *payload : std::vector<std::byte>(bytes);
    req.bulk_pull(bytes);  // pull the client's payload into our memory
    blob_->write(self, bkp, rid, 0, std::move(data));               // 6 bake
  }
  blob_->persist(self, bkp, rid);                                   // 7 bake

  // Metadata updates: extent map, omap entry, a verification get, and two
  // omap/extent scans used by the sequencer's consistency pass.
  kv_->put(self, kvp, 0, extent_key(name, seq), std::to_string(rid));  // 8
  kv_->put(self, kvp, 0, omap_key(name, seq), std::to_string(bytes));  // 9
  std::string verify;
  kv_->get(self, kvp, 0, extent_key(name, seq), &verify);          // 10 get
  kv_->list_keyvals(self, kvp, 0, "extent/" + name, 4);            // 11 scan
  kv_->list_keyvals(self, kvp, 0, "omap/" + name, 4);              // 12 scan

  req.respond_value(seq);
}

void Server::handle_read_op(margo::Request& req) {
  auto r = req.reader();
  std::string name;
  hg::get(r, name);
  ++reads_;

  const auto self = mid_.addr();
  const auto kvp = cfg_.sdskv_provider;
  const auto bkp = cfg_.bake_provider;

  // Dominant dependency: the extent scan (sdskv_list_keyvals_rpc), exactly
  // as the paper's Fig. 6 shows for mobject_read_op. The sequencer scans the
  // whole extent namespace to locate the object's extents, so scan cost
  // grows with the number of objects stored.
  const auto extents = kv_->list_keyvals(self, kvp, 0, "extent/", 512);
  std::string oid;
  kv_->get(self, kvp, 0, oid_key(name), &oid);

  std::vector<std::byte> data;
  if (!extents.empty()) {
    const std::uint64_t rid =
        std::strtoull(extents.back().second.c_str(), nullptr, 10);
    data = blob_->read(self, bkp, rid, 0, ~0ULL >> 1);
  }
  hg::BufWriter w;
  hg::put(w, static_cast<std::uint32_t>(data.size()));
  w.write_raw(data.data(), data.size());
  req.respond(w.take());
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid)
    : mid_(mid),
      write_id_(mid.register_client_rpc(kWriteOpRpc)),
      read_id_(mid.register_client_rpc(kReadOpRpc)) {}

std::uint64_t Client::write_op(ofi::EpAddr target, std::uint16_t provider,
                               const std::string& name,
                               std::vector<std::byte> data) {
  const std::uint64_t bytes = data.size();
  auto shared =
      std::make_shared<const std::vector<std::byte>>(std::move(data));
  hg::BufWriter w;
  hg::put(w, name);
  hg::put(w, bytes);
  auto op = mid_.forward_async(target, provider, write_id_, w.take(), shared,
                               bytes);
  return hg::decode<std::uint64_t>(op->wait());
}

std::vector<std::byte> Client::read_op(ofi::EpAddr target,
                                       std::uint16_t provider,
                                       const std::string& name) {
  const auto resp = mid_.forward(target, provider, read_id_, hg::encode(name));
  hg::BufReader r(resp);
  std::uint32_t n = 0;
  hg::get(r, n);
  std::vector<std::byte> out(n);
  if (n > 0) r.read_raw(out.data(), n);
  return out;
}

}  // namespace mobject = sym::mobject
