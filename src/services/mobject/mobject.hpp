// services/mobject/mobject.hpp
//
// Mobject: a distributed object storage service exposing a subset of the
// RADOS API. Each provider node hosts three providers — the Mobject
// sequencer (client-facing), a BAKE provider (object data) and an SDSKV
// provider (metadata) — and the sequencer translates RADOS-style write/read
// ops into chains of BAKE and SDSKV RPCs. Control always returns to the
// Mobject provider between steps (paper §V-A, Fig. 4), so a single
// `mobject_write_op` fans out into 12 discrete downstream microservice
// calls, which the SYMBIOSYS trace discovers (Fig. 5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "margolite/instance.hpp"
#include "services/bake/bake.hpp"
#include "services/sdskv/sdskv.hpp"

namespace sym::mobject {

struct ServerConfig {
  std::uint16_t mobject_provider = 1;
  std::uint16_t bake_provider = 2;
  std::uint16_t sdskv_provider = 3;
  sdskv::BackendType meta_backend = sdskv::BackendType::kMap;
};

/// One Mobject provider node: sequencer + BAKE + SDSKV on one margolite
/// instance, plus internal clients the sequencer uses for downstream calls.
class Server {
 public:
  Server(margo::Instance& mid, ServerConfig config = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] sdskv::Provider& meta() noexcept { return *meta_; }
  [[nodiscard]] bake::Provider& data() noexcept { return *data_; }
  [[nodiscard]] std::uint64_t write_ops() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t read_ops() const noexcept { return reads_; }

 private:
  void handle_write_op(margo::Request& req);
  void handle_read_op(margo::Request& req);

  margo::Instance& mid_;
  ServerConfig cfg_;
  std::unique_ptr<sdskv::Provider> meta_;
  std::unique_ptr<bake::Provider> data_;
  std::unique_ptr<sdskv::Client> kv_;
  std::unique_ptr<bake::Client> blob_;
  std::uint64_t seq_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
};

/// Client-side RADOS-subset API.
class Client {
 public:
  explicit Client(margo::Instance& mid);

  /// Write (append-style) `data` to object `name`. Returns the assigned
  /// sequence number.
  std::uint64_t write_op(ofi::EpAddr target, std::uint16_t provider,
                         const std::string& name, std::vector<std::byte> data);

  /// Read back the object's latest extent.
  std::vector<std::byte> read_op(ofi::EpAddr target, std::uint16_t provider,
                                 const std::string& name);

 private:
  margo::Instance& mid_;
  hg::RpcId write_id_, read_id_;
};

}  // namespace sym::mobject
