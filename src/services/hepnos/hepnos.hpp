// services/hepnos/hepnos.hpp
//
// HEPnOS: the Mochi storage service for high-energy-physics event data
// (Fermilab workflows). Data is arranged in a hierarchy of datasets, runs,
// subruns and events; each service provider node hosts one BAKE provider
// (object data) and one SDSKV provider (object metadata), and clients talk
// to both directly through a C++ API (paper §V-C, Fig. 8).
//
// The study's workload is the *data-loader* step: it reads event files and
// writes batches of serialized events into the service with
// `sdskv_put_packed`, hashing each key over the configured databases.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "margolite/instance.hpp"
#include "services/bake/bake.hpp"
#include "services/sdskv/sdskv.hpp"

namespace sym::hepnos {

struct ServerConfig {
  std::uint16_t sdskv_provider = 1;
  std::uint16_t bake_provider = 2;
  sdskv::BackendType backend = sdskv::BackendType::kMap;
  std::uint32_t databases = 8;  ///< Table IV "Databases" (per provider)
};

/// One HEPnOS service provider process: one SDSKV + one BAKE provider.
class Server {
 public:
  Server(margo::Instance& mid, ServerConfig config = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] sdskv::Provider& kv() noexcept { return *kv_; }
  [[nodiscard]] bake::Provider& blob() noexcept { return *blob_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  /// Total events stored across this provider's databases.
  [[nodiscard]] std::size_t events_stored() const noexcept {
    return kv_->total_size();
  }

 private:
  margo::Instance& mid_;
  ServerConfig cfg_;
  std::unique_ptr<sdskv::Provider> kv_;
  std::unique_ptr<bake::Provider> blob_;
};

/// Hierarchical event identifier.
struct EventId {
  std::string dataset;
  std::uint32_t run = 0;
  std::uint32_t subrun = 0;
  std::uint64_t event = 0;

  [[nodiscard]] std::string key() const;
};

/// Client-side view of a deployed HEPnOS service: a set of provider
/// endpoints, each with `dbs_per_server` databases, addressed by hashing
/// event keys over all databases (the data-loader's distribution scheme).
class DataStore {
 public:
  DataStore(margo::Instance& mid, std::vector<ofi::EpAddr> servers,
            std::uint16_t sdskv_provider, std::uint32_t dbs_per_server);

  [[nodiscard]] std::uint32_t total_databases() const noexcept {
    return static_cast<std::uint32_t>(servers_.size()) * dbs_per_server_;
  }
  [[nodiscard]] std::uint32_t db_of_key(const std::string& key) const;

  /// Synchronous single-event store (batch size 1 path).
  void store_event(const EventId& id, std::string payload);

  /// A batch of events accumulated client-side, grouped per database and
  /// flushed as one sdskv_put_packed per non-empty group.
  class WriteBatch {
   public:
    explicit WriteBatch(DataStore& store) : store_(store) {}

    void store(const EventId& id, std::string payload);
    [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

    /// Issue all put_packed RPCs asynchronously, then wait for every one.
    void flush();

    /// Issue all put_packed RPCs asynchronously and hand back the pending
    /// operations (the data-loader pipelines small batches this way).
    [[nodiscard]] std::vector<margo::PendingOpPtr> flush_async();

   private:
    DataStore& store_;
    std::map<std::uint32_t, std::vector<sdskv::KeyValue>> groups_;
    std::size_t pending_ = 0;
  };

  /// Read an event back (for verification paths).
  bool load_event(const EventId& id, std::string* payload);

  /// Raw key-value access used by the hierarchical object API. Keys are
  /// routed to (server, database) by the same hash scheme as events.
  void put_raw(const std::string& key, std::string value);
  bool get_raw(const std::string& key, std::string* value);
  /// Scan every database for keys strictly greater than `start` that begin
  /// with `prefix` (hierarchy listings must visit all databases since keys
  /// are hash-distributed).
  [[nodiscard]] std::vector<sdskv::KeyValue> scan_prefix(
      const std::string& prefix, std::uint32_t max_per_db = 256);

  [[nodiscard]] sdskv::Client& kv() noexcept { return kv_; }
  [[nodiscard]] margo::Instance& instance() noexcept { return mid_; }

 private:
  friend class WriteBatch;

  margo::Instance& mid_;
  sdskv::Client kv_;
  std::vector<ofi::EpAddr> servers_;
  std::uint16_t sdskv_provider_;
  std::uint32_t dbs_per_server_;
};

// ---------------------------------------------------------------------------
// Hierarchical object API (mirrors HEPnOS's C++ client interface):
// DataSets contain Runs contain SubRuns contain Events; Events hold named
// products. All metadata and products live in the SDSKV providers, keyed by
// the hierarchy path and distributed by the same hashing scheme the
// data-loader uses.
// ---------------------------------------------------------------------------

class Run;
class SubRun;
class Event;

class DataSet {
 public:
  DataSet(DataStore& store, std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Create (idempotently) and open a run.
  Run create_run(std::uint32_t number);
  /// True if the run's marker exists.
  [[nodiscard]] bool has_run(std::uint32_t number);

 private:
  DataStore& store_;
  std::string name_;
};

class Run {
 public:
  Run(DataStore& store, std::string dataset, std::uint32_t number)
      : store_(store), dataset_(std::move(dataset)), number_(number) {}

  [[nodiscard]] std::uint32_t number() const noexcept { return number_; }
  SubRun create_subrun(std::uint32_t number);

 private:
  friend class DataSet;
  DataStore& store_;
  std::string dataset_;
  std::uint32_t number_;
};

class SubRun {
 public:
  SubRun(DataStore& store, std::string dataset, std::uint32_t run,
         std::uint32_t number)
      : store_(store),
        dataset_(std::move(dataset)),
        run_(run),
        number_(number) {}

  [[nodiscard]] std::uint32_t number() const noexcept { return number_; }
  Event create_event(std::uint64_t number);

 private:
  DataStore& store_;
  std::string dataset_;
  std::uint32_t run_;
  std::uint32_t number_;
};

/// An event handle: products are serialized C++ objects stored by label.
class Event {
 public:
  Event(DataStore& store, EventId id) : store_(store), id_(std::move(id)) {}

  [[nodiscard]] const EventId& id() const noexcept { return id_; }

  /// Store a named product (serialized object bytes).
  void store_product(const std::string& label, std::string data);

  /// Load a named product; false if absent.
  bool load_product(const std::string& label, std::string* data);

  /// List the labels of all products attached to this event.
  [[nodiscard]] std::vector<std::string> product_labels();

 private:
  DataStore& store_;
  EventId id_;
};

/// Synthetic stand-in for the HDF5 event files the paper's data-loader
/// reads from a parallel file system: per-file event counts and payload
/// geometry are configurable; "reading" costs IO wait plus per-event
/// serialization CPU.
struct EventFileModel {
  std::uint32_t events_per_file = 4096;
  std::uint32_t payload_bytes = 512;       ///< serialized event size
  sim::DurationNs read_latency = sim::msec(2);
  double read_bw_bytes_per_ns = 1.0;       ///< PFS streaming bandwidth
  sim::DurationNs serialize_per_event = sim::nsec(800);
};

/// The data-loader client step: reads `files` synthetic event files and
/// writes every event into the data store in batches of `batch_size`.
struct DataLoaderStats {
  std::uint64_t events = 0;
  std::uint64_t rpcs = 0;
  sim::DurationNs elapsed = 0;
};

/// `pipeline_ops` put_packed operations are kept in flight before the
/// loader drains (0 = drain after every batch flush). `start_delay` models
/// natural client desynchronization (staggered job launch / PFS variance).
DataLoaderStats run_data_loader(DataStore& store, const EventFileModel& model,
                                std::uint32_t files, std::uint32_t batch_size,
                                const std::string& dataset,
                                std::uint32_t client_rank,
                                std::uint32_t pipeline_ops = 0,
                                sim::DurationNs start_delay = 0);

}  // namespace sym::hepnos
