#include "services/hepnos/hepnos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "argolite/runtime.hpp"
#include "simkit/rng.hpp"

namespace sym::hepnos {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(margo::Instance& mid, ServerConfig config)
    : mid_(mid), cfg_(config) {
  kv_ = std::make_unique<sdskv::Provider>(
      mid_, cfg_.sdskv_provider,
      sdskv::ProviderConfig{.backend = cfg_.backend,
                            .db_count = cfg_.databases});
  blob_ = std::make_unique<bake::Provider>(mid_, cfg_.bake_provider);
}

// ---------------------------------------------------------------------------
// EventId / DataStore
// ---------------------------------------------------------------------------

std::string EventId::key() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%%%08x%%%08x%%%016llx", run, subrun,
                static_cast<unsigned long long>(event));
  return dataset + buf;
}

DataStore::DataStore(margo::Instance& mid, std::vector<ofi::EpAddr> servers,
                     std::uint16_t sdskv_provider,
                     std::uint32_t dbs_per_server)
    : mid_(mid),
      kv_(mid),
      servers_(std::move(servers)),
      sdskv_provider_(sdskv_provider),
      dbs_per_server_(dbs_per_server) {}

std::uint32_t DataStore::db_of_key(const std::string& key) const {
  const auto h = sim::fnv1a64(key.data(), key.size());
  return static_cast<std::uint32_t>(h % total_databases());
}

void DataStore::store_event(const EventId& id, std::string payload) {
  const std::string key = id.key();
  const std::uint32_t db = db_of_key(key);
  const std::uint32_t server = db / dbs_per_server_;
  kv_.put_packed(servers_.at(server), sdskv_provider_, db % dbs_per_server_,
                 {{key, std::move(payload)}});
}

bool DataStore::load_event(const EventId& id, std::string* payload) {
  const std::string key = id.key();
  const std::uint32_t db = db_of_key(key);
  const std::uint32_t server = db / dbs_per_server_;
  return kv_.get(servers_.at(server), sdskv_provider_, db % dbs_per_server_,
                 key, payload) == sdskv::Status::kOk;
}

void DataStore::WriteBatch::store(const EventId& id, std::string payload) {
  const std::string key = id.key();
  groups_[store_.db_of_key(key)].emplace_back(key, std::move(payload));
  ++pending_;
}

std::vector<margo::PendingOpPtr> DataStore::WriteBatch::flush_async() {
  // One put_packed per non-empty database group, all in flight at once —
  // this is why "more databases" means "more RPCs" (paper §V-C3).
  std::vector<margo::PendingOpPtr> ops;
  ops.reserve(groups_.size());
  for (auto& [db, kvs] : groups_) {
    const std::uint32_t server = db / store_.dbs_per_server_;
    ops.push_back(store_.kv_.iput_packed(store_.servers_.at(server),
                                         store_.sdskv_provider_,
                                         db % store_.dbs_per_server_,
                                         std::move(kvs)));
  }
  groups_.clear();
  pending_ = 0;
  return ops;
}

void DataStore::WriteBatch::flush() {
  auto ops = flush_async();
  for (auto& op : ops) sdskv::Client::finish_put_packed(op);
}

// ---------------------------------------------------------------------------
// Data loader
// ---------------------------------------------------------------------------

DataLoaderStats run_data_loader(DataStore& store, const EventFileModel& model,
                                std::uint32_t files, std::uint32_t batch_size,
                                const std::string& dataset,
                                std::uint32_t client_rank,
                                std::uint32_t pipeline_ops,
                                sim::DurationNs start_delay) {
  DataLoaderStats stats;
  auto& mid = store.instance();
  if (start_delay > 0) abt::sleep_for(start_delay);
  const sim::TimeNs t0 = mid.engine().now();
  const std::uint64_t before_rpcs = mid.hg_class().num_rpcs_invoked();

  // The loader pipelines: each full batch is flushed asynchronously and up
  // to kMaxInflightOps put_packed operations ride the network concurrently
  // before the loader drains. With a low batch size this floods the origin
  // with small RPCs — the behaviour dissected in configurations C5..C7.
  const std::size_t max_inflight = pipeline_ops;
  std::vector<margo::PendingOpPtr> inflight;
  auto drain = [&inflight] {
    for (auto& op : inflight) sdskv::Client::finish_put_packed(op);
    inflight.clear();
  };

  std::uint64_t event_no = 0;
  for (std::uint32_t f = 0; f < files; ++f) {
    // "Read" one HDF5 event file from the PFS: latency + streaming time
    // (IO wait — the ES stays available), then per-event serialization CPU.
    const std::uint64_t file_bytes =
        static_cast<std::uint64_t>(model.events_per_file) *
        model.payload_bytes;
    const double jitter =
        mid.engine().rng().uniform_real(0.85, 1.15);  // PFS variance
    abt::sleep_for(static_cast<sim::DurationNs>(
        jitter * (static_cast<double>(model.read_latency) +
                  static_cast<double>(file_bytes) /
                      model.read_bw_bytes_per_ns)));

    DataStore::WriteBatch batch(store);
    for (std::uint32_t e = 0; e < model.events_per_file; ++e) {
      abt::compute(model.serialize_per_event);
      // Cooperative yield so the (possibly ES-sharing) progress ULT can run
      // between event serializations, as margo-aware client code does.
      if ((e & 63u) == 63u) abt::yield();
      EventId id;
      id.dataset = dataset;
      id.run = client_rank;
      id.subrun = f;
      id.event = event_no++;
      batch.store(id, std::string(model.payload_bytes, 'x'));
      ++stats.events;
      if (batch.pending() >= batch_size) {
        auto ops = batch.flush_async();
        inflight.insert(inflight.end(), ops.begin(), ops.end());
        if (inflight.size() >= max_inflight) drain();
      }
    }
    if (batch.pending() > 0) {
      auto ops = batch.flush_async();
      inflight.insert(inflight.end(), ops.begin(), ops.end());
    }
    drain();
  }

  stats.rpcs = mid.hg_class().num_rpcs_invoked() - before_rpcs;
  stats.elapsed = mid.engine().now() - t0;
  return stats;
}


// ---------------------------------------------------------------------------
// Raw key-value routing for the hierarchical object API
// ---------------------------------------------------------------------------

void DataStore::put_raw(const std::string& key, std::string value) {
  const std::uint32_t db = db_of_key(key);
  const std::uint32_t server = db / dbs_per_server_;
  kv_.put(servers_.at(server), sdskv_provider_, db % dbs_per_server_, key,
          value);
}

bool DataStore::get_raw(const std::string& key, std::string* value) {
  const std::uint32_t db = db_of_key(key);
  const std::uint32_t server = db / dbs_per_server_;
  return kv_.get(servers_.at(server), sdskv_provider_, db % dbs_per_server_,
                 key, value) == sdskv::Status::kOk;
}

std::vector<sdskv::KeyValue> DataStore::scan_prefix(const std::string& prefix,
                                                    std::uint32_t max_per_db) {
  std::vector<sdskv::KeyValue> out;
  for (std::uint32_t db = 0; db < total_databases(); ++db) {
    const std::uint32_t server = db / dbs_per_server_;
    // Start just before the prefix so matching keys are returned; the scan
    // is strictly-greater-than, so back off by one character.
    std::string start = prefix;
    if (!start.empty()) --start.back();
    auto chunk = kv_.list_keyvals(servers_.at(server), sdskv_provider_,
                                  db % dbs_per_server_, start, max_per_db);
    for (auto& kv : chunk) {
      if (kv.first.rfind(prefix, 0) == 0) out.push_back(std::move(kv));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Hierarchical object API
// ---------------------------------------------------------------------------

namespace {

std::string run_marker(const std::string& ds, std::uint32_t run) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/run/%08x", run);
  return ds + buf;
}

std::string subrun_marker(const std::string& ds, std::uint32_t run,
                          std::uint32_t subrun) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "/subrun/%08x/%08x", run, subrun);
  return ds + buf;
}

std::string product_key(const EventId& id, const std::string& label) {
  return id.key() + "#" + label;
}

}  // namespace

DataSet::DataSet(DataStore& store, std::string name)
    : store_(store), name_(std::move(name)) {
  store_.put_raw("/dataset/" + name_, "");
}

Run DataSet::create_run(std::uint32_t number) {
  store_.put_raw(run_marker(name_, number), "");
  return Run(store_, name_, number);
}

bool DataSet::has_run(std::uint32_t number) {
  std::string v;
  return store_.get_raw(run_marker(name_, number), &v);
}

SubRun Run::create_subrun(std::uint32_t number) {
  store_.put_raw(subrun_marker(dataset_, number_, number), "");
  return SubRun(store_, dataset_, number_, number);
}

Event SubRun::create_event(std::uint64_t number) {
  EventId id;
  id.dataset = dataset_;
  id.run = run_;
  id.subrun = number_;
  id.event = number;
  store_.put_raw(id.key(), "");
  return Event(store_, std::move(id));
}

void Event::store_product(const std::string& label, std::string data) {
  store_.put_raw(product_key(id_, label), std::move(data));
}

bool Event::load_product(const std::string& label, std::string* data) {
  return store_.get_raw(product_key(id_, label), data);
}

std::vector<std::string> Event::product_labels() {
  std::vector<std::string> labels;
  const auto prefix = id_.key() + "#";
  for (auto& [k, v] : store_.scan_prefix(prefix)) {
    labels.push_back(k.substr(prefix.size()));
  }
  return labels;
}

}  // namespace sym::hepnos
