#include "services/flamestore/flamestore.hpp"

#include "argolite/runtime.hpp"

namespace sym::flame {
namespace {

constexpr const char* kRegisterRpc = "flamestore_register_model_rpc";
constexpr const char* kWriteLayerRpc = "flamestore_write_layer_rpc";
constexpr const char* kReadLayerRpc = "flamestore_read_layer_rpc";
constexpr const char* kGetModelRpc = "flamestore_get_model_rpc";
constexpr const char* kListModelsRpc = "flamestore_list_models_rpc";

constexpr sim::DurationNs kMetaOpCost = sim::nsec(1200);
constexpr double kJsonValidateNsPerByte = 1.0;
constexpr double kWeightStageNsPerByte = 0.05;

}  // namespace

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

Provider::Provider(margo::Instance& mid, std::uint16_t provider_id)
    : mid_(mid), provider_id_(provider_id), device_(mid.engine()) {
  mid_.register_rpc(kRegisterRpc, provider_id_,
                    [this](margo::Request& r) { handle_register(r); });
  mid_.register_rpc(kWriteLayerRpc, provider_id_,
                    [this](margo::Request& r) { handle_write_layer(r); });
  mid_.register_rpc(kReadLayerRpc, provider_id_,
                    [this](margo::Request& r) { handle_read_layer(r); });
  mid_.register_rpc(kGetModelRpc, provider_id_,
                    [this](margo::Request& r) { handle_get_model(r); });
  mid_.register_rpc(kListModelsRpc, provider_id_,
                    [this](margo::Request& r) { handle_list_models(r); });
}

void Provider::handle_register(margo::Request& req) {
  auto r = req.reader();
  std::string name, arch;
  hg::get(r, name);
  hg::get(r, arch);
  if (models_.count(name) != 0) {
    req.respond_value(static_cast<std::uint8_t>(Status::kExists));
    return;
  }
  // Validate the architecture document (real parse + modeled cost).
  abt::compute(kMetaOpCost + static_cast<sim::DurationNs>(
                                 arch.size() * kJsonValidateNsPerByte));
  try {
    ModelEntry entry;
    entry.architecture = json::parse(arch);
    models_.emplace(name, std::move(entry));
    mid_.process().add_rss(static_cast<std::int64_t>(arch.size()));
    req.respond_value(static_cast<std::uint8_t>(Status::kOk));
  } catch (const json::ParseError&) {
    req.respond_value(static_cast<std::uint8_t>(Status::kBadJson));
  }
}

void Provider::handle_write_layer(margo::Request& req) {
  auto r = req.reader();
  std::string model, layer;
  std::uint64_t bytes = 0;
  hg::get(r, model);
  hg::get(r, layer);
  hg::get(r, bytes);
  auto it = models_.find(model);
  if (it == models_.end()) {
    req.respond_value(static_cast<std::uint8_t>(Status::kNoModel));
    return;
  }
  // Weights come through the bulk interface, get staged, then persisted.
  req.bulk_pull(bytes);
  abt::compute(static_cast<sim::DurationNs>(
      static_cast<double>(bytes) * kWeightStageNsPerByte));
  const auto* payload = req.handle()->attached<std::vector<std::byte>>();
  auto& slot = it->second.layers[layer];
  const auto before = static_cast<std::int64_t>(slot.size());
  slot = payload != nullptr ? *payload
                            : std::vector<std::byte>(bytes);
  const auto delta = static_cast<std::int64_t>(slot.size()) - before;
  bytes_stored_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(bytes_stored_) + delta);
  mid_.process().add_rss(delta);
  device_.write(bytes);
  req.respond_value(static_cast<std::uint8_t>(Status::kOk));
}

void Provider::handle_read_layer(margo::Request& req) {
  auto r = req.reader();
  std::string model, layer;
  hg::get(r, model);
  hg::get(r, layer);
  hg::BufWriter w;
  auto it = models_.find(model);
  if (it == models_.end()) {
    hg::put(w, static_cast<std::uint8_t>(Status::kNoModel));
    hg::put(w, std::uint32_t{0});
    req.respond(w.take());
    return;
  }
  auto lit = it->second.layers.find(layer);
  if (lit == it->second.layers.end()) {
    hg::put(w, static_cast<std::uint8_t>(Status::kNoLayer));
    hg::put(w, std::uint32_t{0});
    req.respond(w.take());
    return;
  }
  hg::put(w, static_cast<std::uint8_t>(Status::kOk));
  hg::put(w, static_cast<std::uint32_t>(lit->second.size()));
  w.write_raw(lit->second.data(), lit->second.size());
  req.respond(w.take());
}

void Provider::handle_get_model(margo::Request& req) {
  auto r = req.reader();
  std::string name;
  hg::get(r, name);
  abt::compute(kMetaOpCost);
  hg::BufWriter w;
  auto it = models_.find(name);
  if (it == models_.end()) {
    hg::put(w, static_cast<std::uint8_t>(Status::kNoModel));
    hg::put(w, std::string());
    hg::put(w, std::vector<std::string>{});
    hg::put(w, std::uint64_t{0});
    req.respond(w.take());
    return;
  }
  std::vector<std::string> layers;
  std::uint64_t total = 0;
  for (const auto& [layer, weights] : it->second.layers) {
    layers.push_back(layer);
    total += weights.size();
  }
  hg::put(w, static_cast<std::uint8_t>(Status::kOk));
  hg::put(w, json::dump(it->second.architecture));
  hg::put(w, layers);
  hg::put(w, total);
  req.respond(w.take());
}

void Provider::handle_list_models(margo::Request& req) {
  abt::compute(kMetaOpCost);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  req.respond_value(names);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid)
    : mid_(mid),
      register_id_(mid.register_client_rpc(kRegisterRpc)),
      write_id_(mid.register_client_rpc(kWriteLayerRpc)),
      read_id_(mid.register_client_rpc(kReadLayerRpc)),
      get_id_(mid.register_client_rpc(kGetModelRpc)),
      list_id_(mid.register_client_rpc(kListModelsRpc)) {}

Status Client::register_model(ofi::EpAddr target, std::uint16_t provider,
                              const std::string& name,
                              const std::string& architecture_json) {
  hg::BufWriter w;
  hg::put(w, name);
  hg::put(w, architecture_json);
  return static_cast<Status>(hg::decode<std::uint8_t>(
      mid_.forward(target, provider, register_id_, w.take())));
}

Status Client::write_layer(ofi::EpAddr target, std::uint16_t provider,
                           const std::string& model, const std::string& layer,
                           std::vector<std::byte> weights) {
  const std::uint64_t bytes = weights.size();
  auto shared =
      std::make_shared<const std::vector<std::byte>>(std::move(weights));
  hg::BufWriter w;
  hg::put(w, model);
  hg::put(w, layer);
  hg::put(w, bytes);
  auto op = mid_.forward_async(target, provider, write_id_, w.take(), shared,
                               bytes);
  return static_cast<Status>(hg::decode<std::uint8_t>(op->wait()));
}

Status Client::read_layer(ofi::EpAddr target, std::uint16_t provider,
                          const std::string& model, const std::string& layer,
                          std::vector<std::byte>* weights) {
  hg::BufWriter w;
  hg::put(w, model);
  hg::put(w, layer);
  const auto resp = mid_.forward(target, provider, read_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::uint32_t n = 0;
  hg::get(r, status);
  hg::get(r, n);
  if (weights != nullptr) {
    weights->resize(n);
    if (n > 0) r.read_raw(weights->data(), n);
  }
  return static_cast<Status>(status);
}

Status Client::get_model(ofi::EpAddr target, std::uint16_t provider,
                         const std::string& name, ModelInfo* info) {
  const auto resp =
      mid_.forward(target, provider, get_id_, hg::encode(name));
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  hg::get(r, status);
  ModelInfo out;
  out.name = name;
  hg::get(r, out.architecture_json);
  hg::get(r, out.layers);
  hg::get(r, out.total_bytes);
  if (info != nullptr) *info = std::move(out);
  return static_cast<Status>(status);
}

std::vector<std::string> Client::list_models(ofi::EpAddr target,
                                             std::uint16_t provider) {
  return hg::decode<std::vector<std::string>>(
      mid_.forward(target, provider, list_id_, {}));
}

Status Client::save_model(
    ofi::EpAddr target, std::uint16_t provider, const std::string& name,
    const std::string& architecture_json,
    const std::map<std::string, std::vector<std::byte>>& layers) {
  const auto reg = register_model(target, provider, name, architecture_json);
  if (reg != Status::kOk && reg != Status::kExists) return reg;

  // All layer transfers in flight concurrently (the checkpoint pattern).
  struct Pending {
    margo::PendingOpPtr op;
  };
  std::vector<Pending> ops;
  for (const auto& [layer, weights] : layers) {
    const std::uint64_t bytes = weights.size();
    auto shared = std::make_shared<const std::vector<std::byte>>(weights);
    hg::BufWriter w;
    hg::put(w, name);
    hg::put(w, layer);
    hg::put(w, bytes);
    ops.push_back({mid_.forward_async(target, provider, write_id_, w.take(),
                                      shared, bytes)});
  }
  Status worst = Status::kOk;
  for (auto& p : ops) {
    const auto s = static_cast<Status>(hg::decode<std::uint8_t>(p.op->wait()));
    if (s != Status::kOk) worst = s;
  }
  return worst;
}

}  // namespace sym::flame
