// services/flamestore/flamestore.hpp
//
// FlameStore-lite: "a data service designed to support distributed deep
// learning workflows" (paper §I) — the remaining Mochi-enabled service
// named by the paper. A FlameStore provider stores neural-network models:
// the architecture travels as a JSON document (RPC metadata, Sonata-style),
// the layer weights as blobs through the bulk interface (BAKE-style), so a
// checkpoint exercises both transfer paths at once.
//
// RPCs: flamestore_register_model_rpc, flamestore_write_layer_rpc (bulk),
//       flamestore_read_layer_rpc, flamestore_get_model_rpc,
//       flamestore_list_models_rpc.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "margolite/instance.hpp"
#include "services/bake/bake.hpp"  // StorageDevice
#include "services/sonata/json.hpp"

namespace sym::flame {

enum class Status : std::uint8_t {
  kOk = 0,
  kNoModel = 1,
  kNoLayer = 2,
  kExists = 3,
  kBadJson = 4,
};

struct ModelInfo {
  std::string name;
  std::string architecture_json;
  std::vector<std::string> layers;
  std::uint64_t total_bytes = 0;
};

class Provider {
 public:
  Provider(margo::Instance& mid, std::uint16_t provider_id);
  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  [[nodiscard]] std::size_t model_count() const noexcept {
    return models_.size();
  }
  [[nodiscard]] std::uint64_t bytes_stored() const noexcept {
    return bytes_stored_;
  }
  [[nodiscard]] bake::StorageDevice& device() noexcept { return device_; }

 private:
  struct ModelEntry {
    json::Value architecture;
    std::map<std::string, std::vector<std::byte>> layers;
  };

  void handle_register(margo::Request& req);
  void handle_write_layer(margo::Request& req);
  void handle_read_layer(margo::Request& req);
  void handle_get_model(margo::Request& req);
  void handle_list_models(margo::Request& req);

  margo::Instance& mid_;
  std::uint16_t provider_id_;
  bake::StorageDevice device_;
  std::map<std::string, ModelEntry> models_;
  std::uint64_t bytes_stored_ = 0;
};

class Client {
 public:
  explicit Client(margo::Instance& mid);

  /// Register a model by name with its architecture JSON (validated
  /// server-side). kExists if already registered.
  Status register_model(ofi::EpAddr target, std::uint16_t provider,
                        const std::string& name,
                        const std::string& architecture_json);

  /// Store one layer's weights (bulk path).
  Status write_layer(ofi::EpAddr target, std::uint16_t provider,
                     const std::string& model, const std::string& layer,
                     std::vector<std::byte> weights);

  /// Read a layer's weights back.
  Status read_layer(ofi::EpAddr target, std::uint16_t provider,
                    const std::string& model, const std::string& layer,
                    std::vector<std::byte>* weights);

  /// Fetch a model's architecture and layer inventory.
  Status get_model(ofi::EpAddr target, std::uint16_t provider,
                   const std::string& name, ModelInfo* info);

  std::vector<std::string> list_models(ofi::EpAddr target,
                                       std::uint16_t provider);

  /// Checkpoint convenience: register (if new) and write every layer, all
  /// layer transfers in flight concurrently.
  Status save_model(ofi::EpAddr target, std::uint16_t provider,
                    const std::string& name,
                    const std::string& architecture_json,
                    const std::map<std::string, std::vector<std::byte>>&
                        layers);

 private:
  margo::Instance& mid_;
  hg::RpcId register_id_, write_id_, read_id_, get_id_, list_id_;
};

}  // namespace sym::flame
