#include "services/bake/bake.hpp"

#include <cmath>
#include <cstring>

#include "argolite/runtime.hpp"

namespace sym::bake {
namespace {

constexpr const char* kCreateRpc = "bake_create_rpc";
constexpr const char* kWriteRpc = "bake_write_rpc";
constexpr const char* kPersistRpc = "bake_persist_rpc";
constexpr const char* kCwpRpc = "bake_create_write_persist_rpc";
constexpr const char* kReadRpc = "bake_read_rpc";
constexpr const char* kProbeRpc = "bake_probe_rpc";

// Memory-copy CPU cost for staging bulk data into a region.
constexpr double kCopyNsPerByte = 0.05;

}  // namespace

// ---------------------------------------------------------------------------
// StorageDevice
// ---------------------------------------------------------------------------

sim::DurationNs StorageDevice::write(std::uint64_t bytes) {
  const sim::TimeNs now = engine_.now();
  const sim::TimeNs start = now > busy_until_ ? now : busy_until_;
  const auto xfer = static_cast<sim::DurationNs>(
      std::llround(static_cast<double>(bytes) / write_bw_));
  busy_until_ = start + op_latency_ + xfer;
  bytes_written_ += bytes;
  const sim::DurationNs wait = busy_until_ - now;
  abt::sleep_for(wait);  // IO wait: the ULT blocks, the ES stays free
  return wait;
}

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

Provider::Provider(margo::Instance& mid, std::uint16_t provider_id)
    : mid_(mid), provider_id_(provider_id), device_(mid.engine()) {
  mid_.register_rpc(kCreateRpc, provider_id_,
                    [this](margo::Request& r) { handle_create(r); });
  mid_.register_rpc(kWriteRpc, provider_id_,
                    [this](margo::Request& r) { handle_write(r); });
  mid_.register_rpc(kPersistRpc, provider_id_,
                    [this](margo::Request& r) { handle_persist(r); });
  mid_.register_rpc(kCwpRpc, provider_id_,
                    [this](margo::Request& r) { handle_create_write_persist(r); });
  mid_.register_rpc(kReadRpc, provider_id_,
                    [this](margo::Request& r) { handle_read(r); });
  mid_.register_rpc(kProbeRpc, provider_id_,
                    [this](margo::Request& r) { handle_probe(r); });
}

const Region* Provider::region(std::uint64_t rid) const {
  auto it = regions_.find(rid);
  return it == regions_.end() ? nullptr : &it->second;
}

std::uint64_t Provider::do_create(std::uint64_t size) {
  const std::uint64_t rid = next_rid_++;
  Region& r = regions_[rid];
  r.capacity = size;
  mid_.process().add_rss(static_cast<std::int64_t>(size));
  return rid;
}

Status Provider::do_write(std::uint64_t rid, std::uint64_t offset,
                          const std::vector<std::byte>* content,
                          std::uint64_t bytes, margo::Request& req) {
  auto it = regions_.find(rid);
  if (it == regions_.end()) return Status::kNoRegion;
  Region& region = it->second;

  // Pull blob content from the origin through the bulk interface.
  req.bulk_pull(bytes);
  // Staging copy into the region buffer.
  abt::compute(static_cast<sim::DurationNs>(
      std::llround(static_cast<double>(bytes) * kCopyNsPerByte)));
  if (region.data.size() < offset + bytes) region.data.resize(offset + bytes);
  if (content != nullptr && !content->empty()) {
    std::memcpy(region.data.data() + offset, content->data(),
                std::min<std::size_t>(content->size(), bytes));
  }
  region.persisted = false;
  return Status::kOk;
}

void Provider::handle_create(margo::Request& req) {
  auto r = req.reader();
  std::uint64_t size = 0;
  hg::get(r, size);
  req.respond_value(do_create(size));
}

void Provider::handle_write(margo::Request& req) {
  auto r = req.reader();
  std::uint64_t rid = 0, offset = 0, bytes = 0;
  hg::get(r, rid);
  hg::get(r, offset);
  hg::get(r, bytes);
  const auto* content = req.handle()->attached<std::vector<std::byte>>();
  req.respond_value(static_cast<std::uint8_t>(
      do_write(rid, offset, content, bytes, req)));
}

void Provider::handle_persist(margo::Request& req) {
  auto r = req.reader();
  std::uint64_t rid = 0;
  hg::get(r, rid);
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    req.respond_value(static_cast<std::uint8_t>(Status::kNoRegion));
    return;
  }
  device_.write(it->second.data.size());
  it->second.persisted = true;
  req.respond_value(static_cast<std::uint8_t>(Status::kOk));
}

void Provider::handle_create_write_persist(margo::Request& req) {
  auto r = req.reader();
  std::uint64_t bytes = 0;
  hg::get(r, bytes);
  const std::uint64_t rid = do_create(bytes);
  const auto* content = req.handle()->attached<std::vector<std::byte>>();
  do_write(rid, 0, content, bytes, req);
  device_.write(bytes);
  regions_[rid].persisted = true;
  req.respond_value(rid);
}

void Provider::handle_read(margo::Request& req) {
  auto r = req.reader();
  std::uint64_t rid = 0, offset = 0, len = 0;
  hg::get(r, rid);
  hg::get(r, offset);
  hg::get(r, len);
  hg::BufWriter w;
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    hg::put(w, static_cast<std::uint8_t>(Status::kNoRegion));
    hg::put(w, std::uint32_t{0});
    req.respond(w.take());
    return;
  }
  const Region& region = it->second;
  const std::uint64_t avail =
      offset < region.data.size() ? region.data.size() - offset : 0;
  const std::uint64_t n = std::min(len, avail);
  hg::put(w, static_cast<std::uint8_t>(Status::kOk));
  hg::put(w, static_cast<std::uint32_t>(n));
  w.write_raw(region.data.data() + offset, n);
  req.respond(w.take());
}

void Provider::handle_probe(margo::Request& req) {
  req.respond_value(static_cast<std::uint64_t>(regions_.size()));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(margo::Instance& mid)
    : mid_(mid),
      create_id_(mid.register_client_rpc(kCreateRpc)),
      write_id_(mid.register_client_rpc(kWriteRpc)),
      persist_id_(mid.register_client_rpc(kPersistRpc)),
      cwp_id_(mid.register_client_rpc(kCwpRpc)),
      read_id_(mid.register_client_rpc(kReadRpc)),
      probe_id_(mid.register_client_rpc(kProbeRpc)) {}

std::uint64_t Client::create(ofi::EpAddr target, std::uint16_t provider,
                             std::uint64_t size) {
  return hg::decode<std::uint64_t>(
      mid_.forward(target, provider, create_id_, hg::encode(size)));
}

Status Client::write(ofi::EpAddr target, std::uint16_t provider,
                     std::uint64_t rid, std::uint64_t offset,
                     std::vector<std::byte> data) {
  const std::uint64_t bytes = data.size();
  auto shared =
      // symlint: allow(may-allocate) reason=payload moves once into a
      // shared RPC buffer; client writes are service calls, not lane events
      std::make_shared<const std::vector<std::byte>>(std::move(data));
  hg::BufWriter w;
  hg::put(w, rid);
  hg::put(w, offset);
  hg::put(w, bytes);
  auto op =
      mid_.forward_async(target, provider, write_id_, w.take(), shared, bytes);
  return static_cast<Status>(hg::decode<std::uint8_t>(op->wait()));
}

Status Client::persist(ofi::EpAddr target, std::uint16_t provider,
                       std::uint64_t rid) {
  return static_cast<Status>(hg::decode<std::uint8_t>(
      mid_.forward(target, provider, persist_id_, hg::encode(rid))));
}

std::uint64_t Client::create_write_persist(ofi::EpAddr target,
                                           std::uint16_t provider,
                                           std::vector<std::byte> data) {
  const std::uint64_t bytes = data.size();
  auto shared =
      // symlint: allow(may-allocate) reason=payload moves once into a
      // shared RPC buffer; client writes are service calls, not lane events
      std::make_shared<const std::vector<std::byte>>(std::move(data));
  auto op = mid_.forward_async(target, provider, cwp_id_, hg::encode(bytes),
                               shared, bytes);
  return hg::decode<std::uint64_t>(op->wait());
}

std::vector<std::byte> Client::read(ofi::EpAddr target, std::uint16_t provider,
                                    std::uint64_t rid, std::uint64_t offset,
                                    std::uint64_t len) {
  hg::BufWriter w;
  hg::put(w, rid);
  hg::put(w, offset);
  hg::put(w, len);
  const auto resp = mid_.forward(target, provider, read_id_, w.take());
  hg::BufReader r(resp);
  std::uint8_t status = 0;
  std::uint32_t n = 0;
  hg::get(r, status);
  hg::get(r, n);
  std::vector<std::byte> out(n);
  if (n > 0) r.read_raw(out.data(), n);
  return out;
}

std::uint64_t Client::probe(ofi::EpAddr target, std::uint16_t provider) {
  return hg::decode<std::uint64_t>(
      mid_.forward(target, provider, probe_id_, {}));
}

}  // namespace sym::bake
