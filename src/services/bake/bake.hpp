// services/bake/bake.hpp
//
// BAKE: the Mochi microservice for storing and retrieving object blobs on
// NVM, used by Mobject (object data) and HEPnOS (event data). Large writes
// move through Mercury's bulk interface (target-issued RDMA pull from
// client memory); persistence pays a simulated NVMe device cost that
// serializes across concurrent persists (an IO wait, not CPU).
//
// RPCs: bake_create_rpc, bake_write_rpc, bake_persist_rpc,
//       bake_create_write_persist_rpc, bake_read_rpc, bake_probe_rpc.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "margolite/instance.hpp"

namespace sym::bake {

enum class Status : std::uint8_t { kOk = 0, kNoRegion = 1 };

/// Simulated NVMe-class storage device: bandwidth with request
/// serialization. Writers sleep (IO wait) until their turn completes.
class StorageDevice {
 public:
  StorageDevice(sim::Engine& engine, double write_bw_bytes_per_ns = 2.0,
                sim::DurationNs op_latency = sim::usec(8))
      : engine_(engine),
        write_bw_(write_bw_bytes_per_ns),
        op_latency_(op_latency) {}

  /// Blocking (ULT) write of `bytes`: reserves the device and sleeps until
  /// completion. Returns the IO duration experienced.
  sim::DurationNs write(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  sim::Engine& engine_;
  double write_bw_;
  sim::DurationNs op_latency_;
  sim::TimeNs busy_until_ = 0;
  std::uint64_t bytes_written_ = 0;
};

struct Region {
  std::uint64_t capacity = 0;
  std::vector<std::byte> data;
  bool persisted = false;
};

class Provider {
 public:
  Provider(margo::Instance& mid, std::uint16_t provider_id);
  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  [[nodiscard]] std::uint16_t provider_id() const noexcept {
    return provider_id_;
  }
  [[nodiscard]] std::size_t region_count() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] const Region* region(std::uint64_t rid) const;
  [[nodiscard]] StorageDevice& device() noexcept { return device_; }

 private:
  void handle_create(margo::Request& req);
  void handle_write(margo::Request& req);
  void handle_persist(margo::Request& req);
  void handle_create_write_persist(margo::Request& req);
  void handle_read(margo::Request& req);
  void handle_probe(margo::Request& req);

  std::uint64_t do_create(std::uint64_t size);
  Status do_write(std::uint64_t rid, std::uint64_t offset,
                  const std::vector<std::byte>* content, std::uint64_t bytes,
                  margo::Request& req);

  margo::Instance& mid_;
  std::uint16_t provider_id_;
  StorageDevice device_;
  std::map<std::uint64_t, Region> regions_;
  std::uint64_t next_rid_ = 1;
};

class Client {
 public:
  explicit Client(margo::Instance& mid);

  /// Allocate a region of `size` bytes; returns the region id.
  std::uint64_t create(ofi::EpAddr target, std::uint16_t provider,
                       std::uint64_t size);

  /// Write `data` into a region at `offset` (bulk path).
  Status write(ofi::EpAddr target, std::uint16_t provider, std::uint64_t rid,
               std::uint64_t offset, std::vector<std::byte> data);

  /// Flush a region to the device.
  Status persist(ofi::EpAddr target, std::uint16_t provider,
                 std::uint64_t rid);

  /// Composite create+write+persist (one RPC, as BAKE provides).
  std::uint64_t create_write_persist(ofi::EpAddr target,
                                     std::uint16_t provider,
                                     std::vector<std::byte> data);

  /// Read `len` bytes from a region at `offset`.
  std::vector<std::byte> read(ofi::EpAddr target, std::uint16_t provider,
                              std::uint64_t rid, std::uint64_t offset,
                              std::uint64_t len);

  /// Number of regions on the provider.
  std::uint64_t probe(ofi::EpAddr target, std::uint16_t provider);

 private:
  margo::Instance& mid_;
  hg::RpcId create_id_, write_id_, persist_id_, cwp_id_, read_id_, probe_id_;
};

}  // namespace sym::bake
