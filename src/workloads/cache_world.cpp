#include "workloads/cache_world.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace sym::workloads {

CacheWorld::CacheWorld(Params params)
    : params_(std::move(params)), eng_(params_.seed, params_.exec) {
  if (params_.cache_servers == 0) params_.cache_servers = 1;
  if (params_.clients_per_node == 0) params_.clients_per_node = 1;

  std::uint32_t total_clients = 0;
  for (const auto& t : params_.tenants) total_clients += t.width;
  const std::uint32_t client_nodes =
      (total_clients + params_.clients_per_node - 1) / params_.clients_per_node;

  // Node 0: BAKE backend. Nodes [1, 1+S): cache servers. Rest: clients.
  sim::ClusterParams cp;
  cp.node_count = 1 + params_.cache_servers + std::max(client_nodes, 1u);
  cluster_ = std::make_unique<sim::Cluster>(eng_, cp);
  fabric_ = std::make_unique<ofi::Fabric>(*cluster_);

  auto& bproc = cluster_->spawn_process(0, "bake-backend");
  margo::InstanceConfig bc;
  bc.server = true;
  bc.instr = params_.instr;
  backend_ = std::make_unique<margo::Instance>(*fabric_, bproc, bc);
  bake_ = std::make_unique<bake::Provider>(*backend_,
                                           params_.cache.backend_provider);
  params_.cache.backend = backend_->addr();

  for (std::uint32_t s = 0; s < params_.cache_servers; ++s) {
    auto& proc =
        cluster_->spawn_process(1 + s, "cache-server-" + std::to_string(s));
    margo::InstanceConfig sc;
    sc.server = true;
    sc.instr = params_.instr;
    cache_servers_.push_back(
        std::make_unique<margo::Instance>(*fabric_, proc, sc));
    providers_.push_back(std::make_unique<blockcache::Provider>(
        *cache_servers_.back(), /*provider_id=*/1, params_.cache));
    if (params_.autoscale) {
      policies_.push_back(
          std::make_unique<margo::PolicyEngine>(*cache_servers_.back()));
      policies_.back()->add_rule("cache_capacity",
                                 blockcache::Provider::capacity_autoscale());
    }
  }

  view_.servers.clear();
  for (const auto& s : cache_servers_) view_.servers.push_back(s->addr());
  view_.provider = 1;
  view_.placement = params_.placement;
  view_.stripe_blocks = params_.stripe_blocks;
  view_.block_bytes = params_.cache.block_bytes;

  std::uint32_t gidx = 0;
  for (std::size_t t = 0; t < params_.tenants.size(); ++t) {
    const auto& spec = params_.tenants[t];
    for (std::uint32_t m = 0; m < spec.width; ++m, ++gidx) {
      const sim::NodeId node =
          1 + params_.cache_servers + gidx / params_.clients_per_node;
      auto& proc = cluster_->spawn_process(
          node, "tenant" + std::to_string(t) + "-" + std::to_string(m));
      margo::InstanceConfig cc;
      cc.instr = params_.instr;
      clients_.push_back(
          std::make_unique<margo::Instance>(*fabric_, proc, cc));
      bclients_.push_back(std::make_unique<blockcache::Client>(
          *clients_.back(), view_, static_cast<std::uint32_t>(t),
          spec.width));
      client_tenant_.emplace_back(t, m);
    }
  }
  client_mismatch_.assign(clients_.size(), 0);
  tenant_done_.assign(params_.tenants.size(), 0);
}

CacheWorld::~CacheWorld() = default;

void CacheWorld::client_loop(std::size_t client_index, std::size_t tenant,
                             std::uint32_t member, blockcache::Client& bc) {
  const auto& spec = params_.tenants[tenant];
  const std::uint64_t object = tenant;  // one object per tenant job
  const std::uint64_t bs = params_.cache.block_bytes;
  const std::uint32_t base = member * spec.blocks_per_client;
  const auto fill = std::byte{static_cast<unsigned char>(tenant + 1)};

  if (spec.pattern != CachePattern::kSeqRead) {
    const std::uint32_t wob = std::max(spec.write_op_blocks, 1u);
    for (std::uint32_t b = 0; b < spec.blocks_per_client; b += wob) {
      const std::uint32_t n = std::min(wob, spec.blocks_per_client - b);
      bc.write(object, (base + b) * bs,
               std::vector<std::byte>(static_cast<std::size_t>(n) * bs,
                                      fill));
    }
    bc.flush_all();
  }
  if (spec.pattern != CachePattern::kSeqWrite) {
    const bool verify = spec.pattern == CachePattern::kWriteThenRead;
    for (std::uint32_t p = 0; p < spec.passes; ++p) {
      for (std::uint32_t b = 0; b < spec.blocks_per_client; ++b) {
        const auto data = bc.read(object, base + b);
        if (verify) {
          std::uint64_t bad = data.size() == bs ? 0 : 1;
          for (const auto byte : data) {
            if (byte != fill) ++bad;
          }
          client_mismatch_[client_index] += bad;
        }
      }
    }
  }
}

void CacheWorld::run() {
  assert(!ran_ && "CacheWorld::run() called twice");
  ran_ = true;

  backend_->start();
  for (auto& s : cache_servers_) s->start();
  for (auto& p : providers_) p->start();
  for (auto& pe : policies_) pe->start();
  for (auto& c : clients_) c->start();

  auto remaining = std::make_shared<std::size_t>(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    margo::Instance& mid = *clients_[i];
    const auto [tenant, member] = client_tenant_[i];
    blockcache::Client& bc = *bclients_[i];
    mid.spawn([this, i, tenant = tenant, member = member, remaining, &mid,
               &bc] {
      client_loop(i, tenant, member, bc);
      const sim::TimeNs finished = eng_.now();
      mid.finalize();
      if (!eng_.parallel()) {
        if (finished > tenant_done_[tenant]) tenant_done_[tenant] = finished;
        if (--*remaining == 0) {
          backend_->finalize();
          for (auto& s : cache_servers_) s->finalize();
        }
      } else {
        // Clients complete on their own lanes: serialize both the tenant
        // completion-time fold and the shutdown countdown on lane 0, then
        // fan the server finalize back out to each server's home lane.
        eng_.after_on(0, eng_.lookahead_to(0), [this, tenant, finished,
                                               remaining] {
          if (finished > tenant_done_[tenant]) tenant_done_[tenant] = finished;
          if (--*remaining == 0) {
            auto shut = [this](margo::Instance* sp) {
              const std::uint32_t dst =
                  eng_.lane_for_node(sp->process().node());
              eng_.after_on(dst, eng_.lookahead_to(dst),
                            [sp] { sp->finalize(); });
            };
            shut(backend_.get());
            for (auto& s : cache_servers_) shut(s.get());
          }
        });
      }
    });
  }
  eng_.run();
}

std::uint64_t CacheWorld::tenant_bytes(std::size_t t) const {
  const auto& spec = params_.tenants.at(t);
  const std::uint64_t bs = params_.cache.block_bytes;
  std::uint64_t per_client = 0;
  if (spec.pattern != CachePattern::kSeqRead) {
    per_client += spec.blocks_per_client * bs;
  }
  if (spec.pattern != CachePattern::kSeqWrite) {
    per_client += static_cast<std::uint64_t>(spec.passes) *
                  spec.blocks_per_client * bs;
  }
  return per_client * spec.width;
}

double CacheWorld::tenant_byte_rate(std::size_t t) const {
  const auto done = tenant_done_.at(t);
  if (done == 0) return 0.0;
  return static_cast<double>(tenant_bytes(t)) /
         (static_cast<double>(done) * 1e-9);
}

sim::TimeNs CacheWorld::makespan() const noexcept {
  sim::TimeNs max = 0;
  for (const auto t : tenant_done_) max = std::max(max, t);
  return max;
}

std::uint64_t CacheWorld::data_mismatches() const {
  std::uint64_t n = 0;
  for (const auto m : client_mismatch_) n += m;
  return n;
}

std::uint64_t CacheWorld::total_hits() const {
  std::uint64_t n = 0;
  for (const auto& p : providers_) n += p->hits();
  return n;
}
std::uint64_t CacheWorld::total_misses() const {
  std::uint64_t n = 0;
  for (const auto& p : providers_) n += p->misses();
  return n;
}
std::uint64_t CacheWorld::total_backend_reads() const {
  std::uint64_t n = 0;
  for (const auto& p : providers_) n += p->backend_reads();
  return n;
}
std::uint64_t CacheWorld::total_backend_read_bytes() const {
  std::uint64_t n = 0;
  for (const auto& p : providers_) n += p->backend_read_bytes();
  return n;
}
std::uint64_t CacheWorld::total_writeback_ops() const {
  std::uint64_t n = 0;
  for (const auto& p : providers_) n += p->writeback_ops();
  return n;
}
std::uint64_t CacheWorld::total_writeback_bytes() const {
  std::uint64_t n = 0;
  for (const auto& p : providers_) n += p->writeback_bytes();
  return n;
}
std::uint64_t CacheWorld::total_evictions() const {
  std::uint64_t n = 0;
  for (const auto& p : providers_) n += p->evictions();
  return n;
}

std::vector<const prof::ProfileStore*> CacheWorld::all_profiles() const {
  std::vector<const prof::ProfileStore*> out{&backend_->profile()};
  for (const auto& s : cache_servers_) out.push_back(&s->profile());
  for (const auto& c : clients_) out.push_back(&c->profile());
  return out;
}

std::vector<const prof::TraceStore*> CacheWorld::all_traces() const {
  std::vector<const prof::TraceStore*> out{&backend_->trace()};
  for (const auto& s : cache_servers_) out.push_back(&s->trace());
  for (const auto& c : clients_) out.push_back(&c->trace());
  return out;
}

}  // namespace sym::workloads
