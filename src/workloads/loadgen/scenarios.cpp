#include "workloads/loadgen/scenarios.hpp"

#include <cmath>
#include <cstring>

namespace sym::workloads::loadgen {

const char* service_name(Service s) noexcept {
  switch (s) {
    case Service::kMobject:
      return "mobject";
    case Service::kHepnos:
      return "hepnos";
    case Service::kBlockcache:
      return "blockcache";
  }
  return "?";
}

double BoundedPareto::sample(sim::Rng& rng) const noexcept {
  // Inverse CDF of the bounded Pareto on [lo, hi]:
  //   F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a)
  const double u = rng.uniform01();
  const double ratio = std::pow(lo / hi, alpha);
  const double x = lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
  return x < hi ? x : hi;
}

double BoundedPareto::mean() const noexcept {
  // E[X] = lo^a / (1 - (lo/hi)^a) * a/(a-1) * (lo^(1-a) - hi^(1-a)), a != 1.
  const double ratio = std::pow(lo / hi, alpha);
  const double la = std::pow(lo, alpha);
  return la / (1.0 - ratio) * alpha / (alpha - 1.0) *
         (std::pow(lo, 1.0 - alpha) - std::pow(hi, 1.0 - alpha));
}

namespace {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;

std::vector<Scenario> build_presets() {
  std::vector<Scenario> v;

  // 0: deep-learning training reads (BERT/ResNet). Readers stream training
  // shards sequentially: large Mobject object reads, a thin metadata stream
  // beside them, near-constant pressure for the whole horizon (epochs only
  // modulate the rate a little). Heavy sizes, light tail (shards are
  // uniform-ish), bandwidth-bound service.
  v.push_back(Scenario{
      "dl_training_read",
      "BERT/ResNet-style sequential large-read streams over Mobject",
      {
          OpClass{"shard_read", Service::kMobject, 0.9,
                  BoundedPareto{1.0 * kMiB, 16.0 * kMiB, 2.5}, sim::usec(6),
                  10.0},
          OpClass{"manifest_stat", Service::kHepnos, 0.1,
                  BoundedPareto{256.0, 4.0 * kKiB, 1.8}, sim::usec(2), 2.0},
      },
      {
          Phase{"epoch_ramp", sim::msec(1), 0.7, {}},
          Phase{"epoch_steady", sim::msec(4), 1.0, {}},
      },
      /*arrivals_per_client_per_ms=*/0.8,
      BoundedPareto{0.25, 8.0, 1.9},
  });

  // 1: checkpoint bursts (LAMMPS/vpic). Long quiet compute phases with a
  // trickle of diagnostics, then every rank dumps its checkpoint slab into
  // the burst-buffer tier at once: the arrival rate multiplies ~30x and the
  // mix flips to large blockcache writes. Open-loop arrivals make the
  // queueing collapse during the dump visible.
  v.push_back(Scenario{
      "checkpoint_burst",
      "LAMMPS/vpic-style compute-quiet / checkpoint-dump write bursts",
      {
          OpClass{"ckpt_write", Service::kBlockcache, 0.25,
                  BoundedPareto{2.0 * kMiB, 64.0 * kMiB, 1.6}, sim::usec(4),
                  12.0},
          OpClass{"diag_append", Service::kHepnos, 0.75,
                  BoundedPareto{4.0 * kKiB, 256.0 * kKiB, 2.0}, sim::usec(3),
                  6.0},
      },
      {
          Phase{"compute_quiet", sim::msec(3), 0.15, {}},
          Phase{"ckpt_dump", sim::usec(600), 30.0, {8.0, 0.25}},
      },
      /*arrivals_per_client_per_ms=*/0.5,
      BoundedPareto{0.2, 12.0, 1.5},
  });

  // 2: many-small-files (Montage). Mosaic stages touch thousands of tiny
  // FITS tiles: a metadata-heavy HEPnOS stream plus small Mobject tile
  // reads/writes; request count, not bytes, is the load. IOPS-bound
  // service times with a long gap tail (stage barriers).
  v.push_back(Scenario{
      "montage_smallfiles",
      "Montage-style many-small-files metadata storms",
      {
          OpClass{"tile_read", Service::kMobject, 0.45,
                  BoundedPareto{8.0 * kKiB, 512.0 * kKiB, 1.4}, sim::usec(5),
                  4.0},
          OpClass{"tile_write", Service::kMobject, 0.2,
                  BoundedPareto{8.0 * kKiB, 512.0 * kKiB, 1.4}, sim::usec(7),
                  3.0},
          OpClass{"meta_lookup", Service::kHepnos, 0.35,
                  BoundedPareto{128.0, 2.0 * kKiB, 1.2}, sim::usec(2), 1.0},
      },
      {
          Phase{"project_stage", sim::msec(2), 1.0, {}},
          Phase{"background_stage", sim::msec(1), 1.6, {1.2, 0.4, 1.5}},
      },
      /*arrivals_per_client_per_ms=*/2.0,
      BoundedPareto{0.1, 20.0, 1.3},
  });

  return v;
}

}  // namespace

const std::vector<Scenario>& presets() {
  static const std::vector<Scenario> kPresets = build_presets();
  return kPresets;
}

const Scenario* find_preset(const char* name) {
  for (const Scenario& s : presets()) {
    if (std::strcmp(s.name, name) == 0) return &s;
  }
  return nullptr;
}

}  // namespace sym::workloads::loadgen
