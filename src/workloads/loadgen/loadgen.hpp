// workloads/loadgen/loadgen.hpp
//
// Open-loop load generator: the million-request driver for the scale
// studies. Unlike the closed-loop worlds (hepnos_world, mobject_world),
// where each simulated client fiber waits for its previous request before
// issuing the next — which self-throttles exactly when the system starts to
// collapse — the loadgen's arrival process is independent of completions:
// client nodes emit deterministic heavy-tailed (bounded-Pareto) arrival
// streams for a configurable client population, so overload shows up as
// unbounded queue growth instead of being masked.
//
// Clients are *populations*, not fibers: each client node runs one arrival
// pump per node that draws interarrival gaps for its whole client share from
// the lane's Rng stream, and every request is a 48-byte RequestRec in the
// destination server's lane-owned RequestArena (argolite/request.hpp).
// 10k-1M concurrent clients cost kilobytes of pump state plus one arena
// slot per in-flight request — no fiber stacks anywhere on the path.
//
// Topology and determinism: server state (FIFO queue, arena, counters,
// checksums) is owned by the server node's lane; arrivals travel client lane
// -> server lane through the engine's deterministic window mailboxes with
// the cluster link latency, so every digest and counter is bit-identical for
// any worker count. Completion checksums fold (request id, completion time)
// per lane and combine in lane order — a determinism witness that works in
// release builds, where the engine's debug event digest is compiled out.
//
// Each server node models the composed service stack of the paper's
// deployments: requests for Mobject, HEPnOS and blockcache classes share the
// node's single service queue (the Margo progress loop / ES the co-located
// providers share) but are served with their own class's calibrated
// service-time model (fixed per-op cost + size/bandwidth). The loadgen
// drives these queueing models rather than the full RPC stack: at millions
// of in-flight requests the object of study is arrival/service dynamics and
// engine capacity, and the model constants come from the service benches.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "argolite/request.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "workloads/loadgen/scenarios.hpp"

namespace sym::workloads::loadgen {

struct LoadgenParams {
  Scenario scenario;
  /// Simulated nodes. The first `server_nodes` host the composed service
  /// stack; the rest run client arrival pumps.
  std::uint32_t node_count = 16;
  /// 0 = auto: node_count / 4, at least 1.
  std::uint32_t server_nodes = 0;
  /// Simulated client population, spread evenly over the client nodes.
  std::uint64_t client_population = 10000;
  /// Virtual-time horizon the world runs to.
  sim::DurationNs horizon = sim::msec(5);
  /// Arrival pump batching quantum: each pump event materializes the
  /// arrivals of one quantum and reschedules itself.
  sim::DurationNs pump_quantum = sim::usec(50);
  /// Pre-size each server's request arena (0 = grow on demand). Steady
  /// -state zero-allocation runs pass the expected queue high-water mark.
  std::uint32_t reserve_requests_per_server = 0;
  /// Pre-size each lane's event arena/heap (0 = grow on demand).
  std::uint32_t reserve_events_per_lane = 0;
  /// Per-lane event reserve (empty = use the uniform value). Event
  /// populations are skewed — server lanes hold the in-transit deliveries —
  /// so a warmup run's per-lane high-water marks make better capacities.
  std::vector<std::uint32_t> reserve_events_by_lane{};
  /// Row-major lanes^2 outbox capacity plan (Engine::outbox_highwater from
  /// a warmup run; empty = grow on demand).
  std::vector<std::uint32_t> reserve_outbox_matrix{};
  /// Record every generated arrival for the golden-sequence tests (memory
  /// -heavy; leave off for benches).
  bool record_arrivals = false;
  std::uint64_t seed = 42;
  sim::EngineConfig exec{};
};

/// Per-op aggregates for the dominant-callpath table.
struct OpTotals {
  std::uint64_t requests = 0;   ///< arrivals delivered to a server
  std::uint64_t completed = 0;  ///< served to completion within the horizon
  std::uint64_t bytes = 0;      ///< payload bytes of completed requests
  std::uint64_t busy_ns = 0;    ///< virtual time servers spent serving
  std::uint64_t queue_ns = 0;   ///< virtual time completed requests queued
};

/// One generated arrival (golden-sequence tests only).
struct ArrivalRecord {
  sim::TimeNs t;
  std::uint64_t id;
  std::uint64_t bytes;
  std::uint32_t server;
  std::uint16_t op;

  bool operator==(const ArrivalRecord&) const = default;
};

class LoadgenWorld {
 public:
  explicit LoadgenWorld(LoadgenParams params);
  ~LoadgenWorld();
  LoadgenWorld(const LoadgenWorld&) = delete;
  LoadgenWorld& operator=(const LoadgenWorld&) = delete;

  /// Run the open-loop mix to the horizon.
  void run();

  [[nodiscard]] const LoadgenParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }
  [[nodiscard]] std::uint32_t server_count() const noexcept {
    return static_cast<std::uint32_t>(servers_.size());
  }

  // --- request-level results (valid after run()) ---------------------------

  /// Arrivals generated by the pumps (posted toward a server).
  [[nodiscard]] std::uint64_t generated() const noexcept;
  /// Requests served to completion within the horizon.
  [[nodiscard]] std::uint64_t completed() const noexcept;
  /// Concurrent in-flight requests at the horizon: generated but not yet
  /// completed (in transit, queued, or in service). The open-loop scale
  /// studies gate on this.
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return generated() - completed();
  }
  /// Deepest single-server queue observed.
  [[nodiscard]] std::uint64_t peak_queued() const noexcept;
  /// Request-arena slots ever created across servers (high-water mark).
  [[nodiscard]] std::uint64_t request_slots() const noexcept;
  /// Request-arena slots recycled from freelists (steady-state reuse).
  [[nodiscard]] std::uint64_t requests_recycled() const noexcept;
  /// Request-arena slot-table reallocations across servers (0 once the
  /// arenas are pre-sized to their high-water mark).
  [[nodiscard]] std::uint64_t request_growths() const noexcept;

  /// Fold of (id, virtual arrival time) over every generated arrival,
  /// per client node, combined in node order: a worker-count-independent
  /// fingerprint of the arrival schedule that works in release builds.
  [[nodiscard]] std::uint64_t arrival_checksum() const noexcept;
  /// Fold of (id, completion time) over every completed request, combined
  /// in node order. The scale bench gates on bit-identity across 1/2/4/8
  /// workers.
  [[nodiscard]] std::uint64_t completion_checksum() const noexcept;

  /// Per-op aggregates, indexed like scenario.ops.
  [[nodiscard]] std::vector<OpTotals> op_totals() const;
  /// Index of the op class with the largest total service (busy) time —
  /// the scenario's dominant callpath.
  [[nodiscard]] std::uint32_t dominant_op() const;

  /// Generated arrivals in (node, emission) order; requires
  /// params.record_arrivals.
  [[nodiscard]] std::vector<ArrivalRecord> arrival_log() const;

 private:
  /// Per-server state, owned by the lane of its node.
  struct Server {
    std::uint32_t node = 0;
    abt::RequestArena arena;
    std::uint32_t q_head = abt::RequestRec::kNil;
    std::uint32_t q_tail = abt::RequestRec::kNil;
    std::uint64_t queued = 0;
    std::uint64_t peak_queued = 0;
    bool busy = false;
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
    std::uint64_t checksum = 0;
    std::vector<OpTotals> per_op;
  };

  /// Per-client-node pump state, owned by the lane of its node.
  struct Pump {
    std::uint32_t node = 0;
    std::uint64_t clients = 0;
    sim::TimeNs next_arrival = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t generated = 0;
    std::uint64_t checksum = 0;
    std::vector<ArrivalRecord> log;
  };

  void pump_tick(std::uint32_t pump_idx);
  void emit_arrival(Pump& pump, sim::TimeNs t);
  void deliver(std::uint32_t server_idx, std::uint64_t id, std::uint64_t bytes,
               std::uint16_t op);
  void start_service(std::uint32_t server_idx, std::uint32_t rec_idx);
  void complete(std::uint32_t server_idx, std::uint32_t rec_idx);

  /// Phase active at virtual time t (phases cycle over the horizon).
  [[nodiscard]] const Phase& phase_at(sim::TimeNs t,
                                      std::uint32_t* index = nullptr) const;

  LoadgenParams params_;
  std::unique_ptr<sim::Engine> eng_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::vector<Server> servers_;  ///< index s lives on node s
  std::vector<Pump> pumps_;      ///< client nodes, in node order
  sim::DurationNs cycle_len_ = 0;
  bool ran_ = false;
};

}  // namespace sym::workloads::loadgen
