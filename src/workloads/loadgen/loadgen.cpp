#include "workloads/loadgen/loadgen.hpp"

#include <cassert>
#include <cmath>

namespace sym::workloads::loadgen {

namespace {

/// Order-sensitive 64-bit fold used for the arrival/completion checksums.
/// Per-lane accumulators are combined in node order after the run, so the
/// result depends only on simulation state, never on worker interleaving.
std::uint64_t mix64(std::uint64_t acc, std::uint64_t v) noexcept {
  std::uint64_t s = acc ^ (v + 0x9E3779B97F4A7C15ULL);
  return sim::splitmix64(s);
}

std::uint64_t round_positive(double x) noexcept {
  const auto r = static_cast<std::uint64_t>(std::llround(x));
  return r == 0 ? 1 : r;
}

}  // namespace

LoadgenWorld::LoadgenWorld(LoadgenParams params) : params_(std::move(params)) {
  const Scenario& sc = params_.scenario;
  assert(!sc.ops.empty());
  assert(!sc.phases.empty());
  for (const Phase& ph : sc.phases) {
    assert(ph.duration > 0);
    assert(ph.weight_scale.empty() || ph.weight_scale.size() == sc.ops.size());
    cycle_len_ += ph.duration;
  }

  eng_ = std::make_unique<sim::Engine>(params_.seed, params_.exec);
  sim::ClusterParams cp;
  cp.node_count = params_.node_count;
  cluster_ = std::make_unique<sim::Cluster>(*eng_, cp);
  if (params_.reserve_events_per_lane != 0) {
    eng_->reserve_events_per_lane(params_.reserve_events_per_lane);
  }
  if (!params_.reserve_events_by_lane.empty()) {
    assert(params_.reserve_events_by_lane.size() == eng_->lane_count());
    for (std::uint32_t l = 0; l < eng_->lane_count(); ++l) {
      eng_->reserve_events_on(l, params_.reserve_events_by_lane[l]);
    }
  }
  if (!params_.reserve_outbox_matrix.empty()) {
    eng_->reserve_outboxes(params_.reserve_outbox_matrix);
  }

  const std::uint32_t n = params_.node_count;
  std::uint32_t server_n = params_.server_nodes != 0
                               ? params_.server_nodes
                               : (n / 4 != 0 ? n / 4 : 1);
  if (server_n > n) server_n = n;

  servers_.resize(server_n);
  for (std::uint32_t s = 0; s < server_n; ++s) {
    Server& sv = servers_[s];
    sv.node = s;
    sv.per_op.resize(sc.ops.size());
    if (params_.reserve_requests_per_server != 0) {
      sv.arena.reserve(params_.reserve_requests_per_server);
    }
  }

  // Pumps live on the nodes after the servers; a cluster too small to split
  // co-locates them with the servers (intra-node latency then applies).
  const std::uint32_t pump_begin = server_n < n ? server_n : 0;
  const std::uint32_t pump_n = n - pump_begin;
  pumps_.resize(pump_n);
  const std::uint64_t base_share = params_.client_population / pump_n;
  const std::uint64_t remainder = params_.client_population % pump_n;
  for (std::uint32_t i = 0; i < pump_n; ++i) {
    Pump& p = pumps_[i];
    p.node = pump_begin + i;
    p.clients = base_share + (i < remainder ? 1 : 0);
  }

  // Seed one pump event per client node, staggered across the first quantum
  // so arrival streams do not start phase-locked. Main-context at_on is a
  // direct insertion, so this is legal before run().
  for (std::uint32_t i = 0; i < pump_n; ++i) {
    Pump& p = pumps_[i];
    if (p.clients == 0) continue;
    const sim::TimeNs t0 =
        static_cast<sim::TimeNs>(params_.pump_quantum) * i / pump_n;
    p.next_arrival = t0;
    const std::uint32_t idx = i;
    eng_->at_on(eng_->lane_for_node(p.node), t0,
                [this, idx] { pump_tick(idx); });
  }
}

LoadgenWorld::~LoadgenWorld() = default;

const Phase& LoadgenWorld::phase_at(sim::TimeNs t,
                                    std::uint32_t* index) const {
  sim::TimeNs off = t % cycle_len_;
  const std::vector<Phase>& phases = params_.scenario.phases;
  for (std::uint32_t i = 0;; ++i) {
    const Phase& ph = phases[i];
    if (off < ph.duration || i + 1 == phases.size()) {
      if (index != nullptr) *index = i;
      return ph;
    }
    off -= ph.duration;
  }
}

void LoadgenWorld::pump_tick(std::uint32_t pump_idx) {
  Pump& p = pumps_[pump_idx];
  const Scenario& sc = params_.scenario;
  sim::Rng& rng = eng_->rng();
  const sim::TimeNs tick_end = eng_->now() + params_.pump_quantum;
  const double shape_mean = sc.gap_shape.mean();

  // Materialize this quantum's arrivals. The gap draw is scaled so its mean
  // matches the phase rate at the moment of the draw; a rate change mid-gap
  // takes effect at the next draw (the pump quantum bounds the lag).
  while (p.next_arrival < tick_end && p.next_arrival <= params_.horizon) {
    emit_arrival(p, p.next_arrival);
    const Phase& ph = phase_at(p.next_arrival);
    const double rate_per_ms = sc.arrivals_per_client_per_ms * ph.rate_scale *
                               static_cast<double>(p.clients);
    assert(rate_per_ms > 0.0);
    const double mean_gap_ns = 1e6 / rate_per_ms;
    const double gap = sc.gap_shape.sample(rng) * (mean_gap_ns / shape_mean);
    p.next_arrival += round_positive(gap);
  }

  if (tick_end <= params_.horizon) {
    eng_->after(params_.pump_quantum, [this, pump_idx] { pump_tick(pump_idx); });
  }
}

void LoadgenWorld::emit_arrival(Pump& p, sim::TimeNs t) {
  const Scenario& sc = params_.scenario;
  sim::Rng& rng = eng_->rng();
  std::uint32_t phase_idx = 0;
  const Phase& ph = phase_at(t, &phase_idx);

  // Draw the op class from the phase-scaled weights.
  double total = 0.0;
  for (std::size_t i = 0; i < sc.ops.size(); ++i) {
    const double scale = ph.weight_scale.empty() ? 1.0 : ph.weight_scale[i];
    total += sc.ops[i].weight * scale;
  }
  double u = rng.uniform01() * total;
  std::uint16_t op = 0;
  for (std::size_t i = 0; i < sc.ops.size(); ++i) {
    const double scale = ph.weight_scale.empty() ? 1.0 : ph.weight_scale[i];
    u -= sc.ops[i].weight * scale;
    if (u <= 0.0 || i + 1 == sc.ops.size()) {
      op = static_cast<std::uint16_t>(i);
      break;
    }
  }

  const auto server =
      static_cast<std::uint32_t>(rng.uniform(servers_.size()));
  const std::uint64_t bytes = round_positive(sc.ops[op].size_bytes.sample(rng));
  const std::uint64_t id =
      (static_cast<std::uint64_t>(p.node) << 40) | p.next_seq++;

  ++p.generated;
  p.checksum = mix64(p.checksum, mix64(id, t));
  if (params_.record_arrivals) {
    p.log.push_back(ArrivalRecord{t, id, bytes, server, op});
  }

  // Ship the request to the server's lane through the window mailbox. The
  // link latency is >= the per-lane-pair lookahead the Cluster installed
  // from the same topology, so the post is always window-safe.
  const std::uint32_t snode = servers_[server].node;
  const sim::TimeNs deliver_t = t + cluster_->link_latency(p.node, snode);
  eng_->at_on(eng_->lane_for_node(snode), deliver_t,
              [this, server, id, bytes, op] { deliver(server, id, bytes, op); });
}

void LoadgenWorld::deliver(std::uint32_t server_idx, std::uint64_t id,
                           std::uint64_t bytes, std::uint16_t op) {
  Server& s = servers_[server_idx];
  ++s.arrived;
  ++s.per_op[op].requests;

  const std::uint32_t rec_idx = s.arena.acquire();
  abt::RequestRec& r = s.arena.rec(rec_idx);
  r.id = id;
  r.bytes = bytes;
  r.arrival = eng_->now();
  r.op = op;

  if (!s.busy) {
    start_service(server_idx, rec_idx);
    return;
  }
  // FIFO append behind the request in service.
  if (s.q_tail == abt::RequestRec::kNil) {
    s.q_head = rec_idx;
  } else {
    s.arena.rec(s.q_tail).next = rec_idx;
  }
  s.q_tail = rec_idx;
  ++s.queued;
  if (s.queued > s.peak_queued) s.peak_queued = s.queued;
}

void LoadgenWorld::start_service(std::uint32_t server_idx,
                                 std::uint32_t rec_idx) {
  Server& s = servers_[server_idx];
  abt::RequestRec& r = s.arena.rec(rec_idx);
  const OpClass& op = params_.scenario.ops[r.op];

  s.busy = true;
  r.service_start = eng_->now();
  const sim::DurationNs service =
      op.base_ns + static_cast<sim::DurationNs>(std::llround(
                       static_cast<double>(r.bytes) / op.bytes_per_ns));
  eng_->after(service, [this, server_idx, rec_idx] {
    complete(server_idx, rec_idx);
  });
}

void LoadgenWorld::complete(std::uint32_t server_idx, std::uint32_t rec_idx) {
  Server& s = servers_[server_idx];
  const sim::TimeNs now = eng_->now();
  {
    const abt::RequestRec& r = s.arena.rec(rec_idx);
    OpTotals& ot = s.per_op[r.op];
    ++s.completed;
    ++ot.completed;
    ot.bytes += r.bytes;
    ot.busy_ns += now - r.service_start;
    ot.queue_ns += r.service_start - r.arrival;
    s.checksum = mix64(s.checksum, mix64(r.id, now));
  }
  s.arena.release(rec_idx);

  if (s.q_head != abt::RequestRec::kNil) {
    const std::uint32_t next = s.q_head;
    s.q_head = s.arena.rec(next).next;
    if (s.q_head == abt::RequestRec::kNil) s.q_tail = abt::RequestRec::kNil;
    s.arena.rec(next).next = abt::RequestRec::kNil;
    --s.queued;
    start_service(server_idx, next);
  } else {
    s.busy = false;
  }
}

void LoadgenWorld::run() {
  assert(!ran_);
  eng_->run_until(params_.horizon);
  ran_ = true;
}

std::uint64_t LoadgenWorld::generated() const noexcept {
  std::uint64_t total = 0;
  for (const Pump& p : pumps_) total += p.generated;
  return total;
}

std::uint64_t LoadgenWorld::completed() const noexcept {
  std::uint64_t total = 0;
  for (const Server& s : servers_) total += s.completed;
  return total;
}

std::uint64_t LoadgenWorld::peak_queued() const noexcept {
  std::uint64_t peak = 0;
  for (const Server& s : servers_) {
    if (s.peak_queued > peak) peak = s.peak_queued;
  }
  return peak;
}

std::uint64_t LoadgenWorld::request_slots() const noexcept {
  std::uint64_t total = 0;
  for (const Server& s : servers_) total += s.arena.slot_count();
  return total;
}

std::uint64_t LoadgenWorld::requests_recycled() const noexcept {
  std::uint64_t total = 0;
  for (const Server& s : servers_) total += s.arena.recycled();
  return total;
}

std::uint64_t LoadgenWorld::request_growths() const noexcept {
  std::uint64_t total = 0;
  for (const Server& s : servers_) total += s.arena.growths();
  return total;
}

std::uint64_t LoadgenWorld::arrival_checksum() const noexcept {
  std::uint64_t acc = 0;
  for (const Pump& p : pumps_) acc = mix64(acc, p.checksum);
  return acc;
}

std::uint64_t LoadgenWorld::completion_checksum() const noexcept {
  std::uint64_t acc = 0;
  for (const Server& s : servers_) acc = mix64(acc, s.checksum);
  return acc;
}

std::vector<OpTotals> LoadgenWorld::op_totals() const {
  std::vector<OpTotals> totals(params_.scenario.ops.size());
  for (const Server& s : servers_) {
    for (std::size_t i = 0; i < totals.size(); ++i) {
      totals[i].requests += s.per_op[i].requests;
      totals[i].completed += s.per_op[i].completed;
      totals[i].bytes += s.per_op[i].bytes;
      totals[i].busy_ns += s.per_op[i].busy_ns;
      totals[i].queue_ns += s.per_op[i].queue_ns;
    }
  }
  return totals;
}

std::uint32_t LoadgenWorld::dominant_op() const {
  const std::vector<OpTotals> totals = op_totals();
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < totals.size(); ++i) {
    if (totals[i].busy_ns > totals[best].busy_ns) best = i;
  }
  return best;
}

std::vector<ArrivalRecord> LoadgenWorld::arrival_log() const {
  std::vector<ArrivalRecord> out;
  for (const Pump& p : pumps_) {
    out.insert(out.end(), p.log.begin(), p.log.end());
  }
  return out;
}

}  // namespace sym::workloads::loadgen
