// workloads/loadgen/scenarios.hpp
//
// Replayed application mixes for the open-loop load generator. Each scenario
// encodes the I/O signature of a real application family — the mixes the
// SYMBIOSYS paper's services served on Theta — as op classes (what a request
// is: service, size distribution, service-time model) plus a phase schedule
// (how the arrival process moves: steady streams, checkpoint bursts,
// metadata storms). The presets are calibrated synthetic replays in the
// Synapse sense: arrival and size distributions are matched to the
// application shape, not traced byte-for-byte. docs/SCENARIOS.md documents
// each preset and its provenance.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/rng.hpp"
#include "simkit/time.hpp"

namespace sym::workloads::loadgen {

/// Which composed data service a request exercises. The loadgen drives
/// calibrated queueing/service-time models of the three service stacks
/// (fixed per-op cost + size/bandwidth), not their full RPC pipelines — the
/// point is request-volume scaling, and the model constants are taken from
/// the measured service benches.
enum class Service : std::uint8_t { kMobject = 0, kHepnos = 1, kBlockcache = 2 };

[[nodiscard]] const char* service_name(Service s) noexcept;

/// Bounded Pareto distribution on [lo, hi] with tail index alpha — the
/// standard heavy-tailed-but-finite model for I/O sizes and interarrival
/// gaps. Sampled by inverse CDF from the lane's deterministic Rng stream.
struct BoundedPareto {
  double lo = 1.0;
  double hi = 2.0;
  double alpha = 1.5;

  [[nodiscard]] double sample(sim::Rng& rng) const noexcept;
  /// Analytic mean (alpha != 1), used to scale gap draws to a target rate.
  [[nodiscard]] double mean() const noexcept;
};

/// One request class within a scenario.
struct OpClass {
  const char* name;
  Service service;
  /// Relative share of the arrival stream (phase weight_scale multiplies).
  double weight;
  BoundedPareto size_bytes;
  /// Fixed per-request service cost (RPC + index + media setup).
  sim::DurationNs base_ns;
  /// Service bandwidth for the size-dependent part.
  double bytes_per_ns;
};

/// One segment of the mix schedule. Phases cycle for the whole horizon.
struct Phase {
  const char* name;
  sim::DurationNs duration;
  /// Multiplies the scenario's base arrival rate for this phase.
  double rate_scale;
  /// Per-op weight multipliers (empty = all 1.0; else one entry per op).
  std::vector<double> weight_scale;
};

struct Scenario {
  const char* name;
  const char* summary;
  std::vector<OpClass> ops;
  std::vector<Phase> phases;
  /// Open-loop base rate, per simulated client, in arrivals per
  /// millisecond of virtual time.
  double arrivals_per_client_per_ms;
  /// Interarrival-gap shape (scaled so the mean gap matches the phase
  /// rate); heavy-tailed gaps are what make queueing collapse abrupt.
  BoundedPareto gap_shape;
};

/// The replay presets, in stable order (index is a scenario id in benches):
///   0 dl_training_read — BERT/ResNet-style sequential large reads
///   1 checkpoint_burst — LAMMPS/vpic-style checkpoint write bursts
///   2 montage_smallfiles — Montage-style many-small-files + metadata
[[nodiscard]] const std::vector<Scenario>& presets();

/// Look up a preset by name (nullptr if unknown).
[[nodiscard]] const Scenario* find_preset(const char* name);

}  // namespace sym::workloads::loadgen
