#include "workloads/mobject_world.hpp"

namespace sym::workloads {

MobjectWorld::MobjectWorld(Params params)
    : params_(std::move(params)), eng_(params_.seed, params_.exec) {
  // Everything colocated on one physical node, as in the paper's setup.
  sim::ClusterParams cp;
  cp.node_count = 1;
  cluster_ = std::make_unique<sim::Cluster>(eng_, cp);
  fabric_ = std::make_unique<ofi::Fabric>(*cluster_);

  auto& sproc = cluster_->spawn_process(0, "mobject-provider");
  margo::InstanceConfig sc;
  sc.server = true;
  sc.handler_es = 8;
  sc.instr = params_.instr;
  server_ = std::make_unique<margo::Instance>(*fabric_, sproc, sc);
  mobject_ = std::make_unique<mobject::Server>(*server_);

  for (std::uint32_t c = 0; c < params_.ior.clients; ++c) {
    auto& cproc = cluster_->spawn_process(0, "ior-" + std::to_string(c));
    margo::InstanceConfig cc;
    cc.instr = params_.instr;
    clients_.push_back(std::make_unique<margo::Instance>(*fabric_, cproc, cc));
    mclients_.push_back(std::make_unique<mobject::Client>(*clients_.back()));
  }
}

MobjectWorld::~MobjectWorld() = default;

void MobjectWorld::run() {
  ran_ = true;
  server_->start();
  for (auto& c : clients_) c->start();

  auto remaining = std::make_shared<std::size_t>(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    margo::Instance& mid = *clients_[i];
    mobject::Client& mc = *mclients_[i];
    mid.spawn([this, i, remaining, &mid, &mc] {
      const auto& ior = params_.ior;
      const auto target = server_->addr();
      const auto provider = mobject_->config().mobject_provider;
      std::vector<std::string> written;
      for (std::uint32_t op = 0; op < ior.ops_per_client; ++op) {
        const bool do_read =
            !written.empty() && eng_.rng().uniform01() < ior.read_fraction;
        if (do_read) {
          const auto& name =
              written[eng_.rng().uniform(written.size())];
          (void)mc.read_op(target, provider, name);
        } else {
          std::string name = "ior-obj-" + std::to_string(i) + "-" +
                             std::to_string(written.size());
          mc.write_op(target, provider, name,
                      std::vector<std::byte>(ior.object_bytes));
          written.push_back(std::move(name));
        }
      }
      if (eng_.now() > makespan_) makespan_ = eng_.now();
      mid.finalize();
      if (--*remaining == 0) server_->finalize();
    });
  }
  eng_.run();
}

std::vector<const prof::ProfileStore*> MobjectWorld::all_profiles() const {
  std::vector<const prof::ProfileStore*> out{&server_->profile()};
  for (const auto& c : clients_) out.push_back(&c->profile());
  return out;
}

std::vector<const prof::TraceStore*> MobjectWorld::all_traces() const {
  std::vector<const prof::TraceStore*> out{&server_->trace()};
  for (const auto& c : clients_) out.push_back(&c->trace());
  return out;
}

}  // namespace sym::workloads
