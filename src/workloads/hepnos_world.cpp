#include "workloads/hepnos_world.hpp"

#include <cassert>
#include <stdexcept>

namespace sym::workloads {

HepnosWorld::HepnosWorld(Params params)
    : params_(std::move(params)), eng_(params_.seed, params_.exec) {
  const auto& cfg = params_.config;
  if (cfg.databases % cfg.total_servers != 0) {
    throw std::invalid_argument(
        "HepnosWorld: databases must divide evenly across servers");
  }
  const std::uint32_t dbs_per_server = cfg.databases / cfg.total_servers;
  const std::uint32_t server_nodes =
      (cfg.total_servers + cfg.servers_per_node - 1) / cfg.servers_per_node;
  const std::uint32_t client_nodes =
      (cfg.total_clients + cfg.clients_per_node - 1) / cfg.clients_per_node;

  sim::ClusterParams cp;
  cp.node_count = server_nodes + client_nodes;
  cluster_ = std::make_unique<sim::Cluster>(eng_, cp);
  fabric_ = std::make_unique<ofi::Fabric>(*cluster_);

  // Servers first (nodes [0, server_nodes)).
  for (std::uint32_t s = 0; s < cfg.total_servers; ++s) {
    const sim::NodeId node = s / cfg.servers_per_node;
    auto& proc =
        cluster_->spawn_process(node, "hepnos-server-" + std::to_string(s));
    margo::InstanceConfig mc;
    mc.server = true;
    mc.handler_es = cfg.threads_es;
    mc.instr = params_.instr;
    mc.hg.max_events = cfg.ofi_max_events;
    servers_.push_back(std::make_unique<margo::Instance>(*fabric_, proc, mc));
    hepnos_servers_.push_back(std::make_unique<hepnos::Server>(
        *servers_.back(),
        hepnos::ServerConfig{.sdskv_provider = 1,
                             .bake_provider = 2,
                             .backend = params_.backend,
                             .databases = dbs_per_server}));
  }

  // Servers form an SSG group; clients discover the membership by
  // observing it through rank 0, exactly as HEPnOS clients bootstrap.
  std::vector<ofi::EpAddr> server_addrs;
  server_addrs.reserve(servers_.size());
  for (const auto& s : servers_) server_addrs.push_back(s->addr());
  for (auto& s : servers_) {
    group_members_.push_back(
        std::make_unique<ssg::Member>(*s, "hepnos", server_addrs));
  }
  dbs_per_server_ = dbs_per_server;

  // Clients on the remaining nodes.
  for (std::uint32_t c = 0; c < cfg.total_clients; ++c) {
    const sim::NodeId node = server_nodes + c / cfg.clients_per_node;
    auto& proc =
        cluster_->spawn_process(node, "dataloader-" + std::to_string(c));
    margo::InstanceConfig mc;
    mc.server = false;
    mc.dedicated_progress_es = cfg.client_progress_thread;
    mc.instr = params_.instr;
    mc.hg.max_events = cfg.ofi_max_events;
    clients_.push_back(std::make_unique<margo::Instance>(*fabric_, proc, mc));
    observers_.push_back(std::make_unique<ssg::Observer>(*clients_.back()));
  }
  stores_.resize(clients_.size());

  stats_.resize(clients_.size());
}

HepnosWorld::~HepnosWorld() = default;

void HepnosWorld::run() {
  assert(!ran_ && "HepnosWorld::run() called twice");
  ran_ = true;

  for (auto& s : servers_) s->start();
  for (auto& c : clients_) c->start();

  auto remaining = std::make_shared<std::size_t>(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    margo::Instance& mid = *clients_[i];
    // Stagger client starts: real data-loader ranks never begin their
    // first flush in lockstep (job launch skew, PFS open times).
    const auto delay = static_cast<sim::DurationNs>(
        eng_.rng().uniform(params_.start_spread + 1));
    mid.spawn([this, i, remaining, &mid, delay] {
      // Service discovery: observe the provider group through rank 0 and
      // build this client's DataStore from the returned view.
      const auto view = observers_[i]->observe(servers_[0]->addr(), "hepnos");
      stores_[i] = std::make_unique<hepnos::DataStore>(
          mid, view.members, /*sdskv_provider=*/1, dbs_per_server_);
      stats_[i] = hepnos::run_data_loader(
          *stores_[i], params_.file_model, params_.files_per_client,
          params_.config.batch_size, "NOvA",
          static_cast<std::uint32_t>(i), params_.config.pipeline_ops, delay);
      mid.finalize();
      if (!eng_.parallel()) {
        if (--*remaining == 0) {
          for (auto& s : servers_) s->finalize();
        }
      } else {
        // Clients complete on their own lanes: serialize the countdown on
        // lane 0 and fan the server finalize back out to each server's home
        // lane. Cross-lane posts with delay >= the *pair's* lookahead are
        // always window-safe (the scalar minimum can be below a
        // heterogeneous pair's bound), and the mailbox merge order makes
        // this independent of the worker count.
        eng_.after_on(0, eng_.lookahead_to(0), [this, remaining] {
          if (--*remaining == 0) {
            for (auto& s : servers_) {
              margo::Instance* sp = s.get();
              const std::uint32_t dst =
                  eng_.lane_for_node(sp->process().node());
              eng_.after_on(dst, eng_.lookahead_to(dst),
                            [sp] { sp->finalize(); });
            }
          }
        });
      }
    });
  }
  eng_.run();
}

sim::DurationNs HepnosWorld::makespan() const noexcept {
  sim::DurationNs max = 0;
  for (const auto& s : stats_) {
    if (s.elapsed > max) max = s.elapsed;
  }
  return max;
}

std::uint64_t HepnosWorld::events_stored() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : hepnos_servers_) n += s->events_stored();
  return n;
}

std::vector<const prof::ProfileStore*> HepnosWorld::all_profiles() const {
  std::vector<const prof::ProfileStore*> out;
  for (const auto& s : servers_) out.push_back(&s->profile());
  for (const auto& c : clients_) out.push_back(&c->profile());
  return out;
}

std::vector<const prof::TraceStore*> HepnosWorld::all_traces() const {
  std::vector<const prof::TraceStore*> out;
  for (const auto& s : servers_) out.push_back(&s->trace());
  for (const auto& c : clients_) out.push_back(&c->trace());
  return out;
}

std::vector<const prof::TraceStore*> HepnosWorld::server_traces() const {
  std::vector<const prof::TraceStore*> out;
  for (const auto& s : servers_) out.push_back(&s->trace());
  return out;
}

std::vector<const prof::TraceStore*> HepnosWorld::client_traces() const {
  std::vector<const prof::TraceStore*> out;
  for (const auto& c : clients_) out.push_back(&c->trace());
  return out;
}

std::vector<std::pair<std::string, const prof::SysStatStore*>>
HepnosWorld::all_sysstats() const {
  std::vector<std::pair<std::string, const prof::SysStatStore*>> out;
  for (const auto& s : servers_) {
    out.emplace_back(s->process().name(), &s->sysstats());
  }
  for (const auto& c : clients_) {
    out.emplace_back(c->process().name(), &c->sysstats());
  }
  return out;
}

}  // namespace sym::workloads
