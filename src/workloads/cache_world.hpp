// workloads/cache_world.hpp
//
// Deployment harness for the blockcache tier: one BAKE backend node, a row
// of per-node cache servers fronting it, and a set of tenant jobs — each a
// group of client processes of a declared width — issuing block reads and
// writes through the cache. The harness reproduces the two scenario
// families the cache tier exists to study:
//
//  * placement A/B (hash vs. locality-aligned) with sequential readers,
//    where aligned placement lets the servers' sequential-miss readahead
//    batch backend reads (bbThemis's OST-alignment effect);
//  * multi-tenant fairness (FIFO vs. size-fair vs. job-fair) where jobs of
//    unequal widths compete for the same cache servers and per-tenant
//    completion times expose the delivered byte-rates.
//
// Used by tests/test_blockcache.cpp and bench/cache_fairness_study.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "margolite/instance.hpp"
#include "margolite/policy.hpp"
#include "services/bake/bake.hpp"
#include "services/blockcache/blockcache.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "sofi/fabric.hpp"

namespace sym::workloads {

/// What one tenant job's clients do with their private block ranges.
enum class CachePattern : std::uint8_t {
  kSeqRead,        ///< `passes` sequential read passes (cold first pass)
  kSeqWrite,       ///< one sequential write pass + flush
  kWriteThenRead,  ///< write pass + flush, then `passes` read passes
};

/// One tenant job: `width` client processes, each owning a private range of
/// `blocks_per_client` consecutive blocks of the tenant's object.
struct TenantSpec {
  std::uint32_t width = 1;
  std::uint32_t blocks_per_client = 64;
  std::uint32_t passes = 1;
  CachePattern pattern = CachePattern::kSeqRead;
  /// Write granularity in blocks (small writes that the cache's write-back
  /// buffering coalesces into large backend writes).
  std::uint32_t write_op_blocks = 1;
};

class CacheWorld {
 public:
  struct Params {
    std::uint32_t cache_servers = 2;
    /// Per-server cache configuration; `backend` is filled by the world.
    blockcache::ProviderConfig cache{};
    blockcache::Placement placement = blockcache::Placement::kHash;
    std::uint32_t stripe_blocks = blockcache::kDefaultStripeBlocks;
    std::vector<TenantSpec> tenants;
    /// Attach a PolicyEngine with Provider::capacity_autoscale to every
    /// cache server (the second actuator surface under closed-loop control).
    bool autoscale = false;
    std::uint32_t clients_per_node = 4;
    prof::Level instr = prof::Level::kFull;
    std::uint64_t seed = 42;
    sim::EngineConfig exec{};
  };

  explicit CacheWorld(Params params);
  ~CacheWorld();
  CacheWorld(const CacheWorld&) = delete;
  CacheWorld& operator=(const CacheWorld&) = delete;

  /// Run every tenant client to completion and shut down.
  void run();

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }

  [[nodiscard]] std::size_t server_count() const noexcept {
    return cache_servers_.size();
  }
  [[nodiscard]] blockcache::Provider& cache_provider(std::size_t i) {
    return *providers_.at(i);
  }
  [[nodiscard]] margo::Instance& cache_instance(std::size_t i) {
    return *cache_servers_.at(i);
  }
  [[nodiscard]] margo::Instance& backend_instance() { return *backend_; }
  [[nodiscard]] bake::Provider& backend_provider() { return *bake_; }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] margo::Instance& client_instance(std::size_t i) {
    return *clients_.at(i);
  }

  /// Virtual time at which tenant `t`'s slowest client finished.
  [[nodiscard]] sim::TimeNs tenant_completion(std::size_t t) const {
    return tenant_done_.at(t);
  }
  /// Total bytes tenant `t` moved through the cache tier (reads + writes).
  [[nodiscard]] std::uint64_t tenant_bytes(std::size_t t) const;
  /// Delivered byte-rate of tenant `t` in bytes per virtual second.
  [[nodiscard]] double tenant_byte_rate(std::size_t t) const;
  /// Latest tenant completion (the measured makespan).
  [[nodiscard]] sim::TimeNs makespan() const noexcept;

  /// Read-your-writes verification: bytes that came back wrong on read
  /// passes of kWriteThenRead tenants (0 = every read returned the data the
  /// tenant wrote, through any combination of hits, evictions, write-back
  /// and backend refetch).
  [[nodiscard]] std::uint64_t data_mismatches() const;

  // Aggregates over every cache server (scenario-level counters).
  [[nodiscard]] std::uint64_t total_hits() const;
  [[nodiscard]] std::uint64_t total_misses() const;
  [[nodiscard]] std::uint64_t total_backend_reads() const;
  [[nodiscard]] std::uint64_t total_backend_read_bytes() const;
  [[nodiscard]] std::uint64_t total_writeback_ops() const;
  [[nodiscard]] std::uint64_t total_writeback_bytes() const;
  [[nodiscard]] std::uint64_t total_evictions() const;

  [[nodiscard]] std::vector<const prof::ProfileStore*> all_profiles() const;
  [[nodiscard]] std::vector<const prof::TraceStore*> all_traces() const;

 private:
  void client_loop(std::size_t client_index, std::size_t tenant,
                   std::uint32_t member, blockcache::Client& bc);

  Params params_;
  sim::Engine eng_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<ofi::Fabric> fabric_;
  std::unique_ptr<margo::Instance> backend_;
  std::unique_ptr<bake::Provider> bake_;
  std::vector<std::unique_ptr<margo::Instance>> cache_servers_;
  std::vector<std::unique_ptr<blockcache::Provider>> providers_;
  std::vector<std::unique_ptr<margo::PolicyEngine>> policies_;
  std::vector<std::unique_ptr<margo::Instance>> clients_;
  std::vector<std::unique_ptr<blockcache::Client>> bclients_;
  /// (tenant, member-within-tenant) of clients_[i].
  std::vector<std::pair<std::size_t, std::uint32_t>> client_tenant_;
  /// Per-client mismatch counts: slot i is written only by client i's ULT
  /// (its own lane), read from the main thread after run().
  std::vector<std::uint64_t> client_mismatch_;
  std::vector<sim::TimeNs> tenant_done_;
  blockcache::View view_;
  bool ran_ = false;
};

}  // namespace sym::workloads
