// workloads/mobject_world.hpp
//
// Deployment harness for the ior+Mobject case study (paper §V-A): one
// Mobject provider node plus N ior-style clients colocated on the same
// physical node, issuing a mix of object writes and reads. Produces the
// per-process profile/trace stores behind Fig. 5 and Fig. 6.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "margolite/instance.hpp"
#include "services/mobject/mobject.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "sofi/fabric.hpp"

namespace sym::workloads {

/// ior-like workload: each client performs `ops_per_client` object
/// operations of `object_bytes` each; a `read_fraction` of them are reads
/// of previously written objects.
struct IorConfig {
  std::uint32_t clients = 10;
  std::uint32_t ops_per_client = 8;
  std::uint32_t object_bytes = 64 * 1024;
  double read_fraction = 0.5;
};

class MobjectWorld {
 public:
  struct Params {
    IorConfig ior{};
    prof::Level instr = prof::Level::kFull;
    std::uint64_t seed = 42;
    /// Engine execution knobs (lane sharding / worker threads). Mobject is
    /// a single-node deployment, so auto-sharding yields one lane; the knob
    /// mainly exercises the parallel plumbing in tests.
    sim::EngineConfig exec{};
  };

  explicit MobjectWorld(Params params);
  ~MobjectWorld();
  MobjectWorld(const MobjectWorld&) = delete;
  MobjectWorld& operator=(const MobjectWorld&) = delete;

  void run();

  [[nodiscard]] margo::Instance& server_instance() { return *server_; }
  [[nodiscard]] mobject::Server& mobject_server() { return *mobject_; }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] margo::Instance& client_instance(std::size_t i) {
    return *clients_.at(i);
  }
  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }

  /// Virtual time at which the last client finished its op loop (excludes
  /// finalize/sampler shutdown tails, which run on a fixed horizon).
  [[nodiscard]] sim::TimeNs makespan() const noexcept { return makespan_; }

  [[nodiscard]] std::vector<const prof::ProfileStore*> all_profiles() const;
  [[nodiscard]] std::vector<const prof::TraceStore*> all_traces() const;

 private:
  Params params_;
  sim::Engine eng_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<ofi::Fabric> fabric_;
  std::unique_ptr<margo::Instance> server_;
  std::unique_ptr<mobject::Server> mobject_;
  std::vector<std::unique_ptr<margo::Instance>> clients_;
  std::vector<std::unique_ptr<mobject::Client>> mclients_;
  sim::TimeNs makespan_ = 0;
  bool ran_ = false;
};

}  // namespace sym::workloads
