#include "workloads/table4.hpp"

#include <cstdio>

namespace sym::workloads {

HepnosConfig table4_c1() {
  return HepnosConfig{.name = "C1",
                      .total_clients = 32,
                      .clients_per_node = 16,
                      .total_servers = 4,
                      .servers_per_node = 2,
                      .batch_size = 1024,
                      .threads_es = 5,
                      .databases = 32,
                      .client_progress_thread = false,
                      .ofi_max_events = 16};
}

HepnosConfig table4_c2() {
  auto c = table4_c1();
  c.name = "C2";
  c.threads_es = 20;
  return c;
}

HepnosConfig table4_c3() {
  auto c = table4_c2();
  c.name = "C3";
  c.databases = 8;
  return c;
}

HepnosConfig table4_c4() {
  return HepnosConfig{.name = "C4",
                      .total_clients = 2,
                      .clients_per_node = 1,
                      .total_servers = 4,
                      .servers_per_node = 2,
                      .batch_size = 1024,
                      .threads_es = 16,
                      .databases = 8,
                      .client_progress_thread = false,
                      .ofi_max_events = 16,
                      .pipeline_ops = 64};
}

HepnosConfig table4_c5() {
  auto c = table4_c4();
  c.name = "C5";
  c.batch_size = 1;
  return c;
}

HepnosConfig table4_c6() {
  auto c = table4_c5();
  c.name = "C6";
  c.ofi_max_events = 64;
  return c;
}

HepnosConfig table4_c7() {
  auto c = table4_c6();
  c.name = "C7";
  c.client_progress_thread = true;
  return c;
}

std::vector<HepnosConfig> table4_all() {
  return {table4_c1(), table4_c2(), table4_c3(), table4_c4(),
          table4_c5(), table4_c6(), table4_c7()};
}

HepnosConfig overhead_study_config() {
  return HepnosConfig{.name = "overhead",
                      .total_clients = 224,
                      .clients_per_node = 2,
                      .total_servers = 32,
                      .servers_per_node = 2,
                      .batch_size = 8192,
                      .threads_es = 30,
                      .databases = 32 * 16,
                      .client_progress_thread = false,
                      .ofi_max_events = 16};
}

std::string format_table4() {
  std::string out =
      "Table IV: HEPnOS service configurations\n"
      "cfg  clients(/node)  servers(/node)  batch  ES  dbs  prog-thread  "
      "OFI_max_events\n";
  char line[160];
  for (const auto& c : table4_all()) {
    std::snprintf(line, sizeof(line),
                  "%-4s %7u(%2u)     %6u(%2u)      %5u  %2u  %3u  %-11s  %u\n",
                  c.name.c_str(), c.total_clients, c.clients_per_node,
                  c.total_servers, c.servers_per_node, c.batch_size,
                  c.threads_es, c.databases,
                  c.client_progress_thread ? "yes" : "no", c.ofi_max_events);
    out += line;
  }
  return out;
}

}  // namespace sym::workloads
