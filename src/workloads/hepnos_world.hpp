// workloads/hepnos_world.hpp
//
// Deployment harness for the HEPnOS experiments: builds the simulated
// cluster (server and client nodes per Table IV's per-node counts), wires
// margolite instances, HEPnOS providers and client DataStores, runs the
// data-loader step on every client, and exposes the collected measurement
// stores for analysis. Reused by the Fig. 9-13 benches, the examples and
// the integration tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "margolite/instance.hpp"
#include "services/hepnos/hepnos.hpp"
#include "services/ssg/ssg.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"
#include "sofi/fabric.hpp"
#include "workloads/table4.hpp"

namespace sym::workloads {

class HepnosWorld {
 public:
  struct Params {
    HepnosConfig config;
    prof::Level instr = prof::Level::kFull;
    sdskv::BackendType backend = sdskv::BackendType::kMap;
    hepnos::EventFileModel file_model{};
    std::uint32_t files_per_client = 1;
    /// Client start times are staggered uniformly over this window.
    sim::DurationNs start_spread = sim::usec(500);
    std::uint64_t seed = 42;
    /// Engine execution knobs (lane sharding / worker threads). The default
    /// is the classic single-threaded engine; set `lane_count = 0` for one
    /// lane per simulated node.
    sim::EngineConfig exec{};
  };

  explicit HepnosWorld(Params params);
  ~HepnosWorld();
  HepnosWorld(const HepnosWorld&) = delete;
  HepnosWorld& operator=(const HepnosWorld&) = delete;

  /// Run every client's data-loader to completion and shut down.
  void run();

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }

  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] margo::Instance& server_instance(std::size_t i) {
    return *servers_.at(i);
  }
  [[nodiscard]] margo::Instance& client_instance(std::size_t i) {
    return *clients_.at(i);
  }
  [[nodiscard]] hepnos::Server& hepnos_server(std::size_t i) {
    return *hepnos_servers_.at(i);
  }

  [[nodiscard]] const std::vector<hepnos::DataLoaderStats>& loader_stats()
      const noexcept {
    return stats_;
  }

  /// Longest per-client data-loader time (the reported execution time).
  [[nodiscard]] sim::DurationNs makespan() const noexcept;

  /// Events stored across all providers (consistency check).
  [[nodiscard]] std::uint64_t events_stored() const noexcept;

  [[nodiscard]] std::vector<const prof::ProfileStore*> all_profiles() const;
  [[nodiscard]] std::vector<const prof::TraceStore*> all_traces() const;
  [[nodiscard]] std::vector<const prof::TraceStore*> server_traces() const;
  [[nodiscard]] std::vector<const prof::TraceStore*> client_traces() const;
  [[nodiscard]] std::vector<std::pair<std::string, const prof::SysStatStore*>>
  all_sysstats() const;

 private:
  Params params_;
  sim::Engine eng_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<ofi::Fabric> fabric_;
  std::vector<std::unique_ptr<margo::Instance>> servers_;
  std::vector<std::unique_ptr<margo::Instance>> clients_;
  std::vector<std::unique_ptr<hepnos::Server>> hepnos_servers_;
  std::vector<std::unique_ptr<ssg::Member>> group_members_;
  std::vector<std::unique_ptr<ssg::Observer>> observers_;
  std::vector<std::unique_ptr<hepnos::DataStore>> stores_;
  std::uint32_t dbs_per_server_ = 1;
  std::vector<hepnos::DataLoaderStats> stats_;
  bool ran_ = false;
};

}  // namespace sym::workloads
