// workloads/table4.hpp
//
// The HEPnOS service configurations of the paper's Table IV (C1..C7), plus
// the large-scale overhead-study configuration of §VI. These parameterize
// the HEPnOS deployment harness; `databases` is the total database count
// across the whole service (the origin hashes keys over this total).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sym::workloads {

struct HepnosConfig {
  std::string name;
  std::uint32_t total_clients = 2;
  std::uint32_t clients_per_node = 1;
  std::uint32_t total_servers = 4;
  std::uint32_t servers_per_node = 2;
  std::uint32_t batch_size = 1024;
  std::uint32_t threads_es = 16;   ///< handler execution streams per server
  std::uint32_t databases = 8;     ///< total databases across the service
  bool client_progress_thread = false;
  std::uint32_t ofi_max_events = 16;
  /// Data-loader client pipelining: number of put_packed operations kept in
  /// flight before draining (0 = drain after every batch flush). The C4-C7
  /// client-progress study uses a 64-deep pipeline; C1-C3 flush batches
  /// synchronously.
  std::uint32_t pipeline_ops = 0;
};

/// Table IV rows.
[[nodiscard]] HepnosConfig table4_c1();
[[nodiscard]] HepnosConfig table4_c2();
[[nodiscard]] HepnosConfig table4_c3();
[[nodiscard]] HepnosConfig table4_c4();
[[nodiscard]] HepnosConfig table4_c5();
[[nodiscard]] HepnosConfig table4_c6();
[[nodiscard]] HepnosConfig table4_c7();
[[nodiscard]] std::vector<HepnosConfig> table4_all();

/// §VI overhead study: 32 providers over 16 nodes, 224 clients over 112
/// nodes, 30 ESs, 16 databases per provider, batch 8192, no dedicated
/// client progress thread. (Scaled down proportionally by the benches.)
[[nodiscard]] HepnosConfig overhead_study_config();

/// Render Table IV as text.
[[nodiscard]] std::string format_table4();

}  // namespace sym::workloads
