// symbiosys/breadcrumb.hpp
//
// Distributed callpath breadcrumbs (paper §IV-A1).
//
// Each RPC name is hashed to 16 bits. A callpath ("callchain") is encoded in
// a single 64-bit value: the caller shifts its own ancestry left by 16 bits
// and ORs in the hash of the downstream RPC name, so the lowest 16 bits
// always identify the most recent call and the value holds callpath lengths
// of up to four, exactly as implemented in Margo.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simkit/rng.hpp"

namespace sym::prof {

using Breadcrumb = std::uint64_t;

/// Maximum callpath depth representable in 64 bits with 16-bit components.
inline constexpr int kMaxCallpathDepth = 4;

/// 16-bit RPC-name hash (folded FNV-1a). 0 is reserved for "no ancestry",
/// so a hash that lands on 0 is nudged to 1.
[[nodiscard]] inline std::uint16_t hash16(std::string_view name) noexcept {
  const std::uint64_t h = sim::fnv1a64(name.data(), name.size());
  auto folded = static_cast<std::uint16_t>(h ^ (h >> 16) ^ (h >> 32) ^
                                           (h >> 48));
  return folded == 0 ? std::uint16_t{1} : folded;
}

/// Extend a callpath with a downstream call: 16-bit left shift, then OR.
[[nodiscard]] constexpr Breadcrumb extend(Breadcrumb parent,
                                          std::uint16_t leaf) noexcept {
  return (parent << 16) | leaf;
}

/// Split a breadcrumb into its (root-first) 16-bit components.
[[nodiscard]] std::vector<std::uint16_t> components(Breadcrumb bc);

/// Depth of the callpath encoded in `bc` (1..4; 0 for bc == 0).
[[nodiscard]] int depth(Breadcrumb bc) noexcept;

/// The leaf (most recent) component.
[[nodiscard]] constexpr std::uint16_t leaf_of(Breadcrumb bc) noexcept {
  return static_cast<std::uint16_t>(bc & 0xFFFF);
}

/// Registry mapping 16-bit name hashes back to RPC names for reporting.
/// One registry is shared per simulation (names are identical everywhere).
/// Internally synchronized: instances on different engine lanes register
/// action/RPC names concurrently from worker threads. The map holds names
/// only — no state that affects execution — so the registration order does
/// not perturb simulation results.
class NameRegistry {
 public:
  void register_name(std::string_view name);
  [[nodiscard]] std::string lookup(std::uint16_t h) const;

  /// Render a breadcrumb as "a => b => c" using registered names.
  [[nodiscard]] std::string format(Breadcrumb bc) const;

  void clear();

  /// Simulation-global instance (deterministic: names only, no state that
  /// affects execution).
  static NameRegistry& global();

 private:
  // symlint: allow(fiber-blocking) reason=guards against concurrent lane
  // *worker threads*, which abt sync (virtual-time, ULT-level) cannot do;
  // critical sections are tiny and never yield
  mutable std::mutex mu_;
  std::unordered_map<std::uint16_t, std::string> names_;
};

}  // namespace sym::prof
