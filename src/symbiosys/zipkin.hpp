// symbiosys/zipkin.hpp
//
// Export stitched request traces as Zipkin v2 JSON, compatible with the
// OpenZipkin / Jaeger UI — the paper's Fig. 5 visualization path ("an
// adapter module that stitches the events with a common requestID from
// different processes into a Zipkin JSON trace file").
#pragma once

#include <string>

#include "symbiosys/analysis.hpp"

namespace sym::prof {

/// Render one stitched request as a Zipkin v2 JSON span array.
[[nodiscard]] std::string to_zipkin_json(const RequestTrace& rt);

/// Render every request in the summary as one JSON array.
[[nodiscard]] std::string to_zipkin_json(const TraceSummary& summary);

}  // namespace sym::prof
