#include "symbiosys/export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "symbiosys/breadcrumb.hpp"

namespace sym::prof {
namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return is;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  return os;
}

}  // namespace

// ---------------------------------------------------------------------------
// Profile CSV
// ---------------------------------------------------------------------------
//
// One row per (breadcrumb, side, self, peer, interval):
//   breadcrumb,side,self_ep,peer_ep,interval,count,sum_ns,min_ns,max_ns

void write_profile_csv(std::ostream& os, const ProfileStore& store) {
  os << "breadcrumb,side,self_ep,peer_ep,interval,count,sum_ns,min_ns,max_ns\n";
  for (const auto& [key, stats] : store.entries()) {
    for (int i = 0; i < static_cast<int>(Interval::kCount); ++i) {
      const auto& iv = stats.intervals[i];
      if (iv.count == 0) continue;
      os << key.breadcrumb << ','
         << (key.side == Side::kOrigin ? "origin" : "target") << ','
         << key.self_ep << ',' << key.peer_ep << ',' << i << ',' << iv.count
         << ',' << iv.sum_ns << ',' << iv.min_ns << ',' << iv.max_ns << '\n';
    }
  }
}

ProfileStore read_profile_csv(std::istream& is) {
  ProfileStore store;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string side;
    CallpathKey key;
    int interval = 0;
    IntervalStats iv;
    char comma = 0;
    ls >> key.breadcrumb >> comma;
    std::getline(ls, side, ',');
    ls >> key.self_ep >> comma >> key.peer_ep >> comma >> interval >> comma >>
        iv.count >> comma >> iv.sum_ns >> comma >> iv.min_ns >> comma >>
        iv.max_ns;
    key.side = (side == "origin") ? Side::kOrigin : Side::kTarget;
    store.merge_entry(key, static_cast<Interval>(interval), iv);
  }
  return store;
}

// ---------------------------------------------------------------------------
// Trace CSV
// ---------------------------------------------------------------------------

void write_trace_csv(std::ostream& os, const TraceStore& store) {
  os << "request_id,order,kind,breadcrumb,self_ep,peer_ep,local_ts,lamport,"
        "blocked,runnable,rss,cpu,cq_size,ofi_read,posted\n";
  for (const auto& ev : store.events()) {
    os << ev.request_id << ',' << ev.order << ','
       << static_cast<int>(ev.kind) << ',' << ev.breadcrumb << ','
       << ev.self_ep << ',' << ev.peer_ep << ',' << ev.local_ts << ','
       << ev.lamport << ',' << ev.blocked_ults << ',' << ev.runnable_ults
       << ',' << ev.rss_bytes << ',' << ev.cpu_util << ','
       << ev.completion_queue_size << ',' << ev.num_ofi_events_read << ','
       << ev.num_posted_handles << '\n';
  }
}

TraceStore read_trace_csv(std::istream& is) {
  TraceStore store;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceEvent ev;
    char c = 0;
    int kind = 0;
    ls >> ev.request_id >> c >> ev.order >> c >> kind >> c >> ev.breadcrumb >>
        c >> ev.self_ep >> c >> ev.peer_ep >> c >> ev.local_ts >> c >>
        ev.lamport >> c >> ev.blocked_ults >> c >> ev.runnable_ults >> c >>
        ev.rss_bytes >> c >> ev.cpu_util >> c >> ev.completion_queue_size >>
        c >> ev.num_ofi_events_read >> c >> ev.num_posted_handles;
    ev.kind = static_cast<TraceEventKind>(kind);
    store.append(ev);
  }
  return store;
}

// ---------------------------------------------------------------------------
// System-statistics CSV
// ---------------------------------------------------------------------------

void write_sysstats_csv(std::ostream& os, const SysStatStore& store) {
  os << "local_ts,rss,cpu,blocked,runnable,cq_size,posted\n";
  for (const auto& s : store.samples()) {
    os << s.local_ts << ',' << s.rss_bytes << ',' << s.cpu_util << ','
       << s.blocked_ults << ',' << s.runnable_ults << ','
       << s.completion_queue_size << ',' << s.num_posted_handles << '\n';
  }
}

SysStatStore read_sysstats_csv(std::istream& is) {
  SysStatStore store;
  std::string line;
  std::getline(is, line);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    SysStat s;
    char c = 0;
    ls >> s.local_ts >> c >> s.rss_bytes >> c >> s.cpu_util >> c >>
        s.blocked_ults >> c >> s.runnable_ults >> c >>
        s.completion_queue_size >> c >> s.num_posted_handles;
    store.append(s);
  }
  return store;
}

// ---------------------------------------------------------------------------
// File conveniences / names
// ---------------------------------------------------------------------------

void write_profile_csv_file(const std::string& path,
                            const ProfileStore& store) {
  auto os = open_out(path);
  write_profile_csv(os, store);
}
ProfileStore read_profile_csv_file(const std::string& path) {
  auto is = open_in(path);
  return read_profile_csv(is);
}
void write_trace_csv_file(const std::string& path, const TraceStore& store) {
  auto os = open_out(path);
  write_trace_csv(os, store);
}
TraceStore read_trace_csv_file(const std::string& path) {
  auto is = open_in(path);
  return read_trace_csv(is);
}
void write_sysstats_csv_file(const std::string& path,
                             const SysStatStore& store) {
  auto os = open_out(path);
  write_sysstats_csv(os, store);
}
SysStatStore read_sysstats_csv_file(const std::string& path) {
  auto is = open_in(path);
  return read_sysstats_csv(is);
}

void write_names_csv(std::ostream& os) {
  // NameRegistry has no iteration API by design (hash->name map is an
  // implementation detail); re-register via format on demand instead.
  os << "# names resolved via NameRegistry::global() at analysis time\n";
}

}  // namespace sym::prof
